// bench_test.go regenerates every table and figure of the paper's
// evaluation as Go benchmarks (one per experiment, quick budgets) and
// asserts the *shape* of each result — who wins, by roughly what factor,
// where the crossovers fall. Absolute numbers differ from the paper's
// (their testbed: 32-core CPU + A5000 GPU + PyTorch; ours: a from-scratch
// Go stack, often on one core), and EXPERIMENTS.md records both sides.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Full-budget variants of the same experiments: go run ./cmd/tables.
package explorefault_test

import (
	"context"
	"fmt"
	"os"
	"strings"
	"testing"

	explorefault "repro"
	"repro/internal/ciphers"
	"repro/internal/ciphers/gift"
	"repro/internal/evaluate"
	"repro/internal/expfault"
	"repro/internal/explore"
	"repro/internal/fault"
	"repro/internal/harness"
	"repro/internal/leakage"
	"repro/internal/prng"
	"repro/internal/stats"
)

func benchOptions(print bool) harness.Options {
	opt := harness.Options{Seed: 2023, Quick: true}
	if print {
		opt.Out = os.Stdout
	}
	return opt
}

func BenchmarkTableI_HigherOrderTTest(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.TableI(benchOptions(i == 0 && b.N == 1))
		if err != nil {
			b.Fatal(err)
		}
		// Shape: order 1 misses both models, order 2 catches both.
		if res.ByteFirst >= 4.5 || res.DiagonalFirst >= 4.5 {
			b.Fatalf("first-order t unexpectedly above threshold: byte %.2f diag %.2f",
				res.ByteFirst, res.DiagonalFirst)
		}
		if res.ByteSecond <= 4.5 || res.DiagonalSecond <= 4.5 {
			b.Fatalf("second-order t missed the leak: byte %.2f diag %.2f",
				res.ByteSecond, res.DiagonalSecond)
		}
	}
}

func BenchmarkTableII_TrainingRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.TableII(benchOptions(i == 0 && b.N == 1))
		if err != nil {
			b.Fatal(err)
		}
		// Shape: end-of-episode reward trains far faster; the paper
		// reports 115x (T=128 evaluations saved per episode), our
		// floor here is an order of magnitude.
		if res.Improvement < 10 {
			b.Fatalf("end-of-episode speedup only %.1fx, want >= 10x", res.Improvement)
		}
	}
}

func BenchmarkFig3_RewardShaping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.Figure3(benchOptions(i == 0 && b.N == 1))
		if err != nil {
			b.Fatal(err)
		}
		// Shape: the exponential reward grows the exploitable pattern
		// beyond the linear reward's plateau (paper: 17 vs 3).
		if res.ExpFinalBits < res.LinearFinalBits {
			b.Fatalf("exponential reward (%d bits) did not beat linear (%d bits)",
				res.ExpFinalBits, res.LinearFinalBits)
		}
		if res.ExpFinalBits < 4 {
			b.Fatalf("exponential reward only reached %d bits", res.ExpFinalBits)
		}
	}
}

func BenchmarkTableIII_ModelCoverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.TableIII(benchOptions(i == 0 && b.N == 1))
		if err != nil {
			b.Fatal(err)
		}
		// Shape: AES yields bit, byte and diagonal models; GIFT yields
		// bit and nibble models (Table III's ExploreFault row).
		for _, want := range []string{"bit", "byte", "diagonal"} {
			if !res.AES[want] {
				b.Fatalf("AES discovery missing %s model (found %v)", want, res.AES)
			}
		}
		for _, want := range []string{"bit", "nibble"} {
			if !res.GIFT[want] {
				b.Fatalf("GIFT discovery missing %s model (found %v)", want, res.GIFT)
			}
		}
	}
}

func BenchmarkFig4_TrainingProgress(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.Figure4(benchOptions(i == 0 && b.N == 1))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Buckets) == 0 {
			b.Fatal("no training buckets")
		}
		// Shape: early training discovers single-bit models, and
		// multi-bit (diagonal-contained) models appear as training
		// proceeds.
		var single, multi, diag int
		for _, bu := range res.Buckets {
			single += bu.SingleBit
			multi += bu.MultiBit
			diag += bu.DiagonalContained
		}
		if single == 0 {
			b.Fatal("no single-bit models discovered during training")
		}
		if multi == 0 {
			b.Fatal("no multi-bit models discovered during training")
		}
		if diag == 0 {
			b.Fatal("no diagonal-contained models discovered during training")
		}
	}
}

func BenchmarkFig5_RandomFaultSim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.Figure5(benchOptions(i == 0 && b.N == 1))
		if err != nil {
			b.Fatal(err)
		}
		// Shape: every discovered model's t distribution sits entirely
		// above the 4.5 threshold.
		for _, row := range res.Rows {
			if !row.AllAboveThreshold {
				b.Fatalf("model %q dipped below the threshold (min t %.2f)", row.Model, row.MinT)
			}
		}
	}
}

func BenchmarkTableIV_ProtectedAES(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.TableIV(benchOptions(i == 0 && b.N == 1))
		if err != nil {
			b.Fatal(err)
		}
		// Shape: the agent evades the duplication countermeasure by
		// selecting at least one identical bit in both branches.
		if !res.ConvergedLeaky {
			b.Fatal("protected session found no exploitable two-branch pattern")
		}
		if res.MatchingBits < 1 {
			b.Fatalf("no matching bit across branches (b1 %v, b2 %v)", res.Branch1, res.Branch2)
		}
		if res.EpisodeLength != 256 {
			b.Fatalf("episode length %d, want 256", res.EpisodeLength)
		}
	}
}

func BenchmarkTableV_GIFTModels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.TableV(benchOptions(i == 0 && b.N == 1))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatal("no GIFT models discovered in the first window")
		}
		// Shape: both single-nibble-sized and multi-nibble models show
		// up in the first window, as in Table V.
		multi := false
		for _, row := range res.Rows {
			if row.Nibbles >= 2 {
				multi = true
			}
		}
		if !multi {
			b.Fatal("no multi-nibble models in the first window")
		}
	}
}

func BenchmarkAESKeyRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := explorefault.VerifyKeyRecovery(explorefault.Pattern{}, explorefault.VerifyConfig{
			Cipher: "aes128", Seed: 2023 + uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Correct || res.RecoveredBits != 128 {
			b.Fatalf("AES PQ failed: %d bits, correct=%v", res.RecoveredBits, res.Correct)
		}
	}
}

func BenchmarkGIFTKeyRecovery(b *testing.B) {
	pattern := explorefault.PatternFromGroups(64, 4, 8, 9, 10, 11, 12, 14)
	for i := 0; i < b.N; i++ {
		res, err := explorefault.VerifyKeyRecovery(pattern, explorefault.VerifyConfig{
			Cipher: "gift64", Round: 25, Pairs: 512, Seed: 2023 + uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Correct {
			b.Fatalf("GIFT DFA returned wrong bits: %s", res.Notes)
		}
		if res.RecoveredBits < 32 {
			b.Fatalf("GIFT DFA recovered only %d bits (%s)", res.RecoveredBits, res.Notes)
		}
	}
}

func BenchmarkKeyRecoveryTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.KeyRecovery(benchOptions(i == 0 && b.N == 1))
		if err != nil {
			b.Fatal(err)
		}
		if !res.AES.Correct || !res.GIFTSingle.Correct || !res.GIFTNewModel.Correct {
			b.Fatal("a key-recovery verification failed")
		}
	}
}

func BenchmarkAblationGrouping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.AblationGrouping(benchOptions(i == 0 && b.N == 1))
		if err != nil {
			b.Fatal(err)
		}
		// Shape: each cipher's native granularity detects its canonical
		// fault model.
		if res.AESByte[8] < 4.5 {
			b.Fatalf("byte grouping missed the AES byte fault (t %.1f)", res.AESByte[8])
		}
		if res.GIFTNibble[4] < 4.5 {
			b.Fatalf("nibble grouping missed the GIFT nibble fault (t %.1f)", res.GIFTNibble[4])
		}
	}
}

func BenchmarkAblationAgent(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.AblationAgent(benchOptions(i == 0 && b.N == 1))
		if err != nil {
			b.Fatal(err)
		}
		if res.PPOBestBits < 1 {
			b.Fatal("PPO never found an exploitable pattern")
		}
	}
}

func BenchmarkAblationObservation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := harness.AblationObservation(benchOptions(i == 0 && b.N == 1))
		if err != nil {
			b.Fatal(err)
		}
		// Shape: the lag-2 window is what separates one diagonal
		// (exploitable) from two diagonals (not); at lag 1 both look
		// exploitable through trivial zero bytes.
		if !res.OneDiagonal[2] {
			b.Fatal("one diagonal not exploitable at lag 2")
		}
		if res.TwoDiagonals[2] {
			b.Fatal("two diagonals exploitable at lag 2; the window is too permissive")
		}
		if !res.TwoDiagonals[1] {
			b.Fatal("two diagonals not exploitable at lag 1; expected the trivial zero-byte leak")
		}
	}
}

// BenchmarkCampaignCollect contrasts the legacy matrix-materializing
// campaign against the streaming sharded engine at the paper's offline
// sample count (2048 plaintexts, GIFT-64 round 25, full default window).
func BenchmarkCampaignCollect(b *testing.B) {
	key := make([]byte, 16)
	prng.New(2023).Fill(key)
	c, err := ciphers.New("gift64", key)
	if err != nil {
		b.Fatal(err)
	}
	pattern := explorefault.PatternFromGroups(64, 4, 5)
	campaign := func() fault.Campaign {
		return fault.Campaign{
			Cipher:  c,
			Pattern: pattern,
			Round:   25,
			Samples: 2048,
		}
	}

	b.Run("matrix", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cp := campaign()
			if _, err := cp.Collect(prng.New(uint64(i))); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("stream-w%d", workers), func(b *testing.B) {
			cp := campaign()
			if err := cp.Validate(); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				_, err := evaluate.RunSharded(context.Background(), cp.Samples, workers, len(cp.Points),
					cp.Groups(), 2, uint64(i),
					func(rng *prng.Source, shard, n int, accs []*stats.Accumulator) error {
						return cp.CollectInto(rng, n, accs)
					})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	// The ISSUE acceptance pairs: the same campaign on the scalar
	// reference path and on each cipher's batch kernel (T-table rounds
	// for AES, bitsliced lanes for GIFT/PRESENT, packed-word lanes for
	// SIMON/SPECK, shared-prefix forking for all). Both sides of a pair
	// produce bit-identical accumulators; the batch bar is >= 2.5x for
	// AES and >= 10x for the bitsliced/lane-packed ciphers.
	for _, cc := range []struct {
		cipher  string
		round   int
		pattern explorefault.Pattern
	}{
		{"aes128", 8, explorefault.PatternFromGroups(128, 8, 2, 7, 8, 13)},
		{"present80", 28, explorefault.PatternFromGroups(64, 4, 5)},
		{"simon32", 29, explorefault.PatternFromGroups(32, 4, 5)},
		{"simon64", 41, explorefault.PatternFromGroups(64, 4, 5)},
		{"speck64", 24, explorefault.PatternFromGroups(64, 4, 5)},
	} {
		info, err := ciphers.Lookup(cc.cipher)
		if err != nil {
			b.Fatal(err)
		}
		ckey := make([]byte, info.KeyBytes)
		prng.New(2023).Fill(ckey)
		cipher, err := ciphers.New(cc.cipher, ckey)
		if err != nil {
			b.Fatal(err)
		}
		for _, sub := range []struct {
			name    string
			noBatch bool
		}{
			{fmt.Sprintf("%s-r%d-scalar", cc.cipher, cc.round), true},
			{fmt.Sprintf("%s-r%d-batch", cc.cipher, cc.round), false},
		} {
			b.Run(sub.name, func(b *testing.B) {
				cp := fault.Campaign{
					Cipher:  cipher,
					Pattern: cc.pattern,
					Round:   cc.round,
					Samples: 2048,
					NoBatch: sub.noBatch,
				}
				if err := cp.Validate(); err != nil {
					b.Fatal(err)
				}
				for i := 0; i < b.N; i++ {
					_, err := evaluate.RunSharded(context.Background(), cp.Samples, 1, len(cp.Points),
						cp.Groups(), 2, uint64(i),
						func(rng *prng.Source, shard, n int, accs []*stats.Accumulator) error {
							return cp.CollectInto(rng, n, accs)
						})
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkCampaignFaultModels measures the streaming campaign under each
// typed fault model on the same GIFT-64 round-25 nibble pattern. The xor
// subbenchmark is the regression guard for the generalized injection op:
// it runs the XOR-only hot path of EncryptForksOps and must stay within
// the comparison gate of the pre-zoo engine (BENCH_pr5's stream-w1).
// Stuck-at and random-value models pay for their extra AND lanes and
// per-trace value draws; the benchmark records how much.
func BenchmarkCampaignFaultModels(b *testing.B) {
	key := make([]byte, 16)
	prng.New(2023).Fill(key)
	c, err := ciphers.New("gift64", key)
	if err != nil {
		b.Fatal(err)
	}
	pattern := explorefault.PatternFromGroups(64, 4, 5)
	for _, model := range fault.Models() {
		// Underscored names: benchjson treats a trailing -<digits> as the
		// GOMAXPROCS suffix, which would merge stuck-at-0 and stuck-at-1.
		b.Run(strings.ReplaceAll(model.String(), "-", "_"), func(b *testing.B) {
			cp := fault.Campaign{
				Cipher:  c,
				Pattern: pattern,
				Round:   25,
				Model:   model,
				Samples: 2048,
			}
			if err := cp.Validate(); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				_, err := evaluate.RunSharded(context.Background(), cp.Samples, 1, len(cp.Points),
					cp.Groups(), 2, uint64(i),
					func(rng *prng.Source, shard, n int, accs []*stats.Accumulator) error {
						return cp.CollectInto(rng, n, accs)
					})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchForkPoints maps the campaign's default observation window onto the
// batch API for direct kernel benchmarking.
func benchForkPoints(c ciphers.Cipher, round int) []ciphers.BatchPoint {
	var out []ciphers.BatchPoint
	for _, p := range fault.PointsWindow(c, round, fault.DefaultLag, fault.DefaultWindow) {
		switch p.Kind {
		case fault.RoundInput:
			out = append(out, ciphers.BatchPoint{Round: p.Round})
		case fault.PostSub:
			out = append(out, ciphers.BatchPoint{Round: p.Round, PostSub: true})
		default:
			out = append(out, ciphers.BatchPoint{})
		}
	}
	return out
}

// benchEncryptForks measures one shard's worth (256 traces) of paired
// clean/faulty encryption with the default observation window captured,
// through either the scalar reference path or the cipher's batch kernel.
func benchEncryptForks(b *testing.B, name string, round int, batch bool) {
	rng := prng.New(2023)
	info, err := ciphers.Lookup(name)
	if err != nil {
		b.Fatal(err)
	}
	key := make([]byte, info.KeyBytes)
	rng.Fill(key)
	c, err := ciphers.New(name, key)
	if err != nil {
		b.Fatal(err)
	}
	var kern ciphers.BatchKernel
	if batch {
		be, ok := c.(ciphers.BatchEncrypter)
		if !ok {
			b.Skipf("%s has no batch kernel", name)
		}
		kern = be.NewBatchKernel()
	}
	const traces = 256
	bb := c.BlockBytes()
	points := benchForkPoints(c, round)
	np := len(points)
	pts := make([]byte, traces*bb)
	mask := make([]byte, traces*bb)
	rng.Fill(pts)
	rng.Fill(mask)
	masks := [][]byte{nil, mask}
	states := [][]byte{make([]byte, traces*np*bb), make([]byte, traces*np*bb)}
	cts := [][]byte{nil, nil}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if batch {
			kern.EncryptForks(round, points, traces, pts, masks, states, cts)
		} else {
			ciphers.ScalarForks(c, round, points, traces, pts, masks, states, cts)
		}
	}
}

var benchEncryptCases = []struct {
	name  string
	round int
}{
	{"aes128", 8},
	{"gift64", 25},
	{"gift128", 36},
	{"present80", 28},
	{"simon32", 29},
	{"simon64", 41},
	{"speck32", 19},
	{"speck64", 24},
}

// BenchmarkEncryptScalar is the reference path: one full Encrypt with a
// Trace per (trace, branch) pair.
func BenchmarkEncryptScalar(b *testing.B) {
	for _, tc := range benchEncryptCases {
		b.Run(tc.name, func(b *testing.B) { benchEncryptForks(b, tc.name, tc.round, false) })
	}
}

// BenchmarkEncryptBatch is the batch kernel on the same workload:
// T-table words for AES, bitsliced lanes for GIFT, shared-prefix forking
// for both.
func BenchmarkEncryptBatch(b *testing.B) {
	for _, tc := range benchEncryptCases {
		b.Run(tc.name, func(b *testing.B) { benchEncryptForks(b, tc.name, tc.round, true) })
	}
}

// BenchmarkOracleEvaluate measures the assessment path end-to-end the way
// the RL loop drives it: serial vs parallel campaigns, and cold vs warm
// oracle cache. The ISSUE acceptance bar is >= 2x for parallel-cold over
// serial-cold on 4 cores; warm-cache is orders of magnitude beyond both.
func BenchmarkOracleEvaluate(b *testing.B) {
	pattern := explorefault.PatternFromGroups(64, 4, 5)

	makeOracle := func(workers int) explore.Oracle {
		rng := prng.New(2023)
		key := make([]byte, 16)
		rng.Fill(key)
		c, err := ciphers.New("gift64", key)
		if err != nil {
			b.Fatal(err)
		}
		a := leakage.NewAssessor(c, leakage.Config{
			Samples: 2048,
			Workers: workers,
		}, rng.Split())
		return &explore.AssessorOracle{Assessor: a, Round: 25}
	}

	b.Run("serial-cold", func(b *testing.B) {
		oracle := makeOracle(1)
		for i := 0; i < b.N; i++ {
			if _, err := oracle.Evaluate(context.Background(), &pattern, fault.XorFlip); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel-cold", func(b *testing.B) {
		oracle := makeOracle(0)
		for i := 0; i < b.N; i++ {
			if _, err := oracle.Evaluate(context.Background(), &pattern, fault.XorFlip); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached-warm", func(b *testing.B) {
		oracle := explore.NewCachedOracle(makeOracle(0), 0)
		if _, err := oracle.Evaluate(context.Background(), &pattern, fault.XorFlip); err != nil {
			b.Fatal(err) // populate the cache
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := oracle.Evaluate(context.Background(), &pattern, fault.XorFlip); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDFARecovery measures the end-to-end GIFT DFA key-recovery
// attacks with batched collection and guess evaluation (templates and
// online pairs through the bitsliced fork kernel, guesses through the
// precomputed log-likelihood tables) against the per-pair scalar
// reference the attacks shipped with. Both paths are bit-identical
// (TestGIFTDFABatchMatchesScalar); the pair quantifies the speedup the
// ISSUE asks to report.
func BenchmarkDFARecovery(b *testing.B) {
	rng := prng.New(2023)
	key := make([]byte, 16)
	rng.Fill(key)
	c64, err := gift.New64(key)
	if err != nil {
		b.Fatal(err)
	}
	c128, err := gift.New128(key)
	if err != nil {
		b.Fatal(err)
	}
	pat64 := explorefault.PatternFromGroups(64, 4, 8, 9, 10, 11, 12, 14)
	pat128 := explorefault.PatternFromGroups(128, 4, 5)
	for _, sub := range []struct {
		name    string
		noBatch bool
	}{{"batch", false}, {"scalar", true}} {
		cfg := expfault.GIFTDFAConfig{Pairs: 64, TemplateSamples: 1024, NoBatch: sub.noBatch}
		b.Run("gift64-"+sub.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := expfault.GIFTDFA(c64, &pat64, cfg, rng.Split()); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("gift128-"+sub.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := expfault.GIFT128DFA(c128, &pat128, cfg, rng.Split()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSweep measures the exhaustive campaign engine: one full
// round's worth of single-position cells per cipher, reporting cells/sec
// so the atlas throughput is tracked across PRs alongside the campaign
// and kernel benchmarks it is built from.
func BenchmarkSweep(b *testing.B) {
	for _, cc := range []struct {
		cipher string
		round  int
	}{
		{"aes128", 8},
		{"gift64", 25},
		{"speck64", 24},
	} {
		b.Run(cc.cipher, func(b *testing.B) {
			cfg := explorefault.SweepConfig{
				Cipher:  cc.cipher,
				Rounds:  []int{cc.round},
				Samples: 256,
				Seed:    7,
			}
			var cells int
			for i := 0; i < b.N; i++ {
				atlas, err := explorefault.Sweep(context.Background(), cfg)
				if err != nil {
					b.Fatal(err)
				}
				cells = atlas.Summary.Cells
			}
			b.ReportMetric(float64(cells)*float64(b.N)/b.Elapsed().Seconds(), "cells/sec")
		})
	}
}
