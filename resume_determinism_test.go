package explorefault_test

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	explorefault "repro"
)

// TestResumeDeterminism is the checkpoint/resume half of the engine's
// central bit-identity guarantee: a discovery run interrupted at episode k
// and resumed from its checkpoint must produce the same DiscoveryResult —
// to the last float64 bit — as a run that was never interrupted, for every
// interruption point and worker count. Cache counters and wall-clock are
// the only permitted differences (the oracle memoization cache is
// deliberately dropped from checkpoints; memoization is exact).
func TestResumeDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-variant training run")
	}
	base := explorefault.DiscoverConfig{
		Cipher:      "gift64",
		Round:       25,
		Episodes:    24,
		NumEnvs:     4,
		Samples:     128,
		Seed:        7,
		SkipHarvest: true,
	}

	// Uninterrupted references, one per worker count.
	want := map[int]string{}
	for _, workers := range []int{1, 4} {
		cfg := base
		cfg.Workers = workers
		res, err := explorefault.Discover(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want[workers] = discoverFingerprint(res)
	}
	if want[1] != want[4] {
		t.Fatal("reference runs differ across worker counts (pre-existing determinism break)")
	}

	dir := t.TempDir()
	for _, workers := range []int{1, 4} {
		// k = 0 interrupts before any episode (only the eager initial
		// checkpoint exists); k = Episodes resumes a finished run.
		for _, k := range []int{0, 4, 12, 24} {
			name := fmt.Sprintf("workers=%d/k=%d", workers, k)
			t.Run(name, func(t *testing.T) {
				path := filepath.Join(dir, fmt.Sprintf("ck-w%d-k%d.bin", workers, k))

				// Phase 1: run until episode k, then cancel.
				ctx, cancel := context.WithCancel(context.Background())
				cfg := base
				cfg.Workers = workers
				cfg.Checkpoint = path
				cfg.CheckpointEvery = 1
				if k == 0 {
					cancel()
				} else {
					kk := k
					cfg.Progress = func(p explorefault.Progress) {
						if p.Episodes >= kk {
							cancel()
						}
					}
				}
				_, err := explorefault.DiscoverContext(ctx, cfg)
				cancel()
				if k < base.Episodes {
					if !errors.Is(err, context.Canceled) {
						t.Fatalf("interrupted run returned %v, want context.Canceled", err)
					}
				} else if err != nil {
					// The run finishes before the post-final-episode
					// cancellation is observed.
					t.Fatalf("full run failed: %v", err)
				}

				// Phase 2: resume from the checkpoint with a fresh context.
				cfg = base
				cfg.Workers = workers
				cfg.Checkpoint = path
				cfg.CheckpointEvery = 1
				cfg.Resume = true
				res, err := explorefault.DiscoverContext(context.Background(), cfg)
				if err != nil {
					t.Fatal(err)
				}
				if got := discoverFingerprint(res); got != want[workers] {
					t.Errorf("resumed outcome differs from uninterrupted run\n got: %s\nwant: %s",
						got, want[workers])
				}
			})
		}
	}
}

// TestResumeDeterminismMultiModel: the resume guarantee holds when the
// agent chooses among several typed fault models — the checkpoint records
// each replayed episode's chosen model, so the per-model candidate
// partition (and with it the final result) survives the restart.
func TestResumeDeterminismMultiModel(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-variant training run")
	}
	base := explorefault.DiscoverConfig{
		Cipher:      "gift64",
		Round:       25,
		Episodes:    16,
		NumEnvs:     4,
		Samples:     128,
		Seed:        31,
		SkipHarvest: true,
		FaultModels: []explorefault.FaultModel{explorefault.XorFlip, explorefault.StuckAtZero},
		Oracle:      explorefault.OracleSIFA,
	}
	ref, err := explorefault.Discover(base)
	if err != nil {
		t.Fatal(err)
	}
	want := discoverFingerprint(ref) + "|model=" + ref.ConvergedModel.String()

	path := filepath.Join(t.TempDir(), "ck-multimodel.bin")
	ctx, cancel := context.WithCancel(context.Background())
	cfg := base
	cfg.Checkpoint = path
	cfg.CheckpointEvery = 1
	cfg.Progress = func(p explorefault.Progress) {
		if p.Episodes >= 8 {
			cancel()
		}
	}
	if _, err := explorefault.DiscoverContext(ctx, cfg); !errors.Is(err, context.Canceled) {
		cancel()
		t.Fatalf("interrupted run returned %v, want context.Canceled", err)
	}
	cancel()

	cfg = base
	cfg.Checkpoint = path
	cfg.CheckpointEvery = 1
	cfg.Resume = true
	res, err := explorefault.DiscoverContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := discoverFingerprint(res) + "|model=" + res.ConvergedModel.String(); got != want {
		t.Errorf("resumed multi-model outcome differs from uninterrupted run\n got: %s\nwant: %s", got, want)
	}
}

// TestResumeRejectsForeignCheckpoint: resuming with a different seed or
// cipher configuration must fail loudly, not silently train on the wrong
// stream.
func TestResumeRejectsForeignCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.bin")
	cfg := explorefault.DiscoverConfig{
		Cipher: "gift64", Round: 25, Episodes: 8, NumEnvs: 2,
		Samples: 64, Seed: 3, SkipHarvest: true,
		Checkpoint: path, CheckpointEvery: 1,
	}
	if _, err := explorefault.Discover(cfg); err != nil {
		t.Fatal(err)
	}

	foreign := cfg
	foreign.Seed = 4
	foreign.Resume = true
	if _, err := explorefault.DiscoverContext(context.Background(), foreign); err == nil {
		t.Error("resume accepted a checkpoint from a different seed")
	}

	otherRound := cfg
	otherRound.Round = 24
	otherRound.Resume = true
	if _, err := explorefault.DiscoverContext(context.Background(), otherRound); err == nil {
		t.Error("resume accepted a checkpoint from a different round")
	}

	// The fault-model set widens the action space, so a checkpoint from a
	// single-model run must not resume a multi-model one.
	otherModels := cfg
	otherModels.FaultModels = []explorefault.FaultModel{explorefault.XorFlip, explorefault.StuckAtZero}
	otherModels.Resume = true
	if _, err := explorefault.DiscoverContext(context.Background(), otherModels); err == nil {
		t.Error("resume accepted a checkpoint from a different fault-model set")
	}

	// A missing checkpoint file with -resume starts fresh instead of
	// failing (first launch of a long campaign).
	fresh := cfg
	fresh.Checkpoint = filepath.Join(t.TempDir(), "absent.bin")
	fresh.Resume = true
	if _, err := explorefault.Discover(fresh); err != nil {
		t.Errorf("resume with missing checkpoint should start fresh, got %v", err)
	}
}

// TestSweepResumeDeterminism extends the bit-identity guarantee to the
// exhaustive sweep engine: a checkpointed sweep interrupted after k cells
// and rerun with the same configuration must produce an atlas
// byte-identical to an uninterrupted run, for k at the very start, at a
// shard boundary, and at the final cell, across worker counts.
func TestSweepResumeDeterminism(t *testing.T) {
	base := explorefault.SweepConfig{
		Cipher:  "gift64",
		Rounds:  []int{25},
		Samples: 64,
		Models: []explorefault.FaultModel{
			explorefault.XorFlip, explorefault.StuckAtZero,
		},
		Seed: 7,
	}
	total := 32 // 2 models x 16 nibbles; 2 shards of sweep.ShardCells=16

	refAtlas, err := explorefault.Sweep(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	if refAtlas.Summary.Cells != total {
		t.Fatalf("reference sweep has %d cells, want %d", refAtlas.Summary.Cells, total)
	}
	ref, err := refAtlas.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	for _, workers := range []int{1, 4} {
		// k = 0 interrupts before any cell, k = 16 exactly at the shard
		// boundary (shard 0 persisted, shard 1 untouched), k = 32 after
		// the final cell (the interrupted "run" already finished).
		for _, k := range []int{0, 16, total} {
			name := fmt.Sprintf("workers=%d/k=%d", workers, k)
			t.Run(name, func(t *testing.T) {
				path := filepath.Join(dir, fmt.Sprintf("sweep-w%d-k%d.bin", workers, k))

				// Phase 1: run until cell k, then cancel.
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				cfg := base
				cfg.Workers = workers
				cfg.Checkpoint = path
				kk := k
				if k == 0 {
					cancel()
				} else {
					cfg.Progress = func(done, _ int) {
						if done >= kk {
							cancel()
						}
					}
				}
				if _, err := explorefault.Sweep(ctx, cfg); err != nil &&
					!errors.Is(err, context.Canceled) {
					t.Fatalf("interrupted sweep: %v", err)
				}

				// Phase 2: resume with a fresh context and no interruption.
				cfg = base
				cfg.Workers = workers
				cfg.Checkpoint = path
				atlas, err := explorefault.Sweep(context.Background(), cfg)
				if err != nil {
					t.Fatalf("resume: %v", err)
				}
				data, err := atlas.MarshalCanonical()
				if err != nil {
					t.Fatal(err)
				}
				if string(data) != string(ref) {
					t.Fatal("resumed atlas differs from uninterrupted reference")
				}
			})
		}
	}
}
