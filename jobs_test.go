package explorefault

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/server"
)

func waitJobState(t *testing.T, s *JobServer, id string, pred func(*JobRecord) bool) *JobRecord {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		j, err := s.Job(id)
		if err != nil {
			t.Fatalf("Job(%s): %v", id, err)
		}
		if pred(j) {
			return j
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s never reached the expected state", id)
	return nil
}

// countEventLines counts lines of the given event kind in a JSONL log.
func countEventLines(t *testing.T, path, kind string) int {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		return 0
	}
	defer f.Close()
	n := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		var ev struct {
			Event string `json:"event"`
		}
		if json.Unmarshal(sc.Bytes(), &ev) == nil && ev.Event == kind {
			n++
		}
	}
	return n
}

// TestJobServerRestartDeterminism is the PR's acceptance pin: a gift64
// discovery job interrupted by a daemon shutdown mid-run and finished by
// a restarted daemon produces a result byte-identical to the same job
// run without interruption, and its event log carries the same episodes.
func TestJobServerRestartDeterminism(t *testing.T) {
	spec := JobSpec{
		Type: server.TypeDiscover,
		Name: "gift64-restart",
		Config: json.RawMessage(`{
			"cipher": "gift64", "round": 25, "episodes": 96,
			"samples": 128, "seed": 7, "checkpoint_every": 8
		}`),
	}

	// Reference: one daemon lifetime, uninterrupted.
	refDir := t.TempDir()
	ref, err := NewJobServer(JobServerConfig{DataDir: refDir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	refJob, err := ref.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	refDone := waitJobState(t, ref, refJob.ID, func(j *JobRecord) bool { return j.State == server.StateDone })
	refEpisodes := countEventLines(t, ref.Files(refJob.ID).Events, "episode")
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}
	if refEpisodes == 0 {
		t.Fatal("reference run emitted no episode events")
	}

	// Interrupted: stop the daemon once training is demonstrably in
	// flight, then restart on the same data directory.
	dir := t.TempDir()
	s, err := NewJobServer(JobServerConfig{DataDir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	events := s.Files(j.ID).Events
	deadline := time.Now().Add(60 * time.Second)
	for countEventLines(t, events, "episode") < 16 {
		if time.Now().After(deadline) {
			t.Fatal("job never made training progress")
		}
		jj, err := s.Job(j.ID)
		if err != nil {
			t.Fatal(err)
		}
		if jj.State.Terminal() {
			t.Fatalf("job finished before it could be interrupted (state %s)", jj.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := NewJobServer(JobServerConfig{DataDir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := waitJobState(t, s2, j.ID, func(j *JobRecord) bool { return j.State == server.StateDone })
	if got.Resumes != 1 {
		t.Fatalf("Resumes = %d, want 1", got.Resumes)
	}
	if !bytes.Equal(got.Result, refDone.Result) {
		t.Fatalf("resumed result differs from uninterrupted run:\n  resumed: %s\n  ref:     %s",
			got.Result, refDone.Result)
	}
	// The episode stream is deterministic too: training emits the same
	// episodes in the same order; the resumed log may replay a suffix of
	// episodes that ran after the last checkpoint, so after dedup it
	// must equal the reference count exactly.
	if n := dedupEpisodes(t, events); n != refEpisodes {
		t.Fatalf("deduped episode events = %d, want %d", n, refEpisodes)
	}
}

// dedupEpisodes counts distinct episode events (by fields, ignoring
// ts/seq) in a JSONL log.
func dedupEpisodes(t *testing.T, path string) int {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	seen := map[string]bool{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		var ev struct {
			Event  string          `json:"event"`
			Fields json.RawMessage `json:"fields"`
		}
		if json.Unmarshal(sc.Bytes(), &ev) != nil || ev.Event != "episode" {
			continue
		}
		seen[string(ev.Fields)] = true
	}
	return len(seen)
}

// TestJobServerSweepShardFanOut pins the horizontal-scaling contract at
// the job level: two sweep jobs covering complementary shard ranges,
// merged, equal the single full-range job byte for byte.
func TestJobServerSweepShardFanOut(t *testing.T) {
	dir := t.TempDir()
	s, err := NewJobServer(JobServerConfig{DataDir: dir, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	config := json.RawMessage(`{
		"cipher": "gift64", "rounds": [24, 25], "samples": 32, "seed": 11
	}`)
	submit := func(name string, lo, hi int) *JobRecord {
		j, err := s.Submit(JobSpec{
			Type:       server.TypeSweep,
			Name:       name,
			ShardRange: [2]int{lo, hi},
			Config:     config,
		})
		if err != nil {
			t.Fatalf("submit %s: %v", name, err)
		}
		return j
	}
	full := submit("full", 0, 0)
	lo := submit("lo", 0, 1)
	hi := submit("hi", 1, 2)
	for _, j := range []*JobRecord{full, lo, hi} {
		got := waitJobState(t, s, j.ID, func(j *JobRecord) bool { return j.State.Terminal() })
		if got.State != server.StateDone {
			t.Fatalf("job %s state = %s (%s)", j.ID, got.State, got.Error)
		}
	}

	fullAtlas, err := ReadAtlas(s.Files(full.ID).Output)
	if err != nil {
		t.Fatal(err)
	}
	loAtlas, err := ReadAtlas(s.Files(lo.ID).Output)
	if err != nil {
		t.Fatal(err)
	}
	hiAtlas, err := ReadAtlas(s.Files(hi.ID).Output)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := MergeAtlases(hiAtlas, loAtlas)
	if err != nil {
		t.Fatal(err)
	}
	mergedBytes, err := merged.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	fullBytes, err := fullAtlas.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mergedBytes, fullBytes) {
		t.Fatalf("merged fan-out atlas differs from full run (%d vs %d bytes)",
			len(mergedBytes), len(fullBytes))
	}
}

// TestJobRunnerValidate pins submission-time validation: typos and
// out-of-range configs are rejected before a worker ever runs.
func TestJobRunnerValidate(t *testing.T) {
	dir := t.TempDir()
	s, err := NewJobServer(JobServerConfig{DataDir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	bad := []JobSpec{
		{Type: "discover", Config: json.RawMessage(`{"cipher":"gift64","round":99}`)},
		{Type: "discover", Config: json.RawMessage(`{"cipher":"nope","round":1}`)},
		{Type: "discover", Config: json.RawMessage(`{"cipher":"gift64","round":25,"epsiodes":5}`)},
		{Type: "assess", Config: json.RawMessage(`{"cipher":"gift64","round":25}`)},
		{Type: "sweep", Config: json.RawMessage(`{"cipher":"gift64","key":"zz"}`)},
	}
	for i, spec := range bad {
		if _, err := s.Submit(spec); err == nil {
			t.Errorf("bad spec %d accepted: %s", i, spec.Config)
		}
	}
	// Assess works end to end (speck64 included: every registered cipher
	// is available to the daemon).
	j, err := s.Submit(JobSpec{Type: "assess", Config: json.RawMessage(
		fmt.Sprintf(`{"cipher":"speck64","round":25,"groups":[0],"samples":128,"seed":3}`))})
	if err != nil {
		t.Fatal(err)
	}
	got := waitJobState(t, s, j.ID, func(j *JobRecord) bool { return j.State.Terminal() })
	if got.State != server.StateDone {
		t.Fatalf("assess job state = %s (%s)", got.State, got.Error)
	}
	var res struct {
		T         float64 `json:"t"`
		Threshold float64 `json:"threshold"`
	}
	if err := json.Unmarshal(got.Result, &res); err != nil || res.Threshold == 0 {
		t.Fatalf("assess result = %s (%v)", got.Result, err)
	}
}
