package explorefault

import (
	"fmt"

	"repro/internal/ciphers/aes"
	"repro/internal/ciphers/gift"
	"repro/internal/expfault"
	"repro/internal/prng"
)

// KeyRecovery is the outcome of a concrete differential fault attack.
type KeyRecovery = expfault.KeyRecoveryResult

// PropagationProfile re-exports the fault-propagation profile.
type PropagationProfile = expfault.PropagationProfile

// VerifyConfig tunes VerifyKeyRecovery.
type VerifyConfig struct {
	// Cipher names the target: "aes128" (Piret–Quisquater on a byte
	// fault at round 9), "gift64" or "gift128" (nibble-wise
	// guess-and-filter for an arbitrary fault model at Round).
	Cipher string
	// Key is the victim key; nil draws a random key from Seed.
	Key []byte
	// Round is the fault round for GIFT (default 25); AES's attack is
	// defined at round 9.
	Round int
	// Pairs is the number of faulty encryptions (GIFT default 256;
	// AES uses 3 per column = 12 total).
	Pairs int
	// FaultModel is the typed injection model (default XorFlip, the
	// historical bit-flip attack). The GIFT attacks rebuild their
	// offline templates under the chosen model; Piret–Quisquater on
	// AES-128 is defined only for bit-flip byte differentials and
	// rejects other models.
	FaultModel FaultModel
	// Seed drives plaintexts and fault values.
	Seed uint64
}

// VerifyKeyRecovery mounts the key-recovery attack that a discovered
// fault model enables — the verification step §IV-D performs with the
// ExpFault tool. For AES-128 the pattern is implied by the attack (single
// byte at round 9); for GIFT-64 the given pattern is attacked directly.
func VerifyKeyRecovery(pattern Pattern, cfg VerifyConfig) (*KeyRecovery, error) {
	rng := prng.New(cfg.Seed)
	switch cfg.Cipher {
	case "aes128":
		if cfg.FaultModel != XorFlip {
			return nil, fmt.Errorf("explorefault: Piret–Quisquater needs bit-flip byte differentials; fault model %s is not supported on aes128", cfg.FaultModel)
		}
		c, key, err := newKeyedCipher(cfg.Cipher, cfg.Key, rng)
		if err != nil {
			return nil, err
		}
		_ = key
		pairs := 3
		if cfg.Pairs > 0 {
			pairs = (cfg.Pairs + 3) / 4
		}
		return expfault.AESPiretQuisquater(c.(*aes.Cipher), pairs, rng.Split())
	case "gift64":
		c, _, err := newKeyedCipher(cfg.Cipher, cfg.Key, rng)
		if err != nil {
			return nil, err
		}
		return expfault.GIFTDFA(c.(*gift.Cipher), &pattern, expfault.GIFTDFAConfig{
			FaultRound: cfg.Round,
			Pairs:      cfg.Pairs,
			Model:      cfg.FaultModel,
		}, rng.Split())
	case "gift128":
		c, _, err := newKeyedCipher(cfg.Cipher, cfg.Key, rng)
		if err != nil {
			return nil, err
		}
		return expfault.GIFT128DFA(c.(*gift.Cipher), &pattern, expfault.GIFTDFAConfig{
			FaultRound: cfg.Round,
			Pairs:      cfg.Pairs,
			Model:      cfg.FaultModel,
		}, rng.Split())
	default:
		return nil, fmt.Errorf("explorefault: no key-recovery attack implemented for %q", cfg.Cipher)
	}
}

// Propagate profiles how a fault model's differential evolves round by
// round (active groups and per-group entropy), identifying the deepest
// distinguisher round — ExpFault's analysis view of a model.
func Propagate(pattern Pattern, cipherName string, key []byte, round, samples int, seed uint64) (*PropagationProfile, error) {
	return PropagateModel(pattern, cipherName, key, XorFlip, round, samples, seed)
}

// PropagateModel is Propagate under a typed fault model; XorFlip is
// bit-identical to Propagate.
func PropagateModel(pattern Pattern, cipherName string, key []byte, model FaultModel, round, samples int, seed uint64) (*PropagationProfile, error) {
	rng := prng.New(seed)
	c, _, err := newKeyedCipher(cipherName, key, rng)
	if err != nil {
		return nil, err
	}
	if samples == 0 {
		samples = 1024
	}
	return expfault.ProfileModel(c, &pattern, model, round, samples, rng.Split())
}
