// Package explorefault is the public API of this reproduction of
// "ExploreFault: Identifying Exploitable Fault Models in Block Ciphers
// with Reinforcement Learning" (DAC 2023).
//
// The package wires together the internal substrates — trace-level cipher
// implementations (AES-128, GIFT-64/128, PRESENT-80), the fault-simulation
// engine, the higher-order Welch t-test leakage oracle, a from-scratch PPO
// agent, the fault-model abstraction pipeline, the duplication
// countermeasure, and the ExpFault-style key-recovery verifier — behind
// three entry points:
//
//   - Discover runs a full RL discovery session against a cipher
//     (protected or unprotected) and returns the converged fault pattern
//     plus the abstracted, verified, symmetry-extended fault models.
//   - Assess measures the information leakage of one fault pattern
//     (the t-test oracle as a standalone tool, ALAFA-style).
//   - VerifyKeyRecovery mounts a concrete differential fault attack for a
//     discovered model (Piret–Quisquater for AES-128, nibble-wise
//     guess-and-filter for GIFT-64) and reports recovered key bits and
//     offline complexity.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every table and figure.
package explorefault

import (
	"context"
	"fmt"
	"io"

	"repro/internal/abstraction"
	"repro/internal/bitvec"
	"repro/internal/ciphers"
	_ "repro/internal/ciphers/all" // register every cipher implementation
	"repro/internal/countermeasure"
	"repro/internal/explore"
	"repro/internal/fault"
	"repro/internal/leakage"
	"repro/internal/obs"
	"repro/internal/prng"
	"repro/internal/sweep"
)

// Pattern is a fault pattern: the set of cipher state bits targeted for
// injection. It aliases the internal bit-vector type; construct one with
// NewPattern, PatternFromBits or PatternFromGroups.
type Pattern = bitvec.Vector

// NewPattern returns an empty pattern for a cipher with the given state
// width in bits.
func NewPattern(stateBits int) Pattern { return bitvec.New(stateBits) }

// PatternFromBits returns a pattern with the listed state bits set.
func PatternFromBits(stateBits int, bits ...int) Pattern {
	return bitvec.FromBits(stateBits, bits...)
}

// PatternFromGroups returns a pattern covering whole groups (nibbles for
// groupBits = 4, bytes for groupBits = 8), e.g. the paper's AES diagonal
// PatternFromGroups(128, 8, 2, 7, 8, 13) or GIFT's new model
// PatternFromGroups(64, 4, 8, 9, 10, 11, 12, 14).
func PatternFromGroups(stateBits, groupBits int, groups ...int) Pattern {
	v := bitvec.New(stateBits)
	for _, g := range groups {
		for j := 0; j < groupBits; j++ {
			v.Set(g*groupBits + j)
		}
	}
	return v
}

// Model is an abstracted, verified fault model (class, covered groups,
// full bit pattern, typed injection model, offline t statistic).
type Model = abstraction.Model

// Model class re-exports.
const (
	BitModel         = abstraction.BitModel
	NibbleModel      = abstraction.NibbleModel
	MultiNibbleModel = abstraction.MultiNibbleModel
	ByteModel        = abstraction.ByteModel
	MultiByteModel   = abstraction.MultiByteModel
	DiagonalModel    = abstraction.DiagonalModel
	RawPattern       = abstraction.RawPattern
)

// FaultModel is the typed injection model applied at the faulted bits:
// how the targeted state bits are corrupted, as opposed to Pattern, which
// says where. XorFlip is the paper's bit-flip model and the default
// everywhere.
type FaultModel = fault.Model

// Typed fault-model re-exports.
const (
	// XorFlip flips every targeted bit (FlipAll) or a random nonzero
	// subset per trace (the default campaign mode) — the paper's model.
	XorFlip = fault.XorFlip
	// StuckAtZero / StuckAtOne clamp targeted bits to 0 / 1.
	StuckAtZero = fault.StuckAtZero
	StuckAtOne  = fault.StuckAtOne
	// BiasedAnd ANDs targeted bits with fresh random values (biased
	// toward 0; the classic voltage-glitch model).
	BiasedAnd = fault.BiasedAnd
	// RandomByte / RandomNibble replace every touched byte / nibble with
	// a uniform random value.
	RandomByte   = fault.RandomByte
	RandomNibble = fault.RandomNibble
)

// FaultModels lists every typed fault model, in stable order.
func FaultModels() []FaultModel { return fault.Models() }

// ParseFaultModel parses a -fault-type CLI name ("xor", "stuck-at-0",
// "stuck-at-1", "biased-and", "random-byte", "random-nibble").
func ParseFaultModel(s string) (FaultModel, error) { return fault.ParseModel(s) }

// OracleKind selects the statistical leakage oracle.
type OracleKind = fault.OracleKind

// Oracle-kind re-exports.
const (
	// OracleWelch is the paper's Welch t-test on ciphertext differentials.
	OracleWelch = fault.OracleWelch
	// OracleSIFA is the ineffective-fault oracle: it conditions on traces
	// where the injected fault did not change the ciphertext and t-tests
	// that sub-distribution of clean ciphertexts against uniform.
	OracleSIFA = fault.OracleSIFA
)

// ParseOracle parses a -oracle CLI name ("welch", "sifa").
func ParseOracle(s string) (OracleKind, error) { return fault.ParseOracle(s) }

// Ciphers lists the registered cipher names.
func Ciphers() []string { return ciphers.Names() }

// CipherInfo describes a registered cipher family.
type CipherInfo struct {
	Name       string
	BlockBytes int
	KeyBytes   int
	Rounds     int
	GroupBits  int
}

// LookupCipher returns metadata for a registered cipher.
func LookupCipher(name string) (CipherInfo, error) {
	info, err := ciphers.Lookup(name)
	if err != nil {
		return CipherInfo{}, err
	}
	return CipherInfo{
		Name:       info.Name,
		BlockBytes: info.BlockBytes,
		KeyBytes:   info.KeyBytes,
		Rounds:     info.Rounds,
		GroupBits:  info.GroupBits,
	}, nil
}

// newKeyedCipher builds a cipher instance, generating a random key from
// rng when key is nil.
func newKeyedCipher(name string, key []byte, rng *prng.Source) (ciphers.Cipher, []byte, error) {
	info, err := ciphers.Lookup(name)
	if err != nil {
		return nil, nil, err
	}
	if key == nil {
		key = make([]byte, info.KeyBytes)
		rng.Fill(key)
	}
	if len(key) != info.KeyBytes {
		return nil, nil, fmt.Errorf("explorefault: %s needs a %d-byte key, got %d",
			name, info.KeyBytes, len(key))
	}
	c, err := info.New(key)
	return c, key, err
}

// Assessment is the outcome of a standalone leakage assessment.
type Assessment struct {
	// T is the maximum |t| over observation points and orders 1..G.
	T float64
	// Leaky reports T > Threshold.
	Leaky bool
	// Threshold is the classification threshold θ used (4.5).
	Threshold float64
	// Order is the t-test order that produced T; Point describes where.
	Order int
	Point string
}

// AssessConfig tunes Assess. Zero values select paper defaults.
type AssessConfig struct {
	// Cipher names the target ("aes128", "gift64", "gift128",
	// "present80").
	Cipher string
	// Key is the cipher key; nil draws a random key from Seed.
	Key []byte
	// Round is the fault-injection round (1-based).
	Round int
	// Samples is the number of plaintexts (default 2048).
	Samples int
	// MaxOrder is the highest t-test order G (default 2).
	MaxOrder int
	// FixedOrder, if non-zero, runs only that order (Table I contrasts
	// order 1 against order 2).
	FixedOrder int
	// Threshold overrides the leakage classification threshold θ
	// (default 4.5).
	Threshold float64
	// GroupBits overrides the differential grouping granularity
	// (default: the cipher's native substitution width).
	GroupBits int
	// FaultModel selects the typed injection model (default XorFlip,
	// the paper's bit-flip campaign).
	FaultModel FaultModel
	// Oracle selects the leakage statistic (default OracleWelch;
	// OracleSIFA conditions on ineffective faults). AssessProtected
	// supports OracleWelch only: muting already erases the
	// effective/ineffective distinction SIFA needs.
	Oracle OracleKind
	// Workers is the fault-campaign worker-pool size; 0 uses GOMAXPROCS.
	// Results are bit-identical for every value.
	Workers int
	// NoBatch forces the scalar reference path even for ciphers with a
	// batch kernel (bit-identical; for equivalence tests and benchmarks).
	NoBatch bool
	// Metrics, if non-nil, receives engine and campaign instrumentation
	// (counters, gauges, latency histograms; see internal/obs). Nil
	// keeps the clock- and allocation-free fast path, and results are
	// bit-identical either way.
	Metrics *obs.Registry
	// Events, if non-nil, receives campaign_started/campaign_finished
	// structured run events for the assessment.
	Events *obs.Emitter
	// Seed drives all randomness.
	Seed uint64
}

// Assess measures the information leakage of a fault pattern: the
// standalone exploitability oracle (§III-C). It is AssessContext with a
// background context (never cancelled).
func Assess(pattern Pattern, cfg AssessConfig) (Assessment, error) {
	return AssessContext(context.Background(), pattern, cfg)
}

// AssessContext is Assess with cancellation: ctx aborts the underlying
// fault campaign at the next shard boundary and returns ctx.Err().
func AssessContext(ctx context.Context, pattern Pattern, cfg AssessConfig) (Assessment, error) {
	rng := prng.New(cfg.Seed)
	c, _, err := newKeyedCipher(cfg.Cipher, cfg.Key, rng)
	if err != nil {
		return Assessment{}, err
	}
	a := leakage.NewAssessor(c, leakage.Config{
		Samples:   cfg.Samples,
		MaxOrder:  cfg.MaxOrder,
		GroupBits: cfg.GroupBits,
		Threshold: cfg.Threshold,
		Model:     cfg.FaultModel,
		Oracle:    cfg.Oracle,
		Workers:   cfg.Workers,
		NoBatch:   cfg.NoBatch,
		Metrics:   cfg.Metrics,
		Events:    cfg.Events,
	}, rng.Split())
	var res leakage.Assessment
	if cfg.FixedOrder > 0 {
		res, err = a.AssessOrder(ctx, &pattern, cfg.Round, cfg.FixedOrder)
	} else {
		res, err = a.Assess(ctx, &pattern, cfg.Round)
	}
	if err != nil {
		return Assessment{}, err
	}
	return Assessment{
		T:         res.T,
		Leaky:     res.Leaky,
		Threshold: a.Threshold(),
		Order:     res.Best.Stat.Order,
		Point:     res.Best.Point.String(),
	}, nil
}

// AssessProtected measures the information leakage of a two-branch fault
// pattern against the duplication countermeasure (§IV-C): pattern bits
// [0, T) fault branch 1 and [T, 2T) fault branch 2, and the t-test runs
// on released ciphertexts only (muted outputs are random strings).
// It is AssessProtectedContext with a background context.
func AssessProtected(pattern Pattern, cfg AssessConfig) (Assessment, error) {
	return AssessProtectedContext(context.Background(), pattern, cfg)
}

// AssessProtectedContext is AssessProtected with cancellation: ctx aborts
// the underlying fault campaign at the next shard boundary.
func AssessProtectedContext(ctx context.Context, pattern Pattern, cfg AssessConfig) (Assessment, error) {
	rng := prng.New(cfg.Seed)
	c, _, err := newKeyedCipher(cfg.Cipher, cfg.Key, rng)
	if err != nil {
		return Assessment{}, err
	}
	oracle, err := countermeasure.NewOracle(c, countermeasure.OracleConfig{
		Round:     cfg.Round,
		Samples:   cfg.Samples,
		MaxOrder:  cfg.MaxOrder,
		GroupBits: cfg.GroupBits,
		Threshold: cfg.Threshold,
		Model:     cfg.FaultModel,
		Oracle:    cfg.Oracle,
		Workers:   cfg.Workers,
		NoBatch:   cfg.NoBatch,
		Metrics:   cfg.Metrics,
		Events:    cfg.Events,
	}, rng.Split())
	if err != nil {
		return Assessment{}, err
	}
	t, err := oracle.Evaluate(ctx, &pattern, cfg.FaultModel)
	if err != nil {
		return Assessment{}, err
	}
	return Assessment{
		T:         t,
		Leaky:     t > oracle.Threshold(),
		Threshold: oracle.Threshold(),
		Point:     "ciphertext",
	}, nil
}

// SweepConfig tunes an exhaustive sweep (see internal/sweep): the
// complement of Discover that enumerates the full round × position ×
// fault-model space instead of sampling it.
type SweepConfig = sweep.Config

// Atlas is a machine-readable exploitability map: one classified cell
// per enumerated (round, positions, model) triple. Atlases are pure
// functions of their SweepConfig — bit-identical across worker counts,
// batch/scalar paths and checkpoint resumes.
type Atlas = sweep.Atlas

// AtlasCell is one classified cell of an Atlas.
type AtlasCell = sweep.Cell

// CoverageReport quantifies a discovery run's sample efficiency against
// an exhaustive atlas (found/exploitable cells, episodes to first hit).
type CoverageReport = sweep.CoverageReport

// Sweep runs an exhaustive campaign over the configured fault space and
// returns the exploitability atlas. A cancelled ctx aborts at the next
// trace-block boundary; configure SweepConfig.Checkpoint to make the
// sweep resumable.
func Sweep(ctx context.Context, cfg SweepConfig) (*Atlas, error) {
	return sweep.Run(ctx, cfg)
}

// ReadAtlas loads and validates an atlas JSON document.
func ReadAtlas(path string) (*Atlas, error) { return sweep.ReadFile(path) }

// CompareAtlas replays a discovery run's JSONL event log (the -events
// output of cmd/explorefault or Discover) against an atlas; round 0
// auto-detects the injection round from the log.
func CompareAtlas(a *Atlas, round int, events io.Reader) (*CoverageReport, error) {
	return sweep.Compare(a, round, events)
}

// CacheStats re-exports the oracle-memoization counters.
type CacheStats = explore.CacheStats

// Metrics is the run-time metrics registry of internal/obs: atomic
// counters, gauges and fixed-bucket histograms with a nil-is-disabled
// zero-cost contract. Construct one with NewMetrics and read it with
// Snapshot or the debug HTTP endpoint (ServeMetrics).
type Metrics = obs.Registry

// EventEmitter writes structured JSONL run events (see internal/obs for
// the event catalogue). A nil emitter disables event output.
type EventEmitter = obs.Emitter

// MetricCounterVec / MetricGaugeVec / MetricHistogramVec re-export the
// labeled metric families of internal/obs: instruments sharing one name
// with per-label-set child series ({tenant="t1",kind="sweep"}), under
// the same nil-is-disabled contract as the plain instruments. Resolve a
// child once with With and hot paths pay one atomic op.
type (
	MetricCounterVec   = obs.CounterVec
	MetricGaugeVec     = obs.GaugeVec
	MetricHistogramVec = obs.HistogramVec
)

// MetricsSnapshot is the point-in-time export of a Metrics registry,
// including labeled families and (when enabled) runtime telemetry.
type MetricsSnapshot = obs.Snapshot

// NewMetrics returns an enabled metrics registry for
// AssessConfig/DiscoverConfig.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// NewEventEmitter wraps w with a JSONL run-event emitter.
func NewEventEmitter(w io.Writer) *EventEmitter { return obs.NewEmitter(w) }

// OpenEventLog creates (or truncates) a JSONL run-event file; Close the
// returned emitter to release it.
func OpenEventLog(path string) (*EventEmitter, error) { return obs.OpenEmitter(path) }

// ServeMetrics binds addr (e.g. "localhost:6060") and serves the debug
// endpoint: /metrics (JSON snapshot, or Prometheus text exposition with
// ?format=prom / an Accept: text/plain scrape), /debug/vars (expvar)
// and /debug/pprof. Labeled families render as
// metric{tenant="t1",kind="sweep"} series next to the plain samples,
// and process runtime telemetry (goroutines, heap, GC pauses) is
// sampled at scrape time. Close the returned server to stop it.
func ServeMetrics(addr string, m *Metrics) (*obs.Server, error) { return obs.Serve(addr, m) }

// assessorOracleFactory builds the unprotected oracle factory shared by
// Discover and the bench harness. The fault model is not bound here: the
// explore layer passes one per Evaluate call (the agent chooses it).
func assessorOracleFactory(cipherName string, key []byte, round, samples, workers int, noBatch bool, oracle OracleKind, metrics *obs.Registry) explore.OracleFactory {
	return func(rng *prng.Source) (explore.Oracle, error) {
		c, _, err := newKeyedCipher(cipherName, key, rng)
		if err != nil {
			return nil, err
		}
		a := leakage.NewAssessor(c, leakage.Config{
			Samples:         samples,
			StopAtThreshold: true,
			Oracle:          oracle,
			Workers:         workers,
			NoBatch:         noBatch,
			Metrics:         metrics,
		}, rng.Split())
		return &explore.AssessorOracle{Assessor: a, Round: round}, nil
	}
}
