package explorefault_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	explorefault "repro"
)

// TestSweepGroundTruthConsistency is the property test tying the two
// halves of the system together: every (round, position, model) cell the
// RL agent reports exploitable during a discovery run must also be
// exploitable in the exhaustive sweep atlas of the same keyed cipher at
// the same threshold. The sweep and the discovery share the seed, so
// both attack the same key; the sweep's Order2 mode covers the 1- and
// 2-position patterns an agent episode can map onto, and wider patterns
// are off-atlas by construction (reported, not failed).
func TestSweepGroundTruthConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("discovery session + order-2 sweep")
	}

	// The discovery half of the TestDiscoverGIFTSmallBudget fixture,
	// with the episode log captured in memory.
	var log bytes.Buffer
	events := explorefault.NewEventEmitter(&log)
	res, err := explorefault.Discover(explorefault.DiscoverConfig{
		Cipher:     "gift64",
		Round:      25,
		Episodes:   160,
		NumEnvs:    4,
		Samples:    256,
		MaxHarvest: 6,
		Seed:       1,
		Events:     events,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := events.Close(); err != nil {
		t.Fatal(err)
	}
	if !res.ConvergedLeaky {
		t.Fatal("fixture no longer converges; property test has nothing to check")
	}

	// The exhaustive half: same cipher, same seed (hence same derived
	// key), same trace budget and threshold, order-2 pairs on.
	atlas, err := explorefault.Sweep(context.Background(), explorefault.SweepConfig{
		Cipher:  "gift64",
		Rounds:  []int{25},
		Samples: 256,
		Order2:  true,
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if kh := atlas.KeyHex; kh != hexKey(res.Key) {
		t.Fatalf("sweep key %s != discovery key %s: seed-matched runs diverged", kh, hexKey(res.Key))
	}

	rep, err := explorefault.CompareAtlas(atlas, 25, bytes.NewReader(log.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Episodes < 160 {
		t.Fatalf("comparator read %d episodes, want >= 160 (event log truncated?)", rep.Episodes)
	}
	// The property, comparator form: no leaky episode and no verified
	// harvested model may land on a cell the exhaustive sweep classified
	// not exploitable.
	if rep.Mismatches != 0 {
		t.Errorf("%d leaky episodes map onto atlas cells the sweep says are NOT exploitable", rep.Mismatches)
	}
	if rep.ModelMismatches != 0 {
		t.Errorf("%d verified models map onto atlas cells the sweep says are NOT exploitable", rep.ModelMismatches)
	}
	if rep.VerifiedModels == 0 {
		t.Error("event log carried no model_verified events")
	}
	if rep.FoundCells > 0 && rep.EpisodesToFirstHit == 0 {
		t.Error("found cells but no episodes-to-first-hit recorded")
	}
	if rep.ExploitableCells == 0 {
		t.Error("atlas has no exploitable cells at GIFT-64 round 25")
	}

	// The property, typed form: walk the harvested models directly. A
	// model whose pattern exactly tiles <= 2 whole nibbles must be an
	// exploitable cell of the atlas under the same fault model.
	cellOf := map[string]*explorefault.AtlasCell{}
	for i := range atlas.Cells {
		c := &atlas.Cells[i]
		cellOf[fmt.Sprintf("%v|%s", c.Pos, c.Model)] = c
	}
	checked := 0
	for _, m := range res.Models {
		groups := m.Pattern.Groups(atlas.GranBits)
		if m.Pattern.Count() != atlas.GranBits*len(groups) {
			continue // partial-position pattern: not an atlas cell
		}
		if len(groups) == 0 || len(groups) > 2 {
			continue // wider than the order-2 atlas
		}
		cell, ok := cellOf[fmt.Sprintf("%v|%s", groups, m.Fault.String())]
		if !ok {
			t.Errorf("model %v maps to no atlas cell (pos %v)", m, groups)
			continue
		}
		checked++
		if !cell.Exploitable {
			t.Errorf("RL reports model %v exploitable (t=%.1f) but atlas cell %v has t=%.1f <= %.1f",
				m, m.T, groups, cell.T, atlas.Threshold)
		}
	}
	if checked == 0 {
		t.Error("no harvested model mapped onto the atlas; the typed property checked nothing")
	}
	t.Logf("coverage: %d/%d exploitable cells found in %d episodes (first hit at %d, off-atlas %d); %d/%d harvested models checked against the atlas",
		rep.FoundCells, rep.ExploitableCells, rep.Episodes, rep.EpisodesToFirstHit, rep.OffAtlas, checked, len(res.Models))
}

func hexKey(key []byte) string {
	const digits = "0123456789abcdef"
	out := make([]byte, 0, 2*len(key))
	for _, b := range key {
		out = append(out, digits[b>>4], digits[b&0xf])
	}
	return string(out)
}
