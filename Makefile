GO ?= go

.PHONY: all build test check vet race bench fmt

all: build

build:
	$(GO) build ./...

# Full test suite (what CI gates on).
test:
	$(GO) test ./...

# Fast pre-commit gate: vet + race-enabled short tests.
# Long training runs (determinism table test, full discovery sessions)
# skip themselves under -short; the race detector still covers the
# sharded campaign workers, the shared reference table, and the cache.
check: vet race

vet:
	$(GO) vet ./...

race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem -run '^$$' ./...

fmt:
	gofmt -l -w .
