GO ?= go
BENCH_OUT ?= BENCH_pr10.json
BENCH_BASE ?= BENCH_pr9.json
BENCH_LABEL ?= after
FUZZTIME ?= 10s

.PHONY: all build test check vet race bench bench-all bench-compare fuzz smoke-resume smoke-trace smoke-atlas smoke-server fmt

all: build

build:
	$(GO) build ./...

# Full test suite (what CI gates on).
test:
	$(GO) test ./...

# Fast pre-commit gate: vet + race-enabled short tests.
# Long training runs (determinism table test, full discovery sessions)
# skip themselves under -short; the race detector still covers the
# sharded campaign workers, the shared reference table, and the cache.
check: vet race

vet:
	$(GO) vet ./...

race:
	$(GO) test -race -short ./...

# Engine benchmarks (campaign, oracle, per-cipher fork kernels, DFA key
# recovery, atlas sweeps), 5 repetitions averaged into $(BENCH_OUT) under
# label $(BENCH_LABEL). Run with BENCH_LABEL=before on the parent commit
# to record a baseline; entries of other labels in an existing file are
# preserved.
bench:
	$(GO) test -run '^$$' -bench 'Campaign|Oracle|Encrypt|DFA|Sweep' -benchmem -count 5 . \
		| $(GO) run ./cmd/benchjson -label $(BENCH_LABEL) -o $(BENCH_OUT)

# Every benchmark in the repo, including the paper-table harness runs.
bench-all:
	$(GO) test -bench=. -benchmem -run '^$$' ./...

# Compare this PR's benchmark record against the checked-in baseline;
# exits nonzero when any shared benchmark slowed down beyond 20%.
bench-compare:
	$(GO) run ./cmd/benchjson -compare $(BENCH_BASE) $(BENCH_OUT)

# Fuzz smoke: each native fuzz target for FUZZTIME (go test allows one
# -fuzz target per invocation). The checked-in seed corpora under
# testdata/fuzz/ always run as part of `make test` too.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzEncryptDecrypt$$' -fuzztime $(FUZZTIME) ./internal/ciphers
	$(GO) test -run '^$$' -fuzz '^FuzzBatchScalarEquivalence$$' -fuzztime $(FUZZTIME) ./internal/ciphers
	$(GO) test -run '^$$' -fuzz '^FuzzAccumulatorMerge$$' -fuzztime $(FUZZTIME) ./internal/stats
	$(GO) test -run '^$$' -fuzz '^FuzzCheckpointDecode$$' -fuzztime $(FUZZTIME) ./internal/checkpoint
	$(GO) test -run '^$$' -fuzz '^FuzzFaultApply$$' -fuzztime $(FUZZTIME) ./internal/fault

# Kill-and-resume smoke: SIGINT a checkpointing discovery run mid-training,
# verify the event log survived intact, resume, and compare against an
# uninterrupted reference run.
smoke-resume:
	sh scripts/smoke_resume.sh

# Traced-run smoke: tiny discovery run with -events and -trace, validate
# the Chrome trace, and run obsreport over the artifacts.
smoke-trace:
	sh scripts/smoke_trace.sh

# Exhaustive-sweep smoke: reduced-round atlas sweep, SIGINT'd mid-run and
# resumed bit-identically, plus tracecheck, atlas -validate, and a
# coverage replay of a real discovery event log.
smoke-atlas:
	sh scripts/smoke_atlas.sh

# Daemon restart smoke: SIGTERM explorefaultd mid-job, restart it on the
# same data directory, and require the resumed job's result and
# normalized event stream to match an uninterrupted daemon's byte for
# byte.
smoke-server:
	sh scripts/smoke_server.sh

fmt:
	gofmt -l -w .
