package explorefault_test

import (
	"context"
	"fmt"
	"math"
	"testing"

	explorefault "repro"
	"repro/internal/bitvec"
	"repro/internal/ciphers"
	"repro/internal/evaluate"
	"repro/internal/fault"
	"repro/internal/prng"
	"repro/internal/stats"
)

// floatBits renders a float64 slice as raw bit patterns so comparisons
// catch any drift, however small.
func floatBits(xs []float64) string {
	s := ""
	for _, x := range xs {
		s += fmt.Sprintf("%016x", math.Float64bits(x))
	}
	return s
}

// accFingerprint compresses the raw power and cross sums of a merged
// accumulator set into a comparable string.
func accFingerprint(accs []*stats.Accumulator) string {
	s := ""
	for _, a := range accs {
		pow, cross := a.RawSums()
		s += fmt.Sprintf("n=%d|%s|%s;", a.N(), floatBits(pow), floatBits(cross))
	}
	return s
}

// TestBatchScalarEquivalence is the golden-vector table of the batch
// engine: for every registered cipher and a grid of (pattern, mode)
// choices it asserts that the batch path and the scalar reference path
// produce bit-identical trace matrices (captured point states) and
// bit-identical merged accumulator sums for worker counts 1 and 4.
// Ciphers without a batch kernel exercise the dispatch fallback.
func TestBatchScalarEquivalence(t *testing.T) {
	const samples = 300
	keyRng := prng.New(0xbadc)
	for _, name := range explorefault.Ciphers() {
		info, err := ciphers.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		key := make([]byte, info.KeyBytes)
		keyRng.Fill(key)
		c, err := info.New(key)
		if err != nil {
			t.Fatal(err)
		}
		stateBits := 8 * info.BlockBytes
		round := info.Rounds - 5
		if round < 1 {
			round = 1
		}
		points := fault.PointsWindow(c, round, fault.DefaultLag, fault.DefaultWindow)
		ng := stateBits / info.GroupBits
		patterns := map[string]bitvec.Vector{
			"bit":    bitvec.FromBits(stateBits, stateBits/2),
			"group":  explorefault.PatternFromGroups(stateBits, info.GroupBits, 1),
			"spread": explorefault.PatternFromGroups(stateBits, info.GroupBits, 0, ng/2, ng-1),
		}
		for _, mode := range []fault.Mode{fault.RandomMask, fault.FlipAll} {
			for pname, pat := range patterns {
				t.Run(fmt.Sprintf("%s/%v/%s", name, mode, pname), func(t *testing.T) {
					mk := func(noBatch bool) fault.Campaign {
						return fault.Campaign{
							Cipher:    c,
							Pattern:   pat,
							Round:     round,
							Mode:      mode,
							Samples:   samples,
							Points:    points,
							GroupBits: info.GroupBits,
							NoBatch:   noBatch,
						}
					}

					// Trace matrices: identical grouped differentials per
					// (sample, point), i.e. identical captured states.
					scalarCp, batchCp := mk(true), mk(false)
					wantRes, err := scalarCp.Collect(prng.New(42))
					if err != nil {
						t.Fatal(err)
					}
					gotRes, err := batchCp.Collect(prng.New(42))
					if err != nil {
						t.Fatal(err)
					}
					for pi := range wantRes.Matrices {
						for s := range wantRes.Matrices[pi] {
							if floatBits(gotRes.Matrices[pi][s]) != floatBits(wantRes.Matrices[pi][s]) {
								t.Fatalf("point %d sample %d: batch differential diverges from scalar", pi, s)
							}
						}
					}

					// Merged accumulators: bit-identical power sums for
					// every (path, worker-count) combination.
					want := ""
					for _, noBatch := range []bool{true, false} {
						cp := mk(noBatch)
						if err := cp.Validate(); err != nil {
							t.Fatal(err)
						}
						for _, workers := range []int{1, 4} {
							accs, err := evaluate.RunSharded(context.Background(), samples, workers, len(points), cp.Groups(), 2, 99,
								func(rng *prng.Source, shard, n int, shardAccs []*stats.Accumulator) error {
									return cp.CollectInto(rng, n, shardAccs)
								})
							if err != nil {
								t.Fatal(err)
							}
							fp := accFingerprint(accs)
							if want == "" {
								want = fp
							} else if fp != want {
								t.Errorf("noBatch=%v workers=%d: accumulator sums diverge from scalar/workers=1", noBatch, workers)
							}
						}
					}
				})
			}
		}
	}
}

// TestBatchScalarEquivalenceModels extends the golden-vector table along
// the fault-model axis: every registered cipher × typed fault model must
// produce bit-identical trace matrices and merged accumulator sums on the
// batch and scalar paths for worker counts 1 and 4. This covers all three
// dispatch tiers of EncryptForksOps: the XOR-only hot path (XorFlip), the
// FaultKernel (AND, XOR) lanes where a kernel has them, and the automatic
// scalar fallback where it does not.
func TestBatchScalarEquivalenceModels(t *testing.T) {
	const samples = 200
	keyRng := prng.New(0xfade)
	for _, name := range explorefault.Ciphers() {
		info, err := ciphers.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		key := make([]byte, info.KeyBytes)
		keyRng.Fill(key)
		c, err := info.New(key)
		if err != nil {
			t.Fatal(err)
		}
		stateBits := 8 * info.BlockBytes
		round := info.Rounds - 5
		if round < 1 {
			round = 1
		}
		points := fault.PointsWindow(c, round, fault.DefaultLag, fault.DefaultWindow)
		ng := stateBits / info.GroupBits
		pat := explorefault.PatternFromGroups(stateBits, info.GroupBits, 0, ng/2, ng-1)
		for _, model := range fault.Models() {
			t.Run(fmt.Sprintf("%s/%s", name, model), func(t *testing.T) {
				mk := func(noBatch bool) fault.Campaign {
					return fault.Campaign{
						Cipher:    c,
						Pattern:   pat,
						Round:     round,
						Model:     model,
						Samples:   samples,
						Points:    points,
						GroupBits: info.GroupBits,
						NoBatch:   noBatch,
					}
				}

				scalarCp, batchCp := mk(true), mk(false)
				wantRes, err := scalarCp.Collect(prng.New(77))
				if err != nil {
					t.Fatal(err)
				}
				gotRes, err := batchCp.Collect(prng.New(77))
				if err != nil {
					t.Fatal(err)
				}
				for pi := range wantRes.Matrices {
					for s := range wantRes.Matrices[pi] {
						if floatBits(gotRes.Matrices[pi][s]) != floatBits(wantRes.Matrices[pi][s]) {
							t.Fatalf("point %d sample %d: batch differential diverges from scalar", pi, s)
						}
					}
				}

				want := ""
				for _, noBatch := range []bool{true, false} {
					cp := mk(noBatch)
					if err := cp.Validate(); err != nil {
						t.Fatal(err)
					}
					for _, workers := range []int{1, 4} {
						accs, err := evaluate.RunSharded(context.Background(), samples, workers, len(points), cp.Groups(), 2, 99,
							func(rng *prng.Source, shard, n int, shardAccs []*stats.Accumulator) error {
								return cp.CollectInto(rng, n, shardAccs)
							})
						if err != nil {
							t.Fatal(err)
						}
						fp := accFingerprint(accs)
						if want == "" {
							want = fp
						} else if fp != want {
							t.Errorf("noBatch=%v workers=%d: accumulator sums diverge from scalar/workers=1", noBatch, workers)
						}
					}
				}
			})
		}
	}
}

// TestProtectedBatchScalarEquivalence: the countermeasure oracle must
// return bit-identical statistics (and muted counts, which feed the PRNG
// stream) on the batch and scalar paths for any worker count.
func TestProtectedBatchScalarEquivalence(t *testing.T) {
	for _, name := range []string{"aes128", "gift64"} {
		info, err := ciphers.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		stateBits := 8 * info.BlockBytes
		round := info.Rounds - 5
		// The same single bit in both branches survives duplication often
		// enough to exercise both the match and the mute paths.
		pattern := explorefault.PatternFromBits(2*stateBits, 12, stateBits+12)
		var want uint64
		first := true
		for _, noBatch := range []bool{true, false} {
			for _, workers := range []int{1, 4} {
				res, err := explorefault.AssessProtected(pattern, explorefault.AssessConfig{
					Cipher:  name,
					Round:   round,
					Samples: 320,
					Workers: workers,
					NoBatch: noBatch,
					Seed:    17,
				})
				if err != nil {
					t.Fatal(err)
				}
				bits := math.Float64bits(res.T)
				if first {
					want, first = bits, false
					continue
				}
				if bits != want {
					t.Errorf("%s noBatch=%v workers=%d: T bits %x != scalar bits %x",
						name, noBatch, workers, bits, want)
				}
			}
		}
	}
}
