package explorefault

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"path/filepath"

	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/sweep"
)

// JobServer is the campaign job server behind cmd/explorefaultd: an
// HTTP/JSON API that schedules discovery, assessment and sweep jobs
// across a worker pool, persists job state through the checkpoint store
// so a daemon restart resumes in-flight jobs bit-identically, and
// streams per-job run events over SSE. See internal/server for the
// scheduler and README's "Serving campaigns" for the API.
type JobServer = server.Server

// JobSpec is the POST /jobs request body: job type, tenant, optional
// sweep shard range, and the engine configuration document.
type JobSpec = server.Spec

// JobRecord is one submitted job's durable record.
type JobRecord = server.Job

// JobState is a job's lifecycle state (queued, running, done, failed,
// cancelled).
type JobState = server.State

// JobUsage is one job's resource accounting (wall/CPU/queue seconds,
// work counters, peak heap delta), accumulated across attempts and
// exposed on the job record, in GET /stats aggregates and in the
// per-attempt job_usage event.
type JobUsage = server.Usage

// FleetStats is the GET /stats response: per-tenant job counts, state
// breakdowns and usage aggregates, plus fleet-wide totals.
type FleetStats = server.Stats

// TenantStats is one tenant's slice of FleetStats.
type TenantStats = server.TenantStats

// JobServerConfig tunes NewJobServer. Zero values select defaults
// (2 workers, per-tenant quota = worker count).
type JobServerConfig struct {
	// DataDir is the daemon state directory (job table, per-job engine
	// checkpoints, event logs and output artifacts). Required.
	DataDir string
	// Workers is the job worker-pool size.
	Workers int
	// TenantQuota bounds concurrently running jobs per tenant.
	TenantQuota int
	// Metrics/Events receive scheduler instrumentation and job
	// lifecycle events; nil disables.
	Metrics *Metrics
	Events  *EventEmitter
}

// NewJobServer builds a job server wired to the real engines: discover
// jobs run DiscoverContext, assess jobs AssessContext (or
// AssessProtectedContext), sweep jobs the exhaustive sweep engine.
// Close the returned server to stop it; restarting one on the same
// DataDir resumes interrupted jobs from their engine checkpoints.
//
// With Metrics set, the server's /metrics endpoint serves the composed
// fleet view: scheduler instruments plus every job's own metrics folded
// under tenant/kind/cipher/fault_model labels, so per-tenant labeled
// series sum to the unlabeled totals. Per-job cost (JobUsage) appears
// on GET /jobs/{id}, aggregated per tenant on GET /stats, and as a
// job_usage event in each job's log for offline fleet reports
// (obsreport -fleet).
func NewJobServer(cfg JobServerConfig) (*JobServer, error) {
	return server.New(server.Config{
		DataDir:     cfg.DataDir,
		Workers:     cfg.Workers,
		TenantQuota: cfg.TenantQuota,
		Runner:      jobRunner{},
		Metrics:     cfg.Metrics,
		Events:      cfg.Events,
	})
}

// MergeAtlases reassembles the partial atlases of shard-ranged sweep
// jobs (JobSpec.ShardRange) into the full document. The merge is exact:
// the parts must tile the full shard range of one configuration, and
// the result is byte-identical to a single-process sweep of the same
// config.
func MergeAtlases(parts ...*Atlas) (*Atlas, error) { return sweep.Merge(parts...) }

// discoverJob is the config document of a "discover" job: the JSON
// projection of DiscoverConfig (keys in hex, fault models and oracles by
// CLI name). Checkpointing and resume are managed by the server.
type discoverJob struct {
	Cipher           string       `json:"cipher"`
	Key              string       `json:"key,omitempty"`
	Round            int          `json:"round"`
	Protected        bool         `json:"protected,omitempty"`
	FaultModels      []FaultModel `json:"fault_models,omitempty"`
	Oracle           OracleKind   `json:"oracle,omitempty"`
	Episodes         int          `json:"episodes,omitempty"`
	NumEnvs          int          `json:"num_envs,omitempty"`
	Samples          int          `json:"samples,omitempty"`
	Seed             uint64       `json:"seed,omitempty"`
	LinearReward     bool         `json:"linear_reward,omitempty"`
	RewardAtEachStep bool         `json:"reward_at_each_step,omitempty"`
	EpisodeLen       int          `json:"episode_len,omitempty"`
	Workers          int          `json:"workers,omitempty"`
	NoBatch          bool         `json:"no_batch,omitempty"`
	NoOracleCache    bool         `json:"no_oracle_cache,omitempty"`
	CacheCapacity    int          `json:"cache_capacity,omitempty"`
	MaxHarvest       int          `json:"max_harvest,omitempty"`
	CheckpointEvery  int          `json:"checkpoint_every,omitempty"`
}

// assessJob is the config document of an "assess" job. The pattern is
// given as explicit bit indices or group indices (nibbles/bytes at the
// cipher's native width), exactly like the -bits / -groups CLI flags.
type assessJob struct {
	Cipher     string     `json:"cipher"`
	Key        string     `json:"key,omitempty"`
	Round      int        `json:"round"`
	Bits       []int      `json:"bits,omitempty"`
	Groups     []int      `json:"groups,omitempty"`
	Protected  bool       `json:"protected,omitempty"`
	Samples    int        `json:"samples,omitempty"`
	MaxOrder   int        `json:"max_order,omitempty"`
	FixedOrder int        `json:"fixed_order,omitempty"`
	Threshold  float64    `json:"threshold,omitempty"`
	GroupBits  int        `json:"group_bits,omitempty"`
	FaultModel FaultModel `json:"fault_model,omitempty"`
	Oracle     OracleKind `json:"oracle,omitempty"`
	Workers    int        `json:"workers,omitempty"`
	NoBatch    bool       `json:"no_batch,omitempty"`
	Seed       uint64     `json:"seed,omitempty"`
}

// sweepJob is the config document of a "sweep" job: the JSON projection
// of SweepConfig. The shard range comes from JobSpec.ShardRange, not the
// config, so fan-out across daemons is a spec-level change.
type sweepJob struct {
	Cipher    string       `json:"cipher"`
	Key       string       `json:"key,omitempty"`
	Rounds    []int        `json:"rounds,omitempty"`
	GranBits  int          `json:"gran_bits,omitempty"`
	Models    []FaultModel `json:"models,omitempty"`
	Oracle    OracleKind   `json:"oracle,omitempty"`
	Samples   int          `json:"samples,omitempty"`
	MaxOrder  int          `json:"max_order,omitempty"`
	GroupBits int          `json:"group_bits,omitempty"`
	Threshold float64      `json:"threshold,omitempty"`
	Lag       int          `json:"lag,omitempty"`
	Window    int          `json:"window,omitempty"`
	Order2    bool         `json:"order2,omitempty"`
	Order2Cap int          `json:"order2_cap,omitempty"`
	Workers   int          `json:"workers,omitempty"`
	NoBatch   bool         `json:"no_batch,omitempty"`
	Seed      uint64       `json:"seed,omitempty"`
}

// jobRunner adapts the engines to the scheduler's Runner interface.
type jobRunner struct{}

// decodeStrict decodes a config document rejecting unknown fields, so a
// typo in a job spec is a 400 at submission, not a silently-default run.
func decodeStrict(raw json.RawMessage, v any) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	return nil
}

func parseKeyHex(s string) ([]byte, error) {
	if s == "" {
		return nil, nil
	}
	key, err := hex.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("bad key hex: %v", err)
	}
	return key, nil
}

// Validate decodes and sanity-checks a job spec without running anything.
func (jobRunner) Validate(spec JobSpec) error {
	switch spec.Type {
	case server.TypeDiscover:
		var d discoverJob
		if err := decodeStrict(spec.Config, &d); err != nil {
			return err
		}
		if _, err := parseKeyHex(d.Key); err != nil {
			return err
		}
		info, err := LookupCipher(d.Cipher)
		if err != nil {
			return err
		}
		if d.Round < 1 || d.Round > info.Rounds {
			return fmt.Errorf("round %d out of range 1..%d for %s", d.Round, info.Rounds, d.Cipher)
		}
		return nil
	case server.TypeAssess:
		var a assessJob
		if err := decodeStrict(spec.Config, &a); err != nil {
			return err
		}
		if _, err := parseKeyHex(a.Key); err != nil {
			return err
		}
		info, err := LookupCipher(a.Cipher)
		if err != nil {
			return err
		}
		if a.Round < 1 || a.Round > info.Rounds {
			return fmt.Errorf("round %d out of range 1..%d for %s", a.Round, info.Rounds, a.Cipher)
		}
		if len(a.Bits) == 0 && len(a.Groups) == 0 {
			return fmt.Errorf("assess job needs bits or groups")
		}
		return nil
	case server.TypeSweep:
		var s sweepJob
		if err := decodeStrict(spec.Config, &s); err != nil {
			return err
		}
		if _, err := parseKeyHex(s.Key); err != nil {
			return err
		}
		_, err := LookupCipher(s.Cipher)
		return err
	default:
		return fmt.Errorf("unknown job type %q", spec.Type)
	}
}

// Run executes a job. Every result document is deterministic — a pure
// function of the spec — and deliberately excludes wall-clock figures,
// so an interrupted-and-resumed job finishes with bytes identical to an
// uninterrupted run.
func (jobRunner) Run(ctx context.Context, spec JobSpec, files server.Files, metrics *obs.Registry, events *obs.Emitter) (json.RawMessage, error) {
	switch spec.Type {
	case server.TypeDiscover:
		return runDiscoverJob(ctx, spec, files, metrics, events)
	case server.TypeAssess:
		return runAssessJob(ctx, spec, metrics, events)
	case server.TypeSweep:
		return runSweepJob(ctx, spec, files, metrics, events)
	}
	return nil, fmt.Errorf("unknown job type %q", spec.Type)
}

func runDiscoverJob(ctx context.Context, spec JobSpec, files server.Files, metrics *obs.Registry, events *obs.Emitter) (json.RawMessage, error) {
	var d discoverJob
	if err := decodeStrict(spec.Config, &d); err != nil {
		return nil, err
	}
	key, err := parseKeyHex(d.Key)
	if err != nil {
		return nil, err
	}
	res, err := DiscoverContext(ctx, DiscoverConfig{
		Cipher:           d.Cipher,
		Key:              key,
		Round:            d.Round,
		Protected:        d.Protected,
		FaultModels:      d.FaultModels,
		Oracle:           d.Oracle,
		Episodes:         d.Episodes,
		NumEnvs:          d.NumEnvs,
		Samples:          d.Samples,
		Seed:             d.Seed,
		LinearReward:     d.LinearReward,
		RewardAtEachStep: d.RewardAtEachStep,
		EpisodeLen:       d.EpisodeLen,
		Workers:          d.Workers,
		NoBatch:          d.NoBatch,
		NoOracleCache:    d.NoOracleCache,
		CacheCapacity:    d.CacheCapacity,
		MaxHarvest:       d.MaxHarvest,
		CheckpointEvery:  d.CheckpointEvery,
		Checkpoint:       files.Checkpoint,
		Resume:           true, // missing checkpoint starts fresh; present resumes
		Metrics:          metrics,
		Events:           events,
	})
	if err != nil {
		return nil, err
	}
	type modelDoc struct {
		Class     string     `json:"class"`
		Groups    []int      `json:"groups,omitempty"`
		GroupBits int        `json:"group_bits,omitempty"`
		Fault     FaultModel `json:"fault"`
		Bits      []int      `json:"bits"`
		T         float64    `json:"t"`
	}
	models := make([]modelDoc, 0, len(res.Models))
	for _, m := range res.Models {
		models = append(models, modelDoc{
			Class:     m.Class.String(),
			Groups:    m.Groups,
			GroupBits: m.GroupBits,
			Fault:     m.Fault,
			Bits:      m.Pattern.Bits(),
			T:         m.T,
		})
	}
	// Training-rate figures (duration, episodes/min) are intentionally
	// absent: they are wall-clock, and the result must be bit-identical
	// across daemon restarts.
	return json.Marshal(map[string]any{
		"cipher":   d.Cipher,
		"round":    d.Round,
		"bits":     res.Converged.Bits(),
		"t":        res.ConvergedT,
		"leaky":    res.ConvergedLeaky,
		"fault":    res.ConvergedModel,
		"episodes": res.Episodes,
		"models":   models,
	})
}

func runAssessJob(ctx context.Context, spec JobSpec, metrics *obs.Registry, events *obs.Emitter) (json.RawMessage, error) {
	var a assessJob
	if err := decodeStrict(spec.Config, &a); err != nil {
		return nil, err
	}
	key, err := parseKeyHex(a.Key)
	if err != nil {
		return nil, err
	}
	info, err := LookupCipher(a.Cipher)
	if err != nil {
		return nil, err
	}
	stateBits := info.BlockBytes * 8
	if a.Protected {
		stateBits *= 2
	}
	var pattern Pattern
	if len(a.Bits) > 0 {
		pattern = PatternFromBits(stateBits, a.Bits...)
	} else {
		pattern = PatternFromGroups(stateBits, info.GroupBits, a.Groups...)
	}
	cfg := AssessConfig{
		Cipher:     a.Cipher,
		Key:        key,
		Round:      a.Round,
		Samples:    a.Samples,
		MaxOrder:   a.MaxOrder,
		FixedOrder: a.FixedOrder,
		Threshold:  a.Threshold,
		GroupBits:  a.GroupBits,
		FaultModel: a.FaultModel,
		Oracle:     a.Oracle,
		Workers:    a.Workers,
		NoBatch:    a.NoBatch,
		Seed:       a.Seed,
		Metrics:    metrics,
		Events:     events,
	}
	var res Assessment
	if a.Protected {
		res, err = AssessProtectedContext(ctx, pattern, cfg)
	} else {
		res, err = AssessContext(ctx, pattern, cfg)
	}
	if err != nil {
		return nil, err
	}
	return json.Marshal(map[string]any{
		"cipher":    a.Cipher,
		"round":     a.Round,
		"t":         res.T,
		"leaky":     res.Leaky,
		"threshold": res.Threshold,
		"order":     res.Order,
		"point":     res.Point,
	})
}

func runSweepJob(ctx context.Context, spec JobSpec, files server.Files, metrics *obs.Registry, events *obs.Emitter) (json.RawMessage, error) {
	var s sweepJob
	if err := decodeStrict(spec.Config, &s); err != nil {
		return nil, err
	}
	key, err := parseKeyHex(s.Key)
	if err != nil {
		return nil, err
	}
	atlas, err := Sweep(ctx, SweepConfig{
		Cipher:     s.Cipher,
		Key:        key,
		Rounds:     s.Rounds,
		GranBits:   s.GranBits,
		Models:     s.Models,
		Oracle:     s.Oracle,
		Samples:    s.Samples,
		MaxOrder:   s.MaxOrder,
		GroupBits:  s.GroupBits,
		Threshold:  s.Threshold,
		Lag:        s.Lag,
		Window:     s.Window,
		Order2:     s.Order2,
		Order2Cap:  s.Order2Cap,
		ShardLo:    spec.ShardRange[0],
		ShardHi:    spec.ShardRange[1],
		Workers:    s.Workers,
		NoBatch:    s.NoBatch,
		Seed:       s.Seed,
		Checkpoint: files.Checkpoint,
		Metrics:    metrics,
		Events:     events,
	})
	if err != nil {
		return nil, err
	}
	if err := atlas.WriteFile(files.Output); err != nil {
		return nil, err
	}
	canon, err := atlas.MarshalCanonical()
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(canon)
	return json.Marshal(map[string]any{
		"cipher":      s.Cipher,
		"cells":       atlas.Summary.Cells,
		"exploitable": atlas.Summary.Exploitable,
		"max_t":       atlas.Summary.MaxT,
		"shard_range": spec.ShardRange,
		"sha256":      hex.EncodeToString(sum[:]),
		"atlas":       filepath.Base(files.Output),
	})
}
