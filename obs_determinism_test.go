package explorefault_test

import (
	"context"
	"io"
	"math"
	"testing"

	explorefault "repro"
	"repro/internal/obs/trace"
)

// TestObservabilityDoesNotPerturbResults is the zero-cost pattern's
// correctness half: enabling the metrics registry, the event emitter, or
// the span tracer must leave every campaign and discovery result
// bit-identical, because instrumentation never touches a PRNG stream.
// The table covers the unprotected oracle, the countermeasure oracle,
// and a full discovery session, each run with observability off, metrics
// only, metrics plus events, and full tracing.
func TestObservabilityDoesNotPerturbResults(t *testing.T) {
	type variant struct {
		name    string
		metrics bool
		labeled bool // labeled families + scrape-time runtime collector
		events  bool
		tracing bool
	}
	variants := []variant{
		{name: "off"},
		{name: "metrics", metrics: true},
		{name: "labeled+runtime", metrics: true, labeled: true},
		{name: "metrics+events", metrics: true, events: true},
		{name: "tracing", tracing: true},
		{name: "everything", metrics: true, labeled: true, events: true, tracing: true},
	}
	// newMetrics builds a variant's registry; labeled variants also turn
	// on the runtime collector and populate labeled families, proving the
	// fleet-observability configuration is as inert as plain counters.
	newMetrics := func(v variant) *explorefault.Metrics {
		m := explorefault.NewMetrics()
		if v.labeled {
			m.EnableRuntimeMetrics()
			m.CounterVec("test.jobs_total", "tenant", "kind").With("t1", "assess").Inc()
			m.GaugeVec("test.level", "tenant").With("t1").Set(1)
		}
		return m
	}
	instrument := func(v variant, cfg *explorefault.AssessConfig) {
		if v.metrics {
			cfg.Metrics = newMetrics(v)
		}
		if v.events {
			cfg.Events = explorefault.NewEventEmitter(io.Discard)
		}
	}
	// requireLabeled asserts a labeled variant's snapshot (which also
	// triggers a runtime-collector sample, like a /metrics scrape) carries
	// the labeled series and the runtime telemetry.
	requireLabeled := func(t *testing.T, v variant, m *explorefault.Metrics) {
		t.Helper()
		if !v.labeled {
			return
		}
		s := m.Snapshot()
		if s.CounterVecs["test.jobs_total"].Series[`{kind="assess",tenant="t1"}`] != 1 {
			t.Errorf("%s: labeled series missing from snapshot", v.name)
		}
		if _, ok := s.Gauges["runtime.goroutines"]; !ok {
			t.Errorf("%s: runtime collector enabled but no telemetry sampled", v.name)
		}
	}
	// traceCtx returns the run context of a variant: background, or one
	// carrying a root span of an in-memory tracer so every instrumented
	// layer below records spans.
	traceCtx := func(v variant) (context.Context, *trace.Tracer) {
		ctx := context.Background()
		if !v.tracing {
			return ctx, nil
		}
		tr := trace.New()
		_, ctx = tr.StartRoot(ctx, trace.SpanRun)
		return ctx, tr
	}
	// requireSpans asserts that a tracing variant actually recorded spans
	// (otherwise the variant silently tests nothing).
	requireSpans := func(t *testing.T, v variant, tr *trace.Tracer) {
		t.Helper()
		if !v.tracing {
			return
		}
		var buf countingWriter
		if err := tr.Export(&buf); err != nil {
			t.Fatalf("%s: exporting trace: %v", v.name, err)
		}
		if buf.n == 0 {
			t.Errorf("%s: tracing enabled but no spans recorded", v.name)
		}
	}

	t.Run("assess", func(t *testing.T) {
		pattern := explorefault.PatternFromGroups(64, 4, 5)
		var want uint64
		for i, v := range variants {
			cfg := explorefault.AssessConfig{
				Cipher: "gift64", Round: 25, Samples: 640, Workers: 4, Seed: 9,
			}
			instrument(v, &cfg)
			ctx, tr := traceCtx(v)
			res, err := explorefault.AssessContext(ctx, pattern, cfg)
			if err != nil {
				t.Fatal(err)
			}
			requireSpans(t, v, tr)
			requireLabeled(t, v, cfg.Metrics)
			bits := math.Float64bits(res.T)
			if i == 0 {
				want = bits
				continue
			}
			if bits != want {
				t.Errorf("%s: T bits %x != off bits %x", v.name, bits, want)
			}
		}
	})

	t.Run("assess_typed", func(t *testing.T) {
		// Same contract along the fault-model axis: a typed (AND, XOR)
		// campaign under the SIFA oracle must be indifferent to
		// instrumentation too.
		pattern := explorefault.PatternFromGroups(64, 4, 5)
		for _, model := range explorefault.FaultModels() {
			var want uint64
			for i, v := range variants {
				cfg := explorefault.AssessConfig{
					Cipher: "gift64", Round: 25, Samples: 320, Workers: 4, Seed: 9,
					FaultModel: model, Oracle: explorefault.OracleSIFA,
				}
				instrument(v, &cfg)
				ctx, tr := traceCtx(v)
				res, err := explorefault.AssessContext(ctx, pattern, cfg)
				if err != nil {
					t.Fatal(err)
				}
				requireSpans(t, v, tr)
				requireLabeled(t, v, cfg.Metrics)
				bits := math.Float64bits(res.T)
				if i == 0 {
					want = bits
					continue
				}
				if bits != want {
					t.Errorf("%s/%s: T bits %x != off bits %x", model, v.name, bits, want)
				}
			}
		}
	})

	t.Run("assess_protected", func(t *testing.T) {
		pattern := explorefault.PatternFromBits(128, 12, 64+12)
		var want uint64
		for i, v := range variants {
			cfg := explorefault.AssessConfig{
				Cipher: "gift64", Round: 25, Samples: 640, Workers: 4, Seed: 13,
			}
			instrument(v, &cfg)
			ctx, tr := traceCtx(v)
			res, err := explorefault.AssessProtectedContext(ctx, pattern, cfg)
			if err != nil {
				t.Fatal(err)
			}
			requireSpans(t, v, tr)
			requireLabeled(t, v, cfg.Metrics)
			bits := math.Float64bits(res.T)
			if i == 0 {
				want = bits
				continue
			}
			if bits != want {
				t.Errorf("%s: T bits %x != off bits %x", v.name, bits, want)
			}
		}
	})

	t.Run("discover", func(t *testing.T) {
		if testing.Short() {
			t.Skip("multi-variant training run")
		}
		var want string
		for i, v := range variants {
			cfg := explorefault.DiscoverConfig{
				Cipher:      "gift64",
				Round:       25,
				Episodes:    24,
				NumEnvs:     4,
				Samples:     128,
				Seed:        7,
				SkipHarvest: true,
			}
			if v.metrics {
				cfg.Metrics = newMetrics(v)
			}
			if v.events {
				cfg.Events = explorefault.NewEventEmitter(io.Discard)
			}
			ctx, tr := traceCtx(v)
			res, err := explorefault.DiscoverContext(ctx, cfg)
			if err != nil {
				t.Fatal(err)
			}
			requireSpans(t, v, tr)
			requireLabeled(t, v, cfg.Metrics)
			fp := discoverFingerprint(res)
			if i == 0 {
				want = fp
				continue
			}
			if fp != want {
				t.Errorf("%s: outcome diverged from uninstrumented run:\n got %s\nwant %s", v.name, fp, want)
			}
			if v.metrics && cfg.Metrics.Snapshot().Counters["explore.episodes_total"] == 0 {
				t.Errorf("%s: instrumentation enabled but episode counter never moved", v.name)
			}
		}
	})
}

// countingWriter counts bytes without keeping them.
type countingWriter struct{ n int }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += len(p)
	return len(p), nil
}
