package explorefault_test

import (
	"io"
	"math"
	"testing"

	explorefault "repro"
)

// TestObservabilityDoesNotPerturbResults is the zero-cost pattern's
// correctness half: enabling the metrics registry and the event emitter
// must leave every campaign and discovery result bit-identical, because
// instrumentation never touches a PRNG stream. The table covers the
// unprotected oracle, the countermeasure oracle, and a full discovery
// session, each run with observability off, metrics only, and metrics
// plus events.
func TestObservabilityDoesNotPerturbResults(t *testing.T) {
	type variant struct {
		name    string
		metrics bool
		events  bool
	}
	variants := []variant{
		{"off", false, false},
		{"metrics", true, false},
		{"metrics+events", true, true},
	}
	instrument := func(v variant, cfg *explorefault.AssessConfig) {
		if v.metrics {
			cfg.Metrics = explorefault.NewMetrics()
		}
		if v.events {
			cfg.Events = explorefault.NewEventEmitter(io.Discard)
		}
	}

	t.Run("assess", func(t *testing.T) {
		pattern := explorefault.PatternFromGroups(64, 4, 5)
		var want uint64
		for i, v := range variants {
			cfg := explorefault.AssessConfig{
				Cipher: "gift64", Round: 25, Samples: 640, Workers: 4, Seed: 9,
			}
			instrument(v, &cfg)
			res, err := explorefault.Assess(pattern, cfg)
			if err != nil {
				t.Fatal(err)
			}
			bits := math.Float64bits(res.T)
			if i == 0 {
				want = bits
				continue
			}
			if bits != want {
				t.Errorf("%s: T bits %x != off bits %x", v.name, bits, want)
			}
		}
	})

	t.Run("assess_protected", func(t *testing.T) {
		pattern := explorefault.PatternFromBits(128, 12, 64+12)
		var want uint64
		for i, v := range variants {
			cfg := explorefault.AssessConfig{
				Cipher: "gift64", Round: 25, Samples: 640, Workers: 4, Seed: 13,
			}
			instrument(v, &cfg)
			res, err := explorefault.AssessProtected(pattern, cfg)
			if err != nil {
				t.Fatal(err)
			}
			bits := math.Float64bits(res.T)
			if i == 0 {
				want = bits
				continue
			}
			if bits != want {
				t.Errorf("%s: T bits %x != off bits %x", v.name, bits, want)
			}
		}
	})

	t.Run("discover", func(t *testing.T) {
		if testing.Short() {
			t.Skip("multi-variant training run")
		}
		var want string
		for i, v := range variants {
			cfg := explorefault.DiscoverConfig{
				Cipher:      "gift64",
				Round:       25,
				Episodes:    24,
				NumEnvs:     4,
				Samples:     128,
				Seed:        7,
				SkipHarvest: true,
			}
			if v.metrics {
				cfg.Metrics = explorefault.NewMetrics()
			}
			if v.events {
				cfg.Events = explorefault.NewEventEmitter(io.Discard)
			}
			res, err := explorefault.Discover(cfg)
			if err != nil {
				t.Fatal(err)
			}
			fp := discoverFingerprint(res)
			if i == 0 {
				want = fp
				continue
			}
			if fp != want {
				t.Errorf("%s: outcome diverged from uninstrumented run:\n got %s\nwant %s", v.name, fp, want)
			}
			if v.metrics && cfg.Metrics.Snapshot().Counters["explore.episodes_total"] == 0 {
				t.Errorf("%s: instrumentation enabled but episode counter never moved", v.name)
			}
		}
	})
}
