#!/bin/sh
# Kill-and-resume smoke test: start a small discovery run with per-update
# checkpointing, SIGINT it mid-training, assert the interrupted process
# left a complete JSONL event log and a loadable checkpoint, resume with
# -resume, and require the resumed outcome to match an uninterrupted
# reference run line for line.
#
# Robust by construction: if the background run finishes before the
# signal lands, or the signal lands before the first episode, the resume
# path still produces the reference outcome (the eager initial checkpoint
# plus bit-identical resume make every interruption point equivalent).
set -eu

GO=${GO:-go}
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT

ARGS="-cipher gift64 -round 25 -episodes 48 -samples 128 -seed 7"
BIN="$DIR/explorefault"
$GO build -o "$BIN" ./cmd/explorefault

echo "== reference run (uninterrupted)"
$BIN $ARGS > "$DIR/ref.out"

echo "== interrupted run"
$BIN $ARGS -checkpoint "$DIR/train.ckpt" -checkpoint-every 1 \
    -events "$DIR/run.jsonl" > "$DIR/int.out" 2> "$DIR/int.err" &
PID=$!
sleep 2
kill -INT "$PID" 2>/dev/null || true
wait "$PID" && INTERRUPTED=0 || INTERRUPTED=1
echo "   (interrupted=$INTERRUPTED)"

test -s "$DIR/train.ckpt" || { echo "FAIL: no checkpoint written"; exit 1; }

# Every event line must be a complete JSON object: starts with {"ts" and
# ends with } — a mid-record truncation fails here.
awk 'NF && !/^\{"ts".*\}$/ { print "FAIL: truncated event line " NR ": " $0; bad = 1 }
     END { exit bad }' "$DIR/run.jsonl"
echo "   event log intact ($(wc -l < "$DIR/run.jsonl") lines)"

echo "== resumed run"
$BIN $ARGS -checkpoint "$DIR/train.ckpt" -resume > "$DIR/res.out"

for pattern in "converged pattern" "leakage t"; do
    grep "$pattern" "$DIR/ref.out" > "$DIR/ref.line"
    grep "$pattern" "$DIR/res.out" > "$DIR/res.line"
    if ! diff "$DIR/ref.line" "$DIR/res.line"; then
        echo "FAIL: resumed \"$pattern\" differs from uninterrupted run"
        exit 1
    fi
done
echo "PASS: resumed outcome matches the uninterrupted run"
