#!/bin/sh
# Exhaustive-sweep smoke test: run a reduced-round atlas sweep twice —
# once uninterrupted as the reference, once with checkpointing, SIGINT'd
# mid-sweep and resumed — and require the two atlas documents to match
# byte for byte. Along the way the interrupted run's span trace and event
# log are validated (tracecheck + obsreport) and the atlas passes its own
# structural validation. Finally a tiny discovery run's event log is
# replayed against the atlas to exercise the coverage comparator.
#
# Robust by construction: if the background sweep finishes before the
# signal lands, the "resume" is a no-op rerun over finished shards and
# still must reproduce the reference bytes.
#
# Usage: sh scripts/smoke_atlas.sh [outdir]
set -eu

GO=${GO:-go}
if [ $# -ge 1 ]; then
    DIR=$1
    mkdir -p "$DIR"
else
    DIR=$(mktemp -d)
    trap 'rm -rf "$DIR"' EXIT
fi

BIN="$DIR/atlas"
$GO build -o "$BIN" ./cmd/atlas

# 28 rounds x 16 nibbles x 2 models = 896 cells (56 shards) of GIFT-64:
# a few seconds of work, so the SIGINT below usually lands mid-sweep.
ARGS="-cipher gift64 -rounds 1-28 -fault-type xor,stuck-at-0 -samples 1024 -seed 7 -heatmap none"

echo "== reference sweep (uninterrupted)"
$BIN $ARGS -o "$DIR/ref.atlas.json" > "$DIR/ref.out"

echo "== interrupted sweep"
$BIN $ARGS -checkpoint "$DIR/sweep.ckpt" -o "$DIR/int.atlas.json" \
    -events "$DIR/run.jsonl" -trace "$DIR/trace.json" \
    > "$DIR/int.out" 2> "$DIR/int.err" &
PID=$!
sleep 1
kill -INT "$PID" 2>/dev/null || true
wait "$PID" && INTERRUPTED=0 || INTERRUPTED=1
echo "   (interrupted=$INTERRUPTED)"

if [ "$INTERRUPTED" = 1 ]; then
    test -s "$DIR/sweep.ckpt" || { echo "FAIL: interrupted sweep left no checkpoint"; exit 1; }
    grep -q "rerun with the same arguments to resume" "$DIR/int.err" || {
        echo "FAIL: no resume hint on interrupt"; cat "$DIR/int.err"; exit 1; }
    echo "== resumed sweep"
    $BIN $ARGS -checkpoint "$DIR/sweep.ckpt" -o "$DIR/int.atlas.json" \
        -events "$DIR/run2.jsonl" -trace "$DIR/trace2.json" > "$DIR/res.out"
fi

cmp "$DIR/ref.atlas.json" "$DIR/int.atlas.json" || {
    echo "FAIL: resumed atlas differs from the uninterrupted reference"; exit 1; }
echo "   resumed atlas is byte-identical to the reference"

echo "== atlas validation"
$BIN -validate "$DIR/ref.atlas.json"

echo "== trace and event-log validation"
test -s "$DIR/trace.json" || { echo "FAIL: no trace written"; exit 1; }
$GO run ./cmd/tracecheck "$DIR/trace.json" run sweep sweep_shard
awk 'NF && !/^\{"ts".*\}$/ { print "FAIL: truncated event line " NR ": " $0; bad = 1 }
     END { exit bad }' "$DIR/run.jsonl"
$GO run ./cmd/obsreport "$DIR/run.jsonl" > "$DIR/report.md"
grep -q "^sweep: " "$DIR/report.md" || {
    echo "FAIL: obsreport has no sweep section"; cat "$DIR/report.md"; exit 1; }

echo "== coverage replay of a real discovery event log"
$GO run ./cmd/explorefault -cipher gift64 -round 25 -episodes 16 -samples 128 -seed 7 \
    -events "$DIR/discover.jsonl" > "$DIR/discover.out"
$BIN -replay "$DIR/discover.jsonl" -atlas "$DIR/ref.atlas.json" > "$DIR/replay.out"
grep -q "^coverage: " "$DIR/replay.out" || {
    echo "FAIL: replay produced no coverage line"; cat "$DIR/replay.out"; exit 1; }
sed 's/^/   /' "$DIR/replay.out"

echo "PASS: sweep survives SIGINT+resume bit-identically and the atlas validates"
