#!/bin/sh
# Traced-run smoke test: run a tiny discovery session with both the event
# log and the Chrome trace enabled, assert the trace is valid JSON with
# the expected span hierarchy, and run obsreport over the artifacts (both
# output formats, plus a self-diff which must report zero regressions).
#
# Usage: sh scripts/smoke_trace.sh [outdir]
# When outdir is given the trace, event log, and reports are left there
# (CI uploads them as artifacts); otherwise a temp dir is cleaned up.
set -eu

GO=${GO:-go}
if [ $# -ge 1 ]; then
    DIR=$1
    mkdir -p "$DIR"
else
    DIR=$(mktemp -d)
    trap 'rm -rf "$DIR"' EXIT
fi

echo "== traced discovery run"
$GO run ./cmd/explorefault -cipher gift64 -round 25 -episodes 16 -samples 128 -seed 7 \
    -events "$DIR/run.jsonl" -trace "$DIR/trace.json" > "$DIR/run.out"

test -s "$DIR/trace.json" || { echo "FAIL: no trace written"; exit 1; }

# The trace must parse as a Chrome trace-event document and contain the
# span names every discovery run produces.
$GO run ./cmd/tracecheck "$DIR/trace.json" run session episode oracle_eval assess shard

echo "== obsreport over the run"
$GO run ./cmd/obsreport -trace "$DIR/trace.json" "$DIR/run.jsonl" > "$DIR/report.md"
$GO run ./cmd/obsreport -format json "$DIR/run.jsonl" > "$DIR/report.json"
grep -q "event log complete" "$DIR/report.md" || {
    echo "FAIL: report did not confirm a complete event log"
    cat "$DIR/report.md"
    exit 1
}

echo "== self-diff (must be regression-free)"
$GO run ./cmd/obsreport -diff "$DIR/run.jsonl" "$DIR/run.jsonl" > "$DIR/diff.md"

echo "PASS: traced run produced a valid trace and clean reports in $DIR"
