#!/bin/sh
# Daemon kill-and-resume smoke test: boot explorefaultd, POST a small
# gift64 discovery job, SIGTERM the daemon mid-run, restart it on the
# same data directory, and require the resumed job's result document to
# be byte-identical to the same job run on an uninterrupted daemon —
# and the normalized event streams (episode events, timestamps and
# sequence numbers stripped, overlap deduplicated) to match exactly.
#
# Robust by construction: if the job finishes before the signal lands,
# the restart path degenerates to "load a done job", which still has to
# produce the reference result.
set -eu

GO=${GO:-go}
DIR=$(mktemp -d)
trap 'kill $DPID 2>/dev/null || true; rm -rf "$DIR"' EXIT
DPID=""

BIN="$DIR/explorefaultd"
$GO build -o "$BIN" ./cmd/explorefaultd

JOB='{"type":"discover","name":"smoke","config":{"cipher":"gift64","round":25,"episodes":96,"samples":128,"seed":7,"checkpoint_every":8}}'

# start_daemon <datadir> <logfile>: boots the daemon on an ephemeral
# port, waits for the startup line, and sets DPID and BASE.
start_daemon() {
    "$BIN" -addr localhost:0 -data "$1" > "$2" 2>&1 &
    DPID=$!
    i=0
    while ! grep -q 'listening on http://' "$2" 2>/dev/null; do
        i=$((i + 1))
        [ "$i" -gt 100 ] && { echo "FAIL: daemon never started"; cat "$2"; exit 1; }
        kill -0 "$DPID" 2>/dev/null || { echo "FAIL: daemon died"; cat "$2"; exit 1; }
        sleep 0.1
    done
    BASE=$(sed -n 's|.*listening on \(http://[^ ]*\).*|\1|p' "$2" | head -n 1)
}

# wait_done <base> <id>: polls until the job is terminal, failing unless
# it settles "done".
wait_done() {
    i=0
    while :; do
        state=$(curl -s "$1/jobs/$2" | jq -r .state)
        case "$state" in
            done) return 0 ;;
            failed|cancelled) echo "FAIL: job settled $state"; curl -s "$1/jobs/$2"; exit 1 ;;
        esac
        i=$((i + 1))
        [ "$i" -gt 600 ] && { echo "FAIL: job stuck in '$state'"; exit 1; }
        sleep 0.2
    done
}

# normalize_events <events.jsonl> <out>: the deterministic view of a run
# event stream — episode events only, ts/seq envelope stripped, the
# checkpoint-overlap replay after a resume deduplicated in order.
normalize_events() {
    jq -c 'select(.event == "episode") | .fields' "$1" | awk '!seen[$0]++' > "$2"
}

echo "== reference daemon (uninterrupted job)"
start_daemon "$DIR/a" "$DIR/a.log"
ID=$(curl -s "$BASE/jobs" -d "$JOB" | jq -r .id)
[ -n "$ID" ] && [ "$ID" != null ] || { echo "FAIL: submit"; exit 1; }
wait_done "$BASE" "$ID"
curl -s "$BASE/jobs/$ID" | jq -S .result > "$DIR/ref.result"
curl -s "$BASE/metrics" | jq -e '.counters["server.jobs_done_total"] == 1' > /dev/null \
    || { echo "FAIL: /metrics missing jobs_done_total"; exit 1; }
curl -sN --max-time 5 "$BASE/jobs/$ID/events" | grep -q '^event: done' \
    || { echo "FAIL: SSE stream missing done frame"; exit 1; }

# Observability surface. Readiness answers ready while accepting (the
# 503-while-draining flip is pinned by the Go tests: during a daemon
# drain the HTTP listener itself is already shut, so it is not
# observable from here).
curl -s "$BASE/readyz" | jq -e '.status == "ready"' > /dev/null \
    || { echo "FAIL: /readyz not ready on an accepting daemon"; exit 1; }
# /stats aggregates the job's usage record.
curl -s "$BASE/stats" | jq -e '.totals.jobs == 1 and .totals.usage.attempts == 1 and .totals.usage.wall_seconds > 0' > /dev/null \
    || { echo "FAIL: /stats totals do not reflect the finished job"; curl -s "$BASE/stats"; exit 1; }
# The per-job report renders obsreport markdown with the cost line.
curl -s "$BASE/jobs/$ID/report" | grep -q '^# Run report:' \
    || { echo "FAIL: /jobs/{id}/report is not an obsreport document"; exit 1; }
curl -s "$BASE/jobs/$ID/report" | grep -q '^job cost:' \
    || { echo "FAIL: per-job report missing the job cost line"; exit 1; }
# Labeled Prometheus scrape: the labeled series of a family must sum to
# its unlabeled total (here: one anonymous-tenant discover job), both
# for the scheduler's own counters and for a folded engine counter.
curl -s "$BASE/metrics?format=prom" > "$DIR/scrape.prom"
for fam in server_jobs_done_total explore_episodes_total; do
    awk -v fam="$fam" '
        $1 == fam { total = $2 }
        index($1, fam "{") == 1 { labeled += $2 }
        END {
            if (total == "" || labeled != total) {
                printf "FAIL: %s labeled sum %d != unlabeled total %s\n", fam, labeled, total
                exit 1
            }
        }' "$DIR/scrape.prom" || exit 1
done
grep -q 'cipher="gift64"' "$DIR/scrape.prom" \
    || { echo "FAIL: scrape has no cipher-labeled series"; exit 1; }
grep -q '^runtime_goroutines ' "$DIR/scrape.prom" \
    || { echo "FAIL: scrape missing runtime telemetry"; exit 1; }
normalize_events "$DIR/a/$ID.events.jsonl" "$DIR/ref.events"
kill -TERM "$DPID"; wait "$DPID" || true
echo "   reference result captured ($(wc -l < "$DIR/ref.events") episodes)"

echo "== interrupted daemon (SIGTERM mid-job)"
start_daemon "$DIR/b" "$DIR/b1.log"
ID2=$(curl -s "$BASE/jobs" -d "$JOB" | jq -r .id)
i=0
while [ "$(grep -c '"event":"episode"' "$DIR/b/$ID2.events.jsonl" 2>/dev/null || echo 0)" -lt 16 ]; do
    i=$((i + 1))
    [ "$i" -gt 300 ] && break # job may simply be fast; restart still must match
    sleep 0.1
done
kill -TERM "$DPID"; wait "$DPID" || true
echo "   daemon killed after $(grep -c '"event":"episode"' "$DIR/b/$ID2.events.jsonl" 2>/dev/null || echo 0) episodes"

echo "== restarted daemon (job resumes from checkpoint)"
start_daemon "$DIR/b" "$DIR/b2.log"
wait_done "$BASE" "$ID2"
resumes=$(curl -s "$BASE/jobs/$ID2" | jq -r .resumes)
curl -s "$BASE/jobs/$ID2" | jq -S .result > "$DIR/int.result"
normalize_events "$DIR/b/$ID2.events.jsonl" "$DIR/int.events"
kill -TERM "$DPID"; wait "$DPID" || true

if ! diff "$DIR/ref.result" "$DIR/int.result"; then
    echo "FAIL: resumed job result differs from uninterrupted run"
    exit 1
fi
if ! diff "$DIR/ref.events" "$DIR/int.events"; then
    echo "FAIL: normalized event stream differs from uninterrupted run"
    exit 1
fi
echo "PASS: resumed job (resumes=$resumes) matches the uninterrupted run byte for byte"
