// Package fault implements the fault-simulation engine: it runs paired
// (correct, faulty) encryptions over random plaintexts, injecting faults
// drawn from a bit pattern into a chosen round, and collects the state
// differentials at configurable observation points as grouped trace
// matrices ready for the t-test machinery in internal/leakage.
package fault

import (
	"bytes"
	"context"
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/ciphers"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/prng"
	"repro/internal/stats"
)

// Mode selects how fault values are drawn from a pattern for each trace.
type Mode int

const (
	// RandomMask injects a uniformly random non-zero sub-mask of the
	// pattern per trace: every selected bit flips independently with
	// probability 1/2. This models an imprecise injection confined to
	// the targeted bits and is the paper's "random fault" (§IV-B,
	// Fig. 5 injects "100 random faults" per model).
	RandomMask Mode = iota
	// FlipAll deterministically flips every bit of the pattern in every
	// trace (a fully-controlled injection).
	FlipAll
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case RandomMask:
		return "random-mask"
	case FlipAll:
		return "flip-all"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// PointKind identifies the kind of observation point.
type PointKind int

const (
	// RoundInput observes the state at the input of a round.
	RoundInput PointKind = iota
	// PostSub observes the state after a round's substitution layer.
	PostSub
	// CiphertextPoint observes the final ciphertext.
	CiphertextPoint
)

// Point is one observation point of a fault campaign.
type Point struct {
	Kind  PointKind
	Round int // 1-based; ignored for CiphertextPoint
}

// String implements fmt.Stringer.
func (p Point) String() string {
	switch p.Kind {
	case RoundInput:
		return fmt.Sprintf("input(r%d)", p.Round)
	case PostSub:
		return fmt.Sprintf("postsub(r%d)", p.Round)
	case CiphertextPoint:
		return "ciphertext"
	default:
		return fmt.Sprintf("Point(%d,%d)", int(p.Kind), p.Round)
	}
}

// DefaultLag is the default distance between the injection round and the
// first observed round. Observing from round r+2 onwards reproduces the
// paper's setup (AES: inject round 8, check the round-10 input, Fig. 1;
// GIFT: inject round 25, check post-S-box round 27 and later) and is what
// bounds "too wide" fault patterns: at lag 1 even a 12-byte AES fault
// leaves trivially-detectable zero bytes, at lag 2 only structured faults
// survive.
const DefaultLag = 2

// DefaultWindow is the default observation window: only the last
// DefaultWindow rounds (plus the ciphertext) are observable. The paper
// restricts t-tests to "the input/output or intermediate computations of
// the last few rounds" because an attacker reaches intermediate states by
// partially decrypting from the ciphertext, which is only feasible for a
// few rounds; this is also why early-round faults are not exploitable.
const DefaultWindow = 3

// DefaultPoints returns the observation points for a fault injected at
// round in cipher c with the default window: round inputs and
// post-substitution states of the observable rounds, plus the ciphertext.
func DefaultPoints(c ciphers.Cipher, round, lag int) []Point {
	return PointsWindow(c, round, lag, DefaultWindow)
}

// PointsWindow returns the observation points for a fault injected at
// round: the round inputs and post-substitution states of every round r
// satisfying both r >= round+lag (strictly after the fault, so the
// injection itself is not "observed") and r > Rounds()-window (reachable
// by partial decryption), plus the ciphertext.
func PointsWindow(c ciphers.Cipher, round, lag, window int) []Point {
	first := round + lag
	if w := c.Rounds() - window + 1; w > first {
		first = w
	}
	var pts []Point
	for r := first; r <= c.Rounds(); r++ {
		pts = append(pts, Point{Kind: RoundInput, Round: r}, Point{Kind: PostSub, Round: r})
	}
	pts = append(pts, Point{Kind: CiphertextPoint})
	return pts
}

// Campaign describes one fault-simulation experiment: a keyed cipher, a
// bit pattern and injection round, an injection mode, the number of random
// plaintexts, the observation points, and the grouping granularity used to
// turn differentials into t-test columns.
type Campaign struct {
	Cipher  ciphers.Cipher
	Pattern bitvec.Vector // width must equal 8*Cipher.BlockBytes()
	Round   int
	Mode    Mode
	// Model is the typed fault model applied to the pattern bits. The
	// zero value XorFlip reproduces the engine's historical XOR-mask
	// behavior bit-identically (Mode only applies to XorFlip).
	Model Model
	// Oracle selects what the campaign emits: grouped (clean XOR faulty)
	// differentials for OracleWelch (the default), or grouped clean state
	// values of the ineffective-fault sub-distribution for OracleSIFA.
	// SIFA campaigns have a data-dependent trace count, so they are only
	// supported through the accumulator path (CollectInto), not Collect.
	Oracle  OracleKind
	Samples int
	Points  []Point
	// GroupBits is the differential grouping granularity: 1 (bits),
	// 4 (nibbles) or 8 (bytes). Zero selects the cipher's native
	// substitution width (Cipher.GroupBits()).
	GroupBits int
	// NoBatch forces the scalar reference path even when the cipher
	// provides a batch kernel (ciphers.BatchEncrypter). Both paths are
	// bit-identical; the knob exists for equivalence tests and
	// benchmarks.
	NoBatch bool
	// Metrics, if non-nil, receives campaign throughput counters
	// (traces, batch versus scalar encryption path). Instrumentation
	// never touches the PRNG stream, so results are bit-identical with
	// metrics on or off; a nil registry costs one branch per block.
	Metrics *obs.Registry
}

// Validate normalizes defaults (GroupBits, Points) and reports
// configuration errors. Collect calls it implicitly; callers that shard a
// campaign themselves (internal/evaluate) call it once up front.
func (cp *Campaign) Validate() error {
	if cp.Cipher == nil {
		return fmt.Errorf("fault: campaign has no cipher")
	}
	stateBits := 8 * cp.Cipher.BlockBytes()
	if cp.Pattern.Len() != stateBits {
		return fmt.Errorf("fault: pattern width %d != state width %d", cp.Pattern.Len(), stateBits)
	}
	if cp.Pattern.IsZero() {
		return fmt.Errorf("fault: empty fault pattern")
	}
	if cp.Round < 1 || cp.Round > cp.Cipher.Rounds() {
		return fmt.Errorf("fault: round %d out of range 1..%d", cp.Round, cp.Cipher.Rounds())
	}
	if cp.Samples <= 1 {
		return fmt.Errorf("fault: need at least 2 samples, got %d", cp.Samples)
	}
	if int(cp.Model) < 0 || int(cp.Model) >= numModels {
		return fmt.Errorf("fault: invalid fault model %d", int(cp.Model))
	}
	switch cp.Oracle {
	case OracleWelch, OracleSIFA:
	default:
		return fmt.Errorf("fault: invalid oracle %d", int(cp.Oracle))
	}
	if cp.GroupBits == 0 {
		cp.GroupBits = cp.Cipher.GroupBits()
	}
	switch cp.GroupBits {
	case 1, 2, 4, 8:
	default:
		return fmt.Errorf("fault: unsupported group size %d bits", cp.GroupBits)
	}
	if len(cp.Points) == 0 {
		cp.Points = DefaultPoints(cp.Cipher, cp.Round, DefaultLag)
	}
	for _, p := range cp.Points {
		if p.Kind != CiphertextPoint && (p.Round < 1 || p.Round > cp.Cipher.Rounds()) {
			return fmt.Errorf("fault: observation point %v out of range", p)
		}
		if p.Kind != CiphertextPoint && p.Round <= cp.Round {
			return fmt.Errorf("fault: observation point %v not after injection round %d", p, cp.Round)
		}
	}
	return nil
}

// Groups returns the number of t-test columns per observation point.
func (cp *Campaign) Groups() int {
	return 8 * cp.Cipher.BlockBytes() / cp.GroupBits
}

// BatchPath names the encryption engine the campaign's collection will
// use: "kernel" when the cipher provides a batch kernel and NoBatch is
// unset, "scalar-fallback" otherwise. Campaign events carry the value so
// run logs show which ciphers actually exercised the fast path.
func (cp *Campaign) BatchPath() string {
	return BatchPathOf(cp.Cipher, cp.NoBatch)
}

// BatchPathOf is BatchPath for callers that drive ciphers.EncryptForksOps
// directly instead of through a Campaign.
func BatchPathOf(c ciphers.Cipher, noBatch bool) string {
	if _, ok := c.(ciphers.BatchEncrypter); ok && !noBatch {
		return "kernel"
	}
	return "scalar-fallback"
}

// Result holds the collected differential matrices, one per observation
// point, each Samples x Groups of group values.
type Result struct {
	Points   []Point
	Matrices [][][]float64 // Matrices[i] belongs to Points[i]
}

// batchBlock is the number of traces drawn and encrypted per batch call:
// the bitsliced GIFT kernel packs exactly this many traces per uint64
// lane, and it divides evaluate.ShardSize so shards batch evenly.
const batchBlock = 64

// Collect runs the campaign: for each of Samples random plaintexts it
// encrypts once cleanly and once with a fault drawn from the pattern, and
// records the grouped XOR differential at every observation point.
func (cp *Campaign) Collect(rng *prng.Source) (*Result, error) {
	if err := cp.Validate(); err != nil {
		return nil, err
	}
	if cp.Oracle == OracleSIFA {
		// The ineffective-fault sub-distribution has a data-dependent
		// size, so there is no Samples x Groups matrix to build.
		return nil, fmt.Errorf("fault: the SIFA oracle requires accumulator collection (CollectInto)")
	}
	groups := cp.Groups()
	res := &Result{Points: cp.Points, Matrices: make([][][]float64, len(cp.Points))}
	for i := range res.Matrices {
		// One flat backing array per point instead of one row per sample.
		backing := make([]float64, cp.Samples*groups)
		res.Matrices[i] = make([][]float64, cp.Samples)
		for s := range res.Matrices[i] {
			res.Matrices[i][s] = backing[s*groups : (s+1)*groups]
		}
	}
	cp.forEachDiff(context.Background(), rng, cp.Samples, func(s, pi int, diff []byte) {
		groupValuesInto(res.Matrices[pi][s], diff, cp.GroupBits, groups)
	})
	return res, nil
}

// CollectInto runs n traces of the campaign and folds the grouped
// differential of every observation point into the matching accumulator
// (accs[i] belongs to cp.Points[i]), without materializing trace matrices.
// It is the per-shard primitive behind internal/evaluate's parallel
// campaigns: the campaign must already be validated, and each shard calls
// CollectInto with its own deterministic PRNG substream so that merged
// shard accumulators are independent of the worker count.
func (cp *Campaign) CollectInto(rng *prng.Source, n int, accs []*stats.Accumulator) error {
	return cp.CollectIntoContext(context.Background(), rng, n, accs)
}

// CollectIntoContext is CollectInto with cancellation: between trace
// blocks it checks ctx and returns ctx.Err() once the context is done.
// Cancellation never lands mid-trace — a block's plaintexts and fault
// masks are drawn and encrypted as a unit — so an aborted shard simply
// discards a whole number of traces and its PRNG substream is never split
// across resumes.
func (cp *Campaign) CollectIntoContext(ctx context.Context, rng *prng.Source, n int, accs []*stats.Accumulator) error {
	if len(accs) != len(cp.Points) {
		return fmt.Errorf("fault: %d accumulators for %d observation points", len(accs), len(cp.Points))
	}
	groups := cp.Groups()
	row := make([]float64, groups)
	return cp.forEachDiff(ctx, rng, n, func(s, pi int, diff []byte) {
		groupValuesInto(row, diff, cp.GroupBits, groups)
		accs[pi].Add(row)
	})
}

// forEachDiff runs n paired (clean, faulty) traces and calls emit with
// the per-point observation of every emitted trace, in (sample, point)
// order: the raw XOR differential under OracleWelch, or — under
// OracleSIFA — the raw clean state of only the traces whose fault left
// the ciphertext unchanged. The campaign must be validated.
//
// Traces are processed in blocks: each block first draws every
// plaintext and fault injection pair — in the same per-sample
// interleaving a trace-at-a-time loop would use, so the PRNG stream is
// independent of the block size — and then encrypts the whole block
// through the generalized-injection dispatcher (batch kernel, FaultKernel
// extension, or the scalar reference path; see ciphers.EncryptForksOps).
// All engines produce bit-identical observations, and none allocates per
// sample. Cancellation is checked once per block, before any of the
// block's PRNG draws.
//
// Ineffective-fault conditioning compares ciphertexts only: every
// observation point sits at or after the injection round, and the rounds
// from injection to ciphertext are a bijection, so an unchanged
// ciphertext implies the fault was the identity on the actual state and
// every intermediate observation coincides with the clean branch.
func (cp *Campaign) forEachDiff(ctx context.Context, rng *prng.Source, n int, emit func(s, pi int, diff []byte)) error {
	bb := cp.Cipher.BlockBytes()
	np := len(cp.Points)
	block := batchBlock
	if n < block {
		block = n
	}
	inj := NewInjector(cp.Pattern, cp.Model, cp.Mode)
	pts := make([]byte, block*bb)
	var xorBuf, andBuf []byte
	if inj.HasXor() {
		xorBuf = make([]byte, block*bb)
	}
	if inj.HasAnd() {
		andBuf = make([]byte, block*bb)
	}
	clean := make([]byte, block*np*bb)
	faulty := make([]byte, block*np*bb)
	diff := make([]byte, bb)
	bpts := make([]ciphers.BatchPoint, np)
	for i, p := range cp.Points {
		bpts[i] = p.batchPoint()
	}
	xors := [][]byte{nil, xorBuf}
	ands := [][]byte{nil, andBuf}
	states := [][]byte{clean, faulty}
	cts := [][]byte{nil, nil}
	sifa := cp.Oracle == OracleSIFA
	if sifa {
		cts = [][]byte{make([]byte, block*bb), make([]byte, block*bb)}
	}
	var kern ciphers.BatchKernel
	if be, ok := cp.Cipher.(ciphers.BatchEncrypter); ok && !cp.NoBatch {
		kern = be.NewBatchKernel()
	}
	// One collect span per call (one per shard under the evaluate
	// engine); nil and free unless the caller's ctx carries a span.
	sp, _ := trace.StartSpan(ctx, trace.SpanCollect)
	sp.SetAttr("samples", n)
	sp.SetAttr("batch", kern != nil)
	sp.SetAttr("fault_model", cp.Model.String())
	sp.SetAttr("oracle", cp.Oracle.String())
	defer sp.End()
	// Handles are resolved once per call (not per trace); all of them are
	// nil no-ops when cp.Metrics is nil.
	traces := cp.Metrics.Counter("campaign.traces_total")
	pathBlocks := cp.Metrics.Counter("campaign.scalar_blocks_total")
	if kern != nil {
		pathBlocks = cp.Metrics.Counter("campaign.batch_blocks_total")
	}
	ineffective := cp.Metrics.Counter("campaign.ineffective_total")
	collectTimer := cp.Metrics.Histogram("campaign.collect_seconds", obs.LatencyBuckets).Start()
	for base := 0; base < n; base += block {
		if err := ctx.Err(); err != nil {
			collectTimer.Stop()
			return err
		}
		bn := block
		if left := n - base; left < bn {
			bn = left
		}
		for i := 0; i < bn; i++ {
			rng.Fill(pts[i*bb : (i+1)*bb])
			var xm, am []byte
			if xorBuf != nil {
				xm = xorBuf[i*bb : (i+1)*bb]
			}
			if andBuf != nil {
				am = andBuf[i*bb : (i+1)*bb]
			}
			inj.Draw(xm, am, rng)
		}
		ciphers.EncryptForksOps(cp.Cipher, kern, cp.Round, bpts, bn, pts, xors, ands, states, cts)
		traces.Add(uint64(bn))
		pathBlocks.Inc()
		for i := 0; i < bn; i++ {
			if sifa {
				if !bytes.Equal(cts[0][i*bb:(i+1)*bb], cts[1][i*bb:(i+1)*bb]) {
					continue
				}
				ineffective.Inc()
				for pi := 0; pi < np; pi++ {
					off := (i*np + pi) * bb
					emit(base+i, pi, clean[off:off+bb])
				}
				continue
			}
			for pi := 0; pi < np; pi++ {
				off := (i*np + pi) * bb
				a, b := clean[off:off+bb], faulty[off:off+bb]
				for j := 0; j < bb; j++ {
					diff[j] = a[j] ^ b[j]
				}
				emit(base+i, pi, diff)
			}
		}
	}
	collectTimer.Stop()
	return nil
}

// batchPoint maps an observation point onto the ciphers batch API.
func (p Point) batchPoint() ciphers.BatchPoint {
	switch p.Kind {
	case RoundInput:
		return ciphers.BatchPoint{Round: p.Round}
	case PostSub:
		return ciphers.BatchPoint{Round: p.Round, PostSub: true}
	default:
		return ciphers.BatchPoint{}
	}
}

// groupValues splits state bytes into groupBits-wide integer values.
func groupValues(state []byte, groupBits, groups int) []float64 {
	out := make([]float64, groups)
	groupValuesInto(out, state, groupBits, groups)
	return out
}

// groupValuesInto is groupValues into a caller-owned buffer.
func groupValuesInto(out []float64, state []byte, groupBits, groups int) {
	switch groupBits {
	case 8:
		for i, b := range state {
			out[i] = float64(b)
		}
	case 4:
		for i := 0; i < groups; i++ {
			out[i] = float64(state[i/2] >> (4 * uint(i%2)) & 0xf)
		}
	case 2:
		for i := 0; i < groups; i++ {
			out[i] = float64(state[i/4] >> (2 * uint(i%4)) & 0x3)
		}
	default: // 1
		for i := 0; i < groups; i++ {
			out[i] = float64(state[i/8] >> uint(i%8) & 1)
		}
	}
}

// UniformReference returns a samples x groups matrix of uniformly random
// group values, the t-test's null population.
func UniformReference(samples, groupBits, groups int, rng *prng.Source) [][]float64 {
	maxVal := 1<<uint(groupBits) - 1
	m := make([][]float64, samples)
	for i := range m {
		row := make([]float64, groups)
		for j := range row {
			row[j] = float64(rng.Intn(maxVal + 1))
		}
		m[i] = row
	}
	return m
}
