// JSON codecs for the enum knobs, so configuration structs that embed
// them (sweep.Config, the job specs of internal/server) round-trip
// through JSON using the same names the -fault-type / -oracle CLI flags
// speak instead of opaque enum integers. Decoding also accepts the
// integer form for compatibility with logs that predate these codecs.
package fault

import (
	"encoding/json"
	"fmt"
	"strconv"
)

// MarshalJSON renders the model as its CLI name ("xor", "stuck-at-0", ...).
func (m Model) MarshalJSON() ([]byte, error) {
	if int(m) < 0 || int(m) >= numModels {
		return nil, fmt.Errorf("fault: marshal of invalid model %d", int(m))
	}
	return json.Marshal(m.String())
}

// UnmarshalJSON accepts a CLI name or a bare enum integer.
func (m *Model) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		parsed, err := ParseModel(s)
		if err != nil {
			return err
		}
		*m = parsed
		return nil
	}
	n, err := strconv.Atoi(string(data))
	if err != nil || n < 0 || n >= numModels {
		return fmt.Errorf("fault: bad fault model %s", data)
	}
	*m = Model(n)
	return nil
}

// MarshalJSON renders the oracle as its CLI name ("welch", "sifa").
func (o OracleKind) MarshalJSON() ([]byte, error) {
	if o != OracleWelch && o != OracleSIFA {
		return nil, fmt.Errorf("fault: marshal of invalid oracle %d", int(o))
	}
	return json.Marshal(o.String())
}

// UnmarshalJSON accepts a CLI name or a bare enum integer.
func (o *OracleKind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		parsed, err := ParseOracle(s)
		if err != nil {
			return err
		}
		*o = parsed
		return nil
	}
	n, err := strconv.Atoi(string(data))
	if err != nil || n < int(OracleWelch) || n > int(OracleSIFA) {
		return fmt.Errorf("fault: bad oracle %s", data)
	}
	*o = OracleKind(n)
	return nil
}

// ParseMode parses a mode name ("random-mask", "flip-all").
func ParseMode(s string) (Mode, error) {
	switch s {
	case "random-mask":
		return RandomMask, nil
	case "flip-all":
		return FlipAll, nil
	}
	return 0, fmt.Errorf("fault: unknown mode %q (have random-mask, flip-all)", s)
}

// MarshalJSON renders the mode as its name ("random-mask", "flip-all").
func (m Mode) MarshalJSON() ([]byte, error) {
	if m != RandomMask && m != FlipAll {
		return nil, fmt.Errorf("fault: marshal of invalid mode %d", int(m))
	}
	return json.Marshal(m.String())
}

// UnmarshalJSON accepts a mode name or a bare enum integer.
func (m *Mode) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		parsed, err := ParseMode(s)
		if err != nil {
			return err
		}
		*m = parsed
		return nil
	}
	n, err := strconv.Atoi(string(data))
	if err != nil || n < int(RandomMask) || n > int(FlipAll) {
		return fmt.Errorf("fault: bad mode %s", data)
	}
	*m = Mode(n)
	return nil
}
