package fault

import (
	"testing"

	"repro/internal/bitvec"
	"repro/internal/ciphers"
	"repro/internal/ciphers/aes"
	_ "repro/internal/ciphers/gift"
	"repro/internal/prng"
)

func newAES(t *testing.T) ciphers.Cipher {
	t.Helper()
	c, err := ciphers.New("aes128", make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// bytePattern returns a 128-bit pattern covering the given AES state bytes.
func bytePattern(bytes ...int) bitvec.Vector {
	v := bitvec.New(128)
	for _, b := range bytes {
		for j := 0; j < 8; j++ {
			v.Set(8*b + j)
		}
	}
	return v
}

func TestDefaultPoints(t *testing.T) {
	c := newAES(t)
	pts := DefaultPoints(c, 8, 2)
	// Rounds 10 gives input+postsub, plus ciphertext = 3 points.
	if len(pts) != 3 {
		t.Fatalf("DefaultPoints = %v, want 3 points", pts)
	}
	if pts[0] != (Point{Kind: RoundInput, Round: 10}) ||
		pts[1] != (Point{Kind: PostSub, Round: 10}) ||
		pts[2] != (Point{Kind: CiphertextPoint}) {
		t.Errorf("unexpected points %v", pts)
	}
	// A later injection round leaves only the ciphertext.
	pts = DefaultPoints(c, 10, 2)
	if len(pts) != 1 || pts[0].Kind != CiphertextPoint {
		t.Errorf("round-10 points = %v", pts)
	}
}

func TestCampaignValidation(t *testing.T) {
	c := newAES(t)
	good := Campaign{Cipher: c, Pattern: bytePattern(0), Round: 8, Samples: 16}
	cases := []struct {
		name string
		mut  func(*Campaign)
	}{
		{"nil cipher", func(cp *Campaign) { cp.Cipher = nil }},
		{"wrong pattern width", func(cp *Campaign) { cp.Pattern = bitvec.New(64) }},
		{"empty pattern", func(cp *Campaign) { cp.Pattern = bitvec.New(128) }},
		{"round 0", func(cp *Campaign) { cp.Round = 0 }},
		{"round too large", func(cp *Campaign) { cp.Round = 11 }},
		{"too few samples", func(cp *Campaign) { cp.Samples = 1 }},
		{"bad group bits", func(cp *Campaign) { cp.GroupBits = 3 }},
		{"obs point before injection", func(cp *Campaign) {
			cp.Points = []Point{{Kind: RoundInput, Round: 8}}
		}},
		{"obs point out of range", func(cp *Campaign) {
			cp.Points = []Point{{Kind: PostSub, Round: 40}}
		}},
	}
	for _, tc := range cases {
		cp := good
		tc.mut(&cp)
		if _, err := cp.Collect(prng.New(1)); err == nil {
			t.Errorf("%s: Collect accepted invalid campaign", tc.name)
		}
	}
	// The good campaign itself must pass.
	if _, err := good.Collect(prng.New(1)); err != nil {
		t.Errorf("valid campaign rejected: %v", err)
	}
}

func TestCollectShapes(t *testing.T) {
	c := newAES(t)
	cp := Campaign{Cipher: c, Pattern: bytePattern(2, 7), Round: 8, Samples: 32}
	res, err := cp.Collect(prng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matrices) != len(res.Points) {
		t.Fatalf("matrices/points mismatch")
	}
	for i, m := range res.Matrices {
		if len(m) != 32 {
			t.Errorf("point %v: %d rows, want 32", res.Points[i], len(m))
		}
		for _, row := range m {
			if len(row) != 16 {
				t.Errorf("point %v: %d cols, want 16 byte groups", res.Points[i], len(row))
			}
			for _, v := range row {
				if v < 0 || v > 255 {
					t.Errorf("group value %v out of byte range", v)
				}
			}
		}
	}
}

func TestCollectGroupBitsOverride(t *testing.T) {
	c := newAES(t)
	cp := Campaign{Cipher: c, Pattern: bytePattern(0), Round: 8, Samples: 8, GroupBits: 4}
	res, err := cp.Collect(prng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Matrices[0][0]); got != 32 {
		t.Errorf("nibble grouping gave %d cols, want 32", got)
	}
	for _, v := range res.Matrices[0][0] {
		if v < 0 || v > 15 {
			t.Errorf("nibble value %v out of range", v)
		}
	}
}

func TestFlipAllIsDeterministicAtInjectionPoint(t *testing.T) {
	// With FlipAll and an observation right after injection impossible
	// (lag >= 1 enforced), verify determinism indirectly: the ciphertext
	// differential population from FlipAll with a fixed plaintext-free
	// pattern has no dependence on the mask draw, so two campaigns with
	// different RNG seeds but identical plaintext streams would match.
	// Here we simply check FlipAll never produces an all-zero
	// differential at the first observed round.
	c := newAES(t)
	cp := Campaign{Cipher: c, Pattern: bytePattern(5), Round: 8, Samples: 16, Mode: FlipAll}
	res, err := cp.Collect(prng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	for s, row := range res.Matrices[0] {
		zero := true
		for _, v := range row {
			if v != 0 {
				zero = false
			}
		}
		if zero {
			t.Errorf("sample %d: all-zero differential two rounds after a FlipAll fault", s)
		}
	}
}

func TestDiffusionVisibleInDifferentials(t *testing.T) {
	// A single-byte fault at round 8 observed at the round-10 input must
	// touch all 16 bytes in essentially every sample (full diffusion).
	c := newAES(t)
	cp := Campaign{Cipher: c, Pattern: bytePattern(0), Round: 8, Samples: 64,
		Points: []Point{{Kind: RoundInput, Round: 10}}}
	res, err := cp.Collect(prng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	zeroGroups := 0
	for _, row := range res.Matrices[0] {
		for _, v := range row {
			if v == 0 {
				zeroGroups++
			}
		}
	}
	// Each byte differential is ~uniform, so zeros occur at rate ~1/256:
	// expect about 4 of 1024; 64 would indicate a whole silent byte.
	if zeroGroups > 32 {
		t.Errorf("%d zero byte-differentials out of 1024; diffusion looks broken", zeroGroups)
	}
}

func TestCiphertextPointMatchesLastRound(t *testing.T) {
	// For a round-10 AES fault the only default point is the ciphertext,
	// and its differential must be non-zero (fault always hits).
	c := newAES(t)
	cp := Campaign{Cipher: c, Pattern: bytePattern(3), Round: 10, Samples: 16}
	res, err := cp.Collect(prng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	for s, row := range res.Matrices[0] {
		nonzero := 0
		for _, v := range row {
			if v != 0 {
				nonzero++
			}
		}
		// A single-byte fault in round 10 passes through SubBytes and
		// ShiftRows only: exactly one ciphertext byte differs.
		if nonzero != 1 {
			t.Errorf("sample %d: %d non-zero ciphertext bytes, want 1", s, nonzero)
		}
	}
}

func TestGIFTNibbleGroupingDefaults(t *testing.T) {
	g, err := ciphers.New("gift64", make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	pattern := bitvec.New(64)
	for b := 32; b < 36; b++ { // nibble 8
		pattern.Set(b)
	}
	cp := Campaign{Cipher: g, Pattern: pattern, Round: 25, Samples: 8}
	res, err := cp.Collect(prng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if cp.GroupBits != 4 {
		t.Errorf("GroupBits defaulted to %d, want 4 for GIFT", cp.GroupBits)
	}
	if got := len(res.Matrices[0][0]); got != 16 {
		t.Errorf("GIFT grouping gave %d cols, want 16 nibbles", got)
	}
	// Default points: rounds 27, 28 input+postsub, plus ciphertext.
	if len(res.Points) != 5 {
		t.Errorf("GIFT default points = %v, want 5", res.Points)
	}
}

func TestUniformReference(t *testing.T) {
	rng := prng.New(8)
	m := UniformReference(1000, 4, 16, rng)
	if len(m) != 1000 || len(m[0]) != 16 {
		t.Fatalf("reference shape %dx%d", len(m), len(m[0]))
	}
	var sum float64
	for _, row := range m {
		for _, v := range row {
			if v < 0 || v > 15 {
				t.Fatalf("reference value %v out of nibble range", v)
			}
			sum += v
		}
	}
	mean := sum / (1000 * 16)
	if mean < 7 || mean > 8 {
		t.Errorf("reference mean %v, want ~7.5", mean)
	}
}

func TestModeAndPointStrings(t *testing.T) {
	if RandomMask.String() != "random-mask" || FlipAll.String() != "flip-all" {
		t.Error("mode strings wrong")
	}
	if (Point{Kind: RoundInput, Round: 10}).String() != "input(r10)" {
		t.Error("point string wrong")
	}
	if (Point{Kind: CiphertextPoint}).String() != "ciphertext" {
		t.Error("ciphertext point string wrong")
	}
}

func TestDiagonalPatternHelper(t *testing.T) {
	// Consistency between the aes.Diagonal helper and pattern building:
	// diagonal 2 is the paper's bytes {2,7,8,13}.
	d := aes.Diagonal(2)
	p := bytePattern(d[:]...)
	if p.Count() != 32 {
		t.Errorf("diagonal pattern has %d bits, want 32", p.Count())
	}
	want := []int{2, 7, 8, 13}
	for i, g := range p.Groups(8) {
		if g != want[i] {
			t.Errorf("diagonal groups = %v, want %v", p.Groups(8), want)
			break
		}
	}
}

func BenchmarkCollectAES(b *testing.B) {
	c, _ := ciphers.New("aes128", make([]byte, 16))
	cp := Campaign{Cipher: c, Pattern: bytePattern(2, 7, 8, 13), Round: 8, Samples: 256}
	rng := prng.New(9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cp.Collect(rng); err != nil {
			b.Fatal(err)
		}
	}
}
