package fault_test

import (
	"bytes"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/fault"
	"repro/internal/prng"
)

// FuzzFaultApply pins the algebraic contract of every typed fault model's
// injection pair — bit' = (bit AND a) XOR x — on arbitrary patterns,
// states and seeds:
//
//   - the op never touches bits outside the model's effective set (the
//     pattern, widened to value groups for random-byte/random-nibble);
//   - every AND-carrying model is idempotent per draw: applying the same
//     (AND, XOR) pair twice equals applying it once, because the XOR half
//     only sets bits the AND half cleared;
//   - XorFlip is a self-inverse involution;
//   - the XOR-free models (stuck-at-0, biased-and) are monotone
//     non-increasing: they can only clear state bits, never set them.
func FuzzFaultApply(f *testing.F) {
	f.Add(byte(0), uint16(7), []byte{0xff, 0x00, 0xff}, []byte("state material"), uint64(1))
	f.Add(byte(1), uint16(15), []byte{0x0f}, bytes.Repeat([]byte{0xa5}, 16), uint64(99))
	f.Add(byte(5), uint16(3), []byte{0x80, 0x01}, []byte{}, uint64(7))
	f.Fuzz(func(t *testing.T, modelSel byte, widthSel uint16, patMaterial, stateMaterial []byte, seed uint64) {
		models := fault.Models()
		model := models[int(modelSel)%len(models)]
		width := 8 * (1 + int(widthSel)%16) // 8..128 bits, byte-aligned like real states

		pattern := bitvec.New(width)
		for i := 0; i < width; i++ {
			if len(patMaterial) > 0 && patMaterial[(i/8)%len(patMaterial)]&(1<<uint(i%8)) != 0 {
				pattern.Set(i)
			}
		}
		if pattern.IsZero() {
			pattern.Set(int(widthSel) % width)
		}

		inj := fault.NewInjector(pattern, model, fault.RandomMask)
		bb := (width + 7) / 8
		var xor, and []byte
		if inj.HasXor() {
			xor = make([]byte, bb)
		}
		if inj.HasAnd() {
			and = make([]byte, bb)
		}
		inj.Draw(xor, and, prng.New(seed))

		state := make([]byte, bb)
		for i := range state {
			if len(stateMaterial) > 0 {
				state[i] = stateMaterial[i%len(stateMaterial)]
			}
		}
		apply := func(s []byte) []byte {
			out := make([]byte, bb)
			for i := range out {
				a, x := byte(0xff), byte(0)
				if and != nil {
					a = and[i]
				}
				if xor != nil {
					x = xor[i]
				}
				out[i] = s[i]&a ^ x
			}
			return out
		}
		once := apply(state)
		twice := apply(once)

		eff := inj.Effective()
		effBytes := eff.Bytes()
		for i := range state {
			if (once[i]^state[i])&^effBytes[i] != 0 {
				t.Fatalf("%s: byte %d changed outside effective set %s (state %02x -> %02x)",
					model, i, eff.String(), state[i], once[i])
			}
		}

		if model == fault.XorFlip {
			if !bytes.Equal(twice, state) {
				t.Fatalf("XorFlip not self-inverse: %x -> %x -> %x", state, once, twice)
			}
		} else {
			if !bytes.Equal(twice, once) {
				t.Fatalf("%s not idempotent: %x -> %x -> %x", model, state, once, twice)
			}
		}

		if !inj.HasXor() {
			for i := range once {
				if once[i]&^state[i] != 0 {
					t.Fatalf("%s set bits it may only clear: byte %d %02x -> %02x",
						model, i, state[i], once[i])
				}
			}
		}
		if xor != nil && and != nil {
			for i := range xor {
				if xor[i]&and[i] != 0 {
					t.Fatalf("%s: XOR half %02x overlaps kept bits of AND half %02x at byte %d (breaks idempotence)",
						model, xor[i], and[i], i)
				}
			}
		}
	})
}
