// Typed fault models: the injection-function zoo layered on top of the
// generalized (AND, XOR) injection op of internal/ciphers.
//
// Every per-bit fault function is expressible as bit' = (bit AND a) XOR x:
// (a, x) = (1, 0) is the identity, (1, 1) a flip, (0, 0) stuck-at-0 and
// (0, 1) stuck-at-1. A Model fixes how the (a, x) pair is derived from the
// campaign's bit pattern — deterministically for stuck-at faults, with
// fresh per-trace randomness for the biased and random-value models — and
// an Injector performs the per-trace draw without allocating.
package fault

import (
	"fmt"

	"repro/internal/bitvec"
)

// Model is a typed fault model: the function family applied to the bits
// selected by the campaign pattern at the injection round.
type Model int

const (
	// XorFlip flips pattern bits, the paper's model and the historical
	// behavior of this engine: the drawn XOR mask is a random non-zero
	// sub-mask of the pattern (Mode RandomMask) or the pattern itself
	// (Mode FlipAll). XorFlip is the only model the Mode knob affects.
	XorFlip Model = iota
	// StuckAtZero forces every pattern bit to 0 (AND with the pattern's
	// complement). Deterministic: no per-trace randomness.
	StuckAtZero
	// StuckAtOne forces every pattern bit to 1 (AND out, then XOR back
	// in). Deterministic: no per-trace randomness.
	StuckAtOne
	// BiasedAnd ANDs each pattern bit with an independent fair coin: a
	// bit is forced to 0 with probability 1/2 and left alone otherwise.
	// The fault can be ineffective on traces whose selected bits are
	// already 0 — the state-dependent bias that SIFA exploits.
	BiasedAnd
	// RandomByte replaces every byte containing a pattern bit with a
	// uniformly random byte (the pattern is widened to byte granularity).
	RandomByte
	// RandomNibble replaces every nibble containing a pattern bit with a
	// uniformly random nibble.
	RandomNibble
)

// numModels bounds the enum for validation and parsing.
const numModels = int(RandomNibble) + 1

// Models returns every fault model, in enum order. Callers use it for
// sweeps and equivalence tests.
func Models() []Model {
	return []Model{XorFlip, StuckAtZero, StuckAtOne, BiasedAnd, RandomByte, RandomNibble}
}

// String implements fmt.Stringer; the names are the -fault-type CLI
// vocabulary.
func (m Model) String() string {
	switch m {
	case XorFlip:
		return "xor"
	case StuckAtZero:
		return "stuck-at-0"
	case StuckAtOne:
		return "stuck-at-1"
	case BiasedAnd:
		return "biased-and"
	case RandomByte:
		return "random-byte"
	case RandomNibble:
		return "random-nibble"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// ParseModel parses a fault-model name as used by the -fault-type flags.
func ParseModel(s string) (Model, error) {
	for _, m := range Models() {
		if s == m.String() {
			return m, nil
		}
	}
	return 0, fmt.Errorf("fault: unknown fault model %q (have xor, stuck-at-0, stuck-at-1, biased-and, random-byte, random-nibble)", s)
}

// OracleKind selects the statistical oracle a campaign's traces feed.
type OracleKind int

const (
	// OracleWelch is the paper's oracle: Welch's t-test of the grouped
	// (clean XOR faulty) differential against a uniform reference.
	OracleWelch OracleKind = iota
	// OracleSIFA is the ineffective-fault oracle: it conditions on traces
	// where the fault did not change the ciphertext and t-tests the
	// grouped clean state values of that sub-distribution against
	// uniform. Only meaningful for models that can be ineffective
	// (BiasedAnd, RandomByte, RandomNibble); XorFlip faults are never
	// ineffective, so the sub-distribution is empty and t is 0.
	OracleSIFA
)

// String implements fmt.Stringer; the names are the -oracle CLI
// vocabulary.
func (o OracleKind) String() string {
	switch o {
	case OracleWelch:
		return "welch"
	case OracleSIFA:
		return "sifa"
	default:
		return fmt.Sprintf("OracleKind(%d)", int(o))
	}
}

// ParseOracle parses an oracle name as used by the -oracle flags.
func ParseOracle(s string) (OracleKind, error) {
	switch s {
	case "welch":
		return OracleWelch, nil
	case "sifa":
		return OracleSIFA, nil
	}
	return 0, fmt.Errorf("fault: unknown oracle %q (have welch, sifa)", s)
}

// Injector draws per-trace (XOR, AND) injection pairs for one
// (pattern, model, mode) triple. Constant halves are precomputed once; the
// per-trace Draw only consumes PRNG words for the randomized models, and
// for XorFlip it consumes exactly the words the pre-model engine drew, so
// XorFlip campaigns are bit-identical to the historical XOR-mask path.
type Injector struct {
	model Model
	mode  Mode
	// pattern is the raw campaign pattern; eff is the effective bit set
	// after group widening (== pattern except for RandomByte/Nibble).
	pattern, eff bitvec.Vector
	// xorConst/andConst hold the constant halves (nil = that half is
	// inactive or per-trace random); invEff is ^eff, the AND base of the
	// value-replacement models.
	xorConst, andConst, invEff []byte
}

// NewInjector precomputes the injector for a pattern of width 8*blockBytes.
func NewInjector(pattern bitvec.Vector, model Model, mode Mode) *Injector {
	in := &Injector{model: model, mode: mode, pattern: pattern, eff: pattern}
	bb := (pattern.Len() + 7) / 8
	pb := pattern.Bytes()
	inv := func(p []byte) []byte {
		out := make([]byte, bb)
		for i := range out {
			out[i] = ^p[i]
		}
		return out
	}
	switch model {
	case StuckAtZero:
		in.andConst = inv(pb)
	case StuckAtOne:
		in.andConst = inv(pb)
		in.xorConst = pb
	case BiasedAnd:
		in.invEff = inv(pb)
	case RandomByte, RandomNibble:
		eff := make([]byte, bb)
		for i, b := range pb {
			if model == RandomByte {
				if b != 0 {
					eff[i] = 0xff
				}
				continue
			}
			if b&0x0f != 0 {
				eff[i] |= 0x0f
			}
			if b&0xf0 != 0 {
				eff[i] |= 0xf0
			}
		}
		in.eff = bitvec.FromBytes(eff)
		in.invEff = inv(eff)
		in.andConst = in.invEff
	}
	return in
}

// HasXor reports whether the model's injection uses the XOR half (the
// campaign must allocate and pass an XOR mask buffer).
func (in *Injector) HasXor() bool {
	switch in.model {
	case XorFlip, StuckAtOne, RandomByte, RandomNibble:
		return true
	}
	return false
}

// HasAnd reports whether the model's injection uses the AND half.
func (in *Injector) HasAnd() bool {
	return in.model != XorFlip
}

// Effective returns the effective bit set of the model: the pattern, or
// its widening to byte/nibble groups for the value-replacement models.
func (in *Injector) Effective() bitvec.Vector { return in.eff }

// Draw fills the active halves of one trace's injection pair. xor and and
// must be blockBytes-long when the corresponding Has half reports true and
// are ignored otherwise.
func (in *Injector) Draw(xor, and []byte, rng bitvec.RandomSource) {
	switch in.model {
	case XorFlip:
		if in.mode == FlipAll {
			in.pattern.PutBytes(xor)
			return
		}
		m := bitvec.RandomMask(&in.pattern, rng)
		m.PutBytes(xor)
	case StuckAtZero:
		copy(and, in.andConst)
	case StuckAtOne:
		copy(and, in.andConst)
		copy(xor, in.xorConst)
	case BiasedAnd:
		// Keep each pattern bit with probability 1/2; kept bits stay
		// transparent (AND 1), dropped bits are forced to 0.
		keep := bitvec.RandomSubset(&in.pattern, rng)
		keep.PutBytes(and)
		for i := range and {
			and[i] |= in.invEff[i]
		}
	case RandomByte, RandomNibble:
		copy(and, in.andConst)
		v := bitvec.RandomSubset(&in.eff, rng)
		v.PutBytes(xor)
	default:
		panic(fmt.Sprintf("fault: Draw on invalid model %d", int(in.model)))
	}
}
