package abstraction

import (
	"context"
	"reflect"
	"sort"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/ciphers"
	_ "repro/internal/ciphers/aes"
	"repro/internal/explore"
	"repro/internal/fault"
	"repro/internal/leakage"
	"repro/internal/prng"
)

// xorVerifier binds the bit-flip model onto an explore.Oracle so the
// model-free abstraction Verifier can drive it (the same adaptation the
// discovery pipeline performs per harvested model).
type xorVerifier struct{ o explore.Oracle }

func (v xorVerifier) Evaluate(ctx context.Context, p *bitvec.Vector) (float64, error) {
	return v.o.Evaluate(ctx, p, fault.XorFlip)
}
func (v xorVerifier) Threshold() float64 { return v.o.Threshold() }
func (v xorVerifier) StateBits() int     { return v.o.StateBits() }

// fakeVerifier marks a pattern leaky iff every set bit lies inside the
// allowed set, and returns 100 for leaky / 1 for non-leaky.
type fakeVerifier struct {
	bits    int
	allowed bitvec.Vector
}

func (f *fakeVerifier) Evaluate(_ context.Context, p *bitvec.Vector) (float64, error) {
	if p.SubsetOf(&f.allowed) {
		return 100, nil
	}
	return 1, nil
}
func (f *fakeVerifier) Threshold() float64 { return 4.5 }
func (f *fakeVerifier) StateBits() int     { return f.bits }

func allowBytes(bits int, bytes ...int) bitvec.Vector {
	v := bitvec.New(bits)
	for _, b := range bytes {
		for j := 0; j < 8; j++ {
			v.Set(8*b + j)
		}
	}
	return v
}

func TestWiden(t *testing.T) {
	p := bitvec.FromBits(128, 17, 23, 100)
	groups, widened := Widen(&p, 8)
	if !reflect.DeepEqual(groups, []int{2, 12}) {
		t.Errorf("groups = %v, want [2 12]", groups)
	}
	if widened.Count() != 16 {
		t.Errorf("widened has %d bits, want 16", widened.Count())
	}
	if !p.SubsetOf(&widened) {
		t.Error("original pattern not contained in widened pattern")
	}

	ng, nw := Widen(&p, 4)
	if !reflect.DeepEqual(ng, []int{4, 5, 25}) {
		t.Errorf("nibble groups = %v", ng)
	}
	if nw.Count() != 12 {
		t.Errorf("nibble widened has %d bits", nw.Count())
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		groups    []int
		groupBits int
		isAES     bool
		want      Class
	}{
		{[]int{5}, 8, true, ByteModel},
		{[]int{2, 7, 8, 13}, 8, true, DiagonalModel},
		{[]int{2, 7}, 8, true, DiagonalModel}, // partial diagonal
		{[]int{0, 1}, 8, true, MultiByteModel},
		{[]int{0, 1}, 8, false, MultiByteModel},
		{[]int{3}, 4, false, NibbleModel},
		{[]int{8, 9, 10, 11, 12, 14}, 4, false, MultiNibbleModel},
	}
	for _, tc := range cases {
		if got := classify(tc.groups, tc.groupBits, tc.isAES); got != tc.want {
			t.Errorf("classify(%v, %d, %v) = %v, want %v", tc.groups, tc.groupBits, tc.isAES, got, tc.want)
		}
	}
}

func TestAbstractWidensAndVerifies(t *testing.T) {
	v := &fakeVerifier{bits: 128, allowed: allowBytes(128, 2, 7, 8, 13)}
	// Raw pattern: scattered bits inside diagonal-2 bytes.
	p := bitvec.FromBits(128, 17, 18, 60, 70, 105)
	m, err := Abstract(context.Background(), v, &p, 8, true)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Verified {
		t.Fatal("widened diagonal model should verify")
	}
	if m.Class != DiagonalModel {
		t.Errorf("class = %v, want diagonal", m.Class)
	}
	if !reflect.DeepEqual(m.Groups, []int{2, 7, 8, 13}) {
		t.Errorf("groups = %v", m.Groups)
	}
	if m.Pattern.Count() != 32 {
		t.Errorf("pattern bits = %d, want 32", m.Pattern.Count())
	}
}

func TestAbstractFallsBackToRawPattern(t *testing.T) {
	// The allowed set covers only the raw bits, so the widened byte
	// pattern fails but the raw pattern passes.
	raw := bitvec.FromBits(128, 16, 17)
	v := &fakeVerifier{bits: 128, allowed: raw}
	m, err := Abstract(context.Background(), v, &raw, 8, true)
	if err != nil {
		t.Fatal(err)
	}
	if m.Class != RawPattern {
		t.Errorf("class = %v, want raw-pattern", m.Class)
	}
	if !m.Verified {
		t.Error("raw pattern should verify")
	}
	if !m.Pattern.Equal(&raw) {
		t.Error("raw pattern should be preserved")
	}
}

func TestAbstractSingleBit(t *testing.T) {
	p := bitvec.FromBits(128, 77)
	v := &fakeVerifier{bits: 128, allowed: p}
	m, err := Abstract(context.Background(), v, &p, 8, true)
	if err != nil {
		t.Fatal(err)
	}
	if m.Class != BitModel || !m.Verified {
		t.Errorf("got %v verified=%v, want verified bit model", m.Class, m.Verified)
	}
}

func TestAbstractRejectsEmpty(t *testing.T) {
	p := bitvec.New(128)
	v := &fakeVerifier{bits: 128, allowed: p}
	if _, err := Abstract(context.Background(), v, &p, 8, true); err == nil {
		t.Error("Abstract accepted empty pattern")
	}
}

func TestSiblingsAESByte(t *testing.T) {
	sibs := Siblings([]int{0}, 8, 128, true)
	// Column + row rotations of a single byte give 6 distinct positions
	// (3 column shifts + 3 row shifts).
	if len(sibs) != 6 {
		t.Errorf("single-byte siblings = %v (%d), want 6", sibs, len(sibs))
	}
	for _, s := range sibs {
		if len(s) != 1 {
			t.Errorf("sibling %v changed cardinality", s)
		}
	}
}

func TestSiblingsAESDiagonalCoversAllDiagonals(t *testing.T) {
	d2 := []int{2, 7, 8, 13}
	sibs := Siblings(d2, 8, 128, true)
	// Expect the other three diagonals to appear among the siblings.
	wantDiagonals := map[string]bool{
		"0,5,10,15": false,
		"1,6,11,12": false,
		"3,4,9,14":  false,
	}
	for _, s := range sibs {
		sort.Ints(s)
		if _, ok := wantDiagonals[key(s)]; ok {
			wantDiagonals[key(s)] = true
		}
	}
	for d, seen := range wantDiagonals {
		if !seen {
			t.Errorf("diagonal {%s} not generated by symmetry", d)
		}
	}
}

func TestSiblingsNibbleTranslation(t *testing.T) {
	sibs := Siblings([]int{8, 9}, 4, 64, false)
	if len(sibs) != 15 {
		t.Errorf("%d siblings, want 15 translations", len(sibs))
	}
	for _, s := range sibs {
		if len(s) != 2 {
			t.Errorf("sibling %v changed cardinality", s)
		}
	}
}

func TestExtendVerifiesSiblings(t *testing.T) {
	// Allow two diagonals: the original (D2) and D0. Extension must
	// produce exactly the D0 diagonal model.
	allowed := allowBytes(128, 2, 7, 8, 13, 0, 5, 10, 15)
	v := &fakeVerifier{bits: 128, allowed: allowed}
	m := Model{
		Class: DiagonalModel, Groups: []int{2, 7, 8, 13}, GroupBits: 8,
		Pattern: allowBytes(128, 2, 7, 8, 13), Verified: true,
	}
	sibs, err := Extend(context.Background(), v, m, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(sibs) != 1 {
		t.Fatalf("extended to %d models, want 1", len(sibs))
	}
	if !reflect.DeepEqual(sibs[0].Groups, []int{0, 5, 10, 15}) {
		t.Errorf("extended groups = %v", sibs[0].Groups)
	}
	if sibs[0].Class != DiagonalModel {
		t.Errorf("extended class = %v", sibs[0].Class)
	}
}

func TestExtendSkipsRawAndBit(t *testing.T) {
	v := &fakeVerifier{bits: 128, allowed: allowBytes(128, 0)}
	for _, class := range []Class{RawPattern, BitModel} {
		m := Model{Class: class, Pattern: bitvec.FromBits(128, 3)}
		sibs, err := Extend(context.Background(), v, m, true)
		if err != nil {
			t.Fatal(err)
		}
		if sibs != nil {
			t.Errorf("%v model extended to %v", class, sibs)
		}
	}
}

func TestDedupe(t *testing.T) {
	a := Model{Class: ByteModel, GroupBits: 8, Pattern: allowBytes(128, 1)}
	b := Model{Class: ByteModel, GroupBits: 8, Pattern: allowBytes(128, 1)}
	c := Model{Class: ByteModel, GroupBits: 8, Pattern: allowBytes(128, 2)}
	out := Dedupe([]Model{a, b, c})
	if len(out) != 2 {
		t.Errorf("Dedupe kept %d models, want 2", len(out))
	}
}

func TestHarvestEndToEndFake(t *testing.T) {
	v := &fakeVerifier{bits: 128, allowed: allowBytes(128, 2, 7, 8, 13)}
	patterns := []bitvec.Vector{
		bitvec.FromBits(128, 17),         // bit inside byte 2
		bitvec.FromBits(128, 17, 58),     // bits in bytes 2 and 7
		bitvec.FromBits(128, 17, 18, 19), // dup after widening
	}
	models, err := Harvest(context.Background(), v, patterns, HarvestConfig{GroupBits: 8, IsAES: true})
	if err != nil {
		t.Fatal(err)
	}
	// Expected: bit{2}, diagonal{2,7} plus its per-byte subsets byte{2}
	// and byte{7} (subsets of a fault model are fault models, §III-B).
	if len(models) != 4 {
		t.Fatalf("harvested %v, want 4 models", models)
	}
	classes := map[Class]int{}
	for _, m := range models {
		classes[m.Class]++
	}
	if classes[BitModel] != 1 || classes[DiagonalModel] != 1 || classes[ByteModel] != 2 {
		t.Errorf("class census wrong: %v", classes)
	}
}

func TestHarvestRequiresGroupBits(t *testing.T) {
	v := &fakeVerifier{bits: 128}
	if _, err := Harvest(context.Background(), v, nil, HarvestConfig{}); err == nil {
		t.Error("Harvest accepted zero GroupBits")
	}
}

// TestAESDiagonalExtensionIntegration runs the real leakage oracle: from
// one discovered diagonal representative, symmetry extension must verify
// all four AES diagonals (how Table III's diagonal row is filled).
func TestAESDiagonalExtensionIntegration(t *testing.T) {
	rng := prng.New(2024)
	cipherKey := make([]byte, 16)
	rng.Fill(cipherKey)
	c, err := ciphers.New("aes128", cipherKey)
	if err != nil {
		t.Fatal(err)
	}
	assessor := leakage.NewAssessor(c, leakage.Config{Samples: 1024}, rng.Split())
	oracle := xorVerifier{o: &explore.AssessorOracle{Assessor: assessor, Round: 8}}

	raw := bitvec.FromBits(128, 17, 22, 59, 60, 68, 106) // bits in bytes 2,7,8,13
	m, err := Abstract(context.Background(), oracle, &raw, 8, true)
	if err != nil {
		t.Fatal(err)
	}
	if m.Class != DiagonalModel || !m.Verified {
		t.Fatalf("abstracted to %v (verified=%v), want verified diagonal", m.Class, m.Verified)
	}
	sibs, err := Extend(context.Background(), oracle, m, true)
	if err != nil {
		t.Fatal(err)
	}
	diagonals := map[string]bool{}
	for _, s := range sibs {
		if s.Class == DiagonalModel {
			diagonals[key(s.Groups)] = true
		}
	}
	for _, want := range []string{"0,5,10,15", "1,6,11,12", "3,4,9,14"} {
		if !diagonals[want] {
			t.Errorf("diagonal {%s} not verified by extension", want)
		}
	}
}
