// Package abstraction implements §III-F of the paper: turning the raw
// multi-bit fault patterns found by the RL agent into practical fault
// models. Patterns are widened to the nibble/byte boundaries defined by
// the cipher's round structure, re-verified offline with the t-test,
// classified (bit / nibble / byte / multi-nibble / multi-byte / diagonal),
// extended to their structural siblings (e.g. the other three AES
// diagonals), and deduplicated.
package abstraction

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/bitvec"
	"repro/internal/fault"
)

// Verifier re-checks abstracted models offline. explore.Oracle satisfies
// this interface; the indirection keeps the dependency arrow pointing
// here.
type Verifier interface {
	Evaluate(ctx context.Context, pattern *bitvec.Vector) (float64, error)
	Threshold() float64
	StateBits() int
}

// Class is the abstract category of a fault model.
type Class int

const (
	// BitModel is a single-bit fault.
	BitModel Class = iota
	// NibbleModel is a fault within one 4-bit S-box word.
	NibbleModel
	// MultiNibbleModel spans several nibbles.
	MultiNibbleModel
	// ByteModel is a fault within one byte.
	ByteModel
	// MultiByteModel spans several bytes.
	MultiByteModel
	// DiagonalModel is an AES multi-byte fault confined to one diagonal
	// (the model of Saha et al. [4]).
	DiagonalModel
	// RawPattern is an exploitable bit pattern whose widened version did
	// not verify, reported as-is (§III-F: "Otherwise, we report the
	// specific multi-bit pattern observed by RL").
	RawPattern
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case BitModel:
		return "bit"
	case NibbleModel:
		return "nibble"
	case MultiNibbleModel:
		return "multi-nibble"
	case ByteModel:
		return "byte"
	case MultiByteModel:
		return "multi-byte"
	case DiagonalModel:
		return "diagonal"
	case RawPattern:
		return "raw-pattern"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Model is an abstracted, verified fault model.
type Model struct {
	// Class is the category; Groups the nibble or byte indices covered
	// (GroupBits gives the granularity; empty for RawPattern).
	Class     Class
	Groups    []int
	GroupBits int
	// Fault is the typed injection model (bit-flip, stuck-at, ...) the
	// pattern was discovered and verified under. The abstraction pipeline
	// itself never reads it — the Verifier binds one injection model per
	// harvest — but it is part of the model's identity: the same byte
	// pattern under stuck-at-0 and under bit-flip are different attacks.
	Fault fault.Model
	// Pattern is the full bit pattern of the model (all bits of all
	// covered groups, or the raw RL pattern for RawPattern).
	Pattern bitvec.Vector
	// T is the offline verification statistic; Verified whether it
	// exceeded the threshold.
	T        float64
	Verified bool
}

// Key returns a canonical identity string for deduplication.
func (m Model) Key() string {
	return fmt.Sprintf("%d/%d/%d/%s", m.Fault, m.Class, m.GroupBits, m.Pattern.String())
}

// String renders a human-readable description, e.g. "byte{5}" or
// "diagonal{2,7,8,13}"; non-bit-flip injection models carry a prefix,
// e.g. "stuck-at-0:byte{5}".
func (m Model) String() string {
	prefix := ""
	if m.Fault != fault.XorFlip {
		prefix = m.Fault.String() + ":"
	}
	if m.Class == RawPattern {
		return prefix + "raw" + m.Pattern.String()
	}
	parts := make([]string, len(m.Groups))
	for i, g := range m.Groups {
		parts[i] = fmt.Sprintf("%d", g)
	}
	return fmt.Sprintf("%s%s{%s}", prefix, m.Class, strings.Join(parts, ","))
}

// Widen maps a bit pattern to the full pattern of the groups it touches
// and returns the group indices. groupBits is 4 for nibble ciphers, 8 for
// byte ciphers.
func Widen(pattern *bitvec.Vector, groupBits int) (groups []int, widened bitvec.Vector) {
	groups = pattern.Groups(groupBits)
	widened = bitvec.New(pattern.Len())
	for _, g := range groups {
		for j := 0; j < groupBits; j++ {
			widened.Set(g*groupBits + j)
		}
	}
	return groups, widened
}

// aesDiagonalOf returns the diagonal index of AES state byte b.
func aesDiagonalOf(b int) int { return ((b%4-b/4)%4 + 4) % 4 }

// classify determines the model class of a widened pattern. isAES enables
// diagonal detection (AES is the only byte-oriented cipher with the
// ShiftRows diagonal structure).
func classify(groups []int, groupBits int, isAES bool) Class {
	switch {
	case groupBits == 4 && len(groups) == 1:
		return NibbleModel
	case groupBits == 4:
		return MultiNibbleModel
	case len(groups) == 1:
		return ByteModel
	default:
		if isAES {
			d := aesDiagonalOf(groups[0])
			same := true
			for _, g := range groups[1:] {
				if aesDiagonalOf(g) != d {
					same = false
					break
				}
			}
			if same {
				return DiagonalModel
			}
		}
		return MultiByteModel
	}
}

// AbstractAll widens a raw RL pattern and returns every verified model it
// implies: the widened whole-pattern model when it verifies, otherwise
// (per §III-F, "we see most proper subsets of the final multi-bit fault
// pattern as exploitable") the verified sub-models — each touched group
// on its own, each AES-diagonal-restricted sub-pattern — plus the raw
// pattern itself when only that verifies.
func AbstractAll(ctx context.Context, v Verifier, pattern *bitvec.Vector, groupBits int, isAES bool) ([]Model, error) {
	m, err := Abstract(ctx, v, pattern, groupBits, isAES)
	if err != nil {
		return nil, err
	}
	groups, _ := Widen(pattern, groupBits)
	if m.Verified && m.Class != RawPattern {
		out := []Model{m}
		// "All the subsets of that fault model are classified as fault
		// models as well" (§III-B): for small widenings, also verify the
		// individual groups, which yields the single-nibble/byte rows of
		// Table III from multi-group discoveries.
		if len(groups) > 1 && len(groups) <= 4 {
			subs, err := perGroupModels(ctx, v, pattern.Len(), groups, groupBits, isAES)
			if err != nil {
				return nil, err
			}
			out = append(out, subs...)
		}
		return out, nil
	}
	var out []Model
	if m.Verified {
		out = append(out, m) // the raw pattern leaks even though the widening does not
	}
	// Per-group sub-models.
	subs, err := perGroupModels(ctx, v, pattern.Len(), groups, groupBits, isAES)
	if err != nil {
		return nil, err
	}
	out = append(out, subs...)
	// AES diagonal-restricted sub-patterns: the widened bytes of each
	// diagonal, tested as one model.
	if isAES && groupBits == 8 {
		byDiag := map[int][]int{}
		for _, g := range groups {
			byDiag[aesDiagonalOf(g)] = append(byDiag[aesDiagonalOf(g)], g)
		}
		for _, dg := range byDiag {
			if len(dg) < 2 {
				continue
			}
			sub := bitvec.New(pattern.Len())
			for _, g := range dg {
				for j := 0; j < groupBits; j++ {
					sub.Set(g*groupBits + j)
				}
			}
			t, err := v.Evaluate(ctx, &sub)
			if err != nil {
				return nil, err
			}
			if t > v.Threshold() {
				out = append(out, Model{
					Class:  DiagonalModel,
					Groups: dg, GroupBits: groupBits,
					Pattern: sub, T: t, Verified: true,
				})
			}
		}
	}
	return out, nil
}

// perGroupModels verifies each touched group as a standalone model.
func perGroupModels(ctx context.Context, v Verifier, stateBits int, groups []int, groupBits int, isAES bool) ([]Model, error) {
	var out []Model
	for _, g := range groups {
		sub := bitvec.New(stateBits)
		for j := 0; j < groupBits; j++ {
			sub.Set(g*groupBits + j)
		}
		t, err := v.Evaluate(ctx, &sub)
		if err != nil {
			return nil, err
		}
		if t > v.Threshold() {
			out = append(out, Model{
				Class:  classify([]int{g}, groupBits, isAES),
				Groups: []int{g}, GroupBits: groupBits,
				Pattern: sub, T: t, Verified: true,
			})
		}
	}
	return out, nil
}

// Abstract widens a raw RL pattern to group granularity, verifies the
// widened model with v, and returns the result. If the widened model does
// not verify but the raw pattern does, the raw pattern is returned as a
// RawPattern model; a single-bit raw pattern is reported as BitModel.
func Abstract(ctx context.Context, v Verifier, pattern *bitvec.Vector, groupBits int, isAES bool) (Model, error) {
	if pattern.IsZero() {
		return Model{}, fmt.Errorf("abstraction: empty pattern")
	}
	if pattern.Count() == 1 {
		t, err := v.Evaluate(ctx, pattern)
		if err != nil {
			return Model{}, err
		}
		return Model{
			Class: BitModel, Pattern: *pattern, GroupBits: groupBits,
			Groups: pattern.Groups(groupBits),
			T:      t, Verified: t > v.Threshold(),
		}, nil
	}
	groups, widened := Widen(pattern, groupBits)
	t, err := v.Evaluate(ctx, &widened)
	if err != nil {
		return Model{}, err
	}
	if t > v.Threshold() {
		return Model{
			Class:  classify(groups, groupBits, isAES),
			Groups: groups, GroupBits: groupBits,
			Pattern: widened, T: t, Verified: true,
		}, nil
	}
	// Widened model failed: report the specific multi-bit pattern.
	rawT, err := v.Evaluate(ctx, pattern)
	if err != nil {
		return Model{}, err
	}
	return Model{
		Class: RawPattern, Pattern: *pattern, GroupBits: groupBits,
		T: rawT, Verified: rawT > v.Threshold(),
	}, nil
}

// Siblings generates structural-symmetry candidates of a group set for
// re-verification (§III-F: "exploiting the structural similarities among
// different parts of a block cipher, we extend them to other undiscovered
// instances"). For AES byte models the symmetry is column rotation
// (which maps diagonals to diagonals); for nibble ciphers it is nibble
// translation. The original group set is not included.
func Siblings(groups []int, groupBits, stateBits int, isAES bool) [][]int {
	nGroups := stateBits / groupBits
	seen := map[string]bool{key(groups): true}
	var out [][]int
	add := func(g []int) {
		sort.Ints(g)
		k := key(g)
		if !seen[k] {
			seen[k] = true
			out = append(out, g)
		}
	}
	if isAES && groupBits == 8 {
		// Column rotation: byte (r, c) -> (r, (c+k) mod 4).
		for k := 1; k < 4; k++ {
			g := make([]int, len(groups))
			for i, b := range groups {
				r, c := b%4, b/4
				g[i] = 4*((c+k)%4) + r
			}
			add(g)
		}
		// Row rotation: byte (r, c) -> ((r+k) mod 4, c); together with
		// column rotation this reaches all 16 translations of a byte
		// and all 4 diagonals of a diagonal.
		for k := 1; k < 4; k++ {
			g := make([]int, len(groups))
			for i, b := range groups {
				r, c := b%4, b/4
				g[i] = 4*c + (r+k)%4
			}
			add(g)
		}
		return out
	}
	// Nibble ciphers: translate the whole set by every offset.
	for k := 1; k < nGroups; k++ {
		g := make([]int, len(groups))
		for i, b := range groups {
			g[i] = (b + k) % nGroups
		}
		add(g)
	}
	return out
}

func key(groups []int) string {
	parts := make([]string, len(groups))
	for i, g := range groups {
		parts[i] = fmt.Sprintf("%d", g)
	}
	return strings.Join(parts, ",")
}

// Extend verifies the structural siblings of a model and returns those
// that pass the t-test, as fully-formed models.
func Extend(ctx context.Context, v Verifier, m Model, isAES bool) ([]Model, error) {
	if m.Class == RawPattern || m.Class == BitModel {
		return nil, nil
	}
	var out []Model
	for _, g := range Siblings(m.Groups, m.GroupBits, v.StateBits(), isAES) {
		pattern := bitvec.New(v.StateBits())
		for _, grp := range g {
			for j := 0; j < m.GroupBits; j++ {
				pattern.Set(grp*m.GroupBits + j)
			}
		}
		t, err := v.Evaluate(ctx, &pattern)
		if err != nil {
			return nil, err
		}
		if t > v.Threshold() {
			out = append(out, Model{
				Class:  classify(g, m.GroupBits, isAES),
				Groups: g, GroupBits: m.GroupBits,
				Pattern: pattern, T: t, Verified: true,
			})
		}
	}
	return out, nil
}

// Dedupe removes models with identical keys, keeping the first occurrence.
func Dedupe(models []Model) []Model {
	seen := map[string]bool{}
	var out []Model
	for _, m := range models {
		if k := m.Key(); !seen[k] {
			seen[k] = true
			out = append(out, m)
		}
	}
	return out
}

// HarvestConfig controls Harvest.
type HarvestConfig struct {
	// MaxPatterns bounds how many distinct raw patterns are abstracted
	// (most-frequent first); 0 means 32.
	MaxPatterns int
	// ExtendSymmetry additionally verifies structural siblings. Models
	// covering more than half the state's groups are not extended:
	// their translations are near-duplicates that add nothing beyond
	// volume.
	ExtendSymmetry bool
	// IsAES enables diagonal classification and AES symmetries.
	IsAES bool
	// GroupBits is the abstraction granularity (4 or 8).
	GroupBits int
	// MaxPerClass caps how many models of each class survive (largest-T
	// first within a class); 0 means 16.
	MaxPerClass int
}

// Harvest abstracts a set of raw leaky patterns (typically from the
// training log plus the converged pattern) into a deduplicated, verified
// model list, optionally extended by symmetry.
func Harvest(ctx context.Context, v Verifier, patterns []bitvec.Vector, cfg HarvestConfig) ([]Model, error) {
	if cfg.MaxPatterns == 0 {
		cfg.MaxPatterns = 32
	}
	if cfg.GroupBits == 0 {
		return nil, fmt.Errorf("abstraction: HarvestConfig.GroupBits required")
	}
	if cfg.MaxPerClass == 0 {
		cfg.MaxPerClass = 16
	}
	totalGroups := v.StateBits() / cfg.GroupBits
	var models []Model
	seen := map[string]bool{}
	for i, p := range patterns {
		if i >= cfg.MaxPatterns {
			break
		}
		ms, err := AbstractAll(ctx, v, &p, cfg.GroupBits, cfg.IsAES)
		if err != nil {
			return nil, err
		}
		for _, m := range ms {
			if seen[m.Key()] {
				continue
			}
			seen[m.Key()] = true
			models = append(models, m)
			if cfg.ExtendSymmetry && len(m.Groups) <= totalGroups/2 {
				sibs, err := Extend(ctx, v, m, cfg.IsAES)
				if err != nil {
					return nil, err
				}
				for _, s := range sibs {
					if !seen[s.Key()] {
						seen[s.Key()] = true
						models = append(models, s)
					}
				}
			}
		}
	}
	return capPerClass(Dedupe(models), cfg.MaxPerClass), nil
}

// capPerClass keeps at most n models of each class, preferring higher
// verification statistics, while preserving the original ordering of the
// survivors.
func capPerClass(models []Model, n int) []Model {
	byClass := map[Class][]int{}
	for i, m := range models {
		byClass[m.Class] = append(byClass[m.Class], i)
	}
	drop := map[int]bool{}
	for _, idxs := range byClass {
		if len(idxs) <= n {
			continue
		}
		sorted := append([]int(nil), idxs...)
		sort.Slice(sorted, func(a, b int) bool {
			return models[sorted[a]].T > models[sorted[b]].T
		})
		for _, i := range sorted[n:] {
			drop[i] = true
		}
	}
	out := models[:0]
	for i, m := range models {
		if !drop[i] {
			out = append(out, m)
		}
	}
	return out
}
