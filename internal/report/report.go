// Package report renders fixed-width text tables and simple series plots
// for the experiment harness, so every table and figure of the paper can
// be regenerated as plain terminal output by `go test -bench` or
// cmd/tables.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple fixed-width text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	cols := len(t.Headers)
	widths := make([]int, cols)
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < cols && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	total := 1
	for _, wd := range widths {
		total += wd + 3
	}
	if t.Title != "" {
		fmt.Fprintln(w, t.Title)
	}
	sep := strings.Repeat("-", total)
	fmt.Fprintln(w, sep)
	fmt.Fprint(w, "|")
	for i, h := range t.Headers {
		fmt.Fprintf(w, " %-*s |", widths[i], h)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, sep)
	for _, row := range t.rows {
		fmt.Fprint(w, "|")
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			fmt.Fprintf(w, " %-*s |", widths[i], cell)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, sep)
}

// Series renders a labelled numeric series as an ASCII sparkline plus the
// raw values, the harness's stand-in for the paper's line figures.
type Series struct {
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Y      []float64
}

// Render writes the series to w.
func (s *Series) Render(w io.Writer) {
	if s.Title != "" {
		fmt.Fprintln(w, s.Title)
	}
	if len(s.Y) == 0 {
		fmt.Fprintln(w, "(empty series)")
		return
	}
	minY, maxY := s.Y[0], s.Y[0]
	for _, y := range s.Y {
		if y < minY {
			minY = y
		}
		if y > maxY {
			maxY = y
		}
	}
	const levels = "▁▂▃▄▅▆▇█"
	var spark strings.Builder
	for _, y := range s.Y {
		idx := 0
		if maxY > minY {
			idx = int((y - minY) / (maxY - minY) * float64(len([]rune(levels))-1))
		}
		spark.WriteRune([]rune(levels)[idx])
	}
	fmt.Fprintf(w, "  %s: %s  (min %.3g, max %.3g)\n", s.YLabel, spark.String(), minY, maxY)
	for i, y := range s.Y {
		x := float64(i)
		if i < len(s.X) {
			x = s.X[i]
		}
		fmt.Fprintf(w, "    %s=%-10.4g %s=%.6g\n", s.XLabel, x, s.YLabel, y)
	}
}
