package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Table X", "Name", "Value")
	tb.AddRow("alpha", 1.2345)
	tb.AddRow("a-much-longer-name", 42)
	var sb strings.Builder
	tb.Render(&sb)
	out := sb.String()
	for _, want := range []string{"Table X", "Name", "Value", "alpha", "1.23", "a-much-longer-name", "42"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Header separator must be at least as wide as the longest row.
	lines := strings.Split(out, "\n")
	if len(lines) < 5 {
		t.Fatalf("too few lines:\n%s", out)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("", "A", "B", "C")
	tb.AddRow("only-one")
	var sb strings.Builder
	tb.Render(&sb) // must not panic
	if !strings.Contains(sb.String(), "only-one") {
		t.Error("ragged row dropped")
	}
}

func TestSeriesRender(t *testing.T) {
	s := Series{Title: "Fig Y", XLabel: "episode", YLabel: "reward",
		X: []float64{0, 1, 2}, Y: []float64{1, 5, 3}}
	var sb strings.Builder
	s.Render(&sb)
	out := sb.String()
	for _, want := range []string{"Fig Y", "reward", "episode=0", "reward=5"} {
		if !strings.Contains(out, want) {
			t.Errorf("series output missing %q:\n%s", want, out)
		}
	}
}

func TestSeriesEmptyAndFlat(t *testing.T) {
	var sb strings.Builder
	(&Series{Title: "empty"}).Render(&sb)
	if !strings.Contains(sb.String(), "empty series") {
		t.Error("empty series not handled")
	}
	sb.Reset()
	(&Series{Y: []float64{2, 2, 2}, YLabel: "y", XLabel: "x"}).Render(&sb) // flat: no divide-by-zero
	if !strings.Contains(sb.String(), "min 2") {
		t.Error("flat series not rendered")
	}
}
