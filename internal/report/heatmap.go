package report

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Heatmap renders a round × position grid of values (max t-statistic per
// cell in the sweep atlas) as terminal text or a markdown table. Cells at
// or above Threshold are "hot" (exploitable); the text ramp switches
// character sets at the threshold so the exploitable region is visible
// at a glance even without color.
type Heatmap struct {
	Title     string
	RowLabel  string // e.g. "round"
	ColLabel  string // e.g. "byte" or "nibble"
	Threshold float64

	rows map[int]map[int]float64 // row -> col -> value
}

// NewHeatmap creates an empty heatmap.
func NewHeatmap(title, rowLabel, colLabel string, threshold float64) *Heatmap {
	return &Heatmap{
		Title:     title,
		RowLabel:  rowLabel,
		ColLabel:  colLabel,
		Threshold: threshold,
		rows:      map[int]map[int]float64{},
	}
}

// Set records the value at (row, col), keeping the maximum when the cell
// is set more than once (a cell aggregates over fault models).
func (h *Heatmap) Set(row, col int, v float64) {
	r, ok := h.rows[row]
	if !ok {
		r = map[int]float64{}
		h.rows[row] = r
	}
	if old, ok := r[col]; !ok || v > old {
		r[col] = v
	}
}

// coldRamp maps sub-threshold values; hotRamp maps at/above-threshold
// values on a log scale (t-statistics span orders of magnitude).
const (
	coldRamp = " .:-=+"
	hotRamp  = "*#%@"
)

func (h *Heatmap) glyph(v float64, ok bool) byte {
	if !ok {
		return ' '
	}
	if h.Threshold > 0 && v >= h.Threshold {
		// log2 of the ratio above threshold: *, #, %, @ at 1x, 2x, 4x, 8x+.
		idx := int(math.Log2(v / h.Threshold))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(hotRamp) {
			idx = len(hotRamp) - 1
		}
		return hotRamp[idx]
	}
	ref := h.Threshold
	if ref <= 0 {
		ref = 1
	}
	idx := int(v / ref * float64(len(coldRamp)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(coldRamp) {
		idx = len(coldRamp) - 1
	}
	return coldRamp[idx]
}

func (h *Heatmap) axes() (rows, cols []int) {
	colSet := map[int]bool{}
	for r, m := range h.rows {
		rows = append(rows, r)
		for c := range m {
			colSet[c] = true
		}
	}
	for c := range colSet {
		cols = append(cols, c)
	}
	sort.Ints(rows)
	sort.Ints(cols)
	return rows, cols
}

// Render writes the text heatmap: one line per row, one glyph per
// column, with a legend explaining the ramp.
func (h *Heatmap) Render(w io.Writer) {
	rows, cols := h.axes()
	if h.Title != "" {
		fmt.Fprintln(w, h.Title)
	}
	if len(rows) == 0 {
		fmt.Fprintln(w, "(empty heatmap)")
		return
	}
	// Column header: tens digit line only when any column index >= 10.
	label := fmt.Sprintf("%s\\%s", h.RowLabel, h.ColLabel)
	pad := len(label)
	for _, r := range rows {
		if n := len(fmt.Sprintf("%d", r)); n > pad {
			pad = n
		}
	}
	wide := cols[len(cols)-1] >= 10
	if wide {
		fmt.Fprintf(w, "%*s ", pad, "")
		for _, c := range cols {
			fmt.Fprintf(w, "%d", (c/10)%10)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%*s ", pad, label)
	for _, c := range cols {
		fmt.Fprintf(w, "%d", c%10)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%*d ", pad, r)
		var line strings.Builder
		for _, c := range cols {
			v, ok := h.rows[r][c]
			line.WriteByte(h.glyph(v, ok))
		}
		fmt.Fprintln(w, line.String())
	}
	fmt.Fprintf(w, "legend: %q below threshold %.1f, %q at 1x/2x/4x/8x threshold\n",
		coldRamp, h.Threshold, hotRamp)
}

// RenderMarkdown writes the heatmap as a markdown table with numeric
// values, bolding cells at or above the threshold.
func (h *Heatmap) RenderMarkdown(w io.Writer) {
	rows, cols := h.axes()
	if h.Title != "" {
		fmt.Fprintf(w, "### %s\n\n", h.Title)
	}
	if len(rows) == 0 {
		fmt.Fprintln(w, "(empty heatmap)")
		return
	}
	fmt.Fprintf(w, "| %s\\%s |", h.RowLabel, h.ColLabel)
	for _, c := range cols {
		fmt.Fprintf(w, " %d |", c)
	}
	fmt.Fprintln(w)
	fmt.Fprint(w, "|---|")
	for range cols {
		fmt.Fprint(w, "---|")
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "| %d |", r)
		for _, c := range cols {
			v, ok := h.rows[r][c]
			switch {
			case !ok:
				fmt.Fprint(w, " |")
			case h.Threshold > 0 && v >= h.Threshold:
				fmt.Fprintf(w, " **%.1f** |", v)
			default:
				fmt.Fprintf(w, " %.1f |", v)
			}
		}
		fmt.Fprintln(w)
	}
}
