// Batched paired-trace encryption: the optional fast path behind the
// fault-simulation engine.
//
// A fault campaign encrypts every plaintext at least twice — once cleanly
// and once per faulty branch — and the two computations coincide on every
// round before the injection point. The batch API exposes exactly that
// structure: one EncryptForks call runs the shared prefix (rounds
// 1..round-1) once per plaintext, snapshots the state, and forks each
// branch from the snapshot, so the redundant prefix work is paid once
// instead of once per branch. Implementations additionally replace the
// byte-at-a-time reference round functions with word-oriented kernels
// (T-table AES, bitsliced GIFT); both optimizations are exactness
// preserving and cross-checked against the scalar path by the test suite.
package ciphers

import "fmt"

// BatchPoint identifies one observation point of a batched collection
// call. Round 0 selects the ciphertext in trace order (the byte layout of
// Trace.Ciphertext); Round r >= 1 selects the input of round r
// (PostSub false) or the state after round r's substitution layer
// (PostSub true), both in the repository bit order used by Trace.
type BatchPoint struct {
	Round   int
	PostSub bool
}

// BatchEncrypter is the optional capability interface of ciphers that
// provide a batched fork kernel. Ciphers without it fall back to the
// scalar reference path (ScalarForks).
type BatchEncrypter interface {
	Cipher
	// NewBatchKernel returns a reusable kernel holding the scratch state
	// of the batched fork engine. Kernels are not safe for concurrent
	// use; each campaign shard creates its own.
	NewBatchKernel() BatchKernel
}

// BatchKernel encrypts batches of plaintexts with shared-prefix forking.
type BatchKernel interface {
	// EncryptForks processes n plaintexts. Plaintext i occupies
	// pts[i*BlockBytes():(i+1)*BlockBytes()] in the same byte order as
	// Encrypt's src. For each plaintext the kernel runs rounds
	// 1..round-1 once, then forks one branch per entry of masks: branch
	// f XORs masks[f][i*bb:(i+1)*bb] (repository bit order, like
	// Fault.Mask) into the snapshot at the input of round `round`; a nil
	// masks[f] is the clean branch. After the forked rounds complete,
	// branch f's state at observation point j of trace i is written to
	// states[f][(i*len(points)+j)*bb:...] (nil states[f] skips point
	// capture) and its ciphertext — in Encrypt's dst byte order — to
	// cts[f][i*bb:(i+1)*bb] (nil cts[f] skips it). Every point must
	// satisfy Round == 0 or round <= Round <= Rounds().
	//
	// The result is bit-identical to running Encrypt once per (trace,
	// branch) with the corresponding Fault and Trace.
	EncryptForks(round int, points []BatchPoint, n int, pts []byte, masks, states, cts [][]byte)
}

// ValidateForks panics if an EncryptForks call is malformed for cipher c.
// Kernels and ScalarForks call it at the top of every batch.
func ValidateForks(c Cipher, round int, points []BatchPoint, n int, pts []byte, masks, states, cts [][]byte) {
	bb := c.BlockBytes()
	if round < 1 || round > c.Rounds() {
		panic("ciphers: fork round out of range")
	}
	if n < 0 {
		panic("ciphers: negative batch size")
	}
	if len(pts) < n*bb {
		panic(fmt.Sprintf("ciphers: %d plaintext bytes for %d traces of %d bytes", len(pts), n, bb))
	}
	for _, p := range points {
		if p.Round != 0 && (p.Round < round || p.Round > c.Rounds()) {
			panic(fmt.Sprintf("ciphers: fork observation round %d outside %d..%d", p.Round, round, c.Rounds()))
		}
	}
	if len(states) != len(masks) || len(cts) != len(masks) {
		panic(fmt.Sprintf("ciphers: %d masks, %d state buffers, %d ciphertext buffers", len(masks), len(states), len(cts)))
	}
	for f := range masks {
		if masks[f] != nil && len(masks[f]) < n*bb {
			panic(fmt.Sprintf("ciphers: branch %d mask buffer too short", f))
		}
		if states[f] != nil && len(states[f]) < n*len(points)*bb {
			panic(fmt.Sprintf("ciphers: branch %d state buffer too short", f))
		}
		if cts[f] != nil && len(cts[f]) < n*bb {
			panic(fmt.Sprintf("ciphers: branch %d ciphertext buffer too short", f))
		}
	}
}

// ScalarForks is the reference implementation of the EncryptForks
// contract for an arbitrary Cipher: one full Encrypt per (trace, branch)
// pair, with the requested point states copied out of a Trace. It is the
// fallback for ciphers without a batch kernel and the oracle that batch
// kernels are verified against.
func ScalarForks(c Cipher, round int, points []BatchPoint, n int, pts []byte, masks, states, cts [][]byte) {
	ValidateForks(c, round, points, n, pts, masks, states, cts)
	bb, np := c.BlockBytes(), len(points)
	tr := NewTrace(c)
	out := make([]byte, bb)
	f := &Fault{Round: round}
	for i := 0; i < n; i++ {
		pt := pts[i*bb : (i+1)*bb]
		for fi := range masks {
			var fault *Fault
			if masks[fi] != nil {
				f.Mask = masks[fi][i*bb : (i+1)*bb]
				fault = f
			}
			c.Encrypt(out, pt, fault, tr)
			if st := states[fi]; st != nil {
				for j, p := range points {
					copy(st[(i*np+j)*bb:], batchPointState(tr, p))
				}
			}
			if ct := cts[fi]; ct != nil {
				copy(ct[i*bb:], out)
			}
		}
	}
}

// batchPointState resolves a BatchPoint against a filled Trace.
func batchPointState(tr *Trace, p BatchPoint) []byte {
	switch {
	case p.Round == 0:
		return tr.Ciphertext
	case p.PostSub:
		return tr.PostSub[p.Round-1]
	default:
		return tr.Inputs[p.Round-1]
	}
}
