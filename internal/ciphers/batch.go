// Batched paired-trace encryption: the optional fast path behind the
// fault-simulation engine.
//
// A fault campaign encrypts every plaintext at least twice — once cleanly
// and once per faulty branch — and the two computations coincide on every
// round before the injection point. The batch API exposes exactly that
// structure: one EncryptForks call runs the shared prefix (rounds
// 1..round-1) once per plaintext, snapshots the state, and forks each
// branch from the snapshot, so the redundant prefix work is paid once
// instead of once per branch. Implementations additionally replace the
// byte-at-a-time reference round functions with word-oriented kernels
// (T-table AES, bitsliced GIFT); both optimizations are exactness
// preserving and cross-checked against the scalar path by the test suite.
package ciphers

import "fmt"

// BatchPoint identifies one observation point of a batched collection
// call. Round 0 selects the ciphertext in trace order (the byte layout of
// Trace.Ciphertext); Round r >= 1 selects the input of round r
// (PostSub false) or the state after round r's substitution layer
// (PostSub true), both in the repository bit order used by Trace.
type BatchPoint struct {
	Round   int
	PostSub bool
}

// BatchEncrypter is the optional capability interface of ciphers that
// provide a batched fork kernel. Ciphers without it fall back to the
// scalar reference path (ScalarForks).
type BatchEncrypter interface {
	Cipher
	// NewBatchKernel returns a reusable kernel holding the scratch state
	// of the batched fork engine. Kernels are not safe for concurrent
	// use; each campaign shard creates its own.
	NewBatchKernel() BatchKernel
}

// BatchKernel encrypts batches of plaintexts with shared-prefix forking.
type BatchKernel interface {
	// EncryptForks processes n plaintexts. Plaintext i occupies
	// pts[i*BlockBytes():(i+1)*BlockBytes()] in the same byte order as
	// Encrypt's src. For each plaintext the kernel runs rounds
	// 1..round-1 once, then forks one branch per entry of masks: branch
	// f XORs masks[f][i*bb:(i+1)*bb] (repository bit order, like
	// Fault.Mask) into the snapshot at the input of round `round`; a nil
	// masks[f] is the clean branch. After the forked rounds complete,
	// branch f's state at observation point j of trace i is written to
	// states[f][(i*len(points)+j)*bb:...] (nil states[f] skips point
	// capture) and its ciphertext — in Encrypt's dst byte order — to
	// cts[f][i*bb:(i+1)*bb] (nil cts[f] skips it). Every point must
	// satisfy Round == 0 or round <= Round <= Rounds().
	//
	// The result is bit-identical to running Encrypt once per (trace,
	// branch) with the corresponding Fault and Trace.
	EncryptForks(round int, points []BatchPoint, n int, pts []byte, masks, states, cts [][]byte)
}

// FaultKernel is the optional extension of BatchKernel for kernels that
// support the generalized injection op: branch f of trace i replaces the
// fork snapshot with (state AND ands[f][i*bb:]) XOR xors[f][i*bb:], a nil
// ands[f] meaning all-ones and a nil xors[f] meaning all-zero (both nil is
// the clean branch). The AND half is what stuck-at faults need — a lane-
// wise AND clears the stuck-at-0 bits, and the XOR half re-sets the
// stuck-at-1 ones — and is cheap in both word-oriented and bitsliced
// kernels (one extra AND per state word/lane). Kernels without this
// interface are driven through the scalar fallback by EncryptForksOps.
type FaultKernel interface {
	BatchKernel
	// EncryptForksOps is EncryptForks with the (AND, XOR) injection pair
	// per branch instead of an XOR mask only.
	EncryptForksOps(round int, points []BatchPoint, n int, pts []byte, xors, ands, states, cts [][]byte)
}

// EncryptForksOps runs one generalized-injection batch through the best
// available engine: the plain batch kernel when no branch carries an AND
// mask (the XorFlip hot path, unchanged), the kernel's FaultKernel
// extension when it has one, and otherwise the scalar reference path —
// the automatic fallback that keeps exotic fault models correct on
// kernels that only speak XOR. kern may be nil to force the scalar path.
func EncryptForksOps(c Cipher, kern BatchKernel, round int, points []BatchPoint, n int, pts []byte, xors, ands, states, cts [][]byte) {
	andFree := true
	for _, a := range ands {
		if a != nil {
			andFree = false
			break
		}
	}
	if andFree {
		if kern != nil {
			kern.EncryptForks(round, points, n, pts, xors, states, cts)
			return
		}
		ScalarForks(c, round, points, n, pts, xors, states, cts)
		return
	}
	if fk, ok := kern.(FaultKernel); ok {
		fk.EncryptForksOps(round, points, n, pts, xors, ands, states, cts)
		return
	}
	ScalarForksOps(c, round, points, n, pts, xors, ands, states, cts)
}

// ValidateForks panics if an EncryptForks call is malformed for cipher c.
// Kernels and ScalarForks call it at the top of every batch.
func ValidateForks(c Cipher, round int, points []BatchPoint, n int, pts []byte, masks, states, cts [][]byte) {
	ValidateForksOps(c, round, points, n, pts, masks, nil, states, cts)
}

// ValidateForksOps is ValidateForks for the generalized injection op: it
// additionally checks the AND-mask buffers (ands may be nil for the
// XOR-only contract).
func ValidateForksOps(c Cipher, round int, points []BatchPoint, n int, pts []byte, xors, ands, states, cts [][]byte) {
	bb := c.BlockBytes()
	if round < 1 || round > c.Rounds() {
		panic("ciphers: fork round out of range")
	}
	if n < 0 {
		panic("ciphers: negative batch size")
	}
	if len(pts) < n*bb {
		panic(fmt.Sprintf("ciphers: %d plaintext bytes for %d traces of %d bytes", len(pts), n, bb))
	}
	for _, p := range points {
		if p.Round != 0 && (p.Round < round || p.Round > c.Rounds()) {
			panic(fmt.Sprintf("ciphers: fork observation round %d outside %d..%d", p.Round, round, c.Rounds()))
		}
	}
	if len(states) != len(xors) || len(cts) != len(xors) {
		panic(fmt.Sprintf("ciphers: %d masks, %d state buffers, %d ciphertext buffers", len(xors), len(states), len(cts)))
	}
	if ands != nil && len(ands) != len(xors) {
		panic(fmt.Sprintf("ciphers: %d XOR mask branches, %d AND mask branches", len(xors), len(ands)))
	}
	for f := range xors {
		if xors[f] != nil && len(xors[f]) < n*bb {
			panic(fmt.Sprintf("ciphers: branch %d mask buffer too short", f))
		}
		if ands != nil && ands[f] != nil && len(ands[f]) < n*bb {
			panic(fmt.Sprintf("ciphers: branch %d AND mask buffer too short", f))
		}
		if states[f] != nil && len(states[f]) < n*len(points)*bb {
			panic(fmt.Sprintf("ciphers: branch %d state buffer too short", f))
		}
		if cts[f] != nil && len(cts[f]) < n*bb {
			panic(fmt.Sprintf("ciphers: branch %d ciphertext buffer too short", f))
		}
	}
}

// ScalarForks is the reference implementation of the EncryptForks
// contract for an arbitrary Cipher: one full Encrypt per (trace, branch)
// pair, with the requested point states copied out of a Trace. It is the
// fallback for ciphers without a batch kernel and the oracle that batch
// kernels are verified against.
func ScalarForks(c Cipher, round int, points []BatchPoint, n int, pts []byte, masks, states, cts [][]byte) {
	ScalarForksOps(c, round, points, n, pts, masks, nil, states, cts)
}

// ScalarForksOps is the reference implementation of the generalized
// injection contract (see FaultKernel): one full Encrypt per (trace,
// branch) with a Fault carrying both mask halves. It is the automatic
// fallback of EncryptForksOps for kernels without AND support, and the
// oracle every FaultKernel is verified against.
func ScalarForksOps(c Cipher, round int, points []BatchPoint, n int, pts []byte, xors, ands, states, cts [][]byte) {
	ValidateForksOps(c, round, points, n, pts, xors, ands, states, cts)
	bb, np := c.BlockBytes(), len(points)
	tr := NewTrace(c)
	out := make([]byte, bb)
	f := &Fault{Round: round}
	for i := 0; i < n; i++ {
		pt := pts[i*bb : (i+1)*bb]
		for fi := range xors {
			var fault *Fault
			f.Mask, f.And = nil, nil
			if xors[fi] != nil {
				f.Mask = xors[fi][i*bb : (i+1)*bb]
				fault = f
			}
			if ands != nil && ands[fi] != nil {
				f.And = ands[fi][i*bb : (i+1)*bb]
				fault = f
			}
			c.Encrypt(out, pt, fault, tr)
			if st := states[fi]; st != nil {
				for j, p := range points {
					copy(st[(i*np+j)*bb:], batchPointState(tr, p))
				}
			}
			if ct := cts[fi]; ct != nil {
				copy(ct[i*bb:], out)
			}
		}
	}
}

// batchPointState resolves a BatchPoint against a filled Trace.
func batchPointState(tr *Trace, p BatchPoint) []byte {
	switch {
	case p.Round == 0:
		return tr.Ciphertext
	case p.PostSub:
		return tr.PostSub[p.Round-1]
	default:
		return tr.Inputs[p.Round-1]
	}
}
