// The batched PRESENT fork kernel: a bitsliced implementation packing 64
// traces per uint64 lane, with shared-prefix forking.
//
// PRESENT's 64-bit state slices into exactly 64 lanes, so one round is a
// fixed number of word operations for the whole block: the S-box layer
// becomes its ANF boolean circuit over 4 lanes per nibble, the bit
// permutation becomes a lane renumbering, and the round-key XOR
// complements the lanes selected by the key's set bits. Unlike GIFT,
// PRESENT adds the round key at the top of the round and injects faults
// after it, so the shared prefix includes the fork round's key addition.
// Blocks smaller than eight traces take a per-trace path reusing the
// scalar round functions with prefix sharing; both paths are bit-identical
// to Encrypt.
package present

import (
	"encoding/binary"
	"math/bits"

	"repro/internal/bitvec"
	"repro/internal/ciphers"
)

// laneBlock is the number of traces packed per bitsliced block.
const laneBlock = 64

// bitsliceMin is the smallest block worth transposing into lanes; below
// it the per-trace fork path wins.
const bitsliceMin = 8

// kernel implements ciphers.FaultKernel for PRESENT-80.
type kernel struct {
	c *Cipher
	// lanes/tmp/snap are the bitsliced state, the permutation double
	// buffer, and the fork snapshot: 64 lanes of 64 traces each.
	lanes, tmp, snap []uint64
	// rows is the transpose scratch: one state word per trace.
	rows [laneBlock]uint64
}

// NewBatchKernel implements ciphers.BatchEncrypter.
func (c *Cipher) NewBatchKernel() ciphers.BatchKernel {
	return &kernel{
		c:     c,
		lanes: make([]uint64, 64),
		tmp:   make([]uint64, 64),
		snap:  make([]uint64, 64),
	}
}

// sboxLanes applies the PRESENT S-box to one bitsliced nibble. The
// circuit is the algebraic normal form of the lookup table with shared
// subterms; it is verified against the table by the test suite.
func sboxLanes(l *[4]uint64) {
	x0, x1, x2, x3 := l[0], l[1], l[2], l[3]
	t01 := x0 & x1
	t02 := x0 & x2
	t12 := x1 & x2
	t012 := t01 & x2
	a := t01 & x3
	b := t02 & x3
	l[0] = x0 ^ x2 ^ t12 ^ x3
	l[1] = x1 ^ t012 ^ x3 ^ x1&x3 ^ a ^ x2&x3 ^ b
	l[2] = ^(t01 ^ x2 ^ x3 ^ x0&x3 ^ x1&x3 ^ a ^ b)
	l[3] = ^(x0 ^ x1 ^ t12 ^ t012 ^ x3 ^ a ^ b)
}

// subLayerLanes applies the S-box circuit to every nibble of the lanes.
func (k *kernel) subLayerLanes() {
	for nib := 0; nib < 64; nib += 4 {
		var l [4]uint64
		copy(l[:], k.lanes[nib:nib+4])
		sboxLanes(&l)
		copy(k.lanes[nib:nib+4], l[:])
	}
}

// permLayerLanes renumbers the lanes through the PRESENT bit permutation.
func (k *kernel) permLayerLanes() {
	for i, p := range perm {
		k.tmp[p] = k.lanes[i]
	}
	k.lanes, k.tmp = k.tmp, k.lanes
}

// addRoundKeyLanes complements every lane selected by the round key's set
// bits (XOR with an all-set key bit is a NOT across the lane's 64 traces).
func (k *kernel) addRoundKeyLanes(rk uint64) {
	for rk != 0 {
		b := bits.TrailingZeros64(rk)
		k.lanes[b] = ^k.lanes[b]
		rk &= rk - 1
	}
}

// loadRowsBE gathers the block's plaintext state words into k.rows,
// zero-padding past bn.
func (k *kernel) loadRowsBE(pts []byte, base, bn int) {
	for t := 0; t < bn; t++ {
		k.rows[t] = loadBE(pts[(base+t)*BlockBytes:])
	}
	for t := bn; t < laneBlock; t++ {
		k.rows[t] = 0
	}
}

// loadRowsLE gathers each trace's little-endian (repository bit order)
// mask word — the layout of fault masks — into k.rows.
func (k *kernel) loadRowsLE(masks []byte, base, bn int) {
	for t := 0; t < bn; t++ {
		k.rows[t] = loadLE(masks[(base+t)*BlockBytes:])
	}
	for t := bn; t < laneBlock; t++ {
		k.rows[t] = 0
	}
}

// captureLanes transposes the current lanes back to per-trace words and
// writes each live trace's state into dst at stride*traceIndex+off,
// little-endian (trace order) or big-endian (ciphertext order).
func (k *kernel) captureLanes(dst []byte, base, bn, stride, off int, bigEndian bool) {
	copy(k.rows[:], k.lanes)
	bitvec.Transpose64(&k.rows)
	for t := 0; t < bn; t++ {
		at := dst[(base+t)*stride+off:]
		if bigEndian {
			storeBE(at, k.rows[t])
		} else {
			// The transposed row already is the repository-order (LE)
			// state: state bit i = bit i%8 of byte i/8.
			binary.LittleEndian.PutUint64(at, k.rows[t])
		}
	}
}

// EncryptForks implements ciphers.BatchKernel.
func (k *kernel) EncryptForks(round int, points []ciphers.BatchPoint, n int, pts []byte, masks, states, cts [][]byte) {
	k.EncryptForksOps(round, points, n, pts, masks, nil, states, cts)
}

// EncryptForksOps implements ciphers.FaultKernel: the AND half of the
// injection pair is one extra AND per lane on the faulted branch, with
// mask rows transposed exactly like the XOR rows. Dead lanes past bn are
// ANDed with the zero padding, which is harmless because captures never
// read them.
func (k *kernel) EncryptForksOps(round int, points []ciphers.BatchPoint, n int, pts []byte, xors, ands, states, cts [][]byte) {
	ciphers.ValidateForksOps(k.c, round, points, n, pts, xors, ands, states, cts)
	for base := 0; base < n; {
		bn := n - base
		if bn > laneBlock {
			bn = laneBlock
		}
		if bn >= bitsliceMin {
			k.forkBlock(round, points, base, bn, pts, xors, ands, states, cts)
		} else {
			k.forkScalar(round, points, base, bn, pts, xors, ands, states, cts)
		}
		base += bn
	}
}

// forkBlock runs one bitsliced block of bn <= 64 traces.
func (k *kernel) forkBlock(round int, points []ciphers.BatchPoint, base, bn int, pts []byte, masks, ands, states, cts [][]byte) {
	c := k.c
	np := len(points)

	// Transpose the block's plaintexts into lanes.
	k.loadRowsBE(pts, base, bn)
	bitvec.Transpose64(&k.rows)
	copy(k.lanes, k.rows[:])
	// Shared prefix: complete rounds before the injection point plus the
	// fork round's key addition (Encrypt injects after the key XOR).
	for r := 1; r < round; r++ {
		k.addRoundKeyLanes(c.roundKeys[r-1])
		k.subLayerLanes()
		k.permLayerLanes()
	}
	k.addRoundKeyLanes(c.roundKeys[round-1])
	copy(k.snap, k.lanes)

	for f := range masks {
		if f > 0 {
			copy(k.lanes, k.snap)
		}
		if ands != nil && ands[f] != nil {
			k.loadRowsLE(ands[f], base, bn)
			bitvec.Transpose64(&k.rows)
			for b := 0; b < 64; b++ {
				k.lanes[b] &= k.rows[b]
			}
		}
		if m := masks[f]; m != nil {
			k.loadRowsLE(m, base, bn)
			bitvec.Transpose64(&k.rows)
			for b := 0; b < 64; b++ {
				k.lanes[b] ^= k.rows[b]
			}
		}
		st := states[f]
		for r := round; r <= NumRounds; r++ {
			if r > round {
				k.addRoundKeyLanes(c.roundKeys[r-1])
			}
			if st != nil {
				for j, p := range points {
					if p.Round == r && !p.PostSub {
						k.captureLanes(st, base, bn, np*BlockBytes, j*BlockBytes, false)
					}
				}
			}
			k.subLayerLanes()
			if st != nil {
				for j, p := range points {
					if p.Round == r && p.PostSub {
						k.captureLanes(st, base, bn, np*BlockBytes, j*BlockBytes, false)
					}
				}
			}
			k.permLayerLanes()
		}
		k.addRoundKeyLanes(c.roundKeys[NumRounds])
		if st != nil {
			for j, p := range points {
				if p.Round == 0 {
					k.captureLanes(st, base, bn, np*BlockBytes, j*BlockBytes, false)
				}
			}
		}
		if ct := cts[f]; ct != nil {
			k.captureLanes(ct, base, bn, BlockBytes, 0, true)
		}
	}
}

// forkScalar runs bn traces through the scalar round functions with
// prefix sharing: the path for blocks too small to amortize the
// transposes. It performs the same state operations as Encrypt.
func (k *kernel) forkScalar(round int, points []ciphers.BatchPoint, base, bn int, pts []byte, masks, ands, states, cts [][]byte) {
	c := k.c
	np := len(points)
	for t := 0; t < bn; t++ {
		i := base + t
		snap := loadBE(pts[i*BlockBytes:])
		for r := 1; r < round; r++ {
			snap ^= c.roundKeys[r-1]
			snap = subLayer(snap, &sbox)
			snap = permLayer(snap, &perm)
		}
		snap ^= c.roundKeys[round-1]
		for f := range masks {
			s := snap
			if ands != nil && ands[f] != nil {
				s &= loadLE(ands[f][i*BlockBytes:])
			}
			if m := masks[f]; m != nil {
				s ^= loadLE(m[i*BlockBytes:])
			}
			st := states[f]
			for r := round; r <= NumRounds; r++ {
				if r > round {
					s ^= c.roundKeys[r-1]
				}
				if st != nil {
					for j, p := range points {
						if p.Round == r && !p.PostSub {
							storeLE(st[(i*np+j)*BlockBytes:], s)
						}
					}
				}
				s = subLayer(s, &sbox)
				if st != nil {
					for j, p := range points {
						if p.Round == r && p.PostSub {
							storeLE(st[(i*np+j)*BlockBytes:], s)
						}
					}
				}
				s = permLayer(s, &perm)
			}
			s ^= c.roundKeys[NumRounds]
			if st != nil {
				for j, p := range points {
					if p.Round == 0 {
						storeLE(st[(i*np+j)*BlockBytes:], s)
					}
				}
			}
			if ct := cts[f]; ct != nil {
				storeBE(ct[i*BlockBytes:], s)
			}
		}
	}
}
