package present

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/ciphers"
	"repro/internal/prng"
)

// TestSboxLanesMatchesTable runs the bitsliced S-box circuit on all 16
// inputs replicated across lanes and compares against the lookup table.
func TestSboxLanesMatchesTable(t *testing.T) {
	for x := 0; x < 16; x++ {
		var l [4]uint64
		for b := 0; b < 4; b++ {
			if x>>uint(b)&1 == 1 {
				l[b] = ^uint64(0)
			}
		}
		sboxLanes(&l)
		got := 0
		for b := 0; b < 4; b++ {
			switch l[b] {
			case ^uint64(0):
				got |= 1 << uint(b)
			case 0:
			default:
				t.Fatalf("sboxLanes(%#x): lane %d not constant: %#x", x, b, l[b])
			}
		}
		if got != int(sbox[x]) {
			t.Fatalf("sboxLanes(%#x) = %#x, want %#x", x, got, sbox[x])
		}
	}
}

// TestBatchKernelMatchesScalar cross-checks the bitsliced fork kernel
// against the scalar reference path, covering the bitsliced block path,
// the small-block scalar path (n < 8), ragged tails (n % 64 != 0), and
// the generalized (AND, XOR) injection op.
func TestBatchKernelMatchesScalar(t *testing.T) {
	rng := prng.New(13)
	key := make([]byte, KeyBytes)
	rng.Fill(key)
	c, err := New(key)
	if err != nil {
		t.Fatal(err)
	}
	kern := c.NewBatchKernel().(ciphers.FaultKernel)
	bb := c.BlockBytes()
	last := c.Rounds()
	for _, round := range []int{1, last / 2, last - 2, last} {
		points := []ciphers.BatchPoint{
			{Round: 0},
			{Round: round},
			{Round: round, PostSub: true},
			{Round: last, PostSub: true},
		}
		np := len(points)
		for _, n := range []int{1, 3, 8, 64, 72, 130} {
			for _, withAnds := range []bool{false, true} {
				t.Run(fmt.Sprintf("round=%d/n=%d/ands=%v", round, n, withAnds), func(t *testing.T) {
					pts := make([]byte, n*bb)
					rng.Fill(pts)
					maskA := make([]byte, n*bb)
					maskB := make([]byte, n*bb)
					rng.Fill(maskA)
					rng.Fill(maskB)
					masks := [][]byte{nil, maskA, maskB}
					var ands [][]byte
					if withAnds {
						andB := make([]byte, n*bb)
						rng.Fill(andB)
						ands = [][]byte{nil, nil, andB}
					}
					mkBufs := func() ([][]byte, [][]byte) {
						states := make([][]byte, len(masks))
						cts := make([][]byte, len(masks))
						for f := range masks {
							states[f] = make([]byte, n*np*bb)
							cts[f] = make([]byte, n*bb)
						}
						states[1] = nil
						cts[2] = nil
						return states, cts
					}
					wantStates, wantCts := mkBufs()
					ciphers.ScalarForksOps(c, round, points, n, pts, masks, ands, wantStates, wantCts)
					gotStates, gotCts := mkBufs()
					kern.EncryptForksOps(round, points, n, pts, masks, ands, gotStates, gotCts)
					for f := range masks {
						if !bytes.Equal(gotStates[f], wantStates[f]) {
							t.Errorf("branch %d point states differ from scalar path", f)
						}
						if !bytes.Equal(gotCts[f], wantCts[f]) {
							t.Errorf("branch %d ciphertexts differ from scalar path", f)
						}
					}
				})
			}
		}
	}
}
