package present

import (
	"bytes"
	"encoding/hex"
	"testing"

	"repro/internal/ciphers"
	"repro/internal/prng"
)

func unhex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

// Official test vectors from the PRESENT paper (CHES 2007, Appendix).
func TestPresentVectors(t *testing.T) {
	cases := []struct{ key, pt, ct string }{
		{"00000000000000000000", "0000000000000000", "5579c1387b228445"},
		{"ffffffffffffffffffff", "0000000000000000", "e72c46c0f5945049"},
		{"00000000000000000000", "ffffffffffffffff", "a112ffc72f68417b"},
		{"ffffffffffffffffffff", "ffffffffffffffff", "3333dcd3213210d2"},
	}
	for _, tc := range cases {
		c, err := New(unhex(t, tc.key))
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 8)
		c.Encrypt(got, unhex(t, tc.pt), nil, nil)
		if want := unhex(t, tc.ct); !bytes.Equal(got, want) {
			t.Errorf("key %s pt %s: ct = %x, want %x", tc.key, tc.pt, got, want)
		}
	}
}

func TestSBoxBijection(t *testing.T) {
	seen := map[byte]bool{}
	for i := byte(0); i < 16; i++ {
		s := SBox(i)
		if seen[s] {
			t.Fatalf("S-box not a bijection at %d", i)
		}
		seen[s] = true
		if InvSBox(s) != i {
			t.Fatalf("InvSBox(SBox(%d)) = %d", i, InvSBox(s))
		}
	}
	if SBox(0) != 0xc || SBox(0xf) != 0x2 {
		t.Error("S-box endpoints disagree with the specification")
	}
}

func TestPermKnownValues(t *testing.T) {
	// P(i) = 16i mod 63 with P(63) = 63.
	want := map[int]int{0: 0, 1: 16, 2: 32, 3: 48, 4: 1, 62: 47, 63: 63}
	for i, p := range want {
		if got := Perm(i); got != p {
			t.Errorf("Perm(%d) = %d, want %d", i, got, p)
		}
	}
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		if seen[Perm(i)] {
			t.Fatalf("permutation not a bijection at %d", i)
		}
		seen[Perm(i)] = true
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	src := prng.New(55)
	key := make([]byte, 10)
	pt := make([]byte, 8)
	ct := make([]byte, 8)
	got := make([]byte, 8)
	for trial := 0; trial < 50; trial++ {
		src.Fill(key)
		src.Fill(pt)
		c, err := New(key)
		if err != nil {
			t.Fatal(err)
		}
		c.Encrypt(ct, pt, nil, nil)
		c.Decrypt(got, ct)
		if !bytes.Equal(got, pt) {
			t.Fatalf("decrypt(encrypt(pt)) != pt for key %x", key)
		}
	}
}

func TestNewRejectsBadKeyLength(t *testing.T) {
	for _, n := range []int{0, 8, 16} {
		if _, err := New(make([]byte, n)); err == nil {
			t.Errorf("New accepted %d-byte key", n)
		}
	}
}

func TestFaultTraceSemantics(t *testing.T) {
	c, _ := New(unhex(t, "00000000000000000000"))
	pt := unhex(t, "0123456789abcdef")
	cleanTr := ciphers.NewTrace(c)
	faultTr := ciphers.NewTrace(c)
	out := make([]byte, 8)
	c.Encrypt(out, pt, nil, cleanTr)

	mask := make([]byte, 8)
	mask[3] = 0xf0 // nibble 7
	c.Encrypt(out, pt, &ciphers.Fault{Round: 29, Mask: mask}, faultTr)
	for r := 1; r < 29; r++ {
		if !bytes.Equal(cleanTr.Inputs[r-1], faultTr.Inputs[r-1]) {
			t.Errorf("round %d input differs before injection", r)
		}
	}
	diff := make([]byte, 8)
	for i := range diff {
		diff[i] = cleanTr.Inputs[28][i] ^ faultTr.Inputs[28][i]
	}
	if !bytes.Equal(diff, mask) {
		t.Errorf("round-29 input differential = %x, want mask %x", diff, mask)
	}
}

func TestRegistryIntegration(t *testing.T) {
	c, err := ciphers.New("present80", make([]byte, 10))
	if err != nil {
		t.Fatal(err)
	}
	if c.Rounds() != 31 || c.GroupBits() != 4 || c.BlockBytes() != 8 {
		t.Error("wrong registry metadata for present80")
	}
}

func BenchmarkEncrypt(b *testing.B) {
	c, _ := New(make([]byte, 10))
	pt := make([]byte, 8)
	ct := make([]byte, 8)
	b.SetBytes(8)
	for i := 0; i < b.N; i++ {
		c.Encrypt(ct, pt, nil, nil)
	}
}
