// Package present implements the PRESENT-80 lightweight block cipher
// (Bogdanov et al., CHES 2007) at trace level. PRESENT is included as a
// generality extension: the paper's introduction motivates automated fault
// exploration precisely because models like the AES diagonal do not carry
// over to PRESENT/GIFT-style bit-permutation ciphers, and a third cipher
// exercises the framework's cipher-agnostic interfaces.
//
// # State layout
//
// The specification numbers state bits b63..b0 with b63 the most
// significant bit of the first plaintext byte; internally spec bit i sits
// at machine bit i, so repository bit numbering equals spec numbering,
// exactly as in package gift.
package present

import (
	"fmt"

	"repro/internal/ciphers"
)

// NumRounds is the number of substitution-permutation rounds. A 32nd
// round key is XORed after the last round as output whitening.
const NumRounds = 31

// BlockBytes is the block size in bytes.
const BlockBytes = 8

// KeyBytes is the PRESENT-80 key size in bytes.
const KeyBytes = 10

var sbox = [16]byte{0xc, 0x5, 0x6, 0xb, 0x9, 0x0, 0xa, 0xd, 0x3, 0xe, 0xf, 0x8, 0x4, 0x7, 0x1, 0x2}

var invSbox [16]byte

// perm is the PRESENT bit permutation: bit i moves to perm[i].
var perm [64]int

func init() {
	for i, v := range sbox {
		invSbox[v] = byte(i)
	}
	for i := 0; i < 63; i++ {
		perm[i] = (16 * i) % 63
	}
	perm[63] = 63
}

// SBox returns the PRESENT S-box value of a 4-bit input.
func SBox(x byte) byte { return sbox[x&0xf] }

// InvSBox returns the inverse S-box value of a 4-bit input.
func InvSBox(x byte) byte { return invSbox[x&0xf] }

// Perm returns the destination of bit i under the PRESENT permutation.
func Perm(i int) int { return perm[i] }

// Cipher is a PRESENT-80 instance with precomputed round keys.
type Cipher struct {
	roundKeys [NumRounds + 1]uint64
}

// New expands a PRESENT-80 key (10 bytes, spec big-endian order).
func New(key []byte) (*Cipher, error) {
	if len(key) != KeyBytes {
		return nil, fmt.Errorf("present: key must be %d bytes, got %d", KeyBytes, len(key))
	}
	c := new(Cipher)
	// Key register: 80 bits k79..k0, hi holds k79..k16, lo the low 16.
	var hi uint64 // k79..k16
	var lo uint64 // k15..k0
	for i := 0; i < 8; i++ {
		hi = hi<<8 | uint64(key[i])
	}
	lo = uint64(key[8])<<8 | uint64(key[9])
	for r := 1; r <= NumRounds+1; r++ {
		c.roundKeys[r-1] = hi // round key = leftmost 64 bits (k79..k16)
		// Register update: rotate left by 61, S-box the top nibble,
		// XOR the round counter into bits k19..k15. In this layout
		// k19..k16 are the low 4 bits of hi and k15 is the top bit of lo.
		hi, lo = rotl80(hi, lo, 61)
		top := byte(hi >> 60)
		hi = hi&^(0xf<<60) | uint64(sbox[top])<<60
		ctr := uint64(r)
		hi ^= ctr >> 1
		lo ^= (ctr & 1) << 15
	}
	return c, nil
}

// rotl80 rotates the 80-bit value (hi:64 || lo:16) left by n.
func rotl80(hi, lo uint64, n uint) (uint64, uint64) {
	// Build the 80-bit value in a pair of uint64s: top 16 bits unused.
	// value = hi * 2^16 + lo, bits 79..0.
	// Rotation left by n: bit j -> (j + n) mod 80.
	var outHi, outLo uint64
	getBit := func(j uint) uint64 {
		if j < 16 {
			return lo >> j & 1
		}
		return hi >> (j - 16) & 1
	}
	for j := uint(0); j < 80; j++ {
		b := getBit(j)
		d := (j + n) % 80
		if d < 16 {
			outLo |= b << d
		} else {
			outHi |= b << (d - 16)
		}
	}
	return outHi, outLo
}

// RoundKey returns round key r (1-based; round NumRounds+1 is the final
// whitening key).
func (c *Cipher) RoundKey(r int) uint64 {
	if r < 1 || r > NumRounds+1 {
		panic("present: round key index out of range")
	}
	return c.roundKeys[r-1]
}

// Name implements ciphers.Cipher.
func (c *Cipher) Name() string { return "present80" }

// BlockBytes implements ciphers.Cipher.
func (c *Cipher) BlockBytes() int { return BlockBytes }

// Rounds implements ciphers.Cipher.
func (c *Cipher) Rounds() int { return NumRounds }

// GroupBits implements ciphers.Cipher: PRESENT substitutes nibbles.
func (c *Cipher) GroupBits() int { return 4 }

func loadBE(src []byte) uint64 {
	var v uint64
	for _, b := range src[:8] {
		v = v<<8 | uint64(b)
	}
	return v
}

func storeBE(dst []byte, v uint64) {
	for i := 7; i >= 0; i-- {
		dst[i] = byte(v)
		v >>= 8
	}
}

func loadLE(mask []byte) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(mask[i])
	}
	return v
}

func storeLE(dst []byte, v uint64) {
	for i := 0; i < 8; i++ {
		dst[i] = byte(v)
		v >>= 8
	}
}

func subLayer(s uint64, box *[16]byte) uint64 {
	var out uint64
	for n := 0; n < 16; n++ {
		out |= uint64(box[s>>(4*uint(n))&0xf]) << (4 * uint(n))
	}
	return out
}

func permLayer(s uint64, p *[64]int) uint64 {
	var out uint64
	for i := 0; i < 64; i++ {
		if s>>uint(i)&1 == 1 {
			out |= 1 << uint(p[i])
		}
	}
	return out
}

// Encrypt implements ciphers.Cipher. The input of round r is the state
// after round r-1's permutation and round-key XOR; the whitening key of
// round 32 is folded into the ciphertext.
func (c *Cipher) Encrypt(dst, src []byte, fault *ciphers.Fault, trace *ciphers.Trace) {
	fault.Validate(c)
	s := loadBE(src)
	for r := 1; r <= NumRounds; r++ {
		s ^= c.roundKeys[r-1]
		if fault != nil && fault.Round == r {
			if fault.And != nil {
				s &= loadLE(fault.And)
			}
			if fault.Mask != nil {
				s ^= loadLE(fault.Mask)
			}
		}
		if trace != nil {
			storeLE(trace.Inputs[r-1], s)
		}
		s = subLayer(s, &sbox)
		if trace != nil {
			storeLE(trace.PostSub[r-1], s)
		}
		s = permLayer(s, &perm)
	}
	s ^= c.roundKeys[NumRounds]
	storeBE(dst, s)
	if trace != nil {
		storeLE(trace.Ciphertext, s)
	}
}

// Decrypt inverts Encrypt (no fault/trace support).
func (c *Cipher) Decrypt(dst, src []byte) {
	var invPerm [64]int
	for i, p := range perm {
		invPerm[p] = i
	}
	s := loadBE(src)
	s ^= c.roundKeys[NumRounds]
	for r := NumRounds; r >= 1; r-- {
		s = permLayer(s, &invPerm)
		s = subLayer(s, &invSbox)
		s ^= c.roundKeys[r-1]
	}
	storeBE(dst, s)
}

func init() {
	ciphers.Register(ciphers.Info{
		Name:       "present80",
		BlockBytes: BlockBytes,
		KeyBytes:   KeyBytes,
		Rounds:     NumRounds,
		GroupBits:  4,
		New: func(key []byte) (ciphers.Cipher, error) {
			return New(key)
		},
	})
}
