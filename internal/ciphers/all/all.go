// Package all registers every cipher implementation with the ciphers
// registry via blank imports. Commands and tools that want "every cipher
// the build knows" import this one package instead of maintaining their
// own import list — partial lists drift as ciphers are added (a tool
// missing one import silently rejects a registered cipher by name).
package all

import (
	_ "repro/internal/ciphers/aes"     // register aes128
	_ "repro/internal/ciphers/gift"    // register gift64, gift128
	_ "repro/internal/ciphers/present" // register present80
	_ "repro/internal/ciphers/simon"   // register simon64, simon32
	_ "repro/internal/ciphers/speck"   // register speck64, speck32
)
