package speck

import (
	"bytes"
	"encoding/hex"
	"testing"

	"repro/internal/ciphers"
	"repro/internal/prng"
)

func unhex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

// Official test vectors from the SIMON and SPECK specification.
func TestSpeck64_128Vector(t *testing.T) {
	c, err := New64(unhex(t, "1b1a1918131211100b0a090803020100"))
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8)
	c.Encrypt(got, unhex(t, "3b7265747475432d"), nil, nil)
	if want := unhex(t, "8c6fa548454e028b"); !bytes.Equal(got, want) {
		t.Errorf("ciphertext = %x, want %x", got, want)
	}
}

func TestSpeck32_64Vector(t *testing.T) {
	c, err := New32(unhex(t, "1918111009080100"))
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4)
	c.Encrypt(got, unhex(t, "6574694c"), nil, nil)
	if want := unhex(t, "a86842f2"); !bytes.Equal(got, want) {
		t.Errorf("ciphertext = %x, want %x", got, want)
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	src := prng.New(61)
	for _, v := range []Variant{Speck64_128, Speck32_64} {
		keyLen := 16
		if v == Speck32_64 {
			keyLen = 8
		}
		key := make([]byte, keyLen)
		for trial := 0; trial < 50; trial++ {
			src.Fill(key)
			c, err := New(v, key)
			if err != nil {
				t.Fatal(err)
			}
			pt := make([]byte, c.BlockBytes())
			ct := make([]byte, c.BlockBytes())
			got := make([]byte, c.BlockBytes())
			src.Fill(pt)
			c.Encrypt(ct, pt, nil, nil)
			c.Decrypt(got, ct)
			if !bytes.Equal(got, pt) {
				t.Fatalf("%s: decrypt(encrypt(pt)) != pt", c.Name())
			}
		}
	}
}

func TestInvRoundFunc(t *testing.T) {
	src := prng.New(62)
	c, _ := New64(make([]byte, 16))
	for trial := 0; trial < 200; trial++ {
		x, y, k := src.Uint32(), src.Uint32(), src.Uint32()
		fx, fy := c.roundFunc(x, y, k)
		gx, gy := c.invRoundFunc(fx, fy, k)
		if gx != x || gy != y {
			t.Fatalf("round inversion failed for %08x %08x", x, y)
		}
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	if _, err := New64(make([]byte, 8)); err == nil {
		t.Error("New64 accepted 8-byte key")
	}
	if _, err := New(Variant(5), make([]byte, 16)); err == nil {
		t.Error("New accepted unknown variant")
	}
}

func TestFaultTraceSemantics(t *testing.T) {
	c, _ := New64(unhex(t, "1b1a1918131211100b0a090803020100"))
	pt := unhex(t, "0123456789abcdef")
	cleanTr := ciphers.NewTrace(c)
	faultTr := ciphers.NewTrace(c)
	out := make([]byte, 8)
	c.Encrypt(out, pt, nil, cleanTr)
	mask := make([]byte, 8)
	mask[2] = 0x40 // bit 22 (y word)
	c.Encrypt(out, pt, &ciphers.Fault{Round: 24, Mask: mask}, faultTr)
	for r := 1; r < 24; r++ {
		if !bytes.Equal(cleanTr.Inputs[r-1], faultTr.Inputs[r-1]) {
			t.Errorf("round %d input differs before injection", r)
		}
	}
	diff := make([]byte, 8)
	for i := range diff {
		diff[i] = cleanTr.Inputs[23][i] ^ faultTr.Inputs[23][i]
	}
	if !bytes.Equal(diff, mask) {
		t.Errorf("round-24 input differential = %x, want %x", diff, mask)
	}
}

func TestCarryChainDiffusion(t *testing.T) {
	// ARX-specific: a low-bit fault in x propagates upward through the
	// modular addition's carry chain, so the one-round differential is
	// typically wider than one bit but confined to x-derived positions.
	c, _ := New64(make([]byte, 16))
	pt := unhex(t, "00112233aabbccdd")
	cleanTr := ciphers.NewTrace(c)
	faultTr := ciphers.NewTrace(c)
	out := make([]byte, 8)
	c.Encrypt(out, pt, nil, cleanTr)
	mask := make([]byte, 8)
	mask[4] = 0x01 // bit 32 = bit 0 of x
	c.Encrypt(out, pt, &ciphers.Fault{Round: 10, Mask: mask}, faultTr)
	diffBits := 0
	for i := 0; i < 8; i++ {
		b := cleanTr.Inputs[10][i] ^ faultTr.Inputs[10][i]
		for b != 0 {
			diffBits++
			b &= b - 1
		}
	}
	if diffBits < 2 {
		t.Errorf("one-round differential has %d bits; the carry chain and the y-XOR should spread a single x bit", diffBits)
	}
}

func TestAvalanche(t *testing.T) {
	src := prng.New(63)
	key := make([]byte, 16)
	src.Fill(key)
	c, _ := New64(key)
	pt := make([]byte, 8)
	ct0 := make([]byte, 8)
	ct1 := make([]byte, 8)
	total := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		src.Fill(pt)
		c.Encrypt(ct0, pt, nil, nil)
		pt[src.Intn(8)] ^= 1 << uint(src.Intn(8))
		c.Encrypt(ct1, pt, nil, nil)
		for j := 0; j < 8; j++ {
			b := ct0[j] ^ ct1[j]
			for b != 0 {
				total++
				b &= b - 1
			}
		}
	}
	avg := float64(total) / trials
	if avg < 64*0.4 || avg > 64*0.6 {
		t.Errorf("avalanche: avg %.1f flipped bits of 64", avg)
	}
}

func TestRegistryIntegration(t *testing.T) {
	c, err := ciphers.New("speck64", make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	if c.Rounds() != 27 || c.BlockBytes() != 8 || c.GroupBits() != 8 {
		t.Error("speck64 registry metadata wrong")
	}
	if _, err := ciphers.New("speck32", make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncryptSpeck64(b *testing.B) {
	c, _ := New64(make([]byte, 16))
	pt := make([]byte, 8)
	ct := make([]byte, 8)
	b.SetBytes(8)
	for i := 0; i < b.N; i++ {
		c.Encrypt(ct, pt, nil, nil)
	}
}
