// Package speck implements the SPECK family members Speck64/128 (64-bit
// block, 128-bit key, 27 rounds) and Speck32/64 (32-bit block, 64-bit
// key, 22 rounds) at trace level (Beaulieu et al., DAC 2015).
//
// SPECK completes the structural-diversity set of this repository: an
// ARX design (modular addition, rotation, XOR) with no S-boxes at all,
// alongside the SPN ciphers (AES, GIFT, PRESENT) and the Feistel
// AND-rotate design (SIMON). Fault differentials interact with the carry
// chain of the modular addition, a qualitatively different propagation
// from both.
//
// State layout follows the repository convention: the block is x||y with
// x the left/high word; internally y occupies state bits [0, n) and x
// bits [n, 2n). "PostSub" records the state after the ARX mixing of the
// round (the nonlinear step).
package speck

import (
	"fmt"

	"repro/internal/ciphers"
)

// Variant selects a SPECK family member.
type Variant int

const (
	// Speck64_128: 64-bit block, 128-bit key, 27 rounds.
	Speck64_128 Variant = iota
	// Speck32_64: 32-bit block, 64-bit key, 22 rounds.
	Speck32_64
)

// Cipher is a keyed SPECK instance.
type Cipher struct {
	variant   Variant
	wordBits  uint
	rounds    int
	alpha     uint // right-rotation of x
	beta      uint // left-rotation of y
	roundKeys []uint32
}

// New creates a SPECK instance for the given variant.
func New(v Variant, key []byte) (*Cipher, error) {
	c := &Cipher{variant: v}
	var keyWords int
	switch v {
	case Speck64_128:
		c.wordBits, c.rounds, keyWords = 32, 27, 4
		c.alpha, c.beta = 8, 3
	case Speck32_64:
		c.wordBits, c.rounds, keyWords = 16, 22, 4
		c.alpha, c.beta = 7, 2
	default:
		return nil, fmt.Errorf("speck: unknown variant %d", v)
	}
	wantKey := keyWords * int(c.wordBits) / 8
	if len(key) != wantKey {
		return nil, fmt.Errorf("speck: key must be %d bytes, got %d", wantKey, len(key))
	}
	c.expandKey(key, keyWords)
	return c, nil
}

// New64 creates a Speck64/128 instance.
func New64(key []byte) (*Cipher, error) { return New(Speck64_128, key) }

// New32 creates a Speck32/64 instance.
func New32(key []byte) (*Cipher, error) { return New(Speck32_64, key) }

func (c *Cipher) mask() uint32 {
	if c.wordBits == 32 {
		return 0xffffffff
	}
	return uint32(1)<<c.wordBits - 1
}

func (c *Cipher) rotl(x uint32, r uint) uint32 {
	return (x<<r | x>>(c.wordBits-r)) & c.mask()
}

func (c *Cipher) rotr(x uint32, r uint) uint32 {
	return (x>>r | x<<(c.wordBits-r)) & c.mask()
}

// roundFunc applies one SPECK round to (x, y) with round key k.
func (c *Cipher) roundFunc(x, y, k uint32) (uint32, uint32) {
	x = (c.rotr(x, c.alpha) + y) & c.mask()
	x ^= k
	y = c.rotl(y, c.beta) ^ x
	return x, y
}

// invRoundFunc inverts roundFunc.
func (c *Cipher) invRoundFunc(x, y, k uint32) (uint32, uint32) {
	y = c.rotr(y^x, c.beta)
	x ^= k
	x = c.rotl((x-y)&c.mask(), c.alpha)
	return x, y
}

// expandKey runs the SPECK key schedule: the key words beyond k[0] form a
// rotating l-register mixed with the same round function.
func (c *Cipher) expandKey(key []byte, m int) {
	bytesPerWord := int(c.wordBits) / 8
	words := make([]uint32, m)
	// key[0..] holds the highest word first; words[0] is k[0] (last).
	for i := 0; i < m; i++ {
		var w uint32
		off := (m - 1 - i) * bytesPerWord
		for j := 0; j < bytesPerWord; j++ {
			w = w<<8 | uint32(key[off+j])
		}
		words[i] = w
	}
	k := words[0]
	l := append([]uint32(nil), words[1:]...)
	c.roundKeys = make([]uint32, c.rounds)
	for i := 0; i < c.rounds; i++ {
		c.roundKeys[i] = k
		if i == c.rounds-1 {
			break
		}
		li, ki := c.roundFunc(l[i%(m-1)], k, uint32(i))
		// roundFunc computes x = (ror(x)+y)^k with k = counter, then
		// y = rol(y)^x: exactly the schedule's update with (l, k).
		l[i%(m-1)] = li
		k = ki
	}
}

// RoundKey returns the round key of round r (1-based).
func (c *Cipher) RoundKey(r int) uint32 {
	if r < 1 || r > c.rounds {
		panic("speck: round key index out of range")
	}
	return c.roundKeys[r-1]
}

// Name implements ciphers.Cipher.
func (c *Cipher) Name() string {
	if c.variant == Speck64_128 {
		return "speck64"
	}
	return "speck32"
}

// BlockBytes implements ciphers.Cipher.
func (c *Cipher) BlockBytes() int { return 2 * int(c.wordBits) / 8 }

// Rounds implements ciphers.Cipher.
func (c *Cipher) Rounds() int { return c.rounds }

// GroupBits implements ciphers.Cipher: bytes, as for SIMON (no S-boxes).
func (c *Cipher) GroupBits() int { return 8 }

func (c *Cipher) loadBE(src []byte) (x, y uint32) {
	bytesPerWord := int(c.wordBits) / 8
	for j := 0; j < bytesPerWord; j++ {
		x = x<<8 | uint32(src[j])
		y = y<<8 | uint32(src[bytesPerWord+j])
	}
	return x, y
}

func (c *Cipher) storeBE(dst []byte, x, y uint32) {
	bytesPerWord := int(c.wordBits) / 8
	for j := bytesPerWord - 1; j >= 0; j-- {
		dst[j] = byte(x)
		dst[bytesPerWord+j] = byte(y)
		x >>= 8
		y >>= 8
	}
}

func (c *Cipher) storeLE(dst []byte, x, y uint32) {
	bytesPerWord := int(c.wordBits) / 8
	for j := 0; j < bytesPerWord; j++ {
		dst[j] = byte(y >> (8 * uint(j)))
		dst[bytesPerWord+j] = byte(x >> (8 * uint(j)))
	}
}

func (c *Cipher) maskLE(mask []byte) (x, y uint32) {
	bytesPerWord := int(c.wordBits) / 8
	for j := 0; j < bytesPerWord; j++ {
		y |= uint32(mask[j]) << (8 * uint(j))
		x |= uint32(mask[bytesPerWord+j]) << (8 * uint(j))
	}
	return x, y
}

// Encrypt implements ciphers.Cipher.
func (c *Cipher) Encrypt(dst, src []byte, fault *ciphers.Fault, trace *ciphers.Trace) {
	fault.Validate(c)
	x, y := c.loadBE(src)
	for r := 1; r <= c.rounds; r++ {
		if fault != nil && fault.Round == r {
			if fault.And != nil {
				ax, ay := c.maskLE(fault.And)
				x &= ax
				y &= ay
			}
			if fault.Mask != nil {
				fx, fy := c.maskLE(fault.Mask)
				x ^= fx
				y ^= fy
			}
		}
		if trace != nil {
			c.storeLE(trace.Inputs[r-1], x, y)
		}
		x, y = c.roundFunc(x, y, c.roundKeys[r-1])
		if trace != nil {
			c.storeLE(trace.PostSub[r-1], x, y)
		}
	}
	c.storeBE(dst, x, y)
	if trace != nil {
		c.storeLE(trace.Ciphertext, x, y)
	}
}

// Decrypt inverts Encrypt.
func (c *Cipher) Decrypt(dst, src []byte) {
	x, y := c.loadBE(src)
	for r := c.rounds; r >= 1; r-- {
		x, y = c.invRoundFunc(x, y, c.roundKeys[r-1])
	}
	c.storeBE(dst, x, y)
}

func init() {
	ciphers.Register(ciphers.Info{
		Name:       "speck64",
		BlockBytes: 8,
		KeyBytes:   16,
		Rounds:     27,
		GroupBits:  8,
		New: func(key []byte) (ciphers.Cipher, error) {
			return New(Speck64_128, key)
		},
	})
	ciphers.Register(ciphers.Info{
		Name:       "speck32",
		BlockBytes: 4,
		KeyBytes:   8,
		Rounds:     22,
		GroupBits:  8,
		New: func(key []byte) (ciphers.Cipher, error) {
			return New(Speck32_64, key)
		},
	})
}
