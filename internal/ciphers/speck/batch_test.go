package speck

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/ciphers"
	"repro/internal/prng"
)

// TestBatchKernelMatchesScalar cross-checks the lane-packed fork kernel
// of both variants against the scalar reference path, covering the
// bitsliced block path, the small-block scalar path (n < 8), ragged
// tails, and the generalized (AND, XOR) injection op. Carry propagation
// through the bitsliced adder gets dedicated coverage: one sub-case
// forces all-ones states via the fault masks so additions ripple across
// the full word width.
func TestBatchKernelMatchesScalar(t *testing.T) {
	rng := prng.New(19)
	for _, variant := range []Variant{Speck64_128, Speck32_64} {
		keyLen := 16
		if variant == Speck32_64 {
			keyLen = 8
		}
		key := make([]byte, keyLen)
		rng.Fill(key)
		c, err := New(variant, key)
		if err != nil {
			t.Fatal(err)
		}
		kern := c.NewBatchKernel().(ciphers.FaultKernel)
		bb := c.BlockBytes()
		last := c.Rounds()
		for _, round := range []int{1, last / 2, last - 2, last} {
			points := []ciphers.BatchPoint{
				{Round: 0},
				{Round: round},
				{Round: round, PostSub: true},
				{Round: last, PostSub: true},
			}
			np := len(points)
			for _, n := range []int{1, 3, 8, 64, 72, 130} {
				for _, mode := range []string{"xor", "ands", "carry"} {
					t.Run(fmt.Sprintf("%v/round=%d/n=%d/%s", variant, round, n, mode), func(t *testing.T) {
						pts := make([]byte, n*bb)
						rng.Fill(pts)
						maskA := make([]byte, n*bb)
						maskB := make([]byte, n*bb)
						rng.Fill(maskA)
						rng.Fill(maskB)
						var ands [][]byte
						switch mode {
						case "ands":
							andB := make([]byte, n*bb)
							rng.Fill(andB)
							ands = [][]byte{nil, nil, andB}
						case "carry":
							// Stuck-at-1 over the whole block: the faulted
							// branch enters the adder as all-ones, the
							// carry-heaviest operand.
							for i := range maskB {
								maskB[i] = 0xff
							}
							andZ := make([]byte, n*bb)
							ands = [][]byte{nil, nil, andZ}
						}
						masks := [][]byte{nil, maskA, maskB}
						mkBufs := func() ([][]byte, [][]byte) {
							states := make([][]byte, len(masks))
							cts := make([][]byte, len(masks))
							for f := range masks {
								states[f] = make([]byte, n*np*bb)
								cts[f] = make([]byte, n*bb)
							}
							states[1] = nil
							cts[2] = nil
							return states, cts
						}
						wantStates, wantCts := mkBufs()
						ciphers.ScalarForksOps(c, round, points, n, pts, masks, ands, wantStates, wantCts)
						gotStates, gotCts := mkBufs()
						kern.EncryptForksOps(round, points, n, pts, masks, ands, gotStates, gotCts)
						for f := range masks {
							if !bytes.Equal(gotStates[f], wantStates[f]) {
								t.Errorf("branch %d point states differ from scalar path", f)
							}
							if !bytes.Equal(gotCts[f], wantCts[f]) {
								t.Errorf("branch %d ciphertexts differ from scalar path", f)
							}
						}
					})
				}
			}
		}
	}
}
