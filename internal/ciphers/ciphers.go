// Package ciphers defines the trace-level block-cipher abstraction that the
// fault-simulation engine is built on, plus a registry of implementations.
//
// A trace-level cipher exposes its iterative round structure: callers can
// inject an XOR fault into the state at the input of any round and capture
// every intermediate round state. This is exactly the access a fault
// simulator needs and is why the ciphers are implemented from scratch
// rather than wrapping crypto/aes (which hides round states).
//
// # Bit numbering
//
// State bit i (0-based) is bit i%8 of state byte i/8. Each implementation
// documents how its specification's bit/byte order maps onto this layout.
// Fault patterns, masks and differentials all use this numbering.
package ciphers

// Cipher is a trace-level block cipher; see the package comment for the
// bit-numbering and round conventions.
type Cipher interface {
	// Name returns a stable identifier, e.g. "aes128" or "gift64".
	Name() string
	// BlockBytes returns the state width in bytes.
	BlockBytes() int
	// Rounds returns the number of rounds. Fault injection rounds and
	// trace indices are 1-based: round r for r in 1..Rounds().
	Rounds() int
	// GroupBits returns the natural substitution-word width in bits:
	// 8 for AES (byte S-boxes), 4 for GIFT and PRESENT (nibble S-boxes).
	// Fault-model abstraction and t-test grouping default to this size.
	GroupBits() int
	// Encrypt encrypts the BlockBytes()-byte block src into dst
	// (they may alias). If fault is non-nil, the state at the input of
	// round fault.Round becomes (state AND fault.And) XOR fault.Mask,
	// with a nil And meaning all-ones and a nil Mask meaning all-zero.
	// If trace is non-nil it is filled with every round-input state,
	// every post-substitution state, and the ciphertext. The fault is
	// applied before the round input is recorded, so
	// Inputs[fault.Round-1] reflects the faulty state.
	Encrypt(dst, src []byte, fault *Fault, trace *Trace)
}

// Fault is a fault applied to the cipher state at the input of a round:
// the state becomes (state AND And) XOR Mask. Both masks have
// BlockBytes() bytes in the package bit numbering; a nil And is the
// identity (all-ones) and a nil Mask is all-zero, so the classic XOR
// bit-flip fault sets Mask only, while stuck-at faults clear bits via And
// (stuck-at-0) and re-set them via Mask (stuck-at-1). At least one mask
// must be non-nil. This (a, x) pair expresses every per-bit fault
// function: identity, flip, stuck-at-0 and stuck-at-1.
type Fault struct {
	Round int
	Mask  []byte // XOR half; nil = no flips
	And   []byte // AND half; nil = all-ones (no clamping)
}

// Trace captures the intermediate states of one encryption.
// All slices are owned by the trace and overwritten by each Encrypt call.
type Trace struct {
	// Inputs[r-1] is the state at the input of round r, i.e. after all
	// operations of round r-1 (and after the initial whitening, if the
	// cipher has one) and after fault injection for round r.
	Inputs [][]byte
	// PostSub[r-1] is the state immediately after the substitution layer
	// of round r. GIFT's distinguishers are observed here (§IV-D).
	PostSub [][]byte
	// Ciphertext is the final output block.
	Ciphertext []byte
}

// NewTrace allocates a trace sized for c.
func NewTrace(c Cipher) *Trace {
	t := &Trace{
		Inputs:     make([][]byte, c.Rounds()),
		PostSub:    make([][]byte, c.Rounds()),
		Ciphertext: make([]byte, c.BlockBytes()),
	}
	for i := range t.Inputs {
		t.Inputs[i] = make([]byte, c.BlockBytes())
		t.PostSub[i] = make([]byte, c.BlockBytes())
	}
	return t
}

// Validate panics if the fault is malformed for cipher c. It is called by
// implementations at the top of Encrypt.
func (f *Fault) Validate(c Cipher) {
	if f == nil {
		return
	}
	if f.Round < 1 || f.Round > c.Rounds() {
		panic("ciphers: fault round out of range")
	}
	if f.Mask == nil && f.And == nil {
		panic("ciphers: fault has neither XOR nor AND mask")
	}
	if f.Mask != nil && len(f.Mask) != c.BlockBytes() {
		panic("ciphers: fault mask length mismatch")
	}
	if f.And != nil && len(f.And) != c.BlockBytes() {
		panic("ciphers: fault AND mask length mismatch")
	}
}
