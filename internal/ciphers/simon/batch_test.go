package simon

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/ciphers"
	"repro/internal/prng"
)

// TestBatchKernelMatchesScalar cross-checks the lane-packed fork kernel
// of both variants against the scalar reference path, covering the
// bitsliced block path, the small-block scalar path (n < 8), ragged
// tails, and the generalized (AND, XOR) injection op.
func TestBatchKernelMatchesScalar(t *testing.T) {
	rng := prng.New(17)
	for _, variant := range []Variant{Simon64_128, Simon32_64} {
		keyLen := 16
		if variant == Simon32_64 {
			keyLen = 8
		}
		key := make([]byte, keyLen)
		rng.Fill(key)
		c, err := New(variant, key)
		if err != nil {
			t.Fatal(err)
		}
		kern := c.NewBatchKernel().(ciphers.FaultKernel)
		bb := c.BlockBytes()
		last := c.Rounds()
		for _, round := range []int{1, last / 2, last - 2, last} {
			points := []ciphers.BatchPoint{
				{Round: 0},
				{Round: round},
				{Round: round, PostSub: true},
				{Round: last, PostSub: true},
			}
			np := len(points)
			for _, n := range []int{1, 3, 8, 64, 72, 130} {
				for _, withAnds := range []bool{false, true} {
					t.Run(fmt.Sprintf("%v/round=%d/n=%d/ands=%v", variant, round, n, withAnds), func(t *testing.T) {
						pts := make([]byte, n*bb)
						rng.Fill(pts)
						maskA := make([]byte, n*bb)
						maskB := make([]byte, n*bb)
						rng.Fill(maskA)
						rng.Fill(maskB)
						masks := [][]byte{nil, maskA, maskB}
						var ands [][]byte
						if withAnds {
							andB := make([]byte, n*bb)
							rng.Fill(andB)
							ands = [][]byte{nil, nil, andB}
						}
						mkBufs := func() ([][]byte, [][]byte) {
							states := make([][]byte, len(masks))
							cts := make([][]byte, len(masks))
							for f := range masks {
								states[f] = make([]byte, n*np*bb)
								cts[f] = make([]byte, n*bb)
							}
							states[1] = nil
							cts[2] = nil
							return states, cts
						}
						wantStates, wantCts := mkBufs()
						ciphers.ScalarForksOps(c, round, points, n, pts, masks, ands, wantStates, wantCts)
						gotStates, gotCts := mkBufs()
						kern.EncryptForksOps(round, points, n, pts, masks, ands, gotStates, gotCts)
						for f := range masks {
							if !bytes.Equal(gotStates[f], wantStates[f]) {
								t.Errorf("branch %d point states differ from scalar path", f)
							}
							if !bytes.Equal(gotCts[f], wantCts[f]) {
								t.Errorf("branch %d ciphertexts differ from scalar path", f)
							}
						}
					})
				}
			}
		}
	}
}
