// Package simon implements the SIMON family members Simon64/128 (64-bit
// block, 128-bit key, 44 rounds) and Simon32/64 (32-bit block, 64-bit
// key, 32 rounds) at trace level (Beaulieu et al., "The SIMON and SPECK
// lightweight block ciphers", DAC 2015).
//
// SIMON is the paper's motivating example of structural diversity: it is
// a Feistel cipher with AND/rotate round functions, so fault models
// discovered for SPN ciphers (AES diagonals, GIFT nibbles) do not carry
// over, while the ExploreFault pipeline applies unchanged. The package
// follows the repository-wide trace conventions: state bit i is bit i%8
// of byte i/8, where the state is y||x with x the high (left) word as in
// the SIMON specification; "PostSub" records the state after the round's
// non-linear function is applied, which for a Feistel round is the state
// right after the Feistel swap.
package simon

import (
	"fmt"

	"repro/internal/ciphers"
)

// Variant selects a SIMON family member.
type Variant int

const (
	// Simon64_128: 64-bit block, 128-bit key, 44 rounds.
	Simon64_128 Variant = iota
	// Simon32_64: 32-bit block, 64-bit key, 32 rounds.
	Simon32_64
)

// z-sequences used by the key schedules (z3 for Simon64/128, z0 for
// Simon32/64), from the SIMON specification.
var (
	z0 = mustBits("11111010001001010110000111001101111101000100101011000011100110")
	z3 = mustBits("11011011101011000110010111100000010010001010011100110100001111")
)

func mustBits(s string) []byte {
	out := make([]byte, len(s))
	for i, c := range s {
		if c != '0' && c != '1' {
			panic("simon: bad z-sequence literal")
		}
		out[i] = byte(c - '0')
	}
	return out
}

// Cipher is a keyed SIMON instance.
type Cipher struct {
	variant   Variant
	wordBits  uint
	rounds    int
	roundKeys []uint32
}

// New creates a SIMON instance for the given variant.
func New(v Variant, key []byte) (*Cipher, error) {
	c := &Cipher{variant: v}
	var keyWords int
	var z []byte
	switch v {
	case Simon64_128:
		c.wordBits, c.rounds, keyWords, z = 32, 44, 4, z3
	case Simon32_64:
		c.wordBits, c.rounds, keyWords, z = 16, 32, 4, z0
	default:
		return nil, fmt.Errorf("simon: unknown variant %d", v)
	}
	wantKey := keyWords * int(c.wordBits) / 8
	if len(key) != wantKey {
		return nil, fmt.Errorf("simon: key must be %d bytes, got %d", wantKey, len(key))
	}
	c.expandKey(key, keyWords, z)
	return c, nil
}

// New64 creates a Simon64/128 instance (the default in this repository).
func New64(key []byte) (*Cipher, error) { return New(Simon64_128, key) }

// New32 creates a Simon32/64 instance.
func New32(key []byte) (*Cipher, error) { return New(Simon32_64, key) }

func (c *Cipher) mask() uint32 {
	if c.wordBits == 32 {
		return 0xffffffff
	}
	return uint32(1)<<c.wordBits - 1
}

func (c *Cipher) rotl(x uint32, r uint) uint32 {
	return (x<<r | x>>(c.wordBits-r)) & c.mask()
}

func (c *Cipher) rotr(x uint32, r uint) uint32 {
	return (x>>r | x<<(c.wordBits-r)) & c.mask()
}

// expandKey computes the round keys. The key is given in spec big-endian
// order: key[0..] holds k[m-1] first.
func (c *Cipher) expandKey(key []byte, m int, z []byte) {
	bytesPerWord := int(c.wordBits) / 8
	k := make([]uint32, c.rounds)
	// k[0] is the LAST word of the byte string.
	for i := 0; i < m; i++ {
		var w uint32
		off := (m - 1 - i) * bytesPerWord
		for j := 0; j < bytesPerWord; j++ {
			w = w<<8 | uint32(key[off+j])
		}
		k[i] = w
	}
	cconst := c.mask() ^ 3 // 2^n - 4
	for i := m; i < c.rounds; i++ {
		tmp := c.rotr(k[i-1], 3)
		if m == 4 {
			tmp ^= k[i-3]
		}
		tmp ^= c.rotr(tmp, 1)
		k[i] = k[i-m] ^ tmp ^ uint32(z[(i-m)%62]) ^ cconst
	}
	c.roundKeys = k
}

// RoundKey returns the round key of round r (1-based), exported for the
// DFA-style analyses and tests.
func (c *Cipher) RoundKey(r int) uint32 {
	if r < 1 || r > c.rounds {
		panic("simon: round key index out of range")
	}
	return c.roundKeys[r-1]
}

// Name implements ciphers.Cipher.
func (c *Cipher) Name() string {
	if c.variant == Simon64_128 {
		return "simon64"
	}
	return "simon32"
}

// BlockBytes implements ciphers.Cipher.
func (c *Cipher) BlockBytes() int { return 2 * int(c.wordBits) / 8 }

// Rounds implements ciphers.Cipher.
func (c *Cipher) Rounds() int { return c.rounds }

// GroupBits implements ciphers.Cipher. SIMON has no S-boxes; bytes are
// the natural grouping for differential statistics.
func (c *Cipher) GroupBits() int { return 8 }

// f is the SIMON round function.
func (c *Cipher) f(x uint32) uint32 {
	return (c.rotl(x, 1)&c.rotl(x, 8) ^ c.rotl(x, 2)) & c.mask()
}

// state mapping: the spec block is x||y (x left/high). We store the
// 2n-bit state with y in bits [0, n) and x in bits [n, 2n), so state bit
// i of the repository convention is bit i of y for i < n.

func (c *Cipher) loadBE(src []byte) (x, y uint32) {
	bytesPerWord := int(c.wordBits) / 8
	for j := 0; j < bytesPerWord; j++ {
		x = x<<8 | uint32(src[j])
		y = y<<8 | uint32(src[bytesPerWord+j])
	}
	return x, y
}

func (c *Cipher) storeBE(dst []byte, x, y uint32) {
	bytesPerWord := int(c.wordBits) / 8
	for j := bytesPerWord - 1; j >= 0; j-- {
		dst[j] = byte(x)
		dst[bytesPerWord+j] = byte(y)
		x >>= 8
		y >>= 8
	}
}

func (c *Cipher) storeLE(dst []byte, x, y uint32) {
	bytesPerWord := int(c.wordBits) / 8
	for j := 0; j < bytesPerWord; j++ {
		dst[j] = byte(y >> (8 * uint(j)))
		dst[bytesPerWord+j] = byte(x >> (8 * uint(j)))
	}
}

func (c *Cipher) maskLE(mask []byte) (x, y uint32) {
	bytesPerWord := int(c.wordBits) / 8
	for j := 0; j < bytesPerWord; j++ {
		y |= uint32(mask[j]) << (8 * uint(j))
		x |= uint32(mask[bytesPerWord+j]) << (8 * uint(j))
	}
	return x, y
}

// Encrypt implements ciphers.Cipher.
func (c *Cipher) Encrypt(dst, src []byte, fault *ciphers.Fault, trace *ciphers.Trace) {
	fault.Validate(c)
	x, y := c.loadBE(src)
	for r := 1; r <= c.rounds; r++ {
		if fault != nil && fault.Round == r {
			if fault.And != nil {
				ax, ay := c.maskLE(fault.And)
				x &= ax
				y &= ay
			}
			if fault.Mask != nil {
				fx, fy := c.maskLE(fault.Mask)
				x ^= fx
				y ^= fy
			}
		}
		if trace != nil {
			c.storeLE(trace.Inputs[r-1], x, y)
		}
		x, y = y^c.f(x)^c.roundKeys[r-1], x
		if trace != nil {
			c.storeLE(trace.PostSub[r-1], x, y)
		}
	}
	c.storeBE(dst, x, y)
	if trace != nil {
		c.storeLE(trace.Ciphertext, x, y)
	}
}

// Decrypt inverts Encrypt.
func (c *Cipher) Decrypt(dst, src []byte) {
	x, y := c.loadBE(src)
	for r := c.rounds; r >= 1; r-- {
		x, y = y, x^c.f(y)^c.roundKeys[r-1]
	}
	c.storeBE(dst, x, y)
}

func init() {
	ciphers.Register(ciphers.Info{
		Name:       "simon64",
		BlockBytes: 8,
		KeyBytes:   16,
		Rounds:     44,
		GroupBits:  8,
		New: func(key []byte) (ciphers.Cipher, error) {
			return New(Simon64_128, key)
		},
	})
	ciphers.Register(ciphers.Info{
		Name:       "simon32",
		BlockBytes: 4,
		KeyBytes:   8,
		Rounds:     32,
		GroupBits:  8,
		New: func(key []byte) (ciphers.Cipher, error) {
			return New(Simon32_64, key)
		},
	})
}
