// The batched SIMON fork kernel: a lane-packed bitsliced implementation
// with shared-prefix forking, 64 traces per uint64 lane.
//
// SIMON's round function is pure AND/XOR/rotate, which bitslices with no
// table or carry logic at all: a rotation of the x word is a lane index
// remap (free at codegen time), the AND and XORs act lane-wise, and the
// round-key XOR complements the lanes selected by the key's set bits.
// One round of 64 traces therefore costs ~4 word ops per state bit. The
// fault injection point matches Encrypt: masks apply at the top of the
// faulted round, before the round function. Blocks smaller than eight
// traces take a per-trace path reusing the scalar round function with
// prefix sharing; both paths are bit-identical to Encrypt.
package simon

import (
	"encoding/binary"

	"repro/internal/bitvec"
	"repro/internal/ciphers"
)

// laneBlock is the number of traces packed per bitsliced block.
const laneBlock = 64

// bitsliceMin is the smallest block worth transposing into lanes.
const bitsliceMin = 8

// kernel implements ciphers.FaultKernel for both SIMON variants. The 2n
// state bits map to lanes in repository order: lane i holds y bit i for
// i < n and x bit i-n otherwise.
type kernel struct {
	c     *Cipher
	n     int // word bits
	nbits int // state bits (2n)
	// lanes/tmp/snap are the bitsliced state, the round double buffer,
	// and the fork snapshot.
	lanes, tmp, snap []uint64
	// rows is the transpose scratch: one packed state word per trace.
	rows [laneBlock]uint64
}

// NewBatchKernel implements ciphers.BatchEncrypter.
func (c *Cipher) NewBatchKernel() ciphers.BatchKernel {
	n := int(c.wordBits)
	return &kernel{
		c:     c,
		n:     n,
		nbits: 2 * n,
		lanes: make([]uint64, 2*n),
		tmp:   make([]uint64, 2*n),
		snap:  make([]uint64, 2*n),
	}
}

// pack places the (x, y) word pair into a single uint64 in repository bit
// order: y in bits [0, n), x in bits [n, 2n).
func (k *kernel) pack(x, y uint32) uint64 {
	return uint64(y) | uint64(x)<<uint(k.n)
}

// unpack splits a packed state word back into (x, y).
func (k *kernel) unpack(w uint64) (x, y uint32) {
	m := k.c.mask()
	return uint32(w>>uint(k.n)) & m, uint32(w) & m
}

// roundLanes applies one SIMON round across all lanes: the rotations of x
// become lane index remaps, the Feistel swap lands old x in the new y
// lanes, and the round key complements the selected new-x lanes. The
// rotation remaps i-1, i-2 and i-8 (mod n) wrap only below i = 8, so the
// loop splits at that boundary into wrap-free runs the compiler can
// bounds-check-eliminate, and the key complement is a branchless XOR with
// an all-ones lane derived from the key bit.
func (k *kernel) roundLanes(rk uint32) {
	n := k.n
	y := k.lanes[:n:n]
	x := k.lanes[n : 2*n : 2*n]
	ty := k.tmp[:n:n]
	tx := k.tmp[n : 2*n : 2*n]
	// f(x) bit i = (rotl(x,1) & rotl(x,8) ^ rotl(x,2)) bit i
	//            = (x[i-1] & x[i-8] ^ x[i-2]) with indices mod n.
	tx[0] = y[0] ^ x[n-1]&x[n-8] ^ x[n-2] ^ (^(uint64(rk&1) - 1))
	tx[1] = y[1] ^ x[0]&x[n-7] ^ x[n-1] ^ (^(uint64(rk>>1&1) - 1))
	for i := 2; i < 8; i++ {
		tx[i] = y[i] ^ x[i-1]&x[i+n-8] ^ x[i-2] ^ (^(uint64(rk>>uint(i)&1) - 1))
	}
	for i := 8; i < n; i++ {
		tx[i] = y[i] ^ x[i-1]&x[i-8] ^ x[i-2] ^ (^(uint64(rk>>uint(i)&1) - 1))
	}
	copy(ty, x)
	k.lanes, k.tmp = k.tmp, k.lanes
}

// loadRowsBE gathers the block's plaintexts as packed state words into
// k.rows, zero-padding past bn.
func (k *kernel) loadRowsBE(pts []byte, base, bn int) {
	bb := k.c.BlockBytes()
	for t := 0; t < bn; t++ {
		x, y := k.c.loadBE(pts[(base+t)*bb:])
		k.rows[t] = k.pack(x, y)
	}
	for t := bn; t < laneBlock; t++ {
		k.rows[t] = 0
	}
}

// loadRowsLE gathers each trace's little-endian (repository bit order)
// mask as packed state words into k.rows.
func (k *kernel) loadRowsLE(masks []byte, base, bn int) {
	bb := k.c.BlockBytes()
	for t := 0; t < bn; t++ {
		x, y := k.c.maskLE(masks[(base+t)*bb:])
		k.rows[t] = k.pack(x, y)
	}
	for t := bn; t < laneBlock; t++ {
		k.rows[t] = 0
	}
}

// rowsToLanes transposes k.rows into k.lanes (only the first nbits lanes
// carry state; the rest of the transpose output is padding).
func (k *kernel) rowsToLanes() {
	bitvec.Transpose64(&k.rows)
	copy(k.lanes, k.rows[:k.nbits])
}

// captureLanes transposes the current lanes back to per-trace packed
// words and writes each live trace's state into dst at
// stride*traceIndex+off, in trace (LE) or ciphertext (BE) byte order.
func (k *kernel) captureLanes(dst []byte, base, bn, stride, off int, bigEndian bool) {
	copy(k.rows[:k.nbits], k.lanes)
	for b := k.nbits; b < laneBlock; b++ {
		k.rows[b] = 0
	}
	bitvec.Transpose64(&k.rows)
	bb := k.nbits / 8
	for t := 0; t < bn; t++ {
		at := dst[(base+t)*stride+off:]
		switch {
		case bigEndian:
			x, y := k.unpack(k.rows[t])
			k.c.storeBE(at, x, y)
		case bb == 8:
			// The packed word already is the repository-order (LE) state:
			// state bit i = bit i%8 of byte i/8.
			binary.LittleEndian.PutUint64(at, k.rows[t])
		default:
			binary.LittleEndian.PutUint32(at, uint32(k.rows[t]))
		}
	}
}

// EncryptForks implements ciphers.BatchKernel.
func (k *kernel) EncryptForks(round int, points []ciphers.BatchPoint, n int, pts []byte, masks, states, cts [][]byte) {
	k.EncryptForksOps(round, points, n, pts, masks, nil, states, cts)
}

// EncryptForksOps implements ciphers.FaultKernel: the AND half of the
// injection pair is one extra AND per lane on the faulted branch.
func (k *kernel) EncryptForksOps(round int, points []ciphers.BatchPoint, n int, pts []byte, xors, ands, states, cts [][]byte) {
	ciphers.ValidateForksOps(k.c, round, points, n, pts, xors, ands, states, cts)
	for base := 0; base < n; {
		bn := n - base
		if bn > laneBlock {
			bn = laneBlock
		}
		if bn >= bitsliceMin {
			k.forkBlock(round, points, base, bn, pts, xors, ands, states, cts)
		} else {
			k.forkScalar(round, points, base, bn, pts, xors, ands, states, cts)
		}
		base += bn
	}
}

// forkBlock runs one bitsliced block of bn <= 64 traces.
func (k *kernel) forkBlock(round int, points []ciphers.BatchPoint, base, bn int, pts []byte, masks, ands, states, cts [][]byte) {
	c := k.c
	bb := c.BlockBytes()
	np := len(points)

	k.loadRowsBE(pts, base, bn)
	k.rowsToLanes()
	// Shared prefix: rounds before the injection point, computed once
	// (Encrypt injects at the top of the faulted round).
	for r := 1; r < round; r++ {
		k.roundLanes(c.roundKeys[r-1])
	}
	copy(k.snap, k.lanes)

	for f := range masks {
		if f > 0 {
			copy(k.lanes, k.snap)
		}
		if ands != nil && ands[f] != nil {
			k.loadRowsLE(ands[f], base, bn)
			bitvec.Transpose64(&k.rows)
			for b := 0; b < k.nbits; b++ {
				k.lanes[b] &= k.rows[b]
			}
		}
		if m := masks[f]; m != nil {
			k.loadRowsLE(m, base, bn)
			bitvec.Transpose64(&k.rows)
			for b := 0; b < k.nbits; b++ {
				k.lanes[b] ^= k.rows[b]
			}
		}
		st := states[f]
		for r := round; r <= c.rounds; r++ {
			if st != nil {
				for j, p := range points {
					if p.Round == r && !p.PostSub {
						k.captureLanes(st, base, bn, np*bb, j*bb, false)
					}
				}
			}
			k.roundLanes(c.roundKeys[r-1])
			if st != nil {
				for j, p := range points {
					if p.Round == r && p.PostSub {
						k.captureLanes(st, base, bn, np*bb, j*bb, false)
					}
				}
			}
		}
		if st != nil {
			for j, p := range points {
				if p.Round == 0 {
					k.captureLanes(st, base, bn, np*bb, j*bb, false)
				}
			}
		}
		if ct := cts[f]; ct != nil {
			k.captureLanes(ct, base, bn, bb, 0, true)
		}
	}
}

// forkScalar runs bn traces through the scalar round function with
// prefix sharing: the path for blocks too small to amortize the
// transposes. It performs the same state operations as Encrypt.
func (k *kernel) forkScalar(round int, points []ciphers.BatchPoint, base, bn int, pts []byte, masks, ands, states, cts [][]byte) {
	c := k.c
	bb := c.BlockBytes()
	np := len(points)
	for t := 0; t < bn; t++ {
		i := base + t
		sx, sy := c.loadBE(pts[i*bb:])
		for r := 1; r < round; r++ {
			sx, sy = sy^c.f(sx)^c.roundKeys[r-1], sx
		}
		for f := range masks {
			x, y := sx, sy
			if ands != nil && ands[f] != nil {
				ax, ay := c.maskLE(ands[f][i*bb:])
				x &= ax
				y &= ay
			}
			if m := masks[f]; m != nil {
				fx, fy := c.maskLE(m[i*bb:])
				x ^= fx
				y ^= fy
			}
			st := states[f]
			for r := round; r <= c.rounds; r++ {
				if st != nil {
					for j, p := range points {
						if p.Round == r && !p.PostSub {
							c.storeLE(st[(i*np+j)*bb:], x, y)
						}
					}
				}
				x, y = y^c.f(x)^c.roundKeys[r-1], x
				if st != nil {
					for j, p := range points {
						if p.Round == r && p.PostSub {
							c.storeLE(st[(i*np+j)*bb:], x, y)
						}
					}
				}
			}
			if st != nil {
				for j, p := range points {
					if p.Round == 0 {
						c.storeLE(st[(i*np+j)*bb:], x, y)
					}
				}
			}
			if ct := cts[f]; ct != nil {
				c.storeBE(ct[i*bb:], x, y)
			}
		}
	}
}
