package simon

import (
	"bytes"
	"encoding/hex"
	"testing"

	"repro/internal/ciphers"
	"repro/internal/prng"
)

func unhex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

// Official test vectors from the SIMON and SPECK specification.
func TestSimon64_128Vector(t *testing.T) {
	c, err := New64(unhex(t, "1b1a1918131211100b0a090803020100"))
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8)
	c.Encrypt(got, unhex(t, "656b696c20646e75"), nil, nil)
	if want := unhex(t, "44c8fc20b9dfa07a"); !bytes.Equal(got, want) {
		t.Errorf("ciphertext = %x, want %x", got, want)
	}
}

func TestSimon32_64Vector(t *testing.T) {
	c, err := New32(unhex(t, "1918111009080100"))
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4)
	c.Encrypt(got, unhex(t, "65656877"), nil, nil)
	if want := unhex(t, "c69be9bb"); !bytes.Equal(got, want) {
		t.Errorf("ciphertext = %x, want %x", got, want)
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	src := prng.New(41)
	for _, v := range []Variant{Simon64_128, Simon32_64} {
		keyLen := 16
		if v == Simon32_64 {
			keyLen = 8
		}
		key := make([]byte, keyLen)
		for trial := 0; trial < 50; trial++ {
			src.Fill(key)
			c, err := New(v, key)
			if err != nil {
				t.Fatal(err)
			}
			pt := make([]byte, c.BlockBytes())
			ct := make([]byte, c.BlockBytes())
			got := make([]byte, c.BlockBytes())
			src.Fill(pt)
			c.Encrypt(ct, pt, nil, nil)
			c.Decrypt(got, ct)
			if !bytes.Equal(got, pt) {
				t.Fatalf("%s: decrypt(encrypt(pt)) != pt", c.Name())
			}
		}
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	if _, err := New64(make([]byte, 8)); err == nil {
		t.Error("New64 accepted 8-byte key")
	}
	if _, err := New32(make([]byte, 16)); err == nil {
		t.Error("New32 accepted 16-byte key")
	}
	if _, err := New(Variant(7), make([]byte, 16)); err == nil {
		t.Error("New accepted unknown variant")
	}
}

func TestFaultTraceSemantics(t *testing.T) {
	c, _ := New64(unhex(t, "1b1a1918131211100b0a090803020100"))
	pt := unhex(t, "0123456789abcdef")
	cleanTr := ciphers.NewTrace(c)
	faultTr := ciphers.NewTrace(c)
	out := make([]byte, 8)
	c.Encrypt(out, pt, nil, cleanTr)

	mask := make([]byte, 8)
	mask[1] = 0x80 // bit 15 (word y)
	mask[5] = 0x01 // bit 40 (word x)
	c.Encrypt(out, pt, &ciphers.Fault{Round: 40, Mask: mask}, faultTr)
	for r := 1; r < 40; r++ {
		if !bytes.Equal(cleanTr.Inputs[r-1], faultTr.Inputs[r-1]) {
			t.Errorf("round %d input differs before injection", r)
		}
	}
	diff := make([]byte, 8)
	for i := range diff {
		diff[i] = cleanTr.Inputs[39][i] ^ faultTr.Inputs[39][i]
	}
	if !bytes.Equal(diff, mask) {
		t.Errorf("round-40 input differential = %x, want mask %x", diff, mask)
	}
}

func TestFeistelSlowDiffusion(t *testing.T) {
	// A fault in the right (y) word does not touch the left word until
	// the next swap: one round later the differential is confined to
	// the x word. This Feistel property distinguishes SIMON from the
	// SPN ciphers in this repository.
	c, _ := New64(make([]byte, 16))
	pt := unhex(t, "00112233aabbccdd")
	cleanTr := ciphers.NewTrace(c)
	faultTr := ciphers.NewTrace(c)
	out := make([]byte, 8)
	c.Encrypt(out, pt, nil, cleanTr)
	mask := make([]byte, 8)
	mask[0] = 0x01 // bit 0 = bit 0 of y
	c.Encrypt(out, pt, &ciphers.Fault{Round: 20, Mask: mask}, faultTr)
	// Round-21 input: y fault moved to x (swap), with no other change.
	diff := make([]byte, 8)
	for i := range diff {
		diff[i] = cleanTr.Inputs[20][i] ^ faultTr.Inputs[20][i]
	}
	for i := 0; i < 4; i++ {
		if diff[i] != 0 {
			t.Errorf("y word corrupted one round after a y-only fault: %x", diff)
			break
		}
	}
	if diff[4] != 0x01 || diff[5] != 0 || diff[6] != 0 || diff[7] != 0 {
		t.Errorf("x word differential = %x, want the swapped single bit", diff[4:])
	}
}

func TestAvalanche(t *testing.T) {
	src := prng.New(43)
	key := make([]byte, 16)
	src.Fill(key)
	c, _ := New64(key)
	pt := make([]byte, 8)
	ct0 := make([]byte, 8)
	ct1 := make([]byte, 8)
	total := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		src.Fill(pt)
		c.Encrypt(ct0, pt, nil, nil)
		pt[src.Intn(8)] ^= 1 << uint(src.Intn(8))
		c.Encrypt(ct1, pt, nil, nil)
		for j := 0; j < 8; j++ {
			b := ct0[j] ^ ct1[j]
			for b != 0 {
				total++
				b &= b - 1
			}
		}
	}
	avg := float64(total) / trials
	if avg < 64*0.4 || avg > 64*0.6 {
		t.Errorf("avalanche: avg %.1f flipped bits of 64", avg)
	}
}

func TestRegistryIntegration(t *testing.T) {
	c, err := ciphers.New("simon64", make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	if c.Rounds() != 44 || c.BlockBytes() != 8 {
		t.Error("simon64 registry metadata wrong")
	}
	c32, err := ciphers.New("simon32", make([]byte, 8))
	if err != nil {
		t.Fatal(err)
	}
	if c32.Rounds() != 32 || c32.BlockBytes() != 4 {
		t.Error("simon32 registry metadata wrong")
	}
}

func TestRoundKeyAccessor(t *testing.T) {
	c, _ := New64(unhex(t, "1b1a1918131211100b0a090803020100"))
	// k[0] is the last key word in spec byte order.
	if got := c.RoundKey(1); got != 0x03020100 {
		t.Errorf("round key 1 = %08x, want 03020100", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("RoundKey(0) did not panic")
		}
	}()
	c.RoundKey(0)
}

func BenchmarkEncryptSimon64(b *testing.B) {
	c, _ := New64(make([]byte, 16))
	pt := make([]byte, 8)
	ct := make([]byte, 8)
	b.SetBytes(8)
	for i := 0; i < b.N; i++ {
		c.Encrypt(ct, pt, nil, nil)
	}
}
