// The batched AES fork kernel: a T-table/32-bit-word round implementation
// with shared-prefix forking.
//
// The 16-byte state is held as four little-endian column words
// (word c packs state bytes 4c..4c+3), and each inner round fuses
// SubBytes, ShiftRows, MixColumns and AddRoundKey into four table lookups
// plus XORs per column — replacing the reference path's 32 loop-based
// GF(2^8) multiplications per round. Rounds observed by the campaign
// additionally materialize the byte-level round input and post-SubBytes
// state, exactly as the scalar Encrypt records them, so captured traces
// are bit-identical to the reference path.
package aes

import (
	"encoding/binary"
	"sync"

	"repro/internal/ciphers"
)

// te0..te3 are the four forward T-tables: te0[x] packs the MixColumns
// column (2·S(x), S(x), S(x), 3·S(x)) as a little-endian word and
// te1..te3 are its byte rotations. Built on first kernel use, after the
// package init has generated the S-box.
var (
	ttableOnce sync.Once
	te0        [256]uint32
	te1        [256]uint32
	te2        [256]uint32
	te3        [256]uint32
)

func buildTTables() {
	for x := 0; x < 256; x++ {
		s := sbox[x]
		s2 := mulGF(s, 2)
		s3 := mulGF(s, 3)
		w := uint32(s2) | uint32(s)<<8 | uint32(s)<<16 | uint32(s3)<<24
		te0[x] = w
		te1[x] = w<<8 | w>>24
		te2[x] = w<<16 | w>>16
		te3[x] = w<<24 | w>>8
	}
}

// loadWords packs 16 state bytes into four little-endian column words.
func loadWords(w *[4]uint32, b []byte) {
	w[0] = binary.LittleEndian.Uint32(b[0:])
	w[1] = binary.LittleEndian.Uint32(b[4:])
	w[2] = binary.LittleEndian.Uint32(b[8:])
	w[3] = binary.LittleEndian.Uint32(b[12:])
}

// storeWords is the inverse of loadWords.
func storeWords(b []byte, w *[4]uint32) {
	binary.LittleEndian.PutUint32(b[0:], w[0])
	binary.LittleEndian.PutUint32(b[4:], w[1])
	binary.LittleEndian.PutUint32(b[8:], w[2])
	binary.LittleEndian.PutUint32(b[12:], w[3])
}

// storeSubWords writes sbox applied bytewise to the word state: the
// post-SubBytes capture of a round whose input is s.
func storeSubWords(b []byte, w *[4]uint32) {
	for c := 0; c < 4; c++ {
		v := w[c]
		b[4*c] = sbox[byte(v)]
		b[4*c+1] = sbox[byte(v>>8)]
		b[4*c+2] = sbox[byte(v>>16)]
		b[4*c+3] = sbox[byte(v>>24)]
	}
}

// tRound runs one inner round (SubBytes+ShiftRows+MixColumns+AddRoundKey)
// on the word state. Row r of column c comes from column (c+r) mod 4
// after ShiftRows, which is byte r of word (c+r)&3.
func tRound(s *[4]uint32, rk *[4]uint32) {
	s0 := te0[byte(s[0])] ^ te1[byte(s[1]>>8)] ^ te2[byte(s[2]>>16)] ^ te3[byte(s[3]>>24)] ^ rk[0]
	s1 := te0[byte(s[1])] ^ te1[byte(s[2]>>8)] ^ te2[byte(s[3]>>16)] ^ te3[byte(s[0]>>24)] ^ rk[1]
	s2 := te0[byte(s[2])] ^ te1[byte(s[3]>>8)] ^ te2[byte(s[0]>>16)] ^ te3[byte(s[1]>>24)] ^ rk[2]
	s3 := te0[byte(s[3])] ^ te1[byte(s[0]>>8)] ^ te2[byte(s[1]>>16)] ^ te3[byte(s[2]>>24)] ^ rk[3]
	s[0], s[1], s[2], s[3] = s0, s1, s2, s3
}

// lastRound runs round 10 (no MixColumns) on the word state.
func lastRound(s *[4]uint32, rk *[4]uint32) {
	s0 := uint32(sbox[byte(s[0])]) | uint32(sbox[byte(s[1]>>8)])<<8 | uint32(sbox[byte(s[2]>>16)])<<16 | uint32(sbox[byte(s[3]>>24)])<<24 ^ rk[0]
	s1 := uint32(sbox[byte(s[1])]) | uint32(sbox[byte(s[2]>>8)])<<8 | uint32(sbox[byte(s[3]>>16)])<<16 | uint32(sbox[byte(s[0]>>24)])<<24 ^ rk[1]
	s2 := uint32(sbox[byte(s[2])]) | uint32(sbox[byte(s[3]>>8)])<<8 | uint32(sbox[byte(s[0]>>16)])<<16 | uint32(sbox[byte(s[1]>>24)])<<24 ^ rk[2]
	s3 := uint32(sbox[byte(s[3])]) | uint32(sbox[byte(s[0]>>8)])<<8 | uint32(sbox[byte(s[1]>>16)])<<16 | uint32(sbox[byte(s[2]>>24)])<<24 ^ rk[3]
	s[0], s[1], s[2], s[3] = s0, s1, s2, s3
}

// advance runs round r on the word state.
func advance(s *[4]uint32, rk *[4]uint32, r int) {
	if r == NumRounds {
		lastRound(s, rk)
	} else {
		tRound(s, rk)
	}
}

// batchKernel implements ciphers.BatchKernel. AES processes traces
// independently (the kernel's speed comes from the word rounds and the
// prefix sharing, not cross-trace packing), so it carries no scratch
// state beyond the cipher's word round keys.
type batchKernel struct {
	c *Cipher
}

// NewBatchKernel implements ciphers.BatchEncrypter.
func (c *Cipher) NewBatchKernel() ciphers.BatchKernel {
	ttableOnce.Do(buildTTables)
	return &batchKernel{c: c}
}

// EncryptForks implements ciphers.BatchKernel.
func (k *batchKernel) EncryptForks(round int, points []ciphers.BatchPoint, n int, pts []byte, masks, states, cts [][]byte) {
	k.EncryptForksOps(round, points, n, pts, masks, nil, states, cts)
}

// EncryptForksOps implements ciphers.FaultKernel: the AND half of the
// injection pair costs four extra word ANDs per faulted branch, applied to
// the fork snapshot before the XOR half.
func (k *batchKernel) EncryptForksOps(round int, points []ciphers.BatchPoint, n int, pts []byte, xors, ands, states, cts [][]byte) {
	ciphers.ValidateForksOps(k.c, round, points, n, pts, xors, ands, states, cts)
	masks := xors
	np := len(points)
	rk := &k.c.rkWords
	for i := 0; i < n; i++ {
		var snap [4]uint32
		loadWords(&snap, pts[i*BlockBytes:])
		snap[0] ^= rk[0][0]
		snap[1] ^= rk[0][1]
		snap[2] ^= rk[0][2]
		snap[3] ^= rk[0][3]
		for r := 1; r < round; r++ {
			advance(&snap, &rk[r], r)
		}
		for f := range masks {
			s := snap
			if ands != nil && ands[f] != nil {
				var aw [4]uint32
				loadWords(&aw, ands[f][i*BlockBytes:])
				s[0] &= aw[0]
				s[1] &= aw[1]
				s[2] &= aw[2]
				s[3] &= aw[3]
			}
			if m := masks[f]; m != nil {
				var mw [4]uint32
				loadWords(&mw, m[i*BlockBytes:])
				s[0] ^= mw[0]
				s[1] ^= mw[1]
				s[2] ^= mw[2]
				s[3] ^= mw[3]
			}
			st := states[f]
			base := i * np * BlockBytes
			for r := round; r <= NumRounds; r++ {
				if st != nil {
					for j, p := range points {
						if p.Round != r {
							continue
						}
						if p.PostSub {
							storeSubWords(st[base+j*BlockBytes:], &s)
						} else {
							storeWords(st[base+j*BlockBytes:], &s)
						}
					}
				}
				advance(&s, &rk[r], r)
			}
			if st != nil {
				for j, p := range points {
					if p.Round == 0 {
						storeWords(st[base+j*BlockBytes:], &s)
					}
				}
			}
			if ct := cts[f]; ct != nil {
				storeWords(ct[i*BlockBytes:], &s)
			}
		}
	}
}
