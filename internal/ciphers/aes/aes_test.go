package aes

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"

	"repro/internal/ciphers"
	"repro/internal/prng"
)

func unhex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

func TestSBoxKnownValues(t *testing.T) {
	// Spot checks against FIPS-197 Figure 7.
	cases := map[byte]byte{
		0x00: 0x63, 0x01: 0x7c, 0x53: 0xed, 0x10: 0xca,
		0xff: 0x16, 0x9a: 0xb8, 0xc0: 0xba, 0x30: 0x04,
	}
	for in, want := range cases {
		if got := SBox(in); got != want {
			t.Errorf("SBox(%#02x) = %#02x, want %#02x", in, got, want)
		}
	}
}

func TestSBoxInverse(t *testing.T) {
	seen := map[byte]bool{}
	for i := 0; i < 256; i++ {
		s := SBox(byte(i))
		if seen[s] {
			t.Fatalf("S-box not a bijection: duplicate output %#02x", s)
		}
		seen[s] = true
		if InvSBox(s) != byte(i) {
			t.Fatalf("InvSBox(SBox(%#02x)) = %#02x", i, InvSBox(s))
		}
	}
}

func TestMulGF(t *testing.T) {
	// FIPS-197 §4.2 example: {57} · {83} = {c1}.
	if got := MulGF(0x57, 0x83); got != 0xc1 {
		t.Errorf("MulGF(0x57,0x83) = %#02x, want 0xc1", got)
	}
	// Multiplication by 1 is identity; by 0 is zero.
	for i := 0; i < 256; i++ {
		if MulGF(byte(i), 1) != byte(i) || MulGF(byte(i), 0) != 0 {
			t.Fatalf("MulGF identity/zero failed at %d", i)
		}
	}
}

func TestMulGFProperties(t *testing.T) {
	f := func(a, b, c byte) bool {
		// Commutativity and distributivity over XOR.
		return MulGF(a, b) == MulGF(b, a) &&
			MulGF(a, b^c) == MulGF(a, b)^MulGF(a, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFIPS197AppendixB(t *testing.T) {
	key := unhex(t, "2b7e151628aed2a6abf7158809cf4f3c")
	pt := unhex(t, "3243f6a8885a308d313198a2e0370734")
	want := unhex(t, "3925841d02dc09fbdc118597196a0b32")
	c, err := New(key)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16)
	c.Encrypt(got, pt, nil, nil)
	if !bytes.Equal(got, want) {
		t.Errorf("ciphertext = %x, want %x", got, want)
	}
}

func TestFIPS197AppendixC1(t *testing.T) {
	key := unhex(t, "000102030405060708090a0b0c0d0e0f")
	pt := unhex(t, "00112233445566778899aabbccddeeff")
	want := unhex(t, "69c4e0d86a7b0430d8cdb78070b4c55a")
	c, err := New(key)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16)
	c.Encrypt(got, pt, nil, nil)
	if !bytes.Equal(got, want) {
		t.Errorf("ciphertext = %x, want %x", got, want)
	}
}

func TestKeyExpansionFirstAndLast(t *testing.T) {
	// FIPS-197 Appendix A.1 key expansion for 2b7e...4f3c.
	key := unhex(t, "2b7e151628aed2a6abf7158809cf4f3c")
	c, err := New(key)
	if err != nil {
		t.Fatal(err)
	}
	k0 := c.RoundKey(0)
	if !bytes.Equal(k0[:], key) {
		t.Errorf("round key 0 = %x, want original key", k0)
	}
	k10 := c.RoundKey(10)
	want := unhex(t, "d014f9a8c9ee2589e13f0cc8b6630ca6")
	if !bytes.Equal(k10[:], want) {
		t.Errorf("round key 10 = %x, want %x", k10, want)
	}
}

func TestNewRejectsBadKeyLength(t *testing.T) {
	for _, n := range []int{0, 15, 17, 24, 32} {
		if _, err := New(make([]byte, n)); err == nil {
			t.Errorf("New accepted %d-byte key", n)
		}
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	src := prng.New(31)
	key := make([]byte, 16)
	pt := make([]byte, 16)
	got := make([]byte, 16)
	ct := make([]byte, 16)
	for trial := 0; trial < 50; trial++ {
		src.Fill(key)
		src.Fill(pt)
		c, err := New(key)
		if err != nil {
			t.Fatal(err)
		}
		c.Encrypt(ct, pt, nil, nil)
		c.Decrypt(got, ct)
		if !bytes.Equal(got, pt) {
			t.Fatalf("decrypt(encrypt(pt)) != pt for key %x", key)
		}
	}
}

func TestTraceConsistency(t *testing.T) {
	key := unhex(t, "000102030405060708090a0b0c0d0e0f")
	pt := unhex(t, "00112233445566778899aabbccddeeff")
	c, _ := New(key)
	trace := ciphers.NewTrace(c)
	ct := make([]byte, 16)
	c.Encrypt(ct, pt, nil, trace)

	if !bytes.Equal(trace.Ciphertext, ct) {
		t.Error("trace ciphertext differs from output")
	}
	// Round-1 input is plaintext XOR whitening key (FIPS-197 C.1
	// round[1].istart = 00102030405060708090a0b0c0d0e0f0).
	want := unhex(t, "00102030405060708090a0b0c0d0e0f0")
	if !bytes.Equal(trace.Inputs[0], want) {
		t.Errorf("round 1 input = %x, want %x", trace.Inputs[0], want)
	}
	// Round-2 input from the same appendix: round[2].istart.
	want2 := unhex(t, "89d810e8855ace682d1843d8cb128fe4")
	if !bytes.Equal(trace.Inputs[1], want2) {
		t.Errorf("round 2 input = %x, want %x", trace.Inputs[1], want2)
	}
	// PostSub of round 1 = SubBytes(round-1 input): round[1].s_box.
	wantSub := unhex(t, "63cab7040953d051cd60e0e7ba70e18c")
	if !bytes.Equal(trace.PostSub[0], wantSub) {
		t.Errorf("round 1 post-sub = %x, want %x", trace.PostSub[0], wantSub)
	}
}

func TestFaultInjectionChangesCiphertext(t *testing.T) {
	key := unhex(t, "2b7e151628aed2a6abf7158809cf4f3c")
	pt := unhex(t, "3243f6a8885a308d313198a2e0370734")
	c, _ := New(key)
	clean := make([]byte, 16)
	c.Encrypt(clean, pt, nil, nil)

	mask := make([]byte, 16)
	mask[2] = 0xff
	faulty := make([]byte, 16)
	for r := 1; r <= NumRounds; r++ {
		c.Encrypt(faulty, pt, &ciphers.Fault{Round: r, Mask: mask}, nil)
		if bytes.Equal(faulty, clean) {
			t.Errorf("round-%d fault did not change ciphertext", r)
		}
	}
}

func TestFaultVisibleInTrace(t *testing.T) {
	key := unhex(t, "2b7e151628aed2a6abf7158809cf4f3c")
	pt := unhex(t, "3243f6a8885a308d313198a2e0370734")
	c, _ := New(key)
	cleanTr := ciphers.NewTrace(c)
	faultTr := ciphers.NewTrace(c)
	out := make([]byte, 16)
	c.Encrypt(out, pt, nil, cleanTr)

	mask := make([]byte, 16)
	mask[5] = 0x01
	c.Encrypt(out, pt, &ciphers.Fault{Round: 8, Mask: mask}, faultTr)

	// Rounds before the fault are identical; the fault-round input
	// differs by exactly the mask.
	for r := 1; r < 8; r++ {
		if !bytes.Equal(cleanTr.Inputs[r-1], faultTr.Inputs[r-1]) {
			t.Errorf("round %d input differs before injection", r)
		}
	}
	diff := make([]byte, 16)
	for i := range diff {
		diff[i] = cleanTr.Inputs[7][i] ^ faultTr.Inputs[7][i]
	}
	if !bytes.Equal(diff, mask) {
		t.Errorf("round-8 input differential = %x, want mask %x", diff, mask)
	}
}

func TestSingleByteFaultDiffusion(t *testing.T) {
	// A byte fault at round 8 must corrupt exactly one column at the
	// round-9 input and the full state at the round-10 input (Fig. 1).
	key := unhex(t, "000102030405060708090a0b0c0d0e0f")
	pt := unhex(t, "00112233445566778899aabbccddeeff")
	c, _ := New(key)
	cleanTr := ciphers.NewTrace(c)
	faultTr := ciphers.NewTrace(c)
	out := make([]byte, 16)
	c.Encrypt(out, pt, nil, cleanTr)

	mask := make([]byte, 16)
	mask[0] = 0x2a // fault byte 0 (diagonal 0)
	c.Encrypt(out, pt, &ciphers.Fault{Round: 8, Mask: mask}, faultTr)

	faultyBytes9 := 0
	for i := 0; i < 16; i++ {
		if cleanTr.Inputs[8][i] != faultTr.Inputs[8][i] {
			faultyBytes9++
			// Byte 0 is on diagonal 0; ShiftRows sends diagonal 0 to
			// column 0, so corruption lives in bytes 0..3.
			if i >= 4 {
				t.Errorf("round-9 corruption outside column 0 at byte %d", i)
			}
		}
	}
	if faultyBytes9 != 4 {
		t.Errorf("round-9 input has %d faulty bytes, want 4", faultyBytes9)
	}
	faultyBytes10 := 0
	for i := 0; i < 16; i++ {
		if cleanTr.Inputs[9][i] != faultTr.Inputs[9][i] {
			faultyBytes10++
		}
	}
	if faultyBytes10 != 16 {
		t.Errorf("round-10 input has %d faulty bytes, want 16", faultyBytes10)
	}
}

func TestDiagonalDefinitions(t *testing.T) {
	want := map[int][4]int{
		0: {0, 5, 10, 15},
		1: {1, 6, 11, 12},
		2: {2, 7, 8, 13},
		3: {3, 4, 9, 14},
	}
	for d, w := range want {
		if got := Diagonal(d); got != w {
			t.Errorf("Diagonal(%d) = %v, want %v", d, got, w)
		}
		for _, b := range w {
			if DiagonalOf(b) != d {
				t.Errorf("DiagonalOf(%d) = %d, want %d", b, DiagonalOf(b), d)
			}
		}
	}
}

func TestDiagonalMapsToColumnUnderShiftRows(t *testing.T) {
	for d := 0; d < 4; d++ {
		cols := map[int]bool{}
		for _, b := range Diagonal(d) {
			cols[ShiftRowsIndex(b)/4] = true
		}
		if len(cols) != 1 {
			t.Errorf("diagonal %d maps to %d columns under ShiftRows, want 1", d, len(cols))
		}
	}
}

func TestShiftRowsIndexMatchesImplementation(t *testing.T) {
	var s [16]byte
	for i := range s {
		s[i] = byte(i)
	}
	shiftRows(&s)
	for i := 0; i < 16; i++ {
		if s[ShiftRowsIndex(i)] != byte(i) {
			t.Errorf("byte %d: ShiftRowsIndex says %d, state disagrees", i, ShiftRowsIndex(i))
		}
	}
}

func TestMixColumnsInverse(t *testing.T) {
	f := func(in [16]byte) bool {
		s := in
		mixColumns(&s)
		invMixColumns(&s)
		return s == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegistryIntegration(t *testing.T) {
	c, err := ciphers.New("aes128", make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "aes128" || c.BlockBytes() != 16 || c.Rounds() != 10 || c.GroupBits() != 8 {
		t.Errorf("registry metadata wrong: %s %d %d %d", c.Name(), c.BlockBytes(), c.Rounds(), c.GroupBits())
	}
}

func BenchmarkEncrypt(b *testing.B) {
	c, _ := New(make([]byte, 16))
	pt := make([]byte, 16)
	ct := make([]byte, 16)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		c.Encrypt(ct, pt, nil, nil)
	}
}

func BenchmarkEncryptWithTrace(b *testing.B) {
	c, _ := New(make([]byte, 16))
	pt := make([]byte, 16)
	ct := make([]byte, 16)
	tr := ciphers.NewTrace(c)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		c.Encrypt(ct, pt, nil, tr)
	}
}
