// Package aes implements AES-128 (FIPS-197) at trace level: every round
// input and post-SubBytes state can be captured, and XOR faults can be
// injected at any round input. crypto/aes cannot serve here because fault
// attacks need access to the iterative structure.
//
// # State layout
//
// The 16-byte state uses the standard flat AES indexing: byte i holds the
// element at row i%4, column i/4, and plaintext/ciphertext bytes map to
// state bytes in order (FIPS-197 §3.4). State bit b (0..127) is bit b%8 of
// state byte b/8, matching the repository-wide convention.
//
// # Diagonals
//
// Diagonal d (d = 0..3) is the byte set {i : (i%4 - i/4) mod 4 == d}; e.g.
// diagonal 2 is {2, 7, 8, 13}, the fault model of Saha et al. that the RL
// agent converges to in §IV-B of the paper. ShiftRows maps a diagonal into
// a single column, which is what makes diagonal faults exploitable.
package aes

import (
	"fmt"

	"repro/internal/ciphers"
)

// NumRounds is the AES-128 round count.
const NumRounds = 10

// BlockBytes is the AES block size in bytes.
const BlockBytes = 16

// KeyBytes is the AES-128 key size in bytes.
const KeyBytes = 16

// sbox and invSbox are generated in init from the GF(2^8) inverse and the
// FIPS-197 affine transform, then spot-checked by the test suite against
// published values. Generating them avoids 512 hand-transcribed constants.
var (
	sbox    [256]byte
	invSbox [256]byte
)

// mulGF multiplies two elements of GF(2^8) modulo x^8+x^4+x^3+x+1.
func mulGF(a, b byte) byte {
	var p byte
	for b != 0 {
		if b&1 != 0 {
			p ^= a
		}
		hi := a & 0x80
		a <<= 1
		if hi != 0 {
			a ^= 0x1b
		}
		b >>= 1
	}
	return p
}

func init() {
	// Build the multiplicative inverse table via the 3-generator trick:
	// 3 is a generator of GF(2^8)*, so exp/log tables give inverses.
	var exp [256]byte
	var log [256]byte
	x := byte(1)
	for i := 0; i < 255; i++ {
		exp[i] = x
		log[x] = byte(i)
		x = mulGF(x, 3)
	}
	inv := func(a byte) byte {
		if a == 0 {
			return 0
		}
		return exp[(255-int(log[a]))%255]
	}
	for i := 0; i < 256; i++ {
		v := inv(byte(i))
		// Affine transform: b ^ rot1 ^ rot2 ^ rot3 ^ rot4 ^ 0x63.
		s := v ^ rotl8(v, 1) ^ rotl8(v, 2) ^ rotl8(v, 3) ^ rotl8(v, 4) ^ 0x63
		sbox[i] = s
		invSbox[s] = byte(i)
	}
}

func rotl8(v byte, k uint) byte { return v<<k | v>>(8-k) }

// SBox returns the forward S-box value (exported for the DFA analyzer).
func SBox(b byte) byte { return sbox[b] }

// InvSBox returns the inverse S-box value.
func InvSBox(b byte) byte { return invSbox[b] }

// MulGF exposes GF(2^8) multiplication (used by the DFA analyzer to check
// MixColumns difference patterns).
func MulGF(a, b byte) byte { return mulGF(a, b) }

// Cipher is an AES-128 instance with an expanded key schedule. rkWords
// holds the round keys as little-endian column words for the T-table
// batch kernel (see batch.go).
type Cipher struct {
	roundKeys [NumRounds + 1][16]byte
	rkWords   [NumRounds + 1][4]uint32
}

// New expands an AES-128 key. The key must be exactly 16 bytes.
func New(key []byte) (*Cipher, error) {
	if len(key) != KeyBytes {
		return nil, fmt.Errorf("aes: key must be %d bytes, got %d", KeyBytes, len(key))
	}
	c := new(Cipher)
	c.expandKey(key)
	return c, nil
}

// expandKey computes the 11 round keys of FIPS-197 §5.2.
func (c *Cipher) expandKey(key []byte) {
	var w [44][4]byte
	for i := 0; i < 4; i++ {
		copy(w[i][:], key[4*i:4*i+4])
	}
	rcon := byte(1)
	for i := 4; i < 44; i++ {
		t := w[i-1]
		if i%4 == 0 {
			// RotWord + SubWord + Rcon.
			t = [4]byte{sbox[t[1]], sbox[t[2]], sbox[t[3]], sbox[t[0]]}
			t[0] ^= rcon
			rcon = mulGF(rcon, 2)
		}
		for j := 0; j < 4; j++ {
			w[i][j] = w[i-4][j] ^ t[j]
		}
	}
	for r := 0; r <= NumRounds; r++ {
		for i := 0; i < 4; i++ {
			copy(c.roundKeys[r][4*i:4*i+4], w[4*r+i][:])
		}
		loadWords(&c.rkWords[r], c.roundKeys[r][:])
	}
}

// RoundKey returns round key r (0 = whitening key, 10 = final key).
func (c *Cipher) RoundKey(r int) [16]byte {
	if r < 0 || r > NumRounds {
		panic("aes: round key index out of range")
	}
	return c.roundKeys[r]
}

// Name implements ciphers.Cipher.
func (c *Cipher) Name() string { return "aes128" }

// BlockBytes implements ciphers.Cipher.
func (c *Cipher) BlockBytes() int { return BlockBytes }

// Rounds implements ciphers.Cipher.
func (c *Cipher) Rounds() int { return NumRounds }

// GroupBits implements ciphers.Cipher: AES substitutes bytes.
func (c *Cipher) GroupBits() int { return 8 }

// shiftRows applies ShiftRows in place: row r rotates left by r.
func shiftRows(s *[16]byte) {
	s[1], s[5], s[9], s[13] = s[5], s[9], s[13], s[1]
	s[2], s[6], s[10], s[14] = s[10], s[14], s[2], s[6]
	s[3], s[7], s[11], s[15] = s[15], s[3], s[7], s[11]
}

// invShiftRows applies the inverse of shiftRows in place.
func invShiftRows(s *[16]byte) {
	s[5], s[9], s[13], s[1] = s[1], s[5], s[9], s[13]
	s[10], s[14], s[2], s[6] = s[2], s[6], s[10], s[14]
	s[15], s[3], s[7], s[11] = s[3], s[7], s[11], s[15]
}

// mixColumns applies MixColumns in place.
func mixColumns(s *[16]byte) {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := s[4*c], s[4*c+1], s[4*c+2], s[4*c+3]
		s[4*c] = mulGF(a0, 2) ^ mulGF(a1, 3) ^ a2 ^ a3
		s[4*c+1] = a0 ^ mulGF(a1, 2) ^ mulGF(a2, 3) ^ a3
		s[4*c+2] = a0 ^ a1 ^ mulGF(a2, 2) ^ mulGF(a3, 3)
		s[4*c+3] = mulGF(a0, 3) ^ a1 ^ a2 ^ mulGF(a3, 2)
	}
}

// invMixColumns applies the inverse of mixColumns in place.
func invMixColumns(s *[16]byte) {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := s[4*c], s[4*c+1], s[4*c+2], s[4*c+3]
		s[4*c] = mulGF(a0, 0x0e) ^ mulGF(a1, 0x0b) ^ mulGF(a2, 0x0d) ^ mulGF(a3, 0x09)
		s[4*c+1] = mulGF(a0, 0x09) ^ mulGF(a1, 0x0e) ^ mulGF(a2, 0x0b) ^ mulGF(a3, 0x0d)
		s[4*c+2] = mulGF(a0, 0x0d) ^ mulGF(a1, 0x09) ^ mulGF(a2, 0x0e) ^ mulGF(a3, 0x0b)
		s[4*c+3] = mulGF(a0, 0x0b) ^ mulGF(a1, 0x0d) ^ mulGF(a2, 0x09) ^ mulGF(a3, 0x0e)
	}
}

func addRoundKey(s *[16]byte, k *[16]byte) {
	for i := range s {
		s[i] ^= k[i]
	}
}

// Encrypt implements ciphers.Cipher. The input of round r is the state
// after the whitening key (r = 1) or after round r-1's AddRoundKey.
func (c *Cipher) Encrypt(dst, src []byte, fault *ciphers.Fault, trace *ciphers.Trace) {
	fault.Validate(c)
	var s [16]byte
	copy(s[:], src)
	addRoundKey(&s, &c.roundKeys[0])
	for r := 1; r <= NumRounds; r++ {
		if fault != nil && fault.Round == r {
			if fault.And != nil {
				for i := range s {
					s[i] &= fault.And[i]
				}
			}
			if fault.Mask != nil {
				for i := range s {
					s[i] ^= fault.Mask[i]
				}
			}
		}
		if trace != nil {
			copy(trace.Inputs[r-1], s[:])
		}
		for i := range s {
			s[i] = sbox[s[i]]
		}
		if trace != nil {
			copy(trace.PostSub[r-1], s[:])
		}
		shiftRows(&s)
		if r < NumRounds {
			mixColumns(&s)
		}
		addRoundKey(&s, &c.roundKeys[r])
	}
	copy(dst, s[:])
	if trace != nil {
		copy(trace.Ciphertext, s[:])
	}
}

// Decrypt inverts Encrypt (no fault or trace support; used for testing and
// for key-recovery verification).
func (c *Cipher) Decrypt(dst, src []byte) {
	var s [16]byte
	copy(s[:], src)
	addRoundKey(&s, &c.roundKeys[NumRounds])
	invShiftRows(&s)
	for i := range s {
		s[i] = invSbox[s[i]]
	}
	for r := NumRounds - 1; r >= 1; r-- {
		addRoundKey(&s, &c.roundKeys[r])
		invMixColumns(&s)
		invShiftRows(&s)
		for i := range s {
			s[i] = invSbox[s[i]]
		}
	}
	addRoundKey(&s, &c.roundKeys[0])
	copy(dst, s[:])
}

// Diagonal returns the state byte indices of diagonal d (0..3):
// {i : (i%4 - i/4) mod 4 == d}. Diagonal 2 is the paper's {2, 7, 8, 13}.
func Diagonal(d int) [4]int {
	if d < 0 || d > 3 {
		panic("aes: diagonal index out of range")
	}
	var out [4]int
	k := 0
	for i := 0; i < 16; i++ {
		if ((i%4-i/4)%4+4)%4 == d {
			out[k] = i
			k++
		}
	}
	return out
}

// Column returns the state byte indices of column c (0..3).
func Column(c int) [4]int {
	if c < 0 || c > 3 {
		panic("aes: column index out of range")
	}
	return [4]int{4 * c, 4*c + 1, 4*c + 2, 4*c + 3}
}

// DiagonalOf returns which diagonal state byte i lies on.
func DiagonalOf(i int) int {
	if i < 0 || i > 15 {
		panic("aes: byte index out of range")
	}
	return ((i%4-i/4)%4 + 4) % 4
}

// ShiftRowsIndex returns the state index that byte i moves to under
// ShiftRows (exported for the DFA analyzer's ciphertext-position mapping).
func ShiftRowsIndex(i int) int {
	row, col := i%4, i/4
	newCol := ((col-row)%4 + 4) % 4
	return 4*newCol + row
}

func init() {
	ciphers.Register(ciphers.Info{
		Name:       "aes128",
		BlockBytes: BlockBytes,
		KeyBytes:   KeyBytes,
		Rounds:     NumRounds,
		GroupBits:  8,
		New: func(key []byte) (ciphers.Cipher, error) {
			return New(key)
		},
	})
}
