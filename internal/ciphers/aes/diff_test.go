package aes

import (
	"bytes"
	stdaes "crypto/aes"
	"math/rand"
	"testing"
)

// TestDifferentialAgainstStdlib cross-checks the trace-level AES against
// crypto/aes on random keys and plaintexts. The from-scratch
// implementation exists to expose round states; this pins its end-to-end
// permutation (and its inverse) to the independent stdlib implementation.
func TestDifferentialAgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(0x1234))
	key := make([]byte, 16)
	pt := make([]byte, 16)
	got := make([]byte, 16)
	want := make([]byte, 16)
	rt := make([]byte, 16)
	for i := 0; i < 256; i++ {
		rng.Read(key)
		rng.Read(pt)

		c, err := New(key)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := stdaes.NewCipher(key)
		if err != nil {
			t.Fatal(err)
		}

		c.Encrypt(got, pt, nil, nil)
		ref.Encrypt(want, pt)
		if !bytes.Equal(got, want) {
			t.Fatalf("iter %d: Encrypt(key %x, pt %x) = %x, crypto/aes says %x",
				i, key, pt, got, want)
		}

		c.Decrypt(rt, got)
		if !bytes.Equal(rt, pt) {
			t.Fatalf("iter %d: Decrypt round trip = %x, want %x", i, rt, pt)
		}
	}
}
