package aes

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/ciphers"
	"repro/internal/prng"
)

// TestTTablesMatchReference checks every T-table entry against the
// defining MixColumns column of the S-box output.
func TestTTablesMatchReference(t *testing.T) {
	ttableOnce.Do(buildTTables)
	for x := 0; x < 256; x++ {
		s := sbox[x]
		want0 := uint32(mulGF(s, 2)) | uint32(s)<<8 | uint32(s)<<16 | uint32(mulGF(s, 3))<<24
		if te0[x] != want0 {
			t.Fatalf("te0[%#02x] = %#08x, want %#08x", x, te0[x], want0)
		}
		if te1[x] != want0<<8|want0>>24 || te2[x] != want0<<16|want0>>16 || te3[x] != want0<<24|want0>>8 {
			t.Fatalf("te1..te3[%#02x] are not byte rotations of te0", x)
		}
	}
}

// TestBatchKernelMatchesScalar cross-checks the T-table fork kernel
// against the scalar reference path (ScalarForks): ciphertexts and every
// captured point state must be bit-identical for clean and faulted
// branches alike.
func TestBatchKernelMatchesScalar(t *testing.T) {
	rng := prng.New(7)
	key := make([]byte, KeyBytes)
	rng.Fill(key)
	c, err := New(key)
	if err != nil {
		t.Fatal(err)
	}
	kern := c.NewBatchKernel()
	bb := BlockBytes
	for _, round := range []int{1, 5, 8, NumRounds} {
		points := []ciphers.BatchPoint{
			{Round: 0},
			{Round: round},
			{Round: round, PostSub: true},
			{Round: NumRounds, PostSub: true},
		}
		np := len(points)
		for _, n := range []int{1, 5, 64, 130} {
			t.Run(fmt.Sprintf("round=%d/n=%d", round, n), func(t *testing.T) {
				pts := make([]byte, n*bb)
				rng.Fill(pts)
				maskA := make([]byte, n*bb)
				maskB := make([]byte, n*bb)
				rng.Fill(maskA)
				rng.Fill(maskB)
				masks := [][]byte{nil, maskA, maskB}
				mkBufs := func() ([][]byte, [][]byte) {
					states := make([][]byte, len(masks))
					cts := make([][]byte, len(masks))
					for f := range masks {
						states[f] = make([]byte, n*np*bb)
						cts[f] = make([]byte, n*bb)
					}
					// Branch 1 skips point capture, branch 2 skips the
					// ciphertext: nil buffers must be tolerated.
					states[1] = nil
					cts[2] = nil
					return states, cts
				}
				wantStates, wantCts := mkBufs()
				ciphers.ScalarForks(c, round, points, n, pts, masks, wantStates, wantCts)
				gotStates, gotCts := mkBufs()
				kern.EncryptForks(round, points, n, pts, masks, gotStates, gotCts)
				for f := range masks {
					if !bytes.Equal(gotStates[f], wantStates[f]) {
						t.Errorf("branch %d point states differ from scalar path", f)
					}
					if !bytes.Equal(gotCts[f], wantCts[f]) {
						t.Errorf("branch %d ciphertexts differ from scalar path", f)
					}
				}
			})
		}
	}
}
