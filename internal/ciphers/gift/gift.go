// Package gift implements the GIFT family of lightweight block ciphers
// (Banik et al., CHES 2017) at trace level: GIFT-64 (28 rounds) and
// GIFT-128 (40 rounds), both with a 128-bit key.
//
// # State layout
//
// The GIFT specification numbers state bits b_{n-1}...b_0 with b_{n-1} the
// most significant bit of the first plaintext byte. Internally the state is
// a uint64 pair/single with spec bit i at machine bit i; the repository
// bit-numbering (bit i = bit i%8 of byte i/8) therefore matches the spec's
// bit indices directly, and nibble i of the spec occupies state bits
// 4i..4i+3. Plaintext and ciphertext cross the API boundary in the spec's
// big-endian byte order.
//
// # Round structure
//
// Each round is SubCells (the 4-bit S-box on every nibble), PermBits (the
// GIFT bit permutation), and AddRoundKey (round-key bits, the round
// constant, and the fixed 1 bit). The paper injects faults at the input of
// round 25 of GIFT-64 and observes the post-S-box state of round 27
// onwards; both hooks are provided via the ciphers.Trace mechanism.
package gift

import (
	"fmt"

	"repro/internal/ciphers"
)

// Variant selects a member of the GIFT family.
type Variant int

const (
	// GIFT64 is the 64-bit-block, 28-round variant.
	GIFT64 Variant = iota
	// GIFT128 is the 128-bit-block, 40-round variant.
	GIFT128
)

// KeyBytes is the key size of both variants.
const KeyBytes = 16

// sbox is the GIFT S-box GS; invSbox its inverse.
var sbox = [16]byte{0x1, 0xa, 0x4, 0xc, 0x6, 0xf, 0x3, 0x9, 0x2, 0xd, 0xb, 0x7, 0x5, 0x0, 0x8, 0xe}

var invSbox [16]byte

// perm64 and perm128 are the bit permutations: bit i moves to perm[i].
var (
	perm64  [64]int
	perm128 [128]int
)

func init() {
	for i, v := range sbox {
		invSbox[v] = byte(i)
	}
	for i := 0; i < 64; i++ {
		perm64[i] = 4*(i/16) + 16*((3*((i%16)/4)+i%4)%4) + i%4
	}
	for i := 0; i < 128; i++ {
		perm128[i] = 4*(i/16) + 32*((3*((i%16)/4)+i%4)%4) + i%4
	}
}

// SBox returns the GIFT S-box value of a 4-bit input.
func SBox(x byte) byte { return sbox[x&0xf] }

// InvSBox returns the inverse S-box value of a 4-bit input.
func InvSBox(x byte) byte { return invSbox[x&0xf] }

// Perm64 returns the destination of bit i under the GIFT-64 permutation.
func Perm64(i int) int { return perm64[i] }

// Perm128 returns the destination of bit i under the GIFT-128 permutation.
func Perm128(i int) int { return perm128[i] }

// roundConstants holds the 6-bit LFSR constants for up to 48 rounds.
var roundConstants = func() [48]byte {
	var rc [48]byte
	c := byte(0)
	for i := range rc {
		// c <- (c4 c3 c2 c1 c0 || c5 XOR c4 XOR 1)
		c = (c<<1)&0x3f | (c>>5^c>>4^1)&1
		rc[i] = c
	}
	return rc
}()

// RoundConstant returns the constant of round r (1-based).
func RoundConstant(r int) byte {
	if r < 1 || r > len(roundConstants) {
		panic("gift: round constant index out of range")
	}
	return roundConstants[r-1]
}

// Cipher is a GIFT instance with a precomputed per-round key schedule.
type Cipher struct {
	variant Variant
	rounds  int
	// keyU and keyV are the per-round key words: 16-bit for GIFT-64,
	// 32-bit for GIFT-128, stored widened.
	keyU, keyV []uint32
	// rkMask[r-1] is round r's full AddRoundKey state mask (key bits,
	// round constant and the fixed 1), precomputed so both the scalar
	// round and the bitsliced kernel XOR two words per round.
	rkMask []state
}

// New creates a GIFT instance. The key must be 16 bytes, interpreted in
// the spec's big-endian order (k7 first).
func New(v Variant, key []byte) (*Cipher, error) {
	if len(key) != KeyBytes {
		return nil, fmt.Errorf("gift: key must be %d bytes, got %d", KeyBytes, len(key))
	}
	c := &Cipher{variant: v}
	switch v {
	case GIFT64:
		c.rounds = 28
	case GIFT128:
		c.rounds = 40
	default:
		return nil, fmt.Errorf("gift: unknown variant %d", v)
	}
	c.expandKey(key)
	return c, nil
}

// New64 creates a GIFT-64 instance.
func New64(key []byte) (*Cipher, error) { return New(GIFT64, key) }

// New128 creates a GIFT-128 instance.
func New128(key []byte) (*Cipher, error) { return New(GIFT128, key) }

// expandKey walks the key state (k7..k0, 16-bit words, k7 from the first
// two key bytes) and extracts the per-round words.
func (c *Cipher) expandKey(key []byte) {
	var k [8]uint16
	for i := 0; i < 8; i++ {
		// key[0] is the high byte of k7 (spec order).
		k[7-i] = uint16(key[2*i])<<8 | uint16(key[2*i+1])
	}
	c.keyU = make([]uint32, c.rounds)
	c.keyV = make([]uint32, c.rounds)
	for r := 0; r < c.rounds; r++ {
		if c.variant == GIFT64 {
			c.keyU[r] = uint32(k[1])
			c.keyV[r] = uint32(k[0])
		} else {
			c.keyU[r] = uint32(k[5])<<16 | uint32(k[4])
			c.keyV[r] = uint32(k[1])<<16 | uint32(k[0])
		}
		// Key state update: (k7..k0) <- (k1 >>> 2, k0 >>> 12, k7..k2).
		n1 := k[1]>>2 | k[1]<<14
		n0 := k[0]>>12 | k[0]<<4
		copy(k[:6], k[2:8])
		k[6] = n0
		k[7] = n1
	}
	c.rkMask = make([]state, c.rounds)
	for r := 1; r <= c.rounds; r++ {
		if c.variant == GIFT64 {
			c.rkMask[r-1][0] = KeyMask64(uint16(c.keyU[r-1]), uint16(c.keyV[r-1])) | ConstMask64(r)
		} else {
			klo, khi := KeyMask128(c.keyU[r-1], c.keyV[r-1])
			clo, chi := ConstMask128(r)
			c.rkMask[r-1][0] = klo | clo
			c.rkMask[r-1][1] = khi | chi
		}
	}
}

// RoundKeyWords returns the (U, V) round-key words of round r (1-based),
// exported for the DFA analyzer.
func (c *Cipher) RoundKeyWords(r int) (u, v uint32) {
	if r < 1 || r > c.rounds {
		panic("gift: round key index out of range")
	}
	return c.keyU[r-1], c.keyV[r-1]
}

// Name implements ciphers.Cipher.
func (c *Cipher) Name() string {
	if c.variant == GIFT64 {
		return "gift64"
	}
	return "gift128"
}

// BlockBytes implements ciphers.Cipher.
func (c *Cipher) BlockBytes() int {
	if c.variant == GIFT64 {
		return 8
	}
	return 16
}

// Rounds implements ciphers.Cipher.
func (c *Cipher) Rounds() int { return c.rounds }

// GroupBits implements ciphers.Cipher: GIFT substitutes nibbles.
func (c *Cipher) GroupBits() int { return 4 }

// state holds up to 128 bits, spec bit i at word i/64, machine bit i%64.
type state [2]uint64

func (s *state) loadBE(src []byte, nbytes int) {
	s[0], s[1] = 0, 0
	// src[0] holds the most significant spec bits.
	for i := 0; i < nbytes; i++ {
		bitBase := 8 * (nbytes - 1 - i)
		s[bitBase/64] |= uint64(src[i]) << (uint(bitBase) % 64)
	}
}

func (s *state) storeBE(dst []byte, nbytes int) {
	for i := 0; i < nbytes; i++ {
		bitBase := 8 * (nbytes - 1 - i)
		dst[i] = byte(s[bitBase/64] >> (uint(bitBase) % 64))
	}
}

// storeLE writes the state in repository bit order (bit i of the state is
// bit i%8 of byte i/8), used for trace snapshots and fault masks.
func (s *state) storeLE(dst []byte, nbytes int) {
	for i := 0; i < nbytes; i++ {
		bitBase := 8 * i
		dst[i] = byte(s[bitBase/64] >> (uint(bitBase) % 64))
	}
}

func (s *state) xorLE(mask []byte) {
	for i, b := range mask {
		bitBase := 8 * i
		s[bitBase/64] ^= uint64(b) << (uint(bitBase) % 64)
	}
}

// andLE clamps the state to the repository-bit-order AND mask. Words past
// the mask are zeroed, which is harmless: the mask always spans the full
// BlockBytes, so only bits outside the cipher state are affected.
func (s *state) andLE(mask []byte) {
	var m state
	for i, b := range mask {
		bitBase := 8 * i
		m[bitBase/64] |= uint64(b) << (uint(bitBase) % 64)
	}
	s[0] &= m[0]
	s[1] &= m[1]
}

// subCells applies the S-box to every nibble of the first nbits bits.
func (s *state) subCells(nbits int, box *[16]byte) {
	for w := 0; w < (nbits+63)/64; w++ {
		v := s[w]
		var out uint64
		for n := 0; n < 16; n++ {
			out |= uint64(box[v>>(4*uint(n))&0xf]) << (4 * uint(n))
		}
		s[w] = out
	}
}

// permBits applies the bit permutation table (bit i moves to perm[i]).
func (s *state) permBits(nbits int, perm []int) {
	var out state
	for i := 0; i < nbits; i++ {
		if s[i/64]>>(uint(i)%64)&1 == 1 {
			j := perm[i]
			out[j/64] |= 1 << (uint(j) % 64)
		}
	}
	*s = out
}

// Encrypt implements ciphers.Cipher. dst and src are in spec big-endian
// byte order; fault masks and trace snapshots are in repository bit order.
func (c *Cipher) Encrypt(dst, src []byte, fault *ciphers.Fault, trace *ciphers.Trace) {
	fault.Validate(c)
	nbytes := c.BlockBytes()
	nbits := 8 * nbytes
	var s state
	s.loadBE(src, nbytes)
	for r := 1; r <= c.rounds; r++ {
		if fault != nil && fault.Round == r {
			if fault.And != nil {
				s.andLE(fault.And)
			}
			if fault.Mask != nil {
				s.xorLE(fault.Mask)
			}
		}
		if trace != nil {
			s.storeLE(trace.Inputs[r-1], nbytes)
		}
		s.subCells(nbits, &sbox)
		if trace != nil {
			s.storeLE(trace.PostSub[r-1], nbytes)
		}
		if c.variant == GIFT64 {
			s.permBits(64, perm64[:])
			c.addRoundKey64(&s, r)
		} else {
			s.permBits(128, perm128[:])
			c.addRoundKey128(&s, r)
		}
	}
	s.storeBE(dst, nbytes)
	if trace != nil {
		s.storeLE(trace.Ciphertext, nbytes)
	}
}

// addRoundKey64 XORs round r's precomputed state mask: U bits at
// positions 4i+1, V bits at 4i, the round constant at bits
// 23,19,15,11,7,3 and the fixed 1 at bit 63 (see KeyMask64/ConstMask64).
func (c *Cipher) addRoundKey64(s *state, r int) {
	s[0] ^= c.rkMask[r-1][0]
}

// addRoundKey128 XORs round r's precomputed state mask: U bits at
// positions 4i+2, V bits at 4i+1, the round constant at bits
// 23,19,15,11,7,3 and the fixed 1 at bit 127 (see
// KeyMask128/ConstMask128).
func (c *Cipher) addRoundKey128(s *state, r int) {
	s[0] ^= c.rkMask[r-1][0]
	s[1] ^= c.rkMask[r-1][1]
}

// Decrypt inverts Encrypt (no fault/trace support; used in tests and
// key-recovery verification).
func (c *Cipher) Decrypt(dst, src []byte) {
	nbytes := c.BlockBytes()
	nbits := 8 * nbytes
	var s state
	s.loadBE(src, nbytes)
	inv := invPerm(nbits, c.variant)
	for r := c.rounds; r >= 1; r-- {
		if c.variant == GIFT64 {
			c.addRoundKey64(&s, r)
		} else {
			c.addRoundKey128(&s, r)
		}
		s.permBits(nbits, inv)
		s.subCells(nbits, &invSbox)
	}
	s.storeBE(dst, nbytes)
}

func invPerm(nbits int, v Variant) []int {
	out := make([]int, nbits)
	for i := 0; i < nbits; i++ {
		if v == GIFT64 {
			out[perm64[i]] = i
		} else {
			out[perm128[i]] = i
		}
	}
	return out
}

// NibbleOf returns the nibble index of state bit b.
func NibbleOf(b int) int { return b / 4 }

// ConstMask128 returns the known (key-independent) part of GIFT-128's
// round-r AddRoundKey as (lo, hi) state words: the round-constant bits at
// positions 4i+3 and the fixed 1 at bit 127.
func ConstMask128(round int) (lo, hi uint64) {
	rc := RoundConstant(round)
	for i := 0; i < 6; i++ {
		lo |= uint64(rc>>uint(i)&1) << (4*uint(i) + 3)
	}
	return lo, 1 << 63
}

// KeyMask128 returns the state mask GIFT-128's AddRoundKey XORs for
// round-key words (U, V) as (lo, hi): U bits at positions 4i+2, V bits
// at 4i+1.
func KeyMask128(u, v uint32) (lo, hi uint64) {
	for i := 0; i < 32; i++ {
		bitU := 4*uint(i) + 2
		bitV := 4*uint(i) + 1
		if bitU < 64 {
			lo |= uint64(u>>uint(i)&1) << bitU
		} else {
			hi |= uint64(u>>uint(i)&1) << (bitU - 64)
		}
		if bitV < 64 {
			lo |= uint64(v>>uint(i)&1) << bitV
		} else {
			hi |= uint64(v>>uint(i)&1) << (bitV - 64)
		}
	}
	return lo, hi
}

// ConstMask64 returns the known (key-independent) part of GIFT-64's
// round-r AddRoundKey: the round-constant bits at positions 4i+3 and the
// fixed 1 at bit 63. Exported for the DFA analyzer, which inverts rounds
// under guessed key bits.
func ConstMask64(round int) uint64 {
	rc := RoundConstant(round)
	var mask uint64
	for i := 0; i < 6; i++ {
		mask |= uint64(rc>>uint(i)&1) << (4*uint(i) + 3)
	}
	return mask | 1<<63
}

// KeyMask64 returns the state mask that GIFT-64's AddRoundKey XORs for
// round-key words (U, V): U bits at positions 4i+1, V bits at 4i.
func KeyMask64(u, v uint16) uint64 {
	var mask uint64
	for i := 0; i < 16; i++ {
		mask |= uint64(u>>uint(i)&1) << (4*uint(i) + 1)
		mask |= uint64(v>>uint(i)&1) << (4 * uint(i))
	}
	return mask
}

func init() {
	ciphers.Register(ciphers.Info{
		Name:       "gift64",
		BlockBytes: 8,
		KeyBytes:   KeyBytes,
		Rounds:     28,
		GroupBits:  4,
		New: func(key []byte) (ciphers.Cipher, error) {
			return New(GIFT64, key)
		},
	})
	ciphers.Register(ciphers.Info{
		Name:       "gift128",
		BlockBytes: 16,
		KeyBytes:   KeyBytes,
		Rounds:     40,
		GroupBits:  4,
		New: func(key []byte) (ciphers.Cipher, error) {
			return New(GIFT128, key)
		},
	})
}
