package gift

import (
	"bytes"
	"encoding/hex"
	"testing"
	"testing/quick"

	"repro/internal/ciphers"
	"repro/internal/prng"
)

func unhex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

// Official test vectors from the GIFT reference implementation.
func TestGIFT64Vectors(t *testing.T) {
	cases := []struct{ key, pt, ct string }{
		{"00000000000000000000000000000000", "0000000000000000", "f62bc3ef34f775ac"},
		{"fedcba9876543210fedcba9876543210", "fedcba9876543210", "c1b71f66160ff587"},
	}
	for _, tc := range cases {
		c, err := New64(unhex(t, tc.key))
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 8)
		c.Encrypt(got, unhex(t, tc.pt), nil, nil)
		if want := unhex(t, tc.ct); !bytes.Equal(got, want) {
			t.Errorf("key %s pt %s: ct = %x, want %x", tc.key, tc.pt, got, want)
		}
	}
}

func TestGIFT128Vector(t *testing.T) {
	c, err := New128(make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16)
	c.Encrypt(got, make([]byte, 16), nil, nil)
	want := unhex(t, "cd0bd738388ad3f668b15a36ceb6ff92")
	if !bytes.Equal(got, want) {
		t.Errorf("gift128 zero vector = %x, want %x", got, want)
	}
}

func TestSBoxBijection(t *testing.T) {
	seen := map[byte]bool{}
	for i := byte(0); i < 16; i++ {
		s := SBox(i)
		if s > 0xf {
			t.Fatalf("SBox(%d) = %d exceeds nibble range", i, s)
		}
		if seen[s] {
			t.Fatalf("S-box not a bijection at %d", i)
		}
		seen[s] = true
		if InvSBox(s) != i {
			t.Fatalf("InvSBox(SBox(%d)) = %d", i, InvSBox(s))
		}
	}
	// Spec spot checks: GS(0)=1, GS(f)=e, GS(7)=9.
	if SBox(0) != 1 || SBox(0xf) != 0xe || SBox(7) != 9 {
		t.Error("S-box values disagree with the GIFT specification")
	}
}

func TestPerm64KnownValues(t *testing.T) {
	// First entries of the published P64 table.
	want := map[int]int{0: 0, 1: 17, 2: 34, 3: 51, 4: 48, 5: 1, 12: 16, 16: 4, 17: 21, 19: 55, 51: 63, 63: 15}
	for i, p := range want {
		if got := Perm64(i); got != p {
			t.Errorf("Perm64(%d) = %d, want %d", i, got, p)
		}
	}
}

func TestPerm128KnownValues(t *testing.T) {
	want := map[int]int{0: 0, 1: 33, 2: 66, 3: 99, 4: 96, 5: 1, 8: 64, 16: 4, 127: 31}
	for i, p := range want {
		if got := Perm128(i); got != p {
			t.Errorf("Perm128(%d) = %d, want %d", i, got, p)
		}
	}
}

func TestPermutationsAreBijections(t *testing.T) {
	seen64 := map[int]bool{}
	for i := 0; i < 64; i++ {
		p := Perm64(i)
		if p < 0 || p >= 64 || seen64[p] {
			t.Fatalf("Perm64 not a bijection at %d", i)
		}
		seen64[p] = true
	}
	seen128 := map[int]bool{}
	for i := 0; i < 128; i++ {
		p := Perm128(i)
		if p < 0 || p >= 128 || seen128[p] {
			t.Fatalf("Perm128 not a bijection at %d", i)
		}
		seen128[p] = true
	}
}

func TestPermPreservesBitPositionInNibble(t *testing.T) {
	// GIFT's permutation sends bit 4n+j to some nibble's bit j; this is
	// the property that gives each S-box output bit a distinct role.
	for i := 0; i < 64; i++ {
		if Perm64(i)%4 != i%4 {
			t.Errorf("Perm64(%d) = %d changes intra-nibble position", i, Perm64(i))
		}
	}
	for i := 0; i < 128; i++ {
		if Perm128(i)%4 != i%4 {
			t.Errorf("Perm128(%d) = %d changes intra-nibble position", i, Perm128(i))
		}
	}
}

func TestRoundConstants(t *testing.T) {
	// First constants from the GIFT specification.
	want := []byte{0x01, 0x03, 0x07, 0x0f, 0x1f, 0x3e, 0x3d, 0x3b, 0x37, 0x2f, 0x1e, 0x3c}
	for i, w := range want {
		if got := RoundConstant(i + 1); got != w {
			t.Errorf("RoundConstant(%d) = %#02x, want %#02x", i+1, got, w)
		}
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	src := prng.New(77)
	for _, v := range []Variant{GIFT64, GIFT128} {
		key := make([]byte, 16)
		for trial := 0; trial < 30; trial++ {
			src.Fill(key)
			c, err := New(v, key)
			if err != nil {
				t.Fatal(err)
			}
			pt := make([]byte, c.BlockBytes())
			ct := make([]byte, c.BlockBytes())
			got := make([]byte, c.BlockBytes())
			src.Fill(pt)
			c.Encrypt(ct, pt, nil, nil)
			c.Decrypt(got, ct)
			if !bytes.Equal(got, pt) {
				t.Fatalf("%s: decrypt(encrypt(pt)) != pt", c.Name())
			}
		}
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	if _, err := New64(make([]byte, 8)); err == nil {
		t.Error("New64 accepted 8-byte key")
	}
	if _, err := New(Variant(9), make([]byte, 16)); err == nil {
		t.Error("New accepted unknown variant")
	}
}

func TestTraceFaultSemantics(t *testing.T) {
	key := unhex(t, "fedcba9876543210fedcba9876543210")
	c, _ := New64(key)
	pt := unhex(t, "0123456789abcdef")
	cleanTr := ciphers.NewTrace(c)
	faultTr := ciphers.NewTrace(c)
	out := make([]byte, 8)
	c.Encrypt(out, pt, nil, cleanTr)

	mask := make([]byte, 8)
	mask[4] = 0x0f // nibble 8 of the state (bits 32..35)
	c.Encrypt(out, pt, &ciphers.Fault{Round: 25, Mask: mask}, faultTr)

	for r := 1; r < 25; r++ {
		if !bytes.Equal(cleanTr.Inputs[r-1], faultTr.Inputs[r-1]) {
			t.Errorf("round %d input differs before injection", r)
		}
	}
	diff := make([]byte, 8)
	for i := range diff {
		diff[i] = cleanTr.Inputs[24][i] ^ faultTr.Inputs[24][i]
	}
	if !bytes.Equal(diff, mask) {
		t.Errorf("round-25 input differential = %x, want mask %x", diff, mask)
	}
}

func TestNibbleFaultDiffusion(t *testing.T) {
	// A single-nibble fault spreads to at most 4 nibbles one round later
	// (each S-box output bit goes to a distinct nibble) and keeps
	// spreading after that.
	key := make([]byte, 16)
	c, _ := New64(key)
	pt := unhex(t, "00112233aabbccdd")
	cleanTr := ciphers.NewTrace(c)
	faultTr := ciphers.NewTrace(c)
	out := make([]byte, 8)
	c.Encrypt(out, pt, nil, cleanTr)

	mask := make([]byte, 8)
	mask[0] = 0x0f // nibble 0
	c.Encrypt(out, pt, &ciphers.Fault{Round: 25, Mask: mask}, faultTr)

	count := func(r int) int {
		n := 0
		for nib := 0; nib < 16; nib++ {
			a := cleanTr.Inputs[r-1][nib/2] >> (4 * uint(nib%2)) & 0xf
			b := faultTr.Inputs[r-1][nib/2] >> (4 * uint(nib%2)) & 0xf
			if a != b {
				n++
			}
		}
		return n
	}
	if n := count(26); n < 1 || n > 4 {
		t.Errorf("round-26 input has %d faulty nibbles, want 1..4", n)
	}
	if n26, n27 := count(26), count(27); n27 < n26 {
		t.Errorf("diffusion shrank: %d nibbles at r26, %d at r27", n26, n27)
	}
}

func TestRoundKeyWordsMatchEncryption(t *testing.T) {
	// Re-deriving the key schedule independently: encrypting with a key
	// whose round words are known must place key bits at the documented
	// state positions. We verify indirectly: flipping key bit k0[0]
	// (V word of round 1) must flip exactly state bit 0 after round 1's
	// AddRoundKey, which then diffuses.
	key := make([]byte, 16)
	c0, _ := New64(key)
	key[15] ^= 0x01 // low bit of k0 in spec order
	c1, _ := New64(key)
	u0, v0 := c0.RoundKeyWords(1)
	u1, v1 := c1.RoundKeyWords(1)
	if u0 != u1 {
		t.Error("U word of round 1 should not depend on k0 bit 0")
	}
	if v0^v1 != 1 {
		t.Errorf("V word of round 1 differs by %#x, want 1", v0^v1)
	}
}

func TestKeyScheduleProperty(t *testing.T) {
	f := func(keyArr [16]byte) bool {
		c, err := New64(keyArr[:])
		if err != nil {
			return false
		}
		// GIFT-64 round keys for rounds 1 and 5: after four updates every
		// word has moved four slots, so round 5's (U,V) are round 1's
		// (k5,k4) — i.e. the words that were two slots above the
		// originals. Equivalent check: the key schedule is periodic with
		// period dividing 32 in the word-rotation part, so running the
		// expansion twice from the same key must agree.
		c2, _ := New64(keyArr[:])
		for r := 1; r <= 28; r++ {
			u1, v1 := c.RoundKeyWords(r)
			u2, v2 := c2.RoundKeyWords(r)
			if u1 != u2 || v1 != v2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAvalanche(t *testing.T) {
	// Flipping one plaintext bit must change roughly half the ciphertext
	// bits on average: a sanity check that rules out endianness slips
	// that the official vectors might mask.
	src := prng.New(9)
	for _, name := range []string{"gift64", "gift128"} {
		info, err := ciphers.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		key := make([]byte, info.KeyBytes)
		src.Fill(key)
		c, _ := info.New(key)
		n := info.BlockBytes
		pt := make([]byte, n)
		ct0 := make([]byte, n)
		ct1 := make([]byte, n)
		total := 0
		const trials = 100
		for i := 0; i < trials; i++ {
			src.Fill(pt)
			c.Encrypt(ct0, pt, nil, nil)
			pt[src.Intn(n)] ^= 1 << uint(src.Intn(8))
			c.Encrypt(ct1, pt, nil, nil)
			for j := 0; j < n; j++ {
				total += popcount8(ct0[j] ^ ct1[j])
			}
		}
		avg := float64(total) / trials
		if avg < float64(8*n)*0.4 || avg > float64(8*n)*0.6 {
			t.Errorf("%s avalanche: avg %0.1f flipped bits of %d", name, avg, 8*n)
		}
	}
}

func popcount8(b byte) int {
	n := 0
	for b != 0 {
		n++
		b &= b - 1
	}
	return n
}

func TestRegistryIntegration(t *testing.T) {
	for _, name := range []string{"gift64", "gift128"} {
		c, err := ciphers.New(name, make([]byte, 16))
		if err != nil {
			t.Fatal(err)
		}
		if c.Name() != name || c.GroupBits() != 4 {
			t.Errorf("%s: wrong registry metadata", name)
		}
	}
}

func BenchmarkEncryptGIFT64(b *testing.B) {
	c, _ := New64(make([]byte, 16))
	pt := make([]byte, 8)
	ct := make([]byte, 8)
	b.SetBytes(8)
	for i := 0; i < b.N; i++ {
		c.Encrypt(ct, pt, nil, nil)
	}
}

func BenchmarkEncryptGIFT128(b *testing.B) {
	c, _ := New128(make([]byte, 16))
	pt := make([]byte, 16)
	ct := make([]byte, 16)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		c.Encrypt(ct, pt, nil, nil)
	}
}
