// The batched GIFT fork kernel: a bitsliced implementation packing 64
// traces per uint64 lane, with shared-prefix forking.
//
// In bitsliced form lane b holds state bit b of 64 traces at once, so one
// round costs a fixed number of word operations for the whole block:
// SubCells becomes the S-box's boolean circuit over 4 lanes per nibble,
// PermBits becomes a lane renumbering, and AddRoundKey complements the
// lanes selected by the precomputed round mask. Blocks smaller than
// eight traces (and the tail of a ragged batch) take a per-trace path
// that reuses the scalar round functions with prefix sharing, so both
// paths are bit-identical to Encrypt.
package gift

import (
	"encoding/binary"
	"math/bits"

	"repro/internal/bitvec"
	"repro/internal/ciphers"
)

// laneBlock is the number of traces packed per bitsliced block: one per
// bit of a uint64 lane.
const laneBlock = 64

// bitsliceMin is the smallest block worth transposing into lanes; below
// it the per-trace fork path wins.
const bitsliceMin = 8

// kernel implements ciphers.BatchKernel for both GIFT variants.
type kernel struct {
	c     *Cipher
	nbits int
	// lanes/tmp/snap are the bitsliced state, the PermBits double
	// buffer, and the fork snapshot: nbits lanes of 64 traces each.
	lanes, tmp, snap []uint64
	// rows is the transpose scratch: one state word per trace.
	rows [laneBlock]uint64
}

// NewBatchKernel implements ciphers.BatchEncrypter.
func (c *Cipher) NewBatchKernel() ciphers.BatchKernel {
	nbits := 8 * c.BlockBytes()
	return &kernel{
		c:     c,
		nbits: nbits,
		lanes: make([]uint64, nbits),
		tmp:   make([]uint64, nbits),
		snap:  make([]uint64, nbits),
	}
}

// transpose64 converts trace state words to lanes and back; the in-place
// 64x64 bit transpose (an involution) is shared by all bitsliced kernels
// via bitvec.Transpose64.
func transpose64(a *[laneBlock]uint64) { bitvec.Transpose64(a) }

// sboxLanes applies the GIFT S-box to one bitsliced nibble. The circuit
// is the standard software bitslice of GS (Banik et al.); it is verified
// against the lookup table by the test suite.
func sboxLanes(l *[4]uint64) {
	s0, s1, s2, s3 := l[0], l[1], l[2], l[3]
	s1 ^= s0 & s2
	s0 ^= s1 & s3
	s2 ^= s0 | s1
	s3 ^= s2
	s1 ^= s3
	s3 = ^s3
	s2 ^= s0 & s1
	l[0], l[1], l[2], l[3] = s3, s1, s2, s0
}

// subCellsLanes applies the S-box circuit to every nibble of the lanes.
func (k *kernel) subCellsLanes() {
	for nib := 0; nib < k.nbits; nib += 4 {
		var l [4]uint64
		copy(l[:], k.lanes[nib:nib+4])
		sboxLanes(&l)
		copy(k.lanes[nib:nib+4], l[:])
	}
}

// permBitsLanes renumbers the lanes through the variant's bit
// permutation.
func (k *kernel) permBitsLanes(perm []int) {
	for i, p := range perm {
		k.tmp[p] = k.lanes[i]
	}
	k.lanes, k.tmp = k.tmp, k.lanes
}

// addRoundKeyLanes complements every lane selected by round r's
// precomputed AddRoundKey mask (XOR with an all-set key bit is a NOT
// across all 64 traces of the lane).
func (k *kernel) addRoundKeyLanes(r int) {
	m := k.c.rkMask[r-1]
	for wi := 0; wi < (k.nbits+63)/64; wi++ {
		w := m[wi]
		for w != 0 {
			b := bits.TrailingZeros64(w)
			k.lanes[64*wi+b] = ^k.lanes[64*wi+b]
			w &= w - 1
		}
	}
}

// loadRows gathers one state word (words[wi]) per trace of the block
// into k.rows, zero-padding past bn.
func (k *kernel) loadRowsBE(pts []byte, base, bn, wi int) {
	bb := k.c.BlockBytes()
	for t := 0; t < bn; t++ {
		var s state
		s.loadBE(pts[(base+t)*bb:(base+t+1)*bb], bb)
		k.rows[t] = s[wi]
	}
	for t := bn; t < laneBlock; t++ {
		k.rows[t] = 0
	}
}

// loadRowsLE gathers word wi of each trace's little-endian (repository
// bit order) block — the layout of fault masks — into k.rows. The LE
// byte encoding is exactly the little-endian encoding of the state
// words, so this is a direct load.
func (k *kernel) loadRowsLE(masks []byte, base, bn, wi int) {
	bb := k.c.BlockBytes()
	for t := 0; t < bn; t++ {
		off := (base+t)*bb + 8*wi
		if bb-8*wi >= 8 {
			k.rows[t] = binary.LittleEndian.Uint64(masks[off:])
		} else {
			var w uint64
			for j := 0; j < bb-8*wi; j++ {
				w |= uint64(masks[off+j]) << (8 * uint(j))
			}
			k.rows[t] = w
		}
	}
	for t := bn; t < laneBlock; t++ {
		k.rows[t] = 0
	}
}

// captureLanes transposes the current lanes back to per-trace words and
// writes each live trace's state into dst at stride*traceIndex+off,
// little-endian (trace order) or big-endian (ciphertext order).
func (k *kernel) captureLanes(dst []byte, base, bn, stride, off int, bigEndian bool) {
	bb := k.c.BlockBytes()
	words := (k.nbits + 63) / 64
	for wi := 0; wi < words; wi++ {
		copy(k.rows[:], k.lanes[64*wi:64*wi+64])
		transpose64(&k.rows)
		for t := 0; t < bn; t++ {
			var s state
			s[wi] = k.rows[t]
			at := dst[(base+t)*stride+off:]
			if bigEndian {
				// storeBE writes the whole block; accumulate per word
				// instead: byte i holds bits 8*(bb-1-i)..
				for i := 0; i < bb; i++ {
					bitBase := 8 * (bb - 1 - i)
					if bitBase/64 == wi {
						at[i] = byte(s[wi] >> (uint(bitBase) % 64))
					}
				}
			} else {
				for i := 0; i < bb; i++ {
					if i/8 == wi {
						at[i] = byte(s[wi] >> (8 * uint(i%8)))
					}
				}
			}
		}
	}
}

// EncryptForks implements ciphers.BatchKernel.
func (k *kernel) EncryptForks(round int, points []ciphers.BatchPoint, n int, pts []byte, masks, states, cts [][]byte) {
	k.EncryptForksOps(round, points, n, pts, masks, nil, states, cts)
}

// EncryptForksOps implements ciphers.FaultKernel. In bitsliced form the
// AND half of the injection pair is one extra AND per lane word on the
// faulted branch: the mask rows are transposed exactly like the XOR rows
// and clamp all 64 traces of a lane at once. Dead lanes past bn are ANDed
// with the zero padding, which is harmless because captures never read
// them.
func (k *kernel) EncryptForksOps(round int, points []ciphers.BatchPoint, n int, pts []byte, xors, ands, states, cts [][]byte) {
	ciphers.ValidateForksOps(k.c, round, points, n, pts, xors, ands, states, cts)
	for base := 0; base < n; {
		bn := n - base
		if bn > laneBlock {
			bn = laneBlock
		}
		if bn >= bitsliceMin {
			k.forkBlock(round, points, base, bn, pts, xors, ands, states, cts)
		} else {
			k.forkScalar(round, points, base, bn, pts, xors, ands, states, cts)
		}
		base += bn
	}
}

// forkBlock runs one bitsliced block of bn <= 64 traces.
func (k *kernel) forkBlock(round int, points []ciphers.BatchPoint, base, bn int, pts []byte, masks, ands, states, cts [][]byte) {
	c := k.c
	bb := c.BlockBytes()
	np := len(points)
	words := (k.nbits + 63) / 64
	perm := perm64[:]
	if c.variant == GIFT128 {
		perm = perm128[:]
	}

	// Transpose the block's plaintexts into lanes.
	for wi := 0; wi < words; wi++ {
		k.loadRowsBE(pts, base, bn, wi)
		transpose64(&k.rows)
		copy(k.lanes[64*wi:64*wi+64], k.rows[:])
	}
	// Shared prefix: rounds before the injection point, computed once.
	for r := 1; r < round; r++ {
		k.subCellsLanes()
		k.permBitsLanes(perm)
		k.addRoundKeyLanes(r)
	}
	copy(k.snap, k.lanes)

	for f := range masks {
		if f > 0 {
			copy(k.lanes, k.snap)
		}
		if ands != nil && ands[f] != nil {
			for wi := 0; wi < words; wi++ {
				k.loadRowsLE(ands[f], base, bn, wi)
				transpose64(&k.rows)
				for b := 0; b < 64; b++ {
					k.lanes[64*wi+b] &= k.rows[b]
				}
			}
		}
		if m := masks[f]; m != nil {
			for wi := 0; wi < words; wi++ {
				k.loadRowsLE(m, base, bn, wi)
				transpose64(&k.rows)
				for b := 0; b < 64; b++ {
					k.lanes[64*wi+b] ^= k.rows[b]
				}
			}
		}
		st := states[f]
		for r := round; r <= c.rounds; r++ {
			if st != nil {
				for j, p := range points {
					if p.Round == r && !p.PostSub {
						k.captureLanes(st, base, bn, np*bb, j*bb, false)
					}
				}
			}
			k.subCellsLanes()
			if st != nil {
				for j, p := range points {
					if p.Round == r && p.PostSub {
						k.captureLanes(st, base, bn, np*bb, j*bb, false)
					}
				}
			}
			k.permBitsLanes(perm)
			k.addRoundKeyLanes(r)
		}
		if st != nil {
			for j, p := range points {
				if p.Round == 0 {
					k.captureLanes(st, base, bn, np*bb, j*bb, false)
				}
			}
		}
		if ct := cts[f]; ct != nil {
			k.captureLanes(ct, base, bn, bb, 0, true)
		}
	}
}

// forkScalar runs bn traces through the scalar round functions with
// prefix sharing: the path for blocks too small to amortize the
// transposes. It performs the same state operations as Encrypt.
func (k *kernel) forkScalar(round int, points []ciphers.BatchPoint, base, bn int, pts []byte, masks, ands, states, cts [][]byte) {
	c := k.c
	bb := c.BlockBytes()
	nbits := 8 * bb
	np := len(points)
	perm := perm64[:]
	if c.variant == GIFT128 {
		perm = perm128[:]
	}
	for t := 0; t < bn; t++ {
		i := base + t
		var snap state
		snap.loadBE(pts[i*bb:(i+1)*bb], bb)
		for r := 1; r < round; r++ {
			snap.subCells(nbits, &sbox)
			snap.permBits(nbits, perm)
			snap.xorState(&c.rkMask[r-1])
		}
		for f := range masks {
			s := snap
			if ands != nil && ands[f] != nil {
				s.andLE(ands[f][i*bb : (i+1)*bb])
			}
			if m := masks[f]; m != nil {
				s.xorLE(m[i*bb : (i+1)*bb])
			}
			st := states[f]
			for r := round; r <= c.rounds; r++ {
				if st != nil {
					for j, p := range points {
						if p.Round == r && !p.PostSub {
							s.storeLE(st[(i*np+j)*bb:(i*np+j)*bb+bb], bb)
						}
					}
				}
				s.subCells(nbits, &sbox)
				if st != nil {
					for j, p := range points {
						if p.Round == r && p.PostSub {
							s.storeLE(st[(i*np+j)*bb:(i*np+j)*bb+bb], bb)
						}
					}
				}
				s.permBits(nbits, perm)
				s.xorState(&c.rkMask[r-1])
			}
			if st != nil {
				for j, p := range points {
					if p.Round == 0 {
						s.storeLE(st[(i*np+j)*bb:(i*np+j)*bb+bb], bb)
					}
				}
			}
			if ct := cts[f]; ct != nil {
				s.storeBE(ct[i*bb:(i+1)*bb], bb)
			}
		}
	}
}

// xorState XORs another state in place.
func (s *state) xorState(o *state) {
	s[0] ^= o[0]
	s[1] ^= o[1]
}
