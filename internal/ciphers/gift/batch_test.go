package gift

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/ciphers"
	"repro/internal/prng"
)

// TestTranspose64 checks that transpose64 is a true bit transpose and an
// involution.
func TestTranspose64(t *testing.T) {
	rng := prng.New(3)
	var a, orig [laneBlock]uint64
	for i := range a {
		a[i] = rng.Uint64()
	}
	orig = a
	transpose64(&a)
	for i := 0; i < 64; i++ {
		for k := 0; k < 64; k++ {
			if a[i]>>uint(k)&1 != orig[k]>>uint(i)&1 {
				t.Fatalf("transpose64: bit (%d,%d) not transposed", i, k)
			}
		}
	}
	transpose64(&a)
	if a != orig {
		t.Fatal("transpose64 is not an involution")
	}
}

// TestSboxLanesMatchesTable runs the bitsliced S-box circuit on all 16
// inputs replicated across lanes and compares against the lookup table.
func TestSboxLanesMatchesTable(t *testing.T) {
	for x := 0; x < 16; x++ {
		var l [4]uint64
		for b := 0; b < 4; b++ {
			if x>>uint(b)&1 == 1 {
				l[b] = ^uint64(0)
			}
		}
		sboxLanes(&l)
		got := 0
		for b := 0; b < 4; b++ {
			switch l[b] {
			case ^uint64(0):
				got |= 1 << uint(b)
			case 0:
			default:
				t.Fatalf("sboxLanes(%#x): lane %d not constant: %#x", x, b, l[b])
			}
		}
		if got != int(sbox[x]) {
			t.Fatalf("sboxLanes(%#x) = %#x, want %#x", x, got, sbox[x])
		}
	}
}

// TestBatchKernelMatchesScalar cross-checks the bitsliced fork kernel of
// both variants against the scalar reference path, covering the
// bitsliced block path, the small-block scalar path (n < 8) and ragged
// tails (n % 64 != 0).
func TestBatchKernelMatchesScalar(t *testing.T) {
	rng := prng.New(11)
	for _, variant := range []Variant{GIFT64, GIFT128} {
		key := make([]byte, KeyBytes)
		rng.Fill(key)
		c, err := New(variant, key)
		if err != nil {
			t.Fatal(err)
		}
		kern := c.NewBatchKernel()
		bb := c.BlockBytes()
		last := c.Rounds()
		for _, round := range []int{1, last / 2, last - 2, last} {
			points := []ciphers.BatchPoint{
				{Round: 0},
				{Round: round},
				{Round: round, PostSub: true},
				{Round: last, PostSub: true},
			}
			np := len(points)
			for _, n := range []int{1, 3, 8, 64, 72, 130} {
				t.Run(fmt.Sprintf("%v/round=%d/n=%d", variant, round, n), func(t *testing.T) {
					pts := make([]byte, n*bb)
					rng.Fill(pts)
					maskA := make([]byte, n*bb)
					maskB := make([]byte, n*bb)
					rng.Fill(maskA)
					rng.Fill(maskB)
					masks := [][]byte{nil, maskA, maskB}
					mkBufs := func() ([][]byte, [][]byte) {
						states := make([][]byte, len(masks))
						cts := make([][]byte, len(masks))
						for f := range masks {
							states[f] = make([]byte, n*np*bb)
							cts[f] = make([]byte, n*bb)
						}
						states[1] = nil
						cts[2] = nil
						return states, cts
					}
					wantStates, wantCts := mkBufs()
					ciphers.ScalarForks(c, round, points, n, pts, masks, wantStates, wantCts)
					gotStates, gotCts := mkBufs()
					kern.EncryptForks(round, points, n, pts, masks, gotStates, gotCts)
					for f := range masks {
						if !bytes.Equal(gotStates[f], wantStates[f]) {
							t.Errorf("branch %d point states differ from scalar path", f)
						}
						if !bytes.Equal(gotCts[f], wantCts[f]) {
							t.Errorf("branch %d ciphertexts differ from scalar path", f)
						}
					}
				})
			}
		}
	}
}
