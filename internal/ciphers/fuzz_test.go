package ciphers_test

import (
	"bytes"
	"testing"

	"repro/internal/ciphers"
	_ "repro/internal/ciphers/aes"     // register aes128
	_ "repro/internal/ciphers/gift"    // register gift64, gift128
	_ "repro/internal/ciphers/present" // register present80
	_ "repro/internal/ciphers/simon"   // register simon64, simon32
	_ "repro/internal/ciphers/speck"   // register speck64, speck32
)

// decrypter is the inverse-permutation capability every concrete cipher
// implementation provides (it is not part of the Cipher interface because
// the fault engine never decrypts).
type decrypter interface {
	Decrypt(dst, src []byte)
}

// fuzzCipher resolves a registered cipher from a fuzz selector byte and
// shapes the raw key material to the required length, so every input maps
// to a valid construction.
func fuzzCipher(t *testing.T, idx byte, keyMaterial []byte) (ciphers.Cipher, ciphers.Info) {
	t.Helper()
	names := ciphers.Names()
	info, err := ciphers.Lookup(names[int(idx)%len(names)])
	if err != nil {
		t.Fatal(err)
	}
	key := make([]byte, info.KeyBytes)
	copy(key, keyMaterial)
	c, err := info.New(key)
	if err != nil {
		t.Fatalf("%s: %v", info.Name, err)
	}
	return c, info
}

// FuzzEncryptDecrypt checks, for every registered cipher, that Decrypt
// inverts Encrypt on arbitrary keys and plaintexts and that Encrypt is
// deterministic.
func FuzzEncryptDecrypt(f *testing.F) {
	f.Add(byte(0), []byte("0123456789abcdef"), []byte("fedcba9876543210"))
	f.Add(byte(3), []byte{}, []byte{0xff})
	for i := 0; i < 8; i++ {
		f.Add(byte(i), bytes.Repeat([]byte{byte(i)}, 16), bytes.Repeat([]byte{0xa5}, 16))
	}
	f.Fuzz(func(t *testing.T, idx byte, keyMaterial, ptMaterial []byte) {
		c, info := fuzzCipher(t, idx, keyMaterial)
		pt := make([]byte, info.BlockBytes)
		copy(pt, ptMaterial)

		ct := make([]byte, info.BlockBytes)
		c.Encrypt(ct, pt, nil, nil)

		ct2 := make([]byte, info.BlockBytes)
		c.Encrypt(ct2, pt, nil, nil)
		if !bytes.Equal(ct, ct2) {
			t.Fatalf("%s: Encrypt not deterministic: %x vs %x", info.Name, ct, ct2)
		}

		d, ok := c.(decrypter)
		if !ok {
			t.Fatalf("%s: implementation lacks Decrypt", info.Name)
		}
		rt := make([]byte, info.BlockBytes)
		d.Decrypt(rt, ct)
		if !bytes.Equal(rt, pt) {
			t.Fatalf("%s: Decrypt(Encrypt(pt)) = %x, want %x (key %x)", info.Name, rt, pt, keyMaterial)
		}
	})
}

// FuzzBatchScalarEquivalence cross-checks the batched fork kernels
// against the scalar reference path on arbitrary keys, plaintext batches,
// (XOR, AND) injection pairs, rounds and observation points. An empty
// andMaterial exercises the historical XOR-only path (EncryptForks); a
// non-empty one drives the generalized injection op through
// EncryptForksOps, which picks the kernel's FaultKernel lanes when it has
// them and the automatic scalar fallback when it does not. This is the
// exactness contract the fault-campaign fast path rests on.
func FuzzBatchScalarEquivalence(f *testing.F) {
	f.Add(byte(0), byte(8), byte(3), []byte("k"), []byte("p"), []byte{0x01}, []byte{})
	f.Add(byte(2), byte(25), byte(5), []byte{0xaa}, bytes.Repeat([]byte{0x0f}, 64), []byte{0x80, 0x01}, []byte{})
	f.Add(byte(1), byte(1), byte(1), []byte{}, []byte{}, []byte{}, []byte{})
	f.Add(byte(0), byte(8), byte(2), []byte("key"), []byte("pt"), []byte{0x0f}, []byte{0xf0, 0xff})
	f.Add(byte(2), byte(25), byte(4), []byte{0x55}, bytes.Repeat([]byte{0xcc}, 32), []byte{}, []byte{0x7f})
	f.Fuzz(func(t *testing.T, idx, roundSel, nSel byte, keyMaterial, ptMaterial, maskMaterial, andMaterial []byte) {
		c, info := fuzzCipher(t, idx, keyMaterial)
		be, ok := c.(ciphers.BatchEncrypter)
		if !ok {
			t.Skip("no batch kernel")
		}
		bb := info.BlockBytes
		round := 1 + int(roundSel)%info.Rounds
		// Batch sizes reach past bitsliceMin (8) so the fuzzer drives the
		// lane-packed kernels as well as the small-block per-trace path.
		n := 1 + int(nSel)%12

		pts := make([]byte, n*bb)
		copy(pts, ptMaterial)
		maskBuf := make([]byte, n*bb)
		for i := 0; i < len(maskBuf) && len(maskMaterial) > 0; i++ {
			maskBuf[i] = maskMaterial[i%len(maskMaterial)]
		}
		xors := [][]byte{nil, maskBuf}
		ands := [][]byte{nil, nil}
		if len(andMaterial) > 0 {
			andBuf := make([]byte, n*bb)
			for i := range andBuf {
				andBuf[i] = andMaterial[i%len(andMaterial)]
			}
			ands[1] = andBuf
		}

		// Observe the ciphertext, the faulted round input, and a
		// post-substitution state at a round derived from the inputs.
		obsRound := round + int(roundSel)%(info.Rounds-round+1)
		points := []ciphers.BatchPoint{
			{Round: 0},
			{Round: round},
			{Round: obsRound, PostSub: true},
		}

		mkBufs := func() (states, cts [][]byte) {
			for range xors {
				states = append(states, make([]byte, n*len(points)*bb))
				cts = append(cts, make([]byte, n*bb))
			}
			return
		}
		batchStates, batchCts := mkBufs()
		kern := be.NewBatchKernel()
		ciphers.EncryptForksOps(c, kern, round, points, n, pts, xors, ands, batchStates, batchCts)

		refStates, refCts := mkBufs()
		ciphers.ScalarForksOps(c, round, points, n, pts, xors, ands, refStates, refCts)

		for fk := range xors {
			if !bytes.Equal(batchCts[fk], refCts[fk]) {
				t.Fatalf("%s round %d branch %d: batch ciphertexts diverge\nbatch %x\nref   %x",
					info.Name, round, fk, batchCts[fk], refCts[fk])
			}
			if !bytes.Equal(batchStates[fk], refStates[fk]) {
				t.Fatalf("%s round %d branch %d: batch states diverge at points %v",
					info.Name, round, fk, points)
			}
		}
	})
}
