package ciphers_test

import (
	"bytes"
	"encoding/hex"
	"testing"

	"repro/internal/ciphers"
)

// TestKnownAnswerVectors pins every registered cipher to published test
// vectors through the registry constructor path (the exact path the fault
// engine uses). Sources: FIPS-197 Appendix B (AES-128), the GIFT paper
// (CHES 2017), the PRESENT paper appendix (CHES 2007), and the SIMON and
// SPECK specification (ePrint 2013/404).
func TestKnownAnswerVectors(t *testing.T) {
	cases := []struct{ cipher, key, pt, ct string }{
		{"aes128", "2b7e151628aed2a6abf7158809cf4f3c", "3243f6a8885a308d313198a2e0370734", "3925841d02dc09fbdc118597196a0b32"},
		{"present80", "00000000000000000000", "0000000000000000", "5579c1387b228445"},
		{"present80", "ffffffffffffffffffff", "0000000000000000", "e72c46c0f5945049"},
		{"present80", "00000000000000000000", "ffffffffffffffff", "a112ffc72f68417b"},
		{"present80", "ffffffffffffffffffff", "ffffffffffffffff", "3333dcd3213210d2"},
		{"simon64", "1b1a1918131211100b0a090803020100", "656b696c20646e75", "44c8fc20b9dfa07a"},
		{"simon32", "1918111009080100", "65656877", "c69be9bb"},
		{"speck64", "1b1a1918131211100b0a090803020100", "3b7265747475432d", "8c6fa548454e028b"},
		{"speck32", "1918111009080100", "6574694c", "a86842f2"},
	}
	for _, tc := range cases {
		key, err := hex.DecodeString(tc.key)
		if err != nil {
			t.Fatal(err)
		}
		pt, err := hex.DecodeString(tc.pt)
		if err != nil {
			t.Fatal(err)
		}
		want, err := hex.DecodeString(tc.ct)
		if err != nil {
			t.Fatal(err)
		}
		c, err := ciphers.New(tc.cipher, key)
		if err != nil {
			t.Fatalf("%s: %v", tc.cipher, err)
		}
		got := make([]byte, c.BlockBytes())
		c.Encrypt(got, pt, nil, nil)
		if !bytes.Equal(got, want) {
			t.Errorf("%s(key %s, pt %s) = %x, want %s", tc.cipher, tc.key, tc.pt, got, tc.ct)
		}
	}
}
