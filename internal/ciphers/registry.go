package ciphers

import (
	"fmt"
	"sort"
	"sync"
)

// Constructor builds a cipher instance from a key. Implementations return
// an error for wrong key lengths.
type Constructor func(key []byte) (Cipher, error)

// Info describes a registered cipher family.
type Info struct {
	Name       string
	BlockBytes int
	KeyBytes   int
	Rounds     int
	GroupBits  int
	New        Constructor
}

var (
	registryMu sync.RWMutex
	registry   = map[string]Info{}
)

// Register makes a cipher family available by name. It panics on duplicate
// registration, which indicates a programming error.
func Register(info Info) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if info.New == nil {
		panic("ciphers: Register with nil constructor")
	}
	if _, dup := registry[info.Name]; dup {
		panic(fmt.Sprintf("ciphers: duplicate registration of %q", info.Name))
	}
	registry[info.Name] = info
}

// Lookup returns the registration for name.
func Lookup(name string) (Info, error) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	info, ok := registry[name]
	if !ok {
		return Info{}, fmt.Errorf("ciphers: unknown cipher %q (registered: %v)", name, namesLocked())
	}
	return info, nil
}

// New constructs a registered cipher by name.
func New(name string, key []byte) (Cipher, error) {
	info, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	return info.New(key)
}

// Names lists the registered cipher names in sorted order.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
