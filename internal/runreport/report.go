// Package runreport reduces the structured JSONL event logs written
// with -events (and optionally the Chrome trace files written with
// -trace) into offline run reports: phase latency breakdown, throughput
// over time, cache effectiveness, episode and leakage rates, and
// event-loss detection via the final emitter_stats line. It is the
// analysis engine behind cmd/obsreport and the job server's
// GET /jobs/{id}/report endpoint, and its fleet mode (fleet.go) folds a
// directory of per-job logs into one cost-attribution report.
package runreport

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"time"

	"repro/internal/obs"
)

// Report is the distilled view of one run's event log (plus an optional
// trace file). It is the JSON output shape; the markdown renderer walks
// the same struct.
type Report struct {
	Source string `json:"source"`
	Binary string `json:"binary,omitempty"`
	Cipher string `json:"cipher,omitempty"`
	Events int    `json:"events"`

	// Emitter health, from the final emitter_stats line.
	EmitterStatsSeen bool   `json:"emitter_stats_seen"`
	EventsDropped    uint64 `json:"events_dropped"`

	WallClock float64 `json:"wall_clock_seconds"`

	// Phase latency breakdown, one row per phase.
	Phases []PhaseStat `json:"phases,omitempty"`

	// Throughput over time: samples/sec per elapsed-time bucket, from
	// campaign_finished durations.
	Throughput []ThroughputPoint `json:"throughput,omitempty"`

	// Oracle cache effectiveness.
	Cache CacheStat `json:"cache"`

	// Training census.
	Episodes       int     `json:"episodes"`
	LeakyEpisodes  int     `json:"leaky_episodes"`
	LeakyRate      float64 `json:"leaky_rate"`
	EpisodesPerMin float64 `json:"episodes_per_min,omitempty"`
	BestT          float64 `json:"best_t,omitempty"`

	// BatchPaths counts campaigns per cipher and encryption engine, from
	// the batch_path field campaign events carry ("kernel" when the
	// cipher's batch kernel ran, "scalar-fallback" otherwise).
	BatchPaths []BatchPathStat `json:"batch_paths,omitempty"`

	// FaultModels breaks the run down per typed fault model, from the
	// fault_model field episode and campaign events carry: exploitable
	// rate per model (which model the agent found rewarding) and
	// campaign latency per model (what each injection op costs — the
	// XOR-only hot path versus (AND, XOR) lanes versus scalar fallback).
	FaultModels []FaultModelStat `json:"fault_models,omitempty"`

	// Sweep aggregates an exhaustive atlas sweep's events, when the log
	// came from cmd/atlas (or anything else emitting sweep_* events).
	Sweep *SweepStat `json:"sweep,omitempty"`

	// Usage is the job's resource accounting, from the last job_usage
	// line of a job-server event log (absent for plain CLI runs).
	Usage *JobUsage `json:"usage,omitempty"`

	// Span aggregates from the optional trace file.
	Spans []SpanStat `json:"spans,omitempty"`
	// WorkerUtilization is busy-shard time over workers*campaign wall
	// time, derivable only when a trace file is given and campaign events
	// recorded the worker count.
	WorkerUtilization float64 `json:"worker_utilization,omitempty"`

	Warnings []string `json:"warnings,omitempty"`

	// workers is the largest worker count any campaign reported; it only
	// feeds the trace-derived utilization estimate, so it stays out of
	// the JSON shape.
	workers float64
}

// PhaseStat aggregates the durations of one phase (campaigns, PPO
// updates, whole sessions) as reported by the events themselves.
type PhaseStat struct {
	Phase   string  `json:"phase"`
	Count   int     `json:"count"`
	TotalMS float64 `json:"total_ms"`
	MeanMS  float64 `json:"mean_ms"`
	MaxMS   float64 `json:"max_ms"`
}

// FaultModelStat aggregates one typed fault model's episodes and
// campaign durations.
type FaultModelStat struct {
	Model          string  `json:"model"`
	Episodes       int     `json:"episodes"`
	LeakyEpisodes  int     `json:"leaky_episodes"`
	LeakyRate      float64 `json:"leaky_rate"`
	Campaigns      int     `json:"campaigns"`
	CampaignMeanMS float64 `json:"campaign_mean_ms"`
	CampaignMaxMS  float64 `json:"campaign_max_ms"`
}

// SweepStat distills sweep_started / sweep_cell / sweep_finished events:
// how big the enumeration was, how fast it went, and which fault models
// carried the exploitable cells. CellEvents counts freshly assessed
// cells (resumed shards replay from the checkpoint without re-emitting),
// so CellEvents < Cells on a resumed run is expected, not data loss.
type SweepStat struct {
	Cells           int              `json:"cells"`
	ResumedShards   int              `json:"resumed_shards,omitempty"`
	CellEvents      int              `json:"cell_events"`
	Exploitable     int              `json:"exploitable"`
	ExploitableRate float64          `json:"exploitable_rate"`
	MaxT            float64          `json:"max_t"`
	DurationSeconds float64          `json:"duration_seconds,omitempty"`
	CellsPerSec     float64          `json:"cells_per_sec,omitempty"`
	Finished        bool             `json:"finished"`
	ByModel         []SweepModelStat `json:"by_model,omitempty"`
}

// SweepModelStat is one fault model's share of the sweep's cell events.
type SweepModelStat struct {
	Model       string  `json:"model"`
	Cells       int     `json:"cells"`
	Exploitable int     `json:"exploitable"`
	MaxT        float64 `json:"max_t"`
}

// BatchPathStat counts one cipher's campaigns on one encryption engine.
type BatchPathStat struct {
	Cipher    string `json:"cipher"`
	Path      string `json:"path"`
	Campaigns int    `json:"campaigns"`
}

// ThroughputPoint is the mean campaign throughput (t-test traces per
// second) inside one elapsed-time bucket.
type ThroughputPoint struct {
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	TracesPerSec   float64 `json:"traces_per_sec"`
	Campaigns      int     `json:"campaigns"`
}

// CacheStat is the oracle memoization summary, preferring the
// authoritative session_finished totals and falling back to counting
// oracle_eval events.
type CacheStat struct {
	Lookups uint64  `json:"lookups"`
	Hits    uint64  `json:"hits"`
	HitRate float64 `json:"hit_rate"`
}

// SpanStat aggregates the trace file's complete events by span name.
type SpanStat struct {
	Name    string  `json:"name"`
	Count   int     `json:"count"`
	TotalMS float64 `json:"total_ms"`
	MeanMS  float64 `json:"mean_ms"`
	MaxMS   float64 `json:"max_ms"`
}

// JobUsage is the resource accounting a job-server log carries on its
// job_usage lines: the daemon's cumulative cost figures for the job,
// plus the attribution labels the fleet report groups by. The last
// job_usage line of a log wins (each attempt re-emits the cumulative
// figure).
type JobUsage struct {
	ID         string `json:"id,omitempty"`
	Tenant     string `json:"tenant,omitempty"`
	Kind       string `json:"kind,omitempty"`
	Cipher     string `json:"cipher,omitempty"`
	FaultModel string `json:"fault_model,omitempty"`
	State      string `json:"state,omitempty"`

	Attempts      int     `json:"attempts,omitempty"`
	WallSeconds   float64 `json:"wall_seconds"`
	CPUSeconds    float64 `json:"cpu_seconds"`
	QueueSeconds  float64 `json:"queue_seconds"`
	Episodes      uint64  `json:"episodes,omitempty"`
	Cells         uint64  `json:"cells,omitempty"`
	Traces        uint64  `json:"traces,omitempty"`
	PeakHeapBytes uint64  `json:"peak_heap_bytes,omitempty"`
}

// AnalyzeFile parses one JSONL event log (and optional trace file) into
// a Report.
func AnalyzeFile(eventsPath, tracePath string) (*Report, error) {
	f, err := os.Open(eventsPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rep, err := Analyze(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", eventsPath, err)
	}
	rep.Source = eventsPath
	if tracePath != "" {
		if err := analyzeTrace(rep, tracePath); err != nil {
			return nil, err
		}
	}
	return rep, nil
}

// num reads a numeric event field; JSON unmarshals every number into
// float64, but be liberal in what we accept.
func num(fields map[string]any, key string) (float64, bool) {
	switch v := fields[key].(type) {
	case float64:
		return v, true
	case int:
		return float64(v), true
	case json.Number:
		f, err := v.Float64()
		return f, err == nil
	}
	return 0, false
}

// str reads a string event field.
func str(fields map[string]any, key string) string {
	s, _ := fields[key].(string)
	return s
}

// Analyze reduces an event stream to a Report.
func Analyze(r io.Reader) (*Report, error) {
	rep := &Report{}
	phases := map[string]*PhaseStat{}
	phase := func(name string) *PhaseStat {
		p := phases[name]
		if p == nil {
			p = &PhaseStat{Phase: name}
			phases[name] = p
		}
		return p
	}
	observe := func(p *PhaseStat, ms float64) {
		p.Count++
		p.TotalMS += ms
		if ms > p.MaxMS {
			p.MaxMS = ms
		}
	}

	models := map[string]*FaultModelStat{}
	modelStat := func(fields map[string]any) *FaultModelStat {
		name, ok := fields["fault_model"].(string)
		if !ok || name == "" {
			return nil
		}
		m := models[name]
		if m == nil {
			m = &FaultModelStat{Model: name}
			models[name] = m
		}
		return m
	}

	// campaign_finished carries duration but not the sample count, which
	// lives on the matching campaign_started; campaigns from concurrent
	// environments interleave, so pair them by pattern.
	samplesByPattern := map[string]float64{}
	batchPaths := map[[2]string]int{}
	var sweep *SweepStat
	sweepModels := map[string]*SweepModelStat{}
	var firstTS, lastTS time.Time
	var evalHits, evalLookups uint64
	var sessionCache *CacheStat
	var throughput []ThroughputPoint
	workers := 0.0

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		raw := trimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var ev obs.Event
		if err := json.Unmarshal(raw, &ev); err != nil {
			return nil, fmt.Errorf("line %d: %v", line, err)
		}
		rep.Events++
		if ts, err := time.Parse(time.RFC3339Nano, ev.TS); err == nil {
			if firstTS.IsZero() {
				firstTS = ts
			}
			lastTS = ts
		}
		f := ev.Fields
		switch ev.Event {
		case obs.EventRunStarted:
			if b, ok := f["binary"].(string); ok {
				rep.Binary = b
			}
			if c, ok := f["cipher"].(string); ok {
				rep.Cipher = c
			}
		case obs.EventJobStarted:
			// Job-server logs identify their target on the attempt
			// marker; lift the cipher so per-job reports carry it like
			// CLI runs do.
			if c := str(f, "cipher"); c != "" && rep.Cipher == "" {
				rep.Cipher = c
			}
		case obs.EventJobUsage:
			u := &JobUsage{
				ID:         str(f, "id"),
				Tenant:     str(f, "tenant"),
				Kind:       str(f, "kind"),
				Cipher:     str(f, "cipher"),
				FaultModel: str(f, "fault_model"),
				State:      str(f, "state"),
			}
			if v, ok := num(f, "attempts"); ok {
				u.Attempts = int(v)
			}
			u.WallSeconds, _ = num(f, "wall_seconds")
			u.CPUSeconds, _ = num(f, "cpu_seconds")
			u.QueueSeconds, _ = num(f, "queue_seconds")
			if v, ok := num(f, "episodes"); ok {
				u.Episodes = uint64(v)
			}
			if v, ok := num(f, "cells"); ok {
				u.Cells = uint64(v)
			}
			if v, ok := num(f, "traces"); ok {
				u.Traces = uint64(v)
			}
			if v, ok := num(f, "peak_heap_bytes"); ok {
				u.PeakHeapBytes = uint64(v)
			}
			rep.Usage = u // last line wins: usage is cumulative per attempt
		case obs.EventCampaignStarted:
			if p, ok := f["pattern"].(string); ok {
				if s, ok := num(f, "samples"); ok {
					samplesByPattern[p] = s
				}
			}
			if w, ok := num(f, "workers"); ok && w > workers {
				workers = w
			}
			if bp, ok := f["batch_path"].(string); ok && bp != "" {
				cipher, _ := f["cipher"].(string)
				batchPaths[[2]string{cipher, bp}]++
			}
		case obs.EventCampaignFinished:
			ms, _ := num(f, "duration_ms")
			observe(phase("campaign"), ms)
			if m := modelStat(f); m != nil {
				m.Campaigns++
				m.CampaignMeanMS += ms // running total; divided below
				if ms > m.CampaignMaxMS {
					m.CampaignMaxMS = ms
				}
			}
			if p, ok := f["pattern"].(string); ok && ms > 0 {
				if s, ok := samplesByPattern[p]; ok {
					ts, err := time.Parse(time.RFC3339Nano, ev.TS)
					elapsed := 0.0
					if err == nil && !firstTS.IsZero() {
						elapsed = ts.Sub(firstTS).Seconds()
					}
					throughput = append(throughput, ThroughputPoint{
						ElapsedSeconds: elapsed,
						TracesPerSec:   s / (ms / 1e3),
						Campaigns:      1,
					})
				}
			}
		case obs.EventOracleEval:
			evalLookups++
			if c, ok := f["cached"].(bool); ok && c {
				evalHits++
			}
			if ms, ok := num(f, "duration_ms"); ok {
				observe(phase("oracle_eval"), ms)
			}
		case obs.EventEpisode:
			rep.Episodes++
			leaky := false
			if l, ok := f["leaky"].(bool); ok && l {
				rep.LeakyEpisodes++
				leaky = true
			}
			if t, ok := num(f, "t"); ok && t > rep.BestT {
				rep.BestT = t
			}
			if m := modelStat(f); m != nil {
				m.Episodes++
				if leaky {
					m.LeakyEpisodes++
				}
			}
		case obs.EventPPOUpdate:
			if ms, ok := num(f, "duration_ms"); ok {
				observe(phase("ppo_update"), ms)
			}
		case obs.EventSessionFinished:
			if ms, ok := num(f, "duration_ms"); ok {
				observe(phase("session"), ms)
			}
			if epm, ok := num(f, "episodes_per_min"); ok {
				rep.EpisodesPerMin = epm
			}
			hits, _ := num(f, "cache_hits")
			misses, _ := num(f, "cache_misses")
			if hits+misses > 0 {
				sessionCache = &CacheStat{
					Lookups: uint64(hits + misses),
					Hits:    uint64(hits),
				}
			}
		case obs.EventSweepStarted:
			sweep = &SweepStat{}
			if n, ok := num(f, "cells"); ok {
				sweep.Cells = int(n)
			}
			if n, ok := num(f, "resumed_shards"); ok {
				sweep.ResumedShards = int(n)
			}
		case obs.EventSweepCell:
			if sweep == nil {
				sweep = &SweepStat{}
			}
			sweep.CellEvents++
			exploitable := false
			if e, ok := f["exploitable"].(bool); ok && e {
				exploitable = true
			}
			t, _ := num(f, "t")
			if name, ok := f["model"].(string); ok && name != "" {
				m := sweepModels[name]
				if m == nil {
					m = &SweepModelStat{Model: name}
					sweepModels[name] = m
				}
				m.Cells++
				if exploitable {
					m.Exploitable++
				}
				if t > m.MaxT {
					m.MaxT = t
				}
			}
			// Provisional totals; sweep_finished overwrites them with the
			// authoritative atlas summary (which includes resumed cells).
			if exploitable {
				sweep.Exploitable++
			}
			if t > sweep.MaxT {
				sweep.MaxT = t
			}
		case obs.EventSweepFinished:
			if sweep == nil {
				sweep = &SweepStat{}
			}
			sweep.Finished = true
			if n, ok := num(f, "cells"); ok {
				sweep.Cells = int(n)
			}
			if n, ok := num(f, "exploitable"); ok {
				sweep.Exploitable = int(n)
			}
			if t, ok := num(f, "max_t"); ok {
				sweep.MaxT = t
			}
			if ms, ok := num(f, "duration_ms"); ok && ms > 0 {
				sweep.DurationSeconds = ms / 1e3
				sweep.CellsPerSec = float64(sweep.Cells) / sweep.DurationSeconds
			}
		case obs.EventEmitterStats:
			rep.EmitterStatsSeen = true
			if d, ok := num(f, "dropped"); ok {
				rep.EventsDropped = uint64(d)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if rep.Events == 0 {
		return nil, errors.New("no events found")
	}

	if !firstTS.IsZero() {
		rep.WallClock = lastTS.Sub(firstTS).Seconds()
	}
	if rep.Episodes > 0 {
		rep.LeakyRate = float64(rep.LeakyEpisodes) / float64(rep.Episodes)
		if rep.EpisodesPerMin == 0 && rep.WallClock > 0 {
			rep.EpisodesPerMin = float64(rep.Episodes) / (rep.WallClock / 60)
		}
	}

	// Cache: the session's own totals are authoritative (they include
	// lookups made before event emission was attached); fall back to
	// counting oracle_eval events.
	if sessionCache != nil {
		rep.Cache = *sessionCache
	} else {
		rep.Cache = CacheStat{Lookups: evalLookups, Hits: evalHits}
	}
	if rep.Cache.Lookups > 0 {
		rep.Cache.HitRate = float64(rep.Cache.Hits) / float64(rep.Cache.Lookups)
	}

	for _, p := range phases {
		if p.Count > 0 {
			p.MeanMS = p.TotalMS / float64(p.Count)
		}
		rep.Phases = append(rep.Phases, *p)
	}
	sort.Slice(rep.Phases, func(i, j int) bool { return rep.Phases[i].TotalMS > rep.Phases[j].TotalMS })

	for _, m := range models {
		if m.Campaigns > 0 {
			m.CampaignMeanMS /= float64(m.Campaigns)
		}
		if m.Episodes > 0 {
			m.LeakyRate = float64(m.LeakyEpisodes) / float64(m.Episodes)
		}
		rep.FaultModels = append(rep.FaultModels, *m)
	}
	sort.Slice(rep.FaultModels, func(i, j int) bool { return rep.FaultModels[i].Model < rep.FaultModels[j].Model })

	for key, n := range batchPaths {
		rep.BatchPaths = append(rep.BatchPaths, BatchPathStat{Cipher: key[0], Path: key[1], Campaigns: n})
	}
	sort.Slice(rep.BatchPaths, func(i, j int) bool {
		if rep.BatchPaths[i].Cipher != rep.BatchPaths[j].Cipher {
			return rep.BatchPaths[i].Cipher < rep.BatchPaths[j].Cipher
		}
		return rep.BatchPaths[i].Path < rep.BatchPaths[j].Path
	})

	if sweep != nil {
		if sweep.Cells > 0 {
			sweep.ExploitableRate = float64(sweep.Exploitable) / float64(sweep.Cells)
		}
		for _, m := range sweepModels {
			sweep.ByModel = append(sweep.ByModel, *m)
		}
		sort.Slice(sweep.ByModel, func(i, j int) bool { return sweep.ByModel[i].Model < sweep.ByModel[j].Model })
		rep.Sweep = sweep
	}

	rep.Throughput = bucketThroughput(throughput, rep.WallClock)
	rep.Warnings = reportWarnings(rep)
	rep.workers = workers
	return rep, nil
}

// trimSpace trims ASCII whitespace without converting to string first.
func trimSpace(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t' || b[0] == '\r' || b[0] == '\n') {
		b = b[1:]
	}
	for len(b) > 0 {
		c := b[len(b)-1]
		if c != ' ' && c != '\t' && c != '\r' && c != '\n' {
			break
		}
		b = b[:len(b)-1]
	}
	return b
}

// bucketThroughput folds per-campaign throughput points into at most ten
// elapsed-time buckets so "traces/sec over time" stays readable for long
// runs.
func bucketThroughput(points []ThroughputPoint, wall float64) []ThroughputPoint {
	if len(points) == 0 {
		return nil
	}
	const maxBuckets = 10
	width := wall / maxBuckets
	if width <= 0 {
		// Sub-resolution run: everything lands in one bucket.
		width = math.Inf(1)
	}
	type acc struct {
		sum float64
		n   int
	}
	buckets := map[int]*acc{}
	for _, p := range points {
		i := 0
		if !math.IsInf(width, 1) {
			i = int(p.ElapsedSeconds / width)
			if i >= maxBuckets {
				i = maxBuckets - 1
			}
		}
		a := buckets[i]
		if a == nil {
			a = &acc{}
			buckets[i] = a
		}
		a.sum += p.TracesPerSec
		a.n++
	}
	var out []ThroughputPoint
	for i, a := range buckets {
		elapsed := 0.0
		if !math.IsInf(width, 1) {
			elapsed = (float64(i) + 0.5) * width
		}
		out = append(out, ThroughputPoint{
			ElapsedSeconds: elapsed,
			TracesPerSec:   a.sum / float64(a.n),
			Campaigns:      a.n,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ElapsedSeconds < out[j].ElapsedSeconds })
	return out
}

// reportWarnings derives data-quality notes a reader should see before
// trusting the numbers.
func reportWarnings(rep *Report) []string {
	var w []string
	if !rep.EmitterStatsSeen {
		w = append(w, "no emitter_stats line: the run ended without closing its event log (crash or kill -9); counts may be incomplete")
	}
	if rep.EventsDropped > 0 {
		w = append(w, fmt.Sprintf("%d events were dropped by the emitter; the log is incomplete", rep.EventsDropped))
	}
	return w
}

// chromeTrace mirrors the document shape internal/obs/trace exports.
type chromeTrace struct {
	TraceEvents []struct {
		Name string  `json:"name"`
		Ph   string  `json:"ph"`
		TS   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
	} `json:"traceEvents"`
}

// analyzeTrace parses a Chrome trace-event file, aggregates its complete
// ("X") events by span name into rep.Spans, and estimates worker
// utilization from shard spans when the event log recorded a worker
// count.
func analyzeTrace(rep *Report, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var tr chromeTrace
	if err := json.Unmarshal(data, &tr); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	agg := map[string]*SpanStat{}
	var shardUS, assessUS float64
	for _, ev := range tr.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		s := agg[ev.Name]
		if s == nil {
			s = &SpanStat{Name: ev.Name}
			agg[ev.Name] = s
		}
		s.Count++
		ms := ev.Dur / 1e3
		s.TotalMS += ms
		if ms > s.MaxMS {
			s.MaxMS = ms
		}
		switch ev.Name {
		case "shard":
			shardUS += ev.Dur
		case "assess":
			assessUS += ev.Dur
		}
	}
	if len(agg) == 0 {
		return fmt.Errorf("%s: no complete (\"X\") span events", path)
	}
	for _, s := range agg {
		s.MeanMS = s.TotalMS / float64(s.Count)
		rep.Spans = append(rep.Spans, *s)
	}
	sort.Slice(rep.Spans, func(i, j int) bool { return rep.Spans[i].TotalMS > rep.Spans[j].TotalMS })
	if rep.workers > 0 && assessUS > 0 {
		rep.WorkerUtilization = shardUS / (assessUS * rep.workers)
	}
	return nil
}
