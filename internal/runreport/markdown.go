package runreport

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/report"
)

// renderFenced wraps the fixed-width table in a code fence so it renders
// verbatim in markdown.
func renderFenced(w io.Writer, tb *report.Table) {
	fmt.Fprintln(w, "```")
	tb.Render(w)
	fmt.Fprintln(w, "```")
	fmt.Fprintln(w)
}

// WriteMarkdown renders the report as GitHub-flavored markdown using the
// shared table renderer.
func WriteMarkdown(w io.Writer, rep *Report) {
	fmt.Fprintf(w, "# Run report: %s\n\n", rep.Source)
	if rep.Binary != "" {
		fmt.Fprintf(w, "binary `%s`", rep.Binary)
		if rep.Cipher != "" {
			fmt.Fprintf(w, ", cipher `%s`", rep.Cipher)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%d events over %.2fs wall clock\n\n", rep.Events, rep.WallClock)
	for _, warn := range rep.Warnings {
		fmt.Fprintf(w, "> **warning:** %s\n\n", warn)
	}

	if u := rep.Usage; u != nil {
		fmt.Fprintf(w, "job cost: %.2fs wall, %.2fs cpu, %.2fs queued", u.WallSeconds, u.CPUSeconds, u.QueueSeconds)
		if u.Attempts > 1 {
			fmt.Fprintf(w, " over %d attempts", u.Attempts)
		}
		if u.PeakHeapBytes > 0 {
			fmt.Fprintf(w, ", peak heap +%.1f MiB", float64(u.PeakHeapBytes)/(1<<20))
		}
		fmt.Fprintln(w)
		fmt.Fprintln(w)
	}

	if len(rep.Phases) > 0 {
		tb := report.NewTable("phase latency", "phase", "count", "total ms", "mean ms", "max ms")
		for _, p := range rep.Phases {
			tb.AddRow(p.Phase, p.Count,
				fmt.Sprintf("%.1f", p.TotalMS),
				fmt.Sprintf("%.2f", p.MeanMS),
				fmt.Sprintf("%.2f", p.MaxMS))
		}
		renderFenced(w, tb)
	}

	if len(rep.Throughput) > 0 {
		tb := report.NewTable("throughput over time", "elapsed s", "traces/sec", "campaigns")
		for _, p := range rep.Throughput {
			tb.AddRow(fmt.Sprintf("%.1f", p.ElapsedSeconds),
				fmt.Sprintf("%.0f", p.TracesPerSec), p.Campaigns)
		}
		renderFenced(w, tb)
	}

	if rep.Cache.Lookups > 0 {
		fmt.Fprintf(w, "oracle cache: %d hits / %d lookups (%.0f%% hit rate)\n\n",
			rep.Cache.Hits, rep.Cache.Lookups, 100*rep.Cache.HitRate)
	}
	if rep.Episodes > 0 {
		fmt.Fprintf(w, "episodes: %d total, %d exploitable (%.1f%%), best t = %.1f",
			rep.Episodes, rep.LeakyEpisodes, 100*rep.LeakyRate, rep.BestT)
		if rep.EpisodesPerMin > 0 {
			fmt.Fprintf(w, ", %.0f episodes/min", rep.EpisodesPerMin)
		}
		fmt.Fprintln(w)
		fmt.Fprintln(w)
	}

	if len(rep.BatchPaths) > 0 {
		total, kernel := 0, 0
		var parts []string
		for _, b := range rep.BatchPaths {
			total += b.Campaigns
			if b.Path == "kernel" {
				kernel += b.Campaigns
			}
			parts = append(parts, fmt.Sprintf("%s %s x%d", b.Cipher, b.Path, b.Campaigns))
		}
		fmt.Fprintf(w, "batch coverage: %d/%d campaigns on the kernel path (%s)\n\n",
			kernel, total, strings.Join(parts, ", "))
	}

	if s := rep.Sweep; s != nil {
		fmt.Fprintf(w, "sweep: %d cells, %d exploitable (%.1f%%), max t = %.1f",
			s.Cells, s.Exploitable, 100*s.ExploitableRate, s.MaxT)
		if s.CellsPerSec > 0 {
			fmt.Fprintf(w, ", %.1f cells/sec over %.2fs", s.CellsPerSec, s.DurationSeconds)
		}
		if s.ResumedShards > 0 {
			fmt.Fprintf(w, " (%d shards resumed from checkpoint)", s.ResumedShards)
		}
		if !s.Finished {
			fmt.Fprint(w, " — INTERRUPTED before sweep_finished")
		}
		fmt.Fprintln(w)
		fmt.Fprintln(w)
		if len(s.ByModel) > 0 {
			tb := report.NewTable("sweep cells per fault model", "model", "cells", "exploitable", "rate", "max t")
			for _, m := range s.ByModel {
				rate := 0.0
				if m.Cells > 0 {
					rate = float64(m.Exploitable) / float64(m.Cells)
				}
				tb.AddRow(m.Model, m.Cells, m.Exploitable,
					fmt.Sprintf("%.1f%%", 100*rate),
					fmt.Sprintf("%.1f", m.MaxT))
			}
			renderFenced(w, tb)
		}
	}

	if len(rep.FaultModels) > 0 {
		tb := report.NewTable("per fault model", "model", "episodes", "exploitable", "rate", "campaigns", "mean ms", "max ms")
		for _, m := range rep.FaultModels {
			tb.AddRow(m.Model, m.Episodes, m.LeakyEpisodes,
				fmt.Sprintf("%.1f%%", 100*m.LeakyRate), m.Campaigns,
				fmt.Sprintf("%.2f", m.CampaignMeanMS),
				fmt.Sprintf("%.2f", m.CampaignMaxMS))
		}
		renderFenced(w, tb)
	}

	if len(rep.Spans) > 0 {
		tb := report.NewTable("trace spans", "span", "count", "total ms", "mean ms", "max ms")
		for _, s := range rep.Spans {
			tb.AddRow(s.Name, s.Count,
				fmt.Sprintf("%.1f", s.TotalMS),
				fmt.Sprintf("%.2f", s.MeanMS),
				fmt.Sprintf("%.2f", s.MaxMS))
		}
		renderFenced(w, tb)
	}
	if rep.WorkerUtilization > 0 {
		fmt.Fprintf(w, "worker utilization (from trace): %.0f%%\n", 100*rep.WorkerUtilization)
	}
	if rep.EmitterStatsSeen && rep.EventsDropped == 0 {
		fmt.Fprintln(w, "event log complete: emitter reported 0 dropped events")
	}
}
