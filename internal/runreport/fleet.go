package runreport

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/report"
)

// FleetReport folds a directory of per-job JSONL event logs (the job
// server's DataDir, or a copy of its *.events.jsonl files) into one
// fleet-level cost view: who spent what (per-tenant cost table), how
// fast each cipher ran (per-cipher throughput), and how much of the
// fleet's time was queueing versus running. Logs without a job_usage
// line (still running, or not a job log at all) are counted in Skipped
// rather than silently ignored.
type FleetReport struct {
	Dir     string       `json:"dir"`
	Jobs    []JobUsage   `json:"jobs"`
	Tenants []TenantCost `json:"tenants"`
	Ciphers []CipherCost `json:"ciphers"`

	TotalWallSeconds  float64 `json:"total_wall_seconds"`
	TotalCPUSeconds   float64 `json:"total_cpu_seconds"`
	TotalQueueSeconds float64 `json:"total_queue_seconds"`
	Skipped           int     `json:"skipped,omitempty"`
}

// TenantCost is one tenant's aggregated job cost.
type TenantCost struct {
	Tenant       string  `json:"tenant"`
	Jobs         int     `json:"jobs"`
	WallSeconds  float64 `json:"wall_seconds"`
	CPUSeconds   float64 `json:"cpu_seconds"`
	QueueSeconds float64 `json:"queue_seconds"`
	Episodes     uint64  `json:"episodes,omitempty"`
	Cells        uint64  `json:"cells,omitempty"`
	Traces       uint64  `json:"traces,omitempty"`
}

// CipherCost is one cipher's aggregated work and throughput across the
// fleet's jobs.
type CipherCost struct {
	Cipher      string  `json:"cipher"`
	Jobs        int     `json:"jobs"`
	WallSeconds float64 `json:"wall_seconds"`
	Episodes    uint64  `json:"episodes,omitempty"`
	Cells       uint64  `json:"cells,omitempty"`
	Traces      uint64  `json:"traces,omitempty"`
	// TracesPerSec / CellsPerSec are work over in-worker wall time.
	TracesPerSec float64 `json:"traces_per_sec,omitempty"`
	CellsPerSec  float64 `json:"cells_per_sec,omitempty"`
}

// AnalyzeFleet scans every *.jsonl file under dir (non-recursively) and
// builds the fleet report from each log's final job_usage line.
func AnalyzeFleet(dir string) (*FleetReport, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	fr := &FleetReport{Dir: dir}
	for _, p := range paths {
		u, err := lastUsage(p)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		if u == nil {
			fr.Skipped++
			continue
		}
		fr.Jobs = append(fr.Jobs, *u)
	}
	if len(fr.Jobs) == 0 {
		return nil, fmt.Errorf("%s: no job_usage events in any of %d log(s)", dir, len(paths))
	}

	tenants := map[string]*TenantCost{}
	ciphers := map[string]*CipherCost{}
	for _, u := range fr.Jobs {
		fr.TotalWallSeconds += u.WallSeconds
		fr.TotalCPUSeconds += u.CPUSeconds
		fr.TotalQueueSeconds += u.QueueSeconds

		t := tenants[u.Tenant]
		if t == nil {
			t = &TenantCost{Tenant: u.Tenant}
			tenants[u.Tenant] = t
		}
		t.Jobs++
		t.WallSeconds += u.WallSeconds
		t.CPUSeconds += u.CPUSeconds
		t.QueueSeconds += u.QueueSeconds
		t.Episodes += u.Episodes
		t.Cells += u.Cells
		t.Traces += u.Traces

		c := ciphers[u.Cipher]
		if c == nil {
			c = &CipherCost{Cipher: u.Cipher}
			ciphers[u.Cipher] = c
		}
		c.Jobs++
		c.WallSeconds += u.WallSeconds
		c.Episodes += u.Episodes
		c.Cells += u.Cells
		c.Traces += u.Traces
	}
	for _, t := range tenants {
		fr.Tenants = append(fr.Tenants, *t)
	}
	// Most expensive tenant first: the report answers "who is burning
	// the fleet", so order by wall cost.
	sort.Slice(fr.Tenants, func(i, j int) bool {
		if fr.Tenants[i].WallSeconds != fr.Tenants[j].WallSeconds {
			return fr.Tenants[i].WallSeconds > fr.Tenants[j].WallSeconds
		}
		return fr.Tenants[i].Tenant < fr.Tenants[j].Tenant
	})
	for _, c := range ciphers {
		if c.WallSeconds > 0 {
			c.TracesPerSec = float64(c.Traces) / c.WallSeconds
			c.CellsPerSec = float64(c.Cells) / c.WallSeconds
		}
		fr.Ciphers = append(fr.Ciphers, *c)
	}
	sort.Slice(fr.Ciphers, func(i, j int) bool { return fr.Ciphers[i].Cipher < fr.Ciphers[j].Cipher })
	return fr, nil
}

// lastUsage extracts the final job_usage record of one log, nil when the
// log has none.
func lastUsage(path string) (*JobUsage, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rep, err := Analyze(f)
	if err != nil {
		return nil, err
	}
	if rep.Usage == nil {
		return nil, nil
	}
	if rep.Usage.Cipher == "" {
		rep.Usage.Cipher = rep.Cipher
	}
	return rep.Usage, nil
}

// WriteFleetMarkdown renders the fleet report as markdown.
func WriteFleetMarkdown(w io.Writer, fr *FleetReport) {
	fmt.Fprintf(w, "# Fleet report: %s\n\n", fr.Dir)
	fmt.Fprintf(w, "%d job(s)", len(fr.Jobs))
	if fr.Skipped > 0 {
		fmt.Fprintf(w, " (%d log(s) without usage records skipped)", fr.Skipped)
	}
	fmt.Fprintf(w, ": %.2fs wall, %.2fs cpu, %.2fs queued\n\n",
		fr.TotalWallSeconds, fr.TotalCPUSeconds, fr.TotalQueueSeconds)

	tb := report.NewTable("per-tenant cost", "tenant", "jobs", "wall s", "cpu s", "queue s", "episodes", "cells", "traces")
	for _, t := range fr.Tenants {
		name := t.Tenant
		if name == "" {
			name = "(anonymous)"
		}
		tb.AddRow(name, t.Jobs,
			fmt.Sprintf("%.2f", t.WallSeconds),
			fmt.Sprintf("%.2f", t.CPUSeconds),
			fmt.Sprintf("%.2f", t.QueueSeconds),
			t.Episodes, t.Cells, t.Traces)
	}
	renderFenced(w, tb)

	tb = report.NewTable("per-cipher throughput", "cipher", "jobs", "wall s", "traces/sec", "cells/sec", "episodes")
	for _, c := range fr.Ciphers {
		name := c.Cipher
		if name == "" {
			name = "(unknown)"
		}
		tb.AddRow(name, c.Jobs,
			fmt.Sprintf("%.2f", c.WallSeconds),
			fmt.Sprintf("%.0f", c.TracesPerSec),
			fmt.Sprintf("%.1f", c.CellsPerSec),
			c.Episodes)
	}
	renderFenced(w, tb)

	// Queue-wait vs run-time: how much of the fleet's elapsed effort was
	// spent waiting for a worker rather than computing.
	busy := fr.TotalWallSeconds + fr.TotalQueueSeconds
	if busy > 0 {
		fmt.Fprintf(w, "queue wait vs run time: %.2fs queued vs %.2fs running (%.1f%% of job time spent waiting)\n",
			fr.TotalQueueSeconds, fr.TotalWallSeconds, 100*fr.TotalQueueSeconds/busy)
	}
}
