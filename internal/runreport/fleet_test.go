package runreport

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func usageLine(id, tenant, cipher string, attempts int, wall, cpu, queue float64, traces uint64) string {
	return fmt.Sprintf(`{"event":"job_usage","fields":{"id":%q,"tenant":%q,"kind":"discover","cipher":%q,`+
		`"fault_model":"default","state":"done","attempts":%d,"wall_seconds":%g,`+
		`"cpu_seconds":%g,"queue_seconds":%g,"traces":%d}}`,
		id, tenant, cipher, attempts, wall, cpu, queue, traces)
}

// TestAnalyzeUsageLastWins: the job_usage event is cumulative per
// attempt, so Analyze keeps the final line of a log as the job's cost.
func TestAnalyzeUsageLastWins(t *testing.T) {
	log := `{"event":"job_started","fields":{"id":"j-1","cipher":"gift64"}}
` + usageLine("j-1", "t1", "gift64", 1, 3, 2, 1, 100) + `
` + usageLine("j-1", "t1", "gift64", 2, 8, 6, 1.5, 250) + `
`
	rep, err := Analyze(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	u := rep.Usage
	if u == nil {
		t.Fatal("no usage parsed")
	}
	if u.Attempts != 2 || u.WallSeconds != 8 || u.Traces != 250 {
		t.Fatalf("usage = %+v, want the second (cumulative) line", u)
	}
	if rep.Cipher != "gift64" {
		t.Errorf("cipher = %q, want lifted from job_started", rep.Cipher)
	}
}

// TestAnalyzeFleet folds a directory of per-job logs: aggregation per
// tenant and cipher, wall-cost ordering, throughput rates, and skipped
// logs without usage records.
func TestAnalyzeFleet(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Job a: two cumulative usage lines — only the last one counts.
	write("a.jsonl",
		usageLine("j-a", "t1", "gift64", 1, 4, 3, 1, 100)+"\n"+
			usageLine("j-a", "t1", "gift64", 2, 10, 8, 2, 500)+"\n")
	write("b.jsonl", usageLine("j-b", "t1", "gift64", 1, 6, 5, 1, 300)+"\n")
	write("c.jsonl", usageLine("j-c", "t2", "speck64", 1, 5, 4, 0.5, 200)+"\n")
	// A log without any usage record (job still queued/running elsewhere).
	write("d.jsonl", `{"event":"job_started","fields":{"id":"j-d"}}`+"\n")
	// Not a .jsonl file: ignored entirely.
	write("notes.txt", "irrelevant")

	fr, err := AnalyzeFleet(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Jobs) != 3 || fr.Skipped != 1 {
		t.Fatalf("jobs = %d skipped = %d, want 3/1", len(fr.Jobs), fr.Skipped)
	}
	if fr.TotalWallSeconds != 21 || fr.TotalQueueSeconds != 3.5 {
		t.Errorf("totals wall %v queue %v, want 21 / 3.5", fr.TotalWallSeconds, fr.TotalQueueSeconds)
	}

	// t1 burned more wall time, so it leads the cost table.
	if len(fr.Tenants) != 2 || fr.Tenants[0].Tenant != "t1" {
		t.Fatalf("tenants = %+v, want t1 first", fr.Tenants)
	}
	if fr.Tenants[0].Jobs != 2 || fr.Tenants[0].WallSeconds != 16 || fr.Tenants[0].Traces != 800 {
		t.Errorf("t1 = %+v", fr.Tenants[0])
	}

	// Ciphers sort by name; throughput is work over in-worker wall time.
	if len(fr.Ciphers) != 2 || fr.Ciphers[0].Cipher != "gift64" || fr.Ciphers[1].Cipher != "speck64" {
		t.Fatalf("ciphers = %+v", fr.Ciphers)
	}
	if got, want := fr.Ciphers[0].TracesPerSec, 800.0/16; got != want {
		t.Errorf("gift64 traces/sec = %v, want %v", got, want)
	}

	var md strings.Builder
	WriteFleetMarkdown(&md, fr)
	for _, want := range []string{
		"# Fleet report:",
		"per-tenant cost",
		"per-cipher throughput",
		"queue wait vs run time",
		"1 log(s) without usage records skipped",
	} {
		if !strings.Contains(md.String(), want) {
			t.Errorf("fleet markdown missing %q", want)
		}
	}
}

// TestAnalyzeFleetNoUsage: a directory with logs but no usage records is
// an error, not an empty report.
func TestAnalyzeFleetNoUsage(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.jsonl"),
		[]byte(`{"event":"job_started","fields":{"id":"j-a"}}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := AnalyzeFleet(dir); err == nil {
		t.Fatal("AnalyzeFleet succeeded on a usage-free directory")
	}
}
