// Package ppo implements Proximal Policy Optimization (Schulman et al.,
// 2017) for discrete action spaces: clipped surrogate objective,
// generalized advantage estimation (provided by package rl), entropy
// bonus, value-function loss, minibatch epochs, advantage normalization
// and global gradient clipping. This is the algorithm the paper runs via
// Stable-Baselines3; defaults below mirror SB3's MlpPolicy defaults.
package ppo

import (
	"fmt"
	"math"

	"repro/internal/nn"
	"repro/internal/prng"
	"repro/internal/rl"
)

// Config holds PPO hyperparameters. Zero values select defaults.
type Config struct {
	// Hidden sizes of both the policy and value networks (default
	// [64, 64], SB3's MlpPolicy).
	Hidden []int
	// LearningRate for Adam (default 3e-4).
	LearningRate float64
	// ClipRange epsilon of the surrogate objective (default 0.2).
	ClipRange float64
	// Epochs over each rollout batch (default 10).
	Epochs int
	// MinibatchSize (default 64).
	MinibatchSize int
	// EntropyCoef weights the entropy bonus (default 0.01; exploration
	// matters in the fault-pattern MDP because rewards are sparse).
	EntropyCoef float64
	// ValueCoef weights the value loss (default 0.5).
	ValueCoef float64
	// MaxGradNorm clips the global gradient norm (default 0.5).
	MaxGradNorm float64
	// Activation for hidden layers (default tanh, as in SB3).
	Activation nn.Activation
	// ExplorationFloor mixes an ε-uniform distribution into the policy:
	// π = (1-ε)·softmax(logits) + ε/K. Sampling, log-probabilities,
	// ratios and gradients all use the mixture exactly, so PPO remains
	// on-policy. A floor of ~1/T keeps roughly one exploratory "stray"
	// action per T-step episode alive even after the policy has
	// sharpened, which is what lets the fault pattern keep growing
	// (each accepted stray multiplies the terminal reward by e).
	// Zero disables the floor.
	ExplorationFloor float64
	// BootstrapSpike, when non-zero, adds a logit spike of this size to
	// one uniformly-chosen action via the policy head's bias, making the
	// initial policy peaked instead of uniform. In the fault-pattern MDP
	// a peaked policy repeats its preferred bit (repeats are no-ops), so
	// early episodes are single-bit patterns — the paper's Fig. 4 shows
	// exactly this regime (~600 single-bit models in the first 1K
	// episodes), which a uniform initial policy cannot produce: uniform
	// 128-step episodes touch ~80 scattered bits and never leak, leaving
	// PPO without any reward gradient to start from.
	BootstrapSpike float64
}

func (c *Config) setDefaults() {
	if len(c.Hidden) == 0 {
		c.Hidden = []int{64, 64}
	}
	if c.LearningRate == 0 {
		c.LearningRate = 3e-4
	}
	if c.ClipRange == 0 {
		c.ClipRange = 0.2
	}
	if c.Epochs == 0 {
		c.Epochs = 10
	}
	if c.MinibatchSize == 0 {
		c.MinibatchSize = 64
	}
	if c.EntropyCoef == 0 {
		c.EntropyCoef = 0.01
	}
	if c.ValueCoef == 0 {
		c.ValueCoef = 0.5
	}
	if c.MaxGradNorm == 0 {
		c.MaxGradNorm = 0.5
	}
}

// Agent is a PPO agent with separate policy and value networks.
type Agent struct {
	cfg    Config
	policy *nn.MLP // obs -> action logits
	value  *nn.MLP // obs -> scalar value
	pOpt   *nn.Adam
	vOpt   *nn.Adam
	rng    *prng.Source
	raw    []float64 // scratch: softmax of logits
	probs  []float64 // scratch: mixture distribution actually played
}

var _ rl.Agent = (*Agent)(nil)

// New creates a PPO agent for the given observation width and number of
// discrete actions.
func New(obsSize, numActions int, cfg Config, rng *prng.Source) *Agent {
	cfg.setDefaults()
	pSizes := append(append([]int{obsSize}, cfg.Hidden...), numActions)
	vSizes := append(append([]int{obsSize}, cfg.Hidden...), 1)
	a := &Agent{
		cfg:    cfg,
		policy: nn.NewMLP(pSizes, cfg.Activation, rng.Split()),
		value:  nn.NewMLP(vSizes, cfg.Activation, rng.Split()),
		rng:    rng,
		raw:    make([]float64, numActions),
		probs:  make([]float64, numActions),
	}
	// Small policy head => near-uniform initial policy (standard PPO
	// initialization), optionally sharpened by a bootstrap spike on one
	// random action (see Config.BootstrapSpike).
	a.policy.OutputLayer().ScaleWeights(0.01)
	if cfg.BootstrapSpike > 0 {
		out := a.policy.OutputLayer()
		out.B.Val[rng.Intn(numActions)] += cfg.BootstrapSpike
	}
	a.pOpt = nn.NewAdam(a.policy.Params(), cfg.LearningRate)
	a.vOpt = nn.NewAdam(a.value.Params(), cfg.LearningRate)
	return a
}

// State is a serializable snapshot of everything mutable in an Agent:
// network weights, optimizer moments, and the action-sampling PRNG
// position. Config and architecture are not captured — a checkpoint is
// restored into an Agent freshly constructed with the same Config, and
// Restore validates the shapes match.
type State struct {
	Policy, Value [][]float64
	POpt, VOpt    nn.AdamState
	RNG           prng.State
}

// State deep-copies the agent's mutable training state.
func (a *Agent) State() State {
	return State{
		Policy: nn.ParamValues(a.policy.Params()),
		Value:  nn.ParamValues(a.value.Params()),
		POpt:   a.pOpt.State(),
		VOpt:   a.vOpt.State(),
		RNG:    a.rng.State(),
	}
}

// Restore copies a snapshot back into the agent. The agent must have been
// built with the same observation width, action count and hidden sizes as
// the one that produced the snapshot; mismatched shapes are rejected.
func (a *Agent) Restore(st State) error {
	if err := nn.SetParamValues(a.policy.Params(), st.Policy); err != nil {
		return fmt.Errorf("ppo: policy net: %w", err)
	}
	if err := nn.SetParamValues(a.value.Params(), st.Value); err != nil {
		return fmt.Errorf("ppo: value net: %w", err)
	}
	if err := a.pOpt.Restore(st.POpt); err != nil {
		return fmt.Errorf("ppo: policy optimizer: %w", err)
	}
	if err := a.vOpt.Restore(st.VOpt); err != nil {
		return fmt.Errorf("ppo: value optimizer: %w", err)
	}
	if err := a.rng.Restore(st.RNG); err != nil {
		return fmt.Errorf("ppo: %w", err)
	}
	return nil
}

// Respike moves the bootstrap spike to a fresh uniformly-chosen action:
// its policy-head bias is raised above the current maximum by the given
// spike. Discovery sessions call this when no exploitable pattern has
// been seen for a while, i.e. the current peak sits on a dead bit and the
// constant-β reward landscape offers no gradient to escape it.
func (a *Agent) Respike(spike float64) {
	out := a.policy.OutputLayer()
	maxB := out.B.Val[0]
	for _, b := range out.B.Val {
		if b > maxB {
			maxB = b
		}
	}
	out.B.Val[a.rng.Intn(out.Out)] = maxB + spike
}

// dist fills a.raw with softmax(logits) and a.probs with the played
// mixture distribution for obs.
func (a *Agent) dist(obs []float64) {
	logits := a.policy.Forward(obs)
	nn.Softmax(logits, a.raw)
	eps := a.cfg.ExplorationFloor
	k := float64(len(a.raw))
	for j, p := range a.raw {
		a.probs[j] = (1-eps)*p + eps/k
	}
}

// Act implements rl.Agent: samples from the categorical policy (with the
// exploration floor mixed in).
func (a *Agent) Act(obs []float64) (int, float64, float64) {
	a.dist(obs)
	action := nn.SampleCategorical(a.probs, a.rng)
	logp := nn.LogProb(a.probs, action)
	v := a.value.Forward(obs)[0]
	return action, logp, v
}

// ActGreedy returns the mode of the policy (used after training to read
// out the converged fault pattern).
func (a *Agent) ActGreedy(obs []float64) int {
	logits := a.policy.Forward(obs)
	return nn.Argmax(logits)
}

// Probs returns the current action distribution for obs (copy), including
// the exploration floor.
func (a *Agent) Probs(obs []float64) []float64 {
	a.dist(obs)
	return append([]float64(nil), a.probs...)
}

// Value returns the value estimate for obs.
func (a *Agent) Value(obs []float64) float64 {
	return a.value.Forward(obs)[0]
}

// Update implements rl.Agent: runs Epochs of minibatch SGD with the
// clipped surrogate objective on the batch.
func (a *Agent) Update(b *rl.Batch) rl.UpdateStats {
	b.NormalizeAdvantages()
	n := b.Len()
	var stats rl.UpdateStats
	var updates int

	pParams := a.policy.Params()
	vParams := a.value.Params()
	gradOut := make([]float64, a.policy.OutSize())

	for epoch := 0; epoch < a.cfg.Epochs; epoch++ {
		order := rl.Shuffle(n, a.rng)
		for start := 0; start < n; start += a.cfg.MinibatchSize {
			end := start + a.cfg.MinibatchSize
			if end > n {
				end = n
			}
			mb := order[start:end]
			mbN := float64(len(mb))

			nn.ZeroGrad(pParams)
			nn.ZeroGrad(vParams)
			var policyLoss, valueLoss, entropy, clipped float64

			for _, i := range mb {
				obs := b.Obs[i]
				act := b.Actions[i]
				adv := b.Advantages[i]
				oldLogp := b.LogProbs[i]

				a.dist(obs)
				logp := nn.LogProb(a.probs, act)
				ratio := math.Exp(logp - oldLogp)

				// Clipped surrogate: L = -min(r*A, clip(r)*A).
				unclipped := ratio * adv
				clipRatio := clamp(ratio, 1-a.cfg.ClipRange, 1+a.cfg.ClipRange)
				clippedObj := clipRatio * adv
				var useUnclipped bool
				if unclipped <= clippedObj {
					useUnclipped = true
				}
				if !useUnclipped {
					clipped++
				}
				policyLoss += -math.Min(unclipped, clippedObj)
				ent := nn.Entropy(a.probs)
				entropy += ent

				// Gradient wrt logits through the mixture
				// π_j = (1-ε)p_j + ε/K with p = softmax(logits):
				// dπ_j/dlogit_l = (1-ε)·p_j·(δ_jl - p_l), so
				// dlogπ_a/dlogit_l = (1-ε)·p_a·(δ_al - p_l)/π_a.
				// The clipped branch has zero policy gradient. The
				// entropy bonus adds -entCoef·dH/dlogit_l with
				// dH/dlogit_l = -(1-ε)·p_l·[(logπ_l+1) - Σ_j p_j(logπ_j+1)].
				oneMinusEps := 1 - a.cfg.ExplorationFloor
				for j := range gradOut {
					gradOut[j] = 0
				}
				if useUnclipped {
					coef := -adv * ratio / mbN * oneMinusEps * a.raw[act] /
						math.Max(a.probs[act], 1e-12)
					for j := range gradOut {
						ind := 0.0
						if j == act {
							ind = 1.0
						}
						gradOut[j] += coef * (ind - a.raw[j])
					}
				}
				var dot float64
				for j := range a.raw {
					lp := math.Log(math.Max(a.probs[j], 1e-12))
					dot += a.raw[j] * (lp + 1)
				}
				for j := range gradOut {
					lp := math.Log(math.Max(a.probs[j], 1e-12))
					dH := -oneMinusEps * a.raw[j] * ((lp + 1) - dot)
					gradOut[j] -= a.cfg.EntropyCoef * dH / mbN
				}
				a.policy.Backward(obs, gradOut)

				// Value loss: 0.5 * (V - R)^2.
				v := a.value.Forward(obs)[0]
				dv := v - b.Returns[i]
				valueLoss += 0.5 * dv * dv
				a.value.Backward(obs, []float64{a.cfg.ValueCoef * dv / mbN})
			}

			gn := nn.ClipGradNorm(pParams, a.cfg.MaxGradNorm)
			nn.ClipGradNorm(vParams, a.cfg.MaxGradNorm)
			a.pOpt.Step()
			a.vOpt.Step()

			stats.PolicyLoss += policyLoss / mbN
			stats.ValueLoss += valueLoss / mbN
			stats.Entropy += entropy / mbN
			stats.ClipFrac += clipped / mbN
			stats.GradNorm += gn
			updates++
		}
	}
	if updates > 0 {
		f := 1 / float64(updates)
		stats.PolicyLoss *= f
		stats.ValueLoss *= f
		stats.Entropy *= f
		stats.ClipFrac *= f
		stats.GradNorm *= f
	}
	return stats
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
