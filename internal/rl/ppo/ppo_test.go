package ppo

import (
	"math"
	"testing"

	"repro/internal/prng"
	"repro/internal/rl"
)

// countEnv mirrors the toy env in package rl's tests: fixed-length
// episodes, terminal reward = fraction of steps taking the good action.
type countEnv struct {
	k, t, good int
	step       int
	counts     []float64
	obs        []float64
	goodCount  int
}

func newCountEnv(k, t, good int) *countEnv {
	return &countEnv{k: k, t: t, good: good, counts: make([]float64, k), obs: make([]float64, k)}
}

func (e *countEnv) Reset() []float64 {
	e.step, e.goodCount = 0, 0
	for i := range e.counts {
		e.counts[i] = 0
	}
	copy(e.obs, e.counts)
	return e.obs
}

func (e *countEnv) Step(a int) ([]float64, float64, bool) {
	e.counts[a]++
	if a == e.good {
		e.goodCount++
	}
	e.step++
	for i := range e.obs {
		e.obs[i] = e.counts[i] / float64(e.t)
	}
	if e.step == e.t {
		return e.obs, float64(e.goodCount) / float64(e.t), true
	}
	return e.obs, 0, false
}

func (e *countEnv) ObsSize() int    { return e.k }
func (e *countEnv) NumActions() int { return e.k }

func TestInitialPolicyNearUniform(t *testing.T) {
	a := New(8, 5, Config{}, prng.New(1))
	obs := make([]float64, 8)
	probs := a.Probs(obs)
	for i, p := range probs {
		if p < 0.15 || p > 0.25 {
			t.Errorf("initial prob[%d] = %v, want near 0.2", i, p)
		}
	}
}

func TestActReturnsConsistentLogProb(t *testing.T) {
	a := New(4, 3, Config{}, prng.New(2))
	obs := []float64{0.1, 0.2, 0.3, 0.4}
	action, logp, _ := a.Act(obs)
	probs := a.Probs(obs)
	if action < 0 || action >= 3 {
		t.Fatalf("action %d out of range", action)
	}
	if diff := logp - math.Log(probs[action]); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("logp = %v, expected log of %v", logp, probs[action])
	}
}

func TestPPOLearnsSparseTerminalReward(t *testing.T) {
	// The shape that matters for the paper: reward only at episode end,
	// agent must learn to repeat one specific action. PPO should drive
	// the average return from 1/k (~0.25) to > 0.9.
	rng := prng.New(99)
	const k, tSteps, good = 4, 8, 2
	envs := make([]rl.Env, 4)
	for i := range envs {
		envs[i] = newCountEnv(k, tSteps, good)
	}
	agent := New(k, k, Config{LearningRate: 3e-3, MinibatchSize: 32}, rng.Split())
	runner := rl.NewRunner(envs, agent)

	var avg float64
	for iter := 0; iter < 60; iter++ {
		batch, eps, err := runner.CollectEpisodes(4)
		if err != nil {
			t.Fatal(err)
		}
		agent.Update(batch)
		avg = 0
		for _, ep := range eps {
			avg += ep.Return
		}
		avg /= float64(len(eps))
		if avg > 0.9 {
			break
		}
	}
	if avg < 0.9 {
		t.Errorf("PPO plateaued at avg return %.3f, want > 0.9", avg)
	}
	// The greedy policy must pick the good action from the start state.
	if a := agent.ActGreedy(make([]float64, k)); a != good {
		t.Errorf("greedy action = %d, want %d", a, good)
	}
}

func TestUpdateReportsStats(t *testing.T) {
	rng := prng.New(5)
	env := newCountEnv(3, 4, 0)
	agent := New(3, 3, Config{}, rng.Split())
	runner := rl.NewRunner([]rl.Env{env}, agent)
	batch, _, err := runner.CollectEpisodes(8)
	if err != nil {
		t.Fatal(err)
	}
	stats := agent.Update(batch)
	if stats.Entropy <= 0 {
		t.Errorf("entropy = %v, want > 0 for a stochastic policy", stats.Entropy)
	}
	if stats.ValueLoss < 0 {
		t.Errorf("value loss = %v, want >= 0", stats.ValueLoss)
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c.setDefaults()
	if c.LearningRate != 3e-4 || c.ClipRange != 0.2 || c.Epochs != 10 ||
		c.MinibatchSize != 64 || c.ValueCoef != 0.5 || c.MaxGradNorm != 0.5 {
		t.Errorf("unexpected defaults: %+v", c)
	}
	if len(c.Hidden) != 2 || c.Hidden[0] != 64 {
		t.Errorf("hidden defaults: %v", c.Hidden)
	}
}
