package ppo

import (
	"testing"

	"repro/internal/prng"
	"repro/internal/rl"
)

func makeBatch(a *Agent, rng *prng.Source, n, obsSize int) *rl.Batch {
	b := &rl.Batch{}
	for i := 0; i < n; i++ {
		obs := make([]float64, obsSize)
		for j := range obs {
			obs[j] = rng.Float64()
		}
		act, logp, val := a.Act(obs)
		b.Obs = append(b.Obs, obs)
		b.Actions = append(b.Actions, act)
		b.LogProbs = append(b.LogProbs, logp)
		b.Values = append(b.Values, val)
		b.Rewards = append(b.Rewards, rng.Float64())
		b.Dones = append(b.Dones, i%8 == 7)
		b.Advantages = append(b.Advantages, rng.NormFloat64())
		b.Returns = append(b.Returns, rng.Float64())
	}
	return b
}

// TestAgentStateRestoreRoundTrip: an agent restored mid-training must act
// and update bit-identically to the original from the snapshot on. This is
// the agent-level half of the session resume-determinism guarantee.
func TestAgentStateRestoreRoundTrip(t *testing.T) {
	const obsSize, actions = 6, 6
	cfg := Config{Hidden: []int{16}, LearningRate: 1e-3, Epochs: 2, MinibatchSize: 8}

	a := New(obsSize, actions, cfg, prng.New(5))
	dataRng := prng.New(99)
	a.Update(makeBatch(a, dataRng, 24, obsSize))

	st := a.State()
	dataState := dataRng.State()

	// Continue the original for two more updates.
	var wantActs []int
	for u := 0; u < 2; u++ {
		a.Update(makeBatch(a, dataRng, 24, obsSize))
	}
	probe := prng.New(7)
	for i := 0; i < 16; i++ {
		obs := make([]float64, obsSize)
		for j := range obs {
			obs[j] = probe.Float64()
		}
		act, _, _ := a.Act(obs)
		wantActs = append(wantActs, act)
	}

	// Rebuild from scratch with the same Config, restore, and replay.
	b := New(obsSize, actions, cfg, prng.New(12345))
	if err := b.Restore(st); err != nil {
		t.Fatal(err)
	}
	replayRng := prng.New(1)
	if err := replayRng.Restore(dataState); err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 2; u++ {
		b.Update(makeBatch(b, replayRng, 24, obsSize))
	}
	probe = prng.New(7)
	for i := 0; i < 16; i++ {
		obs := make([]float64, obsSize)
		for j := range obs {
			obs[j] = probe.Float64()
		}
		act, _, _ := b.Act(obs)
		if act != wantActs[i] {
			t.Fatalf("action %d after restore = %d, want %d", i, act, wantActs[i])
		}
	}
}

func TestAgentRestoreRejectsArchitectureMismatch(t *testing.T) {
	cfg := Config{Hidden: []int{16}}
	a := New(6, 6, cfg, prng.New(1))
	st := a.State()

	wider := New(8, 6, cfg, prng.New(1))
	if err := wider.Restore(st); err == nil {
		t.Error("Restore accepted a snapshot from a different observation width")
	}

	zero := a.State()
	zero.RNG = prng.State{}
	if err := a.Restore(zero); err == nil {
		t.Error("Restore accepted an all-zero PRNG state")
	}
}
