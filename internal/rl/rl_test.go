package rl

import (
	"math"
	"testing"

	"repro/internal/prng"
)

// countEnv is a toy environment shaped like the fault-pattern MDP: fixed
// episode length, sparse terminal reward equal to the fraction of steps on
// which the "good" action was taken. The observation is the normalized
// histogram of actions taken so far.
type countEnv struct {
	k, t, good int
	step       int
	counts     []float64
	obs        []float64
	goodCount  int
}

func newCountEnv(k, t, good int) *countEnv {
	return &countEnv{k: k, t: t, good: good, counts: make([]float64, k), obs: make([]float64, k)}
}

func (e *countEnv) Reset() []float64 {
	e.step = 0
	e.goodCount = 0
	for i := range e.counts {
		e.counts[i] = 0
	}
	copy(e.obs, e.counts)
	return e.obs
}

func (e *countEnv) Step(a int) ([]float64, float64, bool) {
	e.counts[a]++
	if a == e.good {
		e.goodCount++
	}
	e.step++
	for i := range e.obs {
		e.obs[i] = e.counts[i] / float64(e.t)
	}
	if e.step == e.t {
		return e.obs, float64(e.goodCount) / float64(e.t), true
	}
	return e.obs, 0, false
}

func (e *countEnv) ObsSize() int    { return e.k }
func (e *countEnv) NumActions() int { return e.k }

// fixedAgent always picks the same action with a fixed value estimate.
type fixedAgent struct{ action int }

func (f *fixedAgent) Act(obs []float64) (int, float64, float64) { return f.action, -1.0, 0.5 }
func (f *fixedAgent) Update(b *Batch) UpdateStats               { return UpdateStats{} }

func TestComputeGAEHandChecked(t *testing.T) {
	b := &Batch{
		Rewards: []float64{0, 1},
		Values:  []float64{0.5, 0.25},
		Dones:   []bool{false, true},
		Actions: []int{0, 0},
	}
	b.ComputeGAE(0.5, 0.5)
	wantAdv := []float64{-0.1875, 0.75}
	wantRet := []float64{0.3125, 1.0}
	for i := range wantAdv {
		if math.Abs(b.Advantages[i]-wantAdv[i]) > 1e-12 {
			t.Errorf("adv[%d] = %v, want %v", i, b.Advantages[i], wantAdv[i])
		}
		if math.Abs(b.Returns[i]-wantRet[i]) > 1e-12 {
			t.Errorf("ret[%d] = %v, want %v", i, b.Returns[i], wantRet[i])
		}
	}
}

func TestComputeGAEResetsAtEpisodeBoundary(t *testing.T) {
	// Two episodes back to back: the advantage of the first episode's
	// last step must not leak into the second episode (iterating
	// backwards, the first episode is processed after the second).
	b := &Batch{
		Rewards: []float64{1, 0},
		Values:  []float64{0, 0},
		Dones:   []bool{true, true},
		Actions: []int{0, 0},
	}
	b.ComputeGAE(0.9, 0.9)
	if b.Advantages[0] != 1 || b.Advantages[1] != 0 {
		t.Errorf("advantages = %v, want [1 0]", b.Advantages)
	}
}

func TestNormalizeAdvantages(t *testing.T) {
	b := &Batch{Advantages: []float64{1, 2, 3, 4}}
	b.NormalizeAdvantages()
	var mean, sq float64
	for _, a := range b.Advantages {
		mean += a
	}
	mean /= 4
	for _, a := range b.Advantages {
		sq += (a - mean) * (a - mean)
	}
	if math.Abs(mean) > 1e-9 {
		t.Errorf("normalized mean = %v", mean)
	}
	if math.Abs(sq/4-1) > 1e-6 {
		t.Errorf("normalized variance = %v", sq/4)
	}
}

func TestRunnerCollectsWholeEpisodes(t *testing.T) {
	envs := []Env{newCountEnv(4, 6, 1), newCountEnv(4, 6, 1), newCountEnv(4, 6, 1)}
	r := NewRunner(envs, &fixedAgent{action: 1})
	batch, eps, err := r.CollectEpisodes(2)
	if err != nil {
		t.Fatal(err)
	}
	if batch.Len() != 3*2*6 {
		t.Errorf("batch has %d transitions, want 36", batch.Len())
	}
	if len(eps) != 6 {
		t.Fatalf("%d episodes, want 6", len(eps))
	}
	for _, ep := range eps {
		if ep.Steps != 6 {
			t.Errorf("episode length %d, want 6", ep.Steps)
		}
		if math.Abs(ep.Return-1.0) > 1e-12 {
			t.Errorf("fixed-good-agent return = %v, want 1", ep.Return)
		}
	}
	// Done flags: exactly one per episode, at episode ends.
	dones := 0
	for _, d := range batch.Dones {
		if d {
			dones++
		}
	}
	if dones != 6 {
		t.Errorf("%d done flags, want 6", dones)
	}
}

func TestRunnerObsAreSnapshots(t *testing.T) {
	// The env reuses its obs slice; the runner must copy it, so stored
	// observations must all differ as the histogram fills in.
	env := newCountEnv(3, 4, 0)
	r := NewRunner([]Env{env}, &fixedAgent{action: 0})
	batch, _, err := r.CollectEpisodes(1)
	if err != nil {
		t.Fatal(err)
	}
	// obs at t is the histogram BEFORE the step: obs[1][0] = 1/4,
	// obs[2][0] = 2/4, etc.
	for i := 1; i < 4; i++ {
		want := float64(i-0) / 4 * 1 // action 0 chosen every step
		_ = want
		if batch.Obs[i][0] != float64(i)/4 {
			t.Errorf("obs[%d][0] = %v, want %v (aliasing bug?)", i, batch.Obs[i][0], float64(i)/4)
		}
	}
}

func TestRunnerRejectsBadEpisodeCount(t *testing.T) {
	r := NewRunner([]Env{newCountEnv(2, 2, 0)}, &fixedAgent{})
	if _, _, err := r.CollectEpisodes(0); err == nil {
		t.Error("CollectEpisodes(0) did not error")
	}
}

func TestNewRunnerPanicsWithoutEnvs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRunner with no envs did not panic")
		}
	}()
	NewRunner(nil, &fixedAgent{})
}

func TestShuffleIsPermutation(t *testing.T) {
	idx := Shuffle(100, prng.New(3))
	seen := make([]bool, 100)
	for _, i := range idx {
		if i < 0 || i >= 100 || seen[i] {
			t.Fatal("Shuffle is not a permutation")
		}
		seen[i] = true
	}
}
