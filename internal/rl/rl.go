// Package rl provides the reinforcement-learning plumbing shared by the
// PPO and REINFORCE agents: the environment interface, parallel rollout
// collection over vectorized environments (the Go analogue of
// Stable-Baselines3's vectorized environments that the paper credits with
// large training-time reductions), and generalized advantage estimation.
package rl

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/prng"
)

// Env is an episodic environment with a discrete action space. Envs are
// stepped by a single goroutine each but different envs run concurrently,
// so implementations must not share mutable state.
type Env interface {
	// Reset starts a new episode and returns the initial observation.
	// The returned slice may be reused by the env across steps.
	Reset() []float64
	// Step applies an action and returns the next observation, the
	// reward, and whether the episode ended.
	Step(action int) (obs []float64, reward float64, done bool)
	// ObsSize returns the observation width.
	ObsSize() int
	// NumActions returns the size of the discrete action space.
	NumActions() int
}

// Agent selects actions and learns from collected batches.
type Agent interface {
	// Act returns the chosen action, its log-probability under the
	// current policy, and the state-value estimate. Act must be safe to
	// call repeatedly from one goroutine (the runner serializes calls).
	Act(obs []float64) (action int, logProb, value float64)
	// Update performs one learning step on a rollout batch.
	Update(b *Batch) UpdateStats
}

// UpdateStats reports diagnostics from one Update call.
type UpdateStats struct {
	PolicyLoss float64
	ValueLoss  float64
	Entropy    float64
	ClipFrac   float64
	GradNorm   float64
}

// Batch is a flattened rollout across environments. All slices share
// indexing; episodes are delimited by Dones.
type Batch struct {
	Obs        [][]float64
	Actions    []int
	LogProbs   []float64
	Rewards    []float64
	Values     []float64
	Dones      []bool
	Advantages []float64
	Returns    []float64
}

// Len returns the number of transitions.
func (b *Batch) Len() int { return len(b.Actions) }

// EpisodeResult summarizes one finished episode.
type EpisodeResult struct {
	EnvIndex int
	Return   float64 // sum of rewards
	Steps    int
}

// ComputeGAE fills Advantages and Returns using generalized advantage
// estimation with discount gamma and smoothing lambda. The batch must
// consist of whole episodes (every trajectory ends with done), so the
// bootstrap value after a terminal step is zero.
func (b *Batch) ComputeGAE(gamma, lambda float64) {
	n := b.Len()
	b.Advantages = make([]float64, n)
	b.Returns = make([]float64, n)
	var adv, nextValue float64
	for i := n - 1; i >= 0; i-- {
		if b.Dones[i] {
			adv = 0
			nextValue = 0
		}
		delta := b.Rewards[i] + gamma*nextValue - b.Values[i]
		adv = delta + gamma*lambda*adv
		b.Advantages[i] = adv
		b.Returns[i] = adv + b.Values[i]
		nextValue = b.Values[i]
	}
}

// NormalizeAdvantages standardizes the advantage vector to zero mean and
// unit variance. PPO relies on this to cope with the paper's exponential
// reward scale (e^n spans many orders of magnitude).
func (b *Batch) NormalizeAdvantages() {
	n := len(b.Advantages)
	if n == 0 {
		return
	}
	var mean float64
	for _, a := range b.Advantages {
		mean += a
	}
	mean /= float64(n)
	var varSum float64
	for _, a := range b.Advantages {
		d := a - mean
		varSum += d * d
	}
	std := 1e-8
	if n > 1 {
		std += sqrt(varSum / float64(n))
	}
	for i := range b.Advantages {
		b.Advantages[i] = (b.Advantages[i] - mean) / std
	}
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}

// Runner collects rollouts from a set of environments in parallel.
// Action selection is serialized through the shared agent; Step calls run
// concurrently, which is where the time goes (the fault-simulation t-test
// fires inside the terminal Step).
type Runner struct {
	Envs  []Env
	Agent Agent
	// Gamma and Lambda are the GAE parameters (defaults 0.99 / 0.95).
	Gamma, Lambda float64
}

// NewRunner creates a runner with default GAE parameters.
func NewRunner(envs []Env, agent Agent) *Runner {
	if len(envs) == 0 {
		panic("rl: runner needs at least one env")
	}
	return &Runner{Envs: envs, Agent: agent, Gamma: 0.99, Lambda: 0.95}
}

// CollectEpisodes runs exactly episodesPerEnv full episodes in every env
// and returns the batch (with GAE computed) plus per-episode summaries.
func (r *Runner) CollectEpisodes(episodesPerEnv int) (*Batch, []EpisodeResult, error) {
	if episodesPerEnv < 1 {
		return nil, nil, fmt.Errorf("rl: episodesPerEnv must be >= 1")
	}
	nEnvs := len(r.Envs)
	type envTraj struct {
		batch    Batch
		episodes []EpisodeResult
	}
	trajs := make([]envTraj, nEnvs)

	// Observations are owned by envs and may be reused, so copy them.
	copyObs := func(o []float64) []float64 {
		c := make([]float64, len(o))
		copy(c, o)
		return c
	}

	for ep := 0; ep < episodesPerEnv; ep++ {
		// Reset all envs, get initial observations.
		obs := make([][]float64, nEnvs)
		done := make([]bool, nEnvs)
		retSum := make([]float64, nEnvs)
		steps := make([]int, nEnvs)
		for i, e := range r.Envs {
			obs[i] = copyObs(e.Reset())
		}
		active := nEnvs
		for active > 0 {
			// Serial action selection (the agent shares scratch state).
			actions := make([]int, nEnvs)
			logps := make([]float64, nEnvs)
			values := make([]float64, nEnvs)
			for i := range r.Envs {
				if done[i] {
					continue
				}
				actions[i], logps[i], values[i] = r.Agent.Act(obs[i])
			}
			// Parallel env stepping.
			var wg sync.WaitGroup
			nextObs := make([][]float64, nEnvs)
			rewards := make([]float64, nEnvs)
			finished := make([]bool, nEnvs)
			for i := range r.Envs {
				if done[i] {
					continue
				}
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					o, rew, d := r.Envs[i].Step(actions[i])
					nextObs[i] = copyObs(o)
					rewards[i] = rew
					finished[i] = d
				}(i)
			}
			wg.Wait()
			for i := range r.Envs {
				if done[i] {
					continue
				}
				t := &trajs[i]
				t.batch.Obs = append(t.batch.Obs, obs[i])
				t.batch.Actions = append(t.batch.Actions, actions[i])
				t.batch.LogProbs = append(t.batch.LogProbs, logps[i])
				t.batch.Rewards = append(t.batch.Rewards, rewards[i])
				t.batch.Values = append(t.batch.Values, values[i])
				t.batch.Dones = append(t.batch.Dones, finished[i])
				retSum[i] += rewards[i]
				steps[i]++
				obs[i] = nextObs[i]
				if finished[i] {
					done[i] = true
					active--
					t.episodes = append(t.episodes, EpisodeResult{
						EnvIndex: i, Return: retSum[i], Steps: steps[i],
					})
				}
			}
		}
	}

	// Concatenate per-env trajectories (episodes stay contiguous, which
	// ComputeGAE requires).
	var out Batch
	var episodes []EpisodeResult
	for i := range trajs {
		t := &trajs[i]
		out.Obs = append(out.Obs, t.batch.Obs...)
		out.Actions = append(out.Actions, t.batch.Actions...)
		out.LogProbs = append(out.LogProbs, t.batch.LogProbs...)
		out.Rewards = append(out.Rewards, t.batch.Rewards...)
		out.Values = append(out.Values, t.batch.Values...)
		out.Dones = append(out.Dones, t.batch.Dones...)
		episodes = append(episodes, t.episodes...)
	}
	out.ComputeGAE(r.Gamma, r.Lambda)
	return &out, episodes, nil
}

// Shuffle produces a permutation of batch indices using rng, for minibatch
// sampling.
func Shuffle(n int, rng *prng.Source) []int {
	idx := make([]int, n)
	rng.Perm(idx)
	return idx
}
