package reinforce

import (
	"testing"

	"repro/internal/prng"
	"repro/internal/rl"
)

// countEnv: fixed-length episodes, terminal reward = fraction of steps
// taking the good action (same toy task as the PPO tests).
type countEnv struct {
	k, t, good int
	step       int
	counts     []float64
	obs        []float64
	goodCount  int
}

func newCountEnv(k, t, good int) *countEnv {
	return &countEnv{k: k, t: t, good: good, counts: make([]float64, k), obs: make([]float64, k)}
}

func (e *countEnv) Reset() []float64 {
	e.step, e.goodCount = 0, 0
	for i := range e.counts {
		e.counts[i] = 0
	}
	copy(e.obs, e.counts)
	return e.obs
}

func (e *countEnv) Step(a int) ([]float64, float64, bool) {
	e.counts[a]++
	if a == e.good {
		e.goodCount++
	}
	e.step++
	for i := range e.obs {
		e.obs[i] = e.counts[i] / float64(e.t)
	}
	if e.step == e.t {
		return e.obs, float64(e.goodCount) / float64(e.t), true
	}
	return e.obs, 0, false
}

func (e *countEnv) ObsSize() int    { return e.k }
func (e *countEnv) NumActions() int { return e.k }

func TestReinforceLearnsTerminalReward(t *testing.T) {
	rng := prng.New(21)
	const k, tSteps, good = 3, 6, 1
	envs := make([]rl.Env, 4)
	for i := range envs {
		envs[i] = newCountEnv(k, tSteps, good)
	}
	agent := New(k, k, Config{LearningRate: 5e-3}, rng.Split())
	runner := rl.NewRunner(envs, agent)
	var avg float64
	for iter := 0; iter < 250; iter++ {
		batch, eps, err := runner.CollectEpisodes(4)
		if err != nil {
			t.Fatal(err)
		}
		agent.Update(batch)
		avg = 0
		for _, ep := range eps {
			avg += ep.Return
		}
		avg /= float64(len(eps))
		if avg > 0.85 {
			break
		}
	}
	if avg < 0.85 {
		t.Errorf("REINFORCE plateaued at avg return %.3f, want > 0.85", avg)
	}
	if a := agent.ActGreedy(make([]float64, k)); a != good {
		t.Errorf("greedy action = %d, want %d", a, good)
	}
}

func TestUpdateOnEmptyBatch(t *testing.T) {
	agent := New(2, 2, Config{}, prng.New(1))
	stats := agent.Update(&rl.Batch{})
	if stats != (rl.UpdateStats{}) {
		t.Errorf("empty batch produced stats %+v", stats)
	}
}
