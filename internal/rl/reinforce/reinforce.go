// Package reinforce implements the plain REINFORCE policy-gradient
// algorithm with a learned value baseline. It exists as an ablation
// partner for PPO (DESIGN.md decision 5): same environments, same network
// shape, no clipping and no minibatch epochs, so the comparison isolates
// PPO's trust-region machinery.
package reinforce

import (
	"math"

	"repro/internal/nn"
	"repro/internal/prng"
	"repro/internal/rl"
)

// Config holds REINFORCE hyperparameters. Zero values select defaults
// matching the PPO configuration where the algorithms overlap.
type Config struct {
	Hidden       []int
	LearningRate float64
	EntropyCoef  float64
	MaxGradNorm  float64
	Activation   nn.Activation
}

func (c *Config) setDefaults() {
	if len(c.Hidden) == 0 {
		c.Hidden = []int{64, 64}
	}
	if c.LearningRate == 0 {
		c.LearningRate = 3e-4
	}
	if c.EntropyCoef == 0 {
		c.EntropyCoef = 0.01
	}
	if c.MaxGradNorm == 0 {
		c.MaxGradNorm = 0.5
	}
}

// Agent is a REINFORCE agent with a value baseline.
type Agent struct {
	cfg    Config
	policy *nn.MLP
	value  *nn.MLP
	pOpt   *nn.Adam
	vOpt   *nn.Adam
	rng    *prng.Source
	probs  []float64
}

var _ rl.Agent = (*Agent)(nil)

// New creates a REINFORCE agent.
func New(obsSize, numActions int, cfg Config, rng *prng.Source) *Agent {
	cfg.setDefaults()
	pSizes := append(append([]int{obsSize}, cfg.Hidden...), numActions)
	vSizes := append(append([]int{obsSize}, cfg.Hidden...), 1)
	a := &Agent{
		cfg:    cfg,
		policy: nn.NewMLP(pSizes, cfg.Activation, rng.Split()),
		value:  nn.NewMLP(vSizes, cfg.Activation, rng.Split()),
		rng:    rng,
		probs:  make([]float64, numActions),
	}
	a.policy.OutputLayer().ScaleWeights(0.01)
	a.pOpt = nn.NewAdam(a.policy.Params(), cfg.LearningRate)
	a.vOpt = nn.NewAdam(a.value.Params(), cfg.LearningRate)
	return a
}

// Act implements rl.Agent.
func (a *Agent) Act(obs []float64) (int, float64, float64) {
	logits := a.policy.Forward(obs)
	nn.Softmax(logits, a.probs)
	action := nn.SampleCategorical(a.probs, a.rng)
	return action, nn.LogProb(a.probs, action), a.value.Forward(obs)[0]
}

// ActGreedy returns the policy mode.
func (a *Agent) ActGreedy(obs []float64) int {
	return nn.Argmax(a.policy.Forward(obs))
}

// Update implements rl.Agent: a single full-batch policy-gradient step
// using the GAE advantages as the score weights.
func (a *Agent) Update(b *rl.Batch) rl.UpdateStats {
	b.NormalizeAdvantages()
	n := b.Len()
	if n == 0 {
		return rl.UpdateStats{}
	}
	pParams := a.policy.Params()
	vParams := a.value.Params()
	nn.ZeroGrad(pParams)
	nn.ZeroGrad(vParams)
	gradOut := make([]float64, a.policy.OutSize())
	var stats rl.UpdateStats
	fn := float64(n)
	for i := 0; i < n; i++ {
		obs := b.Obs[i]
		act := b.Actions[i]
		adv := b.Advantages[i]
		logits := a.policy.Forward(obs)
		nn.Softmax(logits, a.probs)
		stats.PolicyLoss += -nn.LogProb(a.probs, act) * adv
		ent := nn.Entropy(a.probs)
		stats.Entropy += ent
		for j := range gradOut {
			ind := 0.0
			if j == act {
				ind = 1.0
			}
			gradOut[j] = -adv * (ind - a.probs[j]) / fn
			lp := math.Log(math.Max(a.probs[j], 1e-12))
			gradOut[j] -= a.cfg.EntropyCoef * (-a.probs[j] * (lp + ent)) / fn
		}
		a.policy.Backward(obs, gradOut)

		v := a.value.Forward(obs)[0]
		dv := v - b.Returns[i]
		stats.ValueLoss += 0.5 * dv * dv
		a.value.Backward(obs, []float64{dv / fn})
	}
	stats.GradNorm = nn.ClipGradNorm(pParams, a.cfg.MaxGradNorm)
	nn.ClipGradNorm(vParams, a.cfg.MaxGradNorm)
	a.pOpt.Step()
	a.vOpt.Step()
	stats.PolicyLoss /= fn
	stats.ValueLoss /= fn
	stats.Entropy /= fn
	return stats
}
