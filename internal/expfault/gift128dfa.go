package expfault

import (
	"fmt"
	"math"

	"repro/internal/bitvec"
	"repro/internal/ciphers"
	"repro/internal/ciphers/gift"
	"repro/internal/fault"
	"repro/internal/prng"
)

// state128 is a 128-bit GIFT state in repository bit order: bit i lives in
// word i/64 at position i%64.
type state128 [2]uint64

func le128(b []byte) state128 {
	var s state128
	for i := 7; i >= 0; i-- {
		s[0] = s[0]<<8 | uint64(b[i])
		s[1] = s[1]<<8 | uint64(b[8+i])
	}
	return s
}

func (s state128) bit(i int) uint64 { return s[i/64] >> (uint(i) % 64) & 1 }

func (s state128) xor(o state128) state128 { return state128{s[0] ^ o[0], s[1] ^ o[1]} }

// nibble returns nibble n (0..31).
func (s state128) nibble(n int) byte {
	return byte(s[n/16] >> (4 * uint(n%16)) & 0xf)
}

// invRound128 inverts one key-free GIFT-128 round (inverse permutation
// then inverse S-box); the caller removes AddRoundKey first.
func invRound128(s state128) state128 {
	var out state128
	for i := 0; i < 128; i++ {
		j := gift.Perm128(i)
		out[i/64] |= (s[j/64] >> (uint(j) % 64) & 1) << (uint(i) % 64)
	}
	var sub state128
	for n := 0; n < 32; n++ {
		sub[n/16] |= uint64(gift.InvSBox(byte(out[n/16]>>(4*uint(n%16))&0xf))) << (4 * uint(n%16))
	}
	return sub
}

// GIFT128DFA mounts the nibble-wise guess-and-filter DFA against GIFT-128
// (the GIFT-COFB / NIST-LWC variant), generalizing GIFTDFA: AddRoundKey
// places U bits at state bits 4i+2 and V bits at 4i+1, so each input
// nibble of a round is again gated by exactly two key bits (PermBits
// preserves the bit index mod 4). Round keys 40 and 39 are attacked with
// the same significance-gated template matching as the 64-bit attack;
// the cone phase is not implemented for this variant, so wide fault
// models recover fewer bits than on GIFT-64.
func GIFT128DFA(target *gift.Cipher, pattern *bitvec.Vector, cfg GIFTDFAConfig, rng *prng.Source) (*KeyRecoveryResult, error) {
	if cfg.FaultRound == 0 {
		cfg.FaultRound = 37 // three rounds from the end, as 25 is for GIFT-64
	}
	cfg.setDefaults()
	if target.Name() != "gift128" {
		return nil, fmt.Errorf("expfault: GIFT128DFA supports gift128 only")
	}
	if pattern.Len() != 128 {
		return nil, fmt.Errorf("expfault: pattern width %d, want 128", pattern.Len())
	}
	if pattern.IsZero() {
		return nil, fmt.Errorf("expfault: empty pattern")
	}
	rounds := target.Rounds() // 40

	tmplKey := make([]byte, 16)
	rng.Fill(tmplKey)
	tmplCipher, err := gift.New128(tmplKey)
	if err != nil {
		return nil, err
	}
	var tmplKern ciphers.BatchKernel
	if !cfg.NoBatch {
		tmplKern = batchKernelFor(tmplCipher)
	}
	tmpl40, err := diffTemplate128(tmplCipher, tmplKern, pattern, cfg.Model, cfg.FaultRound, rounds, cfg.TemplateSamples, rng)
	if err != nil {
		return nil, err
	}
	tmpl39, err := diffTemplate128(tmplCipher, tmplKern, pattern, cfg.Model, cfg.FaultRound, rounds-1, cfg.TemplateSamples, rng)
	if err != nil {
		return nil, err
	}

	cc := make([]state128, cfg.Pairs)
	cf := make([]state128, cfg.Pairs)
	if !cfg.NoBatch {
		p := 0
		collectForks(target, batchKernelFor(target), pattern, cfg.Model, cfg.FaultRound,
			ciphers.BatchPoint{Round: 0}, cfg.Pairs, rng, func(clean, faulty []byte) {
				cc[p] = le128(clean)
				cf[p] = le128(faulty)
				p++
			})
	} else {
		tr := ciphers.NewTrace(target)
		pt := make([]byte, 16)
		out := make([]byte, 16)
		mf := newModelFault(pattern, cfg.Model, cfg.FaultRound)
		for p := 0; p < cfg.Pairs; p++ {
			rng.Fill(pt)
			f := mf.draw(rng)
			target.Encrypt(out, pt, nil, tr)
			cc[p] = le128(tr.Ciphertext)
			target.Encrypt(out, pt, f, tr)
			cf[p] = le128(tr.Ciphertext)
		}
	}

	guesses := 0.0
	rk40 := recoverRoundKey128(cc, cf, tmpl40, rounds, cfg.MinMargin)
	guesses += 32 * 4 * float64(cfg.Pairs)
	recovered := countBits32(rk40.gotU) + countBits32(rk40.gotV)
	notes := fmt.Sprintf("RK40: %d/64 bits", recovered)

	var rk39 recovery128
	if rk40.gotU == 0xffffffff && rk40.gotV == 0xffffffff {
		klo, khi := gift.KeyMask128(rk40.u, rk40.v)
		clo, chi := gift.ConstMask128(rounds)
		s39c := make([]state128, cfg.Pairs)
		s39f := make([]state128, cfg.Pairs)
		for p := 0; p < cfg.Pairs; p++ {
			s39c[p] = invRound128(state128{cc[p][0] ^ klo ^ clo, cc[p][1] ^ khi ^ chi})
			s39f[p] = invRound128(state128{cf[p][0] ^ klo ^ clo, cf[p][1] ^ khi ^ chi})
		}
		rk39 = recoverRoundKey128(s39c, s39f, tmpl39, rounds-1, cfg.MinMargin)
		guesses += 32 * 4 * float64(cfg.Pairs)
		n39 := countBits32(rk39.gotU) + countBits32(rk39.gotV)
		recovered += n39
		notes += fmt.Sprintf("; RK39: %d/64 bits", n39)
	} else {
		notes += "; RK40 incomplete, round 39 not attacked"
	}

	tu40, tv40 := target.RoundKeyWords(rounds)
	tu39, tv39 := target.RoundKeyWords(rounds - 1)
	correct := rk40.matches(tu40, tv40) && rk39.matches(tu39, tv39)

	return &KeyRecoveryResult{
		RecoveredBits: recovered,
		TotalKeyBits:  128,
		FaultsUsed:    cfg.Pairs,
		OfflineLog2:   log2(guesses + 2*float64(cfg.TemplateSamples)),
		Correct:       correct,
		Notes:         notes,
	}, nil
}

// diffTemplate128 mirrors diffTemplate for the 32-nibble state: a
// non-nil kern routes the paired simulations through the batched fork
// engine, bit-identically to the scalar loop.
func diffTemplate128(c *gift.Cipher, kern ciphers.BatchKernel, pattern *bitvec.Vector, model fault.Model, faultRound, obsRound, samples int, rng *prng.Source) ([32][16]float64, error) {
	var hist [32][16]int
	bin := func(d state128) {
		for n := 0; n < 32; n++ {
			hist[n][d.nibble(n)]++
		}
	}
	if kern != nil && faultRound <= obsRound {
		collectForks(c, kern, pattern, model, faultRound,
			ciphers.BatchPoint{Round: obsRound}, samples, rng, func(clean, faulty []byte) {
				bin(le128(clean).xor(le128(faulty)))
			})
	} else {
		tr := ciphers.NewTrace(c)
		pt := make([]byte, 16)
		out := make([]byte, 16)
		mf := newModelFault(pattern, model, faultRound)
		for s := 0; s < samples; s++ {
			rng.Fill(pt)
			f := mf.draw(rng)
			c.Encrypt(out, pt, nil, tr)
			clean := le128(tr.Inputs[obsRound-1])
			c.Encrypt(out, pt, f, tr)
			faulty := le128(tr.Inputs[obsRound-1])
			bin(clean.xor(faulty))
		}
	}
	var tmpl [32][16]float64
	for n := 0; n < 32; n++ {
		for v := 0; v < 16; v++ {
			tmpl[n][v] = (float64(hist[n][v]) + 0.5) / (float64(samples) + 8)
		}
	}
	return tmpl, nil
}

// recovery128 mirrors recovery with 32-bit round-key words.
type recovery128 struct {
	u, v       uint32
	gotU, gotV uint32
}

func (r recovery128) matches(tu, tv uint32) bool {
	return r.u&r.gotU == tu&r.gotU && r.v&r.gotV == tv&r.gotV
}

// recoverRoundKey128 guesses the two key bits gating each of the 32 input
// nibbles of a GIFT-128 round: nibble n is fed by bits P128(4n+j), of
// which P128(4n+1) carries V bit (P(4n+1)-1)/4 and P128(4n+2) carries
// U bit (P(4n+2)-2)/4.
func recoverRoundKey128(cc, cf []state128, tmpl [32][16]float64, round int, minMargin float64) recovery128 {
	var out recovery128
	clo, chi := gift.ConstMask128(round)
	cm := state128{clo, chi}
	pairs := len(cc)
	perPair := make([][]float64, 4)
	for g := range perPair {
		perPair[g] = make([]float64, pairs)
	}
	idx := make([]uint16, pairs)
	for n := 0; n < 32; n++ {
		var pos [4]int
		for j := 0; j < 4; j++ {
			pos[j] = gift.Perm128(4*n + j)
		}
		vIdx := (pos[1] - 1) / 4
		uIdx := (pos[2] - 2) / 4
		// Batched guess evaluation, as in recoverRoundKey: the guess bits
		// land at intra-nibble positions 1 (V) and 2 (U), so guess g XORs
		// the value g<<1 into both sides of the guess-free nibble pair,
		// extracted once per trace; the inverse S-box passes and the log
		// fold into a 4x256 table with float values and summation order
		// identical to the direct loop.
		for p := range cc {
			a0 := extractNibble128(cc[p].xor(cm), pos)
			b0 := extractNibble128(cf[p].xor(cm), pos)
			idx[p] = uint16(a0) | uint16(b0)<<4
		}
		var llTab [4][256]float64
		for g := 0; g < 4; g++ {
			gx := byte(g) << 1
			for a0 := 0; a0 < 16; a0++ {
				for b0 := 0; b0 < 16; b0++ {
					d := gift.InvSBox(byte(a0)^gx) ^ gift.InvSBox(byte(b0)^gx)
					llTab[g][a0|b0<<4] = math.Log(tmpl[n][d])
				}
			}
		}
		var score [4]float64
		for g := 0; g < 4; g++ { // g = vBit | uBit<<1
			tab := &llTab[g]
			var s float64
			for p := range cc {
				ll := tab[idx[p]]
				perPair[g][p] = ll
				s += ll
			}
			score[g] = s
		}
		best, second := 0, -1
		for g := 1; g < 4; g++ {
			if score[g] > score[best] {
				second = best
				best = g
			} else if second < 0 || score[g] > score[second] {
				second = g
			}
		}
		if gapSignificance(perPair[best], perPair[second]) >= minMargin {
			out.gotV |= 1 << uint(vIdx)
			out.gotU |= 1 << uint(uIdx)
			out.v |= uint32(best&1) << uint(vIdx)
			out.u |= uint32(best>>1) << uint(uIdx)
		}
	}
	return out
}

func extractNibble128(s state128, pos [4]int) byte {
	var x byte
	for j := 0; j < 4; j++ {
		x |= byte(s.bit(pos[j])) << uint(j)
	}
	return x
}

func countBits32(m uint32) int {
	n := 0
	for m != 0 {
		n++
		m &= m - 1
	}
	return n
}
