package expfault

import (
	"testing"

	"repro/internal/ciphers/aes"
	"repro/internal/prng"
)

func TestPQStress(t *testing.T) {
	for seed := uint64(2023); seed < 2023+900; seed++ {
		rng := prng.New(seed)
		key := make([]byte, 16)
		rng.Fill(key)
		c, _ := aes.New(key)
		res, err := AESPiretQuisquater(c, 3, rng.Split())
		if err != nil {
			t.Fatal(err)
		}
		if !res.Correct || res.RecoveredBits != 128 {
			t.Fatalf("seed %d: %d bits correct=%v (%s)", seed, res.RecoveredBits, res.Correct, res.Notes)
		}
	}
}
