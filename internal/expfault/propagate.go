// Package expfault implements the key-recovery verification layer that the
// paper delegates to the ExpFault tool [19]: given a fault model discovered
// by ExploreFault, it (i) profiles how the fault differential propagates
// through the cipher (distinguisher identification), and (ii) mounts
// concrete differential fault attacks — the Piret–Quisquater attack on
// AES-128 and a nibble-wise guess-and-filter attack on GIFT-64 — reporting
// how many key bits are recovered and at what offline complexity.
//
// This is a reimplementation of ExpFault's *question* ("does this fault
// model admit key recovery, and how expensive is it?") rather than its
// exact machinery: where ExpFault analyzes a data-flow graph symbolically,
// we measure distinguishers on the simulator and run the attacks outright,
// which is stronger evidence and feasible because the substrate is our own
// trace-level cipher implementation (see DESIGN.md, substitutions).
package expfault

import (
	"fmt"
	"math"

	"repro/internal/bitvec"
	"repro/internal/ciphers"
	"repro/internal/fault"
	"repro/internal/prng"
)

// PropagationProfile describes how a fault model's differential evolves
// round by round.
type PropagationProfile struct {
	// Round r (1-based) statistics live at index r-1 for rounds after
	// the injection; earlier rounds hold zeros.
	ActiveGroups []float64 // mean number of non-zero differential groups at each round input
	Entropy      []float64 // mean per-active-group Shannon entropy (bits) of the differential distribution
	// MaxAbsCorr is the largest absolute Pearson correlation between any
	// two group differentials at each round input. Univariate entropy
	// misses joint structure (Fig. 1's linear pattern has near-uniform
	// byte marginals); cross-group correlation is the propagation-level
	// analogue of the second-order t-test.
	MaxAbsCorr []float64
	// DistinguisherRound is the deepest round input whose differential
	// is still distinguishable from uniform (activity gap, entropy gap,
	// or cross-group correlation); 0 if none.
	DistinguisherRound int
	GroupBits          int
}

// Profile simulates the fault model (pattern at the given round) and
// measures, for every later round input, the mean number of active
// differential groups and the per-group entropy, using samples paired
// encryptions. A round counts as distinguishable if its mean active-group
// count is at least one group below the state total or its mean entropy is
// at least 0.25 bits below the uniform maximum.
func Profile(c ciphers.Cipher, pattern *bitvec.Vector, round, samples int, rng *prng.Source) (*PropagationProfile, error) {
	return ProfileModel(c, pattern, fault.XorFlip, round, samples, rng)
}

// ProfileModel is Profile under a typed fault model. For fault.XorFlip it
// is bit-identical to Profile; other models draw per-trace (AND, XOR)
// injections from the same pattern.
func ProfileModel(c ciphers.Cipher, pattern *bitvec.Vector, model fault.Model, round, samples int, rng *prng.Source) (*PropagationProfile, error) {
	stateBits := 8 * c.BlockBytes()
	if pattern.Len() != stateBits {
		return nil, fmt.Errorf("expfault: pattern width %d, want %d", pattern.Len(), stateBits)
	}
	if pattern.IsZero() {
		return nil, fmt.Errorf("expfault: empty pattern")
	}
	if round < 1 || round > c.Rounds() {
		return nil, fmt.Errorf("expfault: round %d out of range", round)
	}
	gb := c.GroupBits()
	groups := stateBits / gb
	rounds := c.Rounds()

	prof := &PropagationProfile{
		ActiveGroups: make([]float64, rounds),
		Entropy:      make([]float64, rounds),
		MaxAbsCorr:   make([]float64, rounds),
		GroupBits:    gb,
	}
	// Histogram of differential values per (round, group), plus the
	// moment sums needed for cross-group correlations.
	hists := make([][][]int, rounds)
	sum := make([][]float64, rounds)
	sumSq := make([][]float64, rounds)
	cross := make([][][]float64, rounds)
	for r := round; r < rounds; r++ { // round inputs strictly after injection
		hists[r] = make([][]int, groups)
		for g := range hists[r] {
			hists[r][g] = make([]int, 1<<uint(gb))
		}
		sum[r] = make([]float64, groups)
		sumSq[r] = make([]float64, groups)
		cross[r] = make([][]float64, groups)
		for g := range cross[r] {
			cross[r][g] = make([]float64, groups)
		}
	}

	cleanTr := ciphers.NewTrace(c)
	faultTr := ciphers.NewTrace(c)
	n := c.BlockBytes()
	pt := make([]byte, n)
	out := make([]byte, n)
	mf := newModelFault(pattern, model, round)
	for s := 0; s < samples; s++ {
		rng.Fill(pt)
		f := mf.draw(rng)
		c.Encrypt(out, pt, nil, cleanTr)
		c.Encrypt(out, pt, f, faultTr)
		for r := round; r < rounds; r++ {
			vals := make([]float64, groups)
			for g := 0; g < groups; g++ {
				d := groupOf(cleanTr.Inputs[r], g, gb) ^ groupOf(faultTr.Inputs[r], g, gb)
				hists[r][g][d]++
				vals[g] = float64(d)
				sum[r][g] += vals[g]
				sumSq[r][g] += vals[g] * vals[g]
			}
			for g1 := 0; g1 < groups; g1++ {
				for g2 := g1 + 1; g2 < groups; g2++ {
					cross[r][g1][g2] += vals[g1] * vals[g2]
				}
			}
		}
	}

	maxEntropy := float64(gb)
	fn := float64(samples)
	// Correlation noise floor for independent groups is ~1/sqrt(n);
	// flag joint structure well above it.
	corrThreshold := 6 / math.Sqrt(fn)
	for r := round; r < rounds; r++ {
		var active, entSum float64
		for g := 0; g < groups; g++ {
			h := hists[r][g]
			nonZeroSamples := samples - h[0]
			if nonZeroSamples > 0 {
				active += float64(nonZeroSamples) / float64(samples) // fraction active
			}
			entSum += entropyOf(h, samples)
		}
		prof.ActiveGroups[r] = active
		prof.Entropy[r] = entSum / float64(groups)
		for g1 := 0; g1 < groups; g1++ {
			v1 := sumSq[r][g1]/fn - (sum[r][g1]/fn)*(sum[r][g1]/fn)
			for g2 := g1 + 1; g2 < groups; g2++ {
				v2 := sumSq[r][g2]/fn - (sum[r][g2]/fn)*(sum[r][g2]/fn)
				if v1 <= 0 || v2 <= 0 {
					continue
				}
				cov := cross[r][g1][g2]/fn - (sum[r][g1]/fn)*(sum[r][g2]/fn)
				if c := math.Abs(cov) / math.Sqrt(v1*v2); c > prof.MaxAbsCorr[r] {
					prof.MaxAbsCorr[r] = c
				}
			}
		}
		if active <= float64(groups)-1 || prof.Entropy[r] <= maxEntropy-0.25 ||
			prof.MaxAbsCorr[r] > corrThreshold {
			if r+1 > prof.DistinguisherRound {
				prof.DistinguisherRound = r + 1 // round-input index is 1-based
			}
		}
	}
	return prof, nil
}

func groupOf(state []byte, g, gb int) int {
	switch gb {
	case 8:
		return int(state[g])
	case 4:
		return int(state[g/2] >> (4 * uint(g%2)) & 0xf)
	default:
		return int(state[g/8] >> uint(g%8) & 1)
	}
}

// entropyOf returns the Shannon entropy (bits) of a sample histogram.
func entropyOf(h []int, total int) float64 {
	var e float64
	for _, c := range h {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(total)
		e -= p * math.Log2(p)
	}
	return e
}

// KeyRecoveryResult summarizes a concrete DFA run.
type KeyRecoveryResult struct {
	// RecoveredBits is the number of key bits uniquely determined.
	RecoveredBits int
	// TotalKeyBits is the cipher's master-key size.
	TotalKeyBits int
	// FaultsUsed is how many faulty ciphertexts the attack consumed.
	FaultsUsed int
	// OfflineLog2 estimates the offline work in log2 (key guesses
	// scored times pairs).
	OfflineLog2 float64
	// Correct reports whether the recovered material matches the true
	// key (verifiable here because we run against our own simulator).
	Correct bool
	// Notes carries attack-specific detail for the experiment report.
	Notes string
}
