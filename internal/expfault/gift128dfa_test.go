package expfault

import (
	"testing"

	"repro/internal/bitvec"
	"repro/internal/ciphers/gift"
	"repro/internal/prng"
)

func nibblePattern128(nibbles ...int) bitvec.Vector {
	v := bitvec.New(128)
	for _, n := range nibbles {
		for j := 0; j < 4; j++ {
			v.Set(4*n + j)
		}
	}
	return v
}

func TestGIFT128DFASingleNibble(t *testing.T) {
	rng := prng.New(808)
	key := make([]byte, 16)
	rng.Fill(key)
	c, err := gift.New128(key)
	if err != nil {
		t.Fatal(err)
	}
	pattern := nibblePattern128(5)
	res, err := GIFT128DFA(c, &pattern, GIFTDFAConfig{Pairs: 512}, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct {
		t.Fatalf("recovered bits disagree with the true schedule (%s)", res.Notes)
	}
	// The round-40 key (64 bits) plus a sizeable part of round 39:
	// already more master-key material than the paper's 80/128 for
	// GIFT-64, because GIFT-128 carries 64 key bits per round.
	if res.RecoveredBits < 64 {
		t.Errorf("recovered %d bits (%s), want >= 64", res.RecoveredBits, res.Notes)
	}
}

func TestGIFT128DFAMultiNibble(t *testing.T) {
	rng := prng.New(809)
	key := make([]byte, 16)
	rng.Fill(key)
	c, _ := gift.New128(key)
	pattern := nibblePattern128(8, 9, 10)
	res, err := GIFT128DFA(c, &pattern, GIFTDFAConfig{Pairs: 512}, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct {
		t.Fatalf("incorrect bits for the multi-nibble model (%s)", res.Notes)
	}
	if res.RecoveredBits < 32 {
		t.Errorf("recovered %d bits (%s)", res.RecoveredBits, res.Notes)
	}
}

func TestGIFT128DFAValidation(t *testing.T) {
	rng := prng.New(810)
	c64, _ := gift.New64(make([]byte, 16))
	p := nibblePattern128(0)
	if _, err := GIFT128DFA(c64, &p, GIFTDFAConfig{}, rng); err == nil {
		t.Error("accepted a gift64 instance")
	}
	c128, _ := gift.New128(make([]byte, 16))
	empty := bitvec.New(128)
	if _, err := GIFT128DFA(c128, &empty, GIFTDFAConfig{}, rng); err == nil {
		t.Error("accepted empty pattern")
	}
	short := bitvec.New(64)
	if _, err := GIFT128DFA(c128, &short, GIFTDFAConfig{}, rng); err == nil {
		t.Error("accepted 64-bit pattern")
	}
}

func TestInvRound128IsRoundInverse(t *testing.T) {
	rng := prng.New(811)
	for trial := 0; trial < 50; trial++ {
		s := state128{rng.Uint64(), rng.Uint64()}
		var sub state128
		for n := 0; n < 32; n++ {
			sub[n/16] |= uint64(gift.SBox(byte(s[n/16]>>(4*uint(n%16))&0xf))) << (4 * uint(n%16))
		}
		var perm state128
		for i := 0; i < 128; i++ {
			j := gift.Perm128(i)
			perm[j/64] |= (sub[i/64] >> (uint(i) % 64) & 1) << (uint(j) % 64)
		}
		if got := invRound128(perm); got != s {
			t.Fatalf("invRound128 failed: got %x, want %x", got, s)
		}
	}
}

func TestLE128(t *testing.T) {
	b := make([]byte, 16)
	b[0] = 0x01  // bit 0
	b[15] = 0x80 // bit 127
	s := le128(b)
	if s.bit(0) != 1 || s.bit(127) != 1 || s.bit(64) != 0 {
		t.Errorf("le128 bit mapping wrong: %x", s)
	}
	if s.nibble(0) != 1 || s.nibble(31) != 8 {
		t.Errorf("nibble extraction wrong: %d %d", s.nibble(0), s.nibble(31))
	}
}

func TestKeyMask128Placement(t *testing.T) {
	// U bit 0 goes to state bit 2, V bit 0 to state bit 1; U bit 16 to
	// state bit 66, V bit 16 to 65.
	lo, hi := gift.KeyMask128(1, 1)
	if lo != (1<<2)|(1<<1) || hi != 0 {
		t.Errorf("low word bits wrong: %x %x", lo, hi)
	}
	lo, hi = gift.KeyMask128(1<<16, 1<<16)
	if lo != 0 || hi != (1<<2)|(1<<1) {
		t.Errorf("high word bits wrong: %x %x", lo, hi)
	}
}

func BenchmarkGIFT128DFA(b *testing.B) {
	rng := prng.New(4)
	key := make([]byte, 16)
	rng.Fill(key)
	c, _ := gift.New128(key)
	pattern := nibblePattern128(5)
	for _, sub := range []struct {
		name    string
		noBatch bool
	}{{"batch", false}, {"scalar", true}} {
		b.Run(sub.name, func(b *testing.B) {
			cfg := GIFTDFAConfig{Pairs: 128, TemplateSamples: 1024, NoBatch: sub.noBatch}
			for i := 0; i < b.N; i++ {
				if _, err := GIFT128DFA(c, &pattern, cfg, rng.Split()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
