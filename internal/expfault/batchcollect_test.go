package expfault

import (
	"reflect"
	"testing"

	"repro/internal/ciphers/gift"
	"repro/internal/fault"
	"repro/internal/prng"
)

// TestGIFTDFABatchMatchesScalar runs the full GIFT-64 attack with and
// without the batched collection paths from identical seeds and demands
// byte-identical results — the batched template and online collection
// must reproduce the scalar PRNG stream and trace bytes exactly, across
// XOR and stuck-at (AND-lane) fault models.
func TestGIFTDFABatchMatchesScalar(t *testing.T) {
	key := make([]byte, 16)
	prng.New(41).Fill(key)
	c, err := gift.New64(key)
	if err != nil {
		t.Fatal(err)
	}
	pattern := nibblePattern(8, 9, 10, 11, 12, 14)
	for _, model := range []fault.Model{fault.XorFlip, fault.StuckAtZero, fault.RandomNibble} {
		cfg := GIFTDFAConfig{Pairs: 96, TemplateSamples: 512, Model: model}
		batched, err := GIFTDFA(c, &pattern, cfg, prng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		cfg.NoBatch = true
		scalar, err := GIFTDFA(c, &pattern, cfg, prng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batched, scalar) {
			t.Errorf("model %v: batched result %+v differs from scalar %+v", model, batched, scalar)
		}
	}
}

// TestGIFT128DFABatchMatchesScalar is the 128-bit variant of the
// batch-vs-scalar identity check.
func TestGIFT128DFABatchMatchesScalar(t *testing.T) {
	key := make([]byte, 16)
	prng.New(43).Fill(key)
	c, err := gift.New128(key)
	if err != nil {
		t.Fatal(err)
	}
	pattern := nibblePattern128(5)
	for _, model := range []fault.Model{fault.XorFlip, fault.StuckAtOne} {
		cfg := GIFTDFAConfig{Pairs: 96, TemplateSamples: 512, Model: model}
		batched, err := GIFT128DFA(c, &pattern, cfg, prng.New(9))
		if err != nil {
			t.Fatal(err)
		}
		cfg.NoBatch = true
		scalar, err := GIFT128DFA(c, &pattern, cfg, prng.New(9))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batched, scalar) {
			t.Errorf("model %v: batched result %+v differs from scalar %+v", model, batched, scalar)
		}
	}
}
