package expfault

import (
	"fmt"
	"math"

	"repro/internal/bitvec"
	"repro/internal/ciphers"
	"repro/internal/ciphers/gift"
	"repro/internal/fault"
	"repro/internal/prng"
)

// GIFTDFAConfig tunes the GIFT-64 differential fault attack.
type GIFTDFAConfig struct {
	// FaultRound is where the fault model injects (default 25, §IV-D).
	FaultRound int
	// Pairs is the number of online faulty encryptions (default 1024;
	// recovered bits grow with the pair count because acceptance is
	// significance-gated).
	Pairs int
	// TemplateSamples sizes the attacker's offline simulation of the
	// fault model's differential distributions (default 4096).
	TemplateSamples int
	// MinMargin is the minimum significance (a one-sided t statistic of
	// the per-pair log-likelihood gap between the best and second-best
	// key guess) required to count a guess's bits as recovered
	// (default 4.5, the same confidence level the paper's leakage
	// threshold θ uses). Guesses that are statistically
	// indistinguishable — e.g. genuinely symmetric key bits — are
	// reported unrecovered instead of being coin-flipped.
	MinMargin float64
	// Model is the typed fault model injected at FaultRound (default
	// fault.XorFlip, bit-identical to the historical bit-flip attack).
	// The offline templates are rebuilt under the same model, so the
	// guess-and-filter machinery works unchanged for stuck-at and
	// random-value faults.
	Model fault.Model
	// NoBatch forces the per-pair scalar Encrypt loops for the offline
	// templates and the online pair collection. The batched default
	// drives the same PRNG stream through the cipher's fork kernel in
	// 64-wide blocks and is bit-identical; the knob exists for
	// benchmarking and cross-checks.
	NoBatch bool
}

func (c *GIFTDFAConfig) setDefaults() {
	if c.FaultRound == 0 {
		c.FaultRound = 25
	}
	if c.Pairs == 0 {
		c.Pairs = 1024
	}
	if c.TemplateSamples == 0 {
		c.TemplateSamples = 8192
	}
	if c.MinMargin == 0 {
		c.MinMargin = 4.5
	}
}

// GIFTDFA mounts a nibble-wise guess-and-filter DFA against GIFT-64 for
// an arbitrary fault model (bit pattern injected at FaultRound), the
// verification step the paper performs with ExpFault on the newly
// discovered {8,9,10,11,12,14} multi-nibble model.
//
// The attack exploits two structural facts. First, GIFT's AddRoundKey
// XORs key bits only at state bits 4i and 4i+1, and PermBits preserves
// the bit index mod 4, so the four pre-permutation bits feeding one
// input nibble of round r contain exactly two unknown key bits —
// each nibble of the round-key pair is filtered independently over just
// 4 guesses. Second, XOR differentials pass through AddRoundKey
// unchanged, so the differential distribution of a round input is
// computable offline from the fault model alone (it is key-independent
// for uniform plaintexts); the attacker matches observed differentials
// against that template by log-likelihood.
//
// Round keys 28 and then 27 are recovered (64 bits; the GIFT key schedule
// is a bit permutation/rotation, so round-key bits are master-key bits).
// Nibbles whose differential carries no information (inactive or
// template-flat) are reported unrecovered, mirroring ExpFault's partial
// key recovery for GIFT (80/128 in the paper, which additionally exploits
// a second fault at round 23 for the rest).
func GIFTDFA(target *gift.Cipher, pattern *bitvec.Vector, cfg GIFTDFAConfig, rng *prng.Source) (*KeyRecoveryResult, error) {
	cfg.setDefaults()
	if target.Name() != "gift64" {
		return nil, fmt.Errorf("expfault: GIFTDFA supports gift64 only")
	}
	if pattern.Len() != 64 {
		return nil, fmt.Errorf("expfault: pattern width %d, want 64", pattern.Len())
	}
	if pattern.IsZero() {
		return nil, fmt.Errorf("expfault: empty pattern")
	}
	rounds := target.Rounds() // 28

	// Offline phase: simulate the fault model under an attacker-chosen
	// key to build per-nibble differential templates at the inputs of
	// the last two rounds. The distributions are key-independent because
	// uniform plaintexts make every intermediate state uniform.
	tmplKey := make([]byte, 16)
	rng.Fill(tmplKey)
	tmplCipher, err := gift.New64(tmplKey)
	if err != nil {
		return nil, err
	}
	var tmplKern ciphers.BatchKernel
	if !cfg.NoBatch {
		tmplKern = batchKernelFor(tmplCipher)
	}
	tmpl28, err := diffTemplate(tmplCipher, tmplKern, pattern, cfg.Model, cfg.FaultRound, rounds, cfg.TemplateSamples, rng)
	if err != nil {
		return nil, err
	}
	tmpl27, err := diffTemplate(tmplCipher, tmplKern, pattern, cfg.Model, cfg.FaultRound, rounds-1, cfg.TemplateSamples, rng)
	if err != nil {
		return nil, err
	}

	// Online phase: collect ciphertext pairs from the target.
	cc := make([]uint64, cfg.Pairs)
	cf := make([]uint64, cfg.Pairs)
	if !cfg.NoBatch {
		p := 0
		collectForks(target, batchKernelFor(target), pattern, cfg.Model, cfg.FaultRound,
			ciphers.BatchPoint{Round: 0}, cfg.Pairs, rng, func(clean, faulty []byte) {
				cc[p] = le64(clean)
				cf[p] = le64(faulty)
				p++
			})
	} else {
		tr := ciphers.NewTrace(target)
		pt := make([]byte, 8)
		out := make([]byte, 8)
		mf := newModelFault(pattern, cfg.Model, cfg.FaultRound)
		for p := 0; p < cfg.Pairs; p++ {
			rng.Fill(pt)
			f := mf.draw(rng)
			target.Encrypt(out, pt, nil, tr)
			cc[p] = le64(tr.Ciphertext)
			target.Encrypt(out, pt, f, tr)
			cf[p] = le64(tr.Ciphertext)
		}
	}

	guesses := 0.0

	// Phase 1: recover round key 28 nibble by nibble from ciphertexts.
	rk28 := recoverRoundKey(cc, cf, tmpl28, rounds, cfg.MinMargin)
	guesses += 16 * 4 * float64(cfg.Pairs)

	recovered := countBits16(rk28.gotU) + countBits16(rk28.gotV)
	notes := fmt.Sprintf("RK28: %d/32 bits (min margin %.3f)", recovered, minOf(rk28.margins))

	// Phase 2: cone recovery at the round-27 input (the paper's own
	// observation point, §IV-D). Each input-27 nibble is computed from
	// four input-28 nibbles, so its cone covers up to eight RK28 bits
	// (those not already fixed by phase 1) plus two RK27 bits; the much
	// stronger round-27 differential template scores the joint guess.
	var rk27 recovery
	coneGuesses := coneRecover(cc, cf, tmpl27, rounds, &rk28, &rk27, cfg.MinMargin)
	guesses += coneGuesses
	n28b := countBits16(rk28.gotU) + countBits16(rk28.gotV) - recovered
	n27 := countBits16(rk27.gotU) + countBits16(rk27.gotV)
	recovered += n28b + n27
	notes += fmt.Sprintf("; cone phase: +%d RK28 bits, %d/32 RK27 bits", n28b, n27)

	if rk28.gotU == 0xffff && rk28.gotV == 0xffff {
		// Peel round 28 with the full recovered key and refine RK27 with
		// the cheap per-nibble filter as a cross-check/completion.
		k28 := gift.KeyMask64(rk28.u, rk28.v) ^ gift.ConstMask64(rounds)
		s27c := make([]uint64, cfg.Pairs)
		s27f := make([]uint64, cfg.Pairs)
		for p := 0; p < cfg.Pairs; p++ {
			s27c[p] = invRound64(cc[p] ^ k28)
			s27f[p] = invRound64(cf[p] ^ k28)
		}
		peeled := recoverRoundKey(s27c, s27f, tmpl27, rounds-1, cfg.MinMargin)
		guesses += 16 * 4 * float64(cfg.Pairs)
		add27 := (peeled.gotU &^ rk27.gotU) | (peeled.gotV &^ rk27.gotV)
		if add27 != 0 {
			rk27.u |= peeled.u & peeled.gotU &^ rk27.gotU
			rk27.v |= peeled.v & peeled.gotV &^ rk27.gotV
			extra := countBits16(peeled.gotU&^rk27.gotU) + countBits16(peeled.gotV&^rk27.gotV)
			rk27.gotU |= peeled.gotU
			rk27.gotV |= peeled.gotV
			recovered += extra
			notes += fmt.Sprintf("; peel phase: +%d RK27 bits", extra)
		}
	}

	// Verify every claimed bit against the target's true schedule.
	tu28, tv28 := target.RoundKeyWords(rounds)
	tu27, tv27 := target.RoundKeyWords(rounds - 1)
	correct := rk28.matches(uint16(tu28), uint16(tv28)) &&
		rk27.matches(uint16(tu27), uint16(tv27))

	return &KeyRecoveryResult{
		RecoveredBits: recovered,
		TotalKeyBits:  128,
		FaultsUsed:    cfg.Pairs,
		OfflineLog2:   log2(guesses + 2*float64(cfg.TemplateSamples)),
		Correct:       correct,
		Notes:         notes,
	}, nil
}

// diffTemplate returns, per nibble, the distribution of the differential
// at the input of obsRound for the fault model, from samples simulations.
// A non-nil kern routes the paired simulations through the batched fork
// engine (bit-identical to the scalar loop; see collectForks); injection
// points past the observation round keep the scalar path, which reads
// the observation from the shared prefix.
func diffTemplate(c *gift.Cipher, kern ciphers.BatchKernel, pattern *bitvec.Vector, model fault.Model, faultRound, obsRound, samples int, rng *prng.Source) ([16][16]float64, error) {
	var hist [16][16]int
	bin := func(d uint64) {
		for n := 0; n < 16; n++ {
			hist[n][d>>(4*uint(n))&0xf]++
		}
	}
	if kern != nil && faultRound <= obsRound {
		collectForks(c, kern, pattern, model, faultRound,
			ciphers.BatchPoint{Round: obsRound}, samples, rng, func(clean, faulty []byte) {
				bin(le64(clean) ^ le64(faulty))
			})
	} else {
		tr := ciphers.NewTrace(c)
		pt := make([]byte, 8)
		out := make([]byte, 8)
		mf := newModelFault(pattern, model, faultRound)
		for s := 0; s < samples; s++ {
			rng.Fill(pt)
			f := mf.draw(rng)
			c.Encrypt(out, pt, nil, tr)
			cleanIn := le64(tr.Inputs[obsRound-1])
			c.Encrypt(out, pt, f, tr)
			faultIn := le64(tr.Inputs[obsRound-1])
			bin(cleanIn ^ faultIn)
		}
	}
	var tmpl [16][16]float64
	for n := 0; n < 16; n++ {
		for v := 0; v < 16; v++ {
			// Laplace smoothing keeps log-likelihoods finite.
			tmpl[n][v] = (float64(hist[n][v]) + 0.5) / (float64(samples) + 8)
		}
	}
	return tmpl, nil
}

// recovery holds the outcome of one round-key recovery phase: the U and V
// word values with bitmasks of which word bits were actually determined.
type recovery struct {
	u, v       uint16
	gotU, gotV uint16
	margins    [16]float64
}

// matches reports whether every determined bit agrees with the true words.
func (r recovery) matches(tu, tv uint16) bool {
	return r.u&r.gotU == tu&r.gotU && r.v&r.gotV == tv&r.gotV
}

// recoverRoundKey guesses, for every input nibble n of the round, the two
// key bits that gate it, scoring guesses by the log-likelihood of the
// observed input differentials under the template. Nibble n is fed by the
// pre-permutation bits P(4n+j); of these, P(4n) carries V bit P(4n)/4 and
// P(4n+1) carries U bit (P(4n+1)-1)/4 (GIFT keys bits 4i and 4i+1 only,
// and PermBits preserves the bit index mod 4). A guess's bits count as
// recovered only when its per-pair log-likelihood lead over the runner-up
// is statistically significant (see GIFTDFAConfig.MinMargin).
func recoverRoundKey(cc, cf []uint64, tmpl [16][16]float64, round int, minMargin float64) recovery {
	var out recovery
	cm := gift.ConstMask64(round)
	pairs := len(cc)
	perPair := make([][]float64, 4)
	for g := range perPair {
		perPair[g] = make([]float64, pairs)
	}
	idx := make([]uint16, pairs)
	for n := 0; n < 16; n++ {
		var pos [4]int
		for j := 0; j < 4; j++ {
			pos[j] = gift.Perm64(4*n + j)
		}
		vIdx := pos[0] / 4
		uIdx := (pos[1] - 1) / 4
		// Batched guess evaluation: the guess bits land at intra-nibble
		// positions 0 and 1 of the assembled nibble, so a guess g XORs the
		// value g straight into both sides. Extract the guess-free nibble
		// pair once per trace and fold the guess plus both inverse S-box
		// passes and the log into a 4x256 table — the per-(guess, pair)
		// work drops from eight bit gathers to one lookup, with float
		// values and summation order identical to the direct loop.
		for p := range cc {
			a0 := extractNibble(cc[p]^cm, pos)
			b0 := extractNibble(cf[p]^cm, pos)
			idx[p] = uint16(a0) | uint16(b0)<<4
		}
		var llTab [4][256]float64
		for g := 0; g < 4; g++ {
			for a0 := 0; a0 < 16; a0++ {
				for b0 := 0; b0 < 16; b0++ {
					d := gift.InvSBox(byte(a0)^byte(g)) ^ gift.InvSBox(byte(b0)^byte(g))
					llTab[g][a0|b0<<4] = math.Log(tmpl[n][d])
				}
			}
		}
		var score [4]float64
		for g := 0; g < 4; g++ { // g = vBit | uBit<<1
			tab := &llTab[g]
			var s float64
			for p := range cc {
				ll := tab[idx[p]]
				perPair[g][p] = ll
				s += ll
			}
			score[g] = s
		}
		best, second := 0, -1
		for g := 1; g < 4; g++ {
			if score[g] > score[best] {
				second = best
				best = g
			} else if second < 0 || score[g] > score[second] {
				second = g
			}
		}
		out.margins[n] = gapSignificance(perPair[best], perPair[second])
		if out.margins[n] >= minMargin {
			out.gotV |= 1 << uint(vIdx)
			out.gotU |= 1 << uint(uIdx)
			out.v |= uint16(best&1) << uint(vIdx)
			out.u |= uint16(best>>1) << uint(uIdx)
		}
	}
	return out
}

// gapSignificance returns the one-sided t statistic of the mean per-pair
// log-likelihood gap between two guesses: mean(a-b) / (sd(a-b)/sqrt(n)).
// Genuinely symmetric guesses have mean ~0 and never clear a 4.5 bar,
// whereas informative nibbles separate rapidly with the pair count.
func gapSignificance(a, b []float64) float64 {
	n := float64(len(a))
	if n < 2 {
		return 0
	}
	var mean float64
	for i := range a {
		mean += a[i] - b[i]
	}
	mean /= n
	var varSum float64
	for i := range a {
		d := a[i] - b[i] - mean
		varSum += d * d
	}
	sd := math.Sqrt(varSum / (n - 1))
	if sd < 1e-12 {
		if mean > 0 {
			return 1e6
		}
		return 0
	}
	return mean / (sd / math.Sqrt(n))
}

func countBits16(m uint16) int {
	n := 0
	for m != 0 {
		n++
		m &= m - 1
	}
	return n
}

// feedTab caches, for one feeding input-28 nibble, the candidate values
// under each of its 2-bit key guesses: vals[guess][pair] packs the clean
// nibble in the low half and the faulty nibble in the high half.
type feedTab struct {
	vals    [4][]byte
	allowed [4]bool
}

// conePerPair computes the per-pair log-likelihoods of one joint cone
// guess (gs[0..3] for the feeding nibbles, gs[4] for the RK27 bits).
func conePerPair(tabs [4]feedTab, off [4]int, q [4]int, cm27 uint64, tmpl [16]float64, gs [5]int, pairs int) []float64 {
	km := byte(gs[4]&1) | byte(gs[4]>>1)<<1
	cmbits := byte(cm27>>uint(q[0])&1) |
		byte(cm27>>uint(q[1])&1)<<1 |
		byte(cm27>>uint(q[2])&1)<<2 |
		byte(cm27>>uint(q[3])&1)<<3
	out := make([]float64, pairs)
	for p := 0; p < pairs; p++ {
		var xa, xb byte
		for j := 0; j < 4; j++ {
			v := tabs[j].vals[gs[j]][p]
			xa |= (v >> uint(off[j]) & 1) << uint(j)
			xb |= (v >> uint(4+off[j]) & 1) << uint(j)
		}
		da := gift.InvSBox(xa ^ km ^ cmbits)
		db := gift.InvSBox(xb ^ km ^ cmbits)
		out[p] = math.Log(tmpl[da^db])
	}
	return out
}

// coneRecover runs the input-27 cone phase: for every input-27 nibble it
// enumerates the unknown key bits in its backward cone (up to eight RK28
// bits and two RK27 bits), scores each joint guess against the round-27
// input template over all pairs, and commits the bits of cones whose
// best-vs-second margin clears minMargin. Cones are committed in
// descending margin order so overlapping claims resolve to the stronger
// cone; previously-known RK28 bits constrain the enumeration. It returns
// the number of guess evaluations (for the offline-complexity estimate).
func coneRecover(cc, cf []uint64, tmpl [16][16]float64, rounds int, rk28, rk27 *recovery, minMargin float64) float64 {
	cm28 := gift.ConstMask64(rounds)
	cm27 := gift.ConstMask64(rounds - 1)
	pairs := len(cc)
	work := 0.0

	type coneResult struct {
		margin   float64
		m        int    // input-27 nibble index
		feed     [4]int // feeding input-28 nibble indices
		bestG28  [4]int // per-feeding-nibble key guess (v | u<<1)
		bestG27  int    // RK27 guess (v | u<<1)
		u27, v27 int    // RK27 word bit indices
	}
	var results []coneResult

	for m := 0; m < 16; m++ {
		// Positions of the four ARK27-output (= input-28 state) bits
		// feeding input-27 nibble m, and the RK27 bits among them.
		var q [4]int
		for j := 0; j < 4; j++ {
			q[j] = gift.Perm64(4*m + j)
		}
		v27Idx := q[0] / 4
		u27Idx := (q[1] - 1) / 4
		var feed, off [4]int
		for j := 0; j < 4; j++ {
			feed[j] = q[j] / 4
			off[j] = q[j] % 4
		}
		// Per feeding nibble: the four candidate values under each of
		// its 2-bit key guesses, per pair and per clean/faulty side,
		// plus the guess constraint from phase-1 knowledge.
		var tabs [4]feedTab
		for j := 0; j < 4; j++ {
			f := feed[j]
			var pos [4]int
			for i := 0; i < 4; i++ {
				pos[i] = gift.Perm64(4*f + i)
			}
			vIdx := pos[0] / 4
			uIdx := (pos[1] - 1) / 4
			for g := 0; g < 4; g++ {
				ok := true
				if rk28.gotV>>uint(vIdx)&1 == 1 && int(rk28.v>>uint(vIdx)&1) != g&1 {
					ok = false
				}
				if rk28.gotU>>uint(uIdx)&1 == 1 && int(rk28.u>>uint(uIdx)&1) != g>>1 {
					ok = false
				}
				tabs[j].allowed[g] = ok
				if !ok {
					continue
				}
				gm := uint64(g&1)<<uint(pos[0]) | uint64(g>>1)<<uint(pos[1])
				vals := make([]byte, pairs)
				for p := 0; p < pairs; p++ {
					a := gift.InvSBox(extractNibble(cc[p]^cm28^gm, pos))
					b := gift.InvSBox(extractNibble(cf[p]^cm28^gm, pos))
					vals[p] = a | b<<4
				}
				tabs[j].vals[g] = vals
			}
		}
		// Enumerate joint guesses. The RK27 guess bits sit at intra-nibble
		// positions 0 (V) and 1 (U) of the assembled pre-S-box nibble (the
		// round-27 constant bits too), so both inverse S-box passes and
		// the log collapse into a 4x256 table per g27 — all four g27
		// scores of one feeding-guess combination then come from a single
		// pass over the pairs, with float values and per-accumulator
		// summation order identical to the direct loop.
		cmbits := byte(cm27>>uint(q[0])&1) |
			byte(cm27>>uint(q[1])&1)<<1 |
			byte(cm27>>uint(q[2])&1)<<2 |
			byte(cm27>>uint(q[3])&1)<<3
		var llTab27 [4][256]float64
		for g27 := 0; g27 < 4; g27++ {
			km := byte(g27&1) | byte(g27>>1)<<1
			for xa := 0; xa < 16; xa++ {
				for xb := 0; xb < 16; xb++ {
					da := gift.InvSBox(byte(xa) ^ km ^ cmbits)
					db := gift.InvSBox(byte(xb) ^ km ^ cmbits)
					llTab27[g27][xa|xb<<4] = math.Log(tmpl[m][da^db])
				}
			}
		}
		best, second := -1e18, -1e18
		var bestCone coneResult
		var bestGs, secondGs [5]int // g0..g3, g27 of the top two guesses
		haveSecond := false
		for g0 := 0; g0 < 4; g0++ {
			if !tabs[0].allowed[g0] {
				continue
			}
			for g1 := 0; g1 < 4; g1++ {
				if !tabs[1].allowed[g1] {
					continue
				}
				for g2 := 0; g2 < 4; g2++ {
					if !tabs[2].allowed[g2] {
						continue
					}
					for g3 := 0; g3 < 4; g3++ {
						if !tabs[3].allowed[g3] {
							continue
						}
						gs := [4]int{g0, g1, g2, g3}
						v0, v1, v2, v3 := tabs[0].vals[g0], tabs[1].vals[g1], tabs[2].vals[g2], tabs[3].vals[g3]
						var scores [4]float64
						for p := 0; p < pairs; p++ {
							xa := v0[p]>>uint(off[0])&1 |
								v1[p]>>uint(off[1])&1<<1 |
								v2[p]>>uint(off[2])&1<<2 |
								v3[p]>>uint(off[3])&1<<3
							xb := v0[p]>>uint(4+off[0])&1 |
								v1[p]>>uint(4+off[1])&1<<1 |
								v2[p]>>uint(4+off[2])&1<<2 |
								v3[p]>>uint(4+off[3])&1<<3
							iv := uint16(xa) | uint16(xb)<<4
							scores[0] += llTab27[0][iv]
							scores[1] += llTab27[1][iv]
							scores[2] += llTab27[2][iv]
							scores[3] += llTab27[3][iv]
						}
						work += 4 * float64(pairs)
						for g27 := 0; g27 < 4; g27++ {
							score := scores[g27]
							if score > best {
								second = best
								secondGs = bestGs
								haveSecond = haveSecond || best > -1e18
								best = score
								bestGs = [5]int{gs[0], gs[1], gs[2], gs[3], g27}
								bestCone = coneResult{
									m: m, feed: feed, bestG28: gs, bestG27: g27,
									u27: u27Idx, v27: v27Idx,
								}
							} else if score > second {
								second = score
								secondGs = [5]int{gs[0], gs[1], gs[2], gs[3], g27}
								haveSecond = true
							}
						}
					}
				}
			}
		}
		if !haveSecond {
			// Every alternative was excluded by phase-1 knowledge; the
			// cone adds no new information to test against.
			bestCone.margin = 0
		} else {
			// Significance of the lead: recompute the per-pair
			// log-likelihoods of the two top guesses and t-test the gap.
			llBest := conePerPair(tabs, off, q, cm27, tmpl[m], bestGs, pairs)
			llSecond := conePerPair(tabs, off, q, cm27, tmpl[m], secondGs, pairs)
			bestCone.margin = gapSignificance(llBest, llSecond)
		}
		results = append(results, bestCone)
	}

	// Commit cones strongest-first.
	for {
		bi := -1
		for i := range results {
			if results[i].m >= 0 && (bi < 0 || results[i].margin > results[bi].margin) {
				bi = i
			}
		}
		if bi < 0 || results[bi].margin < minMargin {
			break
		}
		r := results[bi]
		results[bi].m = -1
		for j := 0; j < 4; j++ {
			f := r.feed[j]
			var pos [4]int
			for i := 0; i < 4; i++ {
				pos[i] = gift.Perm64(4*f + i)
			}
			vIdx := pos[0] / 4
			uIdx := (pos[1] - 1) / 4
			g := r.bestG28[j]
			if rk28.gotV>>uint(vIdx)&1 == 0 {
				rk28.gotV |= 1 << uint(vIdx)
				rk28.v |= uint16(g&1) << uint(vIdx)
			}
			if rk28.gotU>>uint(uIdx)&1 == 0 {
				rk28.gotU |= 1 << uint(uIdx)
				rk28.u |= uint16(g>>1) << uint(uIdx)
			}
		}
		if rk27.gotV>>uint(r.v27)&1 == 0 {
			rk27.gotV |= 1 << uint(r.v27)
			rk27.v |= uint16(r.bestG27&1) << uint(r.v27)
		}
		if rk27.gotU>>uint(r.u27)&1 == 0 {
			rk27.gotU |= 1 << uint(r.u27)
			rk27.u |= uint16(r.bestG27>>1) << uint(r.u27)
		}
	}
	return work
}

// extractNibble assembles the 4 bits at pos into a nibble value (bit j of
// the result from pos[j]).
func extractNibble(s uint64, pos [4]int) byte {
	var x byte
	for j := 0; j < 4; j++ {
		x |= byte(s>>uint(pos[j])&1) << uint(j)
	}
	return x
}

// invRound64 inverts one key-free GIFT-64 round (inverse permutation then
// inverse S-box); the caller removes AddRoundKey first.
func invRound64(s uint64) uint64 {
	var out uint64
	for i := 0; i < 64; i++ {
		out |= (s >> uint(gift.Perm64(i)) & 1) << uint(i)
	}
	var sub uint64
	for n := 0; n < 16; n++ {
		sub |= uint64(gift.InvSBox(byte(out>>(4*uint(n))&0xf))) << (4 * uint(n))
	}
	return sub
}

// le64 assembles a repository-bit-order byte slice into a uint64.
func le64(b []byte) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func minOf(xs [16]float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}
