package expfault

import (
	"fmt"
	"math"

	"repro/internal/bitvec"
	"repro/internal/ciphers"
	"repro/internal/ciphers/aes"
	"repro/internal/prng"
)

// AESPiretQuisquater mounts the classic Piret–Quisquater DFA [23] against
// AES-128, the attack that the byte fault models discovered by
// ExploreFault enable: a single-byte fault at the input of round 9
// produces a MixColumns-patterned differential (m0·z, m1·z, m2·z, m3·z)
// in one column of the round-10 input, which filters the four last-round
// key bytes covering that column. Faults on bytes of all four SR-target
// columns recover the whole of K10, which inverts to the master key via
// the key schedule.
//
// The attack runs against the trace-level simulator, so its success is
// verified against the true key. pairsPerColumn faulty ciphertexts are
// collected per column (2 suffice in theory; 3 is robust). Each column's
// pairs run through the cipher's batched fork kernel in one call — the
// rounds before the injection are computed once per plaintext and both
// branches use the T-table fast path — with the PRNG drawn per pair in
// the scalar order, so collected pairs (and with them every candidate
// set) are bit-identical to per-pair Encrypt calls.
func AESPiretQuisquater(c *aes.Cipher, pairsPerColumn int, rng *prng.Source) (*KeyRecoveryResult, error) {
	if pairsPerColumn < 2 {
		return nil, fmt.Errorf("expfault: need at least 2 pairs per column")
	}
	kern := batchKernelFor(c)
	// MixColumns coefficient column for a fault entering at row r:
	// output byte i of the column gets mc[i][r]·z.
	mc := [4][4]byte{
		{2, 3, 1, 1},
		{1, 2, 3, 1},
		{1, 1, 2, 3},
		{3, 1, 1, 2},
	}

	var recoveredK10 [16]byte
	var have [16]bool
	guessesScored := 0.0
	faults := 0

	pt := make([]byte, 16)
	clean := make([]byte, 16)
	faulty := make([]byte, 16)

	// Batch buffers: up to pairsPerColumn pairs per fork call (the rare
	// adaptive extensions run one pair at a time, preserving the scalar
	// PRNG draw order).
	ptBuf := make([]byte, pairsPerColumn*16)
	maskBuf := make([]byte, pairsPerColumn*16)
	cleanBuf := make([]byte, pairsPerColumn*16)
	faultyBuf := make([]byte, pairsPerColumn*16)
	noPoints := []ciphers.BatchPoint{}

	// For each target column j of the round-10 input, fault the round-9
	// input byte at row 0 that ShiftRows sends to column j: byte (0, j).
	for col := 0; col < 4; col++ {
		faultByte := 4 * col // row 0, column col; SR keeps row 0 in place
		row := faultByte % 4
		// Ciphertext positions of the column's bytes after SubBytes and
		// ShiftRows of round 10.
		var ctPos [4]int
		for i := 0; i < 4; i++ {
			ctPos[i] = aes.ShiftRowsIndex(4*col + i)
		}
		// Candidate key quads surviving all pairs so far. If the fixed
		// budget leaves more than one survivor (rare but possible —
		// two pairs can share spurious z-collisions), keep collecting
		// extra pairs up to a small cap; each extra pair filters the
		// impostors by a factor of ~2^-24.
		var survivors [][4]byte
		first := true
		pairsBudget := pairsPerColumn
		for collected := 0; collected < pairsBudget; {
			n := pairsBudget - collected
			for t := 0; t < n; t++ {
				rng.Fill(ptBuf[t*16 : (t+1)*16])
				mask := maskBuf[t*16 : (t+1)*16]
				for i := range mask {
					mask[i] = 0
				}
				// Non-zero random fault value on the chosen byte.
				for mask[faultByte] == 0 {
					mask[faultByte] = rng.Byte()
				}
			}
			ciphers.EncryptForksOps(c, kern, 9, noPoints, n, ptBuf,
				[][]byte{nil, maskBuf}, nil, [][]byte{nil, nil}, [][]byte{cleanBuf, faultyBuf})
			faults += n
			for t := 0; t < n; t++ {
				cands := pqColumnCandidates(cleanBuf[t*16:(t+1)*16], faultyBuf[t*16:(t+1)*16], ctPos, mc, row)
				guessesScored += 1024 // 4 * 256 table builds per pair
				if first {
					survivors = cands
					first = false
					continue
				}
				survivors = intersectQuads(survivors, cands)
			}
			collected += n
			// Extend the budget one pair at a time while ambiguity and
			// the cap allow, exactly as the scalar loop did.
			if len(survivors) > 1 && pairsBudget < pairsPerColumn+4 {
				pairsBudget = collected + 1
			}
		}
		if len(survivors) != 1 {
			return &KeyRecoveryResult{
				TotalKeyBits: 128,
				FaultsUsed:   faults,
				Notes:        fmt.Sprintf("column %d: %d key-quad candidates remain", col, len(survivors)),
			}, nil
		}
		for i := 0; i < 4; i++ {
			recoveredK10[ctPos[i]] = survivors[0][i]
			have[ctPos[i]] = true
		}
	}
	for _, h := range have {
		if !h {
			return nil, fmt.Errorf("expfault: internal error: K10 byte not covered")
		}
	}

	master := aesInvertKeySchedule(recoveredK10)
	verify, err := aes.New(master[:])
	if err != nil {
		return nil, err
	}
	// Correctness check: the derived cipher must reproduce a known
	// plaintext/ciphertext pair of the target.
	rng.Fill(pt)
	c.Encrypt(clean, pt, nil, nil)
	verify.Encrypt(faulty, pt, nil, nil)
	correct := equal16(clean, faulty)

	return &KeyRecoveryResult{
		RecoveredBits: 128,
		TotalKeyBits:  128,
		FaultsUsed:    faults,
		OfflineLog2:   log2(guessesScored),
		Correct:       correct,
		Notes:         "full K10 via Piret–Quisquater; master key by key-schedule inversion",
	}, nil
}

// pqColumnCandidates returns all key quads (k0..k3 at ctPos order) that
// are consistent with the MixColumns pattern for one fault pair.
func pqColumnCandidates(clean, faulty []byte, ctPos [4]int, mc [4][4]byte, row int) [][4]byte {
	// diffTable[i][d] lists key bytes k with
	// InvSB(c_i^k) ^ InvSB(c'_i^k) == d.
	var diffTable [4][256][]byte
	for i := 0; i < 4; i++ {
		ci, fi := clean[ctPos[i]], faulty[ctPos[i]]
		for k := 0; k < 256; k++ {
			d := aes.InvSBox(ci^byte(k)) ^ aes.InvSBox(fi^byte(k))
			diffTable[i][d] = append(diffTable[i][d], byte(k))
		}
	}
	var out [][4]byte
	// Enumerate the unknown fault difference z (it is non-zero).
	for z := 1; z < 256; z++ {
		var lists [4][]byte
		ok := true
		for i := 0; i < 4; i++ {
			want := aes.MulGF(mc[i][row], byte(z))
			lists[i] = diffTable[i][want]
			if len(lists[i]) == 0 {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		for _, k0 := range lists[0] {
			for _, k1 := range lists[1] {
				for _, k2 := range lists[2] {
					for _, k3 := range lists[3] {
						out = append(out, [4]byte{k0, k1, k2, k3})
					}
				}
			}
		}
	}
	return out
}

func intersectQuads(a, b [][4]byte) [][4]byte {
	set := make(map[[4]byte]bool, len(b))
	for _, q := range b {
		set[q] = true
	}
	var out [][4]byte
	for _, q := range a {
		if set[q] {
			out = append(out, q)
		}
	}
	return out
}

// aesInvertKeySchedule walks the AES-128 key schedule backwards from the
// round-10 key to the master key.
func aesInvertKeySchedule(k10 [16]byte) [16]byte {
	var w [44][4]byte
	for i := 0; i < 4; i++ {
		copy(w[40+i][:], k10[4*i:4*i+4])
	}
	rcon := [10]byte{1, 2, 4, 8, 16, 32, 64, 128, 0x1b, 0x36}
	for i := 39; i >= 0; i-- {
		if (i+4)%4 == 0 {
			t := w[i+3]
			t = [4]byte{aes.SBox(t[1]), aes.SBox(t[2]), aes.SBox(t[3]), aes.SBox(t[0])}
			t[0] ^= rcon[(i+4)/4-1]
			for j := 0; j < 4; j++ {
				w[i][j] = w[i+4][j] ^ t[j]
			}
		} else {
			for j := 0; j < 4; j++ {
				w[i][j] = w[i+4][j] ^ w[i+3][j]
			}
		}
	}
	var master [16]byte
	for i := 0; i < 4; i++ {
		copy(master[4*i:4*i+4], w[i][:])
	}
	return master
}

func equal16(a, b []byte) bool {
	for i := 0; i < 16; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func log2(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Log2(x)
}

// AESDiagonalProfile is a convenience wrapper: it profiles the diagonal
// fault model at round 8 and reports the distinguisher round (should be
// the round-10 input, matching Fig. 1).
func AESDiagonalProfile(c *aes.Cipher, diagonal, samples int, rng *prng.Source) (*PropagationProfile, error) {
	d := aes.Diagonal(diagonal)
	pattern := bitvec.New(128)
	for _, b := range d {
		for j := 0; j < 8; j++ {
			pattern.Set(8*b + j)
		}
	}
	return Profile(c, &pattern, 8, samples, rng)
}
