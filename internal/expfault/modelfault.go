package expfault

import (
	"repro/internal/bitvec"
	"repro/internal/ciphers"
	"repro/internal/fault"
	"repro/internal/prng"
)

// modelFault draws per-trace typed-model injections for the offline
// template and online collection loops. For fault.XorFlip the draw is
// bit-for-bit the historical bitvec.RandomMask stream, so bit-flip
// attacks are unchanged; other models exercise the generalized
// (AND, XOR) injection op of internal/ciphers.
//
// The template-based attacks stay sound for every model: uniform
// plaintexts make the state at the injection point uniform regardless of
// key, so the joint (state, fault) distribution — and with it every later
// round's differential distribution — is key-independent, which is all
// diffTemplate needs.
type modelFault struct {
	inj *fault.Injector
	f   ciphers.Fault
}

func newModelFault(pattern *bitvec.Vector, model fault.Model, round int) *modelFault {
	mf := &modelFault{inj: fault.NewInjector(*pattern, model, fault.RandomMask)}
	bb := (pattern.Len() + 7) / 8
	mf.f.Round = round
	if mf.inj.HasXor() {
		mf.f.Mask = make([]byte, bb)
	}
	if mf.inj.HasAnd() {
		mf.f.And = make([]byte, bb)
	}
	return mf
}

// draw refreshes the fault halves for one trace and returns the fault.
func (mf *modelFault) draw(rng *prng.Source) *ciphers.Fault {
	mf.inj.Draw(mf.f.Mask, mf.f.And, rng)
	return &mf.f
}
