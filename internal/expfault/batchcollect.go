package expfault

import (
	"repro/internal/bitvec"
	"repro/internal/ciphers"
	"repro/internal/fault"
	"repro/internal/prng"
)

// batchKernelFor returns a fork kernel for c when it provides one, nil
// otherwise (selecting the scalar reference path in EncryptForksOps).
func batchKernelFor(c ciphers.Cipher) ciphers.BatchKernel {
	if be, ok := c.(ciphers.BatchEncrypter); ok {
		return be.NewBatchKernel()
	}
	return nil
}

// collectForks drives count (clean, faulty) paired encryptions through
// the batched fork engine in 64-wide blocks and hands each pair's bytes
// at the observation point to visit, in sample order. It is the batched
// replacement for the DFA collection loops' per-pair Encrypt calls: the
// shared prefix up to the fault round is computed once per plaintext
// instead of twice, and the forked rounds run through the cipher's
// bitsliced/word kernel.
//
// The PRNG draw order is the scalar loops' exactly — per sample, the
// plaintext is filled first and the fault model drawn second, with no
// other consumers in between — so the collected pairs are bit-identical
// to the scalar path at any block size.
func collectForks(c ciphers.Cipher, kern ciphers.BatchKernel, pattern *bitvec.Vector, model fault.Model, faultRound int, point ciphers.BatchPoint, count int, rng *prng.Source, visit func(clean, faulty []byte)) {
	bb := c.BlockBytes()
	inj := fault.NewInjector(*pattern, model, fault.RandomMask)
	const block = 64
	pts := make([]byte, block*bb)
	var xorBuf, andBuf []byte
	if inj.HasXor() {
		xorBuf = make([]byte, block*bb)
	}
	if inj.HasAnd() {
		andBuf = make([]byte, block*bb)
	}
	stClean := make([]byte, block*bb)
	stFault := make([]byte, block*bb)
	points := []ciphers.BatchPoint{point}
	xors := [][]byte{nil, xorBuf}
	var ands [][]byte
	if andBuf != nil {
		ands = [][]byte{nil, andBuf}
	}
	states := [][]byte{stClean, stFault}
	cts := [][]byte{nil, nil}
	for base := 0; base < count; base += block {
		bn := count - base
		if bn > block {
			bn = block
		}
		for t := 0; t < bn; t++ {
			rng.Fill(pts[t*bb : (t+1)*bb])
			var xs, as []byte
			if xorBuf != nil {
				xs = xorBuf[t*bb : (t+1)*bb]
			}
			if andBuf != nil {
				as = andBuf[t*bb : (t+1)*bb]
			}
			inj.Draw(xs, as, rng)
		}
		ciphers.EncryptForksOps(c, kern, faultRound, points, bn, pts, xors, ands, states, cts)
		for t := 0; t < bn; t++ {
			visit(stClean[t*bb:(t+1)*bb], stFault[t*bb:(t+1)*bb])
		}
	}
}
