package expfault

import (
	"strings"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/ciphers/aes"
	"repro/internal/ciphers/gift"
	"repro/internal/prng"
)

func nibblePattern(nibbles ...int) bitvec.Vector {
	v := bitvec.New(64)
	for _, n := range nibbles {
		for j := 0; j < 4; j++ {
			v.Set(4*n + j)
		}
	}
	return v
}

func bytePattern(bytes ...int) bitvec.Vector {
	v := bitvec.New(128)
	for _, b := range bytes {
		for j := 0; j < 8; j++ {
			v.Set(8*b + j)
		}
	}
	return v
}

func TestAESPiretQuisquaterRecoversKey(t *testing.T) {
	rng := prng.New(101)
	key := make([]byte, 16)
	rng.Fill(key)
	c, err := aes.New(key)
	if err != nil {
		t.Fatal(err)
	}
	res, err := AESPiretQuisquater(c, 3, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	if res.RecoveredBits != 128 {
		t.Fatalf("recovered %d bits (%s)", res.RecoveredBits, res.Notes)
	}
	if !res.Correct {
		t.Fatal("recovered key does not reproduce the target's ciphertexts")
	}
	if res.FaultsUsed != 12 {
		t.Errorf("used %d faults, want 12 (3 per column)", res.FaultsUsed)
	}
	if res.OfflineLog2 > 20 {
		t.Errorf("offline complexity 2^%.1f unexpectedly high", res.OfflineLog2)
	}
}

func TestAESPiretQuisquaterMultipleKeys(t *testing.T) {
	rng := prng.New(202)
	for trial := 0; trial < 3; trial++ {
		key := make([]byte, 16)
		rng.Fill(key)
		c, _ := aes.New(key)
		res, err := AESPiretQuisquater(c, 3, rng.Split())
		if err != nil {
			t.Fatal(err)
		}
		if !res.Correct {
			t.Errorf("trial %d: key %x not recovered (%s)", trial, key, res.Notes)
		}
	}
}

func TestAESPQRejectsTooFewPairs(t *testing.T) {
	c, _ := aes.New(make([]byte, 16))
	if _, err := AESPiretQuisquater(c, 1, prng.New(1)); err == nil {
		t.Error("accepted pairsPerColumn = 1")
	}
}

func TestAESInvertKeySchedule(t *testing.T) {
	rng := prng.New(7)
	key := make([]byte, 16)
	rng.Fill(key)
	c, _ := aes.New(key)
	k10 := c.RoundKey(10)
	master := aesInvertKeySchedule(k10)
	for i := range key {
		if master[i] != key[i] {
			t.Fatalf("schedule inversion wrong: got %x, want %x", master, key)
		}
	}
}

func TestProfileAESDiagonal(t *testing.T) {
	rng := prng.New(11)
	key := make([]byte, 16)
	rng.Fill(key)
	c, _ := aes.New(key)
	prof, err := AESDiagonalProfile(c, 2, 512, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	// Round-9 input: exactly one column active (4 of 16 bytes).
	if a := prof.ActiveGroups[8]; a < 3.5 || a > 4.5 {
		t.Errorf("round-9 active bytes = %.2f, want ~4", a)
	}
	// Round-10 input: everything active (Fig. 1) but still structured.
	if a := prof.ActiveGroups[9]; a < 15 {
		t.Errorf("round-10 active bytes = %.2f, want ~16", a)
	}
	if prof.DistinguisherRound < 9 {
		t.Errorf("distinguisher round %d, want >= 9", prof.DistinguisherRound)
	}
}

func TestProfileValidation(t *testing.T) {
	c, _ := aes.New(make([]byte, 16))
	rng := prng.New(1)
	short := bitvec.New(64)
	if _, err := Profile(c, &short, 8, 64, rng); err == nil {
		t.Error("accepted wrong-width pattern")
	}
	empty := bitvec.New(128)
	if _, err := Profile(c, &empty, 8, 64, rng); err == nil {
		t.Error("accepted empty pattern")
	}
	p := bytePattern(0)
	if _, err := Profile(c, &p, 99, 64, rng); err == nil {
		t.Error("accepted bad round")
	}
}

func TestGIFTDFANewModelRecoversKeyBits(t *testing.T) {
	// The paper's §IV-D verification: the newly discovered multi-nibble
	// model {8,9,10,11,12,14} at round 25 admits key recovery.
	rng := prng.New(303)
	key := make([]byte, 16)
	rng.Fill(key)
	c, err := gift.New64(key)
	if err != nil {
		t.Fatal(err)
	}
	pattern := nibblePattern(8, 9, 10, 11, 12, 14)
	res, err := GIFTDFA(c, &pattern, GIFTDFAConfig{}, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct {
		t.Fatalf("recovered bits disagree with the true key schedule (%s)", res.Notes)
	}
	if res.RecoveredBits < 40 {
		t.Errorf("recovered only %d key bits (%s), want >= 40", res.RecoveredBits, res.Notes)
	}
	if res.OfflineLog2 > 34 {
		t.Errorf("offline complexity 2^%.1f exceeds the paper's 2^33.15 ballpark", res.OfflineLog2)
	}
}

func TestGIFTDFASingleNibbleModel(t *testing.T) {
	// Prior-work model: one nibble at round 25 (Table III GIFT rows).
	rng := prng.New(404)
	key := make([]byte, 16)
	rng.Fill(key)
	c, _ := gift.New64(key)
	pattern := nibblePattern(5)
	res, err := GIFTDFA(c, &pattern, GIFTDFAConfig{Pairs: 256}, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Correct {
		t.Fatalf("incorrect recovered bits (%s)", res.Notes)
	}
	if res.RecoveredBits < 32 {
		t.Errorf("recovered %d bits (%s), want at least full RK28", res.RecoveredBits, res.Notes)
	}
	if !strings.Contains(res.Notes, "RK28: 32/32") {
		t.Errorf("notes = %q, expected full RK28", res.Notes)
	}
}

func TestGIFTDFAValidation(t *testing.T) {
	c, _ := gift.New64(make([]byte, 16))
	rng := prng.New(1)
	empty := bitvec.New(64)
	if _, err := GIFTDFA(c, &empty, GIFTDFAConfig{}, rng); err == nil {
		t.Error("accepted empty pattern")
	}
	short := bitvec.New(32)
	if _, err := GIFTDFA(c, &short, GIFTDFAConfig{}, rng); err == nil {
		t.Error("accepted wrong-width pattern")
	}
}

func TestInvRound64IsRoundInverse(t *testing.T) {
	// invRound64 must invert SubCells+PermBits: encrypting one round
	// without keys and inverting must give back the input.
	rng := prng.New(5)
	for trial := 0; trial < 100; trial++ {
		s := rng.Uint64()
		// Forward: SubCells then PermBits (reimplemented here).
		var sub uint64
		for n := 0; n < 16; n++ {
			sub |= uint64(gift.SBox(byte(s>>(4*uint(n))&0xf))) << (4 * uint(n))
		}
		var perm uint64
		for i := 0; i < 64; i++ {
			perm |= (sub >> uint(i) & 1) << uint(gift.Perm64(i))
		}
		if got := invRound64(perm); got != s {
			t.Fatalf("invRound64 failed: got %x, want %x", got, s)
		}
	}
}

func TestLE64(t *testing.T) {
	b := []byte{0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x80}
	if got := le64(b); got != 0x8000000000000001 {
		t.Errorf("le64 = %x", got)
	}
}

func BenchmarkAESPiretQuisquater(b *testing.B) {
	rng := prng.New(1)
	key := make([]byte, 16)
	rng.Fill(key)
	c, _ := aes.New(key)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AESPiretQuisquater(c, 2, rng.Split()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGIFTDFA(b *testing.B) {
	rng := prng.New(2)
	key := make([]byte, 16)
	rng.Fill(key)
	c, _ := gift.New64(key)
	pattern := nibblePattern(8, 9, 10, 11, 12, 14)
	for _, sub := range []struct {
		name    string
		noBatch bool
	}{{"batch", false}, {"scalar", true}} {
		b.Run(sub.name, func(b *testing.B) {
			cfg := GIFTDFAConfig{Pairs: 64, TemplateSamples: 1024, NoBatch: sub.noBatch}
			for i := 0; i < b.N; i++ {
				if _, err := GIFTDFA(c, &pattern, cfg, rng.Split()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
