// Package leakage implements the exploitability oracle of ExploreFault:
// an ALAFA-style leakage assessor that decides whether a fault pattern
// produces a state differential distinguishable from uniform random.
//
// The statistical machinery lives in internal/evaluate; an Assessor is a
// thin keyed-cipher wrapper around an evaluate.Engine. Campaigns fold
// grouped differentials into streaming accumulators across a deterministic
// worker pool and test them of order 1..G against a process-wide shared
// uniform reference population. The maximum statistic over all points and
// orders is the information-leakage value l fed to the RL agent; l > θ
// (4.5) marks the pattern exploitable.
package leakage

import (
	"context"

	"repro/internal/bitvec"
	"repro/internal/ciphers"
	"repro/internal/evaluate"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/prng"
)

// Config tunes an Assessor. Zero values select paper defaults.
type Config struct {
	// Samples is the number of random plaintexts per assessment
	// (default 2048).
	Samples int
	// MaxOrder is the highest t-test order G (default 2, as in the
	// paper: "no new fault patterns were discovered beyond this").
	MaxOrder int
	// GroupBits is the differential grouping granularity; 0 uses the
	// cipher's native substitution width (8 for AES, 4 for GIFT).
	GroupBits int
	// Threshold is the leakage classification threshold θ (default 4.5).
	Threshold float64
	// Lag is the distance from injection round to first observed round
	// (default fault.DefaultLag). Points overrides the window entirely.
	Lag int
	// Window is how many final rounds are observable by partial
	// decryption (default fault.DefaultWindow).
	Window int
	// Points, if non-empty, fixes the observation points.
	Points []fault.Point
	// Mode selects the fault-value model (default fault.RandomMask).
	Mode fault.Mode
	// Model is the typed fault model (default fault.XorFlip); see
	// evaluate.Config.Model.
	Model fault.Model
	// Oracle selects the statistical oracle (default fault.OracleWelch);
	// see evaluate.Config.Oracle.
	Oracle fault.OracleKind
	// StopAtThreshold makes Assess return as soon as one observation
	// point exceeds the threshold instead of sweeping all points for
	// the global maximum. Training uses this; reporting does not.
	StopAtThreshold bool
	// Workers is the campaign worker-pool size; 0 uses GOMAXPROCS.
	// Results are bit-identical for every value.
	Workers int
	// NoBatch forces the scalar reference path even for ciphers with a
	// batch kernel (bit-identical; for equivalence tests and benchmarks).
	NoBatch bool
	// Metrics, if non-nil, receives engine and campaign instrumentation
	// (see evaluate.Config.Metrics). Assessments are bit-identical with
	// metrics on or off.
	Metrics *obs.Registry
	// Events, if non-nil, receives campaign_started/campaign_finished
	// run events per assessment (see evaluate.Config.Events).
	Events *obs.Emitter
	// RefSeed overrides the uniform-reference stream (0 shares the
	// canonical process-wide reference table entry).
	RefSeed uint64
}

// PointResult is the best statistic observed at one point.
type PointResult = evaluate.PointResult

// Assessment is the outcome of one pattern assessment.
type Assessment = evaluate.Assessment

// Assessor evaluates fault patterns for a fixed keyed cipher and config.
// It is safe for concurrent use: assessments are pure functions of the
// seed derived at construction plus the (pattern, round) arguments.
type Assessor struct {
	engine *evaluate.Engine
}

// NewAssessor creates an assessor for the given keyed cipher. The rng
// fixes the assessor's base seed: equal rng states give assessors with
// identical (reproducible) assessments.
func NewAssessor(c ciphers.Cipher, cfg Config, rng *prng.Source) *Assessor {
	e := evaluate.New(c, evaluate.Config{
		Samples:         cfg.Samples,
		MaxOrder:        cfg.MaxOrder,
		GroupBits:       cfg.GroupBits,
		Threshold:       cfg.Threshold,
		Lag:             cfg.Lag,
		Window:          cfg.Window,
		Points:          cfg.Points,
		Mode:            cfg.Mode,
		Model:           cfg.Model,
		Oracle:          cfg.Oracle,
		StopAtThreshold: cfg.StopAtThreshold,
		Workers:         cfg.Workers,
		NoBatch:         cfg.NoBatch,
		Metrics:         cfg.Metrics,
		Events:          cfg.Events,
		Seed:            rng.Uint64(),
		RefSeed:         cfg.RefSeed,
	})
	return &Assessor{engine: e}
}

// Engine exposes the underlying evaluation engine.
func (a *Assessor) Engine() *evaluate.Engine { return a.engine }

// StateBits returns the cipher state width in bits (the RL action space).
func (a *Assessor) StateBits() int { return a.engine.StateBits() }

// Cipher returns the underlying keyed cipher.
func (a *Assessor) Cipher() ciphers.Cipher { return a.engine.Cipher() }

// Threshold returns the leakage classification threshold θ.
func (a *Assessor) Threshold() float64 { return a.engine.Threshold() }

// Assess measures the information leakage of injecting the pattern at the
// given round. The pattern width must match the cipher state width. A
// done ctx aborts the campaign at the next shard boundary.
func (a *Assessor) Assess(ctx context.Context, pattern *bitvec.Vector, round int) (Assessment, error) {
	return a.engine.Assess(ctx, pattern, round)
}

// AssessModel is Assess with a per-call fault model override (see
// evaluate.Engine.AssessModel).
func (a *Assessor) AssessModel(ctx context.Context, pattern *bitvec.Vector, round int, model fault.Model) (Assessment, error) {
	return a.engine.AssessModel(ctx, pattern, round, model)
}

// AssessOrder runs a single fixed-order assessment (used by the Table I
// harness to contrast first- and second-order statistics).
func (a *Assessor) AssessOrder(ctx context.Context, pattern *bitvec.Vector, round, order int) (Assessment, error) {
	return a.engine.AssessOrder(ctx, pattern, round, order)
}
