// Package leakage implements the exploitability oracle of ExploreFault:
// an ALAFA-style leakage assessor that decides whether a fault pattern
// produces a state differential distinguishable from uniform random.
//
// For unprotected ciphers the assessor simulates paired encryptions,
// collects grouped differentials at the observation points (round inputs /
// post-S-box states after the injection round, plus the ciphertext), and
// runs Welch's t-test of order 1..G against a cached uniform reference
// population. The maximum statistic over all points and orders is the
// information-leakage value l fed to the RL agent; l > θ (4.5) marks the
// pattern exploitable.
package leakage

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/ciphers"
	"repro/internal/fault"
	"repro/internal/prng"
	"repro/internal/stats"
)

// Config tunes an Assessor. Zero values select paper defaults.
type Config struct {
	// Samples is the number of random plaintexts per assessment
	// (default 2048).
	Samples int
	// MaxOrder is the highest t-test order G (default 2, as in the
	// paper: "no new fault patterns were discovered beyond this").
	MaxOrder int
	// GroupBits is the differential grouping granularity; 0 uses the
	// cipher's native substitution width (8 for AES, 4 for GIFT).
	GroupBits int
	// Threshold is the leakage classification threshold θ (default 4.5).
	Threshold float64
	// Lag is the distance from injection round to first observed round
	// (default fault.DefaultLag). Points overrides the window entirely.
	Lag int
	// Window is how many final rounds are observable by partial
	// decryption (default fault.DefaultWindow).
	Window int
	// Points, if non-empty, fixes the observation points.
	Points []fault.Point
	// Mode selects the fault-value model (default fault.RandomMask).
	Mode fault.Mode
	// StopAtThreshold makes Assess return as soon as one observation
	// point exceeds the threshold instead of sweeping all points for
	// the global maximum. Training uses this; reporting does not.
	StopAtThreshold bool
}

func (cfg *Config) setDefaults() {
	if cfg.Samples == 0 {
		cfg.Samples = 2048
	}
	if cfg.MaxOrder == 0 {
		cfg.MaxOrder = 2
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = stats.DefaultThreshold
	}
	if cfg.Lag == 0 {
		cfg.Lag = fault.DefaultLag
	}
	if cfg.Window == 0 {
		cfg.Window = fault.DefaultWindow
	}
}

// PointResult is the best statistic observed at one point.
type PointResult struct {
	Point fault.Point
	Stat  stats.TTestResult
}

// Assessment is the outcome of one pattern assessment.
type Assessment struct {
	// T is the maximum |t| over all observation points and orders: the
	// information leakage l of the paper.
	T float64
	// Leaky reports T > threshold.
	Leaky bool
	// Best identifies where and at which order T was found.
	Best PointResult
	// PerPoint lists the best statistic of every evaluated point (may
	// be truncated when StopAtThreshold fires).
	PerPoint []PointResult
}

// Assessor evaluates fault patterns for a fixed keyed cipher and config.
// It is not safe for concurrent use; create one per goroutine (they are
// cheap — the only shared cost is the reference population, which is
// regenerated per assessor from its own PRNG stream).
type Assessor struct {
	cipher ciphers.Cipher
	cfg    Config
	rng    *prng.Source
	ref    [][]float64 // cached uniform reference population
}

// NewAssessor creates an assessor for the given keyed cipher. The rng
// seeds both the plaintext/fault stream and the uniform reference stream.
func NewAssessor(c ciphers.Cipher, cfg Config, rng *prng.Source) *Assessor {
	cfg.setDefaults()
	if cfg.GroupBits == 0 {
		cfg.GroupBits = c.GroupBits()
	}
	a := &Assessor{cipher: c, cfg: cfg, rng: rng}
	groups := 8 * c.BlockBytes() / cfg.GroupBits
	a.ref = fault.UniformReference(cfg.Samples, cfg.GroupBits, groups, rng.Split())
	return a
}

// StateBits returns the cipher state width in bits (the RL action space).
func (a *Assessor) StateBits() int { return 8 * a.cipher.BlockBytes() }

// Cipher returns the underlying keyed cipher.
func (a *Assessor) Cipher() ciphers.Cipher { return a.cipher }

// Threshold returns the leakage classification threshold θ.
func (a *Assessor) Threshold() float64 { return a.cfg.Threshold }

// Assess measures the information leakage of injecting the pattern at the
// given round. The pattern width must match the cipher state width.
func (a *Assessor) Assess(pattern *bitvec.Vector, round int) (Assessment, error) {
	if pattern.IsZero() {
		return Assessment{}, fmt.Errorf("leakage: empty pattern")
	}
	points := a.cfg.Points
	if len(points) == 0 {
		points = fault.PointsWindow(a.cipher, round, a.cfg.Lag, a.cfg.Window)
	}
	var out Assessment
	// Evaluate point by point so StopAtThreshold can short-circuit the
	// expensive later sweeps; the simulation itself is shared via one
	// Collect call per point group. Collect per point would re-encrypt,
	// so we collect all points at once and then test incrementally.
	cp := fault.Campaign{
		Cipher:    a.cipher,
		Pattern:   *pattern,
		Round:     round,
		Mode:      a.cfg.Mode,
		Samples:   a.cfg.Samples,
		Points:    points,
		GroupBits: a.cfg.GroupBits,
	}
	res, err := cp.Collect(a.rng)
	if err != nil {
		return Assessment{}, err
	}
	for i, p := range res.Points {
		st := stats.MaxUpToOrder(a.cfg.MaxOrder, res.Matrices[i], a.ref)
		pr := PointResult{Point: p, Stat: st}
		out.PerPoint = append(out.PerPoint, pr)
		if st.T > out.T {
			out.T = st.T
			out.Best = pr
		}
		if a.cfg.StopAtThreshold && out.T > a.cfg.Threshold {
			break
		}
	}
	out.Leaky = out.T > a.cfg.Threshold
	return out, nil
}

// AssessOrder runs a single fixed-order assessment (used by the Table I
// harness to contrast first- and second-order statistics).
func (a *Assessor) AssessOrder(pattern *bitvec.Vector, round, order int) (Assessment, error) {
	cp := fault.Campaign{
		Cipher:    a.cipher,
		Pattern:   *pattern,
		Round:     round,
		Mode:      a.cfg.Mode,
		Samples:   a.cfg.Samples,
		Points:    a.cfg.Points,
		GroupBits: a.cfg.GroupBits,
	}
	if len(cp.Points) == 0 {
		cp.Points = fault.PointsWindow(a.cipher, round, a.cfg.Lag, a.cfg.Window)
	}
	res, err := cp.Collect(a.rng)
	if err != nil {
		return Assessment{}, err
	}
	var out Assessment
	for i, p := range res.Points {
		var st stats.TTestResult
		switch order {
		case 1:
			st = stats.FirstOrder(res.Matrices[i], a.ref)
		case 2:
			st = stats.SecondOrder(res.Matrices[i], a.ref)
		default:
			st = stats.HigherOrder(order, res.Matrices[i], a.ref)
		}
		pr := PointResult{Point: p, Stat: st}
		out.PerPoint = append(out.PerPoint, pr)
		if st.T > out.T {
			out.T = st.T
			out.Best = pr
		}
	}
	out.Leaky = out.T > a.cfg.Threshold
	return out, nil
}
