package leakage

import (
	"context"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/ciphers"
	"repro/internal/ciphers/aes"
	_ "repro/internal/ciphers/gift"
	"repro/internal/fault"
	"repro/internal/prng"
)

// bytePattern builds a byte-granular fault pattern for an n-byte state.
func bytePattern(stateBytes int, bytes ...int) bitvec.Vector {
	v := bitvec.New(stateBytes * 8)
	for _, b := range bytes {
		for j := 0; j < 8; j++ {
			v.Set(8*b + j)
		}
	}
	return v
}

func nibblePattern(stateBytes int, nibbles ...int) bitvec.Vector {
	v := bitvec.New(stateBytes * 8)
	for _, n := range nibbles {
		for j := 0; j < 4; j++ {
			v.Set(4*n + j)
		}
	}
	return v
}

func newAESAssessor(t *testing.T, samples int) *Assessor {
	t.Helper()
	rng := prng.New(12345)
	key := make([]byte, 16)
	rng.Fill(key)
	c, err := ciphers.New("aes128", key)
	if err != nil {
		t.Fatal(err)
	}
	return NewAssessor(c, Config{Samples: samples}, rng.Split())
}

func newGIFTAssessor(t *testing.T, samples int) *Assessor {
	t.Helper()
	rng := prng.New(54321)
	key := make([]byte, 16)
	rng.Fill(key)
	c, err := ciphers.New("gift64", key)
	if err != nil {
		t.Fatal(err)
	}
	return NewAssessor(c, Config{Samples: samples}, rng.Split())
}

// TestTableIShape reproduces the core of Table I: byte and diagonal faults
// at AES round 8 are invisible to the first-order t-test but clearly
// exposed by the second-order test.
func TestTableIShape(t *testing.T) {
	a := newAESAssessor(t, 2048)
	for _, tc := range []struct {
		name    string
		pattern bitvec.Vector
	}{
		{"byte", bytePattern(16, 0)},
		{"diagonal", bytePattern(16, 2, 7, 8, 13)},
	} {
		o1, err := a.AssessOrder(context.Background(), &tc.pattern, 8, 1)
		if err != nil {
			t.Fatal(err)
		}
		o2, err := a.AssessOrder(context.Background(), &tc.pattern, 8, 2)
		if err != nil {
			t.Fatal(err)
		}
		if o1.T > a.Threshold() {
			t.Errorf("%s fault: first-order t = %.2f, want < %.1f", tc.name, o1.T, a.Threshold())
		}
		if o2.T < 3*a.Threshold() {
			t.Errorf("%s fault: second-order t = %.2f, want strongly above %.1f", tc.name, o2.T, a.Threshold())
		}
	}
}

func TestDiagonalBoundary(t *testing.T) {
	// Patterns confined to one diagonal leak; spanning two diagonals or
	// adding even one off-diagonal byte destroys the structure.
	a := newAESAssessor(t, 2048)
	leaky := []bitvec.Vector{
		bytePattern(16, 2),                    // single byte
		bytePattern(16, 2, 7),                 // two bytes, one diagonal
		bytePattern(16, 2, 7, 8, 13),          // full diagonal (paper's model)
		bitvec.FromBits(128, 77),              // single bit
		bitvec.FromBits(128, 29, 34, 35, 118), // scattered bits inside diagonal 3 (see below)
	}
	// Bits 29,34,35 are in bytes 3,4 — diagonal 3 — and 118 is byte 14,
	// also diagonal 3 (Table I's diagonal fault bits are from that model).
	for i, p := range leaky {
		res, err := a.Assess(context.Background(), &p, 8)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Leaky {
			t.Errorf("pattern %d (%v) should be exploitable at round 8, t = %.2f", i, p.String(), res.T)
		}
	}
	notLeaky := []bitvec.Vector{
		bytePattern(16, 0, 5, 10, 15, 2, 7, 8, 13), // two diagonals
		bytePattern(16, 2, 7, 8, 13, 0),            // diagonal + extra byte
		bytePattern(16, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15),
	}
	for i, p := range notLeaky {
		res, err := a.Assess(context.Background(), &p, 8)
		if err != nil {
			t.Fatal(err)
		}
		if res.Leaky {
			t.Errorf("wide pattern %d should not be exploitable at round 8, t = %.2f", i, res.T)
		}
	}
}

func TestLateRoundFaultsLeakViaCiphertext(t *testing.T) {
	a := newAESAssessor(t, 1024)
	for _, round := range []int{9, 10} {
		p := bytePattern(16, 0)
		res, err := a.Assess(context.Background(), &p, round)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Leaky {
			t.Errorf("byte fault at round %d not detected", round)
		}
		if res.Best.Point.Kind != fault.CiphertextPoint {
			t.Errorf("round-%d leak found at %v, expected ciphertext", round, res.Best.Point)
		}
		// Late-round faults leave zero bytes: a first-order effect.
		if res.Best.Stat.Order != 1 {
			t.Errorf("round-%d leak order %d, want 1", round, res.Best.Stat.Order)
		}
	}
}

func TestEarlyRoundFaultNotExploitable(t *testing.T) {
	// A fault in round 1 is fully diffused by the observable window
	// (last 3 rounds), matching the restriction in the paper's §III-C
	// footnote: only the last few rounds are reachable by an attacker.
	a := newAESAssessor(t, 1024)
	p := bytePattern(16, 0)
	res, err := a.Assess(context.Background(), &p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Leaky {
		t.Errorf("round-1 fault reported exploitable, t = %.2f", res.T)
	}
}

func TestGIFTNibbleModels(t *testing.T) {
	a := newGIFTAssessor(t, 2048)
	leaky := [][]int{
		{0},                    // single nibble (prior work)
		{8, 9, 10, 11, 12, 14}, // the paper's newly discovered model
		{10, 11},               // Table V 2-nibble model
	}
	for _, nibs := range leaky {
		p := nibblePattern(8, nibs...)
		res, err := a.Assess(context.Background(), &p, 25)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Leaky {
			t.Errorf("GIFT nibbles %v should be exploitable at round 25, t = %.2f", nibs, res.T)
		}
	}
	full := nibblePattern(8, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15)
	res, err := a.Assess(context.Background(), &full, 25)
	if err != nil {
		t.Fatal(err)
	}
	if res.Leaky {
		t.Errorf("full-state GIFT fault should not be exploitable, t = %.2f", res.T)
	}
}

func TestGIFTObservationWindowMatchesPaper(t *testing.T) {
	// Fault at round 25 of GIFT-64 must be observed from round 27 onward
	// (post-S-box of the 27th round "and later", §IV-D).
	g, err := ciphers.New("gift64", make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	pts := fault.PointsWindow(g, 25, fault.DefaultLag, fault.DefaultWindow)
	wantFirst := fault.Point{Kind: fault.RoundInput, Round: 27}
	if pts[0] != wantFirst {
		t.Errorf("first observation point %v, want %v", pts[0], wantFirst)
	}
}

func TestStopAtThresholdTruncates(t *testing.T) {
	rng := prng.New(7)
	key := make([]byte, 16)
	rng.Fill(key)
	c, _ := ciphers.New("gift64", key)
	a := NewAssessor(c, Config{Samples: 512, StopAtThreshold: true}, rng.Split())
	p := nibblePattern(8, 0)
	res, err := a.Assess(context.Background(), &p, 25)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Leaky {
		t.Fatal("expected leaky result")
	}
	// 5 points exist (r27, r28 input+postsub, ciphertext); the first
	// already exceeds the threshold, so the sweep must stop early.
	if len(res.PerPoint) >= 5 {
		t.Errorf("StopAtThreshold evaluated all %d points", len(res.PerPoint))
	}
}

func TestAssessRejectsEmptyPattern(t *testing.T) {
	a := newAESAssessor(t, 256)
	p := bitvec.New(128)
	if _, err := a.Assess(context.Background(), &p, 8); err == nil {
		t.Error("Assess accepted empty pattern")
	}
}

func TestAssessorAccessors(t *testing.T) {
	a := newAESAssessor(t, 256)
	if a.StateBits() != 128 {
		t.Errorf("StateBits = %d", a.StateBits())
	}
	if a.Threshold() != 4.5 {
		t.Errorf("Threshold = %v", a.Threshold())
	}
	if a.Cipher().Name() != "aes128" {
		t.Errorf("Cipher name = %s", a.Cipher().Name())
	}
}

func TestBitGroupingOverride(t *testing.T) {
	// Bit-level grouping also detects a late-round fault (constant-zero
	// differential bits vs uniform reference bits).
	rng := prng.New(11)
	key := make([]byte, 16)
	rng.Fill(key)
	c, _ := ciphers.New("aes128", key)
	a := NewAssessor(c, Config{Samples: 1024, GroupBits: 1}, rng.Split())
	p := bytePattern(16, 0)
	res, err := a.Assess(context.Background(), &p, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Leaky {
		t.Errorf("bit-grouped assessment missed a round-9 byte fault, t = %.2f", res.T)
	}
}

func TestDiagonalHelperAgreesWithLeakage(t *testing.T) {
	// Every one of the four AES diagonals must be exploitable at round 8
	// (the symmetry-extension step of §III-F relies on this).
	a := newAESAssessor(t, 1024)
	for d := 0; d < 4; d++ {
		diag := aes.Diagonal(d)
		p := bytePattern(16, diag[:]...)
		res, err := a.Assess(context.Background(), &p, 8)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Leaky {
			t.Errorf("diagonal %d not exploitable, t = %.2f", d, res.T)
		}
	}
}

func BenchmarkAssessDiagonal(b *testing.B) {
	rng := prng.New(1)
	key := make([]byte, 16)
	rng.Fill(key)
	c, _ := ciphers.New("aes128", key)
	a := NewAssessor(c, Config{Samples: 1024}, rng.Split())
	p := bytePattern(16, 2, 7, 8, 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Assess(context.Background(), &p, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAssessStopAtThreshold(b *testing.B) {
	rng := prng.New(2)
	key := make([]byte, 16)
	rng.Fill(key)
	c, _ := ciphers.New("gift64", key)
	a := NewAssessor(c, Config{Samples: 1024, StopAtThreshold: true}, rng.Split())
	p := nibblePattern(8, 8, 9, 10, 11, 12, 14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Assess(context.Background(), &p, 25); err != nil {
			b.Fatal(err)
		}
	}
}
