// Package checkpoint implements the on-disk envelope for resumable runs:
// a magic string, a format version, a kind tag identifying the payload
// type, the payload length, and a SHA-256 checksum, followed by the
// gob-encoded payload. The envelope exists so that a truncated write, a
// bit flip, a file from a future format version, or a checkpoint of the
// wrong kind (a faultsim stage file passed to -resume, say) is reported
// as a clean error instead of a panic or — worse — a silently wrong
// resumed run.
//
// Writes go through Save, which writes to a temporary file in the same
// directory, fsyncs, and renames into place, so a crash mid-write never
// clobbers the previous good checkpoint.
package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// Version is the current envelope format version. Decode rejects any
// other version; there is no cross-version migration, because a
// checkpoint is a mid-run artifact, not an archival format.
const Version = 1

var magic = []byte("EFCKPT")

// Sentinel errors for the distinct ways a checkpoint file can be bad.
// Callers should match with errors.Is.
var (
	// ErrFormat: the file is not a checkpoint at all, or is truncated.
	ErrFormat = errors.New("checkpoint: malformed or truncated file")
	// ErrVersion: valid envelope, but written by a different format version.
	ErrVersion = errors.New("checkpoint: unsupported format version")
	// ErrKind: valid envelope of the wrong payload kind.
	ErrKind = errors.New("checkpoint: wrong checkpoint kind")
	// ErrChecksum: envelope intact but the payload bytes do not match the
	// recorded SHA-256, i.e. the file was corrupted after writing.
	ErrChecksum = errors.New("checkpoint: payload checksum mismatch")
)

// Encode serializes payload under the given kind tag into a self-checking
// envelope.
func Encode(kind string, payload any) ([]byte, error) {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(payload); err != nil {
		return nil, fmt.Errorf("checkpoint: encoding %s payload: %w", kind, err)
	}
	sum := sha256.Sum256(body.Bytes())

	var out bytes.Buffer
	out.Write(magic)
	var u16 [2]byte
	binary.BigEndian.PutUint16(u16[:], Version)
	out.Write(u16[:])
	binary.BigEndian.PutUint16(u16[:], uint16(len(kind)))
	out.Write(u16[:])
	out.WriteString(kind)
	var u64 [8]byte
	binary.BigEndian.PutUint64(u64[:], uint64(body.Len()))
	out.Write(u64[:])
	out.Write(sum[:])
	out.Write(body.Bytes())
	return out.Bytes(), nil
}

// Decode parses an envelope produced by Encode, verifying magic, version,
// kind and checksum before gob-decoding the payload into out. It never
// panics on hostile input: gob decode panics are recovered and returned
// as errors.
func Decode(data []byte, kind string, out any) (err error) {
	rest := data
	take := func(n int) ([]byte, bool) {
		if len(rest) < n {
			return nil, false
		}
		b := rest[:n]
		rest = rest[n:]
		return b, true
	}

	m, ok := take(len(magic))
	if !ok || !bytes.Equal(m, magic) {
		return ErrFormat
	}
	vb, ok := take(2)
	if !ok {
		return ErrFormat
	}
	if v := binary.BigEndian.Uint16(vb); v != Version {
		return fmt.Errorf("%w: file has version %d, this build reads %d", ErrVersion, v, Version)
	}
	kb, ok := take(2)
	if !ok {
		return ErrFormat
	}
	kindBytes, ok := take(int(binary.BigEndian.Uint16(kb)))
	if !ok {
		return ErrFormat
	}
	lb, ok := take(8)
	if !ok {
		return ErrFormat
	}
	payloadLen := binary.BigEndian.Uint64(lb)
	sum, ok := take(sha256.Size)
	if !ok {
		return ErrFormat
	}
	if payloadLen != uint64(len(rest)) {
		return fmt.Errorf("%w: payload length %d, envelope declares %d", ErrFormat, len(rest), payloadLen)
	}
	if string(kindBytes) != kind {
		return fmt.Errorf("%w: file holds %q, want %q", ErrKind, kindBytes, kind)
	}
	if got := sha256.Sum256(rest); !bytes.Equal(got[:], sum) {
		return ErrChecksum
	}

	// gob's decoder can panic on pathological type descriptors; a corrupt
	// payload that happens to pass the checksum check (only possible for
	// a file written by a buggy encoder) must still fail cleanly.
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: gob decode panicked: %v", ErrFormat, r)
		}
	}()
	if err := gob.NewDecoder(bytes.NewReader(rest)).Decode(out); err != nil {
		return fmt.Errorf("checkpoint: decoding %s payload: %w", kind, err)
	}
	return nil
}

// Save atomically writes payload to path: encode, write to a temporary
// file in the same directory, fsync, rename. A reader (or a crash) never
// observes a partially written checkpoint.
func Save(path, kind string, payload any) error {
	data, err := Encode(kind, payload)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: writing %s: %w", tmpName, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: syncing %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: closing %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// Load reads and decodes the checkpoint at path. A missing file is
// reported as the underlying fs.ErrNotExist so callers can distinguish
// "no checkpoint yet" from "checkpoint is broken".
func Load(path, kind string, out any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return Decode(data, kind, out)
}
