package checkpoint

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io/fs"
	"sort"
	"sync"
)

// stagesPayload is the persisted form of a Stages store: the canonical
// key identifying the run configuration, plus one gob-encoded blob per
// finished stage. Stage values are encoded individually so the store can
// hold heterogeneous types (an Assessment here, a propagation profile
// there, a sweep shard result elsewhere) without a registry.
type stagesPayload struct {
	Key    string
	Stages map[string][]byte
}

// Stages is a keyed store of per-stage results backing resumable
// multi-stage runs (faultsim's order-1/order-2/full/propagation stages,
// sweep cell shards). Each Put persists the whole store atomically via
// Save, so an interrupt costs at most the in-flight stage. A Stages with
// an empty path is purely in-memory: same API, nothing written — callers
// don't need a "checkpointing enabled?" branch at every stage.
//
// The key is the canonical argument string of the run. Opening a path
// whose file was written under a different key silently starts fresh
// (the old results belong to a different run and must not be
// misapplied); a corrupt or wrong-kind file is an error.
//
// All methods are safe for concurrent use, so parallel workers can Put
// independent stages; writes are serialized internally.
type Stages struct {
	mu   sync.Mutex
	path string
	kind string
	data stagesPayload
}

// OpenStages opens (or initializes) the stage store at path under the
// given envelope kind and run key. An empty path yields an in-memory
// store. A missing file, or an existing file written for a different
// key, yields an empty store; a malformed file is an error.
func OpenStages(path, kind, key string) (*Stages, error) {
	s := &Stages{
		path: path,
		kind: kind,
		data: stagesPayload{Key: key, Stages: map[string][]byte{}},
	}
	if path == "" {
		return s, nil
	}
	var prior stagesPayload
	err := Load(path, kind, &prior)
	switch {
	case errors.Is(err, fs.ErrNotExist):
		// No checkpoint yet: first run.
	case err != nil:
		return nil, err
	case prior.Key == key && prior.Stages != nil:
		s.data.Stages = prior.Stages
	}
	return s, nil
}

// Done reports whether stage has a stored result, decoding it into out
// when out is non-nil. A stored blob that no longer decodes (the value's
// type changed across builds) reports false, so the stage reruns instead
// of resuming wrong.
func (s *Stages) Done(stage string, out any) bool {
	s.mu.Lock()
	raw, ok := s.data.Stages[stage]
	s.mu.Unlock()
	if !ok {
		return false
	}
	if out == nil {
		return true
	}
	return gob.NewDecoder(bytes.NewReader(raw)).Decode(out) == nil
}

// Put records val as stage's result and, for a file-backed store,
// persists the whole store atomically.
func (s *Stages) Put(stage string, val any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(val); err != nil {
		return fmt.Errorf("checkpoint: encoding stage %q: %w", stage, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.data.Stages[stage] = buf.Bytes()
	if s.path == "" {
		return nil
	}
	return Save(s.path, s.kind, &s.data)
}

// Delete removes stage's stored result and, for a file-backed store,
// persists the removal atomically. Deleting an absent stage is a no-op.
// Job-style stores (one stage per record) use it to purge entries whose
// lifetime ended.
func (s *Stages) Delete(stage string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.data.Stages[stage]; !ok {
		return nil
	}
	delete(s.data.Stages, stage)
	if s.path == "" {
		return nil
	}
	return Save(s.path, s.kind, &s.data)
}

// Len reports the number of stored stages.
func (s *Stages) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.data.Stages)
}

// Names returns the stored stage names in sorted order (for diagnostics
// and tests).
func (s *Stages) Names() []string {
	s.mu.Lock()
	names := make([]string, 0, len(s.data.Stages))
	for name := range s.data.Stages {
		names = append(names, name)
	}
	s.mu.Unlock()
	sort.Strings(names)
	return names
}

// Path reports the backing file path ("" for in-memory stores).
func (s *Stages) Path() string { return s.path }
