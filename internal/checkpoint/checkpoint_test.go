package checkpoint

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
)

// samplePayload stands in for a real session snapshot: nested slices and
// scalar fields exercise the same gob shapes the session checkpoint uses.
type samplePayload struct {
	Episodes int
	Words    [4]uint64
	Weights  [][]float64
	Label    string
}

func sample() samplePayload {
	return samplePayload{
		Episodes: 1234,
		Words:    [4]uint64{1, 2, 3, 4},
		Weights:  [][]float64{{0.5, -1.25}, {3.75}},
		Label:    "gift64|r25",
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	data, err := Encode("session", sample())
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	var got samplePayload
	if err := Decode(data, "session", &got); err != nil {
		t.Fatalf("Decode: %v", err)
	}
	want := sample()
	if got.Episodes != want.Episodes || got.Words != want.Words || got.Label != want.Label {
		t.Fatalf("round trip mismatch: got %+v want %+v", got, want)
	}
	if len(got.Weights) != 2 || got.Weights[0][1] != -1.25 {
		t.Fatalf("weights did not round trip: %+v", got.Weights)
	}
}

func TestDecodeRejectsBadInput(t *testing.T) {
	valid, err := Encode("session", sample())
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}

	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)-1] ^= 0xff

	versionSkew := append([]byte(nil), valid...)
	versionSkew[6], versionSkew[7] = 0xff, 0xfe // version field follows the 6-byte magic

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrFormat},
		{"not a checkpoint", []byte("definitely not a checkpoint file"), ErrFormat},
		{"truncated header", valid[:8], ErrFormat},
		{"truncated payload", valid[:len(valid)-5], ErrFormat},
		{"corrupted payload", corrupt, ErrChecksum},
		{"version skew", versionSkew, ErrVersion},
	}
	for _, tc := range cases {
		var got samplePayload
		err := Decode(tc.data, "session", &got)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: got error %v, want %v", tc.name, err, tc.want)
		}
	}

	var got samplePayload
	if err := Decode(valid, "faultsim", &got); !errors.Is(err, ErrKind) {
		t.Errorf("kind mismatch: got error %v, want ErrKind", err)
	}
}

func TestSaveLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := Save(path, "session", sample()); err != nil {
		t.Fatalf("Save: %v", err)
	}
	var got samplePayload
	if err := Load(path, "session", &got); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Episodes != 1234 {
		t.Fatalf("loaded Episodes = %d, want 1234", got.Episodes)
	}
	// No temporary files left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp files left behind: %v", entries)
	}
}

func TestSaveOverwritesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	first := sample()
	if err := Save(path, "session", first); err != nil {
		t.Fatal(err)
	}
	second := sample()
	second.Episodes = 9999
	if err := Save(path, "session", second); err != nil {
		t.Fatal(err)
	}
	var got samplePayload
	if err := Load(path, "session", &got); err != nil {
		t.Fatal(err)
	}
	if got.Episodes != 9999 {
		t.Fatalf("loaded Episodes = %d, want the overwritten 9999", got.Episodes)
	}
}

func TestLoadMissingFileIsNotExist(t *testing.T) {
	var got samplePayload
	err := Load(filepath.Join(t.TempDir(), "absent.ckpt"), "session", &got)
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("got %v, want fs.ErrNotExist", err)
	}
}
