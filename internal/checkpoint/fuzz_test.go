package checkpoint

import "testing"

// FuzzCheckpointDecode feeds arbitrary bytes to Decode and asserts the
// contract that matters for resume safety: hostile input (truncations,
// bit flips, version skew, garbage) must produce an error — one of the
// envelope sentinels or a gob decode error — and must never panic or
// succeed. Only bytes that byte-for-byte round-trip through Encode may
// decode cleanly.
func FuzzCheckpointDecode(f *testing.F) {
	valid, err := Encode("session", sample())
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte(nil))
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("EFCKPT"))
	skew := append([]byte(nil), valid...)
	skew[7] = 99
	f.Add(skew)
	flip := append([]byte(nil), valid...)
	flip[len(flip)-3] ^= 0x40
	f.Add(flip)

	f.Fuzz(func(t *testing.T, data []byte) {
		var got samplePayload
		err := Decode(data, "session", &got) // must not panic
		if err == nil {
			reenc, encErr := Encode("session", got)
			if encErr != nil {
				t.Fatalf("decoded payload fails to re-encode: %v", encErr)
			}
			if string(reenc) != string(data) {
				t.Fatalf("Decode accepted bytes that are not a canonical encoding")
			}
		}
	})
}
