package checkpoint

import (
	"path/filepath"
	"sync"
	"testing"
)

type stageVal struct {
	N int
	S string
}

func TestStagesRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stages.ck")
	s, err := OpenStages(path, "test-stages", "k1")
	if err != nil {
		t.Fatal(err)
	}
	var got stageVal
	if s.Done("a", &got) {
		t.Fatal("fresh store reports stage done")
	}
	if err := s.Put("a", stageVal{N: 7, S: "seven"}); err != nil {
		t.Fatal(err)
	}
	if !s.Done("a", &got) || got.N != 7 || got.S != "seven" {
		t.Fatalf("Done after Put: got %+v", got)
	}

	// Reopen with the same key: stage survives.
	s2, err := OpenStages(path, "test-stages", "k1")
	if err != nil {
		t.Fatal(err)
	}
	got = stageVal{}
	if !s2.Done("a", &got) || got.N != 7 {
		t.Fatalf("reopened store lost stage: %+v", got)
	}
	if s2.Len() != 1 || s2.Names()[0] != "a" {
		t.Fatalf("Len/Names: %d %v", s2.Len(), s2.Names())
	}
}

func TestStagesKeyMismatchStartsFresh(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stages.ck")
	s, err := OpenStages(path, "test-stages", "k1")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", stageVal{N: 1}); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenStages(path, "test-stages", "k2")
	if err != nil {
		t.Fatal(err)
	}
	if s2.Done("a", nil) {
		t.Fatal("store opened under a different key kept foreign stages")
	}
}

func TestStagesWrongKindErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stages.ck")
	s, err := OpenStages(path, "kind-a", "k")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStages(path, "kind-b", "k"); err == nil {
		t.Fatal("opening under the wrong kind succeeded")
	}
}

func TestStagesInMemory(t *testing.T) {
	s, err := OpenStages("", "test-stages", "k")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", stageVal{N: 3}); err != nil {
		t.Fatal(err)
	}
	var got stageVal
	if !s.Done("a", &got) || got.N != 3 {
		t.Fatalf("in-memory store: %+v", got)
	}
	if s.Path() != "" {
		t.Fatal("in-memory store reports a path")
	}
}

func TestStagesUndecodableValueRerunsStage(t *testing.T) {
	s, err := OpenStages("", "test-stages", "k")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", "a string"); err != nil {
		t.Fatal(err)
	}
	var out stageVal
	if s.Done("a", &out) {
		t.Fatal("Done decoded a string into a struct")
	}
	// Without decoding, existence still reports true.
	if !s.Done("a", nil) {
		t.Fatal("Done(nil) missed an existing stage")
	}
}

func TestStagesConcurrentPut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stages.ck")
	s, err := OpenStages(path, "test-stages", "k")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := s.Put(string(rune('a'+i)), stageVal{N: i}); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if s.Len() != 16 {
		t.Fatalf("Len = %d, want 16", s.Len())
	}
	s2, err := OpenStages(path, "test-stages", "k")
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 16 {
		t.Fatalf("reopened Len = %d, want 16", s2.Len())
	}
}

func TestStagesDelete(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stages.ck")
	s, err := OpenStages(path, "test-stages", "k1")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("missing"); err != nil {
		t.Fatalf("deleting an absent stage: %v", err)
	}
	if err := s.Put("a", stageVal{N: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", stageVal{N: 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if s.Done("a", nil) {
		t.Fatal("deleted stage still reported done")
	}

	// The removal is durable: a reopened store sees only "b".
	s2, err := OpenStages(path, "test-stages", "k1")
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 || s2.Done("a", nil) || !s2.Done("b", nil) {
		t.Fatalf("reopened store after delete: len=%d names=%v", s2.Len(), s2.Names())
	}

	// In-memory stores delete too.
	mem, err := OpenStages("", "test-stages", "k1")
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.Put("x", stageVal{N: 3}); err != nil {
		t.Fatal(err)
	}
	if err := mem.Delete("x"); err != nil || mem.Len() != 0 {
		t.Fatalf("in-memory delete: err=%v len=%d", err, mem.Len())
	}
}
