package coverage

import (
	"testing"

	"repro/internal/ciphers"
	_ "repro/internal/ciphers/aes"
	_ "repro/internal/ciphers/gift"
	"repro/internal/prng"
)

func TestScanGIFTLastRounds(t *testing.T) {
	rng := prng.New(77)
	key := make([]byte, 16)
	rng.Fill(key)
	c, err := ciphers.New("gift64", key)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Scan(c, Config{
		Rounds:         []int{25, 27},
		ExhaustiveBits: true,
		GroupSweep:     true,
		RandomPerSize:  4,
		Sizes:          []int{8},
		Samples:        256,
	}, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cipher != "gift64" || len(rep.Rounds) != 2 {
		t.Fatalf("report shape wrong: %+v", rep)
	}
	r25 := rep.Rounds[0]
	if r25.Round != 25 {
		t.Fatalf("rounds not sorted: %+v", rep.Rounds)
	}
	// Every single bit of round 25 is exploitable (the paper's GIFT
	// setting), and so is every nibble.
	if r25.Bits.Tested != 64 || r25.Bits.Exploitable != 64 {
		t.Errorf("round-25 bit sweep: %d/%d exploitable, want 64/64",
			r25.Bits.Exploitable, r25.Bits.Tested)
	}
	if r25.Groups.Tested != 16 || r25.Groups.Exploitable != 16 {
		t.Errorf("round-25 nibble sweep: %d/%d, want 16/16",
			r25.Groups.Exploitable, r25.Groups.Tested)
	}
	if len(r25.ExploitableBits) != 64 {
		t.Errorf("exploitable bit list has %d entries", len(r25.ExploitableBits))
	}
	tested, exploitable := rep.Coverage()
	if tested == 0 || exploitable == 0 || exploitable > tested {
		t.Errorf("coverage accounting wrong: %d/%d", exploitable, tested)
	}
}

func TestScanAESEarlyRoundNotExploitable(t *testing.T) {
	rng := prng.New(78)
	key := make([]byte, 16)
	rng.Fill(key)
	c, err := ciphers.New("aes128", key)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Scan(c, Config{
		Rounds:         []int{1, 9},
		ExhaustiveBits: false,
		GroupSweep:     true,
		RandomPerSize:  2,
		Sizes:          []int{4},
		Samples:        256,
	}, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	r1, r9 := rep.Rounds[0], rep.Rounds[1]
	if r1.Groups.Exploitable != 0 {
		t.Errorf("round-1 byte faults exploitable: %d/%d — early rounds must be safe",
			r1.Groups.Exploitable, r1.Groups.Tested)
	}
	if r9.Groups.Exploitable != 16 {
		t.Errorf("round-9 byte faults: %d/16 exploitable, want all",
			r9.Groups.Exploitable)
	}
	if got := rep.MostVulnerableRound(); got != 9 {
		t.Errorf("most vulnerable round = %d, want 9", got)
	}
}

func TestScanDefaults(t *testing.T) {
	rng := prng.New(79)
	key := make([]byte, 16)
	rng.Fill(key)
	c, _ := ciphers.New("gift64", key)
	cfg := Config{Samples: 128, RandomPerSize: 1, Sizes: []int{2}}
	rep, err := Scan(c, cfg, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	// Default round selection: the last five rounds (24..28 for GIFT).
	if len(rep.Rounds) != 5 || rep.Rounds[0].Round != 24 || rep.Rounds[4].Round != 28 {
		t.Errorf("default rounds wrong: %+v", roundsOf(rep))
	}
}

func roundsOf(rep *Report) []int {
	var out []int
	for _, r := range rep.Rounds {
		out = append(out, r.Round)
	}
	return out
}

func TestScanRejectsBadRound(t *testing.T) {
	rng := prng.New(80)
	c, _ := ciphers.New("gift64", make([]byte, 16))
	if _, err := Scan(c, Config{Rounds: []int{99}, Samples: 64}, rng); err == nil {
		t.Error("accepted out-of-range round")
	}
}

func TestSizeClassRate(t *testing.T) {
	s := SizeClassStats{Tested: 4, Exploitable: 1}
	if s.Rate() != 0.25 {
		t.Errorf("Rate = %v", s.Rate())
	}
	if (SizeClassStats{}).Rate() != 0 {
		t.Error("empty Rate should be 0")
	}
}

func TestRandomPatternExactSize(t *testing.T) {
	rng := prng.New(81)
	for _, size := range []int{1, 7, 32, 64} {
		p := randomPattern(64, size, rng)
		if p.Count() != size {
			t.Errorf("randomPattern(64, %d) has %d bits", size, p.Count())
		}
	}
	// Size beyond the state clamps.
	p := randomPattern(64, 100, rng)
	if p.Count() != 64 {
		t.Errorf("clamped pattern has %d bits", p.Count())
	}
}
