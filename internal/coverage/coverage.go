// Package coverage implements the defender-facing fault-coverage metric
// the paper motivates (footnote 1: "the percentage of faults for which we
// can obtain the exploitability status"): a systematic scan that samples
// the fault space of a cipher round by round, classifies each sampled
// pattern with the leakage oracle, and reports where the exploitable
// region lies. A designer uses this to decide which rounds a
// countermeasure must cover and to measure the fault coverage a given
// test campaign achieves.
package coverage

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/bitvec"
	"repro/internal/ciphers"
	"repro/internal/leakage"
	"repro/internal/prng"
)

// Config tunes a coverage scan. Zero values select defaults.
type Config struct {
	// Rounds lists the injection rounds to scan; empty scans the last
	// Window rounds plus the two before them (where fault attacks
	// live).
	Rounds []int
	// ExhaustiveBits sweeps every single-bit fault when true (the
	// single-bit space is small enough to enumerate; default true).
	ExhaustiveBits bool
	// RandomPerSize is how many random patterns are sampled per
	// multi-bit size class (default 16).
	RandomPerSize int
	// Sizes lists the multi-bit size classes to sample (default
	// {2, 4, 8, 16, 32} capped at the state width).
	Sizes []int
	// Samples is the t-test budget per classification (default 512).
	Samples int
	// GroupSweep additionally classifies every aligned group fault
	// (each nibble or byte, at the cipher's native width; default true).
	GroupSweep bool
}

func (c *Config) setDefaults(cipher ciphers.Cipher) {
	if len(c.Rounds) == 0 {
		last := cipher.Rounds()
		for r := last - 4; r <= last; r++ {
			if r >= 1 {
				c.Rounds = append(c.Rounds, r)
			}
		}
		c.ExhaustiveBits = true
		c.GroupSweep = true
	}
	if c.RandomPerSize == 0 {
		c.RandomPerSize = 16
	}
	if len(c.Sizes) == 0 {
		for _, s := range []int{2, 4, 8, 16, 32} {
			if s <= 8*cipher.BlockBytes() {
				c.Sizes = append(c.Sizes, s)
			}
		}
	}
	if c.Samples == 0 {
		c.Samples = 512
	}
}

// SizeClassStats aggregates classifications for one pattern-size class.
type SizeClassStats struct {
	Bits        int
	Tested      int
	Exploitable int
}

// Rate returns the exploitable fraction (0 when nothing was tested).
func (s SizeClassStats) Rate() float64 {
	if s.Tested == 0 {
		return 0
	}
	return float64(s.Exploitable) / float64(s.Tested)
}

// RoundReport is the coverage result for one injection round.
type RoundReport struct {
	Round int
	// Bits holds the single-bit sweep; Groups the aligned nibble/byte
	// sweep; Random the random multi-bit samples by size class.
	Bits   SizeClassStats
	Groups SizeClassStats
	Random []SizeClassStats
	// ExploitableBits lists which single bits were exploitable (only
	// filled by the exhaustive sweep).
	ExploitableBits []int
}

// Tested returns the total number of classified patterns for the round.
func (r *RoundReport) Tested() int {
	n := r.Bits.Tested + r.Groups.Tested
	for _, s := range r.Random {
		n += s.Tested
	}
	return n
}

// Exploitable returns the total exploitable patterns for the round.
func (r *RoundReport) Exploitable() int {
	n := r.Bits.Exploitable + r.Groups.Exploitable
	for _, s := range r.Random {
		n += s.Exploitable
	}
	return n
}

// Report is a full coverage scan.
type Report struct {
	Cipher string
	Rounds []RoundReport
}

// Coverage returns the fraction of classified patterns over all rounds
// (every sampled pattern receives a definite verdict, so this equals 1 by
// construction; it is exposed for campaign-style accounting when callers
// merge partial scans).
func (rep *Report) Coverage() (tested, exploitable int) {
	for i := range rep.Rounds {
		tested += rep.Rounds[i].Tested()
		exploitable += rep.Rounds[i].Exploitable()
	}
	return tested, exploitable
}

// MostVulnerableRound returns the scanned round with the highest
// exploitable fraction (ties resolve to the later round, which is the
// cheaper attack target).
func (rep *Report) MostVulnerableRound() int {
	best, bestRate := 0, -1.0
	for i := range rep.Rounds {
		r := &rep.Rounds[i]
		if r.Tested() == 0 {
			continue
		}
		rate := float64(r.Exploitable()) / float64(r.Tested())
		if rate >= bestRate {
			bestRate = rate
			best = r.Round
		}
	}
	return best
}

// Scan classifies the sampled fault space of the keyed cipher.
func Scan(c ciphers.Cipher, cfg Config, rng *prng.Source) (*Report, error) {
	cfg.setDefaults(c)
	stateBits := 8 * c.BlockBytes()
	rep := &Report{Cipher: c.Name()}
	sort.Ints(cfg.Rounds)
	for _, round := range cfg.Rounds {
		if round < 1 || round > c.Rounds() {
			return nil, fmt.Errorf("coverage: round %d out of range 1..%d", round, c.Rounds())
		}
		assessor := leakage.NewAssessor(c, leakage.Config{
			Samples:         cfg.Samples,
			StopAtThreshold: true,
		}, rng.Split())
		rr := RoundReport{Round: round}

		if cfg.ExhaustiveBits {
			for b := 0; b < stateBits; b++ {
				p := bitvec.FromBits(stateBits, b)
				res, err := assessor.Assess(context.Background(), &p, round)
				if err != nil {
					return nil, err
				}
				rr.Bits.Bits = 1
				rr.Bits.Tested++
				if res.Leaky {
					rr.Bits.Exploitable++
					rr.ExploitableBits = append(rr.ExploitableBits, b)
				}
			}
		}
		if cfg.GroupSweep {
			gb := c.GroupBits()
			rr.Groups.Bits = gb
			for g := 0; g < stateBits/gb; g++ {
				p := bitvec.New(stateBits)
				for j := 0; j < gb; j++ {
					p.Set(g*gb + j)
				}
				res, err := assessor.Assess(context.Background(), &p, round)
				if err != nil {
					return nil, err
				}
				rr.Groups.Tested++
				if res.Leaky {
					rr.Groups.Exploitable++
				}
			}
		}
		for _, size := range cfg.Sizes {
			st := SizeClassStats{Bits: size}
			for k := 0; k < cfg.RandomPerSize; k++ {
				p := randomPattern(stateBits, size, rng)
				res, err := assessor.Assess(context.Background(), &p, round)
				if err != nil {
					return nil, err
				}
				st.Tested++
				if res.Leaky {
					st.Exploitable++
				}
			}
			rr.Random = append(rr.Random, st)
		}
		rep.Rounds = append(rep.Rounds, rr)
	}
	return rep, nil
}

// randomPattern draws a uniformly random pattern with exactly size bits.
func randomPattern(stateBits, size int, rng *prng.Source) bitvec.Vector {
	if size > stateBits {
		size = stateBits
	}
	p := bitvec.New(stateBits)
	for p.Count() < size {
		p.Set(rng.Intn(stateBits))
	}
	return p
}
