// Bitsliced lane primitives shared by the batched cipher kernels.
//
// A bitsliced kernel packs 64 traces per uint64 "lane": lane b holds
// state bit b of all 64 traces, so a boolean gate on lanes evaluates 64
// traces at once. The two operations every kernel needs — converting
// between per-trace state words and lanes, and (for ARX ciphers) adding
// two lane-sliced words — live here so new kernels (SPECK today, SIMECK
// next) inherit them instead of reimplementing them.
package bitvec

// Transpose64 transposes the 64x64 bit matrix in place: bit k of word i
// becomes bit i of word k (Hacker's Delight 7-3). It is an involution,
// so the same routine converts trace state words to lanes and back.
func Transpose64(a *[64]uint64) {
	m := uint64(0x00000000ffffffff)
	for j := 32; j != 0; {
		for k := 0; k < 64; k = (k + j + 1) &^ j {
			t := (a[k]>>uint(j) ^ a[k+j]) & m
			a[k] ^= t << uint(j)
			a[k+j] ^= t
		}
		j >>= 1
		m ^= m << uint(j)
	}
}

// RippleAdd computes dst = a + b (mod 2^len) over bitsliced lanes: lane i
// of dst receives the i-th sum bit of 64 independent additions whose i-th
// operand bits are lane i of a and b. The carry chain is the textbook
// ripple-carry recurrence evaluated across lanes —
//
//	sum_i   = a_i XOR b_i XOR c_i
//	c_{i+1} = (a_i AND b_i) OR (c_i AND (a_i XOR b_i))
//
// — which costs 5 word ops per bit position for all 64 traces at once.
// This is the bitsliced modular addition used by the SPECK kernel; any
// future ARX kernel should reuse it. dst may alias a or b. The final
// carry out of the top lane is discarded (addition mod 2^len).
func RippleAdd(dst, a, b []uint64) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("bitvec: RippleAdd operand length mismatch")
	}
	// Re-slice to a common length so the loop body needs no bounds checks.
	dst = dst[:len(a)]
	b = b[:len(a)]
	var c uint64
	for i := range a {
		ai, bi := a[i], b[i]
		s := ai ^ bi
		dst[i] = s ^ c
		c = ai&bi | c&s
	}
}
