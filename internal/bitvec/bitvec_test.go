package bitvec

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/prng"
)

func TestNewWidths(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 128, 256} {
		v := New(n)
		if v.Len() != n {
			t.Errorf("New(%d).Len() = %d", n, v.Len())
		}
		if !v.IsZero() {
			t.Errorf("New(%d) not zero", n)
		}
	}
}

func TestNewPanicsOutOfRange(t *testing.T) {
	for _, n := range []int{-1, 257, 1000} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", n)
				}
			}()
			New(n)
		}()
	}
}

func TestSetClearFlipBit(t *testing.T) {
	v := New(128)
	v.Set(0)
	v.Set(63)
	v.Set(64)
	v.Set(127)
	for _, i := range []int{0, 63, 64, 127} {
		if !v.Bit(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if v.Count() != 4 {
		t.Errorf("Count = %d, want 4", v.Count())
	}
	v.Clear(63)
	if v.Bit(63) {
		t.Error("bit 63 still set after Clear")
	}
	v.Flip(63)
	if !v.Bit(63) {
		t.Error("bit 63 not set after Flip")
	}
	v.Flip(63)
	if v.Bit(63) {
		t.Error("bit 63 set after double Flip")
	}
}

func TestBoundsChecks(t *testing.T) {
	v := New(64)
	for _, i := range []int{-1, 64, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Bit(%d) on width 64 did not panic", i)
				}
			}()
			v.Bit(i)
		}()
	}
}

func TestBitsRoundTrip(t *testing.T) {
	want := []int{2, 7, 8, 13, 77, 118, 127}
	v := FromBits(128, want...)
	if got := v.Bits(); !reflect.DeepEqual(got, want) {
		t.Errorf("Bits() = %v, want %v", got, want)
	}
}

func TestXorProperties(t *testing.T) {
	f := func(a, b [2]uint64) bool {
		va, vb := New(128), New(128)
		va.words[0], va.words[1] = a[0], a[1]
		vb.words[0], vb.words[1] = b[0], b[1]
		x := va
		x.Xor(&vb)
		x.Xor(&vb) // xor twice is identity
		return x.Equal(&va)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetOpsBasics(t *testing.T) {
	a := FromBits(64, 1, 2, 3)
	b := FromBits(64, 2, 3, 4)

	and := a
	and.And(&b)
	if got := and.Bits(); !reflect.DeepEqual(got, []int{2, 3}) {
		t.Errorf("And = %v", got)
	}

	or := a
	or.Or(&b)
	if got := or.Bits(); !reflect.DeepEqual(got, []int{1, 2, 3, 4}) {
		t.Errorf("Or = %v", got)
	}

	diff := a
	diff.AndNot(&b)
	if got := diff.Bits(); !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("AndNot = %v", got)
	}
}

func TestSubsetAndIntersects(t *testing.T) {
	a := FromBits(128, 5, 9)
	b := FromBits(128, 5, 9, 13)
	c := FromBits(128, 70)
	if !a.SubsetOf(&b) {
		t.Error("a should be subset of b")
	}
	if b.SubsetOf(&a) {
		t.Error("b should not be subset of a")
	}
	if !a.Intersects(&b) {
		t.Error("a should intersect b")
	}
	if a.Intersects(&c) {
		t.Error("a should not intersect c")
	}
	// Empty vector is a subset of everything and intersects nothing.
	e := New(128)
	if !e.SubsetOf(&a) || e.Intersects(&a) {
		t.Error("empty vector subset/intersect behaviour wrong")
	}
}

func TestWidthMismatchPanics(t *testing.T) {
	a := New(64)
	b := New(128)
	defer func() {
		if recover() == nil {
			t.Fatal("Xor of mismatched widths did not panic")
		}
	}()
	a.Xor(&b)
}

func TestBytesRoundTrip(t *testing.T) {
	f := func(p [16]byte) bool {
		v := FromBytes(p[:])
		got := v.Bytes()
		return reflect.DeepEqual(got, p[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBytesBitNumbering(t *testing.T) {
	// Bit 8k+j of the vector must be bit j of byte k.
	v := FromBytes([]byte{0x01, 0x80})
	if !v.Bit(0) {
		t.Error("bit 0 of byte 0 not mapped to vector bit 0")
	}
	if !v.Bit(15) {
		t.Error("bit 7 of byte 1 not mapped to vector bit 15")
	}
	if v.Count() != 2 {
		t.Errorf("Count = %d, want 2", v.Count())
	}
}

func TestApplyToBytes(t *testing.T) {
	state := []byte{0xff, 0x00, 0xaa}
	v := FromBits(24, 0, 8, 23)
	v.ApplyToBytes(state)
	want := []byte{0xfe, 0x01, 0x2a}
	if !reflect.DeepEqual(state, want) {
		t.Errorf("ApplyToBytes = %x, want %x", state, want)
	}
}

func TestGroups(t *testing.T) {
	v := FromBits(128, 0, 3, 17, 22, 23, 100)
	if got := v.Groups(8); !reflect.DeepEqual(got, []int{0, 2, 12}) {
		t.Errorf("byte Groups = %v", got)
	}
	if got := v.Groups(4); !reflect.DeepEqual(got, []int{0, 4, 5, 25}) {
		t.Errorf("nibble Groups = %v", got)
	}
}

func TestString(t *testing.T) {
	v := FromBits(128, 2, 7)
	if got := v.String(); got != "{2, 7}/128" {
		t.Errorf("String = %q", got)
	}
}

func TestRandomMaskStaysInPattern(t *testing.T) {
	src := prng.New(99)
	pattern := FromBits(128, 3, 17, 76, 77, 120)
	for i := 0; i < 500; i++ {
		m := RandomMask(&pattern, src)
		if m.IsZero() {
			t.Fatal("RandomMask returned zero mask")
		}
		if !m.SubsetOf(&pattern) {
			t.Fatalf("mask %v escapes pattern %v", m.String(), pattern.String())
		}
	}
}

func TestRandomMaskCoversAllSubsets(t *testing.T) {
	src := prng.New(5)
	pattern := FromBits(64, 0, 1)
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		m := RandomMask(&pattern, src)
		seen[m.String()] = true
	}
	if len(seen) != 3 { // {0}, {1}, {0,1}
		t.Errorf("expected 3 distinct non-zero masks, saw %d", len(seen))
	}
}

func TestRandomMaskPanicsOnEmptyPattern(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RandomMask of empty pattern did not panic")
		}
	}()
	p := New(64)
	RandomMask(&p, prng.New(1))
}

func TestCountMatchesBitsLength(t *testing.T) {
	f := func(a [4]uint64) bool {
		v := New(256)
		copy(v.words[:], a[:])
		return v.Count() == len(v.Bits())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkXor(b *testing.B) {
	x := FromBits(128, 1, 60, 70, 127)
	y := FromBits(128, 2, 61, 71, 126)
	for i := 0; i < b.N; i++ {
		x.Xor(&y)
	}
}

func BenchmarkRandomMask(b *testing.B) {
	src := prng.New(1)
	pattern := FromBits(128, 16, 17, 18, 19, 60, 61, 62, 63)
	for i := 0; i < b.N; i++ {
		_ = RandomMask(&pattern, src)
	}
}
