package bitvec

import (
	"math/rand"
	"testing"
)

func TestTranspose64Involution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var a, orig [64]uint64
	for i := range a {
		a[i] = rng.Uint64()
		orig[i] = a[i]
	}
	Transpose64(&a)
	// Spot-check the defining property: bit k of word i -> bit i of word k.
	for i := 0; i < 64; i++ {
		for k := 0; k < 64; k += 7 {
			if a[k]>>uint(i)&1 != orig[i]>>uint(k)&1 {
				t.Fatalf("transpose: bit (%d,%d) mismatch", i, k)
			}
		}
	}
	Transpose64(&a)
	if a != orig {
		t.Fatal("Transpose64 is not an involution")
	}
}

func TestRippleAddMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, width := range []int{16, 32} {
		// 64 independent additions per call, sliced across lanes.
		as := make([]uint64, 64)
		bs := make([]uint64, 64)
		for tr := range as {
			as[tr] = rng.Uint64() & (1<<uint(width) - 1)
			bs[tr] = rng.Uint64() & (1<<uint(width) - 1)
		}
		// Carry-heavy operands in a few traces.
		as[0], bs[0] = 1<<uint(width)-1, 1
		as[1], bs[1] = 1<<uint(width)-1, 1<<uint(width)-1
		as[2], bs[2] = 0, 0
		laneA := make([]uint64, width)
		laneB := make([]uint64, width)
		for i := 0; i < width; i++ {
			for tr := 0; tr < 64; tr++ {
				laneA[i] |= (as[tr] >> uint(i) & 1) << uint(tr)
				laneB[i] |= (bs[tr] >> uint(i) & 1) << uint(tr)
			}
		}
		sum := make([]uint64, width)
		RippleAdd(sum, laneA, laneB)
		for tr := 0; tr < 64; tr++ {
			want := (as[tr] + bs[tr]) & (1<<uint(width) - 1)
			var got uint64
			for i := 0; i < width; i++ {
				got |= (sum[i] >> uint(tr) & 1) << uint(i)
			}
			if got != want {
				t.Fatalf("width %d trace %d: %#x + %#x = %#x, want %#x", width, tr, as[tr], bs[tr], got, want)
			}
		}
		// In-place: dst aliasing a must give the same result.
		aliased := append([]uint64(nil), laneA...)
		RippleAdd(aliased, aliased, laneB)
		for i := range sum {
			if aliased[i] != sum[i] {
				t.Fatalf("width %d: aliased RippleAdd diverges at lane %d", width, i)
			}
		}
	}
}
