// Package bitvec implements fixed-width dense bit vectors used to represent
// cipher states, fault patterns, and fault masks.
//
// Widths up to 256 bits are supported (the largest block size considered in
// the paper). Bit i of a vector refers to bit i of the cipher state using
// the cipher's own numbering convention; see the ciphers package for how
// each cipher maps bits to bytes or nibbles.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

// MaxBits is the largest supported vector width.
const MaxBits = 256

const wordBits = 64

// Vector is a fixed-width bit vector. The zero value is an empty vector of
// width 0; use New for a usable vector. Vectors are value types: assignment
// copies them, and all methods that mutate do so on the receiver pointer.
type Vector struct {
	words [MaxBits / wordBits]uint64
	n     int // width in bits
}

// New returns an all-zero vector of width n bits. It panics if n is
// negative or exceeds MaxBits.
func New(n int) Vector {
	if n < 0 || n > MaxBits {
		panic(fmt.Sprintf("bitvec: invalid width %d", n))
	}
	return Vector{n: n}
}

// FromBits returns a vector of width n with the listed bits set.
func FromBits(n int, bits ...int) Vector {
	v := New(n)
	for _, b := range bits {
		v.Set(b)
	}
	return v
}

// FromBytes returns a vector of width 8*len(p) whose bit i is bit i%8 of
// byte i/8 (little-endian within each byte). This matches the cipher
// convention where state byte k occupies bits 8k..8k+7.
func FromBytes(p []byte) Vector {
	v := New(8 * len(p))
	for i, b := range p {
		v.words[i/8] |= uint64(b) << (8 * uint(i%8))
	}
	return v
}

// Len returns the width in bits.
func (v *Vector) Len() int { return v.n }

func (v *Vector) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: bit %d out of range [0,%d)", i, v.n))
	}
}

// Bit reports whether bit i is set.
func (v *Vector) Bit(i int) bool {
	v.check(i)
	return v.words[i/wordBits]>>(uint(i)%wordBits)&1 == 1
}

// Set sets bit i.
func (v *Vector) Set(i int) {
	v.check(i)
	v.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear clears bit i.
func (v *Vector) Clear(i int) {
	v.check(i)
	v.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Flip toggles bit i.
func (v *Vector) Flip(i int) {
	v.check(i)
	v.words[i/wordBits] ^= 1 << (uint(i) % wordBits)
}

// Reset clears every bit, keeping the width.
func (v *Vector) Reset() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// Count returns the number of set bits.
func (v *Vector) Count() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// IsZero reports whether no bit is set.
func (v *Vector) IsZero() bool {
	for _, w := range v.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether v and o have identical width and contents.
func (v *Vector) Equal(o *Vector) bool {
	return v.n == o.n && v.words == o.words
}

func (v *Vector) checkWidth(o *Vector) {
	if v.n != o.n {
		panic(fmt.Sprintf("bitvec: width mismatch %d vs %d", v.n, o.n))
	}
}

// Xor sets v to v XOR o. Widths must match.
func (v *Vector) Xor(o *Vector) {
	v.checkWidth(o)
	for i := range v.words {
		v.words[i] ^= o.words[i]
	}
}

// And sets v to v AND o. Widths must match.
func (v *Vector) And(o *Vector) {
	v.checkWidth(o)
	for i := range v.words {
		v.words[i] &= o.words[i]
	}
}

// Or sets v to v OR o. Widths must match.
func (v *Vector) Or(o *Vector) {
	v.checkWidth(o)
	for i := range v.words {
		v.words[i] |= o.words[i]
	}
}

// AndNot clears from v every bit set in o. Widths must match.
func (v *Vector) AndNot(o *Vector) {
	v.checkWidth(o)
	for i := range v.words {
		v.words[i] &^= o.words[i]
	}
}

// SubsetOf reports whether every set bit of v is also set in o.
func (v *Vector) SubsetOf(o *Vector) bool {
	v.checkWidth(o)
	for i := range v.words {
		if v.words[i]&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether v and o share any set bit.
func (v *Vector) Intersects(o *Vector) bool {
	v.checkWidth(o)
	for i := range v.words {
		if v.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// Bits returns the indices of the set bits in ascending order.
func (v *Vector) Bits() []int {
	out := make([]int, 0, v.Count())
	for wi, w := range v.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*wordBits+b)
			w &= w - 1
		}
	}
	return out
}

// Bytes returns the vector packed into bytes, bit i of the vector mapping
// to bit i%8 of byte i/8. The slice has ceil(n/8) bytes.
func (v *Vector) Bytes() []byte {
	out := make([]byte, (v.n+7)/8)
	for i := range out {
		out[i] = byte(v.words[i/8] >> (8 * uint(i%8)))
	}
	return out
}

// PutBytes writes the vector into dst using the same byte mapping as
// Bytes, without allocating. dst must hold at least ceil(n/8) bytes.
func (v *Vector) PutBytes(dst []byte) {
	nb := (v.n + 7) / 8
	if len(dst) < nb {
		panic(fmt.Sprintf("bitvec: destination %d bytes, need %d", len(dst), nb))
	}
	for i := 0; i < nb; i++ {
		dst[i] = byte(v.words[i/8] >> (8 * uint(i%8)))
	}
}

// ApplyToBytes XORs the vector into dst in place using the same byte
// mapping as Bytes. dst must hold at least ceil(n/8) bytes.
func (v *Vector) ApplyToBytes(dst []byte) {
	nb := (v.n + 7) / 8
	if len(dst) < nb {
		panic(fmt.Sprintf("bitvec: destination %d bytes, need %d", len(dst), nb))
	}
	for i := 0; i < nb; i++ {
		dst[i] ^= byte(v.words[i/8] >> (8 * uint(i%8)))
	}
}

// Groups returns, for group size g (e.g. 4 for nibbles, 8 for bytes), the
// ascending indices of the groups that contain at least one set bit.
// Group k covers bits [k*g, (k+1)*g).
func (v *Vector) Groups(g int) []int {
	if g <= 0 {
		panic("bitvec: non-positive group size")
	}
	var out []int
	last := -1
	for _, b := range v.Bits() {
		if grp := b / g; grp != last {
			out = append(out, grp)
			last = grp
		}
	}
	return out
}

// String renders the set bits, e.g. "{3, 17, 76}/128".
func (v *Vector) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, b := range v.Bits() {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%d", b)
	}
	fmt.Fprintf(&sb, "}/%d", v.n)
	return sb.String()
}

// RandomSource is the subset of prng.Source that bitvec needs; it is an
// interface so bitvec does not depend on the prng package.
type RandomSource interface {
	Uint64() uint64
	Intn(n int) int
}

// RandomMask returns a uniformly random non-zero sub-mask of pattern: each
// set bit of pattern is kept with probability 1/2, re-drawing until at
// least one bit survives. This models a random fault confined to the
// pattern. It panics if pattern is all-zero.
func RandomMask(pattern *Vector, src RandomSource) Vector {
	if pattern.IsZero() {
		panic("bitvec: RandomMask of empty pattern")
	}
	for {
		m := *pattern
		for i := range m.words {
			if m.words[i] != 0 {
				m.words[i] &= src.Uint64()
			}
		}
		if !m.IsZero() {
			return m
		}
	}
}

// RandomSubset returns a uniformly random sub-mask of pattern: each set bit
// is kept with probability 1/2. Unlike RandomMask the empty sub-mask is
// allowed — there is no redraw, so a draw consumes exactly one Uint64 per
// nonzero pattern word. Fault models that can leave the state untouched
// (biased-AND, random byte/nibble values) use this; the resulting
// ineffective traces are what SIFA-style analyses condition on.
func RandomSubset(pattern *Vector, src RandomSource) Vector {
	m := *pattern
	for i := range m.words {
		if m.words[i] != 0 {
			m.words[i] &= src.Uint64()
		}
	}
	return m
}
