// Package server turns the discovery engines into a long-running
// campaign service: an HTTP/JSON API that accepts discovery, assessment
// and sweep jobs, schedules them FIFO across a worker pool under
// per-tenant concurrency quotas, persists every job's state through
// checkpoint.Stages so a daemon restart resumes in-flight jobs
// bit-identically, and streams each job's JSONL run events over SSE.
//
// The package is engine-agnostic: it schedules, persists and serves
// jobs, while the Runner interface (implemented by the root explorefault
// package over DiscoverContext / AssessContext / Sweep) does the actual
// work. That split keeps the scheduler testable with fake runners and
// avoids an import cycle with the facade.
package server

import (
	"encoding/json"
	"fmt"
	"time"
)

// Job types accepted by POST /jobs.
const (
	TypeDiscover = "discover"
	TypeAssess   = "assess"
	TypeSweep    = "sweep"
)

// State is a job's lifecycle state. The machine is
//
//	queued → running → done | failed | cancelled
//
// with one extra edge: a daemon restart moves interrupted running jobs
// back to queued (incrementing Job.Resumes), and the re-run resumes from
// the job's engine checkpoint, so the eventual outcome is bit-identical
// to an uninterrupted run.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Spec is the client-submitted description of a job: the POST /jobs
// request body.
type Spec struct {
	// Type selects the engine: "discover", "assess" or "sweep".
	Type string `json:"type"`
	// Tenant attributes the job for quota accounting; empty is the
	// anonymous tenant. Scheduling is FIFO overall, but a tenant never
	// holds more than the server's per-tenant quota of workers at once.
	Tenant string `json:"tenant,omitempty"`
	// Name is a free-form label echoed back in listings.
	Name string `json:"name,omitempty"`
	// ShardRange restricts a sweep job to checkpoint shards
	// [ShardRange[0], ShardRange[1]) of the canonical cell enumeration
	// ([0, 0] = all). Shards are bit-deterministic, so a job split
	// across processes by shard range and merged in shard order equals
	// the single-process run byte for byte — horizontal fan-out is a
	// config change, not a rewrite.
	ShardRange [2]int `json:"shard_range,omitempty"`
	// Config is the engine configuration, decoded by the Runner:
	// DiscoverConfig for discover jobs, AssessConfig (plus a pattern)
	// for assess jobs, sweep.Config for sweep jobs.
	Config json.RawMessage `json:"config"`
}

// validate checks the engine-independent parts of a spec.
func (sp *Spec) validate() error {
	switch sp.Type {
	case TypeDiscover, TypeAssess, TypeSweep:
	default:
		return fmt.Errorf("unknown job type %q (have discover, assess, sweep)", sp.Type)
	}
	if sp.ShardRange[0] < 0 || sp.ShardRange[1] < 0 || sp.ShardRange[0] > sp.ShardRange[1] {
		return fmt.Errorf("bad shard_range [%d, %d)", sp.ShardRange[0], sp.ShardRange[1])
	}
	if sp.ShardRange != [2]int{} && sp.Type != TypeSweep {
		return fmt.Errorf("shard_range applies to sweep jobs only")
	}
	if len(sp.Config) == 0 {
		return fmt.Errorf("missing config")
	}
	return nil
}

// Job is one submitted job: the spec plus its lifecycle record. Jobs are
// persisted (gob, via checkpoint.Stages) on every state change and
// returned (JSON) by the API.
type Job struct {
	ID   string `json:"id"`
	Seq  uint64 `json:"seq"`
	Spec Spec   `json:"spec"`

	State State `json:"state"`
	// Error is set when State is failed (and for cancelled jobs records
	// the cancellation cause).
	Error string `json:"error,omitempty"`
	// Result is the runner's deterministic outcome document (set when
	// State is done). It deliberately excludes wall-clock figures so an
	// interrupted-and-resumed job's result is byte-identical to an
	// uninterrupted one.
	Result json.RawMessage `json:"result,omitempty"`
	// Resumes counts how many times a daemon restart re-queued the job
	// while it was running.
	Resumes int `json:"resumes,omitempty"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`

	// cancelRequested marks a DELETE on a running job so the worker can
	// distinguish client cancellation from a daemon shutdown.
	cancelRequested bool
}

// clone returns a copy safe to hand out after the lock is released.
func (j *Job) clone() *Job {
	c := *j
	return &c
}

// Files are the stable per-job paths inside the server's data directory.
// The Checkpoint path is handed to the engine (training checkpoint for
// discover, shard store for sweep), Events receives the job's JSONL run
// events (tailed by the SSE endpoint), and Output is where large result
// artifacts (atlas documents) land.
type Files struct {
	Checkpoint string
	Events     string
	Output     string
}
