// Package server turns the discovery engines into a long-running
// campaign service: an HTTP/JSON API that accepts discovery, assessment
// and sweep jobs, schedules them FIFO across a worker pool under
// per-tenant concurrency quotas, persists every job's state through
// checkpoint.Stages so a daemon restart resumes in-flight jobs
// bit-identically, and streams each job's JSONL run events over SSE.
//
// The package is engine-agnostic: it schedules, persists and serves
// jobs, while the Runner interface (implemented by the root explorefault
// package over DiscoverContext / AssessContext / Sweep) does the actual
// work. That split keeps the scheduler testable with fake runners and
// avoids an import cycle with the facade.
package server

import (
	"encoding/json"
	"fmt"
	"strconv"
	"time"
)

// Job types accepted by POST /jobs.
const (
	TypeDiscover = "discover"
	TypeAssess   = "assess"
	TypeSweep    = "sweep"
)

// State is a job's lifecycle state. The machine is
//
//	queued → running → done | failed | cancelled
//
// with one extra edge: a daemon restart moves interrupted running jobs
// back to queued (incrementing Job.Resumes), and the re-run resumes from
// the job's engine checkpoint, so the eventual outcome is bit-identical
// to an uninterrupted run.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Spec is the client-submitted description of a job: the POST /jobs
// request body.
type Spec struct {
	// Type selects the engine: "discover", "assess" or "sweep".
	Type string `json:"type"`
	// Tenant attributes the job for quota accounting; empty is the
	// anonymous tenant. Scheduling is FIFO overall, but a tenant never
	// holds more than the server's per-tenant quota of workers at once.
	Tenant string `json:"tenant,omitempty"`
	// Name is a free-form label echoed back in listings.
	Name string `json:"name,omitempty"`
	// ShardRange restricts a sweep job to checkpoint shards
	// [ShardRange[0], ShardRange[1]) of the canonical cell enumeration
	// ([0, 0] = all). Shards are bit-deterministic, so a job split
	// across processes by shard range and merged in shard order equals
	// the single-process run byte for byte — horizontal fan-out is a
	// config change, not a rewrite.
	ShardRange [2]int `json:"shard_range,omitempty"`
	// Config is the engine configuration, decoded by the Runner:
	// DiscoverConfig for discover jobs, AssessConfig (plus a pattern)
	// for assess jobs, sweep.Config for sweep jobs.
	Config json.RawMessage `json:"config"`
}

// JobLabelNames is the attribution label set every job's metrics are
// folded under on /metrics: who (tenant), what engine (kind = the job
// type), and which target (cipher, fault_model).
var JobLabelNames = []string{"tenant", "kind", "cipher", "fault_model"}

// labelValues derives the job's attribution label values, in
// JobLabelNames order. Cipher and fault model come from a best-effort
// sniff of the engine config document: the scheduler stays
// engine-agnostic, but every engine config in this repo spells its
// target as "cipher" and its fault model(s) as "fault_model" /
// "fault_models" / "models", so the sniff covers them all. A config
// without those keys yields empty values, which render as empty label
// values — attribution degrades, scheduling does not.
func (sp *Spec) labelValues() []string {
	cipher, faultModel := sniffConfig(sp.Config)
	return []string{sp.Tenant, sp.Type, cipher, faultModel}
}

// sniffConfig extracts the cipher and fault-model attribution values
// from an engine config document without knowing its full schema.
func sniffConfig(raw json.RawMessage) (cipher, faultModel string) {
	var doc struct {
		Cipher      string `json:"cipher"`
		FaultModel  any    `json:"fault_model"`
		FaultModels []any  `json:"fault_models"`
		Models      []any  `json:"models"`
	}
	if json.Unmarshal(raw, &doc) != nil {
		return "", ""
	}
	models := doc.FaultModels
	if len(models) == 0 {
		models = doc.Models
	}
	switch {
	case doc.FaultModel != nil:
		faultModel = modelLabel(doc.FaultModel)
	case len(models) == 1:
		faultModel = modelLabel(models[0])
	case len(models) > 1:
		// A multi-model campaign is one cost bucket; per-model split
		// lives in the engine's own metrics, not the attribution labels.
		faultModel = "multi"
	default:
		// Absent means the engine default (xor flip); label it as such
		// rather than guessing engine defaults here.
		faultModel = "default"
	}
	return doc.Cipher, faultModel
}

// modelLabel renders one fault-model config value (CLI name string or
// bare enum integer — both JSON forms the engines accept) as a label.
func modelLabel(v any) string {
	switch t := v.(type) {
	case string:
		return t
	case float64:
		return "model-" + strconv.Itoa(int(t))
	}
	return "unknown"
}

// validate checks the engine-independent parts of a spec.
func (sp *Spec) validate() error {
	switch sp.Type {
	case TypeDiscover, TypeAssess, TypeSweep:
	default:
		return fmt.Errorf("unknown job type %q (have discover, assess, sweep)", sp.Type)
	}
	if sp.ShardRange[0] < 0 || sp.ShardRange[1] < 0 || sp.ShardRange[0] > sp.ShardRange[1] {
		return fmt.Errorf("bad shard_range [%d, %d)", sp.ShardRange[0], sp.ShardRange[1])
	}
	if sp.ShardRange != [2]int{} && sp.Type != TypeSweep {
		return fmt.Errorf("shard_range applies to sweep jobs only")
	}
	if len(sp.Config) == 0 {
		return fmt.Errorf("missing config")
	}
	return nil
}

// Job is one submitted job: the spec plus its lifecycle record. Jobs are
// persisted (gob, via checkpoint.Stages) on every state change and
// returned (JSON) by the API.
type Job struct {
	ID   string `json:"id"`
	Seq  uint64 `json:"seq"`
	Spec Spec   `json:"spec"`

	State State `json:"state"`
	// Error is set when State is failed (and for cancelled jobs records
	// the cancellation cause).
	Error string `json:"error,omitempty"`
	// Result is the runner's deterministic outcome document (set when
	// State is done). It deliberately excludes wall-clock figures so an
	// interrupted-and-resumed job's result is byte-identical to an
	// uninterrupted one.
	Result json.RawMessage `json:"result,omitempty"`
	// Resumes counts how many times a daemon restart re-queued the job
	// while it was running.
	Resumes int `json:"resumes,omitempty"`
	// Usage is the job's measured resource footprint, accumulated across
	// attempts (a resumed job keeps the usage of its interrupted runs).
	// Unlike Result it is deliberately wall-clock: it answers "what did
	// this job cost", not "what did it compute", so it is persisted on
	// the record rather than folded into the deterministic result.
	Usage *Usage `json:"usage,omitempty"`

	SubmittedAt time.Time  `json:"submitted_at"`
	StartedAt   *time.Time `json:"started_at,omitempty"`
	FinishedAt  *time.Time `json:"finished_at,omitempty"`

	// cancelRequested marks a DELETE on a running job so the worker can
	// distinguish client cancellation from a daemon shutdown.
	cancelRequested bool
	// enqueuedAt is when the job last entered the queue (submission or
	// restart requeue); the next start charges the interval to
	// Usage.QueueSeconds. In-memory only: after a restart the requeue
	// time is the honest enqueue point anyway.
	enqueuedAt time.Time
	// queueWait is the wait the current attempt paid before starting,
	// set by the scheduler when it dequeues the job.
	queueWait time.Duration
}

// Usage is a job's measured resource footprint. All figures are
// cumulative over the job's attempts.
type Usage struct {
	// Attempts counts runs (1 + restarts-while-running).
	Attempts int `json:"attempts"`
	// WallSeconds is total in-worker run time.
	WallSeconds float64 `json:"wall_seconds"`
	// CPUSeconds is the process CPU-time delta (user+system, via
	// getrusage) across the job's runs. Jobs running concurrently on
	// other workers overlap into it — it is an attribution estimate,
	// exact only for a lone running job.
	CPUSeconds float64 `json:"cpu_seconds"`
	// QueueSeconds is total time spent queued before starting.
	QueueSeconds float64 `json:"queue_seconds"`
	// Episodes / Cells / Traces are the work counters of the job's own
	// metric registry (explore.episodes_total, sweep.cells_total,
	// campaign.traces_total).
	Episodes uint64 `json:"episodes,omitempty"`
	Cells    uint64 `json:"cells,omitempty"`
	Traces   uint64 `json:"traces,omitempty"`
	// PeakHeapBytes is the largest live-heap growth observed over the
	// job's runs: max(HeapAlloc) − HeapAlloc at run start, sampled a few
	// times a second. Process-wide, so concurrent jobs share the blame.
	PeakHeapBytes uint64 `json:"peak_heap_bytes,omitempty"`
}

// add accumulates another usage sample (an attempt, or another job when
// aggregating a tenant): durations and work counters sum, the heap peak
// takes the maximum, because peaks do not add.
func (u *Usage) add(d Usage) {
	u.Attempts += d.Attempts
	u.WallSeconds += d.WallSeconds
	u.CPUSeconds += d.CPUSeconds
	u.QueueSeconds += d.QueueSeconds
	u.Episodes += d.Episodes
	u.Cells += d.Cells
	u.Traces += d.Traces
	if d.PeakHeapBytes > u.PeakHeapBytes {
		u.PeakHeapBytes = d.PeakHeapBytes
	}
}

// clone returns a copy safe to hand out after the lock is released.
func (j *Job) clone() *Job {
	c := *j
	if j.Usage != nil {
		u := *j.Usage
		c.Usage = &u
	}
	return &c
}

// Files are the stable per-job paths inside the server's data directory.
// The Checkpoint path is handed to the engine (training checkpoint for
// discover, shard store for sweep), Events receives the job's JSONL run
// events (tailed by the SSE endpoint), and Output is where large result
// artifacts (atlas documents) land.
type Files struct {
	Checkpoint string
	Events     string
	Output     string
}
