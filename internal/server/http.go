package server

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"repro/internal/obs"
	"repro/internal/runreport"
)

// Handler returns the daemon's HTTP API:
//
//	POST   /jobs              submit a job (body: Spec), 202 + Job
//	GET    /jobs              list jobs in submission order
//	GET    /jobs/{id}         job record (incl. usage) plus an event-log summary
//	DELETE /jobs/{id}         cancel a queued/running job; purge a terminal one
//	GET    /jobs/{id}/events  live SSE stream of the job's JSONL events
//	GET    /jobs/{id}/report  obsreport markdown summary of the job's event log
//	GET    /stats             per-tenant fleet aggregates from the job records
//	GET    /healthz           liveness probe
//	GET    /readyz            readiness: 200 accepting, 503 draining/closed
//	GET    /metrics           fleet metric view (also /debug/vars, /debug/pprof)
//
// /metrics serves the composed fleet snapshot (scheduler + per-job
// registries folded under tenant/kind/cipher/fault_model labels), not
// the bare scheduler registry — see Server.MetricsSnapshot.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleDelete)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /jobs/{id}/report", s.handleReport)
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		// Liveness (healthz) stays 200 through a drain so the process
		// is not killed mid-shutdown; readiness flips to 503 the moment
		// Close begins, telling load balancers to stop routing here.
		if s.Ready() {
			writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
			return
		}
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	})
	if s.cfg.Metrics != nil {
		debug := obs.SnapshotHandler(s.MetricsSnapshot)
		mux.Handle("/metrics", debug)
		mux.Handle("/debug/", debug)
	}
	return mux
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	dec := json.NewDecoder(io.LimitReader(r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, fmt.Errorf("%w: decoding body: %v", ErrBadSpec, err))
		return
	}
	j, err := s.Submit(spec)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Location", "/jobs/"+j.ID)
	writeJSON(w, http.StatusAccepted, j)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": jobs, "count": len(jobs)})
}

// jobStatus is the GET /jobs/{id} response: the job record plus an
// obsreport-style summary of its event log (event counts by kind), so a
// client can see campaign progress without downloading the stream.
type jobStatus struct {
	*Job
	Summary *eventSummary `json:"summary,omitempty"`
}

type eventSummary struct {
	// Lines is the total number of event lines in the job's log.
	Lines int `json:"lines"`
	// Events counts log lines by event kind.
	Events map[string]int `json:"events,omitempty"`
	// Truncated is set when the scan stopped early (a log line exceeded
	// the scanner's 4 MB cap, or a read failed): the counts above cover
	// only the lines before the failure. Without this field a truncated
	// summary is indistinguishable from a complete one.
	Truncated string `json:"truncated,omitempty"`
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, jobStatus{Job: j, Summary: summarizeEvents(s.Files(j.ID).Events)})
}

// summarizeEvents scans a job's JSONL log and tallies lines by event
// kind. A missing log (job not started) returns nil; damaged lines are
// counted under "".
func summarizeEvents(path string) *eventSummary {
	f, err := os.Open(path)
	if err != nil {
		return nil
	}
	defer f.Close()
	sum := &eventSummary{Events: map[string]int{}}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		sum.Lines++
		var ev struct {
			Event string `json:"event"`
		}
		json.Unmarshal(sc.Bytes(), &ev)
		sum.Events[ev.Event]++
	}
	// A scanner that stopped on error (oversized line, read failure)
	// counted only a prefix of the log; surface that instead of passing
	// the partial tally off as the whole story.
	if err := sc.Err(); err != nil {
		sum.Truncated = err.Error()
	}
	return sum
}

// handleReport renders the obsreport markdown summary of a job's event
// log. A queued job has no log yet, which is a conflict (409: retry
// after it starts), not a missing job.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j, err := s.Job(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	if j.State == StateQueued {
		writeJSON(w, http.StatusConflict, map[string]string{
			"error": "job is queued; no event log to report on yet",
		})
		return
	}
	rep, err := runreport.AnalyzeFile(s.Files(j.ID).Events, "")
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	w.Header().Set("Content-Type", "text/markdown; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	runreport.WriteMarkdown(w, rep)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, purged, err := s.Delete(id)
	if err != nil {
		writeError(w, err)
		return
	}
	if purged {
		writeJSON(w, http.StatusOK, map[string]any{"id": id, "purged": true})
		return
	}
	writeJSON(w, http.StatusAccepted, j)
}

// handleEvents streams a job's JSONL event log as server-sent events:
// each log line becomes one `data:` frame as it is appended, and a final
// `event: done` frame fires once the job is terminal and the log is
// drained. The stream follows the job across daemon-restart resumes
// because the log file is append-only.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := s.Job(id); err != nil {
		writeError(w, err)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	path := s.Files(id).Events
	var (
		f       *os.File
		pending []byte // partial last line not yet terminated by \n
		offset  int64
	)
	defer func() {
		if f != nil {
			f.Close()
		}
	}()
	tick := time.NewTicker(150 * time.Millisecond)
	defer tick.Stop()
	for {
		// Observe the state BEFORE draining: the worker completes the
		// event log before publishing a terminal state, so "terminal,
		// then drained to EOF" means the stream is complete.
		var final State
		if j, err := s.Job(id); err != nil {
			final = "purged"
		} else if j.State.Terminal() {
			final = j.State
		}
		if f == nil {
			f, _ = os.Open(path) // appears once a worker picks the job up
		}
		if f != nil {
			buf := make([]byte, 64*1024)
			for {
				n, err := f.ReadAt(buf, offset)
				if n > 0 {
					offset += int64(n)
					pending = append(pending, buf[:n]...)
					for {
						i := indexByte(pending, '\n')
						if i < 0 {
							break
						}
						line := pending[:i]
						pending = pending[i+1:]
						if len(line) == 0 {
							continue
						}
						fmt.Fprintf(w, "data: %s\n\n", line)
					}
					fl.Flush()
				}
				if err != nil {
					break // io.EOF: caught up
				}
			}
		}
		if final != "" {
			fmt.Fprintf(w, "event: done\ndata: {\"state\":%q}\n\n", final)
			fl.Flush()
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-tick.C:
		}
	}
}

func indexByte(b []byte, c byte) int {
	for i, got := range b {
		if got == c {
			return i
		}
	}
	return -1
}

// writeJSON writes a JSON response body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeError maps scheduler errors to HTTP statuses.
func writeError(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrBadSpec):
		code = http.StatusBadRequest
	case errors.Is(err, ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, ErrClosed):
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
