//go:build unix

package server

import (
	"syscall"
	"time"
)

// processCPUSeconds returns the process's cumulative CPU time
// (user+system) from getrusage. The worker takes a delta around each
// job run; see Usage.CPUSeconds for the concurrency caveat.
func processCPUSeconds() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	user := time.Duration(ru.Utime.Nano())
	sys := time.Duration(ru.Stime.Nano())
	return (user + sys).Seconds()
}
