package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/obs"
)

// Runner executes one job. Implementations decode spec.Config into their
// engine configuration, wire the given files (engine checkpoint, event
// log, output artifact) and instrumentation in, and return the job's
// deterministic result document. Run must honor ctx cancellation at an
// engine boundary and leave a resumable checkpoint behind, and a re-Run
// of the same spec with the same files must converge to the identical
// result — the server's restart durability is built on that contract.
type Runner interface {
	// Validate vets spec.Config without running anything (POST /jobs
	// rejects bad specs synchronously).
	Validate(spec Spec) error
	// Run executes the job.
	Run(ctx context.Context, spec Spec, files Files, metrics *obs.Registry, events *obs.Emitter) (json.RawMessage, error)
}

// Sentinel errors; the HTTP layer maps them to status codes.
var (
	// ErrBadSpec: the submitted spec is malformed (HTTP 400).
	ErrBadSpec = errors.New("server: bad job spec")
	// ErrNotFound: no job with that ID (HTTP 404).
	ErrNotFound = errors.New("server: no such job")
	// ErrClosed: the server is shutting down (HTTP 503).
	ErrClosed = errors.New("server: shutting down")
)

// Config tunes a Server. Zero values select defaults.
type Config struct {
	// DataDir is the server's state directory: the durable job table
	// (jobs.ckpt) plus each job's engine checkpoint, JSONL event log
	// and output artifact. Restarting a daemon on the same directory
	// resumes everything; the directory is the whole daemon state.
	DataDir string
	// Workers is the job worker-pool size (default 2). Each worker runs
	// one job at a time; the job's own campaign parallelism is governed
	// by its config's Workers knob, not this one.
	Workers int
	// TenantQuota bounds how many jobs one tenant may have running at
	// once (default: Workers, i.e. no effective limit for a lone
	// tenant). Queued jobs beyond the quota wait without blocking other
	// tenants' jobs behind them.
	TenantQuota int
	// Runner executes jobs. Required.
	Runner Runner
	// Metrics, if non-nil, receives scheduler instrumentation and is
	// served on /metrics (plus expvar and pprof under /debug/) by
	// Handler.
	Metrics *obs.Registry
	// Events, if non-nil, receives daemon-level job lifecycle events
	// (job_submitted, job_started, job_finished, job_cancelled). Each
	// job additionally gets its own per-job event log under DataDir.
	Events *obs.Emitter
}

// Server is the campaign job server: scheduler state, worker pool and
// durable store. Construct with New, serve Handler over HTTP, stop with
// Close.
type Server struct {
	cfg   Config
	store *store

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	mu      sync.Mutex
	cond    *sync.Cond
	jobs    map[string]*Job
	q       *queue
	cancels map[string]context.CancelFunc
	nextSeq uint64
	closed  bool

	// Per-job metric attribution (nil-free even with Metrics disabled).
	// Each running job writes into its own registry; scrape-time folding
	// (MetricsSnapshot) composes the fleet view from the scheduler
	// registry + the accumulated history of finished attempts + the live
	// registries, labeled by JobLabelNames. Because the unlabeled totals
	// are produced by the same fold that produces the labeled series,
	// the sums match by construction.
	history  obs.Snapshot
	liveJobs map[string]*liveJob
}

// liveJob is a running job's metric registry plus its attribution
// label values.
type liveJob struct {
	reg    *obs.Registry
	labels []string
}

// New opens (or creates) the data directory, loads the durable job
// table, re-queues jobs that were queued or running when the previous
// daemon stopped, and starts the worker pool. Interrupted running jobs
// resume from their engine checkpoints bit-identically.
func New(cfg Config) (*Server, error) {
	if cfg.DataDir == "" {
		return nil, errors.New("server: Config.DataDir is required")
	}
	if cfg.Runner == nil {
		return nil, errors.New("server: Config.Runner is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.TenantQuota <= 0 {
		cfg.TenantQuota = cfg.Workers
	}
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	st, err := openStore(cfg.DataDir)
	if err != nil {
		return nil, err
	}

	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		store:      st,
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       map[string]*Job{},
		q:          newQueue(cfg.TenantQuota),
		cancels:    map[string]context.CancelFunc{},
		history:    (*obs.Registry)(nil).Snapshot(),
		liveJobs:   map[string]*liveJob{},
	}
	s.cond = sync.NewCond(&s.mu)

	jobs, seq := st.load()
	s.nextSeq = seq
	now := time.Now().UTC()
	for _, j := range jobs {
		if j.Seq >= s.nextSeq {
			s.nextSeq = j.Seq + 1
		}
		j.cancelRequested = false
		switch j.State {
		case StateQueued:
			j.enqueuedAt = now
			s.q.push(j.ID)
		case StateRunning:
			// Interrupted mid-run (graceful shutdown or crash): back to
			// the queue; the re-run resumes from the engine checkpoint.
			j.State = StateQueued
			j.Resumes++
			j.enqueuedAt = now
			if err := st.putJob(j); err != nil {
				cancel()
				return nil, err
			}
			s.q.push(j.ID)
		}
		s.jobs[j.ID] = j
	}
	s.updateGauges()

	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Files returns the stable per-job paths for a job ID.
func (s *Server) Files(id string) Files {
	return Files{
		Checkpoint: filepath.Join(s.cfg.DataDir, id+".ckpt"),
		Events:     filepath.Join(s.cfg.DataDir, id+".events.jsonl"),
		Output:     filepath.Join(s.cfg.DataDir, id+".out.json"),
	}
}

// Submit validates and enqueues a job, returning its durable record.
func (s *Server) Submit(spec Spec) (*Job, error) {
	if err := spec.validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	if err := s.cfg.Runner.Validate(spec); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	seq := s.nextSeq
	s.nextSeq++
	now := time.Now().UTC()
	j := &Job{
		ID:          fmt.Sprintf("j-%06d", seq),
		Seq:         seq,
		Spec:        spec,
		State:       StateQueued,
		SubmittedAt: now,
		enqueuedAt:  now,
	}
	if err := s.store.putSeq(s.nextSeq); err != nil {
		return nil, err
	}
	if err := s.store.putJob(j); err != nil {
		return nil, err
	}
	s.jobs[j.ID] = j
	s.q.push(j.ID)
	s.cfg.Metrics.Counter("server.jobs_submitted_total").Inc()
	s.cfg.Metrics.CounterVec("server.jobs_submitted_total", "tenant", "kind").
		With(spec.Tenant, spec.Type).Inc()
	s.updateGauges()
	s.cfg.Events.Emit(obs.EventJobSubmitted, map[string]any{
		"id": j.ID, "type": spec.Type, "tenant": spec.Tenant, "name": spec.Name,
	})
	s.cond.Broadcast()
	return j.clone(), nil
}

// Job returns a copy of one job's record.
func (s *Server) Job(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j.clone(), nil
}

// Jobs returns copies of every job record in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j.clone())
	}
	sortJobs(out)
	return out
}

// Delete is the DELETE /jobs/{id} semantic: a queued job is cancelled in
// place, a running job's context is cancelled (the engine stops at its
// next shard/episode boundary and the job settles to cancelled), and a
// terminal job's record and files are purged. The returned purged flag
// reports the last case.
func (s *Server) Delete(id string) (job *Job, purged bool, err error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return nil, false, ErrNotFound
	}
	switch {
	case j.State == StateQueued:
		s.q.remove(id)
		now := time.Now().UTC()
		j.State = StateCancelled
		j.Error = "cancelled before start"
		j.FinishedAt = &now
		err = s.store.putJob(j)
		s.cfg.Metrics.Counter("server.jobs_cancelled_total").Inc()
		s.cfg.Metrics.CounterVec("server.jobs_cancelled_total", "tenant", "kind").
			With(j.Spec.Tenant, j.Spec.Type).Inc()
		s.updateGauges()
		s.cfg.Events.Emit(obs.EventJobCancelled, map[string]any{"id": id, "state": "queued"})
		job = j.clone()
		s.mu.Unlock()
		return job, false, err
	case j.State == StateRunning:
		j.cancelRequested = true
		cancel := s.cancels[id]
		job = j.clone()
		s.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		s.cfg.Events.Emit(obs.EventJobCancelled, map[string]any{"id": id, "state": "running"})
		return job, false, nil
	default: // terminal: purge record and files
		delete(s.jobs, id)
		err = s.store.deleteJob(id)
		files := s.Files(id)
		s.mu.Unlock()
		for _, p := range []string{files.Checkpoint, files.Events, files.Output} {
			os.Remove(p)
		}
		return nil, true, err
	}
}

// Close stops the scheduler: no new jobs are accepted or started,
// running jobs are cancelled at their next engine boundary (leaving
// resumable checkpoints and on-disk records in the running state so the
// next daemon requeues them), and Close blocks until the workers drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.baseCancel()
	s.cond.Broadcast()
	s.wg.Wait()
	return nil
}

// worker pulls eligible jobs until the server closes.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, ctx := s.next()
		if j == nil {
			return
		}
		s.runJob(ctx, j)
	}
}

// next blocks until a job is eligible (FIFO, tenant under quota) or the
// server closes. It transitions the job to running and persists that, so
// a crash between here and the run's end still resumes the job.
func (s *Server) next() (*Job, context.Context) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return nil, nil
		}
		id := s.q.pop(func(id string) string { return s.jobs[id].Spec.Tenant })
		if id == "" {
			s.cond.Wait()
			continue
		}
		j := s.jobs[id]
		now := time.Now().UTC()
		j.State = StateRunning
		j.StartedAt = &now
		if !j.enqueuedAt.IsZero() {
			j.queueWait = now.Sub(j.enqueuedAt)
		}
		ctx, cancel := context.WithCancel(s.baseCtx)
		s.cancels[id] = cancel
		if err := s.store.putJob(j); err != nil {
			// A job we cannot persist must not run: its restart story
			// would be undefined. Fail it in memory and move on.
			j.State = StateFailed
			j.Error = fmt.Sprintf("persisting running state: %v", err)
			delete(s.cancels, id)
			cancel()
			s.q.release(j.Spec.Tenant)
			continue
		}
		s.updateGauges()
		return j, ctx
	}
}

// runJob executes one job and settles its terminal (or interrupted)
// state. The attempt runs against its own metric registry (folded into
// the fleet view by MetricsSnapshot) and its measured cost lands on the
// durable record as Job.Usage.
func (s *Server) runJob(ctx context.Context, j *Job) {
	files := s.Files(j.ID)
	labels := j.Spec.labelValues()
	s.cfg.Events.Emit(obs.EventJobStarted, map[string]any{
		"id": j.ID, "type": j.Spec.Type, "tenant": j.Spec.Tenant, "resumes": j.Resumes,
	})

	// Each attempt writes into a fresh registry so its counters are this
	// job's alone; the fleet /metrics view is composed by folding. With
	// metrics disabled the registry stays nil and the whole path keeps
	// the zero-cost disabled contract.
	var jobReg *obs.Registry
	if s.cfg.Metrics != nil {
		jobReg = obs.NewRegistry()
		s.mu.Lock()
		s.liveJobs[j.ID] = &liveJob{reg: jobReg, labels: labels}
		s.mu.Unlock()
	}

	var (
		result json.RawMessage
		runErr error
		usage  Usage
	)
	// The per-job event log appends across daemon restarts so the SSE
	// stream and the log survive a resume; job_started marks each
	// attempt. The attempt's attribution labels ride on it so offline
	// fleet reports can group logs with no access to the job store.
	em, err := obs.AppendEmitter(files.Events)
	if err != nil {
		runErr = err
	} else {
		em.Emit(obs.EventJobStarted, map[string]any{
			"id": j.ID, "type": j.Spec.Type, "resumes": j.Resumes,
			"tenant": labels[0], "kind": labels[1], "cipher": labels[2], "fault_model": labels[3],
		})
		start := time.Now()
		cpu0 := processCPUSeconds()
		heap := startHeapSampler()
		result, runErr = s.cfg.Runner.Run(ctx, j.Spec, files, jobReg, em)
		usage = Usage{
			Attempts:      1,
			WallSeconds:   time.Since(start).Seconds(),
			CPUSeconds:    processCPUSeconds() - cpu0,
			QueueSeconds:  j.queueWait.Seconds(),
			PeakHeapBytes: heap.Stop(),
		}
		s.cfg.Metrics.Histogram("server.job_seconds", obs.LatencyBuckets).
			Observe(usage.WallSeconds)
		s.cfg.Metrics.HistogramVec("server.job_seconds", obs.LatencyBuckets, "tenant", "kind").
			With(j.Spec.Tenant, j.Spec.Type).Observe(usage.WallSeconds)
	}

	// The attempt is over; its registry is final. Lift the work counters
	// into the usage record before the snapshot is folded away.
	var jobSnap obs.Snapshot
	if jobReg != nil {
		jobSnap = jobReg.Snapshot()
		usage.Episodes, usage.Cells, usage.Traces = usageFromSnapshot(jobSnap)
	}

	// Decide the outcome, then finish the event log BEFORE the state
	// transition is published: once a reader observes a terminal state,
	// the job's log is complete, which is what lets the SSE endpoint
	// terminate cleanly without racing the final lines.
	s.mu.Lock()
	cancelRequested := j.cancelRequested
	closing := s.closed
	if j.Usage == nil {
		j.Usage = &Usage{}
	}
	j.Usage.add(usage)
	usageTotal := *j.Usage
	s.mu.Unlock()

	var (
		state       State
		errText     string
		interrupted bool
	)
	switch {
	case runErr == nil:
		state = StateDone
	case cancelRequested && ctx.Err() != nil:
		state = StateCancelled
		errText = runErr.Error()
	case closing && ctx.Err() != nil:
		// Daemon shutdown: leave the record in the running state so the
		// next daemon requeues and resumes it. The engine checkpoint
		// written on cancellation carries the actual progress.
		interrupted = true
	default:
		state = StateFailed
		errText = runErr.Error()
	}
	if em != nil {
		// Every attempt ends with its cumulative cost (interrupted ones
		// included — their next attempt starts from this figure), so the
		// last job_usage line of a log is the job's usage to date.
		attemptState := string(state)
		if interrupted {
			attemptState = "interrupted"
		}
		em.Emit(obs.EventJobUsage, map[string]any{
			"id": j.ID, "state": attemptState,
			"tenant": labels[0], "kind": labels[1], "cipher": labels[2], "fault_model": labels[3],
			"attempts":     usageTotal.Attempts,
			"wall_seconds": usageTotal.WallSeconds, "cpu_seconds": usageTotal.CPUSeconds,
			"queue_seconds": usageTotal.QueueSeconds,
			"episodes":      usageTotal.Episodes, "cells": usageTotal.Cells, "traces": usageTotal.Traces,
			"peak_heap_bytes": usageTotal.PeakHeapBytes,
		})
		if !interrupted {
			em.Emit(obs.EventJobFinished, map[string]any{"id": j.ID, "state": string(state)})
		}
		em.Close()
	}

	s.mu.Lock()
	if cancel := s.cancels[j.ID]; cancel != nil {
		delete(s.cancels, j.ID)
		defer cancel()
	}
	s.q.release(j.Spec.Tenant)
	// Retire the attempt's registry: fold it into the accumulated
	// history in the same critical section that removes it from the live
	// set, so a concurrent scrape sees the attempt exactly once.
	if jobReg != nil {
		obs.Fold(&s.history, jobSnap, JobLabelNames, labels)
		delete(s.liveJobs, j.ID)
	}
	if !interrupted {
		now := time.Now().UTC()
		j.State = state
		j.Error = errText
		j.FinishedAt = &now
		if state == StateDone {
			j.Result = result
		}
		switch state {
		case StateDone:
			s.cfg.Metrics.Counter("server.jobs_done_total").Inc()
			s.cfg.Metrics.CounterVec("server.jobs_done_total", "tenant", "kind").
				With(j.Spec.Tenant, j.Spec.Type).Inc()
		case StateCancelled:
			s.cfg.Metrics.Counter("server.jobs_cancelled_total").Inc()
			s.cfg.Metrics.CounterVec("server.jobs_cancelled_total", "tenant", "kind").
				With(j.Spec.Tenant, j.Spec.Type).Inc()
		case StateFailed:
			s.cfg.Metrics.Counter("server.jobs_failed_total").Inc()
			s.cfg.Metrics.CounterVec("server.jobs_failed_total", "tenant", "kind").
				With(j.Spec.Tenant, j.Spec.Type).Inc()
		}
	}
	if err := s.store.putJob(j); err != nil && j.State == StateDone {
		j.Error = fmt.Sprintf("result not persisted: %v", err)
	}
	s.updateGauges()
	s.cond.Broadcast()
	s.mu.Unlock()

	if !interrupted {
		s.cfg.Events.Emit(obs.EventJobFinished, map[string]any{
			"id": j.ID, "state": string(state), "error": errText,
		})
	}
}

// updateGauges refreshes the queue-depth and running-count gauges,
// unlabeled and per tenant; the caller holds s.mu. Every tenant with a
// job on record gets its series written (zero included), so a tenant
// whose last job just finished reads 0, not a stale level.
func (s *Server) updateGauges() {
	m := s.cfg.Metrics
	if m == nil {
		return
	}
	type counts struct{ queued, running int }
	perTenant := map[string]*counts{}
	queued, running := 0, 0
	for _, j := range s.jobs {
		c, ok := perTenant[j.Spec.Tenant]
		if !ok {
			c = &counts{}
			perTenant[j.Spec.Tenant] = c
		}
		switch j.State {
		case StateQueued:
			queued++
			c.queued++
		case StateRunning:
			running++
			c.running++
		}
	}
	m.Gauge("server.jobs_queued").Set(float64(queued))
	m.Gauge("server.jobs_running").Set(float64(running))
	queuedVec := m.GaugeVec("server.jobs_queued", "tenant")
	runningVec := m.GaugeVec("server.jobs_running", "tenant")
	for tenant, c := range perTenant {
		queuedVec.With(tenant).Set(float64(c.queued))
		runningVec.With(tenant).Set(float64(c.running))
	}
}

// Ready reports whether the server accepts new jobs; false once Close
// has begun (draining) or finished.
func (s *Server) Ready() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.closed
}

// MetricsSnapshot composes the fleet metric view served on /metrics:
// the scheduler registry's own snapshot, plus the folded history of
// finished job attempts, plus every live job's registry folded under
// its attribution labels. The unlabeled totals and the labeled series
// come out of the same fold, so the per-label sums always match the
// totals. Safe with metrics disabled (returns the scheduler snapshot,
// which is empty for a nil registry).
func (s *Server) MetricsSnapshot() obs.Snapshot {
	snap := s.cfg.Metrics.Snapshot()
	s.mu.Lock()
	defer s.mu.Unlock()
	obs.Fold(&snap, s.history, nil, nil)
	for _, lj := range s.liveJobs {
		obs.Fold(&snap, lj.reg.Snapshot(), JobLabelNames, lj.labels)
	}
	return snap
}

// sortJobs orders job clones by submission sequence.
func sortJobs(jobs []*Job) {
	for i := 1; i < len(jobs); i++ {
		for k := i; k > 0 && jobs[k-1].Seq > jobs[k].Seq; k-- {
			jobs[k-1], jobs[k] = jobs[k], jobs[k-1]
		}
	}
}
