package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/obs"
)

// Runner executes one job. Implementations decode spec.Config into their
// engine configuration, wire the given files (engine checkpoint, event
// log, output artifact) and instrumentation in, and return the job's
// deterministic result document. Run must honor ctx cancellation at an
// engine boundary and leave a resumable checkpoint behind, and a re-Run
// of the same spec with the same files must converge to the identical
// result — the server's restart durability is built on that contract.
type Runner interface {
	// Validate vets spec.Config without running anything (POST /jobs
	// rejects bad specs synchronously).
	Validate(spec Spec) error
	// Run executes the job.
	Run(ctx context.Context, spec Spec, files Files, metrics *obs.Registry, events *obs.Emitter) (json.RawMessage, error)
}

// Sentinel errors; the HTTP layer maps them to status codes.
var (
	// ErrBadSpec: the submitted spec is malformed (HTTP 400).
	ErrBadSpec = errors.New("server: bad job spec")
	// ErrNotFound: no job with that ID (HTTP 404).
	ErrNotFound = errors.New("server: no such job")
	// ErrClosed: the server is shutting down (HTTP 503).
	ErrClosed = errors.New("server: shutting down")
)

// Config tunes a Server. Zero values select defaults.
type Config struct {
	// DataDir is the server's state directory: the durable job table
	// (jobs.ckpt) plus each job's engine checkpoint, JSONL event log
	// and output artifact. Restarting a daemon on the same directory
	// resumes everything; the directory is the whole daemon state.
	DataDir string
	// Workers is the job worker-pool size (default 2). Each worker runs
	// one job at a time; the job's own campaign parallelism is governed
	// by its config's Workers knob, not this one.
	Workers int
	// TenantQuota bounds how many jobs one tenant may have running at
	// once (default: Workers, i.e. no effective limit for a lone
	// tenant). Queued jobs beyond the quota wait without blocking other
	// tenants' jobs behind them.
	TenantQuota int
	// Runner executes jobs. Required.
	Runner Runner
	// Metrics, if non-nil, receives scheduler instrumentation and is
	// served on /metrics (plus expvar and pprof under /debug/) by
	// Handler.
	Metrics *obs.Registry
	// Events, if non-nil, receives daemon-level job lifecycle events
	// (job_submitted, job_started, job_finished, job_cancelled). Each
	// job additionally gets its own per-job event log under DataDir.
	Events *obs.Emitter
}

// Server is the campaign job server: scheduler state, worker pool and
// durable store. Construct with New, serve Handler over HTTP, stop with
// Close.
type Server struct {
	cfg   Config
	store *store

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup

	mu      sync.Mutex
	cond    *sync.Cond
	jobs    map[string]*Job
	q       *queue
	cancels map[string]context.CancelFunc
	nextSeq uint64
	closed  bool
}

// New opens (or creates) the data directory, loads the durable job
// table, re-queues jobs that were queued or running when the previous
// daemon stopped, and starts the worker pool. Interrupted running jobs
// resume from their engine checkpoints bit-identically.
func New(cfg Config) (*Server, error) {
	if cfg.DataDir == "" {
		return nil, errors.New("server: Config.DataDir is required")
	}
	if cfg.Runner == nil {
		return nil, errors.New("server: Config.Runner is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.TenantQuota <= 0 {
		cfg.TenantQuota = cfg.Workers
	}
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	st, err := openStore(cfg.DataDir)
	if err != nil {
		return nil, err
	}

	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		store:      st,
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       map[string]*Job{},
		q:          newQueue(cfg.TenantQuota),
		cancels:    map[string]context.CancelFunc{},
	}
	s.cond = sync.NewCond(&s.mu)

	jobs, seq := st.load()
	s.nextSeq = seq
	for _, j := range jobs {
		if j.Seq >= s.nextSeq {
			s.nextSeq = j.Seq + 1
		}
		j.cancelRequested = false
		switch j.State {
		case StateQueued:
			s.q.push(j.ID)
		case StateRunning:
			// Interrupted mid-run (graceful shutdown or crash): back to
			// the queue; the re-run resumes from the engine checkpoint.
			j.State = StateQueued
			j.Resumes++
			if err := st.putJob(j); err != nil {
				cancel()
				return nil, err
			}
			s.q.push(j.ID)
		}
		s.jobs[j.ID] = j
	}
	s.updateGauges()

	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Files returns the stable per-job paths for a job ID.
func (s *Server) Files(id string) Files {
	return Files{
		Checkpoint: filepath.Join(s.cfg.DataDir, id+".ckpt"),
		Events:     filepath.Join(s.cfg.DataDir, id+".events.jsonl"),
		Output:     filepath.Join(s.cfg.DataDir, id+".out.json"),
	}
}

// Submit validates and enqueues a job, returning its durable record.
func (s *Server) Submit(spec Spec) (*Job, error) {
	if err := spec.validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	if err := s.cfg.Runner.Validate(spec); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	seq := s.nextSeq
	s.nextSeq++
	j := &Job{
		ID:          fmt.Sprintf("j-%06d", seq),
		Seq:         seq,
		Spec:        spec,
		State:       StateQueued,
		SubmittedAt: time.Now().UTC(),
	}
	if err := s.store.putSeq(s.nextSeq); err != nil {
		return nil, err
	}
	if err := s.store.putJob(j); err != nil {
		return nil, err
	}
	s.jobs[j.ID] = j
	s.q.push(j.ID)
	s.cfg.Metrics.Counter("server.jobs_submitted_total").Inc()
	s.updateGauges()
	s.cfg.Events.Emit(obs.EventJobSubmitted, map[string]any{
		"id": j.ID, "type": spec.Type, "tenant": spec.Tenant, "name": spec.Name,
	})
	s.cond.Broadcast()
	return j.clone(), nil
}

// Job returns a copy of one job's record.
func (s *Server) Job(id string) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j.clone(), nil
}

// Jobs returns copies of every job record in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j.clone())
	}
	sortJobs(out)
	return out
}

// Delete is the DELETE /jobs/{id} semantic: a queued job is cancelled in
// place, a running job's context is cancelled (the engine stops at its
// next shard/episode boundary and the job settles to cancelled), and a
// terminal job's record and files are purged. The returned purged flag
// reports the last case.
func (s *Server) Delete(id string) (job *Job, purged bool, err error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return nil, false, ErrNotFound
	}
	switch {
	case j.State == StateQueued:
		s.q.remove(id)
		now := time.Now().UTC()
		j.State = StateCancelled
		j.Error = "cancelled before start"
		j.FinishedAt = &now
		err = s.store.putJob(j)
		s.cfg.Metrics.Counter("server.jobs_cancelled_total").Inc()
		s.updateGauges()
		s.cfg.Events.Emit(obs.EventJobCancelled, map[string]any{"id": id, "state": "queued"})
		job = j.clone()
		s.mu.Unlock()
		return job, false, err
	case j.State == StateRunning:
		j.cancelRequested = true
		cancel := s.cancels[id]
		job = j.clone()
		s.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		s.cfg.Events.Emit(obs.EventJobCancelled, map[string]any{"id": id, "state": "running"})
		return job, false, nil
	default: // terminal: purge record and files
		delete(s.jobs, id)
		err = s.store.deleteJob(id)
		files := s.Files(id)
		s.mu.Unlock()
		for _, p := range []string{files.Checkpoint, files.Events, files.Output} {
			os.Remove(p)
		}
		return nil, true, err
	}
}

// Close stops the scheduler: no new jobs are accepted or started,
// running jobs are cancelled at their next engine boundary (leaving
// resumable checkpoints and on-disk records in the running state so the
// next daemon requeues them), and Close blocks until the workers drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.baseCancel()
	s.cond.Broadcast()
	s.wg.Wait()
	return nil
}

// worker pulls eligible jobs until the server closes.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j, ctx := s.next()
		if j == nil {
			return
		}
		s.runJob(ctx, j)
	}
}

// next blocks until a job is eligible (FIFO, tenant under quota) or the
// server closes. It transitions the job to running and persists that, so
// a crash between here and the run's end still resumes the job.
func (s *Server) next() (*Job, context.Context) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return nil, nil
		}
		id := s.q.pop(func(id string) string { return s.jobs[id].Spec.Tenant })
		if id == "" {
			s.cond.Wait()
			continue
		}
		j := s.jobs[id]
		now := time.Now().UTC()
		j.State = StateRunning
		j.StartedAt = &now
		ctx, cancel := context.WithCancel(s.baseCtx)
		s.cancels[id] = cancel
		if err := s.store.putJob(j); err != nil {
			// A job we cannot persist must not run: its restart story
			// would be undefined. Fail it in memory and move on.
			j.State = StateFailed
			j.Error = fmt.Sprintf("persisting running state: %v", err)
			delete(s.cancels, id)
			cancel()
			s.q.release(j.Spec.Tenant)
			continue
		}
		s.updateGauges()
		return j, ctx
	}
}

// runJob executes one job and settles its terminal (or interrupted)
// state.
func (s *Server) runJob(ctx context.Context, j *Job) {
	files := s.Files(j.ID)
	s.cfg.Events.Emit(obs.EventJobStarted, map[string]any{
		"id": j.ID, "type": j.Spec.Type, "tenant": j.Spec.Tenant, "resumes": j.Resumes,
	})

	var (
		result json.RawMessage
		runErr error
	)
	// The per-job event log appends across daemon restarts so the SSE
	// stream and the log survive a resume; job_started marks each
	// attempt.
	em, err := obs.AppendEmitter(files.Events)
	if err != nil {
		runErr = err
	} else {
		em.Emit(obs.EventJobStarted, map[string]any{
			"id": j.ID, "type": j.Spec.Type, "resumes": j.Resumes,
		})
		start := time.Now()
		result, runErr = s.cfg.Runner.Run(ctx, j.Spec, files, s.cfg.Metrics, em)
		s.cfg.Metrics.Histogram("server.job_seconds", obs.LatencyBuckets).
			Observe(time.Since(start).Seconds())
	}

	// Decide the outcome, then finish the event log BEFORE the state
	// transition is published: once a reader observes a terminal state,
	// the job's log is complete, which is what lets the SSE endpoint
	// terminate cleanly without racing the final lines.
	s.mu.Lock()
	cancelRequested := j.cancelRequested
	closing := s.closed
	s.mu.Unlock()

	var (
		state       State
		errText     string
		interrupted bool
	)
	switch {
	case runErr == nil:
		state = StateDone
	case cancelRequested && ctx.Err() != nil:
		state = StateCancelled
		errText = runErr.Error()
	case closing && ctx.Err() != nil:
		// Daemon shutdown: leave the record in the running state so the
		// next daemon requeues and resumes it. The engine checkpoint
		// written on cancellation carries the actual progress.
		interrupted = true
	default:
		state = StateFailed
		errText = runErr.Error()
	}
	if em != nil {
		if !interrupted {
			em.Emit(obs.EventJobFinished, map[string]any{"id": j.ID, "state": string(state)})
		}
		em.Close()
	}

	s.mu.Lock()
	if cancel := s.cancels[j.ID]; cancel != nil {
		delete(s.cancels, j.ID)
		defer cancel()
	}
	s.q.release(j.Spec.Tenant)
	if !interrupted {
		now := time.Now().UTC()
		j.State = state
		j.Error = errText
		j.FinishedAt = &now
		if state == StateDone {
			j.Result = result
		}
		switch state {
		case StateDone:
			s.cfg.Metrics.Counter("server.jobs_done_total").Inc()
		case StateCancelled:
			s.cfg.Metrics.Counter("server.jobs_cancelled_total").Inc()
		case StateFailed:
			s.cfg.Metrics.Counter("server.jobs_failed_total").Inc()
		}
	}
	if err := s.store.putJob(j); err != nil && j.State == StateDone {
		j.Error = fmt.Sprintf("result not persisted: %v", err)
	}
	s.updateGauges()
	s.cond.Broadcast()
	s.mu.Unlock()

	if !interrupted {
		s.cfg.Events.Emit(obs.EventJobFinished, map[string]any{
			"id": j.ID, "state": string(state), "error": errText,
		})
	}
}

// updateGauges refreshes the queue-depth and running-count gauges; the
// caller holds s.mu.
func (s *Server) updateGauges() {
	m := s.cfg.Metrics
	if m == nil {
		return
	}
	m.Gauge("server.jobs_queued").Set(float64(s.q.depth()))
	running := 0
	for _, j := range s.jobs {
		if j.State == StateRunning {
			running++
		}
	}
	m.Gauge("server.jobs_running").Set(float64(running))
}

// sortJobs orders job clones by submission sequence.
func sortJobs(jobs []*Job) {
	for i := 1; i < len(jobs); i++ {
		for k := i; k > 0 && jobs[k-1].Seq > jobs[k].Seq; k-- {
			jobs[k-1], jobs[k] = jobs[k], jobs[k-1]
		}
	}
}
