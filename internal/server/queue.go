package server

// queue is the FIFO-with-per-tenant-quota scheduler state: job IDs in
// submission order, plus the per-tenant running counts the quota is
// enforced against. It is not safe for concurrent use; the Server's
// mutex guards it.
type queue struct {
	ids     []string
	running map[string]int
	quota   int
}

func newQueue(quota int) *queue {
	return &queue{running: map[string]int{}, quota: quota}
}

// push appends a job ID in FIFO order.
func (q *queue) push(id string) { q.ids = append(q.ids, id) }

// pop removes and returns the first queued job whose tenant has a free
// quota slot, charging the slot. Jobs of saturated tenants are skipped —
// not reordered — so the queue stays FIFO within and across tenants as
// slots free up. Returns "" when nothing is eligible.
func (q *queue) pop(tenantOf func(id string) string) string {
	for i, id := range q.ids {
		t := tenantOf(id)
		if q.running[t] >= q.quota {
			continue
		}
		q.ids = append(q.ids[:i], q.ids[i+1:]...)
		q.running[t]++
		return id
	}
	return ""
}

// release returns a tenant's quota slot after its job leaves the
// running state.
func (q *queue) release(tenant string) {
	if q.running[tenant] > 1 {
		q.running[tenant]--
		return
	}
	delete(q.running, tenant)
}

// remove deletes a queued job ID (DELETE on a queued job); it reports
// whether the ID was present.
func (q *queue) remove(id string) bool {
	for i, got := range q.ids {
		if got == id {
			q.ids = append(q.ids[:i], q.ids[i+1:]...)
			return true
		}
	}
	return false
}

// depth reports the number of queued jobs.
func (q *queue) depth() int { return len(q.ids) }
