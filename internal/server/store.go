package server

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/checkpoint"
)

// Job records are persisted through checkpoint.Stages: one stage per
// job plus a sequence counter, in a single checksummed envelope file
// written atomically on every change. Reusing the checkpoint store —
// rather than a bespoke database — means job durability inherits the
// properties the engine checkpoints already pin in tests: a torn write
// never corrupts prior state, a foreign or damaged file is a clean
// error, and the whole daemon state lives in one copyable directory.
const (
	storeKind = "explorefaultd-jobs"
	storeKey  = "jobs/v1"
	storeFile = "jobs.ckpt"
	seqStage  = "seq"
	jobPrefix = "job-"
)

// store is the durable job table.
type store struct {
	stages *checkpoint.Stages
}

// openStore opens (or initializes) the job table under dir.
func openStore(dir string) (*store, error) {
	st, err := checkpoint.OpenStages(filepath.Join(dir, storeFile), storeKind, storeKey)
	if err != nil {
		return nil, fmt.Errorf("server: opening job store: %w", err)
	}
	return &store{stages: st}, nil
}

// putJob persists one job record.
func (st *store) putJob(j *Job) error {
	return st.stages.Put(jobPrefix+j.ID, j)
}

// deleteJob removes one job record.
func (st *store) deleteJob(id string) error {
	return st.stages.Delete(jobPrefix + id)
}

// putSeq persists the ID counter so purged jobs never lead to ID reuse
// (their on-disk event logs and checkpoints must stay theirs).
func (st *store) putSeq(seq uint64) error {
	return st.stages.Put(seqStage, seq)
}

// load returns every stored job sorted by submission sequence, plus the
// persisted ID counter. A record that no longer decodes is skipped (it
// belongs to an older build) rather than wedging the daemon.
func (st *store) load() ([]*Job, uint64) {
	var seq uint64
	st.stages.Done(seqStage, &seq)
	var jobs []*Job
	for _, name := range st.stages.Names() {
		if !strings.HasPrefix(name, jobPrefix) {
			continue
		}
		var j Job
		if !st.stages.Done(name, &j) {
			continue
		}
		jobs = append(jobs, &j)
	}
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].Seq < jobs[k].Seq })
	return jobs, seq
}
