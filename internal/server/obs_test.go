package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/obs"
)

// tracedRun is countRun plus engine-style instrumentation: it counts
// traces into the job's own registry, so the tests can follow the
// numbers from per-job registries through usage records, /stats and the
// folded fleet snapshot.
func tracedRun(ctx context.Context, spec Spec, files Files, m *obs.Registry, em *obs.Emitter) (json.RawMessage, error) {
	res, err := countRun(ctx, spec, files, m, em)
	if err != nil {
		return nil, err
	}
	var cfg struct {
		Traces uint64 `json:"traces"`
	}
	json.Unmarshal(spec.Config, &cfg)
	m.Counter("campaign.traces_total").Add(cfg.Traces)
	return res, nil
}

// tracedSpec is a countSpec whose config also names a cipher (for label
// sniffing) and a trace count (for the work counters).
func tracedSpec(name, tenant string, traces uint64) Spec {
	return Spec{
		Type:   TypeDiscover,
		Tenant: tenant,
		Name:   name,
		Config: json.RawMessage(fmt.Sprintf(
			`{"n":2,"step_ms":1,"cipher":"gift64","traces":%d}`, traces)),
	}
}

// TestServerUsageAndLabeledMetrics drives a two-tenant fleet through
// the full attribution pipeline: per-job usage records, the /stats
// aggregates, and the labeled fleet snapshot whose per-tenant series
// must sum exactly to the unlabeled totals.
func TestServerUsageAndLabeledMetrics(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{
		DataDir: dir, Workers: 2,
		Runner:  testRunner{run: tracedRun},
		Metrics: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	jobs := []*Job{
		submitSpec(t, s, tracedSpec("a", "t1", 7)),
		submitSpec(t, s, tracedSpec("b", "t1", 7)),
		submitSpec(t, s, tracedSpec("c", "t2", 7)),
	}
	for _, j := range jobs {
		waitJob(t, s, j.ID, func(j *Job) bool { return j.State == StateDone })
	}

	// Every finished job carries a usage record with real figures.
	var wallSum float64
	for _, j := range jobs {
		got := waitJob(t, s, j.ID, func(j *Job) bool { return j.Usage != nil })
		u := got.Usage
		if u.Attempts != 1 {
			t.Errorf("job %s attempts = %d, want 1", j.ID, u.Attempts)
		}
		if u.WallSeconds <= 0 {
			t.Errorf("job %s wall_seconds = %v, want > 0", j.ID, u.WallSeconds)
		}
		if u.Traces != 7 {
			t.Errorf("job %s traces = %d, want 7", j.ID, u.Traces)
		}
		wallSum += u.WallSeconds
	}

	// /stats aggregates are the per-job records re-grouped by tenant.
	st := s.Stats()
	if st.Totals.Jobs != 3 || st.Totals.States["done"] != 3 {
		t.Fatalf("totals = %+v", st.Totals)
	}
	if st.Tenants["t1"].Usage.Traces != 14 || st.Tenants["t2"].Usage.Traces != 7 {
		t.Errorf("tenant traces = t1:%d t2:%d, want 14/7",
			st.Tenants["t1"].Usage.Traces, st.Tenants["t2"].Usage.Traces)
	}
	if st.Totals.Usage.Traces != 21 || st.Totals.Usage.Attempts != 3 {
		t.Errorf("total usage = %+v", st.Totals.Usage)
	}
	if diff := st.Totals.Usage.WallSeconds - wallSum; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("stats wall %v != sum of job records %v", st.Totals.Usage.WallSeconds, wallSum)
	}

	// The fleet snapshot: unlabeled totals equal the sum of the labeled
	// per-tenant series, for the folded engine counter and the
	// scheduler's own labeled counters alike.
	snap := s.MetricsSnapshot()
	if got := snap.Counters["campaign.traces_total"]; got != 21 {
		t.Fatalf("folded traces total = %d, want 21", got)
	}
	fam := snap.CounterVecs["campaign.traces_total"]
	var labeledSum uint64
	for _, v := range fam.Series {
		labeledSum += v
	}
	if labeledSum != snap.Counters["campaign.traces_total"] {
		t.Errorf("labeled series sum %d != unlabeled total %d",
			labeledSum, snap.Counters["campaign.traces_total"])
	}
	t1Key := `{cipher="gift64",fault_model="default",kind="discover",tenant="t1"}`
	if fam.Series[t1Key] != 14 {
		t.Errorf("series %s = %d, want 14 (have %v)", t1Key, fam.Series[t1Key], fam.Series)
	}

	doneFam := snap.CounterVecs["server.jobs_done_total"]
	var doneSum uint64
	for _, v := range doneFam.Series {
		doneSum += v
	}
	if doneSum != snap.Counters["server.jobs_done_total"] || doneSum != 3 {
		t.Errorf("jobs_done labeled sum %d vs total %d, want 3",
			doneSum, snap.Counters["server.jobs_done_total"])
	}
}

// TestServerUsageAcrossRestart: an interrupted job's usage survives the
// restart on the durable record, the resumed attempt adds to it, and
// the /stats aggregates match the per-job record afterwards — the
// SIGTERM+restart acceptance path.
func TestServerUsageAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{DataDir: dir, Workers: 1, Runner: testRunner{run: countRun}, Metrics: obs.NewRegistry()}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	j := submitSpec(t, s, countSpec("restart-usage", 400, 2))
	files := s.Files(j.ID)

	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := checkpoint.OpenStages(files.Checkpoint, "count", "count/v1")
		progress := 0
		if err == nil && st.Done("progress", &progress) && progress >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never made progress")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	// The interrupted attempt's usage is already on the reloaded record.
	first, err := s2.Job(j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if first.Usage == nil || first.Usage.Attempts != 1 || first.Usage.WallSeconds <= 0 {
		t.Fatalf("usage after restart = %+v, want 1 recorded attempt", first.Usage)
	}

	got := waitJob(t, s2, j.ID, func(j *Job) bool { return j.State == StateDone })
	if got.Usage == nil || got.Usage.Attempts != 2 {
		t.Fatalf("usage after resume = %+v, want 2 attempts", got.Usage)
	}
	if got.Usage.WallSeconds <= first.Usage.WallSeconds {
		t.Errorf("resumed wall %v did not grow past interrupted %v",
			got.Usage.WallSeconds, first.Usage.WallSeconds)
	}

	st := s2.Stats()
	if st.Totals.Usage != *got.Usage {
		t.Errorf("stats totals %+v != job record %+v", st.Totals.Usage, *got.Usage)
	}

	// Each attempt appended a cumulative job_usage event; the log's last
	// one equals the record, which is what obsreport -fleet reads.
	sum := summarizeEvents(files.Events)
	if sum == nil || sum.Events[obs.EventJobUsage] != 2 {
		t.Fatalf("event summary = %+v, want 2 job_usage lines", sum)
	}
}

// TestServerReadyzDrain: /readyz tells load balancers to stop routing
// the moment a drain begins, while /healthz keeps answering 200 so the
// process is not killed mid-shutdown.
func TestServerReadyzDrain(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{DataDir: dir, Workers: 1, Runner: testRunner{run: countRun}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body struct {
			Status string `json:"status"`
		}
		json.NewDecoder(resp.Body).Decode(&body)
		return resp.StatusCode, body.Status
	}

	if code, status := get("/readyz"); code != http.StatusOK || status != "ready" {
		t.Fatalf("/readyz before close = %d %q", code, status)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if code, status := get("/readyz"); code != http.StatusServiceUnavailable || status != "draining" {
		t.Fatalf("/readyz after close = %d %q, want 503 draining", code, status)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz after close = %d, want 200 (liveness, not readiness)", code)
	}
}

// TestServerReportEndpoint: a queued job has no event log yet (409,
// retry later); a finished one renders the obsreport markdown.
func TestServerReportEndpoint(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{DataDir: dir, Workers: 1, Runner: testRunner{run: countRun}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// The only worker is busy with a, so b stays queued.
	a := submitSpec(t, s, countSpec("busy", 200, 5))
	b := submitSpec(t, s, countSpec("parked", 1, 1))
	waitJob(t, s, a.ID, func(j *Job) bool { return j.State == StateRunning })

	resp, err := http.Get(ts.URL + "/jobs/" + b.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("report on queued job = %d, want 409", resp.StatusCode)
	}

	if _, err := http.Get(ts.URL + "/jobs/nope/report"); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/jobs/nope/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("report on unknown job = %d, want 404", resp.StatusCode)
	}

	if _, _, err := s.Delete(a.ID); err != nil {
		t.Fatal(err)
	}
	done := waitJob(t, s, b.ID, func(j *Job) bool { return j.State == StateDone })

	resp, err = http.Get(ts.URL + "/jobs/" + done.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report on done job = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/markdown") {
		t.Errorf("Content-Type = %q", ct)
	}
	md := string(body)
	if !strings.Contains(md, "# Run report:") || !strings.Contains(md, "job cost:") {
		t.Errorf("report missing sections:\n%s", md)
	}
}

// TestSummarizeEventsTruncated: a log line beyond the scanner's 4 MB cap
// stops the scan; the summary must say so instead of passing the partial
// tally off as complete.
func TestSummarizeEventsTruncated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "events.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintln(f, `{"event":"job_started"}`)
	// One line over the 4 MB scanner cap.
	fmt.Fprintf(f, `{"event":"huge","pad":%q}`+"\n", strings.Repeat("x", 5*1024*1024))
	fmt.Fprintln(f, `{"event":"job_finished"}`)
	f.Close()

	sum := summarizeEvents(path)
	if sum == nil {
		t.Fatal("summary is nil")
	}
	if sum.Truncated == "" {
		t.Fatal("Truncated not set for an oversized line")
	}
	if sum.Events["job_started"] != 1 {
		t.Errorf("events before the bad line = %+v", sum.Events)
	}
	if sum.Events["job_finished"] != 0 {
		t.Errorf("scan continued past the oversized line: %+v", sum.Events)
	}
}
