package server

import "testing"

func TestQueueFIFO(t *testing.T) {
	q := newQueue(2)
	tenant := func(id string) string { return "t" }
	for _, id := range []string{"a", "b", "c"} {
		q.push(id)
	}
	if got := q.pop(tenant); got != "a" {
		t.Fatalf("pop = %q, want a", got)
	}
	if got := q.pop(tenant); got != "b" {
		t.Fatalf("pop = %q, want b", got)
	}
	// Tenant t is now at quota (2 running): c must wait.
	if got := q.pop(tenant); got != "" {
		t.Fatalf("pop past quota = %q, want none", got)
	}
	q.release("t")
	if got := q.pop(tenant); got != "c" {
		t.Fatalf("pop after release = %q, want c", got)
	}
	if q.depth() != 0 {
		t.Fatalf("depth = %d, want 0", q.depth())
	}
}

func TestQueueQuotaSkipsSaturatedTenant(t *testing.T) {
	q := newQueue(1)
	tenants := map[string]string{"a1": "a", "a2": "a", "b1": "b"}
	tenant := func(id string) string { return tenants[id] }
	for _, id := range []string{"a1", "a2", "b1"} {
		q.push(id)
	}
	if got := q.pop(tenant); got != "a1" {
		t.Fatalf("pop = %q, want a1", got)
	}
	// a is saturated: a2 is skipped, not reordered; b1 runs.
	if got := q.pop(tenant); got != "b1" {
		t.Fatalf("pop = %q, want b1 (skip saturated tenant)", got)
	}
	if got := q.pop(tenant); got != "" {
		t.Fatalf("pop = %q, want none", got)
	}
	q.release("a")
	if got := q.pop(tenant); got != "a2" {
		t.Fatalf("pop = %q, want a2", got)
	}
}

func TestQueueRemove(t *testing.T) {
	q := newQueue(1)
	q.push("a")
	q.push("b")
	if !q.remove("a") {
		t.Fatal("remove(a) = false")
	}
	if q.remove("a") {
		t.Fatal("second remove(a) = true")
	}
	if got := q.pop(func(string) string { return "" }); got != "b" {
		t.Fatalf("pop = %q, want b", got)
	}
}
