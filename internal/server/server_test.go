package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/obs"
)

// testRunner adapts per-test callbacks to the Runner interface.
type testRunner struct {
	validate func(Spec) error
	run      func(ctx context.Context, spec Spec, files Files, m *obs.Registry, em *obs.Emitter) (json.RawMessage, error)
}

func (r testRunner) Validate(spec Spec) error {
	if r.validate != nil {
		return r.validate(spec)
	}
	return nil
}

func (r testRunner) Run(ctx context.Context, spec Spec, files Files, m *obs.Registry, em *obs.Emitter) (json.RawMessage, error) {
	return r.run(ctx, spec, files, m, em)
}

// countRun is a miniature resumable engine: it counts to cfg.n in timed
// steps, checkpointing progress through checkpoint.Stages exactly like
// the real engines, so interrupting and re-running it converges to the
// same result.
func countRun(ctx context.Context, spec Spec, files Files, _ *obs.Registry, em *obs.Emitter) (json.RawMessage, error) {
	var cfg struct {
		N      int `json:"n"`
		StepMS int `json:"step_ms"`
	}
	if err := json.Unmarshal(spec.Config, &cfg); err != nil {
		return nil, err
	}
	st, err := checkpoint.OpenStages(files.Checkpoint, "count", "count/v1")
	if err != nil {
		return nil, err
	}
	done := 0
	st.Done("progress", &done)
	for i := done; i < cfg.N; i++ {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(time.Duration(cfg.StepMS) * time.Millisecond):
		}
		if err := st.Put("progress", i+1); err != nil {
			return nil, err
		}
		em.Emit("step", map[string]any{"i": i})
	}
	return json.RawMessage(fmt.Sprintf(`{"count":%d}`, cfg.N)), nil
}

func waitJob(t *testing.T, s *Server, id string, pred func(*Job) bool) *Job {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		j, err := s.Job(id)
		if err != nil {
			t.Fatalf("Job(%s): %v", id, err)
		}
		if pred(j) {
			return j
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached the expected state", id)
	return nil
}

func submitSpec(t *testing.T, s *Server, spec Spec) *Job {
	t.Helper()
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	return j
}

func countSpec(name string, n, stepMS int) Spec {
	return Spec{
		Type:   TypeDiscover,
		Name:   name,
		Config: json.RawMessage(fmt.Sprintf(`{"n":%d,"step_ms":%d}`, n, stepMS)),
	}
}

func TestServerLifecycleHTTP(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{DataDir: dir, Workers: 1, Runner: testRunner{run: countRun}, Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Submit over HTTP.
	body := `{"type":"discover","name":"lifecycle","config":{"n":3,"step_ms":1}}`
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs status = %d, want 202", resp.StatusCode)
	}
	var j Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if j.ID == "" || j.State != StateQueued && j.State != StateRunning {
		t.Fatalf("submitted job = %+v", j)
	}

	waitJob(t, s, j.ID, func(j *Job) bool { return j.State == StateDone })

	// GET /jobs/{id}: record plus event summary.
	resp, err = http.Get(ts.URL + "/jobs/" + j.ID)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Job
		Summary *eventSummary `json:"summary"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var res struct {
		Count int `json:"count"`
	}
	if err := json.Unmarshal(got.Result, &res); err != nil || res.Count != 3 {
		t.Fatalf("result = %s, want count 3", got.Result)
	}
	if got.Summary == nil || got.Summary.Events["step"] != 3 {
		t.Fatalf("summary = %+v, want 3 step events", got.Summary)
	}
	if got.Summary.Events[obs.EventJobFinished] != 1 {
		t.Fatalf("summary missing job_finished: %+v", got.Summary.Events)
	}

	// GET /jobs lists it.
	resp, err = http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs  []*Job `json:"jobs"`
		Count int    `json:"count"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if list.Count != 1 || len(list.Jobs) != 1 || list.Jobs[0].ID != j.ID {
		t.Fatalf("GET /jobs = %+v", list)
	}

	// SSE on a finished job drains the full log and terminates.
	resp, err = http.Get(ts.URL + "/jobs/" + j.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type = %q", ct)
	}
	var dataLines, doneFrames int
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "data: ") {
			dataLines++
		}
		if line == "event: done" {
			doneFrames++
		}
	}
	resp.Body.Close()
	if doneFrames != 1 {
		t.Fatalf("SSE done frames = %d, want 1", doneFrames)
	}
	// step*3 + job_started + job_finished + emitter_stats + the done payload.
	if dataLines < 6 {
		t.Fatalf("SSE data lines = %d, want >= 6", dataLines)
	}

	// DELETE on a terminal job purges the record and its files.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+j.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE terminal status = %d, want 200", resp.StatusCode)
	}
	if _, err := s.Job(j.ID); err != ErrNotFound {
		t.Fatalf("Job after purge err = %v, want ErrNotFound", err)
	}
	if _, err := os.Stat(s.Files(j.ID).Events); !os.IsNotExist(err) {
		t.Fatalf("events file survived purge: %v", err)
	}

	// Purged IDs are not reused.
	j2 := submitSpec(t, s, countSpec("next", 1, 1))
	if j2.ID == j.ID {
		t.Fatalf("ID %s reused after purge", j2.ID)
	}

	// Error mapping: bad spec 400, unknown job 404.
	resp, _ = http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(`{"type":"nope","config":{}}`))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec status = %d, want 400", resp.StatusCode)
	}
	resp, _ = http.Get(ts.URL + "/jobs/j-999999")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job status = %d, want 404", resp.StatusCode)
	}
}

func TestServerCancelRunning(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{DataDir: dir, Workers: 1, Runner: testRunner{run: countRun}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	j := submitSpec(t, s, countSpec("slow", 10_000, 5))
	waitJob(t, s, j.ID, func(j *Job) bool { return j.State == StateRunning })
	if _, purged, err := s.Delete(j.ID); err != nil || purged {
		t.Fatalf("Delete(running) = purged %v, err %v", purged, err)
	}
	got := waitJob(t, s, j.ID, func(j *Job) bool { return j.State.Terminal() })
	if got.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", got.State)
	}
	if got.Error == "" {
		t.Fatal("cancelled job should record the cancellation cause")
	}
}

func TestServerCancelQueued(t *testing.T) {
	dir := t.TempDir()
	gate := make(chan struct{})
	run := func(ctx context.Context, spec Spec, files Files, m *obs.Registry, em *obs.Emitter) (json.RawMessage, error) {
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return json.RawMessage(`{}`), nil
	}
	s, err := New(Config{DataDir: dir, Workers: 1, Runner: testRunner{run: run}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	defer close(gate)
	blocker := submitSpec(t, s, Spec{Type: TypeDiscover, Config: json.RawMessage(`{}`)})
	waitJob(t, s, blocker.ID, func(j *Job) bool { return j.State == StateRunning })
	queued := submitSpec(t, s, Spec{Type: TypeDiscover, Config: json.RawMessage(`{}`)})
	j, purged, err := s.Delete(queued.ID)
	if err != nil || purged {
		t.Fatalf("Delete(queued) = purged %v, err %v", purged, err)
	}
	if j.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", j.State)
	}
}

func TestServerTenantQuota(t *testing.T) {
	dir := t.TempDir()
	var (
		mu      sync.Mutex
		started []string
	)
	gate := make(chan struct{})
	run := func(ctx context.Context, spec Spec, files Files, m *obs.Registry, em *obs.Emitter) (json.RawMessage, error) {
		mu.Lock()
		started = append(started, spec.Name)
		mu.Unlock()
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return json.RawMessage(`{}`), nil
	}
	s, err := New(Config{DataDir: dir, Workers: 2, TenantQuota: 1, Runner: testRunner{run: run}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	submitSpec(t, s, Spec{Type: TypeDiscover, Tenant: "a", Name: "a1", Config: json.RawMessage(`{}`)})
	submitSpec(t, s, Spec{Type: TypeDiscover, Tenant: "a", Name: "a2", Config: json.RawMessage(`{}`)})
	submitSpec(t, s, Spec{Type: TypeDiscover, Tenant: "b", Name: "b1", Config: json.RawMessage(`{}`)})

	// Both workers should fill: a1 plus b1 (a2 is quota-blocked and must
	// not hold b1 back).
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		n := len(started)
		mu.Unlock()
		if n == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("started = %v, want 2 running", started)
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	two := map[string]bool{started[0]: true, started[1]: true}
	mu.Unlock()
	if !two["a1"] || !two["b1"] {
		t.Fatalf("running = %v, want a1 and b1", started)
	}
	close(gate)
	for _, j := range s.Jobs() {
		waitJob(t, s, j.ID, func(j *Job) bool { return j.State == StateDone })
	}
	mu.Lock()
	defer mu.Unlock()
	if len(started) != 3 || started[2] != "a2" {
		t.Fatalf("start order = %v, want a2 last", started)
	}
}

func TestServerRestartResumesInterruptedJob(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{DataDir: dir, Workers: 1, Runner: testRunner{run: countRun}}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const n = 400
	j := submitSpec(t, s, countSpec("resume", n, 2))
	files := s.Files(j.ID)

	// Let the job make real progress, then stop the daemon mid-run.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := checkpoint.OpenStages(files.Checkpoint, "count", "count/v1")
		progress := 0
		if err == nil && st.Done("progress", &progress) && progress >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never made progress")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The on-disk record must still be "running" so the next daemon
	// requeues it.
	st, err := openStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	onDisk, _ := st.load()
	if len(onDisk) != 1 || onDisk[0].State != StateRunning {
		t.Fatalf("on-disk state after shutdown = %+v, want running", onDisk)
	}

	// Restart: the job is requeued, resumed from its checkpoint, and
	// completes with the same result as an uninterrupted run.
	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got := waitJob(t, s2, j.ID, func(j *Job) bool { return j.State == StateDone })
	if got.Resumes != 1 {
		t.Fatalf("Resumes = %d, want 1", got.Resumes)
	}
	want := fmt.Sprintf(`{"count":%d}`, n)
	if string(got.Result) != want {
		t.Fatalf("result = %s, want %s", got.Result, want)
	}

	// The appended event log holds two job_started lines (original +
	// resume) and exactly one job_finished.
	sum := summarizeEvents(files.Events)
	if sum == nil || sum.Events[obs.EventJobStarted] != 2 || sum.Events[obs.EventJobFinished] != 1 {
		t.Fatalf("event summary after resume = %+v", sum)
	}
}

func TestServerSubmitAfterClose(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{DataDir: dir, Workers: 1, Runner: testRunner{run: countRun}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(countSpec("late", 1, 1)); err != ErrClosed {
		t.Fatalf("Submit after Close err = %v, want ErrClosed", err)
	}
}

func TestServerValidateRejects(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{
		DataDir: dir,
		Runner: testRunner{
			run:      countRun,
			validate: func(sp Spec) error { return fmt.Errorf("no") },
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	_, err = s.Submit(countSpec("bad", 1, 1))
	if err == nil || !strings.Contains(err.Error(), "no") {
		t.Fatalf("Submit err = %v, want runner validation error", err)
	}
}
