//go:build !unix

package server

// processCPUSeconds is unavailable off unix; usage records report a CPU
// time of zero there rather than failing the job.
func processCPUSeconds() float64 { return 0 }
