package server

import (
	"runtime"
	"time"

	"repro/internal/obs"
)

// heapSampler watches live-heap growth over one job run: it records
// HeapAlloc at start and samples max(HeapAlloc) a few times a second
// until stopped. The figure is process-wide (the Go heap is shared), so
// concurrent jobs overlap into each other's peaks — documented on
// Usage.PeakHeapBytes.
type heapSampler struct {
	base uint64
	peak uint64
	stop chan struct{}
	done chan struct{}
}

// startHeapSampler begins sampling. The 250ms cadence keeps the
// ReadMemStats stop-the-world cost (tens of microseconds per call)
// invisible next to any real campaign.
func startHeapSampler() *heapSampler {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	h := &heapSampler{
		base: ms.HeapAlloc,
		peak: ms.HeapAlloc,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go func() {
		defer close(h.done)
		tick := time.NewTicker(250 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-h.stop:
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > h.peak {
					h.peak = ms.HeapAlloc
				}
			}
		}
	}()
	return h
}

// Stop ends sampling and returns the observed peak growth in bytes.
func (h *heapSampler) Stop() uint64 {
	close(h.stop)
	<-h.done
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > h.peak {
		h.peak = ms.HeapAlloc
	}
	if h.peak <= h.base {
		return 0
	}
	return h.peak - h.base
}

// usageFromSnapshot lifts the work counters a job's own registry
// accumulated into its usage record.
func usageFromSnapshot(s obs.Snapshot) (episodes, cells, traces uint64) {
	return s.Counters["explore.episodes_total"],
		s.Counters["sweep.cells_total"],
		s.Counters["campaign.traces_total"]
}
