package server

// TenantStats aggregates one tenant's jobs: counts by lifecycle state
// and the summed usage of every job on record. Usage aggregation
// follows Usage.add (durations and work counters sum, heap peaks max).
type TenantStats struct {
	Jobs   int            `json:"jobs"`
	States map[string]int `json:"states"`
	Usage  Usage          `json:"usage"`
}

// Stats is the GET /stats fleet document: per-tenant aggregates plus
// the fleet totals. It is computed from the durable job records, so the
// figures survive daemon restarts (purged jobs leave the books).
type Stats struct {
	Tenants map[string]*TenantStats `json:"tenants"`
	Totals  TenantStats             `json:"totals"`
}

// Stats aggregates the current job table per tenant.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Tenants: map[string]*TenantStats{},
		Totals:  TenantStats{States: map[string]int{}},
	}
	for _, j := range s.jobs {
		t, ok := st.Tenants[j.Spec.Tenant]
		if !ok {
			t = &TenantStats{States: map[string]int{}}
			st.Tenants[j.Spec.Tenant] = t
		}
		t.Jobs++
		t.States[string(j.State)]++
		st.Totals.Jobs++
		st.Totals.States[string(j.State)]++
		if j.Usage != nil {
			t.Usage.add(*j.Usage)
			st.Totals.Usage.add(*j.Usage)
		}
	}
	return st
}
