package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/prng"
)

func momentsOf(xs []float64) *Moments {
	var m Moments
	for _, x := range xs {
		m.Add(x)
	}
	return &m
}

func TestMomentsMeanVariance(t *testing.T) {
	m := momentsOf([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if got := m.Mean(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Unbiased variance of this classic sample is 32/7.
	if got := m.Variance(); math.Abs(got-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, 32.0/7)
	}
}

func TestMomentsEmptyAndSingle(t *testing.T) {
	var m Moments
	if m.Mean() != 0 || m.Variance() != 0 || m.N() != 0 {
		t.Error("empty Moments not zero")
	}
	m.Add(3)
	if m.Mean() != 3 || m.Variance() != 0 {
		t.Error("single-observation Moments wrong")
	}
}

// tameValues rescales quick-generated float64s into a range where the
// intermediate products of Welford/Welch arithmetic cannot overflow;
// overflow of ±1e308 inputs is not a property we care to defend.
func tameValues(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = math.Remainder(x, 1e6)
		if math.IsNaN(out[i]) {
			out[i] = 0
		}
	}
	return out
}

func TestMomentsMergeMatchesSequential(t *testing.T) {
	f := func(a, b []float64) bool {
		a, b = tameValues(a), tameValues(b)
		if len(a) == 0 && len(b) == 0 {
			return true
		}
		var merged Moments
		ma := momentsOf(a)
		mb := momentsOf(b)
		merged.Merge(ma)
		merged.Merge(mb)
		all := momentsOf(append(append([]float64{}, a...), b...))
		return merged.N() == all.N() &&
			math.Abs(merged.Mean()-all.Mean()) < 1e-9 &&
			math.Abs(merged.Variance()-all.Variance()) < 1e-6*(1+all.Variance())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWelchIdenticalPopulations(t *testing.T) {
	src := prng.New(1)
	var a, b Moments
	for i := 0; i < 5000; i++ {
		a.Add(src.NormFloat64())
		b.Add(src.NormFloat64())
	}
	if tt := Welch(&a, &b); tt > 4.5 {
		t.Errorf("identical populations gave t = %v > 4.5", tt)
	}
}

func TestWelchShiftedPopulations(t *testing.T) {
	src := prng.New(2)
	var a, b Moments
	for i := 0; i < 5000; i++ {
		a.Add(src.NormFloat64())
		b.Add(src.NormFloat64() + 1)
	}
	if tt := Welch(&a, &b); tt < 4.5 {
		t.Errorf("unit-shifted populations gave t = %v < 4.5", tt)
	}
}

func TestWelchKnownValue(t *testing.T) {
	// Hand-checkable case: a = {0,2} (mean 1, var 2), b = {10,14} (mean 12,
	// var 8). t = |1-12| / sqrt(2/2 + 8/2) = 11 / sqrt(5).
	a := momentsOf([]float64{0, 2})
	b := momentsOf([]float64{10, 14})
	want := 11 / math.Sqrt(5)
	if got := Welch(a, b); math.Abs(got-want) > 1e-12 {
		t.Errorf("Welch = %v, want %v", got, want)
	}
}

func TestWelchDegenerate(t *testing.T) {
	constA := momentsOf([]float64{5, 5, 5})
	constB := momentsOf([]float64{5, 5, 5})
	if got := Welch(constA, constB); got != 0 {
		t.Errorf("equal constants gave t = %v, want 0", got)
	}
	constC := momentsOf([]float64{7, 7, 7})
	if got := Welch(constA, constC); got != tCap {
		t.Errorf("distinct constants gave t = %v, want cap %v", got, tCap)
	}
	tiny := momentsOf([]float64{1})
	if got := Welch(constA, tiny); got != 0 {
		t.Errorf("n<2 sample gave t = %v, want 0", got)
	}
}

func TestWelchSymmetric(t *testing.T) {
	f := func(a, b []float64) bool {
		a, b = tameValues(a), tameValues(b)
		if len(a) < 2 || len(b) < 2 {
			return true
		}
		ma, mb := momentsOf(a), momentsOf(b)
		ta, tb := Welch(ma, mb), Welch(mb, ma)
		return math.Abs(ta-tb) < 1e-9*(1+ta)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWelchDF(t *testing.T) {
	src := prng.New(3)
	var a, b Moments
	for i := 0; i < 1000; i++ {
		a.Add(src.NormFloat64())
		b.Add(src.NormFloat64())
	}
	df := WelchDF(&a, &b)
	if df < 500 || df > 2000 {
		t.Errorf("WelchDF = %v, expected near 2000 for equal-variance samples", df)
	}
}

func TestNormalTailBoundAtThreshold(t *testing.T) {
	// The paper's θ = 4.5 corresponds to confidence > 99.999%.
	p := NormalTailBound(DefaultThreshold)
	if p > 1e-5 {
		t.Errorf("tail bound at 4.5 = %v, want < 1e-5", p)
	}
	if NormalTailBound(0) != 1 {
		t.Error("tail bound at 0 should be 1")
	}
	if NormalTailBound(2) >= NormalTailBound(1) {
		t.Error("tail bound should decrease in t")
	}
}

func BenchmarkMomentsAdd(b *testing.B) {
	var m Moments
	for i := 0; i < b.N; i++ {
		m.Add(float64(i % 97))
	}
}
