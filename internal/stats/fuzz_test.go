package stats

import (
	"testing"
)

// FuzzAccumulatorMerge checks the streaming-moment invariants the sharded
// campaign depends on: splitting a sample stream at any point, feeding
// the halves into separate accumulators and merging must reproduce the
// sequential accumulator exactly, and merge must be order-independent.
// Rows are small integers, for which the float64 power sums are exact, so
// every comparison is bit-exact (this is the same property that makes the
// worker-count-independent campaign results bit-identical).
func FuzzAccumulatorMerge(f *testing.F) {
	f.Add(byte(2), byte(2), byte(3), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(byte(1), byte(1), byte(0), []byte{0})
	f.Add(byte(5), byte(3), byte(7), []byte{15, 0, 3, 9, 12, 1, 2, 4, 8, 15, 7, 11, 5, 14, 6, 10})
	f.Fuzz(func(t *testing.T, groupsSel, orderSel, splitSel byte, data []byte) {
		groups := 1 + int(groupsSel)%6
		maxOrder := 1 + int(orderSel)%3

		// Decode rows of small-int group values (nibble range, matching
		// the cipher differential values fed to the real accumulators).
		var rows [][]float64
		for len(data) >= groups {
			row := make([]float64, groups)
			for j := 0; j < groups; j++ {
				row[j] = float64(data[j] % 16)
			}
			rows = append(rows, row)
			data = data[groups:]
		}
		if len(rows) == 0 {
			t.Skip("not enough data for one row")
		}
		split := int(splitSel) % (len(rows) + 1)

		seq := NewAccumulator(groups, maxOrder)
		left := NewAccumulator(groups, maxOrder)
		right := NewAccumulator(groups, maxOrder)
		for i, row := range rows {
			seq.Add(row)
			if i < split {
				left.Add(row)
			} else {
				right.Add(row)
			}
		}

		merged := NewAccumulator(groups, maxOrder)
		merged.Merge(left)
		merged.Merge(right)
		requireEqual(t, "left+right", seq, merged)

		reversed := NewAccumulator(groups, maxOrder)
		reversed.Merge(right)
		reversed.Merge(left)
		requireEqual(t, "right+left", seq, reversed)
	})
}

// requireEqual asserts two accumulators hold bit-identical sums.
func requireEqual(t *testing.T, label string, want, got *Accumulator) {
	t.Helper()
	if want.N() != got.N() {
		t.Fatalf("%s: N = %d, want %d", label, got.N(), want.N())
	}
	wantPow, wantCross := want.RawSums()
	gotPow, gotCross := got.RawSums()
	for i := range wantPow {
		if wantPow[i] != gotPow[i] {
			t.Fatalf("%s: pow[%d] = %v, want %v (not bit-identical)", label, i, gotPow[i], wantPow[i])
		}
	}
	for i := range wantCross {
		if wantCross[i] != gotCross[i] {
			t.Fatalf("%s: cross[%d] = %v, want %v (not bit-identical)", label, i, gotCross[i], wantCross[i])
		}
	}
}
