package stats

import (
	"testing"

	"repro/internal/prng"
)

// uniformBytes returns an n×cols matrix of uniform byte values.
func uniformBytes(src *prng.Source, n, cols int) [][]float64 {
	m := make([][]float64, n)
	for i := range m {
		row := make([]float64, cols)
		for j := range row {
			row[j] = float64(src.Byte())
		}
		m[i] = row
	}
	return m
}

func TestFirstOrderNoLeakOnUniform(t *testing.T) {
	src := prng.New(10)
	a := uniformBytes(src, 3000, 16)
	b := uniformBytes(src, 3000, 16)
	r := FirstOrder(a, b)
	// 16 positions tested; with threshold 4.5 false positives are
	// essentially impossible at this sample size.
	if r.T > DefaultThreshold {
		t.Errorf("uniform vs uniform first-order t = %v > %v", r.T, DefaultThreshold)
	}
	if r.Order != 1 {
		t.Errorf("Order = %d, want 1", r.Order)
	}
}

func TestFirstOrderDetectsMeanShift(t *testing.T) {
	src := prng.New(11)
	a := uniformBytes(src, 2000, 8)
	b := uniformBytes(src, 2000, 8)
	for i := range b {
		b[i][3] += 20 // shift one column
	}
	r := FirstOrder(a, b)
	if r.T < DefaultThreshold {
		t.Fatalf("shifted column not detected, t = %v", r.T)
	}
	if r.PosI != 3 || r.PosJ != 3 {
		t.Errorf("leak localized at (%d,%d), want (3,3)", r.PosI, r.PosJ)
	}
}

func TestSecondOrderDetectsCorrelationFirstOrderMisses(t *testing.T) {
	// Construct the Table-I situation synthetically: two columns whose
	// marginals are uniform bytes but which are perfectly dependent
	// (col1 = col0). First order sees nothing; second order must fire
	// on the off-diagonal pair (0,1).
	src := prng.New(12)
	n := 3000
	a := make([][]float64, n) // dependent population
	for i := range a {
		v := float64(src.Byte())
		a[i] = []float64{v, v, float64(src.Byte())}
	}
	b := uniformBytes(src, n, 3) // independent reference

	if r := FirstOrder(a, b); r.T > DefaultThreshold {
		t.Fatalf("first order unexpectedly detected the dependency, t = %v", r.T)
	}
	r := SecondOrder(a, b)
	if r.T < DefaultThreshold {
		t.Fatalf("second order missed the dependency, t = %v", r.T)
	}
	if !(r.PosI == 0 && r.PosJ == 1) {
		t.Errorf("leak localized at (%d,%d), want (0,1)", r.PosI, r.PosJ)
	}
	if r.Order != 2 {
		t.Errorf("Order = %d, want 2", r.Order)
	}
}

func TestSecondOrderDiagonalDetectsVarianceChange(t *testing.T) {
	src := prng.New(13)
	n := 3000
	a := make([][]float64, n)
	for i := range a {
		// Column 0 takes only the two extreme values: same mean as
		// uniform (127.5) but much larger variance.
		v := 0.0
		if src.Intn(2) == 1 {
			v = 255
		}
		a[i] = []float64{v, float64(src.Byte())}
	}
	b := uniformBytes(src, n, 2)
	if r := FirstOrder(a, b); r.T > DefaultThreshold {
		t.Fatalf("first order detected a pure variance change, t = %v", r.T)
	}
	r := SecondOrder(a, b)
	if r.T < DefaultThreshold {
		t.Fatalf("second order missed the variance change, t = %v", r.T)
	}
	if r.PosI != 0 || r.PosJ != 0 {
		t.Errorf("leak localized at (%d,%d), want (0,0)", r.PosI, r.PosJ)
	}
}

func TestSecondOrderNoLeakOnUniform(t *testing.T) {
	src := prng.New(14)
	a := uniformBytes(src, 2500, 8)
	b := uniformBytes(src, 2500, 8)
	// 36 pairs tested; keep a small margin above the threshold for the
	// multiple-comparison inflation.
	if r := SecondOrder(a, b); r.T > DefaultThreshold+1 {
		t.Errorf("uniform vs uniform second-order t = %v", r.T)
	}
}

func TestHigherOrderDetectsSkew(t *testing.T) {
	src := prng.New(15)
	n := 4000
	a := make([][]float64, n)
	for i := range a {
		// Skewed distribution with mean/variance close to uniform bytes:
		// mixture of a low cluster and a high tail.
		v := float64(src.Byte()) * 0.4
		if src.Intn(4) == 0 {
			v = 255 - float64(src.Byte())*0.1
		}
		a[i] = []float64{v}
	}
	b := uniformBytes(src, n, 1)
	r := HigherOrder(3, a, b)
	if r.Order != 3 {
		t.Errorf("Order = %d, want 3", r.Order)
	}
	if r.T < DefaultThreshold {
		t.Errorf("order-3 test missed skew, t = %v", r.T)
	}
}

func TestHigherOrderPanicsBelow3(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("HigherOrder(2, ...) did not panic")
		}
	}()
	HigherOrder(2, [][]float64{{1}}, [][]float64{{1}})
}

func TestMaxUpToOrderPicksStrongest(t *testing.T) {
	src := prng.New(16)
	n := 3000
	a := make([][]float64, n)
	for i := range a {
		v := float64(src.Byte())
		a[i] = []float64{v, v}
	}
	b := uniformBytes(src, n, 2)
	r1 := MaxUpToOrder(1, a, b)
	r2 := MaxUpToOrder(2, a, b)
	if r1.T > DefaultThreshold {
		t.Errorf("G=1 sweep should not detect, got t = %v", r1.T)
	}
	if r2.T < DefaultThreshold || r2.Order != 2 {
		t.Errorf("G=2 sweep should detect at order 2, got t = %v order %d", r2.T, r2.Order)
	}
}

func TestMaxUpToOrderPanicsOnBadG(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MaxUpToOrder(0, ...) did not panic")
		}
	}()
	MaxUpToOrder(0, [][]float64{{1}}, [][]float64{{1}})
}

func TestMatrixColsMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("column mismatch did not panic")
		}
	}()
	FirstOrder([][]float64{{1, 2}}, [][]float64{{1}})
}

func BenchmarkSecondOrder16Cols(b *testing.B) {
	src := prng.New(20)
	x := uniformBytes(src, 1024, 16)
	y := uniformBytes(src, 1024, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SecondOrder(x, y)
	}
}
