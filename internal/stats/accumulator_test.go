package stats

import (
	"math"
	"testing"

	"repro/internal/prng"
)

// randomMatrix builds rows x cols of small-integer group values like the
// fault campaigns produce (byte grouping: 0..255).
func randomMatrix(rng *prng.Source, rows, cols, maxVal int) [][]float64 {
	m := make([][]float64, rows)
	for i := range m {
		row := make([]float64, cols)
		for j := range row {
			row[j] = float64(rng.Intn(maxVal + 1))
		}
		m[i] = row
	}
	return m
}

func fill(t *testing.T, groups, maxOrder int, m [][]float64) *Accumulator {
	t.Helper()
	a := NewAccumulator(groups, maxOrder)
	for _, row := range m {
		a.Add(row)
	}
	return a
}

func closeEnough(t *testing.T, name string, got, want float64) {
	t.Helper()
	diff := math.Abs(got - want)
	scale := math.Max(1, math.Abs(want))
	if diff/scale > 1e-9 {
		t.Errorf("%s: streaming %v vs matrix %v (relative diff %g)", name, got, want, diff/scale)
	}
}

// TestAccumulatorMatchesMatrix is the exact-match contract with the
// matrix-based tests: every order's streaming statistic must agree with
// FirstOrder/SecondOrder/HigherOrder on the same data to within 1e-9.
func TestAccumulatorMatchesMatrix(t *testing.T) {
	cases := []struct {
		name         string
		rowsA, rowsB int
		cols, maxVal int
		maxOrder     int
	}{
		{"bytes-order2", 300, 257, 16, 255, 2},
		{"nibbles-order3", 200, 200, 16, 15, 3},
		{"bits-order4", 128, 96, 64, 1, 4},
		{"bytes-unbalanced", 512, 64, 8, 255, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := prng.New(0x5eed + uint64(tc.maxOrder))
			ma := randomMatrix(rng, tc.rowsA, tc.cols, tc.maxVal)
			mb := randomMatrix(rng, tc.rowsB, tc.cols, tc.maxVal)
			a := fill(t, tc.cols, tc.maxOrder, ma)
			b := fill(t, tc.cols, tc.maxOrder, mb)

			for order := 1; order <= tc.maxOrder; order++ {
				var want TTestResult
				switch order {
				case 1:
					want = FirstOrder(ma, mb)
				case 2:
					want = SecondOrder(ma, mb)
				default:
					want = HigherOrder(order, ma, mb)
				}
				got := a.T(order, b)
				closeEnough(t, tc.name, got.T, want.T)
				if got.Order != want.Order || got.PosI != want.PosI || got.PosJ != want.PosJ {
					t.Errorf("order %d: position (%d,%d,%d) vs matrix (%d,%d,%d)",
						order, got.Order, got.PosI, got.PosJ, want.Order, want.PosI, want.PosJ)
				}
			}

			gotMax := a.MaxT(tc.maxOrder, b)
			wantMax := MaxUpToOrder(tc.maxOrder, ma, mb)
			closeEnough(t, tc.name+"/max", gotMax.T, wantMax.T)
			if gotMax.Order != wantMax.Order {
				t.Errorf("MaxT picked order %d, MaxUpToOrder picked %d", gotMax.Order, wantMax.Order)
			}
		})
	}
}

// TestAccumulatorMergeBitIdentical checks that sharded accumulation merged
// in shard order reproduces the serial accumulation bit for bit, which is
// what the parallel campaign relies on.
func TestAccumulatorMergeBitIdentical(t *testing.T) {
	rng := prng.New(42)
	const rows, cols, maxOrder = 300, 16, 3
	m := randomMatrix(rng, rows, cols, 15)

	serial := fill(t, cols, maxOrder, m)

	merged := NewAccumulator(cols, maxOrder)
	for start := 0; start < rows; start += 77 { // ragged shards
		end := start + 77
		if end > rows {
			end = rows
		}
		shard := NewAccumulator(cols, maxOrder)
		for _, row := range m[start:end] {
			shard.Add(row)
		}
		merged.Merge(shard)
	}

	if merged.N() != serial.N() {
		t.Fatalf("merged N %d != serial N %d", merged.N(), serial.N())
	}
	for i := range serial.pow {
		if math.Float64bits(merged.pow[i]) != math.Float64bits(serial.pow[i]) {
			t.Fatalf("pow[%d]: merged %v != serial %v", i, merged.pow[i], serial.pow[i])
		}
	}
	for i := range serial.cross {
		if math.Float64bits(merged.cross[i]) != math.Float64bits(serial.cross[i]) {
			t.Fatalf("cross[%d]: merged %v != serial %v", i, merged.cross[i], serial.cross[i])
		}
	}
}

// TestAccumulatorDegenerate mirrors Welch's degenerate-case handling:
// constant equal populations give t = 0, constant distinct populations hit
// the cap.
func TestAccumulatorDegenerate(t *testing.T) {
	constant := func(v float64, rows int) *Accumulator {
		a := NewAccumulator(1, 2)
		for i := 0; i < rows; i++ {
			a.Add([]float64{v})
		}
		return a
	}
	same := constant(3, 50).T(1, constant(3, 50))
	if same.T != 0 {
		t.Errorf("identical constant populations: t = %v, want 0", same.T)
	}
	diff := constant(3, 50).T(1, constant(5, 50))
	if diff.T != tCap {
		t.Errorf("distinct constant populations: t = %v, want cap %v", diff.T, tCap)
	}
	tiny := constant(3, 1).T(1, constant(5, 50))
	if tiny.T != 0 {
		t.Errorf("n < 2 population: t = %v, want 0", tiny.T)
	}
}
