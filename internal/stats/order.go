package stats

import "fmt"

// TTestResult describes the outcome of a (possibly higher-order) t-test
// sweep over grouped differential data.
type TTestResult struct {
	// T is the largest absolute Welch t statistic observed over all
	// positions (order 1), position pairs (order 2), or positions again
	// (order >= 3, univariate centered powers).
	T float64
	// Order is the preprocessing order that produced T.
	Order int
	// PosI and PosJ identify the group position(s) responsible for T.
	// For univariate statistics PosJ == PosI.
	PosI, PosJ int
}

// columnMeans returns the per-column means of a trace matrix
// (rows = traces, columns = group positions).
func columnMeans(m [][]float64) []float64 {
	if len(m) == 0 {
		return nil
	}
	cols := len(m[0])
	means := make([]float64, cols)
	for _, row := range m {
		for j, v := range row {
			means[j] += v
		}
	}
	inv := 1 / float64(len(m))
	for j := range means {
		means[j] *= inv
	}
	return means
}

// FirstOrder runs a first-order Welch t-test per column between the two
// trace matrices and returns the maximum statistic. Both matrices must
// have the same column count; row counts may differ.
func FirstOrder(a, b [][]float64) TTestResult {
	cols := matrixCols(a, b)
	best := TTestResult{Order: 1}
	for j := 0; j < cols; j++ {
		var ma, mb Moments
		for _, row := range a {
			ma.Add(row[j])
		}
		for _, row := range b {
			mb.Add(row[j])
		}
		if t := Welch(&ma, &mb); t > best.T {
			best.T, best.PosI, best.PosJ = t, j, j
		}
	}
	return best
}

// SecondOrder runs a second-order t-test: each trace is preprocessed into
// centered products (x_i - mean_i)(x_j - mean_j) for every column pair
// i <= j, each population centered with its own column means (standard
// higher-order TVLA/ALAFA preprocessing). The diagonal i == j captures
// variance leakage; off-diagonal pairs capture the cross-byte linear
// patterns of Fig. 1 that first-order tests miss (Table I).
func SecondOrder(a, b [][]float64) TTestResult {
	cols := matrixCols(a, b)
	meansA := columnMeans(a)
	meansB := columnMeans(b)
	best := TTestResult{Order: 2}
	for i := 0; i < cols; i++ {
		for j := i; j < cols; j++ {
			var ma, mb Moments
			for _, row := range a {
				ma.Add((row[i] - meansA[i]) * (row[j] - meansA[j]))
			}
			for _, row := range b {
				mb.Add((row[i] - meansB[i]) * (row[j] - meansB[j]))
			}
			if t := Welch(&ma, &mb); t > best.T {
				best.T, best.PosI, best.PosJ = t, i, j
			}
		}
	}
	return best
}

// HigherOrder runs a univariate order-d t-test for d >= 3: each trace
// value is preprocessed into its centered d-th power. Cross-position
// combinations are limited to order 2 (SecondOrder); beyond that the
// combinatorics explode without adding discovery power for the ciphers
// studied (the paper uses G = 2 for the same reason).
func HigherOrder(d int, a, b [][]float64) TTestResult {
	if d < 3 {
		panic(fmt.Sprintf("stats: HigherOrder requires d >= 3, got %d", d))
	}
	cols := matrixCols(a, b)
	meansA := columnMeans(a)
	meansB := columnMeans(b)
	best := TTestResult{Order: d}
	for j := 0; j < cols; j++ {
		var ma, mb Moments
		for _, row := range a {
			ma.Add(intPow(row[j]-meansA[j], d))
		}
		for _, row := range b {
			mb.Add(intPow(row[j]-meansB[j], d))
		}
		if t := Welch(&ma, &mb); t > best.T {
			best.T, best.PosI, best.PosJ = t, j, j
		}
	}
	return best
}

// MaxUpToOrder sweeps orders 1..g and returns the best (largest-T) result.
// This is the paper's strategy: start with a first-order byte/nibble-wise
// test and escalate until order G.
func MaxUpToOrder(g int, a, b [][]float64) TTestResult {
	if g < 1 {
		panic(fmt.Sprintf("stats: MaxUpToOrder requires g >= 1, got %d", g))
	}
	best := FirstOrder(a, b)
	if g >= 2 {
		if r := SecondOrder(a, b); r.T > best.T {
			best = r
		}
	}
	for d := 3; d <= g; d++ {
		if r := HigherOrder(d, a, b); r.T > best.T {
			best = r
		}
	}
	return best
}

func intPow(x float64, d int) float64 {
	p := x
	for i := 1; i < d; i++ {
		p *= x
	}
	return p
}

func matrixCols(a, b [][]float64) int {
	if len(a) == 0 || len(b) == 0 {
		panic("stats: empty trace matrix")
	}
	cols := len(a[0])
	if len(b[0]) != cols {
		panic(fmt.Sprintf("stats: column mismatch %d vs %d", cols, len(b[0])))
	}
	return cols
}
