// Package stats implements the statistical machinery behind ExploreFault's
// exploitability oracle: Welch's t-test between a fault-induced state
// differential population and a uniform random reference population, plus
// the higher-order (moment-based) preprocessing used to expose multivariate
// leakage (ALAFA-style, as in Table I of the paper).
package stats

import "math"

// Moments accumulates streaming first and second moments of a sample.
// The zero value is an empty accumulator. Welford's algorithm keeps the
// variance numerically stable for the large sample counts used during
// training.
type Moments struct {
	n    int
	mean float64
	m2   float64 // sum of squared deviations from the running mean
}

// Add incorporates one observation.
func (m *Moments) Add(x float64) {
	m.n++
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// N returns the number of observations.
func (m *Moments) N() int { return m.n }

// Mean returns the sample mean (0 for an empty sample).
func (m *Moments) Mean() float64 { return m.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (m *Moments) Variance() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// Merge combines another accumulator into m (parallel Welford merge).
func (m *Moments) Merge(o *Moments) {
	if o.n == 0 {
		return
	}
	if m.n == 0 {
		*m = *o
		return
	}
	n := m.n + o.n
	d := o.mean - m.mean
	m.m2 += o.m2 + d*d*float64(m.n)*float64(o.n)/float64(n)
	m.mean += d * float64(o.n) / float64(n)
	m.n = n
}

// tCap bounds the reported statistic. A fault that makes some differential
// group constant produces a zero-variance population whose t statistic is
// formally infinite; capping keeps rewards and logs finite while staying
// far above any plausible threshold.
const tCap = 1e6

// Welch returns the absolute value of Welch's two-sample t statistic
// between the two accumulated samples. Degenerate cases (tiny samples,
// both variances zero) are resolved conservatively: equal means give 0,
// distinct means with no variance give the cap.
func Welch(a, b *Moments) float64 {
	return WelchFromMoments(a.n, a.mean, a.Variance(), b.n, b.mean, b.Variance())
}

// WelchFromMoments computes the same capped |t| statistic as Welch from
// summary moments (sample size, mean, unbiased variance) instead of
// Moments values. The streaming Accumulator derives its per-order
// populations this way without materializing them.
func WelchFromMoments(na int, meanA, varA float64, nb int, meanB, varB float64) float64 {
	if na < 2 || nb < 2 {
		return 0
	}
	num := meanA - meanB
	den := varA/float64(na) + varB/float64(nb)
	if den <= 0 {
		if num == 0 {
			return 0
		}
		return tCap
	}
	t := math.Abs(num) / math.Sqrt(den)
	if t > tCap {
		return tCap
	}
	return t
}

// WelchDF returns the Welch–Satterthwaite degrees of freedom for the two
// samples, used when converting the statistic to a confidence statement.
func WelchDF(a, b *Moments) float64 {
	if a.n < 2 || b.n < 2 {
		return 1
	}
	va := a.Variance() / float64(a.n)
	vb := b.Variance() / float64(b.n)
	den := va*va/float64(a.n-1) + vb*vb/float64(b.n-1)
	if den <= 0 {
		return float64(a.n + b.n - 2)
	}
	return (va + vb) * (va + vb) / den
}

// DefaultThreshold is the leakage-classification threshold θ from the
// paper: |t| > 4.5 rejects the same-population null hypothesis with
// confidence > 99.999% for the sample sizes in use.
const DefaultThreshold = 4.5

// NormalTailBound returns an upper bound on P(|Z| > t) for standard normal
// Z, using the standard Mills-ratio bound. For the large degrees of
// freedom in our experiments the t distribution is effectively normal,
// so this quantifies the confidence behind DefaultThreshold.
func NormalTailBound(t float64) float64 {
	if t <= 0 {
		return 1
	}
	return 2 * math.Exp(-t*t/2) / (t * math.Sqrt(2*math.Pi))
}
