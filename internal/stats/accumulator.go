package stats

import "fmt"

// Accumulator folds grouped differential rows into running raw power
// sums from which Welch t statistics of every order 1..MaxOrder can be
// derived, without materializing a Samples x Groups trace matrix.
//
// Per column j it keeps Σ x_j^k for k = 1..max(2, 2*MaxOrder); for
// MaxOrder >= 2 it additionally keeps, per column pair i < j, the joint
// sums Σ x_i x_j, Σ x_i² x_j, Σ x_i x_j² and Σ x_i² x_j². The centered
// populations of the matrix-based tests (FirstOrder, SecondOrder,
// HigherOrder) are recovered from these sums algebraically, so streaming
// results agree with the matrix results to floating-point accuracy.
//
// Because group values are small integers, all sums needed for orders
// 1 and 2 are exactly representable in float64, which makes Merge an
// exact operation there; campaigns sharded across workers therefore
// reproduce the single-threaded statistics as long as shard boundaries
// and the merge order are fixed (see internal/evaluate.RunSharded).
type Accumulator struct {
	groups   int
	maxOrder int
	powers   int // power sums kept per column: Σ x^k, k = 1..powers
	n        int
	pow      []float64 // pow[j*powers+k-1] = Σ x_j^k
	cross    []float64 // 4 sums per pair i<j (see pairBase); nil for order 1
}

// NewAccumulator returns an empty accumulator for rows of the given
// column count supporting t-test orders 1..maxOrder.
func NewAccumulator(groups, maxOrder int) *Accumulator {
	if groups < 1 {
		panic(fmt.Sprintf("stats: NewAccumulator requires groups >= 1, got %d", groups))
	}
	if maxOrder < 1 {
		panic(fmt.Sprintf("stats: NewAccumulator requires maxOrder >= 1, got %d", maxOrder))
	}
	powers := 2 * maxOrder
	if powers < 2 {
		powers = 2
	}
	a := &Accumulator{
		groups:   groups,
		maxOrder: maxOrder,
		powers:   powers,
		pow:      make([]float64, groups*powers),
	}
	if maxOrder >= 2 {
		a.cross = make([]float64, 4*groups*(groups-1)/2)
	}
	return a
}

// Groups returns the column count.
func (a *Accumulator) Groups() int { return a.groups }

// MaxOrder returns the highest supported t-test order.
func (a *Accumulator) MaxOrder() int { return a.maxOrder }

// N returns the number of accumulated rows.
func (a *Accumulator) N() int { return a.n }

// RawSums returns copies of the raw power sums and (for maxOrder >= 2,
// else nil) the pairwise cross sums. Two accumulators fed the same rows
// in the same order have byte-identical raw sums, which is what the
// batch-versus-scalar equivalence tests assert.
func (a *Accumulator) RawSums() (pow, cross []float64) {
	pow = append([]float64(nil), a.pow...)
	if a.cross != nil {
		cross = append([]float64(nil), a.cross...)
	}
	return pow, cross
}

// Add folds one row of group values into the running sums.
func (a *Accumulator) Add(row []float64) {
	if len(row) != a.groups {
		panic(fmt.Sprintf("stats: row has %d columns, accumulator has %d", len(row), a.groups))
	}
	for j, x := range row {
		base := j * a.powers
		p := x
		for k := 0; k < a.powers; k++ {
			a.pow[base+k] += p
			p *= x
		}
	}
	if a.cross != nil {
		c := 0
		for i := 0; i < a.groups; i++ {
			xi := row[i]
			xi2 := xi * xi
			for j := i + 1; j < a.groups; j++ {
				xj := row[j]
				xij := xi * xj
				a.cross[c] += xij
				a.cross[c+1] += xi2 * xj
				a.cross[c+2] += xij * xj
				a.cross[c+3] += xij * xij
				c += 4
			}
		}
	}
	a.n++
}

// Merge combines another accumulator (same shape) into a. Merging shard
// accumulators in a fixed order reproduces the serial accumulation
// deterministically.
func (a *Accumulator) Merge(o *Accumulator) {
	if a.groups != o.groups || a.maxOrder != o.maxOrder {
		panic(fmt.Sprintf("stats: merging accumulator (%d groups, order %d) into (%d groups, order %d)",
			o.groups, o.maxOrder, a.groups, a.maxOrder))
	}
	a.n += o.n
	for i, v := range o.pow {
		a.pow[i] += v
	}
	for i, v := range o.cross {
		a.cross[i] += v
	}
}

// s returns Σ x_j^k.
func (a *Accumulator) s(j, k int) float64 { return a.pow[j*a.powers+k-1] }

// pairBase returns the offset of pair (i, j), i < j, into cross.
func (a *Accumulator) pairBase(i, j int) int {
	return 4 * (i*(2*a.groups-i-1)/2 + (j - i - 1))
}

// clampVar turns the tiny negative values that cancellation can produce
// into the exact zero the degenerate-case handling of Welch expects.
func clampVar(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

// moments1 returns mean and unbiased variance of column j.
func (a *Accumulator) moments1(j int) (mean, variance float64) {
	n := float64(a.n)
	s1, s2 := a.s(j, 1), a.s(j, 2)
	mean = s1 / n
	if a.n < 2 {
		return mean, 0
	}
	return mean, clampVar((s2 - s1*s1/n) / (n - 1))
}

// moments2 returns mean and unbiased variance of the second-order
// population (x_i - μ_i)(x_j - μ_j), i <= j, each column centered by its
// own full-population mean exactly as SecondOrder does.
func (a *Accumulator) moments2(i, j int) (mean, variance float64) {
	n := float64(a.n)
	si, sj := a.s(i, 1), a.s(j, 1)
	sii, sjj := a.s(i, 2), a.s(j, 2)
	var sij, siij, sijj, siijj float64
	if i == j {
		sij, siij, sijj, siijj = sii, a.s(i, 3), a.s(i, 3), a.s(i, 4)
	} else {
		c := a.pairBase(i, j)
		sij, siij, sijj, siijj = a.cross[c], a.cross[c+1], a.cross[c+2], a.cross[c+3]
	}
	mi, mj := si/n, sj/n
	sumY := sij - si*sj/n
	sumY2 := siijj - 2*mj*siij - 2*mi*sijj +
		mj*mj*sii + mi*mi*sjj + 4*mi*mj*sij -
		2*mi*mj*mj*si - 2*mi*mi*mj*sj + n*mi*mi*mj*mj
	mean = sumY / n
	if a.n < 2 {
		return mean, 0
	}
	return mean, clampVar((sumY2 - sumY*sumY/n) / (n - 1))
}

// centeredSum returns Σ (x_j - μ_j)^m via binomial expansion over the
// raw power sums (m <= powers).
func (a *Accumulator) centeredSum(j, m int) float64 {
	n := float64(a.n)
	mu := a.s(j, 1) / n
	total := 0.0
	c := 1.0 // C(m, k)
	for k := 0; k <= m; k++ {
		sk := n // S_0
		if k > 0 {
			sk = a.s(j, k)
		}
		total += c * sk * signedPow(-mu, m-k)
		c = c * float64(m-k) / float64(k+1)
	}
	return total
}

func signedPow(x float64, d int) float64 {
	p := 1.0
	for i := 0; i < d; i++ {
		p *= x
	}
	return p
}

// momentsPow returns mean and unbiased variance of the univariate
// order-d population (x_j - μ_j)^d used by HigherOrder (d >= 3).
func (a *Accumulator) momentsPow(j, d int) (mean, variance float64) {
	n := float64(a.n)
	sumY := a.centeredSum(j, d)
	sumY2 := a.centeredSum(j, 2*d)
	mean = sumY / n
	if a.n < 2 {
		return mean, 0
	}
	return mean, clampVar((sumY2 - sumY*sumY/n) / (n - 1))
}

func (a *Accumulator) compat(ref *Accumulator, order int) {
	if ref.groups != a.groups {
		panic(fmt.Sprintf("stats: column mismatch %d vs %d", a.groups, ref.groups))
	}
	if order > a.maxOrder || order > ref.maxOrder {
		panic(fmt.Sprintf("stats: order %d exceeds accumulator capacity (%d, %d)",
			order, a.maxOrder, ref.maxOrder))
	}
}

// T runs the order-d Welch t-test sweep between a and the reference
// accumulator and returns the maximum statistic, matching FirstOrder,
// SecondOrder or HigherOrder on the equivalent trace matrices.
func (a *Accumulator) T(order int, ref *Accumulator) TTestResult {
	if order < 1 {
		panic(fmt.Sprintf("stats: T requires order >= 1, got %d", order))
	}
	a.compat(ref, order)
	best := TTestResult{Order: order}
	switch {
	case order == 1:
		for j := 0; j < a.groups; j++ {
			ma, va := a.moments1(j)
			mb, vb := ref.moments1(j)
			if t := WelchFromMoments(a.n, ma, va, ref.n, mb, vb); t > best.T {
				best.T, best.PosI, best.PosJ = t, j, j
			}
		}
	case order == 2:
		for i := 0; i < a.groups; i++ {
			for j := i; j < a.groups; j++ {
				ma, va := a.moments2(i, j)
				mb, vb := ref.moments2(i, j)
				if t := WelchFromMoments(a.n, ma, va, ref.n, mb, vb); t > best.T {
					best.T, best.PosI, best.PosJ = t, i, j
				}
			}
		}
	default:
		for j := 0; j < a.groups; j++ {
			ma, va := a.momentsPow(j, order)
			mb, vb := ref.momentsPow(j, order)
			if t := WelchFromMoments(a.n, ma, va, ref.n, mb, vb); t > best.T {
				best.T, best.PosI, best.PosJ = t, j, j
			}
		}
	}
	return best
}

// MaxT sweeps orders 1..g and returns the best (largest-T) result, the
// streaming counterpart of MaxUpToOrder.
func (a *Accumulator) MaxT(g int, ref *Accumulator) TTestResult {
	if g < 1 {
		panic(fmt.Sprintf("stats: MaxT requires g >= 1, got %d", g))
	}
	best := a.T(1, ref)
	for d := 2; d <= g; d++ {
		if r := a.T(d, ref); r.T > best.T {
			best = r
		}
	}
	return best
}
