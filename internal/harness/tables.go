package harness

import (
	"fmt"
	"time"

	explorefault "repro"
	"repro/internal/report"
)

// TableIResult summarizes the higher-order t-test contrast.
type TableIResult struct {
	ByteFirst, ByteSecond         float64
	DiagonalFirst, DiagonalSecond float64
}

// TableI reproduces Table I: first- vs second-order t-tests for AES byte
// and diagonal faults injected at round 8 (the paper's faulty bits
// {0..7} for the byte model and {29,34,35,38,77,118} for a diagonal
// representative; we additionally verify the full diagonal).
func TableI(opt Options) (*TableIResult, error) {
	samples := opt.pick(2048, 8192)
	run := func(p explorefault.Pattern, order int) (float64, error) {
		a, err := explorefault.Assess(p, explorefault.AssessConfig{
			Cipher: "aes128", Round: 8, Samples: samples,
			FixedOrder: order, Seed: opt.Seed,
		})
		return a.T, err
	}
	bytePattern := explorefault.PatternFromGroups(128, 8, 0)
	// The paper's diagonal row lists bits {29,34,35,38,77,118}: bits
	// inside bytes {3,4,9,14}, i.e. diagonal D3.
	diagPattern := explorefault.PatternFromBits(128, 29, 34, 35, 38, 77, 118)

	var res TableIResult
	var err error
	if res.ByteFirst, err = run(bytePattern, 1); err != nil {
		return nil, err
	}
	if res.ByteSecond, err = run(bytePattern, 2); err != nil {
		return nil, err
	}
	if res.DiagonalFirst, err = run(diagPattern, 1); err != nil {
		return nil, err
	}
	if res.DiagonalSecond, err = run(diagPattern, 2); err != nil {
		return nil, err
	}

	tb := report.NewTable(
		fmt.Sprintf("Table I: first- vs second-order t-tests, AES round-8 faults (N=%d, θ=4.5)", samples),
		"Fault Model", "Faulty Bits", "First-order", "Second-order")
	tb.AddRow("Byte", "0..7", verdict(res.ByteFirst), fmt.Sprintf("%.2f", res.ByteSecond))
	tb.AddRow("Diagonal", "29,34,35,38,77,118", verdict(res.DiagonalFirst), fmt.Sprintf("%.2f", res.DiagonalSecond))
	tb.Render(opt.out())
	return &res, nil
}

func verdict(t float64) string {
	if t < 4.5 {
		return fmt.Sprintf("%.2f (< 4.5)", t)
	}
	return fmt.Sprintf("%.2f", t)
}

// TableIIResult summarizes the training-rate ablation.
type TableIIResult struct {
	EachStepEpisodesPerMin, EachStepStepsPerMin float64
	EndEpisodesPerMin, EndStepsPerMin           float64
	Improvement                                 float64
}

// TableII reproduces Table II: training rate with the reward computed at
// each step versus once at the end of the episode. The paper reports a
// 115x improvement; the exact factor on this machine depends on the
// episode length T (the per-step variant runs T leakage evaluations per
// episode instead of one).
func TableII(opt Options) (*TableIIResult, error) {
	// The contrast only shows when the leakage evaluation dominates the
	// episode cost (the paper's evaluations took ~1 s each); small
	// sample counts would hide the per-step evaluation tax behind the
	// PPO update.
	samples := opt.pick(2048, 4096)
	endEpisodes := opt.pick(48, 96)
	stepEpisodes := opt.pick(4, 8)

	run := func(eachStep bool, episodes int) (*explorefault.DiscoveryResult, error) {
		return explorefault.Discover(explorefault.DiscoverConfig{
			Cipher:           "aes128",
			Round:            8,
			Episodes:         episodes,
			NumEnvs:          4,
			Samples:          samples,
			Seed:             opt.Seed,
			RewardAtEachStep: eachStep,
			SkipHarvest:      true,
		})
	}
	end, err := run(false, endEpisodes)
	if err != nil {
		return nil, err
	}
	step, err := run(true, stepEpisodes)
	if err != nil {
		return nil, err
	}
	res := &TableIIResult{
		EachStepEpisodesPerMin: step.EpisodesPerMin,
		EachStepStepsPerMin:    step.StepsPerMin,
		EndEpisodesPerMin:      end.EpisodesPerMin,
		EndStepsPerMin:         end.StepsPerMin,
	}
	if step.EpisodesPerMin > 0 {
		res.Improvement = end.EpisodesPerMin / step.EpisodesPerMin
	}
	tb := report.NewTable("Table II: training-rate comparison for AES (reward timing)",
		"Method", "Episodes/Min", "Steps/Min")
	tb.AddRow("Reward at each step", res.EachStepEpisodesPerMin, res.EachStepStepsPerMin)
	tb.AddRow("Reward at end of episode", res.EndEpisodesPerMin, res.EndStepsPerMin)
	tb.AddRow("Improvement", fmt.Sprintf("%.1fx", res.Improvement),
		fmt.Sprintf("%.1fx", res.EndStepsPerMin/maxf(res.EachStepStepsPerMin, 1e-9)))
	tb.Render(opt.out())
	return res, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// TableIIIResult records which fault-model classes the discovery sessions
// found per cipher.
type TableIIIResult struct {
	AES, GIFT map[string]bool
}

// TableIII reproduces Table III: ExploreFault discovers the bit, nibble,
// byte and diagonal fault models that six prior manual works found one or
// two at a time. AES runs at round 8 (with round-9 byte/bit models
// implied by the same oracle; see EXPERIMENTS.md), GIFT-64 at round 25.
func TableIII(opt Options) (*TableIIIResult, error) {
	aesRes, err := explorefault.Discover(explorefault.DiscoverConfig{
		Cipher:   "aes128",
		Round:    8,
		Episodes: opt.pick(500, 2000),
		Samples:  opt.pick(256, 512),
		Seed:     opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	giftRes, err := explorefault.Discover(explorefault.DiscoverConfig{
		Cipher:   "gift64",
		Round:    25,
		Episodes: opt.pick(300, 1200),
		Samples:  opt.pick(256, 512),
		Seed:     opt.Seed + 1,
	})
	if err != nil {
		return nil, err
	}
	res := &TableIIIResult{
		AES:  classesFound(aesRes.Models),
		GIFT: classesFound(giftRes.Models),
	}

	tb := report.NewTable("Table III: fault models identified by ExploreFault (automated)",
		"Block Cipher", "Bit", "Nibble", "Byte", "Diagonal", "Time")
	tb.AddRow("AES (round 8)",
		checkmark(res.AES["bit"]), "n/a",
		checkmark(res.AES["byte"]), checkmark(res.AES["diagonal"]),
		aesRes.Duration.Round(time.Second).String())
	tb.AddRow("GIFT-64 (round 25)",
		checkmark(res.GIFT["bit"]), checkmark(res.GIFT["nibble"]),
		"n/a", "n/a",
		giftRes.Duration.Round(time.Second).String())
	tb.Render(opt.out())

	w := opt.out()
	fprintf(w, "AES models (%d):\n", len(aesRes.Models))
	for i, m := range aesRes.Models {
		if i >= 12 {
			fprintf(w, "  ... and %d more\n", len(aesRes.Models)-12)
			break
		}
		fprintf(w, "  %-44s t = %8.1f\n", m.String(), m.T)
	}
	fprintf(w, "GIFT models (%d):\n", len(giftRes.Models))
	for i, m := range giftRes.Models {
		if i >= 12 {
			fprintf(w, "  ... and %d more\n", len(giftRes.Models)-12)
			break
		}
		fprintf(w, "  %-44s t = %8.1f\n", m.String(), m.T)
	}
	return res, nil
}

// TableIVResult summarizes the protected-AES experiment.
type TableIVResult struct {
	Branch1, Branch2 []int
	MatchingBits     int
	EpisodeLength    int
	Episodes         int
	Runtime          time.Duration
	ConvergedLeaky   bool
}

// TableIV reproduces Table IV: against duplication-protected AES the
// agent selects the same bit in both computational branches (episode
// length 256).
func TableIV(opt Options) (*TableIVResult, error) {
	res, err := explorefault.Discover(explorefault.DiscoverConfig{
		Cipher:    "aes128",
		Round:     9,
		Protected: true,
		Episodes:  opt.pick(400, 1500),
		Samples:   opt.pick(192, 384),
		Seed:      opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	out := &TableIVResult{
		EpisodeLength:  256,
		Episodes:       res.Episodes,
		Runtime:        res.Duration,
		ConvergedLeaky: res.ConvergedLeaky,
	}
	for _, b := range res.Converged.Bits() {
		if b < 128 {
			out.Branch1 = append(out.Branch1, b)
		} else {
			out.Branch2 = append(out.Branch2, b-128)
		}
	}
	for _, x := range out.Branch1 {
		for _, y := range out.Branch2 {
			if x == y {
				out.MatchingBits++
			}
		}
	}
	tb := report.NewTable("Table IV: results on protected AES (duplication countermeasure)",
		"Branch #1 bits", "Branch #2 bits", "Matching", "Episode Length", "# Episodes", "Runtime")
	tb.AddRow(fmt.Sprintf("%v", out.Branch1), fmt.Sprintf("%v", out.Branch2),
		out.MatchingBits, out.EpisodeLength, out.Episodes,
		out.Runtime.Round(time.Second).String())
	tb.Render(opt.out())
	return out, nil
}

// TableVResult lists the discovered GIFT nibble models of the first
// training window.
type TableVResult struct {
	Rows []TableVRow
}

// TableVRow is one (nibble-count, examples, frequency) row.
type TableVRow struct {
	Nibbles  int
	Examples []string
	Count    int
}

// TableV reproduces Table V: fault models discovered during the first 1K
// GIFT-64 training episodes, grouped by nibble count with occurrence
// frequencies.
func TableV(opt Options) (*TableVResult, error) {
	res, err := explorefault.Discover(explorefault.DiscoverConfig{
		Cipher:      "gift64",
		Round:       25,
		Episodes:    opt.pick(400, 1000),
		Samples:     opt.pick(256, 512),
		Seed:        opt.Seed,
		SkipHarvest: true,
	})
	if err != nil {
		return nil, err
	}
	// Group the first-window leaky patterns by how many nibbles they
	// touch (the paper's presentation).
	byNibbles := map[int]*TableVRow{}
	for _, pf := range res.FirstWindowPatterns {
		n := len(pf.Pattern.Groups(4))
		row, ok := byNibbles[n]
		if !ok {
			row = &TableVRow{Nibbles: n}
			byNibbles[n] = row
		}
		row.Count += pf.Count
		if len(row.Examples) < 3 {
			row.Examples = append(row.Examples, fmt.Sprintf("%v", pf.Pattern.Groups(4)))
		}
	}
	out := &TableVResult{}
	tb := report.NewTable("Table V: GIFT-64 fault models discovered in the first 1K episodes",
		"Fault Model", "Nibble Locations (examples)", "# Times")
	for n := 1; n <= 16; n++ {
		if row, ok := byNibbles[n]; ok {
			out.Rows = append(out.Rows, *row)
			tb.AddRow(fmt.Sprintf("%d nibble(s)", n),
				fmt.Sprintf("%v", row.Examples), row.Count)
		}
	}
	tb.Render(opt.out())
	return out, nil
}
