package harness

import (
	"context"
	"fmt"

	explorefault "repro"
	"repro/internal/bitvec"
	"repro/internal/ciphers"
	"repro/internal/explore"
	"repro/internal/leakage"
	"repro/internal/prng"
	"repro/internal/report"
	"repro/internal/rl"
	"repro/internal/rl/ppo"
	"repro/internal/rl/reinforce"
)

// AblationGroupingResult contrasts differential grouping granularities
// (DESIGN.md decision 4).
type AblationGroupingResult struct {
	// T[granularity] for the AES byte fault at round 8, max order 2.
	AESByte map[int]float64
	// T[granularity] for the GIFT nibble fault at round 25.
	GIFTNibble map[int]float64
}

// AblationGrouping measures how the grouping granularity (bit / nibble /
// byte) changes the observed leakage statistic. AES's cross-byte linear
// pattern needs byte grouping plus order 2; GIFT's nibble bias is visible
// at nibble granularity already.
func AblationGrouping(opt Options) (*AblationGroupingResult, error) {
	samples := opt.pick(1024, 4096)
	res := &AblationGroupingResult{
		AESByte:    map[int]float64{},
		GIFTNibble: map[int]float64{},
	}
	rng := prng.New(opt.Seed)

	aesKey := make([]byte, 16)
	rng.Fill(aesKey)
	aesCipher, err := ciphers.New("aes128", aesKey)
	if err != nil {
		return nil, err
	}
	aesPattern := explorefault.PatternFromGroups(128, 8, 0)
	for _, gb := range []int{1, 4, 8} {
		a := leakage.NewAssessor(aesCipher, leakage.Config{Samples: samples, GroupBits: gb}, rng.Split())
		r, err := a.Assess(context.Background(), &aesPattern, 8)
		if err != nil {
			return nil, err
		}
		res.AESByte[gb] = r.T
	}

	giftKey := make([]byte, 16)
	rng.Fill(giftKey)
	giftCipher, err := ciphers.New("gift64", giftKey)
	if err != nil {
		return nil, err
	}
	giftPattern := explorefault.PatternFromGroups(64, 4, 5)
	for _, gb := range []int{1, 4} {
		a := leakage.NewAssessor(giftCipher, leakage.Config{Samples: samples, GroupBits: gb}, rng.Split())
		r, err := a.Assess(context.Background(), &giftPattern, 25)
		if err != nil {
			return nil, err
		}
		res.GIFTNibble[gb] = r.T
	}

	tb := report.NewTable("Ablation: differential grouping granularity (max t, order <= 2)",
		"Scenario", "bit groups", "nibble groups", "byte groups")
	tb.AddRow("AES byte fault @ r8",
		fmt.Sprintf("%.1f", res.AESByte[1]),
		fmt.Sprintf("%.1f", res.AESByte[4]),
		fmt.Sprintf("%.1f", res.AESByte[8]))
	tb.AddRow("GIFT nibble fault @ r25",
		fmt.Sprintf("%.1f", res.GIFTNibble[1]),
		fmt.Sprintf("%.1f", res.GIFTNibble[4]),
		"n/a")
	tb.Render(opt.out())
	return res, nil
}

// AblationAgentResult compares PPO against REINFORCE on the same
// fault-pattern MDP (DESIGN.md decision 5).
type AblationAgentResult struct {
	PPOLeakyRate, ReinforceLeakyRate float64
	PPOBestBits, ReinforceBestBits   int
}

// AblationAgent trains both agents on identical GIFT-64 environments for
// the same episode budget and compares the late-training exploitable
// fraction and the best exploitable pattern size.
func AblationAgent(opt Options) (*AblationAgentResult, error) {
	episodes := opt.pick(200, 600)
	samples := opt.pick(128, 256)
	res := &AblationAgentResult{}

	run := func(usePPO bool) (float64, int, error) {
		root := prng.New(opt.Seed)
		const numEnvs = 4
		var envs []rl.Env
		var raw []*explore.Env
		for i := 0; i < numEnvs; i++ {
			key := make([]byte, 16)
			root.Fill(key)
			c, err := ciphers.New("gift64", key)
			if err != nil {
				return 0, 0, err
			}
			assessor := leakage.NewAssessor(c, leakage.Config{
				Samples: samples, StopAtThreshold: true,
			}, root.Split())
			env := explore.NewEnv(&explore.AssessorOracle{Assessor: assessor, Round: 25},
				explore.EnvConfig{})
			envs = append(envs, env)
			raw = append(raw, env)
		}
		var agent rl.Agent
		if usePPO {
			agent = ppo.New(64, 64, ppo.Config{
				LearningRate: 1e-3, Epochs: 4, EntropyCoef: 1e-3,
				BootstrapSpike: 8, ExplorationFloor: 1.0 / 64,
			}, root.Split())
		} else {
			agent = reinforce.New(64, 64, reinforce.Config{
				LearningRate: 1e-3, EntropyCoef: 1e-3,
			}, root.Split())
		}
		runner := rl.NewRunner(envs, agent)
		runner.Gamma = 1.0
		var leakyLate, totalLate float64
		bestBits := 0
		done := 0
		for done < episodes {
			batch, eps, err := runner.CollectEpisodes(1)
			if err != nil {
				return 0, 0, err
			}
			for _, ep := range eps {
				info := raw[ep.EnvIndex].LastEpisode()
				if info.Leaky && info.Distinct > bestBits {
					bestBits = info.Distinct
				}
				if done+len(eps) > episodes/2 { // late half
					totalLate++
					if info.Leaky {
						leakyLate++
					}
				}
			}
			done += len(eps)
			agent.Update(batch)
		}
		if totalLate == 0 {
			return 0, bestBits, nil
		}
		return leakyLate / totalLate, bestBits, nil
	}

	var err error
	if res.PPOLeakyRate, res.PPOBestBits, err = run(true); err != nil {
		return nil, err
	}
	if res.ReinforceLeakyRate, res.ReinforceBestBits, err = run(false); err != nil {
		return nil, err
	}

	tb := report.NewTable("Ablation: PPO vs REINFORCE on GIFT-64 (same envs, same budget)",
		"Agent", "late exploitable fraction", "best exploitable bits")
	tb.AddRow("PPO", fmt.Sprintf("%.2f", res.PPOLeakyRate), res.PPOBestBits)
	tb.AddRow("REINFORCE", fmt.Sprintf("%.2f", res.ReinforceLeakyRate), res.ReinforceBestBits)
	tb.Render(opt.out())
	return res, nil
}

// AblationObservationResult contrasts observation windows (DESIGN.md
// decision 6).
type AblationObservationResult struct {
	// Leaky[lag] for the one-diagonal and two-diagonal AES patterns.
	OneDiagonal, TwoDiagonals map[int]bool
}

// AblationObservation shows why the observation window matters: at lag 1
// (observing the round right after injection) even a two-diagonal fault
// is trivially detectable through its zero bytes, so everything looks
// exploitable; at the paper's lag 2 only genuinely structured faults
// survive, which is what bounds the RL agent at one diagonal.
func AblationObservation(opt Options) (*AblationObservationResult, error) {
	samples := opt.pick(1024, 2048)
	rng := prng.New(opt.Seed)
	key := make([]byte, 16)
	rng.Fill(key)
	c, err := ciphers.New("aes128", key)
	if err != nil {
		return nil, err
	}
	one := explorefault.PatternFromGroups(128, 8, 2, 7, 8, 13)
	two := explorefault.PatternFromGroups(128, 8, 2, 7, 8, 13, 0, 5, 10, 15)

	res := &AblationObservationResult{
		OneDiagonal:  map[int]bool{},
		TwoDiagonals: map[int]bool{},
	}
	assess := func(p *bitvec.Vector, lag int) (bool, error) {
		a := leakage.NewAssessor(c, leakage.Config{Samples: samples, Lag: lag}, rng.Split())
		r, err := a.Assess(context.Background(), p, 8)
		if err != nil {
			return false, err
		}
		return r.Leaky, nil
	}
	for _, lag := range []int{1, 2} {
		if res.OneDiagonal[lag], err = assess(&one, lag); err != nil {
			return nil, err
		}
		if res.TwoDiagonals[lag], err = assess(&two, lag); err != nil {
			return nil, err
		}
	}
	tb := report.NewTable("Ablation: observation window (AES faults at round 8)",
		"Pattern", "lag 1 exploitable", "lag 2 exploitable (paper)")
	tb.AddRow("one diagonal (32 bits)",
		checkmark(res.OneDiagonal[1]), checkmark(res.OneDiagonal[2]))
	tb.AddRow("two diagonals (64 bits)",
		checkmark(res.TwoDiagonals[1]), checkmark(res.TwoDiagonals[2]))
	tb.Render(opt.out())
	return res, nil
}
