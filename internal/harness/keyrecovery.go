package harness

import (
	"fmt"

	explorefault "repro"
	"repro/internal/report"
)

// KeyRecoveryResult aggregates the DFA verification runs.
type KeyRecoveryResult struct {
	AES          *explorefault.KeyRecovery
	GIFTSingle   *explorefault.KeyRecovery
	GIFTNewModel *explorefault.KeyRecovery
}

// KeyRecovery reproduces the §IV-B/§IV-D verification: concrete key
// recovery for the AES byte model (Piret–Quisquater, replicating the
// prior works Table III cites) and for GIFT-64's single-nibble and newly
// discovered multi-nibble models. The paper reports 80/128 GIFT key bits
// at offline 2^33.15 via ExpFault; our attack recovers the 64 bits of
// round keys 27+28 outright (the remaining bits need a second fault at
// round 23, which neither we nor the paper's single-fault analysis
// targets).
func KeyRecovery(opt Options) (*KeyRecoveryResult, error) {
	pairs := opt.pick(512, 1024)
	out := &KeyRecoveryResult{}
	var err error
	out.AES, err = explorefault.VerifyKeyRecovery(explorefault.Pattern{}, explorefault.VerifyConfig{
		Cipher: "aes128", Seed: opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	single := explorefault.PatternFromGroups(64, 4, 5)
	out.GIFTSingle, err = explorefault.VerifyKeyRecovery(single, explorefault.VerifyConfig{
		Cipher: "gift64", Round: 25, Pairs: pairs, Seed: opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	newModel := explorefault.PatternFromGroups(64, 4, 8, 9, 10, 11, 12, 14)
	out.GIFTNewModel, err = explorefault.VerifyKeyRecovery(newModel, explorefault.VerifyConfig{
		Cipher: "gift64", Round: 25, Pairs: pairs, Seed: opt.Seed,
	})
	if err != nil {
		return nil, err
	}

	tb := report.NewTable("Key-recovery verification of discovered fault models (ExpFault role)",
		"Cipher / Model", "Key Bits", "Faults", "Offline", "Verified")
	add := func(name string, kr *explorefault.KeyRecovery) {
		tb.AddRow(name,
			fmt.Sprintf("%d/%d", kr.RecoveredBits, kr.TotalKeyBits),
			kr.FaultsUsed,
			fmt.Sprintf("2^%.1f", kr.OfflineLog2),
			checkmark(kr.Correct))
	}
	add("AES-128 byte@r9 (Piret-Quisquater)", out.AES)
	add("GIFT-64 nibble{5}@r25", out.GIFTSingle)
	add("GIFT-64 new model {8,9,10,11,12,14}@r25", out.GIFTNewModel)
	tb.Render(opt.out())
	return out, nil
}
