package harness

import (
	"strings"
	"testing"

	explorefault "repro"
)

// The heavyweight experiments (Tables II-V, Figures 3-4) are exercised by
// the root-level benchmarks; these tests cover the cheap experiments and
// the harness plumbing.

func testOptions(buf *strings.Builder) Options {
	return Options{Seed: 7, Quick: true, Out: buf}
}

func TestTableIShapeAndOutput(t *testing.T) {
	var buf strings.Builder
	res, err := TableI(testOptions(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if res.ByteFirst >= 4.5 || res.DiagonalFirst >= 4.5 {
		t.Errorf("first-order statistics unexpectedly high: %+v", res)
	}
	if res.ByteSecond <= 4.5 || res.DiagonalSecond <= 4.5 {
		t.Errorf("second-order statistics unexpectedly low: %+v", res)
	}
	out := buf.String()
	for _, want := range []string{"Table I", "Byte", "Diagonal", "< 4.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestFigure5AllModelsClearThreshold(t *testing.T) {
	if testing.Short() {
		t.Skip("several hundred oracle calls")
	}
	var buf strings.Builder
	opt := testOptions(&buf)
	res, err := Figure5(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("expected 5 models, got %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if !row.AllAboveThreshold {
			t.Errorf("model %q fell below the threshold (min %.2f)", row.Model, row.MinT)
		}
		if row.MinT > row.MeanT || row.MeanT > row.MaxT {
			t.Errorf("model %q order statistics inconsistent: %+v", row.Model, row)
		}
	}
}

func TestAblationObservationCrossover(t *testing.T) {
	var buf strings.Builder
	res, err := AblationObservation(testOptions(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if !res.OneDiagonal[1] || !res.OneDiagonal[2] {
		t.Errorf("one diagonal should be exploitable at both lags: %+v", res.OneDiagonal)
	}
	if !res.TwoDiagonals[1] || res.TwoDiagonals[2] {
		t.Errorf("two diagonals must flip from exploitable (lag 1) to not (lag 2): %+v",
			res.TwoDiagonals)
	}
}

func TestAblationGroupingNativeWidthsDetect(t *testing.T) {
	var buf strings.Builder
	res, err := AblationGrouping(testOptions(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if res.AESByte[8] < 4.5 {
		t.Errorf("byte grouping missed the AES byte fault: %v", res.AESByte)
	}
	if res.GIFTNibble[4] < 4.5 {
		t.Errorf("nibble grouping missed the GIFT nibble fault: %v", res.GIFTNibble)
	}
}

func TestKeyRecoveryTable(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three DFA attacks")
	}
	var buf strings.Builder
	res, err := KeyRecovery(testOptions(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if !res.AES.Correct || res.AES.RecoveredBits != 128 {
		t.Errorf("AES PQ: %+v", res.AES)
	}
	if !res.GIFTSingle.Correct || res.GIFTSingle.RecoveredBits < 32 {
		t.Errorf("GIFT single-nibble: %+v", res.GIFTSingle)
	}
	if !res.GIFTNewModel.Correct || res.GIFTNewModel.RecoveredBits < 32 {
		t.Errorf("GIFT new model: %+v", res.GIFTNewModel)
	}
	if !strings.Contains(buf.String(), "Piret-Quisquater") {
		t.Error("key-recovery table not rendered")
	}
}

func TestOptionsPlumbing(t *testing.T) {
	opt := Options{Quick: true}
	if opt.pick(1, 2) != 1 {
		t.Error("Quick pick wrong")
	}
	opt.Quick = false
	if opt.pick(1, 2) != 2 {
		t.Error("full pick wrong")
	}
	if opt.out() == nil {
		t.Error("nil Out must map to a discarding writer, not nil")
	}
}

func TestClassesFound(t *testing.T) {
	models := []explorefault.Model{
		{Class: explorefault.BitModel},
		{Class: explorefault.DiagonalModel},
		{Class: explorefault.NibbleModel},
	}
	found := classesFound(models)
	if !found["bit"] || !found["diagonal"] || !found["nibble"] {
		t.Errorf("classesFound = %v", found)
	}
	if found["byte"] || found["multi-nibble"] {
		t.Errorf("classesFound over-reports: %v", found)
	}
}
