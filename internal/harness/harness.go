// Package harness regenerates every table and figure of the paper's
// evaluation section. It is the engine behind both the root-level
// benchmarks (bench_test.go) and cmd/tables; each experiment prints the
// same rows/series the paper reports and returns a structured summary so
// benchmarks can assert on the shape (who wins, by roughly what factor,
// where crossovers fall).
package harness

import (
	"fmt"
	"io"

	explorefault "repro"
)

// Options configures one harness run.
type Options struct {
	// Seed drives every experiment deterministically.
	Seed uint64
	// Quick selects reduced budgets for CI/bench runs; the full budgets
	// are sized for a single-core machine (the paper used 32 cores and
	// a GPU; see DESIGN.md substitutions).
	Quick bool
	// Out receives the rendered tables/figures. nil discards output.
	Out io.Writer
}

func (o *Options) out() io.Writer {
	if o.Out == nil {
		return io.Discard
	}
	return o.Out
}

// pick returns quick or full depending on the option.
func (o *Options) pick(quick, full int) int {
	if o.Quick {
		return quick
	}
	return full
}

// fprintf is a small helper that never fails.
func fprintf(w io.Writer, format string, args ...interface{}) {
	fmt.Fprintf(w, format, args...)
}

// classesFound maps a model list to the Table III columns.
func classesFound(models []explorefault.Model) map[string]bool {
	found := map[string]bool{}
	for _, m := range models {
		switch m.Class {
		case explorefault.BitModel:
			found["bit"] = true
		case explorefault.NibbleModel:
			found["nibble"] = true
		case explorefault.MultiNibbleModel:
			found["multi-nibble"] = true
		case explorefault.ByteModel:
			found["byte"] = true
		case explorefault.DiagonalModel:
			found["diagonal"] = true
		case explorefault.MultiByteModel:
			found["multi-byte"] = true
		}
	}
	return found
}

func checkmark(b bool) string {
	if b {
		return "yes"
	}
	return "-"
}
