package harness

import (
	"fmt"
	"math"

	explorefault "repro"
	"repro/internal/report"
)

// Figure3Result captures the reward-shaping ablation.
type Figure3Result struct {
	// LinearFinalBits and ExpFinalBits are the largest exploitable
	// pattern sizes (distinct bits n) each reward shape reached; the
	// paper's exponential agent converges to ln(reward) = 17 while the
	// linear agent stalls around 3.
	LinearFinalBits, ExpFinalBits int
	// LinearSeries/ExpSeries: best exploitable n per training window.
	LinearSeries, ExpSeries []float64
}

// Figure3 reproduces Fig. 3: the agent's inability/ability to learn with
// the linear/exponential reward on AES.
func Figure3(opt Options) (*Figure3Result, error) {
	episodes := opt.pick(400, 1600)
	samples := opt.pick(256, 512)
	window := episodes / 8

	run := func(linear bool) ([]float64, int, error) {
		var series []float64
		best := 0
		windowBest := 0
		seen := 0
		res, err := explorefault.Discover(explorefault.DiscoverConfig{
			Cipher:       "aes128",
			Round:        8,
			Episodes:     episodes,
			Samples:      samples,
			Seed:         opt.Seed,
			LinearReward: linear,
			SkipHarvest:  true,
			Progress: func(p explorefault.Progress) {
				if p.BestLeakyN > windowBest {
					windowBest = p.BestLeakyN
				}
				if p.Episodes-seen >= window {
					seen = p.Episodes
					series = append(series, float64(windowBest))
				}
			},
		})
		if err != nil {
			return nil, 0, err
		}
		if res.ConvergedLeaky {
			best = res.Converged.Count()
		}
		for _, b := range res.Buckets {
			if b.MaxLeakyBits > best {
				best = b.MaxLeakyBits
			}
		}
		return series, best, nil
	}

	linSeries, linBest, err := run(true)
	if err != nil {
		return nil, err
	}
	expSeries, expBest, err := run(false)
	if err != nil {
		return nil, err
	}
	res := &Figure3Result{
		LinearFinalBits: linBest,
		ExpFinalBits:    expBest,
		LinearSeries:    linSeries,
		ExpSeries:       expSeries,
	}
	w := opt.out()
	fprintf(w, "Fig. 3: linear vs exponential reward on AES (round 8), %d episodes\n", episodes)
	(&report.Series{
		Title:  "  linear reward (Equation 1): best exploitable pattern size per window",
		XLabel: "window", YLabel: "bits", Y: linSeries,
	}).Render(w)
	(&report.Series{
		Title:  "  exponential reward (Equation 2): best exploitable pattern size per window",
		XLabel: "window", YLabel: "bits", Y: expSeries,
	}).Render(w)
	fprintf(w, "  final: linear converges to n = %d; exponential reaches n = %d (ln of converged reward)\n",
		linBest, expBest)
	return res, nil
}

// Figure4Result captures the training progression.
type Figure4Result struct {
	// Per bucket: leaky episode count, average bits selected, and the
	// model classes seen (bit / multi-bit / diagonal-contained).
	Buckets []Figure4Bucket
}

// Figure4Bucket summarizes one training window.
type Figure4Bucket struct {
	StartEpisode, EndEpisode int
	SingleBit, MultiBit      int
	DiagonalContained        int
	AvgBitsSelected          float64
}

// Figure4 reproduces Fig. 4: fault models discovered per training window
// for unprotected AES, plus the average number of bits selected.
func Figure4(opt Options) (*Figure4Result, error) {
	episodes := opt.pick(600, 3000)
	res, err := explorefault.Discover(explorefault.DiscoverConfig{
		Cipher:      "aes128",
		Round:       8,
		Episodes:    episodes,
		Samples:     opt.pick(256, 512),
		Seed:        opt.Seed,
		SkipHarvest: true,
	})
	if err != nil {
		return nil, err
	}
	out := &Figure4Result{}
	tb := report.NewTable("Fig. 4: fault models discovered during AES training (per window)",
		"Episodes", "1-bit", "multi-bit", "diagonal-contained", "avg bits selected")
	for _, b := range res.Buckets {
		fb := Figure4Bucket{
			StartEpisode:      b.StartEpisode,
			EndEpisode:        b.EndEpisode,
			SingleBit:         b.SingleBitModels,
			MultiBit:          b.MultiBitModels,
			DiagonalContained: b.DiagonalContained,
			AvgBitsSelected:   b.AvgBitsSelected,
		}
		out.Buckets = append(out.Buckets, fb)
		tb.AddRow(fmt.Sprintf("%d-%d", b.StartEpisode, b.EndEpisode),
			fb.SingleBit, fb.MultiBit, fb.DiagonalContained,
			fmt.Sprintf("%.1f", fb.AvgBitsSelected))
	}
	tb.Render(opt.out())
	return out, nil
}

// Figure5Result records the random-fault verification sweep.
type Figure5Result struct {
	Rows []Figure5Row
}

// Figure5Row is the t-statistic distribution for one fault model.
type Figure5Row struct {
	Model             string
	MinT, MeanT, MaxT float64
	AllAboveThreshold bool
}

// Figure5 reproduces Fig. 5: for each discovered fault model, inject 100
// random faults and confirm every t statistic clears the 4.5 threshold.
func Figure5(opt Options) (*Figure5Result, error) {
	trials := opt.pick(30, 100)
	samples := opt.pick(512, 1024)
	models := []struct {
		name    string
		cipher  string
		round   int
		pattern explorefault.Pattern
	}{
		{"AES bit (77)", "aes128", 8, explorefault.PatternFromBits(128, 77)},
		{"AES byte (0)", "aes128", 8, explorefault.PatternFromGroups(128, 8, 0)},
		{"AES diagonal D2", "aes128", 8, explorefault.PatternFromGroups(128, 8, 2, 7, 8, 13)},
		{"GIFT nibble (5)", "gift64", 25, explorefault.PatternFromGroups(64, 4, 5)},
		{"GIFT new model {8,9,10,11,12,14}", "gift64", 25,
			explorefault.PatternFromGroups(64, 4, 8, 9, 10, 11, 12, 14)},
	}
	out := &Figure5Result{}
	tb := report.NewTable(
		fmt.Sprintf("Fig. 5: %d random-fault simulations per discovered model (t distribution)", trials),
		"Fault Model", "min t", "mean t", "max t", "all > 4.5")
	for _, m := range models {
		minT, maxT := math.Inf(1), math.Inf(-1)
		var sum float64
		all := true
		for k := 0; k < trials; k++ {
			a, err := explorefault.Assess(m.pattern, explorefault.AssessConfig{
				Cipher: m.cipher, Round: m.round, Samples: samples,
				Seed: opt.Seed + uint64(1000*k) + uint64(len(m.name)),
			})
			if err != nil {
				return nil, err
			}
			sum += a.T
			if a.T < minT {
				minT = a.T
			}
			if a.T > maxT {
				maxT = a.T
			}
			if !a.Leaky {
				all = false
			}
		}
		row := Figure5Row{
			Model: m.name, MinT: minT, MeanT: sum / float64(trials), MaxT: maxT,
			AllAboveThreshold: all,
		}
		out.Rows = append(out.Rows, row)
		tb.AddRow(m.name, row.MinT, row.MeanT, row.MaxT, checkmark(all))
	}
	tb.Render(opt.out())
	return out, nil
}
