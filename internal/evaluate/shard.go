package evaluate

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/prng"
	"repro/internal/stats"
)

// ShardSize is the fixed number of samples per campaign shard. Shard
// boundaries are independent of the worker count — only shard count and
// per-shard PRNG substreams define the drawn samples — so any worker pool
// produces bit-identical merged accumulators.
const ShardSize = 256

// ShardSeed derives the PRNG seed of one shard from the campaign seed.
func ShardSeed(campaignSeed uint64, shard int) uint64 {
	return splitmix(campaignSeed ^ (0xa0761d6478bd642f * (uint64(shard) + 1)))
}

// RunSharded partitions samples into fixed-size shards, runs collect for
// each shard on a pool of workers goroutines (workers <= 1 runs inline),
// and returns one merged accumulator per observation point. collect is
// called with the shard's own deterministic PRNG, its index, its sample
// count, and one fresh accumulator per point; shard results are merged in
// shard-index order, so the output is bit-identical for any worker count.
//
// Cancellation is checked at shard boundaries: once ctx is done no new
// shard starts, in-flight shards run to completion (a shard never splits
// its PRNG substream), all workers are joined, and ctx.Err() is returned.
func RunSharded(ctx context.Context, samples, workers, points, groups, maxOrder int, campaignSeed uint64,
	collect func(rng *prng.Source, shard, n int, accs []*stats.Accumulator) error) ([]*stats.Accumulator, error) {

	if ctx == nil {
		ctx = context.Background()
	}

	numShards := (samples + ShardSize - 1) / ShardSize
	if numShards < 1 {
		numShards = 1
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > numShards {
		workers = numShards
	}

	newAccs := func() []*stats.Accumulator {
		accs := make([]*stats.Accumulator, points)
		for i := range accs {
			accs[i] = stats.NewAccumulator(groups, maxOrder)
		}
		return accs
	}
	shardSamples := func(shard int) int {
		n := ShardSize
		if last := samples - shard*ShardSize; last < n {
			n = last
		}
		return n
	}

	perShard := make([][]*stats.Accumulator, numShards)
	errs := make([]error, numShards)
	runShard := func(shard int) {
		accs := newAccs()
		rng := prng.New(ShardSeed(campaignSeed, shard))
		errs[shard] = collect(rng, shard, shardSamples(shard), accs)
		perShard[shard] = accs
	}

	if workers == 1 {
		for shard := 0; shard < numShards; shard++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			runShard(shard)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for ctx.Err() == nil {
					shard := int(next.Add(1)) - 1
					if shard >= numShards {
						return
					}
					runShard(shard)
				}
			}()
		}
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	total := perShard[0]
	for _, accs := range perShard[1:] {
		for i, a := range accs {
			total[i].Merge(a)
		}
	}
	return total, nil
}
