package evaluate

import (
	"context"
	"math"
	"reflect"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/ciphers"
	_ "repro/internal/ciphers/gift"
	"repro/internal/fault"
	"repro/internal/prng"
	"repro/internal/stats"
)

func giftCipher(t *testing.T) ciphers.Cipher {
	t.Helper()
	key := make([]byte, 16)
	prng.New(0xbead).Fill(key)
	c, err := ciphers.New("gift64", key)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func nibblePattern(stateBits int, groups ...int) bitvec.Vector {
	v := bitvec.New(stateBits)
	for _, g := range groups {
		for b := 0; b < 4; b++ {
			v.Set(4*g + b)
		}
	}
	return v
}

// TestEngineWorkerDeterminism: the same engine config must produce a
// byte-identical Assessment for any worker count, including a sample
// count that leaves a ragged final shard.
func TestEngineWorkerDeterminism(t *testing.T) {
	c := giftCipher(t)
	pattern := nibblePattern(64, 5)
	var got []Assessment
	for _, workers := range []int{1, 4, 7} {
		e := New(c, Config{Samples: ShardSize*2 + 100, Seed: 99, Workers: workers})
		a, err := e.Assess(context.Background(), &pattern, 25)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, a)
	}
	for i := 1; i < len(got); i++ {
		if math.Float64bits(got[i].T) != math.Float64bits(got[0].T) {
			t.Fatalf("workers case %d: T %v != %v", i, got[i].T, got[0].T)
		}
		if !reflect.DeepEqual(got[i], got[0]) {
			t.Fatalf("workers case %d: assessment differs:\n%+v\n%+v", i, got[i], got[0])
		}
	}
}

// TestEngineIsPure: assessing the same (pattern, round) twice on one
// engine gives identical results — the property the oracle cache relies on.
func TestEngineIsPure(t *testing.T) {
	c := giftCipher(t)
	pattern := nibblePattern(64, 3)
	e := New(c, Config{Samples: 300, Seed: 7})
	a1, err := e.Assess(context.Background(), &pattern, 25)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := e.Assess(context.Background(), &pattern, 25)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a1, a2) {
		t.Fatalf("repeated assessment differs:\n%+v\n%+v", a1, a2)
	}
}

// TestEngineMatchesMatrixPath cross-validates the full streaming engine
// against the matrix-based statistics on identical draws: each shard's
// trace matrix is re-collected with Campaign.Collect from the same shard
// seed, concatenated, and tested with MaxUpToOrder against a matrix
// reference built from the Reference stream.
func TestEngineMatchesMatrixPath(t *testing.T) {
	c := giftCipher(t)
	pattern := nibblePattern(64, 2, 9)
	const samples = ShardSize + 150 // ragged second shard
	const seed = 1234
	cfg := Config{Samples: samples, Seed: seed, MaxOrder: 2}
	e := New(c, cfg)
	got, err := e.Assess(context.Background(), &pattern, 25)
	if err != nil {
		t.Fatal(err)
	}

	base := fault.Campaign{
		Cipher:  c,
		Pattern: pattern,
		Round:   25,
		Samples: samples,
	}
	if err := base.Validate(); err != nil {
		t.Fatal(err)
	}
	campaignSeed := PatternSeed(seed, &pattern, 25)
	matrices := make([][][]float64, len(base.Points))
	for shard := 0; shard*ShardSize < samples; shard++ {
		n := ShardSize
		if rem := samples - shard*ShardSize; rem < n {
			n = rem
		}
		cp := base
		cp.Samples = n
		res, err := cp.Collect(prng.New(ShardSeed(campaignSeed, shard)))
		if err != nil {
			t.Fatal(err)
		}
		for i := range matrices {
			matrices[i] = append(matrices[i], res.Matrices[i]...)
		}
	}
	refAcc := Reference(samples, base.GroupBits, base.Groups(), 2, CanonicalRefSeed)
	refRNG := prng.New(splitmix(CanonicalRefSeed ^ 0xc0ffee))
	refMatrix := fault.UniformReference(samples, base.GroupBits, base.Groups(), refRNG)
	if refAcc.N() != samples {
		t.Fatalf("reference accumulator has %d samples, want %d", refAcc.N(), samples)
	}

	var want Assessment
	for i, p := range base.Points {
		st := stats.MaxUpToOrder(2, matrices[i], refMatrix)
		pr := PointResult{Point: p, Stat: st}
		want.PerPoint = append(want.PerPoint, pr)
		if st.T > want.T {
			want.T = st.T
			want.Best = pr
		}
	}

	if len(got.PerPoint) != len(want.PerPoint) {
		t.Fatalf("point count %d != %d", len(got.PerPoint), len(want.PerPoint))
	}
	for i := range want.PerPoint {
		g, w := got.PerPoint[i].Stat, want.PerPoint[i].Stat
		if math.Abs(g.T-w.T)/math.Max(1, math.Abs(w.T)) > 1e-9 {
			t.Errorf("point %v: streaming T %v vs matrix T %v", want.PerPoint[i].Point, g.T, w.T)
		}
		if g.Order != w.Order || g.PosI != w.PosI || g.PosJ != w.PosJ {
			t.Errorf("point %v: stat identity (%d,%d,%d) vs (%d,%d,%d)",
				want.PerPoint[i].Point, g.Order, g.PosI, g.PosJ, w.Order, w.PosI, w.PosJ)
		}
	}
	if math.Abs(got.T-want.T)/math.Max(1, want.T) > 1e-9 {
		t.Errorf("overall T %v vs matrix %v", got.T, want.T)
	}
}

// TestReferenceShared: equal shapes must share one accumulator instance.
func TestReferenceShared(t *testing.T) {
	a := Reference(128, 4, 16, 2, CanonicalRefSeed)
	b := Reference(128, 4, 16, 2, CanonicalRefSeed)
	if a != b {
		t.Error("equal reference shapes returned distinct accumulators")
	}
	c := Reference(128, 4, 16, 2, 77)
	if c == a {
		t.Error("distinct seeds shared an accumulator")
	}
}

// TestPatternSeed: distinct patterns or rounds must decorrelate seeds.
func TestPatternSeed(t *testing.T) {
	p1 := nibblePattern(64, 1)
	p2 := nibblePattern(64, 2)
	if PatternSeed(5, &p1, 25) == PatternSeed(5, &p2, 25) {
		t.Error("distinct patterns gave equal seeds")
	}
	if PatternSeed(5, &p1, 25) == PatternSeed(5, &p1, 26) {
		t.Error("distinct rounds gave equal seeds")
	}
	if PatternSeed(5, &p1, 25) != PatternSeed(5, &p1, 25) {
		t.Error("equal inputs gave distinct seeds")
	}
}

// TestEngineStopAtThreshold: the short-circuit must truncate PerPoint.
func TestEngineStopAtThreshold(t *testing.T) {
	c := giftCipher(t)
	// A single-nibble fault at round 25 is the paper's canonical GIFT
	// exploitable model; its differential is still localized at the first
	// observation point, so the sweep stops there.
	pattern := nibblePattern(64, 5)
	e := New(c, Config{Samples: 1024, Seed: 3, StopAtThreshold: true})
	a, err := e.Assess(context.Background(), &pattern, 25)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Leaky {
		t.Fatal("single-nibble round-25 GIFT fault should be leaky")
	}
	pts := fault.PointsWindow(c, 25, fault.DefaultLag, fault.DefaultWindow)
	if len(a.PerPoint) >= len(pts) {
		t.Errorf("StopAtThreshold did not truncate: %d of %d points", len(a.PerPoint), len(pts))
	}
}
