package evaluate

import (
	"sync"

	"repro/internal/prng"
	"repro/internal/stats"
)

// CanonicalRefSeed is the uniform-reference stream used when Config.RefSeed
// is zero. Sharing one seed lets every engine of the same shape (samples,
// grouping, order) reuse a single precomputed reference accumulator.
const CanonicalRefSeed uint64 = 0x5ca1ab1e0ddba11

type refKey struct {
	samples   int
	groupBits int
	groups    int
	maxOrder  int
	seed      uint64
}

type refEntry struct {
	once sync.Once
	acc  *stats.Accumulator
}

var (
	refMu    sync.Mutex
	refTable = map[refKey]*refEntry{}
)

// Reference returns the accumulated moments of a samples x groups uniform
// random population — the t-test's null hypothesis — computing each
// distinct (samples, groupBits, groups, maxOrder, seed) shape exactly once
// per process under a sync.Once guard. The returned accumulator is shared
// and must be treated as read-only; stats.Accumulator reads (T, MaxT) are
// safe concurrently.
func Reference(samples, groupBits, groups, maxOrder int, seed uint64) *stats.Accumulator {
	key := refKey{samples, groupBits, groups, maxOrder, seed}
	refMu.Lock()
	e, ok := refTable[key]
	if !ok {
		e = &refEntry{}
		refTable[key] = e
	}
	refMu.Unlock()
	e.once.Do(func() {
		rng := prng.New(splitmix(seed ^ 0xc0ffee))
		maxVal := 1<<uint(groupBits) - 1
		acc := stats.NewAccumulator(groups, maxOrder)
		row := make([]float64, groups)
		for i := 0; i < samples; i++ {
			for j := range row {
				row[j] = float64(rng.Intn(maxVal + 1))
			}
			acc.Add(row)
		}
		e.acc = acc
	})
	return e.acc
}
