// Package evaluate is the unified evaluation engine behind every
// exploitability measurement in the repository: the unprotected leakage
// oracle, the duplication-countermeasure oracle, Discover/Assess, the
// bench harness and the CLIs all route their fault campaigns through it.
//
// The engine combines three mechanisms:
//
//   - streaming statistics: campaigns fold grouped differentials directly
//     into stats.Accumulator power sums instead of materializing
//     Samples x Groups trace matrices (O(groups x orders) memory);
//   - deterministic sharding: samples are partitioned into fixed-size
//     shards, each drawn from its own PRNG substream derived from the
//     campaign seed and the shard index, and shard accumulators are merged
//     in shard order — so results are bit-identical for any worker count;
//   - a shared reference table: the uniform-reference population's moments
//     are computed once per (Samples, GroupBits, groups, MaxOrder, seed)
//     in a sync.Once-guarded table instead of once per assessor.
//
// An Engine's assessment is a pure function of (Seed, pattern, round,
// fault model), which is what makes result memoization
// (explore.CachedOracle) exact.
package evaluate

import (
	"context"
	"encoding/hex"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/bitvec"
	"repro/internal/ciphers"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/prng"
	"repro/internal/stats"
)

// Config tunes an Engine. Zero values select paper defaults.
type Config struct {
	// Samples is the number of random plaintexts per assessment
	// (default 2048).
	Samples int
	// MaxOrder is the highest t-test order G (default 2).
	MaxOrder int
	// GroupBits is the differential grouping granularity; 0 uses the
	// cipher's native substitution width.
	GroupBits int
	// Threshold is the leakage classification threshold θ (default 4.5).
	Threshold float64
	// Lag is the distance from injection round to first observed round
	// (default fault.DefaultLag). Points overrides the window entirely.
	Lag int
	// Window is how many final rounds are observable by partial
	// decryption (default fault.DefaultWindow).
	Window int
	// Points, if non-empty, fixes the observation points.
	Points []fault.Point
	// Mode selects the fault-value model (default fault.RandomMask).
	Mode fault.Mode
	// Model is the typed fault model (default fault.XorFlip, the paper's
	// bit-flip model and the engine's historical behavior). Assess uses
	// it; AssessModel overrides it per call.
	Model fault.Model
	// Oracle selects the statistical oracle (default fault.OracleWelch;
	// fault.OracleSIFA conditions on ineffective faults).
	Oracle fault.OracleKind
	// StopAtThreshold makes Assess return as soon as one observation
	// point exceeds the threshold instead of sweeping all points for
	// the global maximum. Training uses this; reporting does not.
	StopAtThreshold bool
	// Workers is the number of campaign worker goroutines; 0 uses
	// GOMAXPROCS, 1 forces the serial path. Results are identical for
	// every value (see RunSharded).
	Workers int
	// NoBatch forces the scalar reference path even for ciphers with a
	// batch kernel. Both paths are bit-identical; the knob exists for
	// equivalence tests and benchmarks.
	NoBatch bool
	// Metrics, if non-nil, receives engine instrumentation: assessment
	// counts and latencies, per-shard wall times, worker utilization,
	// and the campaign throughput counters of internal/fault. A nil
	// registry keeps the engine on the allocation- and clock-free fast
	// path, and instrumentation never touches a PRNG stream, so
	// assessments are bit-identical with metrics on or off.
	Metrics *obs.Registry
	// Events, if non-nil, receives campaign_started/campaign_finished
	// run events per assessment. Intended for standalone assessments;
	// training sessions emit episode-level events instead (see
	// internal/explore).
	Events *obs.Emitter
	// Seed is the base seed of the engine. Each assessment derives its
	// campaign seed from (Seed, pattern, round), making assessments pure
	// functions of their inputs.
	Seed uint64
	// RefSeed selects the uniform-reference stream; 0 uses the canonical
	// shared seed so all engines with equal shape share one table entry.
	RefSeed uint64
}

func (cfg *Config) setDefaults() {
	if cfg.Samples == 0 {
		cfg.Samples = 2048
	}
	if cfg.MaxOrder == 0 {
		cfg.MaxOrder = 2
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = stats.DefaultThreshold
	}
	if cfg.Lag == 0 {
		cfg.Lag = fault.DefaultLag
	}
	if cfg.Window == 0 {
		cfg.Window = fault.DefaultWindow
	}
	if cfg.RefSeed == 0 {
		cfg.RefSeed = CanonicalRefSeed
	}
}

// PointResult is the best statistic observed at one point.
type PointResult struct {
	Point fault.Point
	Stat  stats.TTestResult
}

// Assessment is the outcome of one pattern assessment.
type Assessment struct {
	// T is the maximum |t| over all observation points and orders: the
	// information leakage l of the paper.
	T float64
	// Leaky reports T > threshold.
	Leaky bool
	// Best identifies where and at which order T was found.
	Best PointResult
	// PerPoint lists the best statistic of every evaluated point (may
	// be truncated when StopAtThreshold fires).
	PerPoint []PointResult
}

// Engine evaluates fault patterns for a fixed keyed cipher and config.
// It is safe for concurrent use: its fields are immutable after New and
// every assessment works on freshly derived PRNG substreams.
type Engine struct {
	cipher ciphers.Cipher
	cfg    Config
}

// New creates an engine for the given keyed cipher.
func New(c ciphers.Cipher, cfg Config) *Engine {
	cfg.setDefaults()
	if cfg.GroupBits == 0 {
		cfg.GroupBits = c.GroupBits()
	}
	return &Engine{cipher: c, cfg: cfg}
}

// Cipher returns the underlying keyed cipher.
func (e *Engine) Cipher() ciphers.Cipher { return e.cipher }

// Config returns the engine configuration (defaults resolved).
func (e *Engine) Config() Config { return e.cfg }

// StateBits returns the cipher state width in bits (the RL action space).
func (e *Engine) StateBits() int { return 8 * e.cipher.BlockBytes() }

// Threshold returns the leakage classification threshold θ.
func (e *Engine) Threshold() float64 { return e.cfg.Threshold }

// workers resolves the configured worker count.
func (e *Engine) workers() int {
	if e.cfg.Workers > 0 {
		return e.cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Assess measures the information leakage of injecting the pattern at the
// given round, sweeping t-test orders 1..MaxOrder at every observation
// point. The pattern width must match the cipher state width. A done ctx
// aborts the campaign at the next shard boundary and returns ctx.Err().
func (e *Engine) Assess(ctx context.Context, pattern *bitvec.Vector, round int) (Assessment, error) {
	return e.assess(ctx, pattern, round, e.cfg.Model, 0)
}

// AssessModel is Assess with a per-call fault model override: the RL
// environment uses it when the action space spans several fault types, so
// one engine (and one memoization cache) serves every model.
func (e *Engine) AssessModel(ctx context.Context, pattern *bitvec.Vector, round int, model fault.Model) (Assessment, error) {
	return e.assess(ctx, pattern, round, model, 0)
}

// AssessOrder runs a single fixed-order assessment (used by the Table I
// harness to contrast first- and second-order statistics). It ignores
// StopAtThreshold and may exceed Config.MaxOrder.
func (e *Engine) AssessOrder(ctx context.Context, pattern *bitvec.Vector, round, order int) (Assessment, error) {
	if order < 1 {
		return Assessment{}, fmt.Errorf("evaluate: order %d out of range", order)
	}
	return e.assess(ctx, pattern, round, e.cfg.Model, order)
}

// assess is the shared implementation; fixedOrder 0 sweeps 1..MaxOrder
// with the StopAtThreshold short-circuit, fixedOrder >= 1 tests exactly
// that order at every point.
func (e *Engine) assess(ctx context.Context, pattern *bitvec.Vector, round int, model fault.Model, fixedOrder int) (Assessment, error) {
	if pattern.IsZero() {
		return Assessment{}, fmt.Errorf("evaluate: empty fault pattern")
	}
	points := e.cfg.Points
	if len(points) == 0 {
		points = fault.PointsWindow(e.cipher, round, e.cfg.Lag, e.cfg.Window)
	}
	cp := fault.Campaign{
		Cipher:    e.cipher,
		Pattern:   *pattern,
		Round:     round,
		Mode:      e.cfg.Mode,
		Model:     model,
		Oracle:    e.cfg.Oracle,
		Samples:   e.cfg.Samples,
		Points:    points,
		GroupBits: e.cfg.GroupBits,
		NoBatch:   e.cfg.NoBatch,
		Metrics:   e.cfg.Metrics,
	}
	if err := cp.Validate(); err != nil {
		return Assessment{}, err
	}
	maxOrder := e.cfg.MaxOrder
	if fixedOrder > maxOrder {
		maxOrder = fixedOrder
	}
	groups := cp.Groups()
	seed := PatternSeed(e.cfg.Seed, pattern, round)
	workers := e.workers()

	// Span of the whole assessment; children (shards) hang off its
	// context. Nil (free) unless the caller's ctx carries a span.
	sp, ctx := trace.StartSpan(ctx, trace.SpanAssess)
	defer sp.End()
	sp.SetAttr("cipher", e.cipher.Name())
	sp.SetAttr("round", round)
	sp.SetAttr("pattern", hex.EncodeToString(pattern.Bytes()))
	sp.SetAttr("fault_model", model.String())
	sp.SetAttr("oracle", e.cfg.Oracle.String())

	// Instrumentation: resolved once per assessment, nil no-ops when
	// disabled; the clock is read only when metrics or events are on.
	m, events := e.cfg.Metrics, e.cfg.Events
	var start time.Time
	if m != nil || events != nil {
		start = time.Now()
		m.Counter("evaluate.assessments_total").Inc()
		events.Emit(obs.EventCampaignStarted, map[string]any{
			"cipher":      e.cipher.Name(),
			"round":       round,
			"pattern":     hex.EncodeToString(pattern.Bytes()),
			"bits":        pattern.Count(),
			"samples":     e.cfg.Samples,
			"workers":     workers,
			"batch":       !e.cfg.NoBatch,
			"batch_path":  cp.BatchPath(),
			"fault_model": model.String(),
			"oracle":      e.cfg.Oracle.String(),
		})
	}
	shardHist := m.Histogram("evaluate.shard_seconds", obs.LatencyBuckets)
	var busyNanos atomic.Int64

	accs, err := RunSharded(ctx, e.cfg.Samples, workers, len(cp.Points), groups, maxOrder, seed,
		func(rng *prng.Source, shard, n int, shardAccs []*stats.Accumulator) error {
			// Shards run concurrently with unknown multiplicity, so each
			// span gets its own Perfetto lane instead of stacking on the
			// parent's.
			ssp, sctx := trace.StartSpan(ctx, trace.SpanShard)
			ssp.SetAttr("shard", shard)
			ssp.SetAttr("samples", n)
			ssp.OwnLane()
			st := shardHist.Start()
			err := cp.CollectIntoContext(sctx, rng, n, shardAccs)
			if d := st.Stop(); d > 0 {
				busyNanos.Add(int64(d))
			}
			ssp.End()
			return err
		})
	if err != nil {
		return Assessment{}, err
	}
	ref := Reference(e.cfg.Samples, e.cfg.GroupBits, groups, maxOrder, e.cfg.RefSeed)

	var out Assessment
	for i, p := range cp.Points {
		var st stats.TTestResult
		if fixedOrder > 0 {
			st = accs[i].T(fixedOrder, ref)
		} else {
			st = accs[i].MaxT(e.cfg.MaxOrder, ref)
		}
		pr := PointResult{Point: p, Stat: st}
		out.PerPoint = append(out.PerPoint, pr)
		if st.T > out.T {
			out.T = st.T
			out.Best = pr
		}
		if fixedOrder == 0 && e.cfg.StopAtThreshold && out.T > e.cfg.Threshold {
			break
		}
	}
	out.Leaky = out.T > e.cfg.Threshold
	sp.SetAttr("t", out.T)
	sp.SetAttr("leaky", out.Leaky)
	if m != nil || events != nil {
		wall := time.Since(start)
		secs := wall.Seconds()
		m.Histogram("evaluate.assess_seconds", obs.LatencyBuckets).Observe(secs)
		if secs > 0 {
			m.Histogram("evaluate.traces_per_sec", obs.RateBuckets).
				Observe(float64(e.cfg.Samples) / secs)
			if busy := busyNanos.Load(); busy > 0 {
				m.Gauge("evaluate.worker_utilization").
					Set(float64(busy) / (float64(workers) * float64(wall)))
			}
		}
		events.Emit(obs.EventCampaignFinished, map[string]any{
			"cipher":      e.cipher.Name(),
			"round":       round,
			"pattern":     hex.EncodeToString(pattern.Bytes()),
			"t":           out.T,
			"leaky":       out.Leaky,
			"shards":      (e.cfg.Samples + ShardSize - 1) / ShardSize,
			"duration_ms": float64(wall) / float64(time.Millisecond),
			"batch_path":  cp.BatchPath(),
			"fault_model": model.String(),
			"oracle":      e.cfg.Oracle.String(),
		})
	}
	return out, nil
}

// PatternSeed derives the campaign seed of one assessment from the engine
// base seed, the pattern bytes and the injection round (splitmix64-style
// finalization per byte). Equal inputs give equal campaigns, which makes
// oracle memoization exact; distinct rounds or patterns decorrelate.
func PatternSeed(base uint64, pattern *bitvec.Vector, round int) uint64 {
	h := splitmix(base ^ 0x9e3779b97f4a7c15)
	for _, b := range pattern.Bytes() {
		h = splitmix(h ^ uint64(b))
	}
	return splitmix(h ^ uint64(round))
}

func splitmix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
