package explore

import (
	"sort"
	"sync"

	"repro/internal/bitvec"
	"repro/internal/fault"
)

// Record is one completed training episode.
type Record struct {
	Episode  int // global episode index, 0-based, in completion order
	Pattern  bitvec.Vector
	Distinct int
	Model    fault.Model // fault model of the episode's injection
	T        float64
	Leaky    bool
	Reward   float64
}

// Log accumulates episode records across parallel environments. It is the
// source for Fig. 4 (models discovered per 1K episodes), Table V (GIFT
// models in the first 1K episodes), and §III-F's harvesting of
// high-leakage patterns from the training log.
type Log struct {
	mu      sync.Mutex
	records []Record
}

// Add appends one episode outcome and returns its global episode index.
func (l *Log) Add(info EpisodeInfo) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	idx := len(l.records)
	l.records = append(l.records, Record{
		Episode:  idx,
		Pattern:  info.Pattern,
		Distinct: info.Distinct,
		Model:    info.Model,
		T:        info.T,
		Leaky:    info.Leaky,
		Reward:   info.Reward,
	})
	return idx
}

// restore replaces the log contents with previously captured records
// (checkpoint resume). Subsequent Add calls continue the episode
// numbering where the restored records end.
func (l *Log) restore(records []Record) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.records = append(l.records[:0], records...)
}

// Len returns the number of recorded episodes.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// Records returns a snapshot copy of all records.
func (l *Log) Records() []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Record(nil), l.records...)
}

// Leaky returns the records whose pattern leaked, optionally restricted to
// the first n episodes (n <= 0 means all).
func (l *Log) Leaky(n int) []Record {
	var out []Record
	for _, r := range l.Records() {
		if n > 0 && r.Episode >= n {
			break
		}
		if r.Leaky {
			out = append(out, r)
		}
	}
	return out
}

// Bucket summarizes a window of training episodes (Fig. 4's per-1K-episode
// view).
type Bucket struct {
	Start, End   int // episode range [Start, End)
	Episodes     int
	LeakyCount   int
	AvgDistinct  float64 // average n over all episodes in the bucket
	MaxDistinct  int     // largest leaky pattern seen
	BestT        float64
	BestLeakyN   int           // distinct bits of the best (max-n) leaky episode
	BestLeakyPat bitvec.Vector // its pattern
}

// Buckets groups the log into windows of size episodes each.
func (l *Log) Buckets(size int) []Bucket {
	recs := l.Records()
	if size <= 0 || len(recs) == 0 {
		return nil
	}
	var out []Bucket
	for start := 0; start < len(recs); start += size {
		end := start + size
		if end > len(recs) {
			end = len(recs)
		}
		b := Bucket{Start: start, End: end, Episodes: end - start}
		var sumN int
		for _, r := range recs[start:end] {
			sumN += r.Distinct
			if r.Leaky {
				b.LeakyCount++
				if r.Distinct > b.BestLeakyN {
					b.BestLeakyN = r.Distinct
					b.BestLeakyPat = r.Pattern
				}
				if r.Distinct > b.MaxDistinct {
					b.MaxDistinct = r.Distinct
				}
			}
			if r.T > b.BestT {
				b.BestT = r.T
			}
		}
		b.AvgDistinct = float64(sumN) / float64(b.Episodes)
		out = append(out, b)
	}
	return out
}

// PatternCounts counts occurrences of identical leaky patterns within the
// first n episodes (n <= 0 means all), most frequent first. This is the
// raw material for Table V.
type PatternCount struct {
	Pattern bitvec.Vector
	Model   fault.Model
	Count   int
}

// PatternCounts implements the Table V view of the log. Identical
// patterns discovered under different fault models count separately (a
// single-model run is unaffected).
func (l *Log) PatternCounts(n int) []PatternCount {
	counts := map[string]*PatternCount{}
	for _, r := range l.Leaky(n) {
		key := r.Model.String() + "|" + r.Pattern.String()
		if pc, ok := counts[key]; ok {
			pc.Count++
		} else {
			counts[key] = &PatternCount{Pattern: r.Pattern, Model: r.Model, Count: 1}
		}
	}
	out := make([]PatternCount, 0, len(counts))
	for _, pc := range counts {
		out = append(out, *pc)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].Model != out[j].Model {
			return out[i].Model < out[j].Model
		}
		return out[i].Pattern.String() < out[j].Pattern.String()
	})
	return out
}
