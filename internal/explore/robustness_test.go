package explore

import (
	"context"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/prng"
	"repro/internal/rl/ppo"
)

// TestRespikeRescuesDeadStart uses an oracle where only one specific bit
// is exploitable: a random bootstrap spike almost certainly lands on a
// dead bit, and only the respike mechanism can move the policy onto the
// live one.
func TestRespikeRescuesDeadStart(t *testing.T) {
	factory := func(rng *prng.Source) (Oracle, error) {
		return newSubsetOracle(32, 13), nil // a single live bit out of 32
	}
	sess, err := NewSession(factory, SessionConfig{
		Seed:         21,
		NumEnvs:      4,
		Episodes:     1200,
		RespikeAfter: 60,
		Agent:        ppo.Config{LearningRate: 1e-3, Epochs: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !out.ConvergedLeaky {
		t.Fatal("respike never found the single live bit")
	}
	live := bitvec.FromBits(32, 13)
	if !out.Converged.SubsetOf(&live) {
		t.Errorf("converged pattern %v is not the live bit", out.Converged.String())
	}
}

// TestNoRespikeStaysDead is the control: with respiking disabled, the
// same dead-start session must fail to find the live bit, demonstrating
// that the rescue above is really the respike mechanism at work.
func TestNoRespikeStaysDead(t *testing.T) {
	factory := func(rng *prng.Source) (Oracle, error) {
		return newSubsetOracle(32, 13), nil
	}
	sess, err := NewSession(factory, SessionConfig{
		Seed:         21, // same seed as the rescue test
		NumEnvs:      4,
		Episodes:     600,
		RespikeAfter: -1, // disabled
		Agent:        ppo.Config{LearningRate: 1e-3, Epochs: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out.ConvergedLeaky {
		t.Skip("policy found the live bit without respiking (possible but rare); no control signal")
	}
	// Expected path: no leaky episode at all.
	if len(out.Log.Leaky(0)) != 0 {
		t.Errorf("control run unexpectedly found %d leaky episodes", len(out.Log.Leaky(0)))
	}
}

// TestExplorationFloorKeepsStrays verifies that after heavy convergence
// pressure the played policy still assigns at least the floor probability
// to every action.
func TestExplorationFloorKeepsStrays(t *testing.T) {
	const k = 16
	agent := ppo.New(k, k, ppo.Config{
		ExplorationFloor: 1.0 / 16,
		BootstrapSpike:   12, // extremely peaked policy
	}, prng.New(3))
	probs := agent.Probs(make([]float64, k))
	floor := (1.0 / 16) / k
	for i, p := range probs {
		if p < floor*0.999 {
			t.Errorf("action %d has probability %v below the floor %v", i, p, floor)
		}
	}
	// And the spike dominates as intended.
	max := 0.0
	for _, p := range probs {
		if p > max {
			max = p
		}
	}
	if max < 0.8 {
		t.Errorf("spiked action mass = %v, want > 0.8", max)
	}
}
