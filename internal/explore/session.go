package explore

import (
	"context"
	"encoding/hex"
	"fmt"
	"time"

	"repro/internal/bitvec"
	"repro/internal/checkpoint"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/prng"
	"repro/internal/rl"
	"repro/internal/rl/ppo"
)

// OracleFactory builds one oracle per parallel environment. Each call
// receives its own PRNG stream; implementations typically construct a
// keyed cipher plus a leakage assessor from it.
type OracleFactory func(rng *prng.Source) (Oracle, error)

// SessionConfig tunes a discovery session.
type SessionConfig struct {
	// NumEnvs is the number of vectorized environments (default 8).
	NumEnvs int
	// Episodes is the total episode budget across all envs
	// (default 5000, the span of Fig. 4).
	Episodes int
	// Env configures the MDP.
	Env EnvConfig
	// Agent configures PPO.
	Agent ppo.Config
	// Seed makes the whole session reproducible.
	Seed uint64
	// BootstrapSpike is the peaked-initialization strength passed to the
	// agent (default 8; see ppo.Config.BootstrapSpike). Set negative to
	// disable and use a uniform initial policy.
	BootstrapSpike float64
	// RespikeAfter re-randomizes the policy peak if this many episodes
	// pass without a single exploitable pattern (default 150; 0 keeps
	// the default, negative disables). This rescues sessions whose
	// initial peak landed on a non-exploitable bit.
	RespikeAfter int
	// Gamma is the GAE discount (default 1.0: the MDP pays only a
	// terminal reward, so undiscounted credit assignment gives every
	// step of an episode equal weight; 0.99 would scale the first
	// step's credit by 0.99^127 ≈ 0.28 for AES).
	Gamma float64
	// Lambda is the GAE smoothing parameter (default 0.95).
	Lambda float64
	// FinalRollouts is how many stochastic rollouts of the trained
	// policy are evaluated to read out the converged fault pattern
	// (default 8).
	FinalRollouts int
	// OracleCache configures memoization of oracle evaluations. The
	// cache is on by default (engine-backed oracles are pure, so
	// memoization is exact); set OracleCache.Disable for ablation runs
	// that must pay full simulation cost per episode.
	OracleCache CacheConfig
	// Checkpoint, if non-empty, is the path the session checkpoints to.
	// Snapshots are taken at every PPO update boundary and written
	// atomically every CheckpointEvery episodes, plus once when the run
	// context is cancelled, so an interrupted run resumes bit-identically
	// (see Checkpoint and Session.RestoreCheckpoint).
	Checkpoint string
	// CheckpointEvery is the minimum number of episodes between periodic
	// checkpoint writes (default DefaultCheckpointEvery; only meaningful
	// with Checkpoint set).
	CheckpointEvery int
	// CheckpointLabel is a human-readable run descriptor (cipher, round,
	// sample count, ...) folded into the checkpoint fingerprint, so a
	// checkpoint cannot be resumed under a different oracle configuration
	// that this package cannot see into.
	CheckpointLabel string
	// Progress, if non-nil, is called after every PPO update with a
	// running summary.
	Progress func(Progress)
	// Metrics, if non-nil, receives training instrumentation: episode
	// and leaky-episode counters, PPO update latencies, oracle
	// evaluation latencies split by cache hit/miss, and policy-entropy
	// and discovery-rate gauges. Instrumentation draws no randomness,
	// so training is bit-identical with metrics on or off.
	Metrics *obs.Registry
	// Events, if non-nil, receives structured run events: session
	// started/finished, one event per episode and per PPO update, and
	// one per oracle evaluation (with its cache-hit verdict).
	Events *obs.Emitter
}

func (c *SessionConfig) setDefaults() {
	if c.NumEnvs == 0 {
		c.NumEnvs = 8
	}
	if c.Episodes == 0 {
		c.Episodes = 5000
	}
	if c.FinalRollouts == 0 {
		c.FinalRollouts = 8
	}
	if c.BootstrapSpike == 0 {
		c.BootstrapSpike = 8
	}
	if c.RespikeAfter == 0 {
		c.RespikeAfter = 150
	}
	if c.Gamma == 0 {
		c.Gamma = 1.0
	}
	if c.Lambda == 0 {
		c.Lambda = 0.95
	}
}

// Progress is the periodic training summary passed to the callback.
type Progress struct {
	Episodes   int
	AvgReturn  float64 // over the last update's episodes
	AvgLeaky   float64 // fraction of leaky episodes in the last update
	AvgBits    float64 // average distinct bits in the last update
	BestLeakyN int     // best leaky pattern size so far
	Entropy    float64 // policy entropy
	// CacheHits and CacheMisses are cumulative oracle-memoization
	// counters across all envs (zero when the cache is disabled).
	CacheHits, CacheMisses uint64
}

// Outcome is the result of a discovery session.
type Outcome struct {
	// Converged is the fault pattern read out from the trained policy:
	// the largest leaky pattern among FinalRollouts stochastic rollouts
	// (falling back to the best training-log pattern if none leak).
	Converged bitvec.Vector
	// ConvergedT is its leakage statistic; ConvergedLeaky its verdict;
	// ConvergedModel the fault model it was discovered under (always
	// fault.XorFlip in single-model sessions).
	ConvergedT     float64
	ConvergedLeaky bool
	ConvergedModel fault.Model
	// Log holds every training episode for later harvesting.
	Log *Log
	// Episodes actually run; Duration the wall-clock training time.
	Episodes int
	Duration time.Duration
	// StepsPerMin and EpisodesPerMin are the training-rate figures of
	// Table II.
	StepsPerMin, EpisodesPerMin float64
	// Cache aggregates oracle-memoization counters over all envs plus
	// the final-rollout oracle (all zero when the cache is disabled).
	Cache CacheStats
}

// runCounters is the mutable per-run progress state. It lives on the
// Session (not in Run's locals) so checkpoints can capture and restore
// it.
type runCounters struct {
	episodes   int
	steps      int
	bestLeakyN int
	sinceLeaky int
	leakyTotal int
}

// Session owns the environments, agent and log of one discovery run.
type Session struct {
	cfg     SessionConfig
	envs    []rl.Env
	raw     []*Env // same envs, concrete type for LastEpisode access
	agent   *ppo.Agent
	runner  *rl.Runner
	log     *Log
	rng     *prng.Source
	envRngs []*prng.Source  // oracle streams in construction order (envs, then eval)
	evalEnv *Env            // env reserved for final-rollout evaluation
	caches  []*CachedOracle // memoizing wrappers, for stats (nil entries when disabled)
	obs     sessionObs      // instrument handles; zero value when disabled

	run       runCounters
	resumedAt int // episode count restored from a checkpoint; -1 when fresh
}

// NewSession builds a session: NumEnvs oracles/environments plus one extra
// oracle for final-pattern evaluation, and a PPO agent sized to the
// oracle's state width.
func NewSession(factory OracleFactory, cfg SessionConfig) (*Session, error) {
	cfg.setDefaults()
	root := prng.New(cfg.Seed)
	s := &Session{cfg: cfg, log: &Log{}, rng: root, resumedAt: -1}
	s.obs = newSessionObs(cfg.Metrics, cfg.Events)
	env := 0
	wrap := func(o Oracle) Oracle {
		var cache *CachedOracle
		if !cfg.OracleCache.Disable {
			cache = NewCachedOracle(o, cfg.OracleCache.Capacity)
			s.caches = append(s.caches, cache)
			o = cache
		}
		if s.obs.enabled {
			o = newInstrumentedOracle(o, cache, env, cfg.Metrics, cfg.Events)
		}
		env++
		return o
	}
	// Oracle PRNG streams are retained on the session so checkpoints can
	// capture their positions (current oracles draw their seed once at
	// construction, but the snapshot must not depend on that detail).
	splitOracleRng := func() *prng.Source {
		src := root.Split()
		s.envRngs = append(s.envRngs, src)
		return src
	}
	for i := 0; i < cfg.NumEnvs; i++ {
		oracle, err := factory(splitOracleRng())
		if err != nil {
			return nil, fmt.Errorf("explore: building oracle %d: %w", i, err)
		}
		env := NewEnv(wrap(oracle), cfg.Env)
		s.raw = append(s.raw, env)
		s.envs = append(s.envs, env)
	}
	evalOracle, err := factory(splitOracleRng())
	if err != nil {
		return nil, fmt.Errorf("explore: building eval oracle: %w", err)
	}
	s.evalEnv = NewEnv(wrap(evalOracle), cfg.Env)
	obsSize := s.raw[0].ObsSize()
	agentCfg := cfg.Agent
	if cfg.BootstrapSpike > 0 && agentCfg.BootstrapSpike == 0 {
		agentCfg.BootstrapSpike = cfg.BootstrapSpike
	}
	if agentCfg.ExplorationFloor == 0 {
		// One expected stray per episode keeps pattern growth alive
		// (see ppo.Config.ExplorationFloor). The env applied its own
		// defaults, so read the effective episode length back from it.
		agentCfg.ExplorationFloor = 1 / float64(s.raw[0].cfg.EpisodeLen)
	} else if agentCfg.ExplorationFloor < 0 {
		agentCfg.ExplorationFloor = 0
	}
	s.agent = ppo.New(obsSize, s.raw[0].NumActions(), agentCfg, root.Split())
	s.runner = rl.NewRunner(s.envs, s.agent)
	s.runner.Gamma = cfg.Gamma
	s.runner.Lambda = cfg.Lambda
	return s, nil
}

// Agent exposes the trained agent (for greedy inspection in examples).
func (s *Session) Agent() *ppo.Agent { return s.agent }

// Log exposes the training log.
func (s *Session) Log() *Log { return s.log }

// Run trains until the episode budget is exhausted, then reads out the
// converged pattern.
//
// Cancelling ctx stops the run at the next episode-batch boundary: the
// in-flight batch is discarded (its oracle campaigns abort at their next
// shard boundary), the last update-boundary snapshot is written to
// SessionConfig.Checkpoint (when set), and ctx.Err() is returned. Because
// snapshots are only taken at update boundaries and training is
// deterministic, a session restored from that checkpoint replays the
// discarded episodes exactly and the final Outcome is bit-identical to a
// never-interrupted run. The post-training readout is not cancellable
// (it is short relative to training and keeps the outcome deterministic).
func (s *Session) Run(ctx context.Context) (*Outcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	// Session span; episode spans (started by each env at Reset) and PPO
	// update spans hang off it. Each env gets its own Perfetto lane:
	// episodes of one env are sequential but envs step concurrently, so
	// sharing a lane would interleave their slices.
	sp, ctx := trace.StartSpan(ctx, trace.SpanSession)
	defer sp.End()
	sp.SetAttr("envs", len(s.envs))
	sp.SetAttr("episode_budget", s.cfg.Episodes)
	if tr := sp.Tracer(); tr != nil {
		for i := range s.raw {
			tr.NameLane(int64(i+1), fmt.Sprintf("env-%d", i))
		}
	}
	for i, env := range s.raw {
		env.SetContext(ctx)
		env.lane = int64(i + 1)
	}
	start := time.Now()
	startEpisodes := s.run.episodes
	startSteps := s.run.steps

	ckptEnabled := s.cfg.Checkpoint != ""
	every := s.cfg.CheckpointEvery
	if every <= 0 {
		every = DefaultCheckpointEvery
	}
	lastSaved := -1
	var pending *Checkpoint
	// saveCheckpoint writes the most recent boundary snapshot. pending is
	// refreshed after every PPO update, so on cancellation this persists
	// the state just before the discarded batch.
	saveCheckpoint := func() error {
		if pending == nil || pending.Episodes == lastSaved {
			return nil
		}
		if err := checkpoint.Save(s.cfg.Checkpoint, SessionCheckpointKind, pending); err != nil {
			return err
		}
		lastSaved = pending.Episodes
		if s.obs.enabled {
			s.obs.events.Emit(obs.EventCheckpointSaved, map[string]any{
				"episodes": pending.Episodes,
				"path":     s.cfg.Checkpoint,
			})
		}
		return nil
	}
	// cancelled persists the pending snapshot and reports why the run
	// stopped; a failed save outranks the cancellation (the caller must
	// know the run is not resumable).
	cancelled := func(ctxErr error) error {
		if ckptEnabled {
			if err := saveCheckpoint(); err != nil {
				return err
			}
		}
		return ctxErr
	}

	if s.obs.enabled {
		fields := map[string]any{
			"envs":       len(s.envs),
			"episodes":   s.cfg.Episodes,
			"state_bits": s.raw[0].ObsSize(),
			"seed":       s.cfg.Seed,
		}
		if s.resumedAt >= 0 {
			fields["resumed_at"] = s.resumedAt
		}
		s.obs.events.Emit(obs.EventSessionStarted, fields)
	}

	// An eager first write guarantees a loadable checkpoint exists from
	// the moment the run starts, even if it is interrupted before the
	// first update boundary.
	if ckptEnabled {
		pending = s.snapshot()
		if err := saveCheckpoint(); err != nil {
			return nil, err
		}
	}

	for s.run.episodes < s.cfg.Episodes {
		if err := ctx.Err(); err != nil {
			return nil, cancelled(err)
		}
		// One CollectEpisodes call yields NumEnvs episodes; a final
		// partial batch over an env prefix lands exactly on the budget
		// instead of overshooting it by up to NumEnvs-1.
		runner := s.runner
		if remaining := s.cfg.Episodes - s.run.episodes; remaining < len(s.envs) {
			runner = rl.NewRunner(s.envs[:remaining], s.agent)
			runner.Gamma = s.cfg.Gamma
			runner.Lambda = s.cfg.Lambda
		}
		batch, eps, err := runner.CollectEpisodes(1)
		if err != nil {
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			// The batch finished structurally but its rewards may contain
			// cancellation placeholders; discard it and persist the last
			// complete boundary.
			return nil, cancelled(err)
		}
		s.run.steps += batch.Len()
		var sumRet, sumBits, leaky float64
		for i, ep := range eps {
			info := s.raw[ep.EnvIndex].LastEpisode()
			s.log.Add(info)
			sumRet += ep.Return
			sumBits += float64(info.Distinct)
			if info.Leaky {
				leaky++
				s.run.leakyTotal++
				if info.Distinct > s.run.bestLeakyN {
					s.run.bestLeakyN = info.Distinct
				}
			}
			if s.obs.enabled {
				s.obs.events.Emit(obs.EventEpisode, map[string]any{
					"episode":     s.run.episodes + i + 1,
					"env":         ep.EnvIndex,
					"pattern":     hex.EncodeToString(info.Pattern.Bytes()),
					"bits":        info.Distinct,
					"fault_model": info.Model.String(),
					"t":           info.T,
					"leaky":       info.Leaky,
					"reward":      info.Reward,
				})
			}
		}
		s.run.episodes += len(eps)
		if leaky > 0 {
			s.run.sinceLeaky = 0
		} else {
			s.run.sinceLeaky += len(eps)
			if s.cfg.RespikeAfter > 0 && s.run.sinceLeaky >= s.cfg.RespikeAfter && s.cfg.BootstrapSpike > 0 {
				s.agent.Respike(s.cfg.BootstrapSpike)
				s.run.sinceLeaky = 0
			}
		}
		usp, _ := trace.StartSpan(ctx, trace.SpanPPOUpdate)
		usp.SetAttr("episodes", s.run.episodes)
		updTimer := s.obs.updTime.Start()
		stats := s.agent.Update(batch)
		updDur := updTimer.Stop()
		usp.End()
		// The update boundary is the checkpointable state: snapshot now,
		// write periodically (and on cancellation, via cancelled above).
		if ckptEnabled {
			pending = s.snapshot()
			if s.run.episodes-lastSaved >= every {
				if err := saveCheckpoint(); err != nil {
					return nil, err
				}
			}
		}
		if s.obs.enabled {
			n := float64(len(eps))
			s.obs.episodes.Add(uint64(len(eps)))
			s.obs.leaky.Add(uint64(leaky))
			s.obs.updates.Inc()
			s.obs.entropy.Set(stats.Entropy)
			s.obs.leakyPer1K.Set(1000 * float64(s.run.leakyTotal) / float64(s.run.episodes))
			if mins := time.Since(start).Minutes(); mins > 0 {
				s.obs.epsPerMin.Set(float64(s.run.episodes-startEpisodes) / mins)
			}
			s.obs.syncCache(s.cacheStats())
			s.obs.events.Emit(obs.EventPPOUpdate, map[string]any{
				"episodes":    s.run.episodes,
				"entropy":     stats.Entropy,
				"avg_return":  sumRet / n,
				"avg_leaky":   leaky / n,
				"duration_ms": float64(updDur) / float64(time.Millisecond),
			})
		}
		if s.cfg.Progress != nil {
			n := float64(len(eps))
			cache := s.cacheStats()
			s.cfg.Progress(Progress{
				Episodes:    s.run.episodes,
				AvgReturn:   sumRet / n,
				AvgLeaky:    leaky / n,
				AvgBits:     sumBits / n,
				BestLeakyN:  s.run.bestLeakyN,
				Entropy:     stats.Entropy,
				CacheHits:   cache.Hits,
				CacheMisses: cache.Misses,
			})
		}
	}
	dur := time.Since(start)

	out := &Outcome{
		Log:      s.log,
		Episodes: s.run.episodes,
		Duration: dur,
	}
	if mins := dur.Minutes(); mins > 0 {
		out.EpisodesPerMin = float64(s.run.episodes-startEpisodes) / mins
		out.StepsPerMin = float64(s.run.steps-startSteps) / mins
	}
	s.readOutConverged(out)
	out.Cache = s.cacheStats()
	if s.obs.enabled {
		s.obs.syncCache(out.Cache)
		s.obs.events.Emit(obs.EventSessionFinished, map[string]any{
			"episodes":         out.Episodes,
			"duration_ms":      float64(out.Duration) / float64(time.Millisecond),
			"episodes_per_min": out.EpisodesPerMin,
			"steps_per_min":    out.StepsPerMin,
			"converged":        hex.EncodeToString(out.Converged.Bytes()),
			"converged_t":      out.ConvergedT,
			"converged_leaky":  out.ConvergedLeaky,
			"converged_model":  out.ConvergedModel.String(),
			"cache_hits":       out.Cache.Hits,
			"cache_misses":     out.Cache.Misses,
			"cache_evictions":  out.Cache.Evictions,
		})
	}
	return out, nil
}

// cacheStats sums the memoization counters of every wrapped oracle.
func (s *Session) cacheStats() CacheStats {
	var total CacheStats
	for _, c := range s.caches {
		total.Add(c.Stats())
	}
	return total
}

// readOutConverged evaluates FinalRollouts stochastic rollouts of the
// trained policy and keeps the leaky pattern with the most bits; if the
// policy never produces a leaky episode (it can happen with tiny budgets),
// it falls back to the best leaky pattern in the training log.
func (s *Session) readOutConverged(out *Outcome) {
	bestN := -1
	for k := 0; k < s.cfg.FinalRollouts; k++ {
		obs := s.evalEnv.Reset()
		for {
			a, _, _ := s.agent.Act(obs)
			var done bool
			obs, _, done = s.evalEnv.Step(a)
			if done {
				break
			}
		}
		info := s.evalEnv.LastEpisode()
		if info.Leaky && info.Distinct > bestN {
			bestN = info.Distinct
			out.Converged = info.Pattern
			out.ConvergedT = info.T
			out.ConvergedLeaky = true
			out.ConvergedModel = info.Model
		}
	}
	if bestN >= 0 {
		return
	}
	for _, r := range s.log.Leaky(0) {
		if r.Distinct > bestN {
			bestN = r.Distinct
			out.Converged = r.Pattern
			out.ConvergedT = r.T
			out.ConvergedLeaky = true
			out.ConvergedModel = r.Model
		}
	}
}
