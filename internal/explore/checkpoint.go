package explore

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"

	"repro/internal/bitvec"
	"repro/internal/checkpoint"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/prng"
	"repro/internal/rl/ppo"
)

// SessionCheckpointKind tags session checkpoints inside the envelope of
// internal/checkpoint, so a file of another kind (a faultsim stage
// checkpoint, say) is rejected with checkpoint.ErrKind instead of being
// gob-decoded into garbage.
const SessionCheckpointKind = "explore-session"

// DefaultCheckpointEvery is the periodic-write cadence (in episodes) when
// SessionConfig.Checkpoint is set but CheckpointEvery is not.
const DefaultCheckpointEvery = 500

// Checkpoint is a session snapshot taken at a PPO update boundary. It
// captures every piece of mutable training state — agent parameters and
// optimizer moments, all PRNG positions, the run counters, and the
// episode log (the running Outcome accumulators are derived from it) —
// so that a session restored from it replays the remaining episodes
// bit-identically to a never-interrupted run.
//
// The oracle memoization cache is deliberately not captured: memoization
// is exact (engine assessments are pure functions of seed, pattern and
// round), so a cold cache changes timing and hit/miss counters but not a
// single result. Dropping it keeps checkpoints small and the format
// independent of cache internals.
type Checkpoint struct {
	// Fingerprint guards resumes: it hashes the session configuration
	// fields that determine the training stream, and RestoreCheckpoint
	// refuses a snapshot whose fingerprint does not match the session it
	// is restored into. Label is a human-readable descriptor (cipher,
	// round, sample count, ...) folded into the fingerprint by the caller
	// via SessionConfig.CheckpointLabel.
	Fingerprint uint64
	Label       string

	Episodes   int
	Steps      int
	BestLeakyN int
	SinceLeaky int
	LeakyTotal int

	Agent   ppo.State
	Root    prng.State
	EnvRNGs []prng.State // one per env oracle, then the eval oracle

	Records []CheckpointRecord
}

// CheckpointRecord is one training-log episode in serializable form
// (bitvec.Vector has unexported fields, so patterns travel as their set
// bits plus width).
type CheckpointRecord struct {
	Width    int
	Bits     []int
	Distinct int
	Model    fault.Model // absent in pre-zoo checkpoints; gob decodes it as XorFlip
	T        float64
	Leaky    bool
	Reward   float64
}

// LoadCheckpoint reads and validates a session checkpoint file. A missing
// file surfaces as fs.ErrNotExist; corrupted, truncated, version-skewed
// or wrong-kind files surface as the sentinel errors of
// internal/checkpoint.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	var ck Checkpoint
	if err := checkpoint.Load(path, SessionCheckpointKind, &ck); err != nil {
		return nil, err
	}
	return &ck, nil
}

// fingerprint hashes the configuration fields that determine the training
// stream. Episodes is deliberately excluded: the budget only decides
// where the stream stops, so a checkpoint may be resumed with a larger
// -episodes to extend a finished run. FinalRollouts is excluded for the
// same reason (it only shapes the post-training readout).
func (s *Session) fingerprint() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%d|%+v|%+v|%x|%x|%x|%d|%s",
		s.cfg.Seed, s.cfg.NumEnvs, s.raw[0].ObsSize(),
		s.cfg.Env, s.cfg.Agent,
		math.Float64bits(s.cfg.Gamma), math.Float64bits(s.cfg.Lambda),
		math.Float64bits(s.cfg.BootstrapSpike), s.cfg.RespikeAfter,
		s.cfg.CheckpointLabel)
	return h.Sum64()
}

// snapshot captures the session state at the current update boundary.
// It must only be called between updates (Run's loop does), when no
// collector goroutines are running.
func (s *Session) snapshot() *Checkpoint {
	ck := &Checkpoint{
		Fingerprint: s.fingerprint(),
		Label:       s.cfg.CheckpointLabel,
		Episodes:    s.run.episodes,
		Steps:       s.run.steps,
		BestLeakyN:  s.run.bestLeakyN,
		SinceLeaky:  s.run.sinceLeaky,
		LeakyTotal:  s.run.leakyTotal,
		Agent:       s.agent.State(),
		Root:        s.rng.State(),
	}
	for _, r := range s.envRngs {
		ck.EnvRNGs = append(ck.EnvRNGs, r.State())
	}
	for _, rec := range s.log.Records() {
		ck.Records = append(ck.Records, CheckpointRecord{
			Width:    rec.Pattern.Len(),
			Bits:     rec.Pattern.Bits(),
			Distinct: rec.Distinct,
			Model:    rec.Model,
			T:        rec.T,
			Leaky:    rec.Leaky,
			Reward:   rec.Reward,
		})
	}
	return ck
}

// RestoreCheckpoint rewinds a freshly constructed session to a snapshot.
// The session must have been built with the same factory and an
// equivalent SessionConfig (enforced via the fingerprint); afterwards Run
// continues from the snapshot's episode count and reproduces the
// uninterrupted run bit-for-bit. Restoring into a session that already
// ran is not supported.
func (s *Session) RestoreCheckpoint(ck *Checkpoint) error {
	if ck == nil {
		return errors.New("explore: nil checkpoint")
	}
	if got, want := ck.Fingerprint, s.fingerprint(); got != want {
		return fmt.Errorf("explore: checkpoint %q (fingerprint %016x) does not match this session (%016x); resume requires the same seed, cipher and configuration", ck.Label, got, want)
	}
	if len(ck.EnvRNGs) != len(s.envRngs) {
		return fmt.Errorf("explore: checkpoint has %d oracle PRNG streams, session has %d", len(ck.EnvRNGs), len(s.envRngs))
	}
	if len(ck.Records) != ck.Episodes {
		return fmt.Errorf("explore: checkpoint log has %d records for %d episodes", len(ck.Records), ck.Episodes)
	}
	if err := s.agent.Restore(ck.Agent); err != nil {
		return fmt.Errorf("explore: %w", err)
	}
	if err := s.rng.Restore(ck.Root); err != nil {
		return fmt.Errorf("explore: root rng: %w", err)
	}
	for i, st := range ck.EnvRNGs {
		if err := s.envRngs[i].Restore(st); err != nil {
			return fmt.Errorf("explore: oracle rng %d: %w", i, err)
		}
	}
	records := make([]Record, len(ck.Records))
	for i, cr := range ck.Records {
		records[i] = Record{
			Episode:  i,
			Pattern:  bitvec.FromBits(cr.Width, cr.Bits...),
			Distinct: cr.Distinct,
			Model:    cr.Model,
			T:        cr.T,
			Leaky:    cr.Leaky,
			Reward:   cr.Reward,
		}
	}
	s.log.restore(records)
	s.run = runCounters{
		episodes:   ck.Episodes,
		steps:      ck.Steps,
		bestLeakyN: ck.BestLeakyN,
		sinceLeaky: ck.SinceLeaky,
		leakyTotal: ck.LeakyTotal,
	}
	s.resumedAt = ck.Episodes
	if s.obs.enabled {
		s.obs.events.Emit(obs.EventCheckpointResumed, map[string]any{
			"episodes": ck.Episodes,
			"label":    ck.Label,
		})
	}
	return nil
}
