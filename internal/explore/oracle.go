// Package explore implements the paper's primary contribution: the
// ExploreFault Markov decision process over fault patterns, the training
// orchestration that runs PPO on it, and the training log from which
// fault models are harvested.
//
// The MDP (§III-B, §III-E): the state is a binary vector over the cipher
// state bits marking where faults will be injected; an action selects one
// bit; the episode runs for T steps (T = number of state bits); all
// intermediate rewards are zero, and the terminal reward is β (< 0) if the
// final pattern shows no information leakage, or e^n (n = distinct bits
// selected) if it does. Table II's slow variant computes the reward at
// every step; Fig. 3's weak variant uses the linear reward n.
//
// When the environment is configured with more than one typed fault model
// (EnvConfig.Models), the action space is widened with one model-select
// action per model, so the agent searches over fault type as well as bit
// set; single-model configurations keep the paper's exact action encoding,
// which is what keeps old checkpoints loadable.
package explore

import (
	"context"

	"repro/internal/bitvec"
	"repro/internal/fault"
	"repro/internal/leakage"
)

// Oracle decides the information leakage of a fault pattern under a typed
// fault model. It is the abstraction boundary between the RL machinery and
// the cipher world: unprotected ciphers use AssessorOracle; the
// duplication countermeasure provides its own implementation (package
// countermeasure).
type Oracle interface {
	// Evaluate returns the leakage statistic l for the pattern under the
	// given fault model (fault.XorFlip is the paper's bit-flip model). A
	// done ctx aborts the underlying campaign at its next shard boundary
	// and returns ctx.Err().
	Evaluate(ctx context.Context, pattern *bitvec.Vector, model fault.Model) (float64, error)
	// StateBits is the width of patterns this oracle accepts.
	StateBits() int
	// Threshold is the exploitability threshold θ.
	Threshold() float64
}

// AssessorOracle adapts a leakage.Assessor with a fixed injection round to
// the Oracle interface.
type AssessorOracle struct {
	Assessor *leakage.Assessor
	Round    int
}

var _ Oracle = (*AssessorOracle)(nil)

// Evaluate implements Oracle.
func (o *AssessorOracle) Evaluate(ctx context.Context, pattern *bitvec.Vector, model fault.Model) (float64, error) {
	res, err := o.Assessor.AssessModel(ctx, pattern, o.Round, model)
	if err != nil {
		return 0, err
	}
	return res.T, nil
}

// StateBits implements Oracle.
func (o *AssessorOracle) StateBits() int { return o.Assessor.StateBits() }

// InjectionRound implements Rounder for memoization keys.
func (o *AssessorOracle) InjectionRound() int { return o.Round }

// Threshold implements Oracle.
func (o *AssessorOracle) Threshold() float64 { return o.Assessor.Threshold() }
