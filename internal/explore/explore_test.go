package explore

import (
	"context"
	"math"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/fault"
	"repro/internal/prng"
	"repro/internal/rl/ppo"
)

// subsetOracle reports leakage 100 iff the pattern is a non-empty subset
// of its allowed bits (a stylized diagonal), else 1. This mirrors the real
// oracle's geometry while being instant.
type subsetOracle struct {
	bits    int
	allowed bitvec.Vector
	calls   int
}

func (o *subsetOracle) Evaluate(_ context.Context, p *bitvec.Vector, _ fault.Model) (float64, error) {
	o.calls++
	if !p.IsZero() && p.SubsetOf(&o.allowed) {
		return 100, nil
	}
	return 1, nil
}
func (o *subsetOracle) StateBits() int     { return o.bits }
func (o *subsetOracle) Threshold() float64 { return 4.5 }

func newSubsetOracle(bits int, allowed ...int) *subsetOracle {
	return &subsetOracle{bits: bits, allowed: bitvec.FromBits(bits, allowed...)}
}

func TestEnvEpisodeMechanics(t *testing.T) {
	oracle := newSubsetOracle(16, 3, 5)
	env := NewEnv(oracle, EnvConfig{})
	obs := env.Reset()
	if len(obs) != 16 {
		t.Fatalf("obs size %d", len(obs))
	}
	for _, v := range obs {
		if v != 0 {
			t.Fatal("initial observation not all-zero")
		}
	}
	// Episode length defaults to state bits (16).
	var done bool
	var reward float64
	for i := 0; i < 16; i++ {
		if done {
			t.Fatal("episode ended early")
		}
		obs, reward, done = env.Step(3) // keep selecting bit 3
	}
	if !done {
		t.Fatal("episode did not end at T steps")
	}
	if obs[3] != 1 {
		t.Error("bit 3 not reflected in observation")
	}
	info := env.LastEpisode()
	if info.Distinct != 1 {
		t.Errorf("distinct = %d, want 1 (repeats are no-ops)", info.Distinct)
	}
	if !info.Leaky {
		t.Error("subset pattern should be leaky")
	}
	if math.Abs(reward-math.E) > 1e-9 {
		t.Errorf("reward = %v, want e^1", reward)
	}
	if len(info.Bits) != 1 || info.Bits[0] != 3 {
		t.Errorf("arr_bit = %v", info.Bits)
	}
}

func TestEnvIntermediateRewardsZero(t *testing.T) {
	oracle := newSubsetOracle(8, 0, 1)
	env := NewEnv(oracle, EnvConfig{})
	env.Reset()
	for i := 0; i < 7; i++ {
		_, r, done := env.Step(i % 2)
		if r != 0 || done {
			t.Fatalf("step %d: reward %v done %v, want 0 false", i, r, done)
		}
	}
	// Only the final step triggers an oracle call in EndOfEpisode mode.
	if oracle.calls != 0 {
		t.Errorf("oracle called %d times before terminal step", oracle.calls)
	}
	env.Step(0)
	if oracle.calls != 1 {
		t.Errorf("oracle called %d times total, want 1", oracle.calls)
	}
}

func TestEnvBetaOnNonLeaky(t *testing.T) {
	oracle := newSubsetOracle(8, 0) // only bit 0 allowed
	env := NewEnv(oracle, EnvConfig{})
	env.Reset()
	var reward float64
	var done bool
	for i := 0; !done; i++ {
		_, reward, done = env.Step(5) // disallowed bit
	}
	if reward != DefaultBeta {
		t.Errorf("reward = %v, want β = %v", reward, DefaultBeta)
	}
	if env.LastEpisode().Leaky {
		t.Error("non-subset pattern marked leaky")
	}
}

func TestEnvLinearShape(t *testing.T) {
	oracle := newSubsetOracle(8, 0, 1, 2)
	env := NewEnv(oracle, EnvConfig{Shape: Linear, EpisodeLen: 3})
	env.Reset()
	env.Step(0)
	env.Step(1)
	_, reward, done := env.Step(2)
	if !done {
		t.Fatal("episode should end after EpisodeLen steps")
	}
	if reward != 3 {
		t.Errorf("linear reward = %v, want n = 3", reward)
	}
}

func TestEnvEachStepTiming(t *testing.T) {
	oracle := newSubsetOracle(8, 0, 1)
	env := NewEnv(oracle, EnvConfig{Timing: EachStep, EpisodeLen: 4})
	env.Reset()
	_, r, _ := env.Step(0)
	if r != math.E {
		t.Errorf("each-step reward after 1 bit = %v, want e", r)
	}
	if oracle.calls != 1 {
		t.Errorf("oracle calls = %d, want 1", oracle.calls)
	}
	env.Step(1)
	env.Step(5) // now outside allowed set
	if oracle.calls != 3 {
		t.Errorf("oracle calls = %d, want 3", oracle.calls)
	}
}

func TestEnvStepPanicsAfterDone(t *testing.T) {
	oracle := newSubsetOracle(4, 0)
	env := NewEnv(oracle, EnvConfig{EpisodeLen: 1})
	env.Reset()
	env.Step(0)
	defer func() {
		if recover() == nil {
			t.Fatal("Step after done did not panic")
		}
	}()
	env.Step(0)
}

func TestEnvActionBounds(t *testing.T) {
	oracle := newSubsetOracle(4, 0)
	env := NewEnv(oracle, EnvConfig{})
	env.Reset()
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range action did not panic")
		}
	}()
	env.Step(4)
}

func TestLogBucketsAndCounts(t *testing.T) {
	log := &Log{}
	for i := 0; i < 25; i++ {
		leaky := i%2 == 0
		pattern := bitvec.FromBits(16, i%3)
		log.Add(EpisodeInfo{Pattern: pattern, Distinct: 1, T: 10, Leaky: leaky})
	}
	if log.Len() != 25 {
		t.Fatalf("log length %d", log.Len())
	}
	buckets := log.Buckets(10)
	if len(buckets) != 3 {
		t.Fatalf("%d buckets, want 3", len(buckets))
	}
	if buckets[0].Episodes != 10 || buckets[2].Episodes != 5 {
		t.Errorf("bucket sizes wrong: %+v", buckets)
	}
	if buckets[0].LeakyCount != 5 {
		t.Errorf("bucket 0 leaky = %d, want 5", buckets[0].LeakyCount)
	}
	counts := log.PatternCounts(0)
	if len(counts) != 3 {
		t.Fatalf("%d distinct patterns, want 3", len(counts))
	}
	if counts[0].Count < counts[1].Count {
		t.Error("PatternCounts not sorted by frequency")
	}
	// Restricting to the first 10 episodes keeps only leaky ones there.
	first := log.Leaky(10)
	if len(first) != 5 {
		t.Errorf("leaky in first 10 = %d, want 5", len(first))
	}
}

func TestSessionLearnsSubsetTask(t *testing.T) {
	// End-to-end on the fake oracle: 24-bit state, 6 allowed bits.
	// A random 24-step episode covers ~15 distinct bits and is almost
	// never a subset of the 6 allowed ones, so the agent must learn.
	allowed := []int{3, 7, 11, 15, 19, 23}
	factory := func(rng *prng.Source) (Oracle, error) {
		return newSubsetOracle(24, allowed...), nil
	}
	sess, err := NewSession(factory, SessionConfig{
		Seed:     11,
		NumEnvs:  4,
		Episodes: 600,
		Agent:    ppo.Config{LearningRate: 1e-3, Epochs: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out.Episodes < 600 {
		t.Errorf("ran %d episodes, want >= 600", out.Episodes)
	}
	if !out.ConvergedLeaky {
		t.Fatal("session did not converge to a leaky pattern")
	}
	allowedVec := bitvec.FromBits(24, allowed...)
	if !out.Converged.SubsetOf(&allowedVec) {
		t.Errorf("converged pattern %v escapes allowed set", out.Converged.String())
	}
	// Late training should produce leaky episodes much more often than
	// the ~0 rate of a random policy.
	recs := out.Log.Records()
	late := recs[len(recs)-100:]
	leaky := 0
	for _, r := range late {
		if r.Leaky {
			leaky++
		}
	}
	if leaky < 30 {
		t.Errorf("only %d/100 late episodes leaky; agent did not learn", leaky)
	}
}

func TestSessionProgressCallback(t *testing.T) {
	factory := func(rng *prng.Source) (Oracle, error) {
		return newSubsetOracle(8, 1), nil
	}
	var calls int
	sess, err := NewSession(factory, SessionConfig{
		Seed: 3, NumEnvs: 2, Episodes: 20,
		Progress: func(p Progress) {
			calls++
			if p.Episodes == 0 {
				t.Error("progress with zero episodes")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Error("progress callback never invoked")
	}
}

func TestSessionFactoryError(t *testing.T) {
	factory := func(rng *prng.Source) (Oracle, error) {
		return nil, errTest
	}
	if _, err := NewSession(factory, SessionConfig{}); err == nil {
		t.Error("NewSession swallowed factory error")
	}
}

var errTest = errorString("factory failed")

type errorString string

func (e errorString) Error() string { return string(e) }
