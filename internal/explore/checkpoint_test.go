package explore

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/fault"
	"repro/internal/prng"
	"repro/internal/rl/ppo"
)

func checkpointTestConfig(path string, episodes int) SessionConfig {
	return SessionConfig{
		Seed:            11,
		NumEnvs:         3,
		Episodes:        episodes,
		Agent:           ppo.Config{LearningRate: 1e-3, Epochs: 2},
		Checkpoint:      path,
		CheckpointEvery: 1, // snapshot at every update boundary
		CheckpointLabel: "unit-test",
	}
}

func subsetFactory(bits int, allowed ...int) OracleFactory {
	return func(rng *prng.Source) (Oracle, error) {
		return newSubsetOracle(bits, allowed...), nil
	}
}

// TestSessionCheckpointResumeBitIdentical interrupts a session at an
// episode boundary (via context cancellation), rebuilds a fresh session
// from the checkpoint file, and requires the resumed run to reproduce the
// uninterrupted outcome exactly — converged pattern, log records, and all
// counters.
func TestSessionCheckpointResumeBitIdentical(t *testing.T) {
	dir := t.TempDir()
	allowed := []int{1, 4, 7}
	const episodes = 30

	runFull := func() *Outcome {
		sess, err := NewSession(subsetFactory(12, allowed...), checkpointTestConfig("", episodes))
		if err != nil {
			t.Fatal(err)
		}
		out, err := sess.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := runFull()

	for _, k := range []int{0, 9, 21} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			path := filepath.Join(dir, fmt.Sprintf("ck-%d.bin", k))

			// Phase 1: run to ~k episodes, then cancel.
			ctx, cancel := context.WithCancel(context.Background())
			cfg := checkpointTestConfig(path, episodes)
			if k == 0 {
				cancel() // interrupt before the first episode
			} else {
				n := k
				cfg.Progress = func(p Progress) {
					if p.Episodes >= n {
						cancel()
					}
				}
			}
			sess, err := NewSession(subsetFactory(12, allowed...), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sess.Run(ctx); !errors.Is(err, context.Canceled) {
				t.Fatalf("interrupted run returned %v, want context.Canceled", err)
			}
			cancel()

			// Phase 2: fresh session, restore, run to completion.
			ck, err := LoadCheckpoint(path)
			if err != nil {
				t.Fatal(err)
			}
			if ck.Episodes > episodes {
				t.Fatalf("checkpoint at %d episodes, beyond the %d budget", ck.Episodes, episodes)
			}
			resumed, err := NewSession(subsetFactory(12, allowed...), checkpointTestConfig(path, episodes))
			if err != nil {
				t.Fatal(err)
			}
			if err := resumed.RestoreCheckpoint(ck); err != nil {
				t.Fatal(err)
			}
			got, err := resumed.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}

			if !got.Converged.Equal(&want.Converged) {
				t.Errorf("converged pattern %s, want %s", got.Converged.String(), want.Converged.String())
			}
			if got.ConvergedT != want.ConvergedT || got.ConvergedLeaky != want.ConvergedLeaky {
				t.Errorf("readout (%v, %v), want (%v, %v)",
					got.ConvergedT, got.ConvergedLeaky, want.ConvergedT, want.ConvergedLeaky)
			}
			if got.Episodes != want.Episodes {
				t.Errorf("episodes %d, want %d", got.Episodes, want.Episodes)
			}
			if !reflect.DeepEqual(got.Log.Records(), want.Log.Records()) {
				t.Error("resumed training log differs from the uninterrupted run")
			}
		})
	}
}

// TestSessionCheckpointWrittenEagerly: a loadable checkpoint must exist as
// soon as Run starts, so an interrupt before the first update boundary
// still leaves resumable state on disk.
func TestSessionCheckpointWrittenEagerly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.bin")
	cfg := checkpointTestConfig(path, 6)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sess, err := NewSession(subsetFactory(8, 2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Episodes != 0 {
		t.Errorf("eager checkpoint at %d episodes, want 0", ck.Episodes)
	}
}

// TestRestoreCheckpointRejectsMismatch: snapshots from a different seed or
// label (standing in for cipher/round/key differences) must be refused.
func TestRestoreCheckpointRejectsMismatch(t *testing.T) {
	sess, err := NewSession(subsetFactory(8, 2), checkpointTestConfig("", 6))
	if err != nil {
		t.Fatal(err)
	}
	ck := sess.snapshot()

	otherSeed := checkpointTestConfig("", 6)
	otherSeed.Seed = 999
	other, err := NewSession(subsetFactory(8, 2), otherSeed)
	if err != nil {
		t.Fatal(err)
	}
	if err := other.RestoreCheckpoint(ck); err == nil {
		t.Error("RestoreCheckpoint accepted a snapshot from a different seed")
	}

	otherLabel := checkpointTestConfig("", 6)
	otherLabel.CheckpointLabel = "gift64|r25"
	relabeled, err := NewSession(subsetFactory(8, 2), otherLabel)
	if err != nil {
		t.Fatal(err)
	}
	if err := relabeled.RestoreCheckpoint(ck); err == nil {
		t.Error("RestoreCheckpoint accepted a snapshot with a different label")
	}

	if err := sess.RestoreCheckpoint(nil); err == nil {
		t.Error("RestoreCheckpoint accepted nil")
	}
}

// TestBudgetExtensionAfterResume: Episodes is excluded from the
// fingerprint, so a finished run's checkpoint can seed a longer one.
func TestBudgetExtensionAfterResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.bin")
	sess, err := NewSession(subsetFactory(8, 1, 3), checkpointTestConfig(path, 9))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	longer, err := NewSession(subsetFactory(8, 1, 3), checkpointTestConfig(path, 18))
	if err != nil {
		t.Fatal(err)
	}
	if err := longer.RestoreCheckpoint(ck); err != nil {
		t.Fatal(err)
	}
	out, err := longer.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out.Episodes != 18 {
		t.Errorf("extended run stopped at %d episodes, want 18", out.Episodes)
	}
}

// TestCancelledBatchNotTrained: rewards of a batch cut short by
// cancellation must never reach the agent — the session discards the batch
// before updating, so resumed training sees no placeholder β rewards.
func TestCancelledBatchNotTrained(t *testing.T) {
	// blockingOracle cancels the run context on its first evaluation;
	// Env.evaluate then returns β for every in-flight episode.
	var cancel context.CancelFunc
	var once sync.Once
	factory := func(rng *prng.Source) (Oracle, error) {
		return &funcOracle{bits: 8, fn: func(ctx context.Context, p *bitvec.Vector) (float64, error) {
			once.Do(cancel)
			if err := ctx.Err(); err != nil {
				return 0, err
			}
			return 1, nil
		}}, nil
	}
	path := filepath.Join(t.TempDir(), "ck.bin")
	cfg := checkpointTestConfig(path, 12)
	cfg.OracleCache = CacheConfig{Disable: true}
	sess, err := NewSession(factory, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var ctx context.Context
	ctx, cancel = context.WithCancel(context.Background())
	defer cancel()
	if _, err := sess.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	ck, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Episodes != 0 {
		t.Errorf("checkpoint recorded %d episodes from a discarded batch, want 0", ck.Episodes)
	}
}

// funcOracle adapts a function to the Oracle interface.
type funcOracle struct {
	bits int
	fn   func(context.Context, *bitvec.Vector) (float64, error)
}

func (o *funcOracle) Evaluate(ctx context.Context, p *bitvec.Vector, _ fault.Model) (float64, error) {
	return o.fn(ctx, p)
}
func (o *funcOracle) StateBits() int     { return o.bits }
func (o *funcOracle) Threshold() float64 { return 4.5 }
