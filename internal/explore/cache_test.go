package explore

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/fault"
	"repro/internal/prng"
)

// countingOracle counts real evaluations; leakage is a deterministic
// function of the pattern and fault model so cached replies can be
// checked for exactness.
type countingOracle struct {
	evals int
	round int
}

func (o *countingOracle) Evaluate(_ context.Context, p *bitvec.Vector, m fault.Model) (float64, error) {
	o.evals++
	return float64(p.Count()*10 + o.round + 100*int(m)), nil
}

func (o *countingOracle) StateBits() int      { return 16 }
func (o *countingOracle) Threshold() float64  { return 4.5 }
func (o *countingOracle) InjectionRound() int { return o.round }

func pat(bits ...int) bitvec.Vector { return bitvec.FromBits(16, bits...) }

func TestCachedOracleHitsAndMisses(t *testing.T) {
	inner := &countingOracle{round: 3}
	c := NewCachedOracle(inner, 8)

	p1, p2 := pat(1), pat(1, 2)
	for i := 0; i < 3; i++ {
		got, err := c.Evaluate(context.Background(), &p1, fault.XorFlip)
		if err != nil {
			t.Fatal(err)
		}
		if got != 13 {
			t.Fatalf("Evaluate(p1) = %v, want 13", got)
		}
	}
	if _, err := c.Evaluate(context.Background(), &p2, fault.XorFlip); err != nil {
		t.Fatal(err)
	}
	if inner.evals != 2 {
		t.Errorf("inner evaluated %d times, want 2", inner.evals)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 || st.Evictions != 0 {
		t.Errorf("stats = %+v, want 2 hits, 2 misses, 0 evictions", st)
	}
}

func TestCachedOracleEvicts(t *testing.T) {
	inner := &countingOracle{}
	c := NewCachedOracle(inner, 2)
	a, b, d := pat(1), pat(2), pat(3)

	mustEval := func(p *bitvec.Vector) {
		t.Helper()
		if _, err := c.Evaluate(context.Background(), p, fault.XorFlip); err != nil {
			t.Fatal(err)
		}
	}
	mustEval(&a) // cache: a
	mustEval(&b) // cache: b a
	mustEval(&a) // hit; cache: a b
	mustEval(&d) // evicts b; cache: d a
	mustEval(&b) // miss again
	st := c.Stats()
	if st.Evictions != 2 {
		t.Errorf("evictions = %d, want 2", st.Evictions)
	}
	if st.Hits != 1 {
		t.Errorf("hits = %d, want 1 (LRU should have kept the recently-used entry)", st.Hits)
	}
	if inner.evals != 4 {
		t.Errorf("inner evaluated %d times, want 4", inner.evals)
	}
}

func TestCachedOracleKeyedByRound(t *testing.T) {
	// Two oracles differing only in round must not share values even
	// though the cache key bytes come from the same pattern.
	p := pat(5)
	for _, round := range []int{1, 2} {
		c := NewCachedOracle(&countingOracle{round: round}, 4)
		got, err := c.Evaluate(context.Background(), &p, fault.XorFlip)
		if err != nil {
			t.Fatal(err)
		}
		want := float64(10 + round)
		if got != want {
			t.Errorf("round %d: got %v, want %v", round, got, want)
		}
		if c.InjectionRound() != round {
			t.Errorf("InjectionRound = %d, want %d", c.InjectionRound(), round)
		}
	}
}

// TestCachedOracleKeyedByModel: the same pattern under different fault
// models must hit distinct cache entries — the model byte is part of the
// memoization key, so stuck-at results can never shadow bit-flip results.
func TestCachedOracleKeyedByModel(t *testing.T) {
	inner := &countingOracle{round: 1}
	c := NewCachedOracle(inner, 8)
	p := pat(5)
	for _, m := range fault.Models() {
		for i := 0; i < 2; i++ { // second pass must be a pure cache hit
			got, err := c.Evaluate(context.Background(), &p, m)
			if err != nil {
				t.Fatal(err)
			}
			if want := float64(10 + 1 + 100*int(m)); got != want {
				t.Errorf("model %s: got %v, want %v", m, got, want)
			}
		}
	}
	n := len(fault.Models())
	if inner.evals != n {
		t.Errorf("inner evaluated %d times, want %d (one per model)", inner.evals, n)
	}
	if st := c.Stats(); st.Hits != uint64(n) || st.Misses != uint64(n) {
		t.Errorf("stats = %+v, want %d hits and %d misses", st, n, n)
	}
}

func TestCacheStatsAggregation(t *testing.T) {
	var total CacheStats
	total.Add(CacheStats{Hits: 3, Misses: 1})
	total.Add(CacheStats{Hits: 1, Misses: 1, Evictions: 2})
	if total.Hits != 4 || total.Misses != 2 || total.Evictions != 2 {
		t.Errorf("aggregated stats = %+v", total)
	}
	if hr := fmt.Sprintf("%.2f", total.HitRate()); hr != "0.67" {
		t.Errorf("hit rate = %s, want 0.67", hr)
	}
	if (CacheStats{}).HitRate() != 0 {
		t.Error("empty stats should have zero hit rate")
	}
}

// TestSessionExactEpisodeBudget: the final partial batch must land the
// session exactly on cfg.Episodes instead of overshooting by NumEnvs-1.
func TestSessionExactEpisodeBudget(t *testing.T) {
	sess, err := NewSession(func(rng *prng.Source) (Oracle, error) {
		return &countingOracle{}, nil
	}, SessionConfig{
		NumEnvs:        3,
		Episodes:       5, // not a multiple of NumEnvs
		Seed:           11,
		BootstrapSpike: -1,
		FinalRollouts:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := sess.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if out.Episodes != 5 {
		t.Errorf("session ran %d episodes, want exactly 5", out.Episodes)
	}
	if lookups := out.Cache.Hits + out.Cache.Misses; lookups == 0 {
		t.Error("cache counters never moved although the cache was enabled")
	}
}

// TestCachedOracleConcurrentAccess hammers one shared cache from many
// goroutines. The normal session path constructs one cache per env (see
// TestSessionBuildsOneCachePerEnv), but sharing must be a performance
// decision, not a data race — run under -race this is the regression test
// for the entries/lru/stats mutex.
func TestCachedOracleConcurrentAccess(t *testing.T) {
	inner := &countingOracle{round: 2}
	c := NewCachedOracle(inner, 16)
	patterns := make([]bitvec.Vector, 24)
	for i := range patterns {
		patterns[i] = pat(i%16, (i+5)%16)
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p := patterns[(g*31+i)%len(patterns)]
				got, err := c.Evaluate(context.Background(), &p, fault.XorFlip)
				if err != nil {
					t.Error(err)
					return
				}
				if want := float64(p.Count()*10 + 2); got != want {
					t.Errorf("Evaluate = %v, want %v", got, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	st := c.Stats()
	if st.Hits+st.Misses != 8*200 {
		t.Errorf("lookups = %d, want %d", st.Hits+st.Misses, 8*200)
	}
	// The mutex serializes misses, so the inner oracle runs exactly once
	// per miss — no duplicated campaigns.
	if inner.evals != int(st.Misses) {
		t.Errorf("inner evaluated %d times for %d misses", inner.evals, st.Misses)
	}
}

// TestSessionBuildsOneCachePerEnv pins the contention-free construction
// seam: every env (plus the eval oracle) gets its own memoization cache.
func TestSessionBuildsOneCachePerEnv(t *testing.T) {
	sess, err := NewSession(func(rng *prng.Source) (Oracle, error) {
		return &countingOracle{}, nil
	}, SessionConfig{NumEnvs: 4, Episodes: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(sess.caches) != 5 {
		t.Fatalf("session built %d caches, want 5 (4 envs + eval)", len(sess.caches))
	}
	seen := map[*CachedOracle]bool{}
	for _, c := range sess.caches {
		if c == nil {
			t.Fatal("nil cache although memoization is enabled")
		}
		if seen[c] {
			t.Fatal("two envs share one cache instance")
		}
		seen[c] = true
	}
}
