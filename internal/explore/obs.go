package explore

import (
	"context"
	"encoding/hex"
	"time"

	"repro/internal/bitvec"
	"repro/internal/fault"
	"repro/internal/obs"
)

// instrumentedOracle wraps an oracle (typically already cache-wrapped)
// with metrics and run events. It is only constructed when observability
// is enabled, so the disabled training path keeps its exact pre-existing
// call graph; the wrapper itself draws no randomness and therefore cannot
// perturb training determinism.
type instrumentedOracle struct {
	inner Oracle
	cache *CachedOracle // nil when memoization is disabled
	env   int
	evals *obs.Counter
	all   *obs.Histogram
	hit   *obs.Histogram
	miss  *obs.Histogram
	ev    *obs.Emitter
}

var _ Oracle = (*instrumentedOracle)(nil)

func newInstrumentedOracle(inner Oracle, cache *CachedOracle, env int, m *obs.Registry, ev *obs.Emitter) *instrumentedOracle {
	return &instrumentedOracle{
		inner: inner,
		cache: cache,
		env:   env,
		evals: m.Counter("oracle.evaluations_total"),
		all:   m.Histogram("oracle.evaluate_seconds", obs.LatencyBuckets),
		hit:   m.Histogram("oracle.cache_hit_seconds", obs.LatencyBuckets),
		miss:  m.Histogram("oracle.cache_miss_seconds", obs.LatencyBuckets),
		ev:    ev,
	}
}

// Evaluate implements Oracle, timing the inner evaluation and attributing
// it to the cache-hit or cache-miss latency band.
func (o *instrumentedOracle) Evaluate(ctx context.Context, pattern *bitvec.Vector, model fault.Model) (float64, error) {
	var hitsBefore uint64
	if o.cache != nil {
		hitsBefore = o.cache.Stats().Hits
	}
	start := time.Now()
	t, err := o.inner.Evaluate(ctx, pattern, model)
	d := time.Since(start)
	if err != nil {
		return t, err
	}
	o.evals.Inc()
	o.all.Observe(d.Seconds())
	cached := false
	if o.cache != nil {
		cached = o.cache.Stats().Hits > hitsBefore
		if cached {
			o.hit.Observe(d.Seconds())
		} else {
			o.miss.Observe(d.Seconds())
		}
	}
	o.ev.Emit(obs.EventOracleEval, map[string]any{
		"env":         o.env,
		"pattern":     hex.EncodeToString(pattern.Bytes()),
		"bits":        pattern.Count(),
		"fault_model": model.String(),
		"t":           t,
		"leaky":       t > o.inner.Threshold(),
		"cached":      cached,
		"duration_ms": float64(d) / float64(time.Millisecond),
	})
	return t, err
}

// StateBits implements Oracle.
func (o *instrumentedOracle) StateBits() int { return o.inner.StateBits() }

// Threshold implements Oracle.
func (o *instrumentedOracle) Threshold() float64 { return o.inner.Threshold() }

// InjectionRound forwards the inner oracle's round so wrapper stacking
// keeps memoization keys and diagnostics intact.
func (o *instrumentedOracle) InjectionRound() int {
	if r, ok := o.inner.(Rounder); ok {
		return r.InjectionRound()
	}
	return 0
}

// sessionObs holds the per-session instrument handles, resolved once at
// session construction. The zero value (observability disabled) keeps
// every update a nil-handle no-op.
type sessionObs struct {
	enabled     bool
	events      *obs.Emitter
	episodes    *obs.Counter
	leaky       *obs.Counter
	updates     *obs.Counter
	updTime     *obs.Histogram
	epsPerMin   *obs.Gauge
	leakyPer1K  *obs.Gauge
	entropy     *obs.Gauge
	cacheHits   *obs.Gauge
	cacheMisses *obs.Gauge
	cacheEvict  *obs.Gauge
}

func newSessionObs(m *obs.Registry, ev *obs.Emitter) sessionObs {
	return sessionObs{
		enabled:     m != nil || ev != nil,
		events:      ev,
		episodes:    m.Counter("explore.episodes_total"),
		leaky:       m.Counter("explore.leaky_episodes_total"),
		updates:     m.Counter("explore.ppo_updates_total"),
		updTime:     m.Histogram("explore.ppo_update_seconds", obs.LatencyBuckets),
		epsPerMin:   m.Gauge("explore.episodes_per_min"),
		leakyPer1K:  m.Gauge("explore.leaky_per_1k_episodes"),
		entropy:     m.Gauge("explore.policy_entropy"),
		cacheHits:   m.Gauge("oracle.cache_hits"),
		cacheMisses: m.Gauge("oracle.cache_misses"),
		cacheEvict:  m.Gauge("oracle.cache_evictions"),
	}
}

// syncCache mirrors the cumulative memoization counters into gauges.
func (so *sessionObs) syncCache(cs CacheStats) {
	so.cacheHits.Set(float64(cs.Hits))
	so.cacheMisses.Set(float64(cs.Misses))
	so.cacheEvict.Set(float64(cs.Evictions))
}
