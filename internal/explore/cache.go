package explore

import (
	"container/list"
	"context"
	"encoding/binary"
	"sync"

	"repro/internal/bitvec"
	"repro/internal/fault"
)

// DefaultCacheCapacity bounds a CachedOracle's memo table. Each entry is
// one pattern (a few dozen bytes) plus a float64, so the default is cheap;
// converged policies typically replay far fewer distinct patterns.
const DefaultCacheCapacity = 4096

// CacheConfig tunes oracle memoization in a session.
type CacheConfig struct {
	// Disable turns memoization off (ablation fidelity: every episode
	// pays the full simulation cost, as in the paper's timing runs).
	Disable bool
	// Capacity bounds the per-oracle LRU (default DefaultCacheCapacity).
	Capacity int
}

// CacheStats counts memoization traffic.
type CacheStats struct {
	Hits, Misses, Evictions uint64
}

// Add accumulates another oracle's counters.
func (s *CacheStats) Add(o CacheStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
}

// HitRate returns the fraction of lookups served from the cache.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Rounder is implemented by oracles whose leakage depends on an injection
// round (AssessorOracle, countermeasure.Oracle); CachedOracle folds the
// round into its keys so one cache never conflates rounds.
type Rounder interface {
	InjectionRound() int
}

type cacheEntry struct {
	key string
	t   float64
}

// CachedOracle memoizes an Oracle's Evaluate results in a bounded LRU
// keyed by pattern bytes (plus the injection round when the inner oracle
// implements Rounder). Memoization is exact because engine-backed oracles
// are pure functions of (seed, pattern, round): a converged policy that
// replays its terminal pattern pays zero simulation cost.
//
// Sessions construct one CachedOracle per environment (see NewSession),
// so the normal training path is contention-free; the mutex exists so
// that a cache shared across goroutines — vectorized envs handed one
// oracle instance, or an external caller probing Stats mid-run — is a
// performance decision, not a data race. Note the lock is held across the
// inner Evaluate: concurrent lookups of the same missing key serialize
// rather than duplicating a multi-second campaign.
type CachedOracle struct {
	inner    Oracle
	capacity int

	mu      sync.Mutex
	entries map[string]*list.Element
	lru     *list.List // front = most recent; values are *cacheEntry
	stats   CacheStats
}

var _ Oracle = (*CachedOracle)(nil)

// NewCachedOracle wraps inner with a memo table of the given capacity
// (0 selects DefaultCacheCapacity).
func NewCachedOracle(inner Oracle, capacity int) *CachedOracle {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	return &CachedOracle{
		inner:    inner,
		capacity: capacity,
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
	}
}

// Inner returns the wrapped oracle.
func (c *CachedOracle) Inner() Oracle { return c.inner }

// Stats returns the current memoization counters.
func (c *CachedOracle) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

func (c *CachedOracle) key(pattern *bitvec.Vector, model fault.Model) string {
	b := pattern.Bytes()
	k := make([]byte, 5+len(b))
	round := 0
	if r, ok := c.inner.(Rounder); ok {
		round = r.InjectionRound()
	}
	binary.LittleEndian.PutUint32(k, uint32(round))
	k[4] = byte(model)
	copy(k[5:], b)
	return string(k)
}

// Evaluate implements Oracle, serving repeated (pattern, model) pairs from
// the cache.
func (c *CachedOracle) Evaluate(ctx context.Context, pattern *bitvec.Vector, model fault.Model) (float64, error) {
	k := c.key(pattern, model)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		c.stats.Hits++
		c.lru.MoveToFront(el)
		return el.Value.(*cacheEntry).t, nil
	}
	c.stats.Misses++
	t, err := c.inner.Evaluate(ctx, pattern, model)
	if err != nil {
		return 0, err
	}
	c.entries[k] = c.lru.PushFront(&cacheEntry{key: k, t: t})
	if c.lru.Len() > c.capacity {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.stats.Evictions++
	}
	return t, nil
}

// StateBits implements Oracle.
func (c *CachedOracle) StateBits() int { return c.inner.StateBits() }

// Threshold implements Oracle.
func (c *CachedOracle) Threshold() float64 { return c.inner.Threshold() }

// InjectionRound forwards the inner oracle's round when it has one, so
// stacking wrappers keeps keys intact.
func (c *CachedOracle) InjectionRound() int {
	if r, ok := c.inner.(Rounder); ok {
		return r.InjectionRound()
	}
	return 0
}
