package explore

import (
	"context"
	"fmt"
	"math"

	"repro/internal/bitvec"
	"repro/internal/fault"
	"repro/internal/obs/trace"
	"repro/internal/rl"
)

// RewardTiming selects when the (expensive) leakage evaluation runs.
type RewardTiming int

const (
	// EndOfEpisode evaluates once, at the terminal step (§III-D's fix;
	// >115x faster training in the paper, Table II).
	EndOfEpisode RewardTiming = iota
	// EachStep evaluates after every action (the preliminary
	// formulation; kept for the Table II ablation).
	EachStep
)

// RewardShape selects the exploitability reward function.
type RewardShape int

const (
	// Exponential returns e^n for a leaky n-bit pattern (Equation (2)).
	Exponential RewardShape = iota
	// Linear returns n (Equation (1)); converges to ~3 bits in the
	// paper, kept for the Fig. 3 ablation.
	Linear
)

// DefaultBeta is the paper's penalty β for non-exploitable patterns.
const DefaultBeta = -50

// EnvConfig tunes the fault-pattern environment.
type EnvConfig struct {
	// Timing: when to evaluate leakage (default EndOfEpisode).
	Timing RewardTiming
	// Shape: exploitability reward shape (default Exponential).
	Shape RewardShape
	// Beta is the no-leakage penalty (default DefaultBeta).
	Beta float64
	// EpisodeLen is T; 0 means the paper's choice, the number of cipher
	// state bits.
	EpisodeLen int
	// Models is the set of typed fault models the agent can choose from.
	// Empty means {fault.XorFlip}: the paper's action encoding, bit- and
	// checkpoint-identical to the pre-zoo engine. With more than one
	// model, actions [StateBits, StateBits+len(Models)) select the model
	// of the episode's injection (the last selection wins; episodes start
	// on Models[0]) and the observation gains a one-hot model segment.
	Models []fault.Model
}

func (c *EnvConfig) setDefaults(stateBits int) {
	if c.Beta == 0 {
		c.Beta = DefaultBeta
	}
	if c.EpisodeLen == 0 {
		c.EpisodeLen = stateBits
	}
	if len(c.Models) == 0 {
		c.Models = []fault.Model{fault.XorFlip}
	}
}

// modelActions is the number of model-select actions: zero in the
// single-model (paper) encoding.
func (c *EnvConfig) modelActions() int {
	if len(c.Models) > 1 {
		return len(c.Models)
	}
	return 0
}

// EpisodeInfo summarizes the episode that just finished.
type EpisodeInfo struct {
	Pattern  bitvec.Vector // final fault pattern
	Bits     []int         // distinct bits in selection order (arr_bit)
	Distinct int           // n
	Model    fault.Model   // fault model of the episode's injection
	T        float64       // leakage statistic of the final pattern
	Leaky    bool
	Reward   float64 // terminal reward
}

// Env is the ExploreFault MDP for one oracle. Not safe for concurrent
// use; the session creates one env (and one oracle) per worker.
type Env struct {
	oracle Oracle
	cfg    EnvConfig
	ctx    context.Context

	state    bitvec.Vector
	obs      []float64
	arr      []int
	modelIdx int // index into cfg.Models of the episode's fault model
	step     int
	last     EpisodeInfo
	done     bool

	// lastT and lastLeaky carry the most recent oracle evaluation into
	// the terminal EpisodeInfo.
	lastT     float64
	lastLeaky bool

	// lane is this env's Perfetto track (assigned by the session);
	// epSpan brackets the in-flight episode from Reset to the terminal
	// Step. The runner may Reset and Step one env on different
	// goroutines, so episode spans are started cross-goroutine (no
	// runtime/trace region). spanCtx carries the episode span to oracle
	// evaluations so assessments nest under their episode.
	lane    int64
	epSpan  *trace.Span
	spanCtx context.Context
}

var _ rl.Env = (*Env)(nil)

// NewEnv creates an environment around an oracle.
func NewEnv(oracle Oracle, cfg EnvConfig) *Env {
	cfg.setDefaults(oracle.StateBits())
	e := &Env{
		oracle: oracle,
		cfg:    cfg,
		ctx:    context.Background(),
		state:  bitvec.New(oracle.StateBits()),
		obs:    make([]float64, oracle.StateBits()+cfg.modelActions()),
	}
	return e
}

// SetContext installs the context passed to oracle evaluations. Sessions
// call this with the run context so cancelling the run aborts in-flight
// campaigns; a cancelled evaluation yields the β penalty and the episode
// still terminates normally (its batch is discarded by the session, so
// the placeholder reward never reaches a PPO update).
func (e *Env) SetContext(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	e.ctx = ctx
}

// ObsSize implements rl.Env: the bit-selection state, plus a one-hot
// fault-model segment when the action space spans several models.
func (e *Env) ObsSize() int { return e.oracle.StateBits() + e.cfg.modelActions() }

// NumActions implements rl.Env: one action per state bit, plus one
// model-select action per fault model when more than one is configured
// (the single-model encoding is exactly the paper's).
func (e *Env) NumActions() int { return e.oracle.StateBits() + e.cfg.modelActions() }

// Model returns the fault model currently selected for the in-flight (or
// just-finished) episode.
func (e *Env) Model() fault.Model { return e.cfg.Models[e.modelIdx] }

// Reset implements rl.Env.
func (e *Env) Reset() []float64 {
	e.state.Reset()
	e.arr = e.arr[:0]
	e.modelIdx = 0
	e.step = 0
	e.done = false
	for i := range e.obs {
		e.obs[i] = 0
	}
	e.epSpan, e.spanCtx = trace.StartSpanCross(e.ctx, trace.SpanEpisode)
	e.epSpan.SetLane(e.lane)
	return e.stateAsObs()
}

// Step implements rl.Env. Actions below StateBits select the bit location
// to fault (a repeated location is a no-op append, exactly as in §III-E);
// actions at StateBits+m select fault model m for the episode's injection.
func (e *Env) Step(action int) ([]float64, float64, bool) {
	if e.done {
		panic("explore: Step on finished episode; call Reset")
	}
	if action < 0 || action >= e.NumActions() {
		panic(fmt.Sprintf("explore: action %d out of range [0,%d)", action, e.NumActions()))
	}
	if action >= e.state.Len() {
		e.modelIdx = action - e.state.Len()
	} else if !e.state.Bit(action) {
		e.state.Set(action)
		e.arr = append(e.arr, action)
	}
	e.step++
	terminal := e.step >= e.cfg.EpisodeLen

	var reward float64
	if e.cfg.Timing == EachStep || terminal {
		reward = e.evaluate()
	}
	if terminal {
		e.done = true
		e.last = EpisodeInfo{
			Pattern:  e.state,
			Bits:     append([]int(nil), e.arr...),
			Distinct: len(e.arr),
			Model:    e.Model(),
			Reward:   reward,
		}
		e.last.T = e.lastT
		e.last.Leaky = e.lastLeaky
		e.epSpan.SetAttr("bits", len(e.arr))
		e.epSpan.SetAttr("fault_model", e.Model().String())
		e.epSpan.SetAttr("t", e.lastT)
		e.epSpan.SetAttr("leaky", e.lastLeaky)
		e.epSpan.SetAttr("reward", reward)
		e.epSpan.End()
	}
	return e.stateAsObs(), reward, terminal
}

// stateAsObs converts the bit state (and, in multi-model configurations,
// the one-hot model selection) to the float observation in place.
func (e *Env) stateAsObs() []float64 {
	for i := 0; i < e.state.Len(); i++ {
		if e.state.Bit(i) {
			e.obs[i] = 1
		} else {
			e.obs[i] = 0
		}
	}
	for m := 0; m < e.cfg.modelActions(); m++ {
		v := 0.0
		if m == e.modelIdx {
			v = 1
		}
		e.obs[e.state.Len()+m] = v
	}
	return e.obs
}

// evaluate runs the oracle on the current pattern and maps the statistic
// to the configured reward.
func (e *Env) evaluate() float64 {
	if e.state.IsZero() {
		// Possible only in multi-model configurations, when every step
		// was a model selection: an empty pattern injects nothing, so it
		// is non-leaky by definition and the oracle is not consulted.
		e.lastT, e.lastLeaky = 0, false
		return e.cfg.Beta
	}
	ctx := e.spanCtx
	if ctx == nil {
		ctx = e.ctx
	}
	sp, ctx := trace.StartSpan(ctx, trace.SpanOracleEval)
	sp.SetAttr("bits", len(e.arr))
	sp.SetAttr("fault_model", e.Model().String())
	t, err := e.oracle.Evaluate(ctx, &e.state, e.Model())
	sp.SetAttr("t", t)
	sp.SetAttr("leaky", err == nil && t > e.oracle.Threshold())
	sp.End()
	if err != nil {
		if e.ctx.Err() != nil {
			// Run cancelled mid-campaign: finish the episode with the
			// penalty reward so the collector can unwind; the session
			// discards this batch before any PPO update.
			e.lastT, e.lastLeaky = 0, false
			return e.cfg.Beta
		}
		// Other oracle errors indicate misconfiguration (wrong widths),
		// not runtime conditions; fail loudly.
		panic(fmt.Sprintf("explore: oracle evaluation failed: %v", err))
	}
	e.lastT = t
	e.lastLeaky = t > e.oracle.Threshold()
	if !e.lastLeaky {
		return e.cfg.Beta
	}
	n := float64(len(e.arr))
	if e.cfg.Shape == Linear {
		return n
	}
	return math.Exp(n)
}

// LastEpisode returns information about the most recently finished
// episode. Valid after Step returned done = true.
func (e *Env) LastEpisode() EpisodeInfo { return e.last }
