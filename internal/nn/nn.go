// Package nn is a minimal neural-network library sufficient for the PPO
// agent: dense layers with manual backpropagation, tanh/ReLU activations,
// softmax utilities for categorical policies, Xavier initialization, and
// the Adam optimizer. Everything is float64 and allocation-conscious; the
// networks involved are small (a few hundred units), so clarity wins over
// vectorization tricks.
package nn

import (
	"fmt"
	"math"

	"repro/internal/prng"
)

// Param is one trainable tensor with its gradient accumulator.
type Param struct {
	Val  []float64
	Grad []float64
}

// Activation selects the nonlinearity between hidden layers.
type Activation int

const (
	// Tanh is the default activation (matches Stable-Baselines3's
	// MlpPolicy, which the paper uses).
	Tanh Activation = iota
	// ReLU is provided for ablations.
	ReLU
)

func (a Activation) apply(x float64) float64 {
	if a == ReLU {
		if x < 0 {
			return 0
		}
		return x
	}
	return math.Tanh(x)
}

// derivFromOut computes the activation derivative from the activation
// output value (both tanh and ReLU allow this).
func (a Activation) derivFromOut(y float64) float64 {
	if a == ReLU {
		if y > 0 {
			return 1
		}
		return 0
	}
	return 1 - y*y
}

// Linear is a dense layer y = W x + b with W stored row-major (Out x In).
type Linear struct {
	In, Out int
	W, B    Param
}

// NewLinear creates a dense layer with Xavier/Glorot-uniform weights.
func NewLinear(in, out int, rng *prng.Source) *Linear {
	l := &Linear{
		In:  in,
		Out: out,
		W:   Param{Val: make([]float64, in*out), Grad: make([]float64, in*out)},
		B:   Param{Val: make([]float64, out), Grad: make([]float64, out)},
	}
	limit := math.Sqrt(6.0 / float64(in+out))
	for i := range l.W.Val {
		l.W.Val[i] = (2*rng.Float64() - 1) * limit
	}
	return l
}

// ScaleWeights multiplies all weights by f. PPO policy heads are
// conventionally initialized small (orthogonal gain 0.01) so the initial
// policy is near-uniform; scaling Xavier weights achieves the same effect.
func (l *Linear) ScaleWeights(f float64) {
	for i := range l.W.Val {
		l.W.Val[i] *= f
	}
}

func (l *Linear) forward(x, y []float64) {
	for o := 0; o < l.Out; o++ {
		s := l.B.Val[o]
		row := l.W.Val[o*l.In : (o+1)*l.In]
		for i, xv := range x {
			s += row[i] * xv
		}
		y[o] = s
	}
}

// backward accumulates parameter gradients given the layer input x and the
// upstream gradient gy, and writes the input gradient into gx (if gx is
// non-nil).
func (l *Linear) backward(x, gy, gx []float64) {
	for o := 0; o < l.Out; o++ {
		g := gy[o]
		l.B.Grad[o] += g
		row := l.W.Grad[o*l.In : (o+1)*l.In]
		wrow := l.W.Val[o*l.In : (o+1)*l.In]
		for i, xv := range x {
			row[i] += g * xv
			if gx != nil {
				gx[i] += g * wrow[i]
			}
		}
	}
}

// MLP is a multi-layer perceptron: hidden dense layers with a shared
// activation, then a linear output layer.
type MLP struct {
	layers []*Linear
	act    Activation
	// scratch buffers sized per layer, reused across calls.
	outs  [][]float64 // outs[k] = post-activation output of layer k (pre-activation for last)
	grads [][]float64
}

// NewMLP builds an MLP with the given layer sizes, e.g. sizes =
// [128, 64, 64, 10] gives two hidden layers of 64 units and a 10-unit
// linear output.
func NewMLP(sizes []int, act Activation, rng *prng.Source) *MLP {
	if len(sizes) < 2 {
		panic("nn: MLP needs at least input and output sizes")
	}
	m := &MLP{act: act}
	for i := 0; i+1 < len(sizes); i++ {
		m.layers = append(m.layers, NewLinear(sizes[i], sizes[i+1], rng))
	}
	m.outs = make([][]float64, len(m.layers))
	m.grads = make([][]float64, len(m.layers))
	for i, l := range m.layers {
		m.outs[i] = make([]float64, l.Out)
		m.grads[i] = make([]float64, l.In)
	}
	return m
}

// OutputLayer returns the final linear layer (for head-specific init).
func (m *MLP) OutputLayer() *Linear { return m.layers[len(m.layers)-1] }

// InSize returns the expected input width.
func (m *MLP) InSize() int { return m.layers[0].In }

// OutSize returns the output width.
func (m *MLP) OutSize() int { return m.layers[len(m.layers)-1].Out }

// Forward evaluates the network and returns its output slice, which is
// owned by the MLP and overwritten by the next call.
func (m *MLP) Forward(x []float64) []float64 {
	if len(x) != m.InSize() {
		panic(fmt.Sprintf("nn: input size %d, want %d", len(x), m.InSize()))
	}
	in := x
	for k, l := range m.layers {
		l.forward(in, m.outs[k])
		if k < len(m.layers)-1 {
			for i := range m.outs[k] {
				m.outs[k][i] = m.act.apply(m.outs[k][i])
			}
		}
		in = m.outs[k]
	}
	return m.outs[len(m.outs)-1]
}

// Backward accumulates parameter gradients for input x and upstream output
// gradient gradOut. It re-runs the forward pass internally to populate the
// activation caches, so it does not require a preceding Forward call with
// the same x.
func (m *MLP) Backward(x, gradOut []float64) {
	m.Forward(x)
	n := len(m.layers)
	gy := gradOut
	for k := n - 1; k >= 0; k-- {
		var in []float64
		if k == 0 {
			in = x
		} else {
			in = m.outs[k-1]
		}
		var gx []float64
		if k > 0 {
			gx = m.grads[k]
			for i := range gx {
				gx[i] = 0
			}
		}
		m.layers[k].backward(in, gy, gx)
		if k > 0 {
			// Chain through the activation of the previous layer.
			for i := range gx {
				gx[i] *= m.act.derivFromOut(m.outs[k-1][i])
			}
			gy = gx
		}
	}
}

// Params returns all trainable parameters.
func (m *MLP) Params() []Param {
	var ps []Param
	for _, l := range m.layers {
		ps = append(ps, l.W, l.B)
	}
	return ps
}

// ParamValues deep-copies the current parameter values, one slice per
// Param, for inclusion in a checkpoint. Gradients are transient (zeroed
// at the start of every update) and are deliberately not captured.
func ParamValues(params []Param) [][]float64 {
	vals := make([][]float64, len(params))
	for i, p := range params {
		vals[i] = append([]float64(nil), p.Val...)
	}
	return vals
}

// SetParamValues copies previously captured values back into the live
// parameter slices, validating shapes so a checkpoint from a different
// architecture cannot be silently applied.
func SetParamValues(params []Param, vals [][]float64) error {
	if len(vals) != len(params) {
		return fmt.Errorf("nn: restoring %d tensors into network with %d", len(vals), len(params))
	}
	for i, p := range params {
		if len(vals[i]) != len(p.Val) {
			return fmt.Errorf("nn: tensor %d has %d values, want %d", i, len(vals[i]), len(p.Val))
		}
	}
	for i, p := range params {
		copy(p.Val, vals[i])
	}
	return nil
}

// ZeroGrad clears all gradient accumulators.
func ZeroGrad(params []Param) {
	for _, p := range params {
		for i := range p.Grad {
			p.Grad[i] = 0
		}
	}
}

// ClipGradNorm rescales all gradients so their global L2 norm is at most
// maxNorm, returning the pre-clip norm (PPO uses max_grad_norm = 0.5).
func ClipGradNorm(params []Param, maxNorm float64) float64 {
	var sq float64
	for _, p := range params {
		for _, g := range p.Grad {
			sq += g * g
		}
	}
	norm := math.Sqrt(sq)
	if norm > maxNorm && norm > 0 {
		f := maxNorm / norm
		for _, p := range params {
			for i := range p.Grad {
				p.Grad[i] *= f
			}
		}
	}
	return norm
}

// Adam implements the Adam optimizer (Kingma & Ba) over a parameter set.
type Adam struct {
	params []Param
	lr     float64
	beta1  float64
	beta2  float64
	eps    float64
	t      int
	m, v   [][]float64
}

// NewAdam creates an Adam optimizer with standard hyperparameters
// (β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(params []Param, lr float64) *Adam {
	a := &Adam{params: params, lr: lr, beta1: 0.9, beta2: 0.999, eps: 1e-8}
	a.m = make([][]float64, len(params))
	a.v = make([][]float64, len(params))
	for i, p := range params {
		a.m[i] = make([]float64, len(p.Val))
		a.v[i] = make([]float64, len(p.Val))
	}
	return a
}

// SetLR updates the learning rate (for schedules).
func (a *Adam) SetLR(lr float64) { a.lr = lr }

// AdamState is a serializable snapshot of the optimizer moments. The
// hyperparameters (lr, betas, eps) are configuration, not state: they are
// re-derived from the run config on restore.
type AdamState struct {
	T    int
	M, V [][]float64
}

// State deep-copies the optimizer's step count and moment estimates.
func (a *Adam) State() AdamState {
	st := AdamState{T: a.t, M: make([][]float64, len(a.m)), V: make([][]float64, len(a.v))}
	for i := range a.m {
		st.M[i] = append([]float64(nil), a.m[i]...)
		st.V[i] = append([]float64(nil), a.v[i]...)
	}
	return st
}

// Restore copies a snapshot back into the optimizer, validating shapes.
func (a *Adam) Restore(st AdamState) error {
	if len(st.M) != len(a.m) || len(st.V) != len(a.v) {
		return fmt.Errorf("nn: adam snapshot has %d/%d moment tensors, want %d", len(st.M), len(st.V), len(a.m))
	}
	for i := range a.m {
		if len(st.M[i]) != len(a.m[i]) || len(st.V[i]) != len(a.v[i]) {
			return fmt.Errorf("nn: adam moment tensor %d has %d/%d values, want %d", i, len(st.M[i]), len(st.V[i]), len(a.m[i]))
		}
	}
	a.t = st.T
	for i := range a.m {
		copy(a.m[i], st.M[i])
		copy(a.v[i], st.V[i])
	}
	return nil
}

// Step applies one Adam update from the accumulated gradients and then
// leaves the gradients untouched (call ZeroGrad before the next
// accumulation).
func (a *Adam) Step() {
	a.t++
	bc1 := 1 - math.Pow(a.beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.beta2, float64(a.t))
	for i, p := range a.params {
		m, v := a.m[i], a.v[i]
		for j, g := range p.Grad {
			m[j] = a.beta1*m[j] + (1-a.beta1)*g
			v[j] = a.beta2*v[j] + (1-a.beta2)*g*g
			p.Val[j] -= a.lr * (m[j] / bc1) / (math.Sqrt(v[j]/bc2) + a.eps)
		}
	}
}

// Softmax writes softmax(logits) into probs (allocating if probs is nil)
// and returns it, using the max-subtraction trick for stability.
func Softmax(logits, probs []float64) []float64 {
	if probs == nil {
		probs = make([]float64, len(logits))
	}
	maxL := math.Inf(-1)
	for _, l := range logits {
		if l > maxL {
			maxL = l
		}
	}
	var sum float64
	for i, l := range logits {
		probs[i] = math.Exp(l - maxL)
		sum += probs[i]
	}
	for i := range probs {
		probs[i] /= sum
	}
	return probs
}

// SampleCategorical draws an index from the probability vector.
func SampleCategorical(probs []float64, rng *prng.Source) int {
	u := rng.Float64()
	var c float64
	for i, p := range probs {
		c += p
		if u < c {
			return i
		}
	}
	return len(probs) - 1
}

// Argmax returns the index of the largest element.
func Argmax(xs []float64) int {
	best, bi := math.Inf(-1), 0
	for i, x := range xs {
		if x > best {
			best, bi = x, i
		}
	}
	return bi
}

// LogProb returns log probs[i] with a floor to avoid -Inf.
func LogProb(probs []float64, i int) float64 {
	p := probs[i]
	if p < 1e-12 {
		p = 1e-12
	}
	return math.Log(p)
}

// Entropy returns the Shannon entropy of the distribution in nats.
func Entropy(probs []float64) float64 {
	var h float64
	for _, p := range probs {
		if p > 1e-12 {
			h -= p * math.Log(p)
		}
	}
	return h
}
