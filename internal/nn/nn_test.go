package nn

import (
	"math"
	"testing"

	"repro/internal/prng"
)

func TestLinearForwardKnownValues(t *testing.T) {
	l := NewLinear(2, 2, prng.New(1))
	copy(l.W.Val, []float64{1, 2, 3, 4}) // rows: [1 2], [3 4]
	copy(l.B.Val, []float64{0.5, -0.5})
	y := make([]float64, 2)
	l.forward([]float64{1, -1}, y)
	if math.Abs(y[0]-(-0.5)) > 1e-12 || math.Abs(y[1]-(-1.5)) > 1e-12 {
		t.Errorf("forward = %v, want [-0.5 -1.5]", y)
	}
}

// numericalGrad estimates d loss / d param via central differences.
func numericalGrad(f func() float64, p *float64) float64 {
	const h = 1e-6
	orig := *p
	*p = orig + h
	up := f()
	*p = orig - h
	down := f()
	*p = orig
	return (up - down) / (2 * h)
}

func TestMLPGradientsMatchNumerical(t *testing.T) {
	rng := prng.New(42)
	m := NewMLP([]int{3, 5, 2}, Tanh, rng)
	x := []float64{0.3, -0.7, 1.1}
	target := []float64{0.2, -0.4}

	// Loss = 0.5 * sum (y - target)^2; dL/dy = y - target.
	loss := func() float64 {
		y := m.Forward(x)
		var L float64
		for i := range y {
			d := y[i] - target[i]
			L += 0.5 * d * d
		}
		return L
	}
	y := m.Forward(x)
	gradOut := make([]float64, 2)
	for i := range y {
		gradOut[i] = y[i] - target[i]
	}
	params := m.Params()
	ZeroGrad(params)
	m.Backward(x, gradOut)

	for pi, p := range params {
		for j := range p.Val {
			want := numericalGrad(loss, &p.Val[j])
			got := p.Grad[j]
			if math.Abs(got-want) > 1e-5*(1+math.Abs(want)) {
				t.Fatalf("param %d[%d]: analytic grad %v, numerical %v", pi, j, got, want)
			}
		}
	}
}

func TestMLPGradientsReLU(t *testing.T) {
	rng := prng.New(43)
	m := NewMLP([]int{4, 6, 3}, ReLU, rng)
	x := []float64{0.9, -0.2, 0.4, -1.3}
	loss := func() float64 {
		y := m.Forward(x)
		var L float64
		for _, v := range y {
			L += v * v
		}
		return L
	}
	y := m.Forward(x)
	gradOut := make([]float64, 3)
	for i := range y {
		gradOut[i] = 2 * y[i]
	}
	params := m.Params()
	ZeroGrad(params)
	m.Backward(x, gradOut)
	for pi, p := range params {
		for j := range p.Val {
			want := numericalGrad(loss, &p.Val[j])
			got := p.Grad[j]
			if math.Abs(got-want) > 1e-5*(1+math.Abs(want)) {
				t.Fatalf("relu param %d[%d]: analytic %v, numerical %v", pi, j, got, want)
			}
		}
	}
}

func TestBackwardAccumulates(t *testing.T) {
	rng := prng.New(44)
	m := NewMLP([]int{2, 3, 1}, Tanh, rng)
	x := []float64{0.5, -0.5}
	g := []float64{1}
	params := m.Params()
	ZeroGrad(params)
	m.Backward(x, g)
	snapshot := make([]float64, len(params[0].Grad))
	copy(snapshot, params[0].Grad)
	m.Backward(x, g)
	for i := range snapshot {
		if math.Abs(params[0].Grad[i]-2*snapshot[i]) > 1e-12 {
			t.Fatal("gradients do not accumulate across Backward calls")
		}
	}
}

func TestAdamMinimizesQuadratic(t *testing.T) {
	// Minimize f(w) = sum (w - c)^2 directly through the Param/Adam API.
	c := []float64{3, -2, 0.5}
	p := Param{Val: []float64{0, 0, 0}, Grad: make([]float64, 3)}
	opt := NewAdam([]Param{p}, 0.05)
	for step := 0; step < 2000; step++ {
		ZeroGrad([]Param{p})
		for i := range p.Val {
			p.Grad[i] = 2 * (p.Val[i] - c[i])
		}
		opt.Step()
	}
	for i := range p.Val {
		if math.Abs(p.Val[i]-c[i]) > 1e-3 {
			t.Errorf("Adam converged to %v, want %v", p.Val, c)
			break
		}
	}
}

func TestMLPLearnsXOR(t *testing.T) {
	rng := prng.New(7)
	m := NewMLP([]int{2, 8, 1}, Tanh, rng)
	params := m.Params()
	opt := NewAdam(params, 0.01)
	data := [][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	labels := []float64{0, 1, 1, 0}
	var loss float64
	for epoch := 0; epoch < 3000; epoch++ {
		ZeroGrad(params)
		loss = 0
		for i, x := range data {
			y := m.Forward(x)
			d := y[0] - labels[i]
			loss += 0.5 * d * d
			m.Backward(x, []float64{d})
		}
		opt.Step()
	}
	if loss > 0.01 {
		t.Errorf("XOR training loss = %v, want < 0.01", loss)
	}
}

func TestClipGradNorm(t *testing.T) {
	p := Param{Val: make([]float64, 3), Grad: []float64{3, 4, 0}}
	norm := ClipGradNorm([]Param{p}, 1.0)
	if math.Abs(norm-5) > 1e-12 {
		t.Errorf("pre-clip norm = %v, want 5", norm)
	}
	var after float64
	for _, g := range p.Grad {
		after += g * g
	}
	if math.Abs(math.Sqrt(after)-1) > 1e-9 {
		t.Errorf("post-clip norm = %v, want 1", math.Sqrt(after))
	}
	// A small gradient is untouched.
	p2 := Param{Val: make([]float64, 2), Grad: []float64{0.1, 0.1}}
	ClipGradNorm([]Param{p2}, 1.0)
	if p2.Grad[0] != 0.1 {
		t.Error("clip modified a small gradient")
	}
}

func TestSoftmaxProperties(t *testing.T) {
	logits := []float64{1, 2, 3, 1000} // tests overflow stability too
	probs := Softmax(logits, nil)
	var sum float64
	for _, p := range probs {
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("invalid probability %v", p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("softmax sums to %v", sum)
	}
	if Argmax(probs) != 3 {
		t.Error("softmax argmax mismatch")
	}
}

func TestSoftmaxUniform(t *testing.T) {
	probs := Softmax([]float64{0, 0, 0, 0}, nil)
	for _, p := range probs {
		if math.Abs(p-0.25) > 1e-12 {
			t.Errorf("uniform softmax gave %v", probs)
			break
		}
	}
	if h := Entropy(probs); math.Abs(h-math.Log(4)) > 1e-9 {
		t.Errorf("uniform entropy = %v, want ln 4", h)
	}
}

func TestSampleCategoricalDistribution(t *testing.T) {
	rng := prng.New(5)
	probs := []float64{0.1, 0.6, 0.3}
	counts := make([]int, 3)
	const n = 30000
	for i := 0; i < n; i++ {
		counts[SampleCategorical(probs, rng)]++
	}
	for i, p := range probs {
		got := float64(counts[i]) / n
		if math.Abs(got-p) > 0.02 {
			t.Errorf("category %d sampled at rate %v, want %v", i, got, p)
		}
	}
}

func TestLogProbFloor(t *testing.T) {
	if lp := LogProb([]float64{0, 1}, 0); math.IsInf(lp, -1) {
		t.Error("LogProb returned -Inf for zero probability")
	}
}

func TestScaleWeights(t *testing.T) {
	l := NewLinear(4, 4, prng.New(9))
	before := make([]float64, len(l.W.Val))
	copy(before, l.W.Val)
	l.ScaleWeights(0.01)
	for i := range before {
		if math.Abs(l.W.Val[i]-0.01*before[i]) > 1e-15 {
			t.Fatal("ScaleWeights wrong")
		}
	}
}

func TestNewMLPPanicsOnTooFewSizes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMLP([1]) did not panic")
		}
	}()
	NewMLP([]int{1}, Tanh, prng.New(1))
}

func TestForwardPanicsOnWrongInput(t *testing.T) {
	m := NewMLP([]int{3, 2}, Tanh, prng.New(1))
	defer func() {
		if recover() == nil {
			t.Fatal("Forward with wrong input size did not panic")
		}
	}()
	m.Forward([]float64{1, 2})
}

func BenchmarkForward128x128(b *testing.B) {
	m := NewMLP([]int{128, 128, 128, 129}, Tanh, prng.New(1))
	x := make([]float64, 128)
	for i := 0; i < b.N; i++ {
		m.Forward(x)
	}
}

func BenchmarkBackward128x128(b *testing.B) {
	m := NewMLP([]int{128, 128, 128, 129}, Tanh, prng.New(1))
	x := make([]float64, 128)
	g := make([]float64, 129)
	for i := 0; i < b.N; i++ {
		m.Backward(x, g)
	}
}
