package nn

import (
	"testing"

	"repro/internal/prng"
)

func TestParamValuesRoundTrip(t *testing.T) {
	m := NewMLP([]int{3, 4, 2}, ReLU, prng.New(1))
	vals := ParamValues(m.Params())

	// Deep copy: mutating the snapshot must not touch the network.
	before := m.Params()[0].Val[0]
	vals[0][0] += 10
	if m.Params()[0].Val[0] != before {
		t.Fatal("ParamValues aliases the network parameters")
	}
	vals[0][0] -= 10

	other := NewMLP([]int{3, 4, 2}, ReLU, prng.New(2))
	if err := SetParamValues(other.Params(), vals); err != nil {
		t.Fatal(err)
	}
	in := []float64{0.3, -0.7, 1.1}
	a, b := m.Forward(in), other.Forward(in)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("output %d differs after SetParamValues: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSetParamValuesRejectsShapeMismatch(t *testing.T) {
	m := NewMLP([]int{3, 4, 2}, ReLU, prng.New(1))
	vals := ParamValues(m.Params())

	short := vals[:len(vals)-1]
	if err := SetParamValues(m.Params(), short); err == nil {
		t.Error("SetParamValues accepted wrong parameter count")
	}

	bad := ParamValues(m.Params())
	bad[1] = bad[1][:len(bad[1])-1]
	snapshot := ParamValues(m.Params())
	if err := SetParamValues(m.Params(), bad); err == nil {
		t.Error("SetParamValues accepted wrong slice length")
	}
	// Two-phase validation: the failed call must not have partially
	// written anything.
	after := ParamValues(m.Params())
	for i := range snapshot {
		for j := range snapshot[i] {
			if snapshot[i][j] != after[i][j] {
				t.Fatalf("param %d[%d] mutated by rejected SetParamValues", i, j)
			}
		}
	}
}

// TestAdamStateRestoreRoundTrip: an optimizer restored from a snapshot
// must take bit-identical steps to the original from that point on.
func TestAdamStateRestoreRoundTrip(t *testing.T) {
	train := func(m *MLP, opt *Adam, steps int) {
		in := []float64{0.5, -1, 2}
		for s := 0; s < steps; s++ {
			out := m.Forward(in)
			grad := make([]float64, len(out))
			for i := range grad {
				grad[i] = out[i] - 1
			}
			ZeroGrad(m.Params())
			m.Backward(in, grad)
			opt.Step()
		}
	}

	a := NewMLP([]int{3, 4, 2}, Tanh, prng.New(9))
	aOpt := NewAdam(a.Params(), 1e-2)
	train(a, aOpt, 5)

	weights := ParamValues(a.Params())
	optState := aOpt.State()

	// Mutating the snapshot must not touch the optimizer (deep copy).
	optState.M[0][0] += 1
	if aOpt.State().M[0][0] == optState.M[0][0] {
		t.Fatal("Adam.State aliases the optimizer moments")
	}
	optState.M[0][0] -= 1

	train(a, aOpt, 5)
	want := ParamValues(a.Params())

	b := NewMLP([]int{3, 4, 2}, Tanh, prng.New(1234))
	bOpt := NewAdam(b.Params(), 1e-2)
	if err := SetParamValues(b.Params(), weights); err != nil {
		t.Fatal(err)
	}
	if err := bOpt.Restore(optState); err != nil {
		t.Fatal(err)
	}
	train(b, bOpt, 5)
	got := ParamValues(b.Params())
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("param %d[%d]: restored training diverged: %v vs %v", i, j, got[i][j], want[i][j])
			}
		}
	}
}

func TestAdamRestoreRejectsShapeMismatch(t *testing.T) {
	m := NewMLP([]int{3, 4, 2}, ReLU, prng.New(1))
	opt := NewAdam(m.Params(), 1e-3)
	st := opt.State()
	st.M = st.M[:len(st.M)-1]
	if err := opt.Restore(st); err == nil {
		t.Error("Restore accepted wrong moment count")
	}
}
