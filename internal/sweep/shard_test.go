package sweep

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/fault"
)

// TestShardRangeMerge pins the horizontal fan-out contract: a sweep
// split into contiguous shard-range runs (as a multi-process job would
// assign them) merges back into the full atlas byte for byte.
func TestShardRangeMerge(t *testing.T) {
	base := Config{
		Cipher:  "gift64",
		Rounds:  []int{24, 25},
		Models:  []fault.Model{fault.XorFlip, fault.StuckAtZero},
		Samples: 64,
		Seed:    7,
		Workers: 2,
	}
	full, err := Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	// 2 rounds x 2 models x 16 nibbles = 64 cells = 4 shards.
	if got := full.TotalCells(); got != len(full.Cells) {
		t.Fatalf("TotalCells() = %d, atlas holds %d", got, len(full.Cells))
	}
	shards := (len(full.Cells) + ShardCells - 1) / ShardCells
	if shards < 2 {
		t.Fatalf("test geometry too small: %d shards", shards)
	}

	split := shards / 2
	loCfg, hiCfg := base, base
	loCfg.ShardLo, loCfg.ShardHi = 0, split
	hiCfg.ShardLo, hiCfg.ShardHi = split, shards
	lo, err := Run(context.Background(), loCfg)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Run(context.Background(), hiCfg)
	if err != nil {
		t.Fatal(err)
	}
	if lo.ShardLo != 0 || lo.ShardHi != split || hi.ShardLo != split || hi.ShardHi != shards {
		t.Fatalf("partial atlases carry wrong ranges: [%d,%d) and [%d,%d)",
			lo.ShardLo, lo.ShardHi, hi.ShardLo, hi.ShardHi)
	}
	if len(lo.Cells)+len(hi.Cells) != len(full.Cells) {
		t.Fatalf("partial cells %d+%d != full %d", len(lo.Cells), len(hi.Cells), len(full.Cells))
	}

	// Merge must reproduce the single-run document bitwise, regardless
	// of argument order.
	merged, err := Merge(hi, lo)
	if err != nil {
		t.Fatal(err)
	}
	wantBytes, err := full.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	gotBytes, err := merged.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotBytes, wantBytes) {
		t.Fatalf("merged atlas differs from the full run\nfull summary:   %+v\nmerged summary: %+v",
			full.Summary, merged.Summary)
	}

	// Misuse is reported, not silently mis-merged.
	if _, err := Merge(lo); err == nil {
		t.Error("Merge of an incomplete cover should fail")
	}
	if _, err := Merge(lo, lo); err == nil {
		t.Error("Merge of overlapping ranges should fail")
	}
	otherCfg := hiCfg
	otherCfg.Seed = 8
	other, err := Run(context.Background(), otherCfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(lo, other); err == nil {
		t.Error("Merge across different configurations should fail")
	}

	// Out-of-range shard windows are rejected up front.
	badCfg := base
	badCfg.ShardLo, badCfg.ShardHi = 3, 2
	if _, err := Run(context.Background(), badCfg); err == nil {
		t.Error("inverted shard range should fail")
	}
	badCfg.ShardLo, badCfg.ShardHi = 0, shards+1
	if _, err := Run(context.Background(), badCfg); err == nil {
		t.Error("shard range past the end should fail")
	}
}
