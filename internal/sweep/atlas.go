package sweep

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"

	"repro/internal/bitvec"
	"repro/internal/ciphers"
	"repro/internal/report"
)

// Schema tags the atlas JSON format. Readers reject other schemas.
const Schema = "explorefault-atlas/v1"

// Cell is one classified point of the fault space: a (round, positions,
// model) triple with its measured leakage.
type Cell struct {
	// Round is the 1-based injection round.
	Round int `json:"round"`
	// Pos lists the faulted position indices at the atlas granularity
	// (one entry for single-fault cells, two in order-2 mode), ascending.
	Pos []int `json:"pos"`
	// Model is the typed fault model name ("xor", "stuck-at-0", ...).
	Model string `json:"model"`
	// Order is the fault order: len(Pos).
	Order int `json:"order"`
	// T is the maximum |t| over observation points and t-test orders.
	T float64 `json:"t"`
	// StatOrder is the t-test order that produced T.
	StatOrder int `json:"stat_order"`
	// Point describes the observation point of T.
	Point string `json:"point"`
	// Exploitable reports T > the atlas threshold.
	Exploitable bool `json:"exploitable"`
}

// Summary aggregates an atlas.
type Summary struct {
	Cells       int     `json:"cells"`
	Exploitable int     `json:"exploitable"`
	MaxT        float64 `json:"max_t"`
	// ByModel / ByRound count exploitable cells per fault model and per
	// injection round (rounds keyed as decimal strings for JSON).
	ByModel map[string]int `json:"by_model"`
	ByRound map[string]int `json:"by_round"`
}

// Atlas is the machine-readable exploitability map of one keyed cipher:
// the sweep configuration followed by every enumerated cell in canonical
// order. An atlas is a pure function of its configuration (including the
// seed), so regenerating one is a byte-identical operation — the golden
// regression tests depend on that.
type Atlas struct {
	Schema    string   `json:"schema"`
	Cipher    string   `json:"cipher"`
	KeyHex    string   `json:"key"`
	Rounds    []int    `json:"rounds"`
	GranBits  int      `json:"gran_bits"`
	Positions int      `json:"positions"`
	Models    []string `json:"models"`
	Oracle    string   `json:"oracle"`
	Mode      string   `json:"mode"`
	Samples   int      `json:"samples"`
	MaxOrder  int      `json:"max_order"`
	GroupBits int      `json:"group_bits"`
	Threshold float64  `json:"threshold"`
	Order2    bool     `json:"order2"`
	Order2Cap int      `json:"order2_cap,omitempty"`
	Seed      uint64   `json:"seed"`
	// ShardLo/ShardHi are set on partial atlases only: the document
	// holds checkpoint shards [ShardLo, ShardHi) of the canonical cell
	// enumeration (see Config.ShardLo). A full atlas omits both.
	ShardLo int     `json:"shard_lo,omitempty"`
	ShardHi int     `json:"shard_hi,omitempty"`
	Cells   []Cell  `json:"cells"`
	Summary Summary `json:"summary"`
}

// buildAtlas assembles the atlas document from assessed cells.
func buildAtlas(cfg *Config, info ciphers.Info, key []byte, positions int, cells []Cell) *Atlas {
	models := make([]string, len(cfg.Models))
	for i, m := range cfg.Models {
		models[i] = m.String()
	}
	a := &Atlas{
		Schema:    Schema,
		Cipher:    cfg.Cipher,
		KeyHex:    hex.EncodeToString(key),
		Rounds:    cfg.Rounds,
		GranBits:  cfg.GranBits,
		Positions: positions,
		Models:    models,
		Oracle:    cfg.Oracle.String(),
		Mode:      cfg.Mode.String(),
		Samples:   cfg.Samples,
		MaxOrder:  cfg.MaxOrder,
		GroupBits: cfg.GroupBits,
		Threshold: cfg.Threshold,
		Order2:    cfg.Order2,
		Seed:      cfg.Seed,
		Cells:     cells,
		Summary:   summarize(cells),
	}
	if cfg.Order2 {
		a.Order2Cap = cfg.Order2Cap
	}
	return a
}

// summarize aggregates a cell list into the atlas summary. Shared by
// buildAtlas and Merge so a merged document's summary is byte-identical
// to a single-run one.
func summarize(cells []Cell) Summary {
	s := Summary{
		Cells:   len(cells),
		ByModel: map[string]int{},
		ByRound: map[string]int{},
	}
	for _, c := range cells {
		if c.T > s.MaxT {
			s.MaxT = c.T
		}
		if c.Exploitable {
			s.Exploitable++
			s.ByModel[c.Model]++
			s.ByRound[strconv.Itoa(c.Round)]++
		}
	}
	return s
}

// TotalCells computes the size of the full canonical cell enumeration
// from the atlas header alone, so a partial atlas knows how much of the
// space it covers.
func (a *Atlas) TotalCells() int {
	singles := len(a.Rounds) * len(a.Models) * a.Positions
	if !a.Order2 {
		return singles
	}
	pairs := a.Positions * (a.Positions - 1) / 2
	if a.Order2Cap > 0 && pairs > a.Order2Cap {
		pairs = a.Order2Cap
	}
	return singles + len(a.Rounds)*len(a.Models)*pairs
}

// Merge reassembles partial atlases (see Config.ShardLo/ShardHi) into
// the full document. The parts must share an identical configuration
// header and cover contiguous shard ranges starting at 0 that together
// span the whole cell enumeration; order of the arguments is free. The
// merged atlas is byte-identical to the one a single full run produces —
// shards are bit-deterministic, so multi-process fan-out is a pure
// reassembly.
func Merge(parts ...*Atlas) (*Atlas, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("sweep: merge of zero atlases")
	}
	sorted := make([]*Atlas, len(parts))
	copy(sorted, parts)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].ShardLo < sorted[j].ShardLo })

	header := func(a *Atlas) string {
		h := *a
		h.ShardLo, h.ShardHi = 0, 0
		h.Cells, h.Summary = nil, Summary{}
		data, _ := json.Marshal(&h)
		return string(data)
	}
	want := header(sorted[0])
	total := sorted[0].TotalCells()
	shards := (total + ShardCells - 1) / ShardCells

	var cells []Cell
	for i, p := range sorted {
		if header(p) != want {
			return nil, fmt.Errorf("sweep: merge: part %d has a different configuration header", i)
		}
		lo, hi := p.ShardLo, p.ShardHi
		if lo == 0 && hi == 0 {
			hi = shards // a full atlas is the degenerate partial
		}
		if lo*ShardCells != len(cells) {
			return nil, fmt.Errorf("sweep: merge: part %d starts at shard %d, want %d (ranges must be contiguous from 0)",
				i, lo, len(cells)/ShardCells)
		}
		wantCells := hi*ShardCells - lo*ShardCells
		if hi == shards {
			wantCells = total - lo*ShardCells
		}
		if len(p.Cells) != wantCells {
			return nil, fmt.Errorf("sweep: merge: part %d holds %d cells, range [%d, %d) needs %d",
				i, len(p.Cells), lo, hi, wantCells)
		}
		cells = append(cells, p.Cells...)
	}
	if len(cells) != total {
		return nil, fmt.Errorf("sweep: merge: parts cover %d of %d cells", len(cells), total)
	}

	merged := *sorted[0]
	merged.ShardLo, merged.ShardHi = 0, 0
	merged.Cells = cells
	merged.Summary = summarize(cells)
	return &merged, nil
}

// MarshalCanonical renders the atlas as its canonical byte form:
// two-space-indented JSON with a trailing newline. Equal atlases always
// produce equal bytes (struct field order is fixed, map keys are sorted
// by encoding/json), which is what makes "bit-identical across workers /
// paths / resumes" a plain bytes.Equal.
func (a *Atlas) MarshalCanonical() ([]byte, error) {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteFile writes the canonical form to path.
func (a *Atlas) WriteFile(path string) error {
	data, err := a.MarshalCanonical()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ReadFile loads and validates an atlas.
func ReadFile(path string) (*Atlas, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a Atlas
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("atlas %s: %w", path, err)
	}
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("atlas %s: %w", path, err)
	}
	return &a, nil
}

// Validate checks the structural invariants of an atlas document: the
// schema tag, cell/summary consistency, the exploitable ⇔ T > threshold
// contract, and position ranges. It does not re-run campaigns.
func (a *Atlas) Validate() error {
	if a.Schema != Schema {
		return fmt.Errorf("schema %q, want %q", a.Schema, Schema)
	}
	if a.Positions <= 0 || a.GranBits <= 0 {
		return fmt.Errorf("bad geometry: %d positions × %d bits", a.Positions, a.GranBits)
	}
	if len(a.Cells) != a.Summary.Cells {
		return fmt.Errorf("summary says %d cells, document has %d", a.Summary.Cells, len(a.Cells))
	}
	exploitable, maxT := 0, 0.0
	for i, c := range a.Cells {
		if len(c.Pos) == 0 || len(c.Pos) != c.Order {
			return fmt.Errorf("cell %d: order %d with %d positions", i, c.Order, len(c.Pos))
		}
		for _, p := range c.Pos {
			if p < 0 || p >= a.Positions {
				return fmt.Errorf("cell %d: position %d out of range 0..%d", i, p, a.Positions-1)
			}
		}
		if c.Exploitable != (c.T > a.Threshold) {
			return fmt.Errorf("cell %d: exploitable=%v but t=%.3f vs threshold %.3f",
				i, c.Exploitable, c.T, a.Threshold)
		}
		if c.Exploitable {
			exploitable++
		}
		if c.T > maxT {
			maxT = c.T
		}
	}
	if exploitable != a.Summary.Exploitable {
		return fmt.Errorf("summary says %d exploitable, cells hold %d", a.Summary.Exploitable, exploitable)
	}
	if maxT != a.Summary.MaxT {
		return fmt.Errorf("summary max_t %.6f, cells hold %.6f", a.Summary.MaxT, maxT)
	}
	return nil
}

// Heatmap renders the atlas's single-fault cells as a round × position
// grid of max t over models (order-2 pair cells are omitted: a pair has
// no single column). Threshold and labels come from the atlas.
func (a *Atlas) Heatmap() *report.Heatmap {
	col := "pos"
	switch a.GranBits {
	case 4:
		col = "nibble"
	case 8:
		col = "byte"
	}
	h := report.NewHeatmap(
		fmt.Sprintf("%s exploitability atlas (max t over %d model(s), threshold %.1f)",
			a.Cipher, len(a.Models), a.Threshold),
		"round", col, a.Threshold)
	for _, c := range a.Cells {
		if c.Order != 1 {
			continue
		}
		h.Set(c.Round, c.Pos[0], c.T)
	}
	return h
}

// patternFor builds the fault pattern covering the given positions at
// the given granularity.
func patternFor(stateBits, granBits int, pos []int) bitvec.Vector {
	v := bitvec.New(stateBits)
	for _, p := range pos {
		for j := 0; j < granBits; j++ {
			v.Set(p*granBits + j)
		}
	}
	return v
}

func defaultWorkers() int { return runtime.GOMAXPROCS(0) }
