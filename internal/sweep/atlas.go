package sweep

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"

	"repro/internal/bitvec"
	"repro/internal/ciphers"
	"repro/internal/report"
)

// Schema tags the atlas JSON format. Readers reject other schemas.
const Schema = "explorefault-atlas/v1"

// Cell is one classified point of the fault space: a (round, positions,
// model) triple with its measured leakage.
type Cell struct {
	// Round is the 1-based injection round.
	Round int `json:"round"`
	// Pos lists the faulted position indices at the atlas granularity
	// (one entry for single-fault cells, two in order-2 mode), ascending.
	Pos []int `json:"pos"`
	// Model is the typed fault model name ("xor", "stuck-at-0", ...).
	Model string `json:"model"`
	// Order is the fault order: len(Pos).
	Order int `json:"order"`
	// T is the maximum |t| over observation points and t-test orders.
	T float64 `json:"t"`
	// StatOrder is the t-test order that produced T.
	StatOrder int `json:"stat_order"`
	// Point describes the observation point of T.
	Point string `json:"point"`
	// Exploitable reports T > the atlas threshold.
	Exploitable bool `json:"exploitable"`
}

// Summary aggregates an atlas.
type Summary struct {
	Cells       int     `json:"cells"`
	Exploitable int     `json:"exploitable"`
	MaxT        float64 `json:"max_t"`
	// ByModel / ByRound count exploitable cells per fault model and per
	// injection round (rounds keyed as decimal strings for JSON).
	ByModel map[string]int `json:"by_model"`
	ByRound map[string]int `json:"by_round"`
}

// Atlas is the machine-readable exploitability map of one keyed cipher:
// the sweep configuration followed by every enumerated cell in canonical
// order. An atlas is a pure function of its configuration (including the
// seed), so regenerating one is a byte-identical operation — the golden
// regression tests depend on that.
type Atlas struct {
	Schema    string   `json:"schema"`
	Cipher    string   `json:"cipher"`
	KeyHex    string   `json:"key"`
	Rounds    []int    `json:"rounds"`
	GranBits  int      `json:"gran_bits"`
	Positions int      `json:"positions"`
	Models    []string `json:"models"`
	Oracle    string   `json:"oracle"`
	Mode      string   `json:"mode"`
	Samples   int      `json:"samples"`
	MaxOrder  int      `json:"max_order"`
	GroupBits int      `json:"group_bits"`
	Threshold float64  `json:"threshold"`
	Order2    bool     `json:"order2"`
	Order2Cap int      `json:"order2_cap,omitempty"`
	Seed      uint64   `json:"seed"`
	Cells     []Cell   `json:"cells"`
	Summary   Summary  `json:"summary"`
}

// buildAtlas assembles the atlas document from assessed cells.
func buildAtlas(cfg *Config, info ciphers.Info, key []byte, positions int, cells []Cell) *Atlas {
	models := make([]string, len(cfg.Models))
	for i, m := range cfg.Models {
		models[i] = m.String()
	}
	a := &Atlas{
		Schema:    Schema,
		Cipher:    cfg.Cipher,
		KeyHex:    hex.EncodeToString(key),
		Rounds:    cfg.Rounds,
		GranBits:  cfg.GranBits,
		Positions: positions,
		Models:    models,
		Oracle:    cfg.Oracle.String(),
		Mode:      cfg.Mode.String(),
		Samples:   cfg.Samples,
		MaxOrder:  cfg.MaxOrder,
		GroupBits: cfg.GroupBits,
		Threshold: cfg.Threshold,
		Order2:    cfg.Order2,
		Seed:      cfg.Seed,
		Cells:     cells,
		Summary: Summary{
			Cells:   len(cells),
			ByModel: map[string]int{},
			ByRound: map[string]int{},
		},
	}
	if cfg.Order2 {
		a.Order2Cap = cfg.Order2Cap
	}
	for _, c := range cells {
		if c.T > a.Summary.MaxT {
			a.Summary.MaxT = c.T
		}
		if c.Exploitable {
			a.Summary.Exploitable++
			a.Summary.ByModel[c.Model]++
			a.Summary.ByRound[strconv.Itoa(c.Round)]++
		}
	}
	return a
}

// MarshalCanonical renders the atlas as its canonical byte form:
// two-space-indented JSON with a trailing newline. Equal atlases always
// produce equal bytes (struct field order is fixed, map keys are sorted
// by encoding/json), which is what makes "bit-identical across workers /
// paths / resumes" a plain bytes.Equal.
func (a *Atlas) MarshalCanonical() ([]byte, error) {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// WriteFile writes the canonical form to path.
func (a *Atlas) WriteFile(path string) error {
	data, err := a.MarshalCanonical()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// ReadFile loads and validates an atlas.
func ReadFile(path string) (*Atlas, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a Atlas
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("atlas %s: %w", path, err)
	}
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("atlas %s: %w", path, err)
	}
	return &a, nil
}

// Validate checks the structural invariants of an atlas document: the
// schema tag, cell/summary consistency, the exploitable ⇔ T > threshold
// contract, and position ranges. It does not re-run campaigns.
func (a *Atlas) Validate() error {
	if a.Schema != Schema {
		return fmt.Errorf("schema %q, want %q", a.Schema, Schema)
	}
	if a.Positions <= 0 || a.GranBits <= 0 {
		return fmt.Errorf("bad geometry: %d positions × %d bits", a.Positions, a.GranBits)
	}
	if len(a.Cells) != a.Summary.Cells {
		return fmt.Errorf("summary says %d cells, document has %d", a.Summary.Cells, len(a.Cells))
	}
	exploitable, maxT := 0, 0.0
	for i, c := range a.Cells {
		if len(c.Pos) == 0 || len(c.Pos) != c.Order {
			return fmt.Errorf("cell %d: order %d with %d positions", i, c.Order, len(c.Pos))
		}
		for _, p := range c.Pos {
			if p < 0 || p >= a.Positions {
				return fmt.Errorf("cell %d: position %d out of range 0..%d", i, p, a.Positions-1)
			}
		}
		if c.Exploitable != (c.T > a.Threshold) {
			return fmt.Errorf("cell %d: exploitable=%v but t=%.3f vs threshold %.3f",
				i, c.Exploitable, c.T, a.Threshold)
		}
		if c.Exploitable {
			exploitable++
		}
		if c.T > maxT {
			maxT = c.T
		}
	}
	if exploitable != a.Summary.Exploitable {
		return fmt.Errorf("summary says %d exploitable, cells hold %d", a.Summary.Exploitable, exploitable)
	}
	if maxT != a.Summary.MaxT {
		return fmt.Errorf("summary max_t %.6f, cells hold %.6f", a.Summary.MaxT, maxT)
	}
	return nil
}

// Heatmap renders the atlas's single-fault cells as a round × position
// grid of max t over models (order-2 pair cells are omitted: a pair has
// no single column). Threshold and labels come from the atlas.
func (a *Atlas) Heatmap() *report.Heatmap {
	col := "pos"
	switch a.GranBits {
	case 4:
		col = "nibble"
	case 8:
		col = "byte"
	}
	h := report.NewHeatmap(
		fmt.Sprintf("%s exploitability atlas (max t over %d model(s), threshold %.1f)",
			a.Cipher, len(a.Models), a.Threshold),
		"round", col, a.Threshold)
	for _, c := range a.Cells {
		if c.Order != 1 {
			continue
		}
		h.Set(c.Round, c.Pos[0], c.T)
	}
	return h
}

// patternFor builds the fault pattern covering the given positions at
// the given granularity.
func patternFor(stateBits, granBits int, pos []int) bitvec.Vector {
	v := bitvec.New(stateBits)
	for _, p := range pos {
		for j := 0; j < granBits; j++ {
			v.Set(p*granBits + j)
		}
	}
	return v
}

func defaultWorkers() int { return runtime.GOMAXPROCS(0) }
