package sweep

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	_ "repro/internal/ciphers/aes"   // register aes128
	_ "repro/internal/ciphers/speck" // register speck64
	"repro/internal/fault"
)

// goldenConfigs are the checked-in reference atlases: reduced-round
// sweeps at low trace budgets, one per cipher family with a batch
// kernel. Regenerate with
//
//	ATLAS_GOLDEN_UPDATE=1 go test ./internal/sweep -run TestGoldenAtlas
//
// after an intentional change to the atlas format or the campaign
// pipeline; any unintentional byte difference is a determinism
// regression.
var goldenConfigs = map[string]Config{
	"aes128-r8.atlas.json": {
		Cipher:  "aes128",
		Rounds:  []int{8},
		Samples: 128,
		Seed:    7,
	},
	"gift64-r25.atlas.json": {
		Cipher:  "gift64",
		Rounds:  []int{25},
		Samples: 128,
		Models:  []fault.Model{fault.XorFlip, fault.StuckAtZero},
		Seed:    7,
	},
	"speck64-r24.atlas.json": {
		Cipher:  "speck64",
		Rounds:  []int{24},
		Samples: 128,
		Seed:    7,
	},
}

func TestGoldenAtlas(t *testing.T) {
	update := os.Getenv("ATLAS_GOLDEN_UPDATE") != ""
	for name, base := range goldenConfigs {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join("testdata", name)
			var ref []byte
			// Regeneration must be byte-identical across worker counts and
			// the batch/scalar cipher paths — the golden file pins all four.
			for _, tc := range []struct {
				workers int
				noBatch bool
			}{{1, false}, {4, false}, {1, true}, {4, true}} {
				cfg := base
				cfg.Workers = tc.workers
				cfg.NoBatch = tc.noBatch
				atlas, err := Run(context.Background(), cfg)
				if err != nil {
					t.Fatalf("workers=%d noBatch=%v: %v", tc.workers, tc.noBatch, err)
				}
				data, err := atlas.MarshalCanonical()
				if err != nil {
					t.Fatal(err)
				}
				if ref == nil {
					ref = data
				} else if !bytes.Equal(ref, data) {
					t.Fatalf("workers=%d noBatch=%v: atlas differs from workers=1 batch run", tc.workers, tc.noBatch)
				}
			}
			if update {
				if err := os.WriteFile(path, ref, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", path, len(ref))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with ATLAS_GOLDEN_UPDATE=1 to create)", err)
			}
			if !bytes.Equal(ref, want) {
				t.Errorf("regenerated atlas differs from golden %s: determinism or format regression (regen with ATLAS_GOLDEN_UPDATE=1 only if intentional)", path)
			}
			// The checked-in document must itself validate.
			if _, err := ReadFile(path); err != nil {
				t.Errorf("golden atlas fails validation: %v", err)
			}
		})
	}
}
