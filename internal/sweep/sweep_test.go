package sweep

import (
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"path/filepath"
	"testing"

	_ "repro/internal/ciphers/gift" // register gift64
	"repro/internal/fault"
)

func unmarshal(data []byte, a *Atlas) error { return json.Unmarshal(data, a) }

func hexOf(b []byte) string { return hex.EncodeToString(b) }

func TestEnumerateCanonicalOrder(t *testing.T) {
	cfg := Config{
		Rounds:    []int{2, 1},
		Models:    []fault.Model{fault.XorFlip, fault.StuckAtZero},
		Order2:    true,
		Order2Cap: 3,
	}
	cfg.Rounds = []int{1, 2} // setDefaults normally sorts; enumerate assumes sorted
	cells := enumerate(&cfg, 4)
	// Per (round, model): 4 singles + 3 capped pairs = 7; 2 rounds × 2 models.
	if len(cells) != 2*2*7 {
		t.Fatalf("enumerated %d cells, want 28", len(cells))
	}
	// First block: round 1, xor, singles 0..3 then pairs (0,1),(0,2),(0,3).
	want := [][]int{{0}, {1}, {2}, {3}, {0, 1}, {0, 2}, {0, 3}}
	for i, w := range want {
		c := cells[i]
		if c.Round != 1 || c.Model != fault.XorFlip {
			t.Fatalf("cell %d: round %d model %s", i, c.Round, c.Model)
		}
		if len(c.Pos) != len(w) {
			t.Fatalf("cell %d: pos %v, want %v", i, c.Pos, w)
		}
		for j := range w {
			if c.Pos[j] != w[j] {
				t.Fatalf("cell %d: pos %v, want %v", i, c.Pos, w)
			}
		}
	}
	// Second block switches model before round.
	if c := cells[7]; c.Round != 1 || c.Model != fault.StuckAtZero {
		t.Fatalf("cell 7: round %d model %s, want round 1 stuck-at-0", c.Round, c.Model)
	}
	if c := cells[14]; c.Round != 2 || c.Model != fault.XorFlip {
		t.Fatalf("cell 14: round %d model %s, want round 2 xor", c.Round, c.Model)
	}
}

func sweepConfig() Config {
	return Config{
		Cipher:  "gift64",
		Rounds:  []int{25},
		Samples: 64,
		Models:  []fault.Model{fault.XorFlip, fault.StuckAtZero},
		Seed:    7,
	}
}

// TestSweepDeterministicAcrossWorkersAndPaths is the core atlas
// contract: identical canonical bytes for every worker count and for the
// batch and scalar cipher paths.
func TestSweepDeterministicAcrossWorkersAndPaths(t *testing.T) {
	var ref []byte
	for _, tc := range []struct {
		workers int
		noBatch bool
	}{{1, false}, {4, false}, {1, true}, {4, true}} {
		cfg := sweepConfig()
		cfg.Workers = tc.workers
		cfg.NoBatch = tc.noBatch
		atlas, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("workers=%d noBatch=%v: %v", tc.workers, tc.noBatch, err)
		}
		if err := atlas.Validate(); err != nil {
			t.Fatalf("workers=%d noBatch=%v: invalid atlas: %v", tc.workers, tc.noBatch, err)
		}
		data, err := atlas.MarshalCanonical()
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = data
			// 2 models × 16 nibbles at round 25.
			if atlas.Summary.Cells != 32 {
				t.Fatalf("cells = %d, want 32", atlas.Summary.Cells)
			}
			if atlas.Summary.Exploitable == 0 {
				t.Fatal("no exploitable cell at GIFT-64 round 25; sweep oracle is broken")
			}
			continue
		}
		if !bytes.Equal(ref, data) {
			t.Fatalf("workers=%d noBatch=%v: atlas differs from reference", tc.workers, tc.noBatch)
		}
	}
}

// TestSweepInterruptResume cancels a checkpointed sweep mid-run, resumes
// it, and requires the final atlas byte-identical to an uninterrupted
// reference.
func TestSweepInterruptResume(t *testing.T) {
	refAtlas, err := Run(context.Background(), sweepConfig())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := refAtlas.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}

	for _, k := range []int{0, ShardCells, 24} {
		path := filepath.Join(t.TempDir(), "sweep.ck")
		ctx, cancel := context.WithCancel(context.Background())
		cfg := sweepConfig()
		cfg.Workers = 1
		cfg.Checkpoint = path
		cfg.Progress = func(done, total int) {
			if done >= k {
				cancel()
			}
		}
		_, err := Run(ctx, cfg)
		cancel()
		if k > 0 && err == nil {
			t.Fatalf("k=%d: interrupted run finished without error", k)
		}

		cfg = sweepConfig()
		cfg.Workers = 1
		cfg.Checkpoint = path
		atlas, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("k=%d: resume: %v", k, err)
		}
		data, err := atlas.MarshalCanonical()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ref, data) {
			t.Fatalf("k=%d: resumed atlas differs from uninterrupted reference", k)
		}
	}
}

// TestSweepChecksConfig exercises the validation errors.
func TestSweepChecksConfig(t *testing.T) {
	for name, mutate := range map[string]func(*Config){
		"unknown cipher": func(c *Config) { c.Cipher = "nope" },
		"bad round":      func(c *Config) { c.Rounds = []int{99} },
		"bad gran":       func(c *Config) { c.GranBits = 7 },
		"bad key":        func(c *Config) { c.Key = []byte{1, 2, 3} },
	} {
		cfg := sweepConfig()
		mutate(&cfg)
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("%s: Run succeeded", name)
		}
	}
}

func TestAtlasValidateCatchesCorruption(t *testing.T) {
	cfg := sweepConfig()
	cfg.Samples = 32
	cfg.Models = []fault.Model{fault.XorFlip}
	atlas, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := atlas.Validate(); err != nil {
		t.Fatal(err)
	}
	corrupt := func(f func(a *Atlas)) *Atlas {
		var a Atlas
		data, _ := atlas.MarshalCanonical()
		if err := unmarshal(data, &a); err != nil {
			t.Fatal(err)
		}
		f(&a)
		return &a
	}
	cases := map[string]func(a *Atlas){
		"schema":      func(a *Atlas) { a.Schema = "other/v9" },
		"cell count":  func(a *Atlas) { a.Summary.Cells++ },
		"flag flip":   func(a *Atlas) { a.Cells[0].Exploitable = !a.Cells[0].Exploitable },
		"max t":       func(a *Atlas) { a.Summary.MaxT *= 2 },
		"exploitable": func(a *Atlas) { a.Summary.Exploitable++ },
		"position":    func(a *Atlas) { a.Cells[0].Pos = []int{99} },
	}
	for name, f := range cases {
		if err := corrupt(f).Validate(); err == nil {
			t.Errorf("%s corruption passed validation", name)
		}
	}
}

func TestAtlasHeatmapRender(t *testing.T) {
	cfg := sweepConfig()
	cfg.Samples = 32
	atlas, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var text, md bytes.Buffer
	atlas.Heatmap().Render(&text)
	atlas.Heatmap().RenderMarkdown(&md)
	if text.Len() == 0 || md.Len() == 0 {
		t.Fatal("empty heatmap rendering")
	}
	for _, s := range []string{"round", "legend"} {
		if !bytes.Contains(text.Bytes(), []byte(s)) {
			t.Errorf("text heatmap missing %q:\n%s", s, text.String())
		}
	}
}

func TestPatternPositions(t *testing.T) {
	// gift64: 16 nibbles. Positions {3, 7} → bits 12..15, 28..31 →
	// bytes 0xf0 0x00 0xf0 ... little-endian per byte convention.
	pat := patternFor(64, 4, []int{3, 7})
	pos, ok := patternPositions(hexOf(pat.Bytes()), 4, 16)
	if !ok || len(pos) != 2 || pos[0] != 3 || pos[1] != 7 {
		t.Fatalf("positions = %v ok=%v, want [3 7] true", pos, ok)
	}
	// A pattern that half-covers a nibble does not map.
	half := patternFor(64, 4, nil)
	half.Set(12)
	if _, ok := patternPositions(hexOf(half.Bytes()), 4, 16); ok {
		t.Fatal("partial-position pattern mapped onto the atlas")
	}
	// Wrong geometry does not map.
	if _, ok := patternPositions("ff", 4, 16); ok {
		t.Fatal("8-bit pattern mapped onto a 64-bit atlas")
	}
}
