package sweep

import (
	"bufio"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/bitvec"
)

// CoverageReport quantifies a discovery run's sample efficiency against
// an exhaustive atlas: of the cells the sweep proved exploitable, how
// many did the RL agent visit and flag, and how fast — the repository's
// extension of the paper's Table II from "did it converge" to "what
// fraction of the exploitable space did it find".
type CoverageReport struct {
	// Round is the injection round the comparison ran at (episodes from
	// other rounds, if any, are not comparable and are ignored).
	Round int `json:"round"`
	// Episodes is the number of episode events read; LeakyEpisodes how
	// many of them the agent classified leaky.
	Episodes      int `json:"episodes"`
	LeakyEpisodes int `json:"leaky_episodes"`
	// ExploitableCells is the atlas's exploitable cell count at Round;
	// FoundCells how many of those the agent hit with a leaky episode.
	// Coverage is their ratio (0 when the atlas has no exploitable cell).
	ExploitableCells int     `json:"exploitable_cells"`
	FoundCells       int     `json:"found_cells"`
	Coverage         float64 `json:"coverage"`
	// EpisodesToFirstHit is the 1-based index of the first leaky episode
	// matching an exploitable atlas cell (0 = never).
	EpisodesToFirstHit int `json:"episodes_to_first_hit"`
	// OffAtlas counts leaky episodes whose pattern does not map onto any
	// atlas cell — patterns not aligned to the atlas granularity, wider
	// than the atlas order, or using a model outside the atlas. They are
	// the agent exploring space the sweep did not enumerate, not errors.
	OffAtlas int `json:"off_atlas"`
	// Mismatches counts leaky episodes that map onto an atlas cell the
	// sweep classified NOT exploitable: ground-truth disagreements
	// between the sampling path and the exhaustive path. The property
	// test pins this to zero for seed-matched runs.
	Mismatches int `json:"mismatches"`
	// VerifiedModels counts model_verified events (the abstraction
	// pipeline's harvested, verification-passed fault models — the cells
	// the RL pipeline ultimately *reports* exploitable). ModelHits map
	// onto exploitable atlas cells, ModelMismatches onto cells the sweep
	// classified not exploitable, ModelsOffAtlas onto nothing (wider than
	// the atlas order or unaligned).
	VerifiedModels  int `json:"verified_models"`
	ModelHits       int `json:"model_hits"`
	ModelMismatches int `json:"model_mismatches"`
	ModelsOffAtlas  int `json:"models_off_atlas"`
	// ByModel counts found exploitable cells per fault model.
	ByModel map[string]int `json:"by_model,omitempty"`
}

// episodeEvent mirrors the JSONL envelope of the run-event log for the
// two kinds the comparator reads.
type episodeEvent struct {
	Event  string `json:"event"`
	Fields struct {
		Round      int     `json:"round"`
		Pattern    string  `json:"pattern"`
		FaultModel string  `json:"fault_model"`
		T          float64 `json:"t"`
		Leaky      bool    `json:"leaky"`
	} `json:"fields"`
}

// cellKey canonically identifies a cell for lookup.
func cellKey(round int, pos []int, model string) string {
	return fmt.Sprintf("r%d|%v|%s", round, pos, model)
}

// Compare replays a discovery run's JSONL event log against the atlas.
// round selects the injection round to compare at; 0 auto-detects it
// from the log's run_started event. Episode patterns are mapped onto
// atlas cells by their covered positions at the atlas granularity: a
// pattern maps to a cell iff its set bits exactly tile 1 (or, in an
// order-2 atlas, 2) whole positions and the episode's fault model is in
// the atlas.
func Compare(a *Atlas, round int, r io.Reader) (*CoverageReport, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	exploitable := map[string]bool{}
	inAtlas := map[string]bool{}
	for _, c := range a.Cells {
		k := cellKey(c.Round, c.Pos, c.Model)
		inAtlas[k] = true
		if c.Exploitable {
			exploitable[k] = true
		}
	}

	rep := &CoverageReport{Round: round, ByModel: map[string]int{}}
	found := map[string]bool{}
	maxOrder := 1
	if a.Order2 {
		maxOrder = 2
	}
	// classify maps an event's pattern+model onto the atlas: -1 off-atlas,
	// 0 in-atlas but not exploitable, 1 exploitable (key returned).
	classify := func(hexPattern, model string) (string, int) {
		pos, ok := patternPositions(hexPattern, a.GranBits, a.Positions)
		if !ok || len(pos) == 0 || len(pos) > maxOrder {
			return "", -1
		}
		k := cellKey(rep.Round, pos, model)
		if !inAtlas[k] {
			return "", -1
		}
		if !exploitable[k] {
			return k, 0
		}
		return k, 1
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev episodeEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			continue // foreign lines are skipped, not fatal
		}
		switch ev.Event {
		case "run_started":
			if rep.Round == 0 && ev.Fields.Round > 0 {
				rep.Round = ev.Fields.Round
			}
		case "model_verified":
			rep.VerifiedModels++
			switch _, verdict := classify(ev.Fields.Pattern, ev.Fields.FaultModel); verdict {
			case -1:
				rep.ModelsOffAtlas++
			case 0:
				rep.ModelMismatches++
			case 1:
				rep.ModelHits++
			}
		case "episode":
			rep.Episodes++
			if !ev.Fields.Leaky {
				continue
			}
			rep.LeakyEpisodes++
			k, verdict := classify(ev.Fields.Pattern, ev.Fields.FaultModel)
			switch verdict {
			case -1:
				rep.OffAtlas++
			case 0:
				rep.Mismatches++
			case 1:
				if !found[k] {
					found[k] = true
					rep.ByModel[ev.Fields.FaultModel]++
					if rep.EpisodesToFirstHit == 0 {
						rep.EpisodesToFirstHit = rep.Episodes
					}
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sweep: reading event log: %w", err)
	}
	if rep.Round == 0 {
		return nil, fmt.Errorf("sweep: no -round given and no run_started event to infer it from")
	}

	for k := range exploitable {
		if cellRound(k) == rep.Round {
			rep.ExploitableCells++
		}
	}
	rep.FoundCells = len(found)
	if rep.ExploitableCells > 0 {
		rep.Coverage = float64(rep.FoundCells) / float64(rep.ExploitableCells)
	}
	return rep, nil
}

// cellRound parses the round back out of a cellKey.
func cellRound(key string) int {
	var r int
	fmt.Sscanf(key, "r%d|", &r)
	return r
}

// patternPositions maps a hex-encoded pattern onto whole positions at
// the given granularity. ok is false when the pattern is not an exact
// tiling of whole positions (some position is partially covered).
func patternPositions(hexPattern string, granBits, positions int) ([]int, bool) {
	raw, err := hex.DecodeString(hexPattern)
	if err != nil || len(raw) == 0 {
		return nil, false
	}
	v := bitvec.FromBytes(raw)
	if v.Len() != granBits*positions {
		return nil, false // pattern from a different state geometry
	}
	full := (1 << granBits) - 1
	var pos []int
	for p := 0; p < positions; p++ {
		g := 0
		for j := 0; j < granBits; j++ {
			if v.Bit(p*granBits + j) {
				g |= 1 << j
			}
		}
		switch g {
		case 0:
		case full:
			pos = append(pos, p)
		default:
			return nil, false
		}
	}
	sort.Ints(pos)
	return pos, true
}
