package sweep

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/fault"
)

// logLine fabricates one run-event JSONL line.
func logLine(event string, fields string) string {
	return fmt.Sprintf(`{"ts":"2026-01-01T00:00:00Z","seq":1,"event":%q,"fields":{%s}}`, event, fields)
}

func TestCompareAgainstSyntheticLog(t *testing.T) {
	// GIFT-64 round 22 at this budget has both exploitable and
	// non-exploitable nibbles — the mix the comparator needs.
	cfg := Config{Cipher: "gift64", Rounds: []int{22}, Samples: 64,
		Models: []fault.Model{fault.XorFlip}, Seed: 7}
	atlas, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Pick one exploitable and one non-exploitable single cell.
	var hot, cold *Cell
	for i := range atlas.Cells {
		c := &atlas.Cells[i]
		if c.Exploitable && hot == nil {
			hot = c
		}
		if !c.Exploitable && cold == nil {
			cold = c
		}
	}
	if hot == nil || cold == nil {
		t.Fatalf("atlas lacks an exploitable/non-exploitable mix (exploitable=%d/%d); pick another round",
			atlas.Summary.Exploitable, atlas.Summary.Cells)
	}
	patHex := func(c *Cell) string {
		p := patternFor(64, atlas.GranBits, c.Pos)
		return hexOf(p.Bytes())
	}

	log := strings.Join([]string{
		logLine("run_started", `"binary":"explorefault","cipher":"gift64","round":22,"seed":7`),
		// Episode 1: non-leaky — never counts as a hit.
		logLine("episode", fmt.Sprintf(`"episode":1,"pattern":%q,"fault_model":%q,"t":1.0,"leaky":false`, patHex(hot), hot.Model)),
		// Episode 2: leaky on the exploitable cell — first hit.
		logLine("episode", fmt.Sprintf(`"episode":2,"pattern":%q,"fault_model":%q,"t":80.0,"leaky":true`, patHex(hot), hot.Model)),
		// Episode 3: duplicate hit on the same cell — no double count.
		logLine("episode", fmt.Sprintf(`"episode":3,"pattern":%q,"fault_model":%q,"t":80.0,"leaky":true`, patHex(hot), hot.Model)),
		// Episode 4: leaky but off-atlas (unaligned pattern).
		logLine("episode", `"episode":4,"pattern":"0100000000000000","fault_model":"xor","t":80.0,"leaky":true`),
		// Episode 5: leaky on a cell the atlas says is not exploitable.
		logLine("episode", fmt.Sprintf(`"episode":5,"pattern":%q,"fault_model":%q,"t":9.0,"leaky":true`, patHex(cold), cold.Model)),
		// A verified harvested model on the exploitable cell, one on the
		// cold cell, and one too wide for the atlas.
		logLine("model_verified", fmt.Sprintf(`"model":"nibble","pattern":%q,"fault_model":%q,"t":80.0`, patHex(hot), hot.Model)),
		logLine("model_verified", fmt.Sprintf(`"model":"nibble","pattern":%q,"fault_model":%q,"t":9.0`, patHex(cold), cold.Model)),
		logLine("model_verified", `"model":"multi-nibble","pattern":"ffffff0000000000","fault_model":"xor","t":80.0`),
	}, "\n")

	rep, err := Compare(atlas, 0, strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Round != 22 {
		t.Fatalf("auto-detected round %d, want 22", rep.Round)
	}
	if rep.Episodes != 5 || rep.LeakyEpisodes != 4 {
		t.Fatalf("episodes %d leaky %d, want 5/4", rep.Episodes, rep.LeakyEpisodes)
	}
	if rep.FoundCells != 1 {
		t.Fatalf("found %d cells, want 1", rep.FoundCells)
	}
	if rep.EpisodesToFirstHit != 2 {
		t.Fatalf("episodes-to-first-hit %d, want 2", rep.EpisodesToFirstHit)
	}
	if rep.OffAtlas != 1 {
		t.Fatalf("off-atlas %d, want 1", rep.OffAtlas)
	}
	if rep.Mismatches != 1 {
		t.Fatalf("mismatches %d, want 1 (episode 5 hit a non-exploitable cell)", rep.Mismatches)
	}
	if rep.VerifiedModels != 3 || rep.ModelHits != 1 || rep.ModelMismatches != 1 || rep.ModelsOffAtlas != 1 {
		t.Fatalf("model accounting %d/%d/%d/%d, want 3 verified = 1 hit + 1 mismatch + 1 off-atlas",
			rep.VerifiedModels, rep.ModelHits, rep.ModelMismatches, rep.ModelsOffAtlas)
	}
	if rep.ExploitableCells != atlas.Summary.Exploitable {
		t.Fatalf("exploitable cells %d, atlas summary %d", rep.ExploitableCells, atlas.Summary.Exploitable)
	}
	want := 1.0 / float64(rep.ExploitableCells)
	if rep.Coverage != want {
		t.Fatalf("coverage %v, want %v", rep.Coverage, want)
	}
	if rep.ByModel[hot.Model] != 1 {
		t.Fatalf("by-model %v, want 1 hit for %s", rep.ByModel, hot.Model)
	}
}

func TestCompareNeedsARound(t *testing.T) {
	cfg := Config{Cipher: "gift64", Rounds: []int{25}, Samples: 32,
		Models: []fault.Model{fault.XorFlip}, Seed: 7}
	atlas, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compare(atlas, 0, strings.NewReader("")); err == nil {
		t.Fatal("Compare with no round and no run_started succeeded")
	}
	if rep, err := Compare(atlas, 25, strings.NewReader("")); err != nil || rep.Round != 25 {
		t.Fatalf("explicit round: %v %+v", err, rep)
	}
}
