// Package sweep is the exhaustive campaign engine: where the RL agent
// samples the fault space, sweep enumerates it — every round × position ×
// fault model (and a bounded order-2 pair mode) — and classifies each
// cell with the same evaluate.Engine oracle the agent trains against.
// The result is an exploitability atlas: a machine-readable ground-truth
// map of the cipher's fault spectrum (ARMORY-style), against which a
// discovery run's episode log can be replayed to measure RL sample
// efficiency (see Compare).
//
// Parallelism is cell-sharded, not trace-sharded: cells are pure,
// independent assessments (each one a pure function of (seed, pattern,
// round, model) via evaluate.PatternSeed), so the sweep groups them into
// fixed-size shards and fans the shards across workers, while each
// cell's own campaign runs serially inside its worker. This keeps the
// per-cell result bitwise independent of worker count and makes the
// shard the checkpoint grain: a finished shard is persisted via
// checkpoint.Stages, so an interrupted multi-hour sweep resumes at the
// last shard boundary bit-identically.
package sweep

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/ciphers"
	"repro/internal/evaluate"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/prng"
	"repro/internal/stats"
)

// ShardCells is the number of cells per checkpoint shard. Small enough
// that an interrupt loses at most a few seconds of work at production
// trace budgets, large enough that checkpoint writes stay rare.
const ShardCells = 16

// CheckpointKind tags sweep shard checkpoints inside the envelope of
// internal/checkpoint.
const CheckpointKind = "sweep-shards"

// DefaultSamples is the per-cell trace budget. Exhaustive sweeps trade
// per-cell precision for coverage: 512 traces classify the strong leaks
// an attacker cares about; rerun interesting cells at 2048+ to confirm
// marginal ones.
const DefaultSamples = 512

// DefaultOrder2Cap bounds the pairs enumerated per (round, model) in
// order-2 mode: the first DefaultOrder2Cap pairs in lexicographic
// order. Without a cap the pair space is quadratic in positions (8128
// pairs for AES-128 bytes), which multiplies sweep cost beyond what the
// bounded mode is for.
const DefaultOrder2Cap = 256

// Config tunes one exhaustive sweep. Zero values select defaults.
type Config struct {
	// Cipher names the registered target.
	Cipher string
	// Key is the cipher key; nil derives one from Seed exactly like
	// Discover (prng.New(Seed ^ 0x5eed)), so a sweep and a discovery run
	// with equal seeds attack the same keyed instance.
	Key []byte
	// Rounds lists the injection rounds to enumerate; empty sweeps every
	// round 1..Rounds of the cipher. Duplicates are removed, order is
	// normalized ascending.
	Rounds []int
	// GranBits is the position granularity in bits (a "position" is one
	// aligned GranBits-wide field of the state); 0 uses the cipher's
	// native substitution width.
	GranBits int
	// Models lists the typed fault models to enumerate; empty sweeps
	// only fault.XorFlip.
	Models []fault.Model
	// Oracle selects the statistical oracle (default fault.OracleWelch).
	Oracle fault.OracleKind
	// Mode selects the fault-value model (default fault.RandomMask).
	Mode fault.Mode
	// Samples is the per-cell trace budget (default DefaultSamples).
	Samples int
	// MaxOrder is the highest t-test order (default 2).
	MaxOrder int
	// GroupBits is the oracle's differential grouping granularity; 0
	// uses the cipher's native width. Independent of GranBits.
	GroupBits int
	// Threshold is the exploitability threshold θ (default 4.5).
	Threshold float64
	// Lag and Window position the observation window (defaults
	// fault.DefaultLag / fault.DefaultWindow).
	Lag, Window int
	// Order2 additionally enumerates two-position cells (pairs of
	// distinct positions faulted together), bounded by Order2Cap.
	Order2 bool
	// Order2Cap caps the pairs per (round, model) (default
	// DefaultOrder2Cap); ignored unless Order2.
	Order2Cap int
	// ShardLo and ShardHi restrict the run to checkpoint shards
	// [ShardLo, ShardHi) of the canonical cell enumeration (ShardCells
	// cells per shard). Both zero sweeps everything. A restricted run
	// returns a partial atlas (its ShardLo/ShardHi fields record the
	// range) whose cells are bit-identical to the same shards of a full
	// run; Merge reassembles contiguous partial atlases into the full
	// document byte for byte. Shard indices are global, so partial runs
	// may share a Checkpoint file with each other and with a full run.
	ShardLo, ShardHi int
	// Workers is the cell-shard worker count; 0 uses GOMAXPROCS.
	// Results are bit-identical for every value.
	Workers int
	// NoBatch forces the scalar cipher path (bit-identical, slower).
	NoBatch bool
	// Seed drives all randomness; the atlas is a pure function of the
	// config including it.
	Seed uint64
	// Metrics/Events receive sweep instrumentation; nil disables.
	Metrics *obs.Registry
	Events  *obs.Emitter
	// Checkpoint, if non-empty, persists finished shards to this file;
	// rerunning with an identical config resumes after the last finished
	// shard.
	Checkpoint string
	// Progress, if non-nil, is called after every accounted cell
	// (assessed or restored from checkpoint) with the running count and
	// the total. Tests use it to cancel at a precise cell index.
	Progress func(done, total int)
}

func (cfg *Config) setDefaults(info ciphers.Info) {
	if cfg.GranBits == 0 {
		cfg.GranBits = info.GroupBits
	}
	if len(cfg.Models) == 0 {
		cfg.Models = []fault.Model{fault.XorFlip}
	}
	if cfg.Samples == 0 {
		cfg.Samples = DefaultSamples
	}
	if cfg.MaxOrder == 0 {
		cfg.MaxOrder = 2
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = stats.DefaultThreshold
	}
	if cfg.Lag == 0 {
		cfg.Lag = fault.DefaultLag
	}
	if cfg.Window == 0 {
		cfg.Window = fault.DefaultWindow
	}
	if cfg.Order2Cap == 0 {
		cfg.Order2Cap = DefaultOrder2Cap
	}
	if len(cfg.Rounds) == 0 {
		for r := 1; r <= info.Rounds; r++ {
			cfg.Rounds = append(cfg.Rounds, r)
		}
	} else {
		seen := map[int]bool{}
		var rounds []int
		for _, r := range cfg.Rounds {
			if !seen[r] {
				seen[r] = true
				rounds = append(rounds, r)
			}
		}
		sort.Ints(rounds)
		cfg.Rounds = rounds
	}
}

// cellSpec identifies one cell before assessment.
type cellSpec struct {
	Round int
	Pos   []int
	Model fault.Model
}

// enumerate lists every cell in canonical order: round ascending, then
// model in config order, then single positions ascending, then (in
// order-2 mode) position pairs in lexicographic order up to the cap.
// The order is part of the atlas contract — resume and golden tests
// depend on it.
func enumerate(cfg *Config, positions int) []cellSpec {
	var cells []cellSpec
	for _, round := range cfg.Rounds {
		for _, model := range cfg.Models {
			for p := 0; p < positions; p++ {
				cells = append(cells, cellSpec{Round: round, Pos: []int{p}, Model: model})
			}
			if !cfg.Order2 {
				continue
			}
			pairs := 0
			for i := 0; i < positions && pairs < cfg.Order2Cap; i++ {
				for j := i + 1; j < positions && pairs < cfg.Order2Cap; j++ {
					cells = append(cells, cellSpec{Round: round, Pos: []int{i, j}, Model: model})
					pairs++
				}
			}
		}
	}
	return cells
}

// key is the canonical config string identifying a sweep for checkpoint
// resume. Workers, NoBatch, instrumentation and paths are excluded:
// results are bit-identical across them.
func (cfg *Config) key(keyBytes []byte) string {
	models := make([]string, len(cfg.Models))
	for i, m := range cfg.Models {
		models[i] = m.String()
	}
	return fmt.Sprintf("sweep|%s|key=%x|r=%v|g=%d|m=%v|o=%s|mode=%s|s=%d|ord=%d|gb=%d|th=%g|lag=%d|win=%d|o2=%v|cap=%d|seed=%d",
		cfg.Cipher, keyBytes, cfg.Rounds, cfg.GranBits, models, cfg.Oracle, cfg.Mode,
		cfg.Samples, cfg.MaxOrder, cfg.GroupBits, cfg.Threshold, cfg.Lag, cfg.Window,
		cfg.Order2, cfg.Order2Cap, cfg.Seed)
}

// Run executes the sweep: it assesses every enumerated cell and returns
// the finished atlas. A cancelled ctx aborts at the next trace-block
// boundary and returns ctx.Err(); rerunning with Checkpoint set resumes
// after the last persisted shard. The returned atlas is a pure function
// of the Config — bit-identical across worker counts, batch/scalar
// paths, interrupts and resumes.
func Run(ctx context.Context, cfg Config) (*Atlas, error) {
	info, err := ciphers.Lookup(cfg.Cipher)
	if err != nil {
		return nil, err
	}
	cfg.setDefaults(info)
	stateBits := 8 * info.BlockBytes
	if cfg.GranBits <= 0 || stateBits%cfg.GranBits != 0 {
		return nil, fmt.Errorf("sweep: granularity %d does not divide state width %d", cfg.GranBits, stateBits)
	}
	for _, r := range cfg.Rounds {
		if r < 1 || r > info.Rounds {
			return nil, fmt.Errorf("sweep: round %d out of range 1..%d", r, info.Rounds)
		}
	}

	// Key derivation matches Discover so seed-matched sweeps and
	// discovery runs share the keyed instance the comparator assumes.
	key := cfg.Key
	if key == nil {
		key = make([]byte, info.KeyBytes)
		prng.New(cfg.Seed ^ 0x5eed).Fill(key)
	} else if len(key) != info.KeyBytes {
		return nil, fmt.Errorf("sweep: %s needs a %d-byte key, got %d", cfg.Cipher, info.KeyBytes, len(key))
	}
	cipher, err := info.New(key)
	if err != nil {
		return nil, err
	}

	positions := stateBits / cfg.GranBits
	specs := enumerate(&cfg, positions)
	total := len(specs)
	shards := (total + ShardCells - 1) / ShardCells

	// Resolve the shard range. The default (0, 0) covers every shard;
	// a partial run walks the same global shard indices, so its cells
	// and checkpoint stages are bit-compatible with the full run's.
	shardLo, shardHi := cfg.ShardLo, cfg.ShardHi
	if shardHi == 0 {
		shardHi = shards
	}
	if shardLo < 0 || shardHi > shards || shardLo >= shardHi {
		return nil, fmt.Errorf("sweep: shard range [%d, %d) out of range 0..%d", cfg.ShardLo, cfg.ShardHi, shards)
	}
	cellLo := shardLo * ShardCells
	cellHi := shardHi * ShardCells
	if cellHi > total {
		cellHi = total
	}
	rangeTotal := cellHi - cellLo

	stages, err := checkpoint.OpenStages(cfg.Checkpoint, CheckpointKind, cfg.key(key))
	if err != nil {
		return nil, fmt.Errorf("sweep: loading checkpoint: %w", err)
	}
	resumed := stages.Len()

	// One engine serves every cell: it is safe for concurrent use, and
	// Workers: 1 keeps each cell's campaign serial inside its own cell
	// worker (cell-level parallelism, not trace-level). Events are left
	// nil — per-cell campaign events at atlas scale would drown the run
	// log; the sweep emits one sweep_cell event per cell instead.
	engine := evaluate.New(cipher, evaluate.Config{
		Samples:   cfg.Samples,
		MaxOrder:  cfg.MaxOrder,
		GroupBits: cfg.GroupBits,
		Threshold: cfg.Threshold,
		Lag:       cfg.Lag,
		Window:    cfg.Window,
		Mode:      cfg.Mode,
		Oracle:    cfg.Oracle,
		Workers:   1,
		NoBatch:   cfg.NoBatch,
		Metrics:   cfg.Metrics,
		Seed:      cfg.Seed,
	})

	sp, ctx := trace.StartSpan(ctx, trace.SpanSweep)
	sp.SetAttr("cipher", cfg.Cipher)
	sp.SetAttr("cells", total)
	sp.SetAttr("shards", shards)
	defer sp.End()

	m, events := cfg.Metrics, cfg.Events
	events.Emit(obs.EventSweepStarted, map[string]any{
		"cipher": cfg.Cipher, "cells": rangeTotal, "shards": shards,
		"rounds": len(cfg.Rounds), "positions": positions,
		"models": len(cfg.Models), "samples": cfg.Samples,
		"oracle": cfg.Oracle.String(), "order2": cfg.Order2,
		"resumed_shards": resumed, "seed": cfg.Seed,
	})
	var start time.Time
	if m != nil || events != nil {
		start = time.Now()
	}
	shardHist := m.Histogram("sweep.shard_seconds", obs.LatencyBuckets)

	workers := cfg.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	if workers > shardHi-shardLo {
		workers = shardHi - shardLo
	}

	cells := make([]Cell, total)
	var done atomic.Int64
	var progressMu sync.Mutex
	account := func(n int) {
		d := int(done.Add(int64(n)))
		if cfg.Progress != nil {
			progressMu.Lock()
			cfg.Progress(d, rangeTotal)
			progressMu.Unlock()
		}
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				shard := shardLo + int(next.Add(1)) - 1
				if shard >= shardHi {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[w] = err
					return
				}
				lo := shard * ShardCells
				hi := lo + ShardCells
				if hi > total {
					hi = total
				}
				name := fmt.Sprintf("shard-%05d", shard)
				var stored []Cell
				if stages.Done(name, &stored) && len(stored) == hi-lo {
					copy(cells[lo:hi], stored)
					account(hi - lo)
					continue
				}
				ssp, sctx := trace.StartSpan(ctx, trace.SpanSweepShard)
				ssp.SetAttr("shard", shard)
				ssp.OwnLane()
				st := shardHist.Start()
				out := make([]Cell, 0, hi-lo)
				for i := lo; i < hi; i++ {
					c, err := assessCell(sctx, engine, &cfg, specs[i])
					if err != nil {
						errs[w] = err
						ssp.End()
						return
					}
					cells[i] = c
					out = append(out, c)
					m.Counter("sweep.cells_total").Inc()
					if c.Exploitable {
						m.Counter("sweep.exploitable_total").Inc()
					}
					events.Emit(obs.EventSweepCell, map[string]any{
						"round": c.Round, "pos": c.Pos, "model": c.Model,
						"t": c.T, "exploitable": c.Exploitable, "point": c.Point,
					})
					account(1)
				}
				st.Stop()
				ssp.End()
				if err := stages.Put(name, out); err != nil {
					errs[w] = err
					return
				}
				if cfg.Checkpoint != "" {
					events.Emit(obs.EventCheckpointSaved, map[string]any{
						"binary": "sweep", "stage": name, "path": cfg.Checkpoint,
					})
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	atlas := buildAtlas(&cfg, info, key, positions, cells[cellLo:cellHi])
	if shardLo != 0 || shardHi != shards {
		atlas.ShardLo, atlas.ShardHi = shardLo, shardHi
	}
	if m != nil || events != nil {
		wall := time.Since(start)
		if secs := wall.Seconds(); secs > 0 {
			m.Gauge("sweep.cells_per_sec").Set(float64(rangeTotal-resumed*ShardCells) / secs)
		}
		events.Emit(obs.EventSweepFinished, map[string]any{
			"cipher": cfg.Cipher, "cells": rangeTotal,
			"exploitable": atlas.Summary.Exploitable,
			"max_t":       atlas.Summary.MaxT,
			"duration_ms": float64(wall) / float64(time.Millisecond),
		})
	}
	sp.SetAttr("exploitable", atlas.Summary.Exploitable)
	return atlas, nil
}

// assessCell runs one cell's campaign and classifies it.
func assessCell(ctx context.Context, engine *evaluate.Engine, cfg *Config, spec cellSpec) (Cell, error) {
	pattern := patternFor(engine.StateBits(), cfg.GranBits, spec.Pos)
	a, err := engine.AssessModel(ctx, &pattern, spec.Round, spec.Model)
	if err != nil {
		return Cell{}, err
	}
	return Cell{
		Round:       spec.Round,
		Pos:         spec.Pos,
		Model:       spec.Model.String(),
		Order:       len(spec.Pos),
		T:           a.T,
		StatOrder:   a.Best.Stat.Order,
		Point:       a.Best.Point.String(),
		Exploitable: a.Leaky,
	}, nil
}
