// Package prng provides small, fast, deterministic pseudo-random number
// generators for fault simulation and reinforcement-learning experiments.
//
// Every experiment in this repository is seeded, and independent subsystems
// (fault injection, plaintext generation, the uniform t-test reference
// population, policy initialization, action sampling) each draw from their
// own stream so that changing the sample count in one subsystem does not
// perturb the others. The generators here are xoshiro256** for output and
// splitmix64 for seeding, following Blackman & Vigna. They are not
// cryptographically secure; they are simulation PRNGs.
package prng

import (
	"errors"
	"math"
)

// splitmix64 advances the given state and returns the next output.
// It is used to seed the main generator and to derive child streams.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Source is a xoshiro256** generator. The zero value is not a valid
// generator; use New or a Source returned by Split.
type Source struct {
	s        [4]uint64
	spare    float64 // cached second Box–Muller variate
	hasSpare bool
}

// New returns a Source seeded from the given seed via splitmix64,
// so that nearby seeds still produce uncorrelated streams.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		src.s[i] = splitmix64(&sm)
	}
	// xoshiro must not start from the all-zero state.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return &src
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly random bits.
func (src *Source) Uint64() uint64 {
	s := &src.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Split derives an independent child stream. The child is seeded from the
// parent's next output, so repeated Split calls give distinct streams and
// the parent remains usable.
func (src *Source) Split() *Source {
	return New(src.Uint64())
}

// State is a serializable snapshot of a Source's exact stream position:
// the four xoshiro words plus the cached Box–Muller variate. Restoring a
// State resumes the stream bit-identically, which is what makes training
// checkpoints replayable.
type State struct {
	Words    [4]uint64
	Spare    float64
	HasSpare bool
}

// State returns a snapshot of the generator's current position.
func (src *Source) State() State {
	return State{Words: src.s, Spare: src.spare, HasSpare: src.hasSpare}
}

// Restore rewinds (or fast-forwards) the generator to a previously
// captured State. It returns an error for the all-zero word state, which
// is not a valid xoshiro position and can only come from a corrupted or
// hand-rolled snapshot.
func (src *Source) Restore(st State) error {
	if st.Words[0]|st.Words[1]|st.Words[2]|st.Words[3] == 0 {
		return errors.New("prng: refusing to restore all-zero xoshiro state")
	}
	src.s = st.Words
	src.spare = st.Spare
	src.hasSpare = st.HasSpare
	return nil
}

// Uint32 returns the next 32 uniformly random bits.
func (src *Source) Uint32() uint32 { return uint32(src.Uint64() >> 32) }

// Byte returns a uniformly random byte.
func (src *Source) Byte() byte { return byte(src.Uint64() >> 56) }

// Intn returns a uniformly random int in [0, n). It panics if n <= 0.
// Lemire's multiply-shift rejection method avoids modulo bias.
func (src *Source) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn called with n <= 0")
	}
	bound := uint64(n)
	for {
		v := src.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= -bound%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t&mask32 + x0*y1
	hi = x1*y1 + t>>32 + w1>>32
	lo = x * y
	return hi, lo
}

// Float64 returns a uniformly random float64 in [0, 1).
func (src *Source) Float64() float64 {
	return float64(src.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate using the Box–Muller
// transform (polar form is avoided to keep the stream consumption fixed
// at two outputs per pair of variates).
func (src *Source) NormFloat64() float64 {
	if src.hasSpare {
		src.hasSpare = false
		return src.spare
	}
	// u1 in (0,1] so that Log is finite.
	u1 := 1.0 - src.Float64()
	u2 := src.Float64()
	r := math.Sqrt(-2 * math.Log(u1))
	theta := 2 * math.Pi * u2
	src.spare = r * math.Sin(theta)
	src.hasSpare = true
	return r * math.Cos(theta)
}

// Perm fills dst with a uniformly random permutation of 0..len(dst)-1.
func (src *Source) Perm(dst []int) {
	for i := range dst {
		dst[i] = i
	}
	for i := len(dst) - 1; i > 0; i-- {
		j := src.Intn(i + 1)
		dst[i], dst[j] = dst[j], dst[i]
	}
}

// Fill fills p with uniformly random bytes.
func (src *Source) Fill(p []byte) {
	i := 0
	for ; i+8 <= len(p); i += 8 {
		v := src.Uint64()
		p[i] = byte(v)
		p[i+1] = byte(v >> 8)
		p[i+2] = byte(v >> 16)
		p[i+3] = byte(v >> 24)
		p[i+4] = byte(v >> 32)
		p[i+5] = byte(v >> 40)
		p[i+6] = byte(v >> 48)
		p[i+7] = byte(v >> 56)
	}
	if i < len(p) {
		v := src.Uint64()
		for ; i < len(p); i++ {
			p[i] = byte(v)
			v >>= 8
		}
	}
}
