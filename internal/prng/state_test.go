package prng

import "testing"

// TestStateRestoreRoundTrip: a source restored from a captured State must
// replay exactly the stream the original produced after the capture,
// including the Box–Muller spare half-sample.
func TestStateRestoreRoundTrip(t *testing.T) {
	src := New(42)
	for i := 0; i < 100; i++ {
		src.Uint64()
	}
	// Leave a spare Gaussian cached so the snapshot must carry it.
	src.NormFloat64()

	st := src.State()
	var want []float64
	for i := 0; i < 32; i++ {
		want = append(want, src.NormFloat64(), src.Float64())
	}

	fresh := New(7) // different position on a different stream
	if err := fresh.Restore(st); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if got := fresh.NormFloat64(); got != want[2*i] {
			t.Fatalf("NormFloat64 #%d = %v, want %v", i, got, want[2*i])
		}
		if got := fresh.Float64(); got != want[2*i+1] {
			t.Fatalf("Float64 #%d = %v, want %v", i, got, want[2*i+1])
		}
	}
}

func TestStateIsASnapshot(t *testing.T) {
	src := New(1)
	st := src.State()
	src.Uint64() // must not mutate the captured state
	if got := src.State(); got == st {
		t.Fatal("advancing the source did not change its state")
	}
	if err := src.Restore(st); err != nil {
		t.Fatal(err)
	}
	if src.State() != st {
		t.Fatal("restore did not reproduce the captured state")
	}
}

func TestRestoreRejectsAllZeroState(t *testing.T) {
	src := New(1)
	if err := src.Restore(State{}); err == nil {
		t.Fatal("Restore accepted the all-zero xoshiro state")
	}
	// The source must still be usable after the rejected restore.
	if src.Uint64() == 0 && src.Uint64() == 0 {
		t.Fatal("source corrupted by rejected restore")
	}
}
