package prng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("step %d: streams diverged: %x vs %x", i, av, bv)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds produced %d identical outputs in 100 draws", same)
	}
}

func TestZeroSeedIsValid(t *testing.T) {
	src := New(0)
	var acc uint64
	for i := 0; i < 100; i++ {
		acc |= src.Uint64()
	}
	if acc == 0 {
		t.Fatal("seed 0 produced an all-zero stream")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("sibling streams produced %d identical outputs in 100 draws", same)
	}
}

func TestIntnRange(t *testing.T) {
	src := New(3)
	for _, n := range []int{1, 2, 3, 7, 255, 256, 1000} {
		for i := 0; i < 200; i++ {
			v := src.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	src := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[src.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d too far from expected %.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	src := New(5)
	for i := 0; i < 10000; i++ {
		v := src.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	src := New(9)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := src.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	src := New(13)
	p := make([]int, 50)
	for trial := 0; trial < 20; trial++ {
		src.Perm(p)
		seen := make(map[int]bool, len(p))
		for _, v := range p {
			if v < 0 || v >= len(p) || seen[v] {
				t.Fatalf("not a permutation: %v", p)
			}
			seen[v] = true
		}
	}
}

func TestFillLengths(t *testing.T) {
	src := New(17)
	for _, n := range []int{0, 1, 7, 8, 9, 16, 23} {
		p := make([]byte, n)
		src.Fill(p)
		// For n >= 8 the chance of an all-zero fill is negligible.
		if n >= 8 {
			zero := true
			for _, b := range p {
				if b != 0 {
					zero = false
				}
			}
			if zero {
				t.Errorf("Fill(%d) produced all zeros", n)
			}
		}
	}
}

func TestMul64MatchesBigArithmetic(t *testing.T) {
	f := func(x, y uint64) bool {
		hi, lo := mul64(x, y)
		// Verify via four 32x32 partial products.
		x0, x1 := x&0xffffffff, x>>32
		y0, y1 := y&0xffffffff, y>>32
		wantLo := x * y
		carry := ((x0*y0)>>32 + (x1*y0)&0xffffffff + (x0*y1)&0xffffffff) >> 32
		wantHi := x1*y1 + (x1*y0)>>32 + (x0*y1)>>32 + carry
		return lo == wantLo && hi == wantHi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestByteUniformity(t *testing.T) {
	src := New(23)
	counts := make([]int, 256)
	const draws = 256 * 400
	for i := 0; i < draws; i++ {
		counts[src.Byte()]++
	}
	want := float64(draws) / 256
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("byte %d: count %d too far from expected %.0f", i, c, want)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	src := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= src.Uint64()
	}
	_ = sink
}

func BenchmarkNormFloat64(b *testing.B) {
	src := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += src.NormFloat64()
	}
	_ = sink
}
