package countermeasure

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/ciphers"
	_ "repro/internal/ciphers/aes"
	_ "repro/internal/ciphers/gift"
	"repro/internal/fault"
	"repro/internal/prng"
)

func newAES(t *testing.T, rng *prng.Source) ciphers.Cipher {
	t.Helper()
	key := make([]byte, 16)
	rng.Fill(key)
	c, err := ciphers.New("aes128", key)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestProtectedNoFaultPassesThrough(t *testing.T) {
	rng := prng.New(1)
	c := newAES(t, rng)
	p := NewProtected(c, rng.Split())
	pt := make([]byte, 16)
	rng.Fill(pt)
	want := make([]byte, 16)
	c.Encrypt(want, pt, nil, nil)
	got := make([]byte, 16)
	if muted := p.Encrypt(got, pt, nil, nil); muted {
		t.Fatal("fault-free encryption was muted")
	}
	if !bytes.Equal(got, want) {
		t.Error("protected output differs from plain ciphertext")
	}
}

func TestProtectedIdenticalFaultsEvade(t *testing.T) {
	rng := prng.New(2)
	c := newAES(t, rng)
	p := NewProtected(c, rng.Split())
	pt := make([]byte, 16)
	rng.Fill(pt)
	mask := make([]byte, 16)
	mask[9] = 0x10 // single bit 76 (byte 9, bit 4): the Table IV fault
	f1 := &ciphers.Fault{Round: 9, Mask: mask}
	f2 := &ciphers.Fault{Round: 9, Mask: mask}
	out := make([]byte, 16)
	if muted := p.Encrypt(out, pt, f1, f2); muted {
		t.Fatal("identical branch faults were detected")
	}
	clean := make([]byte, 16)
	c.Encrypt(clean, pt, nil, nil)
	if bytes.Equal(out, clean) {
		t.Error("faulty output equals clean ciphertext")
	}
}

func TestProtectedMismatchedFaultsMute(t *testing.T) {
	rng := prng.New(3)
	c := newAES(t, rng)
	p := NewProtected(c, rng.Split())
	pt := make([]byte, 16)
	rng.Fill(pt)
	mask := make([]byte, 16)
	mask[9] = 0x10
	f1 := &ciphers.Fault{Round: 9, Mask: mask}
	out1 := make([]byte, 16)
	if muted := p.Encrypt(out1, pt, f1, nil); !muted {
		t.Fatal("single-branch fault was not detected")
	}
	// Mute strings are fresh randomness: two mutings differ.
	out2 := make([]byte, 16)
	p.Encrypt(out2, pt, f1, nil)
	if bytes.Equal(out1, out2) {
		t.Error("mute strings repeat")
	}
}

func newOracle(t *testing.T, seed uint64, cfg OracleConfig) *Oracle {
	t.Helper()
	rng := prng.New(seed)
	c := newAES(t, rng)
	o, err := NewOracle(c, cfg, rng.Split())
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestOracleStateBitsDoubled(t *testing.T) {
	o := newOracle(t, 4, OracleConfig{Round: 9, Samples: 64})
	if o.StateBits() != 256 {
		t.Errorf("StateBits = %d, want 256 (Table IV episode length)", o.StateBits())
	}
}

func TestOracleSameBitBothBranchesLeaks(t *testing.T) {
	o := newOracle(t, 5, OracleConfig{Round: 9, Samples: 1024})
	pattern := bitvec.FromBits(256, 76, 128+76) // bit 76 in both branches
	l, err := o.Evaluate(context.Background(), &pattern, fault.XorFlip)
	if err != nil {
		t.Fatal(err)
	}
	if l < o.Threshold() {
		t.Errorf("identical single-bit faults gave l = %.2f, want > %.1f", l, o.Threshold())
	}
	if o.LastMutedRate > 0.01 {
		t.Errorf("muted rate %.2f for identical deterministic faults", o.LastMutedRate)
	}
}

func TestOracleSingleBranchFaultMuted(t *testing.T) {
	o := newOracle(t, 6, OracleConfig{Round: 9, Samples: 1024})
	pattern := bitvec.FromBits(256, 76) // branch 1 only
	l, err := o.Evaluate(context.Background(), &pattern, fault.XorFlip)
	if err != nil {
		t.Fatal(err)
	}
	if l > o.Threshold() {
		t.Errorf("muted faults leaked l = %.2f", l)
	}
	if o.LastMutedRate < 0.99 {
		t.Errorf("muted rate %.2f, want ~1 for single-branch fault", o.LastMutedRate)
	}
}

func TestOracleMismatchedBitsMuted(t *testing.T) {
	o := newOracle(t, 7, OracleConfig{Round: 9, Samples: 1024})
	pattern := bitvec.FromBits(256, 76, 128+77) // different bit per branch
	l, err := o.Evaluate(context.Background(), &pattern, fault.XorFlip)
	if err != nil {
		t.Fatal(err)
	}
	if l > o.Threshold() {
		t.Errorf("mismatched faults leaked l = %.2f", l)
	}
}

func TestOracleWideSamePatternMostlyMuted(t *testing.T) {
	// The same full byte in both branches draws independent random
	// values, so the branches almost never match: the countermeasure
	// wins against imprecise multi-bit injections.
	o := newOracle(t, 8, OracleConfig{Round: 9, Samples: 1024})
	var bits []int
	for j := 0; j < 8; j++ {
		bits = append(bits, 72+j, 128+72+j)
	}
	pattern := bitvec.FromBits(256, bits...)
	l, err := o.Evaluate(context.Background(), &pattern, fault.XorFlip)
	if err != nil {
		t.Fatal(err)
	}
	if o.LastMutedRate < 0.95 {
		t.Errorf("muted rate %.2f, want ~1 for independent byte faults", o.LastMutedRate)
	}
	if l > o.Threshold() {
		t.Errorf("mostly-muted faults leaked l = %.2f", l)
	}
}

func TestSplitPattern(t *testing.T) {
	o := newOracle(t, 9, OracleConfig{Round: 9, Samples: 64})
	pattern := bitvec.FromBits(256, 3, 76, 128, 128+76, 255)
	b1, b2 := o.SplitPattern(&pattern)
	if got := b1.Bits(); len(got) != 2 || got[0] != 3 || got[1] != 76 {
		t.Errorf("branch 1 bits = %v", got)
	}
	if got := b2.Bits(); len(got) != 3 || got[0] != 0 || got[1] != 76 || got[2] != 127 {
		t.Errorf("branch 2 bits = %v", got)
	}
}

func TestOracleRejectsBadPatterns(t *testing.T) {
	o := newOracle(t, 10, OracleConfig{Round: 9, Samples: 64})
	short := bitvec.FromBits(128, 1)
	if _, err := o.Evaluate(context.Background(), &short, fault.XorFlip); err == nil {
		t.Error("accepted wrong-width pattern")
	}
	empty := bitvec.New(256)
	if _, err := o.Evaluate(context.Background(), &empty, fault.XorFlip); err == nil {
		t.Error("accepted empty pattern")
	}
}

func TestNewOracleValidatesRound(t *testing.T) {
	rng := prng.New(11)
	c := newAES(t, rng)
	if _, err := NewOracle(c, OracleConfig{Round: 0}, rng.Split()); err == nil {
		t.Error("accepted round 0")
	}
	if _, err := NewOracle(c, OracleConfig{Round: 11}, rng.Split()); err == nil {
		t.Error("accepted round 11 for AES")
	}
}

func TestOracleFlipAllModeWideFaultEvades(t *testing.T) {
	// With deterministic FlipAll faults, identical wide patterns DO
	// evade the countermeasure — the ablation contrast to
	// TestOracleWideSamePatternMostlyMuted.
	o := newOracle(t, 12, OracleConfig{Round: 9, Samples: 1024, Mode: fault.FlipAll})
	var bits []int
	for j := 0; j < 8; j++ {
		bits = append(bits, 72+j, 128+72+j)
	}
	pattern := bitvec.FromBits(256, bits...)
	l, err := o.Evaluate(context.Background(), &pattern, fault.XorFlip)
	if err != nil {
		t.Fatal(err)
	}
	if o.LastMutedRate > 0.01 {
		t.Errorf("muted rate %.2f for identical deterministic faults", o.LastMutedRate)
	}
	if l < o.Threshold() {
		t.Errorf("deterministic identical byte faults gave l = %.2f", l)
	}
}

func BenchmarkProtectedOracleEvaluate(b *testing.B) {
	rng := prng.New(13)
	key := make([]byte, 16)
	rng.Fill(key)
	c, _ := ciphers.New("aes128", key)
	o, err := NewOracle(c, OracleConfig{Round: 9, Samples: 512}, rng.Split())
	if err != nil {
		b.Fatal(err)
	}
	pattern := bitvec.FromBits(256, 76, 128+76)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := o.Evaluate(context.Background(), &pattern, fault.XorFlip); err != nil {
			b.Fatal(err)
		}
	}
}
