// Package countermeasure implements the duplication-based fault-attack
// countermeasure evaluated in §IV-C of the paper, and the protected-cipher
// leakage oracle that drives the RL agent against it.
//
// The countermeasure runs the cipher twice ("computational branches") and
// compares the two ciphertexts. On a mismatch the fault is considered
// detected and the output is muted: a random string of ciphertext length
// is returned instead (§III-G). An adversary therefore only learns
// something when both branches are corrupted *identically* — which is why
// the agent of Table IV converges to the same single bit (76) in both
// branches: a deterministic single-bit flip is the one fault that is
// reliably equal across branches.
//
// The protected oracle exposes a doubled action space: pattern bits
// [0, T) select branch-1 state bits, [T, 2T) branch-2 bits, giving the
// episode length of 256 reported in Table IV for AES.
package countermeasure

import (
	"bytes"
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/ciphers"
	"repro/internal/fault"
	"repro/internal/prng"
	"repro/internal/stats"
)

// Protected wraps a keyed cipher with the duplication countermeasure.
type Protected struct {
	cipher ciphers.Cipher
	rng    *prng.Source
	out1   []byte
	out2   []byte
}

// NewProtected builds the protected implementation around one keyed
// cipher instance (both branches compute the same function, so a single
// deterministic instance serves as both). rng supplies mute strings.
func NewProtected(c ciphers.Cipher, rng *prng.Source) *Protected {
	n := c.BlockBytes()
	return &Protected{cipher: c, rng: rng, out1: make([]byte, n), out2: make([]byte, n)}
}

// Cipher returns the underlying keyed cipher.
func (p *Protected) Cipher() ciphers.Cipher { return p.cipher }

// Encrypt runs both branches with their respective faults (either may be
// nil) and writes the released output into dst. It reports whether the
// countermeasure muted the output.
func (p *Protected) Encrypt(dst, src []byte, branch1, branch2 *ciphers.Fault) (muted bool) {
	p.cipher.Encrypt(p.out1, src, branch1, nil)
	p.cipher.Encrypt(p.out2, src, branch2, nil)
	if !bytes.Equal(p.out1, p.out2) {
		p.rng.Fill(dst)
		return true
	}
	copy(dst, p.out1)
	return false
}

// OracleConfig tunes the protected leakage oracle. Zero values select the
// same defaults as the unprotected assessor.
type OracleConfig struct {
	// Round is the fault-injection round in both branches (required).
	Round int
	// Samples per assessment (default 2048).
	Samples int
	// MaxOrder of the ciphertext t-test (default 2).
	MaxOrder int
	// GroupBits of the ciphertext grouping (default cipher native).
	GroupBits int
	// Threshold θ (default 4.5).
	Threshold float64
	// Mode selects the per-branch fault-value model (default RandomMask:
	// each branch's fault value is drawn independently, so only
	// single-bit selections are reliably equal across branches).
	Mode fault.Mode
}

func (c *OracleConfig) setDefaults(cipher ciphers.Cipher) error {
	if c.Round < 1 || c.Round > cipher.Rounds() {
		return fmt.Errorf("countermeasure: round %d out of range 1..%d", c.Round, cipher.Rounds())
	}
	if c.Samples == 0 {
		c.Samples = 2048
	}
	if c.MaxOrder == 0 {
		c.MaxOrder = 2
	}
	if c.GroupBits == 0 {
		c.GroupBits = cipher.GroupBits()
	}
	if c.Threshold == 0 {
		c.Threshold = stats.DefaultThreshold
	}
	return nil
}

// Oracle measures information leakage of a two-branch fault pattern
// against the protected implementation, looking only at released
// ciphertexts (the adversary's view). It implements explore.Oracle.
type Oracle struct {
	prot      *Protected
	cfg       OracleConfig
	rng       *prng.Source
	ref       [][]float64
	stateBits int
	// LastMutedRate reports, after each Evaluate, the fraction of
	// samples the countermeasure muted (diagnostic).
	LastMutedRate float64
}

// NewOracle builds the protected oracle. rng seeds plaintexts, fault
// values, mute strings and the uniform reference.
func NewOracle(c ciphers.Cipher, cfg OracleConfig, rng *prng.Source) (*Oracle, error) {
	if err := cfg.setDefaults(c); err != nil {
		return nil, err
	}
	groups := 8 * c.BlockBytes() / cfg.GroupBits
	o := &Oracle{
		prot:      NewProtected(c, rng.Split()),
		cfg:       cfg,
		rng:       rng,
		stateBits: 8 * c.BlockBytes(),
		ref:       fault.UniformReference(cfg.Samples, cfg.GroupBits, groups, rng.Split()),
	}
	return o, nil
}

// StateBits implements explore.Oracle: the action space covers both
// branches, so it is twice the cipher state width (episode length 256 for
// AES, Table IV).
func (o *Oracle) StateBits() int { return 2 * o.stateBits }

// Threshold implements explore.Oracle.
func (o *Oracle) Threshold() float64 { return o.cfg.Threshold }

// SplitPattern divides a doubled pattern into its per-branch halves.
func (o *Oracle) SplitPattern(pattern *bitvec.Vector) (b1, b2 bitvec.Vector) {
	b1 = bitvec.New(o.stateBits)
	b2 = bitvec.New(o.stateBits)
	for _, b := range pattern.Bits() {
		if b < o.stateBits {
			b1.Set(b)
		} else {
			b2.Set(b - o.stateBits)
		}
	}
	return b1, b2
}

// Evaluate implements explore.Oracle: collects ciphertext differentials
// between the unfaulted and faulted protected implementation and runs the
// order-1..G t-test against uniform.
func (o *Oracle) Evaluate(pattern *bitvec.Vector) (float64, error) {
	if pattern.Len() != o.StateBits() {
		return 0, fmt.Errorf("countermeasure: pattern width %d, want %d", pattern.Len(), o.StateBits())
	}
	if pattern.IsZero() {
		return 0, fmt.Errorf("countermeasure: empty pattern")
	}
	p1, p2 := o.SplitPattern(pattern)
	n := o.prot.cipher.BlockBytes()
	pt := make([]byte, n)
	clean := make([]byte, n)
	faulty := make([]byte, n)
	mask1 := make([]byte, n)
	mask2 := make([]byte, n)
	groups := 8 * n / o.cfg.GroupBits

	matrix := make([][]float64, o.cfg.Samples)
	muted := 0
	for s := 0; s < o.cfg.Samples; s++ {
		o.rng.Fill(pt)
		o.prot.cipher.Encrypt(clean, pt, nil, nil)
		f1 := o.drawFault(&p1, mask1)
		f2 := o.drawFault(&p2, mask2)
		if o.prot.Encrypt(faulty, pt, f1, f2) {
			muted++
		}
		row := make([]float64, groups)
		for g := range row {
			row[g] = groupValue(clean, faulty, g, o.cfg.GroupBits)
		}
		matrix[s] = row
	}
	o.LastMutedRate = float64(muted) / float64(o.cfg.Samples)
	res := stats.MaxUpToOrder(o.cfg.MaxOrder, matrix, o.ref)
	return res.T, nil
}

// drawFault returns the branch fault for this sample, or nil when the
// branch pattern is empty.
func (o *Oracle) drawFault(p *bitvec.Vector, mask []byte) *ciphers.Fault {
	if p.IsZero() {
		return nil
	}
	switch o.cfg.Mode {
	case fault.FlipAll:
		copy(mask, p.Bytes())
	default:
		m := bitvec.RandomMask(p, o.rng)
		copy(mask, m.Bytes())
	}
	return &ciphers.Fault{Round: o.cfg.Round, Mask: mask}
}

// groupValue extracts the differential group g of width groupBits.
func groupValue(a, b []byte, g, groupBits int) float64 {
	switch groupBits {
	case 8:
		return float64(a[g] ^ b[g])
	case 4:
		return float64((a[g/2] ^ b[g/2]) >> (4 * uint(g%2)) & 0xf)
	case 2:
		return float64((a[g/4] ^ b[g/4]) >> (2 * uint(g%4)) & 0x3)
	default:
		return float64((a[g/8] ^ b[g/8]) >> uint(g%8) & 1)
	}
}
