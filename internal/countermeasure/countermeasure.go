// Package countermeasure implements the duplication-based fault-attack
// countermeasure evaluated in §IV-C of the paper, and the protected-cipher
// leakage oracle that drives the RL agent against it.
//
// The countermeasure runs the cipher twice ("computational branches") and
// compares the two ciphertexts. On a mismatch the fault is considered
// detected and the output is muted: a random string of ciphertext length
// is returned instead (§III-G). An adversary therefore only learns
// something when both branches are corrupted *identically* — which is why
// the agent of Table IV converges to the same single bit (76) in both
// branches: a deterministic single-bit flip is the one fault that is
// reliably equal across branches.
//
// The protected oracle exposes a doubled action space: pattern bits
// [0, T) select branch-1 state bits, [T, 2T) branch-2 bits, giving the
// episode length of 256 reported in Table IV for AES.
package countermeasure

import (
	"bytes"
	"context"
	"encoding/hex"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/bitvec"
	"repro/internal/ciphers"
	"repro/internal/evaluate"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/prng"
	"repro/internal/stats"
)

// Protected wraps a keyed cipher with the duplication countermeasure.
type Protected struct {
	cipher ciphers.Cipher
	rng    *prng.Source
	out1   []byte
	out2   []byte
}

// NewProtected builds the protected implementation around one keyed
// cipher instance (both branches compute the same function, so a single
// deterministic instance serves as both). rng supplies mute strings.
func NewProtected(c ciphers.Cipher, rng *prng.Source) *Protected {
	n := c.BlockBytes()
	return &Protected{cipher: c, rng: rng, out1: make([]byte, n), out2: make([]byte, n)}
}

// Cipher returns the underlying keyed cipher.
func (p *Protected) Cipher() ciphers.Cipher { return p.cipher }

// Encrypt runs both branches with their respective faults (either may be
// nil) and writes the released output into dst. It reports whether the
// countermeasure muted the output.
func (p *Protected) Encrypt(dst, src []byte, branch1, branch2 *ciphers.Fault) (muted bool) {
	p.cipher.Encrypt(p.out1, src, branch1, nil)
	p.cipher.Encrypt(p.out2, src, branch2, nil)
	if !bytes.Equal(p.out1, p.out2) {
		p.rng.Fill(dst)
		return true
	}
	copy(dst, p.out1)
	return false
}

// OracleConfig tunes the protected leakage oracle. Zero values select the
// same defaults as the unprotected assessor.
type OracleConfig struct {
	// Round is the fault-injection round in both branches (required).
	Round int
	// Samples per assessment (default 2048).
	Samples int
	// MaxOrder of the ciphertext t-test (default 2).
	MaxOrder int
	// GroupBits of the ciphertext grouping (default cipher native).
	GroupBits int
	// Threshold θ (default 4.5).
	Threshold float64
	// Mode selects the per-branch fault-value model (default RandomMask:
	// each branch's fault value is drawn independently, so only
	// single-bit selections are reliably equal across branches).
	Mode fault.Mode
	// Model is the typed fault model applied per branch (default
	// fault.XorFlip). Evaluate's model argument overrides it per call.
	Model fault.Model
	// Oracle must be fault.OracleWelch: the protected target releases
	// only (possibly muted) ciphertexts, and muting already erases the
	// effective/ineffective distinction SIFA would condition on, so the
	// SIFA oracle is rejected at construction.
	Oracle fault.OracleKind
	// Workers is the campaign worker-pool size; 0 uses GOMAXPROCS.
	// Results are bit-identical for every value.
	Workers int
	// NoBatch forces the scalar reference path even for ciphers with a
	// batch kernel (bit-identical; for equivalence tests and benchmarks).
	NoBatch bool
	// Metrics, if non-nil, receives oracle instrumentation: evaluation
	// counts and latencies, per-shard wall times, and mute-rate
	// counters. Results are bit-identical with metrics on or off.
	Metrics *obs.Registry
	// Events, if non-nil, receives campaign_started/campaign_finished
	// run events per evaluation.
	Events *obs.Emitter
	// RefSeed overrides the uniform-reference stream (0 shares the
	// canonical process-wide reference table entry).
	RefSeed uint64
}

func (c *OracleConfig) setDefaults(cipher ciphers.Cipher) error {
	if c.Round < 1 || c.Round > cipher.Rounds() {
		return fmt.Errorf("countermeasure: round %d out of range 1..%d", c.Round, cipher.Rounds())
	}
	if c.Samples == 0 {
		c.Samples = 2048
	}
	if c.MaxOrder == 0 {
		c.MaxOrder = 2
	}
	if c.GroupBits == 0 {
		c.GroupBits = cipher.GroupBits()
	}
	if c.Threshold == 0 {
		c.Threshold = stats.DefaultThreshold
	}
	if c.RefSeed == 0 {
		c.RefSeed = evaluate.CanonicalRefSeed
	}
	if c.Oracle != fault.OracleWelch {
		return fmt.Errorf("countermeasure: oracle %s not supported for the protected target (Welch only)", c.Oracle)
	}
	return nil
}

// Oracle measures information leakage of a two-branch fault pattern
// against the protected implementation, looking only at released
// ciphertexts (the adversary's view). It implements explore.Oracle.
// Campaigns run through evaluate.RunSharded: each shard gets its own
// Protected instance fed by a deterministic PRNG substream, so results
// are bit-identical for every worker count.
type Oracle struct {
	cipher    ciphers.Cipher
	cfg       OracleConfig
	seed      uint64
	stateBits int
	// LastMutedRate reports, after each Evaluate, the fraction of
	// samples the countermeasure muted (diagnostic).
	LastMutedRate float64
}

// NewOracle builds the protected oracle. rng fixes the oracle's base
// seed; plaintexts, fault values and mute strings are drawn from
// substreams derived from it per assessment.
func NewOracle(c ciphers.Cipher, cfg OracleConfig, rng *prng.Source) (*Oracle, error) {
	if err := cfg.setDefaults(c); err != nil {
		return nil, err
	}
	return &Oracle{
		cipher:    c,
		cfg:       cfg,
		seed:      rng.Uint64(),
		stateBits: 8 * c.BlockBytes(),
	}, nil
}

// StateBits implements explore.Oracle: the action space covers both
// branches, so it is twice the cipher state width (episode length 256 for
// AES, Table IV).
func (o *Oracle) StateBits() int { return 2 * o.stateBits }

// Threshold implements explore.Oracle.
func (o *Oracle) Threshold() float64 { return o.cfg.Threshold }

// InjectionRound reports the fault-injection round (used as part of
// memoization keys by explore.CachedOracle).
func (o *Oracle) InjectionRound() int { return o.cfg.Round }

// SplitPattern divides a doubled pattern into its per-branch halves.
func (o *Oracle) SplitPattern(pattern *bitvec.Vector) (b1, b2 bitvec.Vector) {
	b1 = bitvec.New(o.stateBits)
	b2 = bitvec.New(o.stateBits)
	for _, b := range pattern.Bits() {
		if b < o.stateBits {
			b1.Set(b)
		} else {
			b2.Set(b - o.stateBits)
		}
	}
	return b1, b2
}

// Evaluate implements explore.Oracle: collects ciphertext differentials
// between the unfaulted and faulted protected implementation across the
// sharded worker pool and runs the order-1..G t-test against the shared
// uniform reference. The model argument selects the per-branch fault
// model (fault.XorFlip reproduces the historical behavior bit-
// identically). Evaluate is a pure function of the oracle seed, the
// pattern and the model; only LastMutedRate makes an Oracle value unsafe
// to share between goroutines. A done ctx aborts the campaign at the
// next shard boundary and returns ctx.Err().
func (o *Oracle) Evaluate(ctx context.Context, pattern *bitvec.Vector, model fault.Model) (float64, error) {
	if pattern.Len() != o.StateBits() {
		return 0, fmt.Errorf("countermeasure: pattern width %d, want %d", pattern.Len(), o.StateBits())
	}
	if pattern.IsZero() {
		return 0, fmt.Errorf("countermeasure: empty pattern")
	}
	p1, p2 := o.SplitPattern(pattern)
	var inj1, inj2 *fault.Injector
	if !p1.IsZero() {
		inj1 = fault.NewInjector(p1, model, o.cfg.Mode)
	}
	if !p2.IsZero() {
		inj2 = fault.NewInjector(p2, model, o.cfg.Mode)
	}
	bb := o.cipher.BlockBytes()
	groups := 8 * bb / o.cfg.GroupBits
	seed := evaluate.PatternSeed(o.seed, pattern, o.cfg.Round)

	be, batch := o.cipher.(ciphers.BatchEncrypter)
	batch = batch && !o.cfg.NoBatch

	sp, ctx := trace.StartSpan(ctx, trace.SpanAssess)
	defer sp.End()
	sp.SetAttr("cipher", o.cipher.Name())
	sp.SetAttr("round", o.cfg.Round)
	sp.SetAttr("protected", true)
	sp.SetAttr("fault_model", model.String())

	m, events := o.cfg.Metrics, o.cfg.Events
	var start time.Time
	if m != nil || events != nil {
		start = time.Now()
		m.Counter("countermeasure.evaluations_total").Inc()
		events.Emit(obs.EventCampaignStarted, map[string]any{
			"cipher":      o.cipher.Name(),
			"round":       o.cfg.Round,
			"pattern":     hex.EncodeToString(pattern.Bytes()),
			"bits":        pattern.Count(),
			"samples":     o.cfg.Samples,
			"protected":   true,
			"batch":       batch,
			"batch_path":  fault.BatchPathOf(o.cipher, o.cfg.NoBatch),
			"fault_model": model.String(),
			"oracle":      o.cfg.Oracle.String(),
		})
	}
	shardHist := m.Histogram("countermeasure.shard_seconds", obs.LatencyBuckets)

	var muted atomic.Int64
	accs, err := evaluate.RunSharded(ctx, o.cfg.Samples, o.cfg.Workers, 1, groups, o.cfg.MaxOrder, seed,
		func(rng *prng.Source, shard, n int, shardAccs []*stats.Accumulator) error {
			ssp, _ := trace.StartSpan(ctx, trace.SpanShard)
			ssp.SetAttr("shard", shard)
			ssp.SetAttr("samples", n)
			ssp.OwnLane()
			st := shardHist.Start()
			var shardMuted int
			if batch {
				shardMuted = o.collectBatch(be.NewBatchKernel(), inj1, inj2, rng, n, shardAccs[0])
			} else {
				shardMuted = o.collectScalar(inj1, inj2, rng, n, shardAccs[0])
			}
			st.Stop()
			muted.Add(int64(shardMuted))
			ssp.End()
			return nil
		})
	if err != nil {
		return 0, err
	}
	o.LastMutedRate = float64(muted.Load()) / float64(o.cfg.Samples)
	ref := evaluate.Reference(o.cfg.Samples, o.cfg.GroupBits, groups, o.cfg.MaxOrder, o.cfg.RefSeed)
	res := accs[0].MaxT(o.cfg.MaxOrder, ref)
	sp.SetAttr("t", res.T)
	sp.SetAttr("leaky", res.T > o.cfg.Threshold)
	sp.SetAttr("muted_rate", o.LastMutedRate)
	if m != nil || events != nil {
		wall := time.Since(start)
		m.Counter("countermeasure.muted_total").Add(uint64(muted.Load()))
		m.Counter("countermeasure.samples_total").Add(uint64(o.cfg.Samples))
		m.Histogram("countermeasure.evaluate_seconds", obs.LatencyBuckets).Observe(wall.Seconds())
		m.Gauge("countermeasure.last_muted_rate").Set(o.LastMutedRate)
		events.Emit(obs.EventCampaignFinished, map[string]any{
			"cipher":      o.cipher.Name(),
			"round":       o.cfg.Round,
			"pattern":     hex.EncodeToString(pattern.Bytes()),
			"t":           res.T,
			"leaky":       res.T > o.cfg.Threshold,
			"muted_rate":  o.LastMutedRate,
			"protected":   true,
			"duration_ms": float64(wall) / float64(time.Millisecond),
			"batch_path":  fault.BatchPathOf(o.cipher, o.cfg.NoBatch),
			"fault_model": model.String(),
			"oracle":      o.cfg.Oracle.String(),
		})
	}
	return res.T, nil
}

// collectScalar runs one shard through the reference path: one Encrypt
// per (sample, branch), with every buffer and the branch Fault structs
// reused across samples.
func (o *Oracle) collectScalar(inj1, inj2 *fault.Injector, rng *prng.Source, n int, acc *stats.Accumulator) int {
	prot := NewProtected(o.cipher, rng)
	bb := o.cipher.BlockBytes()
	groups := 8 * bb / o.cfg.GroupBits
	pt := make([]byte, bb)
	clean := make([]byte, bb)
	faulty := make([]byte, bb)
	xor1, and1 := make([]byte, bb), make([]byte, bb)
	xor2, and2 := make([]byte, bb), make([]byte, bb)
	row := make([]float64, groups)
	fault1 := &ciphers.Fault{Round: o.cfg.Round}
	fault2 := &ciphers.Fault{Round: o.cfg.Round}
	muted := 0
	for s := 0; s < n; s++ {
		rng.Fill(pt)
		o.cipher.Encrypt(clean, pt, nil, nil)
		var f1, f2 *ciphers.Fault
		if fault1.Mask, fault1.And = drawBranch(inj1, xor1, and1, rng); fault1.Mask != nil || fault1.And != nil {
			f1 = fault1
		}
		if fault2.Mask, fault2.And = drawBranch(inj2, xor2, and2, rng); fault2.Mask != nil || fault2.And != nil {
			f2 = fault2
		}
		if prot.Encrypt(faulty, pt, f1, f2) {
			muted++
		}
		for g := range row {
			row[g] = groupValue(clean, faulty, g, o.cfg.GroupBits)
		}
		acc.Add(row)
	}
	return muted
}

// collectBatch runs one shard through the cipher's batch kernel: a single
// three-fork EncryptForks call per sample computes the clean ciphertext
// and both computational branches, sharing the rounds before the
// injection point across all three. Forking stays per-sample rather than
// across the shard because the mute strings drawn on detection interleave
// with the fault draws of later samples — batching samples would reorder
// the PRNG stream. The released outputs, the muted count and the
// accumulator contents are bit-identical to collectScalar.
func (o *Oracle) collectBatch(kern ciphers.BatchKernel, inj1, inj2 *fault.Injector, rng *prng.Source, n int, acc *stats.Accumulator) int {
	bb := o.cipher.BlockBytes()
	groups := 8 * bb / o.cfg.GroupBits
	pt := make([]byte, bb)
	clean := make([]byte, bb)
	faulty := make([]byte, bb)
	out2 := make([]byte, bb)
	xor1, and1 := make([]byte, bb), make([]byte, bb)
	xor2, and2 := make([]byte, bb), make([]byte, bb)
	row := make([]float64, groups)
	xors := [][]byte{nil, nil, nil}
	ands := [][]byte{nil, nil, nil}
	states := [][]byte{nil, nil, nil}
	// Branch 1's ciphertext lands directly in faulty: on a match it is
	// the released output, on a mismatch the mute string overwrites it —
	// the same releases Protected.Encrypt produces.
	cts := [][]byte{clean, faulty, out2}
	muted := 0
	for s := 0; s < n; s++ {
		rng.Fill(pt)
		xors[1], ands[1] = drawBranch(inj1, xor1, and1, rng)
		xors[2], ands[2] = drawBranch(inj2, xor2, and2, rng)
		ciphers.EncryptForksOps(o.cipher, kern, o.cfg.Round, nil, 1, pt, xors, ands, states, cts)
		if !bytes.Equal(faulty, out2) {
			rng.Fill(faulty)
			muted++
		}
		for g := range row {
			row[g] = groupValue(clean, faulty, g, o.cfg.GroupBits)
		}
		acc.Add(row)
	}
	return muted
}

// drawBranch draws one branch's injection halves into the caller's
// buffers and returns the active slices (nil halves are unused by the
// branch's model). A nil injector — an empty branch pattern — returns
// (nil, nil) and consumes no randomness, exactly like the historical
// empty-branch path.
func drawBranch(inj *fault.Injector, xor, and []byte, rng *prng.Source) (xm, am []byte) {
	if inj == nil {
		return nil, nil
	}
	if inj.HasXor() {
		xm = xor
	}
	if inj.HasAnd() {
		am = and
	}
	inj.Draw(xm, am, rng)
	return xm, am
}

// groupValue extracts the differential group g of width groupBits.
func groupValue(a, b []byte, g, groupBits int) float64 {
	switch groupBits {
	case 8:
		return float64(a[g] ^ b[g])
	case 4:
		return float64((a[g/2] ^ b[g/2]) >> (4 * uint(g%2)) & 0xf)
	case 2:
		return float64((a[g/4] ^ b[g/4]) >> (2 * uint(g%4)) & 0x3)
	default:
		return float64((a[g/8] ^ b[g/8]) >> uint(g%8) & 1)
	}
}
