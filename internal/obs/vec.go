package obs

import (
	"sort"
	"strings"
	"sync"
)

// Labeled metric families. A *Vec is a family of instruments sharing one
// name and one fixed set of label names; each distinct label-value
// combination is a child instrument (a plain *Counter, *Gauge or
// *Histogram) resolved with With. The family follows the same contract
// as the unlabeled instruments:
//
//   - nil is the disabled state: every method on a nil *Vec no-ops, and
//     With on a nil *Vec returns a nil child whose methods no-op too;
//   - resolution is the slow path (a mutex-guarded map lookup), updates
//     are the fast path (one atomic add on the child handle) — callers
//     resolve the child once per job or campaign, never per trace;
//   - children never touch a PRNG stream, preserving bit-identical
//     determinism with labels on or off.
//
// Children are keyed by the canonical label key: the label pairs sorted
// by label name and rendered in Prometheus label-set syntax
// ({k1="v1",k2="v2"} with \, " and newline escaped). Two resolutions
// that mean the same label set therefore always reach the same child,
// the snapshot's JSON keys are stable, and the Prometheus exposition can
// print the key verbatim.

// CanonicalLabelKey renders (names, values) as the canonical label key:
// pairs sorted by label name (stable for duplicates), values escaped per
// the Prometheus text exposition (backslash, double quote, newline), the
// whole set wrapped in braces. Empty names yield the empty key, which is
// the unlabeled series.
func CanonicalLabelKey(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	type pair struct{ name, value string }
	pairs := make([]pair, len(names))
	for i, n := range names {
		v := ""
		if i < len(values) {
			v = values[i]
		}
		pairs[i] = pair{n, v}
	}
	sort.SliceStable(pairs, func(i, j int) bool { return pairs[i].name < pairs[j].name })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(PromName(p.name))
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue escapes a label value for the Prometheus text
// exposition: backslash, double quote and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 2)
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// CounterVec is a family of counters with a fixed label-name set.
type CounterVec struct {
	mu       sync.Mutex
	labels   []string
	children map[string]*Counter
}

// GaugeVec is a family of gauges with a fixed label-name set.
type GaugeVec struct {
	mu       sync.Mutex
	labels   []string
	children map[string]*Gauge
}

// HistogramVec is a family of histograms sharing bucket bounds and a
// fixed label-name set.
type HistogramVec struct {
	mu       sync.Mutex
	labels   []string
	bounds   []float64
	children map[string]*Histogram
}

// CounterVec returns the named counter family, creating it with the
// given label names on first use (later lookups ignore the names, like
// Histogram bounds). Returns nil (a valid no-op handle) when r is nil.
func (r *Registry) CounterVec(name string, labelNames ...string) *CounterVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.counterVecs[name]
	if !ok {
		v = &CounterVec{labels: append([]string(nil), labelNames...), children: map[string]*Counter{}}
		r.counterVecs[name] = v
	}
	return v
}

// GaugeVec returns the named gauge family, creating it with the given
// label names on first use. Returns nil (a valid no-op handle) when r is
// nil.
func (r *Registry) GaugeVec(name string, labelNames ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.gaugeVecs[name]
	if !ok {
		v = &GaugeVec{labels: append([]string(nil), labelNames...), children: map[string]*Gauge{}}
		r.gaugeVecs[name] = v
	}
	return v
}

// HistogramVec returns the named histogram family, creating it with the
// given bucket bounds and label names on first use. Returns nil (a valid
// no-op handle) when r is nil.
func (r *Registry) HistogramVec(name string, bounds []float64, labelNames ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.histogramVecs[name]
	if !ok {
		v = &HistogramVec{
			labels:   append([]string(nil), labelNames...),
			bounds:   append([]float64(nil), bounds...),
			children: map[string]*Histogram{},
		}
		r.histogramVecs[name] = v
	}
	return v
}

// With resolves the child counter for the given label values (in the
// family's declared label-name order; missing values read as ""). The
// child handle is stable — resolve it once per job or campaign and hot
// paths pay only its atomic add. Returns nil on a nil family.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	key := CanonicalLabelKey(v.labels, values)
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[key]
	if !ok {
		c = &Counter{}
		v.children[key] = c
	}
	return c
}

// With resolves the child gauge for the given label values. Returns nil
// on a nil family.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	key := CanonicalLabelKey(v.labels, values)
	v.mu.Lock()
	defer v.mu.Unlock()
	g, ok := v.children[key]
	if !ok {
		g = &Gauge{}
		v.children[key] = g
	}
	return g
}

// With resolves the child histogram for the given label values. Returns
// nil on a nil family.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	key := CanonicalLabelKey(v.labels, values)
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.children[key]
	if !ok {
		h = newHistogram(v.bounds)
		v.children[key] = h
	}
	return h
}

// CounterVecSnapshot is the exported state of one counter family: its
// label names and every child series keyed by canonical label key.
type CounterVecSnapshot struct {
	Labels []string          `json:"labels"`
	Series map[string]uint64 `json:"series"`
}

// GaugeVecSnapshot is the exported state of one gauge family.
type GaugeVecSnapshot struct {
	Labels []string           `json:"labels"`
	Series map[string]float64 `json:"series"`
}

// HistogramVecSnapshot is the exported state of one histogram family.
type HistogramVecSnapshot struct {
	Labels []string                     `json:"labels"`
	Series map[string]HistogramSnapshot `json:"series"`
}

// snapshot exports the family's children; safe for concurrent use.
func (v *CounterVec) snapshot() CounterVecSnapshot {
	v.mu.Lock()
	defer v.mu.Unlock()
	s := CounterVecSnapshot{
		Labels: append([]string(nil), v.labels...),
		Series: make(map[string]uint64, len(v.children)),
	}
	for k, c := range v.children {
		s.Series[k] = c.Value()
	}
	return s
}

func (v *GaugeVec) snapshot() GaugeVecSnapshot {
	v.mu.Lock()
	defer v.mu.Unlock()
	s := GaugeVecSnapshot{
		Labels: append([]string(nil), v.labels...),
		Series: make(map[string]float64, len(v.children)),
	}
	for k, g := range v.children {
		s.Series[k] = g.Value()
	}
	return s
}

func (v *HistogramVec) snapshot() HistogramVecSnapshot {
	v.mu.Lock()
	defer v.mu.Unlock()
	s := HistogramVecSnapshot{
		Labels: append([]string(nil), v.labels...),
		Series: make(map[string]HistogramSnapshot, len(v.children)),
	}
	for k, h := range v.children {
		s.Series[k] = snapshotHistogram(h)
	}
	return s
}

// Fold adds src's instruments into dst, optionally attributing them to a
// label set: with non-empty labelNames every src counter, gauge and
// histogram also lands as one labeled series of the same-named family in
// dst (counters and histograms summed into the series, gauges set — each
// source is its own series, so per-source gauge levels stay meaningful).
//
// Unlabeled merge semantics: counters sum; histograms with identical
// bounds sum bucket-wise (differing bounds keep dst's series untouched —
// the repo's shared bucket layouts make this the rare case); gauges are
// copied only when dst has no series of that name, because summing or
// overwriting instantaneous levels across sources is wrong either way.
// Labeled families already present in dst are extended series-wise.
//
// Fold powers the job server's fleet view: each job runs against its own
// registry, and scrape-time folding produces one snapshot whose
// unlabeled totals are the sums of its labeled per-job series by
// construction.
func Fold(dst *Snapshot, src Snapshot, labelNames, labelValues []string) {
	key := CanonicalLabelKey(labelNames, labelValues)

	for name, v := range src.Counters {
		dst.Counters[name] += v
		if key != "" {
			fam, ok := dst.CounterVecs[name]
			if !ok {
				fam = CounterVecSnapshot{Labels: append([]string(nil), labelNames...), Series: map[string]uint64{}}
			}
			fam.Series[key] += v
			if dst.CounterVecs == nil {
				dst.CounterVecs = map[string]CounterVecSnapshot{}
			}
			dst.CounterVecs[name] = fam
		}
	}
	for name, v := range src.Gauges {
		if _, ok := dst.Gauges[name]; !ok {
			dst.Gauges[name] = v
		}
		if key != "" {
			fam, ok := dst.GaugeVecs[name]
			if !ok {
				fam = GaugeVecSnapshot{Labels: append([]string(nil), labelNames...), Series: map[string]float64{}}
			}
			fam.Series[key] = v
			if dst.GaugeVecs == nil {
				dst.GaugeVecs = map[string]GaugeVecSnapshot{}
			}
			dst.GaugeVecs[name] = fam
		}
	}
	for name, hs := range src.Histograms {
		if cur, ok := dst.Histograms[name]; !ok {
			dst.Histograms[name] = cloneHistogramSnapshot(hs)
		} else if merged, ok := addHistogramSnapshots(cur, hs); ok {
			dst.Histograms[name] = merged
		}
		if key != "" {
			fam, ok := dst.HistogramVecs[name]
			if !ok {
				fam = HistogramVecSnapshot{Labels: append([]string(nil), labelNames...), Series: map[string]HistogramSnapshot{}}
			}
			if cur, have := fam.Series[key]; !have {
				fam.Series[key] = cloneHistogramSnapshot(hs)
			} else if merged, ok := addHistogramSnapshots(cur, hs); ok {
				fam.Series[key] = merged
			}
			if dst.HistogramVecs == nil {
				dst.HistogramVecs = map[string]HistogramVecSnapshot{}
			}
			dst.HistogramVecs[name] = fam
		}
	}

	// src's own labeled families carry over series-wise, so folding an
	// already-folded snapshot (the job server's accumulated history) into
	// another is lossless. Their series are NOT re-attributed under key —
	// they already carry their labels.
	for name, sf := range src.CounterVecs {
		fam, ok := dst.CounterVecs[name]
		if !ok {
			fam = CounterVecSnapshot{Labels: append([]string(nil), sf.Labels...), Series: map[string]uint64{}}
		}
		for k, v := range sf.Series {
			fam.Series[k] += v
		}
		if dst.CounterVecs == nil {
			dst.CounterVecs = map[string]CounterVecSnapshot{}
		}
		dst.CounterVecs[name] = fam
	}
	for name, sf := range src.GaugeVecs {
		fam, ok := dst.GaugeVecs[name]
		if !ok {
			fam = GaugeVecSnapshot{Labels: append([]string(nil), sf.Labels...), Series: map[string]float64{}}
		}
		for k, v := range sf.Series {
			if _, have := fam.Series[k]; !have {
				fam.Series[k] = v
			}
		}
		if dst.GaugeVecs == nil {
			dst.GaugeVecs = map[string]GaugeVecSnapshot{}
		}
		dst.GaugeVecs[name] = fam
	}
	for name, sf := range src.HistogramVecs {
		fam, ok := dst.HistogramVecs[name]
		if !ok {
			fam = HistogramVecSnapshot{Labels: append([]string(nil), sf.Labels...), Series: map[string]HistogramSnapshot{}}
		}
		for k, hs := range sf.Series {
			if cur, have := fam.Series[k]; !have {
				fam.Series[k] = cloneHistogramSnapshot(hs)
			} else if merged, ok := addHistogramSnapshots(cur, hs); ok {
				fam.Series[k] = merged
			}
		}
		if dst.HistogramVecs == nil {
			dst.HistogramVecs = map[string]HistogramVecSnapshot{}
		}
		dst.HistogramVecs[name] = fam
	}
}

// cloneHistogramSnapshot deep-copies a histogram snapshot so folds never
// alias the source's slices.
func cloneHistogramSnapshot(h HistogramSnapshot) HistogramSnapshot {
	h.Bounds = append([]float64(nil), h.Bounds...)
	h.Counts = append([]uint64(nil), h.Counts...)
	return h
}

// addHistogramSnapshots sums two snapshots bucket-wise; ok is false when
// the bucket layouts differ (the snapshots are not addable).
func addHistogramSnapshots(a, b HistogramSnapshot) (HistogramSnapshot, bool) {
	if len(a.Bounds) != len(b.Bounds) || len(a.Counts) != len(b.Counts) {
		return a, false
	}
	for i := range a.Bounds {
		if a.Bounds[i] != b.Bounds[i] {
			return a, false
		}
	}
	out := cloneHistogramSnapshot(a)
	out.Count += b.Count
	out.Sum += b.Sum
	for i := range out.Counts {
		out.Counts[i] += b.Counts[i]
	}
	return out, true
}
