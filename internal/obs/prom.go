package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus writes the snapshot in Prometheus text exposition
// format v0.0.4 (the format every Prometheus-compatible scraper
// accepts): one TYPE comment plus samples per instrument, counters and
// gauges as single samples, histograms as cumulative le-labelled bucket
// series with _sum and _count. Labeled families render one sample per
// child series (metric{tenant="t1",kind="sweep"} 3); a family sharing
// its name with a plain instrument is emitted under a single TYPE
// comment, the unlabeled total first and the labeled series after it.
// Instrument names are sanitized to the Prometheus grammar (dots become
// underscores), label values are escaped, and everything is emitted in
// sorted order, so the output is deterministic for a fixed snapshot.
func WritePrometheus(w io.Writer, s Snapshot) error {
	var b strings.Builder

	for _, name := range unionNames(s.Counters, s.CounterVecs) {
		n := PromName(name)
		fmt.Fprintf(&b, "# TYPE %s counter\n", n)
		if v, ok := s.Counters[name]; ok {
			fmt.Fprintf(&b, "%s %d\n", n, v)
		}
		if fam, ok := s.CounterVecs[name]; ok {
			for _, key := range sortedKeys(fam.Series) {
				fmt.Fprintf(&b, "%s%s %d\n", n, key, fam.Series[key])
			}
		}
	}

	for _, name := range unionNames(s.Gauges, s.GaugeVecs) {
		n := PromName(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n", n)
		if v, ok := s.Gauges[name]; ok {
			fmt.Fprintf(&b, "%s %s\n", n, promFloat(v))
		}
		if fam, ok := s.GaugeVecs[name]; ok {
			for _, key := range sortedKeys(fam.Series) {
				fmt.Fprintf(&b, "%s%s %s\n", n, key, promFloat(fam.Series[key]))
			}
		}
	}

	for _, name := range unionNames(s.Histograms, s.HistogramVecs) {
		n := PromName(name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", n)
		if h, ok := s.Histograms[name]; ok {
			writePromHistogram(&b, n, "", h)
		}
		if fam, ok := s.HistogramVecs[name]; ok {
			for _, key := range sortedKeys(fam.Series) {
				writePromHistogram(&b, n, key, fam.Series[key])
			}
		}
	}

	n := "obs_uptime_seconds"
	fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", n, n, promFloat(s.UptimeSeconds))

	_, err := io.WriteString(w, b.String())
	return err
}

// writePromHistogram renders one histogram series. key is the canonical
// label key of the series ("" for the unlabeled one); the le label is
// appended inside it for the bucket samples.
func writePromHistogram(b *strings.Builder, n, key string, h HistogramSnapshot) {
	// Every series label set gains le for its buckets: {a="b"} becomes
	// {a="b",le="0.1"}, the empty key becomes {le="0.1"}.
	lePrefix := "{"
	if key != "" {
		lePrefix = strings.TrimSuffix(key, "}") + ","
	}
	// Cumulative buckets; the +Inf bucket equals the series count.
	// The running total is accumulated from the per-bucket counts
	// (not the snapshot's Count field) so bucket monotonicity holds
	// even for a snapshot cut under concurrent writers.
	var cum uint64
	for i, bound := range h.Bounds {
		cum += h.Counts[i]
		fmt.Fprintf(b, "%s_bucket%sle=%q} %d\n", n, lePrefix, promFloat(bound), cum)
	}
	if len(h.Counts) > 0 {
		cum += h.Counts[len(h.Counts)-1]
	}
	fmt.Fprintf(b, "%s_bucket%sle=\"+Inf\"} %d\n", n, lePrefix, cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", n, key, promFloat(h.Sum))
	fmt.Fprintf(b, "%s_count%s %d\n", n, key, cum)
}

// unionNames returns the sorted union of the key sets of a plain
// instrument map and its same-kind family map.
func unionNames[P any, F any](plain map[string]P, fams map[string]F) []string {
	seen := make(map[string]bool, len(plain)+len(fams))
	names := make([]string, 0, len(plain)+len(fams))
	for name := range plain {
		if !seen[name] {
			seen[name] = true
			names = append(names, name)
		}
	}
	for name := range fams {
		if !seen[name] {
			seen[name] = true
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// sortedKeys returns a map's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// PromName maps an instrument name onto the Prometheus metric-name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*: every other character becomes an
// underscore, and a leading digit gets one prefixed.
func PromName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a float the way Prometheus expects sample values
// and le labels: shortest round-trip representation, with +Inf/-Inf/NaN
// spelled in Prometheus form.
func promFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
