package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus writes the snapshot in Prometheus text exposition
// format v0.0.4 (the format every Prometheus-compatible scraper
// accepts): one TYPE comment plus samples per instrument, counters and
// gauges as single samples, histograms as cumulative le-labelled bucket
// series with _sum and _count. Instrument names are sanitized to the
// Prometheus grammar (dots become underscores) and emitted in sorted
// order, so the output is deterministic for a fixed snapshot.
func WritePrometheus(w io.Writer, s Snapshot) error {
	var b strings.Builder

	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := PromName(name)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", n, n, s.Counters[name])
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := PromName(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", n, n, promFloat(s.Gauges[name]))
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		n := PromName(name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", n)
		// Cumulative buckets; the +Inf bucket equals the series count.
		// The running total is accumulated from the per-bucket counts
		// (not the snapshot's Count field) so bucket monotonicity holds
		// even for a snapshot cut under concurrent writers.
		var cum uint64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", n, promFloat(bound), cum)
		}
		if len(h.Counts) > 0 {
			cum += h.Counts[len(h.Counts)-1]
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", n, cum)
		fmt.Fprintf(&b, "%s_sum %s\n", n, promFloat(h.Sum))
		fmt.Fprintf(&b, "%s_count %d\n", n, cum)
	}

	n := "obs_uptime_seconds"
	fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", n, n, promFloat(s.UptimeSeconds))

	_, err := io.WriteString(w, b.String())
	return err
}

// PromName maps an instrument name onto the Prometheus metric-name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*: every other character becomes an
// underscore, and a leading digit gets one prefixed.
func PromName(name string) string {
	if name == "" {
		return "_"
	}
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a float the way Prometheus expects sample values
// and le labels: shortest round-trip representation, with +Inf/-Inf/NaN
// spelled in Prometheus form.
func promFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
