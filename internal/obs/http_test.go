package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestHandlerMetricsEndpoint: /metrics serves a JSON snapshot of the
// registry and /debug/pprof/ is mounted.
func TestHandlerMetricsEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("campaign.traces_total").Add(42)
	r.Gauge("evaluate.worker_utilization").Set(0.75)
	r.Histogram("evaluate.shard_seconds", LatencyBuckets).Observe(0.001)

	ts := httptest.NewServer(Handler(r))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d: %s", resp.StatusCode, body)
	}
	var s Snapshot
	if err := json.Unmarshal(body, &s); err != nil {
		t.Fatalf("/metrics not JSON: %v\n%s", err, body)
	}
	if s.Counters["campaign.traces_total"] != 42 {
		t.Errorf("counter = %d", s.Counters["campaign.traces_total"])
	}
	if s.Gauges["evaluate.worker_utilization"] != 0.75 {
		t.Errorf("gauge = %v", s.Gauges["evaluate.worker_utilization"])
	}
	if h := s.Histograms["evaluate.shard_seconds"]; h.Count != 1 || h.Sum != 0.001 {
		t.Errorf("histogram = %+v", h)
	}

	for _, path := range []string{"/debug/vars", "/debug/pprof/"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s status %d", path, resp.StatusCode)
		}
	}
}

// TestServeBindsAndCloses: Serve binds synchronously (port 0 picks a free
// port), serves the handler, and Close shuts it down; a nil server Close
// is a no-op.
func TestServeBindsAndCloses(t *testing.T) {
	r := NewRegistry()
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status %d", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	var nilSrv *Server
	if err := nilSrv.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
}
