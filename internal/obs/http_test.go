package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestHandlerMetricsEndpoint: /metrics serves a JSON snapshot of the
// registry and /debug/pprof/ is mounted.
func TestHandlerMetricsEndpoint(t *testing.T) {
	r := NewRegistry()
	r.Counter("campaign.traces_total").Add(42)
	r.Gauge("evaluate.worker_utilization").Set(0.75)
	r.Histogram("evaluate.shard_seconds", LatencyBuckets).Observe(0.001)

	ts := httptest.NewServer(Handler(r))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d: %s", resp.StatusCode, body)
	}
	var s Snapshot
	if err := json.Unmarshal(body, &s); err != nil {
		t.Fatalf("/metrics not JSON: %v\n%s", err, body)
	}
	if s.Counters["campaign.traces_total"] != 42 {
		t.Errorf("counter = %d", s.Counters["campaign.traces_total"])
	}
	if s.Gauges["evaluate.worker_utilization"] != 0.75 {
		t.Errorf("gauge = %v", s.Gauges["evaluate.worker_utilization"])
	}
	if h := s.Histograms["evaluate.shard_seconds"]; h.Count != 1 || h.Sum != 0.001 {
		t.Errorf("histogram = %+v", h)
	}

	for _, path := range []string{"/debug/vars", "/debug/pprof/"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s status %d", path, resp.StatusCode)
		}
	}
}

// TestServeBindsAndCloses: Serve binds synchronously (port 0 picks a free
// port), serves the handler, and Close shuts it down; a nil server Close
// is a no-op.
func TestServeBindsAndCloses(t *testing.T) {
	r := NewRegistry()
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status %d", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	var nilSrv *Server
	if err := nilSrv.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
}

// TestShutdownWaitsForInFlightRequest: a request already being served when
// Shutdown is called must complete (graceful drain), while the listener
// stops accepting new connections.
func TestShutdownWaitsForInFlightRequest(t *testing.T) {
	r := NewRegistry()
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	release := make(chan struct{})
	srv.srv.Handler = http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		close(entered)
		<-release
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, "drained")
	})

	type result struct {
		body   string
		status int
		err    error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + srv.Addr() + "/slow")
		if err != nil {
			got <- result{err: err}
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		got <- result{body: string(body), status: resp.StatusCode}
	}()
	<-entered

	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(5 * time.Second) }()
	// Give Shutdown a moment to close the listener, then let the
	// in-flight handler finish.
	time.Sleep(20 * time.Millisecond)
	close(release)

	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	res := <-got
	if res.err != nil {
		t.Fatalf("in-flight request failed during graceful shutdown: %v", res.err)
	}
	if res.status != http.StatusOK || res.body != "drained" {
		t.Fatalf("in-flight request got %d %q, want 200 \"drained\"", res.status, res.body)
	}
	// New connections must be refused after shutdown.
	if _, err := http.Get("http://" + srv.Addr() + "/metrics"); err == nil {
		t.Error("server still accepting connections after Shutdown")
	}
}

// TestShutdownTimeoutForcesClose: a request that outlives the grace period
// must not stall Shutdown — the fallback Close severs it and Shutdown
// returns promptly.
func TestShutdownTimeoutForcesClose(t *testing.T) {
	r := NewRegistry()
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	block := make(chan struct{})
	defer close(block)
	srv.srv.Handler = http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		close(entered)
		<-block // never finishes within the grace period
	})
	go func() {
		resp, err := http.Get("http://" + srv.Addr() + "/stuck")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered

	start := time.Now()
	if err := srv.Shutdown(50 * time.Millisecond); err != nil {
		t.Fatalf("Shutdown after forced close: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Shutdown blocked %v despite the 50ms grace period", elapsed)
	}

	var nilSrv *Server
	if err := nilSrv.Shutdown(time.Second); err != nil {
		t.Errorf("nil Shutdown: %v", err)
	}
}
