package obs

import (
	"fmt"
	"io"
	"time"
)

// Setup wires the observability flag pair shared by the CLIs: eventsPath
// (a JSONL run-event file, empty to disable) and metricsAddr (a debug
// HTTP endpoint, empty to disable). When either is set a live Registry
// is returned so events and endpoint snapshots share one instrument set;
// when both are empty the registry and emitter are nil, which is the
// zero-cost disabled state. The returned cleanup stops the endpoint and
// closes the event file (nil-safe, call it exactly once).
func Setup(metricsAddr, eventsPath string, diag io.Writer) (*Registry, *Emitter, func(), error) {
	var (
		metrics *Registry
		events  *Emitter
		server  *Server
	)
	if eventsPath != "" {
		var err error
		events, err = OpenEmitter(eventsPath)
		if err != nil {
			return nil, nil, nil, err
		}
		metrics = NewRegistry()
		events.MirrorDrops(metrics.Counter("obs.events_dropped_total"))
	}
	if metricsAddr != "" {
		if metrics == nil {
			metrics = NewRegistry()
		}
		// A served endpoint implies an operator who wants process health;
		// sampling is scrape-time only, so an unscrapped endpoint stays free.
		metrics.EnableRuntimeMetrics()
		var err error
		server, err = Serve(metricsAddr, metrics)
		if err != nil {
			events.Close()
			return nil, nil, nil, err
		}
		if diag != nil {
			fmt.Fprintf(diag, "metrics: http://%s/metrics (pprof under /debug/pprof)\n", server.Addr())
		}
	}
	cleanup := func() {
		// Graceful with a short deadline: an in-flight pprof scrape may
		// finish, but a signal-triggered exit is never stalled by one.
		server.Shutdown(2 * time.Second)
		events.Close()
	}
	return metrics, events, cleanup, nil
}
