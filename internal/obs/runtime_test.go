package obs

import (
	"runtime"
	"strings"
	"testing"
)

// TestEnableRuntimeMetrics: an enabled registry's snapshots carry the
// process gauges, the GC cycle counter and the pause histogram; a plain
// registry carries none of them; nil registries tolerate the call.
func TestEnableRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	if _, ok := r.Snapshot().Gauges["runtime.goroutines"]; ok {
		t.Fatal("runtime gauges present before EnableRuntimeMetrics")
	}

	r.EnableRuntimeMetrics()
	r.EnableRuntimeMetrics() // idempotent
	var nilReg *Registry
	nilReg.EnableRuntimeMetrics() // no-op

	runtime.GC() // guarantee at least one completed cycle
	s := r.Snapshot()
	for _, g := range []string{
		"runtime.goroutines",
		"runtime.heap_alloc_bytes",
		"runtime.heap_sys_bytes",
		"runtime.heap_objects",
		"runtime.stack_inuse_bytes",
		"runtime.next_gc_bytes",
		"runtime.gc_cpu_fraction",
	} {
		if _, ok := s.Gauges[g]; !ok {
			t.Errorf("snapshot missing gauge %s", g)
		}
	}
	if s.Gauges["runtime.goroutines"] < 1 {
		t.Errorf("goroutines = %v", s.Gauges["runtime.goroutines"])
	}
	if s.Gauges["runtime.heap_alloc_bytes"] <= 0 {
		t.Errorf("heap_alloc_bytes = %v", s.Gauges["runtime.heap_alloc_bytes"])
	}
	if s.Counters["runtime.gc_total"] < 1 {
		t.Errorf("gc_total = %d, want >= 1 after runtime.GC()", s.Counters["runtime.gc_total"])
	}
	h, ok := s.Histograms["runtime.gc_pause_seconds"]
	if !ok {
		t.Fatal("snapshot missing runtime.gc_pause_seconds")
	}
	if h.Count < 1 {
		t.Errorf("pause histogram count = %d, want >= 1", h.Count)
	}
}

// TestRuntimePauseFoldingIsCumulative: the pause histogram is persistent
// — a second snapshot must not lose the pauses folded by the first, and
// the histogram count tracks the GC cycle counter.
func TestRuntimePauseFoldingIsCumulative(t *testing.T) {
	r := NewRegistry()
	r.EnableRuntimeMetrics()
	runtime.GC()
	first := r.Snapshot()
	runtime.GC()
	runtime.GC()
	second := r.Snapshot()

	fh := first.Histograms["runtime.gc_pause_seconds"]
	sh := second.Histograms["runtime.gc_pause_seconds"]
	if sh.Count < fh.Count+2 {
		t.Errorf("pause count went %d -> %d, want at least +2 after two GCs", fh.Count, sh.Count)
	}
	if second.Counters["runtime.gc_total"] != sh.Count {
		// Both derive from NumGC (pauses folded per completed cycle), so
		// within one process they stay equal until the 256-cycle buffer
		// wraps between scrapes — which two back-to-back GCs cannot do.
		t.Errorf("gc_total %d != pause histogram count %d",
			second.Counters["runtime.gc_total"], sh.Count)
	}
}

// TestRuntimeMetricsInExposition: the sampled telemetry flows through
// the Prometheus renderer and passes the lint like any other instrument.
func TestRuntimeMetricsInExposition(t *testing.T) {
	r := NewRegistry()
	r.EnableRuntimeMetrics()
	runtime.GC()
	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"# TYPE runtime_goroutines gauge",
		"# TYPE runtime_gc_total counter",
		"# TYPE runtime_gc_pause_seconds histogram",
		`runtime_gc_pause_seconds_bucket{le="+Inf"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	lintPrometheus(t, text)
}
