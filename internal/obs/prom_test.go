package obs

import (
	"math"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// promGoldenSnapshot is a hand-built snapshot covering one of each
// instrument kind, so the exposition text is fully deterministic.
func promGoldenSnapshot() Snapshot {
	return Snapshot{
		UptimeSeconds: 12.5,
		Counters: map[string]uint64{
			"oracle.evals_total": 42,
			"cache.hits_total":   7,
		},
		Gauges: map[string]float64{
			"explore.best_reward": 0.75,
		},
		Histograms: map[string]HistogramSnapshot{
			"assess.latency_seconds": {
				Count:  6,
				Sum:    3.25,
				Bounds: []float64{0.1, 1, 10},
				Counts: []uint64{2, 3, 1, 0},
			},
		},
	}
}

// TestWritePrometheusGolden pins the exact exposition text: format
// changes (ordering, spacing, label quoting) must show up in review as
// a golden diff, because downstream scrapers parse this byte-for-byte.
func TestWritePrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, promGoldenSnapshot()); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE cache_hits_total counter
cache_hits_total 7
# TYPE oracle_evals_total counter
oracle_evals_total 42
# TYPE explore_best_reward gauge
explore_best_reward 0.75
# TYPE assess_latency_seconds histogram
assess_latency_seconds_bucket{le="0.1"} 2
assess_latency_seconds_bucket{le="1"} 5
assess_latency_seconds_bucket{le="10"} 6
assess_latency_seconds_bucket{le="+Inf"} 6
assess_latency_seconds_sum 3.25
assess_latency_seconds_count 6
# TYPE obs_uptime_seconds gauge
obs_uptime_seconds 12.5
`
	if got := b.String(); got != want {
		t.Errorf("exposition text mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestWritePrometheusLabeledGolden pins the exposition of labeled
// families: one TYPE comment covering the plain sample and the labeled
// series, canonical sorted label keys rendered verbatim, escaped label
// values, and the le label spliced into each histogram series' key.
func TestWritePrometheusLabeledGolden(t *testing.T) {
	weird := CanonicalLabelKey([]string{"tenant", "kind"}, []string{"he\"llo\\\nx", "sweep"})
	s := Snapshot{
		UptimeSeconds: 2,
		Counters:      map[string]uint64{"server.jobs_done_total": 4},
		CounterVecs: map[string]CounterVecSnapshot{
			"server.jobs_done_total": {
				Labels: []string{"tenant", "kind"},
				Series: map[string]uint64{
					`{kind="assess",tenant="t1"}`: 3,
					weird:                         1,
				},
			},
		},
		GaugeVecs: map[string]GaugeVecSnapshot{
			"server.jobs_running": {
				Labels: []string{"tenant"},
				Series: map[string]float64{`{tenant="t1"}`: 2},
			},
		},
		HistogramVecs: map[string]HistogramVecSnapshot{
			"server.job_seconds": {
				Labels: []string{"tenant"},
				Series: map[string]HistogramSnapshot{
					`{tenant="t1"}`: {Count: 3, Sum: 1.5, Bounds: []float64{1}, Counts: []uint64{2, 1}},
				},
			},
		},
	}
	var b strings.Builder
	if err := WritePrometheus(&b, s); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE server_jobs_done_total counter
server_jobs_done_total 4
server_jobs_done_total{kind="assess",tenant="t1"} 3
server_jobs_done_total{kind="sweep",tenant="he\"llo\\\nx"} 1
# TYPE server_jobs_running gauge
server_jobs_running{tenant="t1"} 2
# TYPE server_job_seconds histogram
server_job_seconds_bucket{tenant="t1",le="1"} 2
server_job_seconds_bucket{tenant="t1",le="+Inf"} 3
server_job_seconds_sum{tenant="t1"} 1.5
server_job_seconds_count{tenant="t1"} 3
# TYPE obs_uptime_seconds gauge
obs_uptime_seconds 2
`
	if got := b.String(); got != want {
		t.Errorf("labeled exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	lintPrometheus(t, b.String())
}

var (
	promNameRe   = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$`)
)

// lintPrometheus is a promtool-style check in pure Go: every sample
// line parses, metric names obey the grammar, every sample's base name
// was declared by a preceding # TYPE comment, histogram buckets have
// ascending le labels ending in +Inf, bucket counts are cumulative
// (monotone non-decreasing), and the +Inf bucket equals _count. Labeled
// families are checked per series: each distinct non-le label set gets
// its own bucket ladder, tracked independently under one TYPE comment.
func lintPrometheus(t *testing.T, text string) {
	t.Helper()
	typed := map[string]string{} // base name -> type
	type histState struct {
		lastLe    float64
		lastCount uint64
		infCount  uint64
		sawInf    bool
	}
	hists := map[string]*histState{} // base name + "|" + series key
	counts := map[string]uint64{}
	histSeries := func(base, seriesKey string) *histState {
		k := base + "|" + seriesKey
		hs := hists[k]
		if hs == nil {
			hs = &histState{lastLe: math.Inf(-1)}
			hists[k] = hs
		}
		return hs
	}

	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Errorf("line %d: empty line in exposition", ln+1)
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE comment %q", ln+1, line)
			}
			name, typ := parts[2], parts[3]
			if !promNameRe.MatchString(name) {
				t.Errorf("line %d: invalid metric name %q", ln+1, name)
			}
			switch typ {
			case "counter", "gauge", "histogram":
			default:
				t.Errorf("line %d: unknown type %q", ln+1, typ)
			}
			if _, dup := typed[name]; dup {
				t.Errorf("line %d: duplicate TYPE for %q", ln+1, name)
			}
			typed[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // HELP or other comments are fine
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: unparseable sample %q", ln+1, line)
		}
		name, labels, value := m[1], m[2], m[3]
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		typ, declared := typed[base]
		if !declared {
			// A plain sample may match its own name exactly.
			typ, declared = typed[name]
			base = name
		}
		if !declared {
			t.Errorf("line %d: sample %q has no preceding TYPE", ln+1, name)
			continue
		}
		if typ == "counter" {
			n, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				t.Errorf("line %d: counter value %q not a uint: %v", ln+1, value, err)
			}
			_ = n
		} else if _, err := strconv.ParseFloat(value, 64); err != nil && value != "NaN" && value != "+Inf" && value != "-Inf" {
			t.Errorf("line %d: bad sample value %q: %v", ln+1, value, err)
		}
		if typ != "histogram" {
			continue
		}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			// le is always the last label pair (the writer splices it in
			// before the closing brace); everything before it is the
			// series key identifying one bucket ladder.
			m := leRe.FindStringSubmatch(labels)
			if m == nil {
				t.Fatalf("line %d: bucket without trailing le label: %q", ln+1, line)
			}
			leStr := m[1]
			seriesKey := strings.TrimSuffix(labels, m[0])
			if seriesKey != "" {
				seriesKey += "}"
			}
			hs := histSeries(base, seriesKey)
			var le float64
			if leStr == "+Inf" {
				le = math.Inf(1)
			} else {
				var err error
				le, err = strconv.ParseFloat(leStr, 64)
				if err != nil {
					t.Fatalf("line %d: bad le %q: %v", ln+1, leStr, err)
				}
			}
			if le <= hs.lastLe {
				t.Errorf("line %d: le %q not ascending", ln+1, leStr)
			}
			hs.lastLe = le
			n, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				t.Fatalf("line %d: bucket count %q: %v", ln+1, value, err)
			}
			if n < hs.lastCount {
				t.Errorf("line %d: bucket counts not cumulative (%d after %d)", ln+1, n, hs.lastCount)
			}
			hs.lastCount = n
			if math.IsInf(le, 1) {
				hs.sawInf = true
				hs.infCount = n
			}
		case strings.HasSuffix(name, "_count"):
			n, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				t.Fatalf("line %d: _count %q: %v", ln+1, value, err)
			}
			counts[base+"|"+labels] = n
		}
	}

	for key, hs := range hists {
		if !hs.sawInf {
			t.Errorf("histogram series %s: no +Inf bucket", key)
		}
		if c, ok := counts[key]; !ok {
			t.Errorf("histogram series %s: no _count sample", key)
		} else if c != hs.infCount {
			t.Errorf("histogram series %s: +Inf bucket %d != _count %d", key, hs.infCount, c)
		}
	}
}

// leRe matches the trailing le pair of a bucket label set:
// {le="0.1"} or {a="b",le="0.1"}.
var leRe = regexp.MustCompile(`(?:\{|,)le="([^"]+)"\}$`)

// TestWritePrometheusLint runs the promtool-style lint over both the
// golden snapshot and a live registry exercising every instrument.
func TestWritePrometheusLint(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, promGoldenSnapshot()); err != nil {
		t.Fatal(err)
	}
	lintPrometheus(t, b.String())

	r := NewRegistry()
	r.Counter("a.b-c/d").Add(3)
	r.Counter("0leading").Inc()
	r.Gauge("g").Set(math.Inf(1))
	h := r.Histogram("lat", LatencyBuckets)
	for _, v := range []float64{1e-6, 0.5, 1e9} {
		h.Observe(v)
	}
	// Labeled families, including one sharing its name with the plain
	// histogram above, so the lint sees mixed plain+labeled ladders.
	r.CounterVec("jobs.done_total", "tenant", "kind").With("t1", "assess").Add(3)
	r.CounterVec("jobs.done_total", "tenant", "kind").With("t2", "sweep").Inc()
	r.GaugeVec("depth", "tenant").With("t1").Set(2)
	hv := r.HistogramVec("lat", LatencyBuckets, "tenant")
	hv.With("t1").Observe(0.5)
	hv.With("t2").Observe(2)
	b.Reset()
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	lintPrometheus(t, b.String())
}

// TestMetricsContentNegotiation: ?format=prom and Prometheus-style
// Accept headers select the text exposition; the default stays JSON.
func TestMetricsContentNegotiation(t *testing.T) {
	r := NewRegistry()
	r.Counter("traces.total").Add(5)
	h := Handler(r)

	get := func(target, accept string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodGet, target, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		return w
	}

	cases := []struct {
		target, accept string
		wantProm       bool
	}{
		{"/metrics", "", false},
		{"/metrics?format=json", "text/plain", false},
		{"/metrics?format=prom", "", true},
		{"/metrics", "text/plain;version=0.0.4", true},
		{"/metrics", "application/openmetrics-text", true},
		{"/metrics", "application/json", false},
	}
	for _, tc := range cases {
		w := get(tc.target, tc.accept)
		ct := w.Header().Get("Content-Type")
		body := w.Body.String()
		if tc.wantProm {
			if !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
				t.Errorf("%s (Accept %q): Content-Type = %q", tc.target, tc.accept, ct)
			}
			if !strings.Contains(body, "traces_total 5") {
				t.Errorf("%s (Accept %q): missing prom sample in %q", tc.target, tc.accept, body)
			}
			lintPrometheus(t, body)
		} else {
			if ct != "application/json" {
				t.Errorf("%s (Accept %q): Content-Type = %q", tc.target, tc.accept, ct)
			}
			if !strings.Contains(body, `"counters"`) {
				t.Errorf("%s (Accept %q): not a JSON snapshot: %q", tc.target, tc.accept, body)
			}
		}
	}
}

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"oracle.evals_total": "oracle_evals_total",
		"a-b/c d":            "a_b_c_d",
		"9lives":             "_9lives",
		"":                   "_",
		"ok_name:x":          "ok_name:x",
	}
	for in, want := range cases {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
		if got := PromName(in); !promNameRe.MatchString(got) {
			t.Errorf("PromName(%q) = %q violates grammar", in, got)
		}
	}
}

// TestHistogramQuantile covers the estimator's contract including the
// edge cases the exposition and obsreport rely on.
func TestHistogramQuantile(t *testing.T) {
	approx := func(t *testing.T, got, want float64) {
		t.Helper()
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("got %v, want %v", got, want)
		}
	}

	t.Run("empty histogram returns NaN", func(t *testing.T) {
		s := HistogramSnapshot{Bounds: []float64{1, 2}, Counts: []uint64{0, 0, 0}}
		if q := s.Quantile(0.5); !math.IsNaN(q) {
			t.Errorf("Quantile(0.5) = %v, want NaN", q)
		}
		var zero HistogramSnapshot
		if q := zero.Quantile(0.5); !math.IsNaN(q) {
			t.Errorf("zero snapshot Quantile = %v, want NaN", q)
		}
	})

	t.Run("invalid p returns NaN", func(t *testing.T) {
		s := HistogramSnapshot{Bounds: []float64{1}, Counts: []uint64{4, 0}}
		for _, p := range []float64{-0.1, 1.1, math.NaN()} {
			if q := s.Quantile(p); !math.IsNaN(q) {
				t.Errorf("Quantile(%v) = %v, want NaN", p, q)
			}
		}
	})

	t.Run("single bucket interpolates from zero", func(t *testing.T) {
		s := HistogramSnapshot{Count: 4, Bounds: []float64{10}, Counts: []uint64{4, 0}}
		approx(t, s.Quantile(0.5), 5)
		approx(t, s.Quantile(1), 10)
		approx(t, s.Quantile(0), 0)
	})

	t.Run("interpolates inside interior bucket", func(t *testing.T) {
		// 2 obs <= 1, 2 obs in (1, 3]: median sits at the bucket edge,
		// p75 halfway into the second bucket.
		s := HistogramSnapshot{Count: 4, Bounds: []float64{1, 3}, Counts: []uint64{2, 2, 0}}
		approx(t, s.Quantile(0.5), 1)
		approx(t, s.Quantile(0.75), 2)
	})

	t.Run("overflow bucket clamps to last finite bound", func(t *testing.T) {
		s := HistogramSnapshot{Count: 4, Bounds: []float64{1, 3}, Counts: []uint64{1, 1, 2}}
		// p=1 lands in +Inf: the estimator cannot see past the last
		// finite bound, so it reports 3 rather than fabricating a value.
		approx(t, s.Quantile(1), 3)
		approx(t, s.Quantile(0.9), 3)
		// p=0.5 is exactly the end of the second bucket.
		approx(t, s.Quantile(0.5), 3)
	})

	t.Run("all observations in overflow", func(t *testing.T) {
		s := HistogramSnapshot{Count: 3, Bounds: []float64{1, 3}, Counts: []uint64{0, 0, 3}}
		approx(t, s.Quantile(0.5), 3)
	})
}
