package obs

import (
	"runtime"
	"sync"
)

// GCPauseBuckets is the bucket layout of the runtime.gc_pause_seconds
// histogram: exponential from 10µs to ~2.6s in ×4 steps, matching the
// range of stop-the-world pauses worth alerting on.
var GCPauseBuckets = ExpBuckets(10e-6, 4, 10)

// runtimeCollector samples Go runtime telemetry (goroutines, heap and GC
// statistics) into a snapshot. It is deliberately pull-based: nothing
// runs between scrapes, so enabling it on an idle registry costs zero —
// the one runtime.ReadMemStats happens when someone actually asks for a
// snapshot. The GC pause histogram is persistent across samples: each
// collect folds the pauses of GC cycles that finished since the previous
// collect out of MemStats' circular pause buffer, so scraping at any
// cadence ≥ once per 256 GCs loses nothing.
type runtimeCollector struct {
	mu        sync.Mutex
	lastNumGC uint32
	pauses    *Histogram
}

// EnableRuntimeMetrics turns on runtime telemetry for this registry:
// every Snapshot (and therefore every /metrics scrape) also reports
//
//	runtime.goroutines            current goroutine count
//	runtime.heap_alloc_bytes      live heap
//	runtime.heap_sys_bytes        heap address space from the OS
//	runtime.heap_objects          live object count
//	runtime.stack_inuse_bytes     stack memory in use
//	runtime.next_gc_bytes         heap target of the next GC cycle
//	runtime.gc_cpu_fraction       CPU share spent in GC since start
//	runtime.gc_total              completed GC cycles (counter)
//	runtime.gc_pause_seconds      stop-the-world pause histogram
//
// Sampling happens at snapshot time only; an unscrapped registry pays
// nothing. Idempotent; no-op on a nil registry.
func (r *Registry) EnableRuntimeMetrics() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.runtime == nil {
		r.runtime = &runtimeCollector{pauses: newHistogram(GCPauseBuckets)}
	}
}

// collect samples the runtime into s. No-op on a nil collector.
func (c *runtimeCollector) collect(s *Snapshot) {
	if c == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	c.mu.Lock()
	// Fold the pauses of cycles completed since the last sample. The
	// buffer keeps the most recent 256 pauses at index (cycle-1) % 256;
	// if more than 256 cycles passed between scrapes the overwritten
	// ones are gone, so start at the oldest still-buffered cycle.
	from := c.lastNumGC
	if ms.NumGC > 256 && from < ms.NumGC-256 {
		from = ms.NumGC - 256
	}
	for gc := from; gc < ms.NumGC; gc++ {
		c.pauses.Observe(float64(ms.PauseNs[gc%256]) / 1e9)
	}
	c.lastNumGC = ms.NumGC
	pauses := snapshotHistogram(c.pauses)
	c.mu.Unlock()

	s.Gauges["runtime.goroutines"] = float64(runtime.NumGoroutine())
	s.Gauges["runtime.heap_alloc_bytes"] = float64(ms.HeapAlloc)
	s.Gauges["runtime.heap_sys_bytes"] = float64(ms.HeapSys)
	s.Gauges["runtime.heap_objects"] = float64(ms.HeapObjects)
	s.Gauges["runtime.stack_inuse_bytes"] = float64(ms.StackInuse)
	s.Gauges["runtime.next_gc_bytes"] = float64(ms.NextGC)
	s.Gauges["runtime.gc_cpu_fraction"] = ms.GCCPUFraction
	s.Counters["runtime.gc_total"] = uint64(ms.NumGC)
	s.Histograms["runtime.gc_pause_seconds"] = pauses
}
