package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"
)

// Handler returns the debug mux for a registry:
//
//	/metrics        JSON Snapshot (default) or Prometheus text v0.0.4
//	/debug/vars     expvar (cmdline, memstats)
//	/debug/pprof/   the full net/http/pprof suite
//
// /metrics negotiates its representation: "?format=prom" (or an Accept
// header asking for text/plain or OpenMetrics, as Prometheus scrapers
// send) selects the text exposition; "?format=json" forces JSON; with
// neither, JSON remains the default so existing curl/jq workflows keep
// working.
//
// The mux is standalone (not http.DefaultServeMux), so importing this
// package never adds handlers to binaries that do not opt in.
func Handler(r *Registry) http.Handler {
	return SnapshotHandler(r.Snapshot)
}

// SnapshotHandler is Handler for a computed snapshot: snap is called per
// request, so servers that compose a view from several registries (the
// job server folds per-job registries into its own at scrape time) serve
// it through the same mux, content negotiation included.
func SnapshotHandler(snap func() Snapshot) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		if wantsPrometheus(req) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			// Write errors past the header can only be client
			// disconnects; there is nothing useful to do with them.
			_ = WritePrometheus(w, snap())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snap())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// wantsPrometheus decides the /metrics representation. The query
// parameter always wins (explicit beats implicit); otherwise a
// Prometheus-style Accept header selects the text format.
func wantsPrometheus(req *http.Request) bool {
	switch req.URL.Query().Get("format") {
	case "prom", "prometheus", "text":
		return true
	case "json":
		return false
	}
	accept := strings.ToLower(req.Header.Get("Accept"))
	return strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "openmetrics")
}

// Server is a running debug endpoint.
type Server struct {
	srv  *http.Server
	addr string
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.addr
}

// Close shuts the listener down immediately, dropping in-flight requests.
// No-op on a nil server. Prefer Shutdown on the orderly exit path.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}

// Shutdown stops the server gracefully: the listener closes immediately
// (no new connections), and in-flight requests — a pprof profile capture,
// say — get up to timeout to finish before the remaining connections are
// forcibly closed. It never blocks longer than timeout. No-op on a nil
// server.
func (s *Server) Shutdown(timeout time.Duration) error {
	if s == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		// Deadline hit with requests still open: fall back to the
		// immediate close so exit is never held hostage by a slow or
		// stuck client.
		closeErr := s.srv.Close()
		if err == context.DeadlineExceeded && closeErr == nil {
			return nil
		}
		return err
	}
	return nil
}

// Serve binds addr and serves Handler(r) in a background goroutine. Bind
// errors are returned synchronously so a mistyped -metrics-addr fails the
// run instead of silently serving nothing.
func Serve(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: binding metrics endpoint: %w", err)
	}
	srv := &http.Server{Handler: Handler(r), ReadHeaderTimeout: 5 * time.Second}
	go func() {
		// ErrServerClosed after Close is the expected shutdown path.
		_ = srv.Serve(ln)
	}()
	return &Server{srv: srv, addr: ln.Addr().String()}, nil
}
