// Package obs is the run-time observability layer of the repository: a
// lightweight, allocation-conscious metrics registry (atomic counters,
// gauges and fixed-bucket histograms), a structured JSONL run-event
// emitter, and an optional debug HTTP endpoint exposing metric snapshots
// plus net/http/pprof.
//
// # The nil-registry zero-cost pattern
//
// Observability must never perturb the measurement: the same binaries
// serve long discovery runs (where an operator wants throughput and
// latency attribution) and bit-identical determinism tests (where any
// instrumentation overhead is a regression). The package therefore makes
// the disabled state the zero value: a nil *Registry is valid, every
// lookup on it returns a nil instrument handle, and every instrument
// method on a nil handle is a single predictable-branch no-op. Callers
// resolve handles once per campaign or session — not per trace — so the
// enabled hot-path cost is one atomic add per block of work and the
// disabled cost is a nil check. No instrument ever touches a PRNG stream,
// which preserves the repository's bit-identical determinism guarantees
// with metrics on or off.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds named instruments. Instruments are created on first
// lookup and live for the registry lifetime; lookups take a mutex,
// updates are lock-free atomics. A nil *Registry is the disabled state:
// lookups return nil handles whose methods no-op.
type Registry struct {
	mu            sync.Mutex
	counters      map[string]*Counter
	gauges        map[string]*Gauge
	histograms    map[string]*Histogram
	counterVecs   map[string]*CounterVec
	gaugeVecs     map[string]*GaugeVec
	histogramVecs map[string]*HistogramVec
	runtime       *runtimeCollector
	start         time.Time
}

// NewRegistry returns an empty enabled registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:      make(map[string]*Counter),
		gauges:        make(map[string]*Gauge),
		histograms:    make(map[string]*Histogram),
		counterVecs:   make(map[string]*CounterVec),
		gaugeVecs:     make(map[string]*GaugeVec),
		histogramVecs: make(map[string]*HistogramVec),
		start:         time.Now(),
	}
}

// Counter returns the named counter, creating it on first use.
// Returns nil (a valid no-op handle) when r is nil.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
// Returns nil (a valid no-op handle) when r is nil.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds (ascending; an implicit +Inf bucket is appended) on
// first use. Later lookups of the same name ignore the bounds argument.
// Returns nil (a valid no-op handle) when r is nil.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = newHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n. No-op on a nil handle.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. No-op on a nil handle.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (zero on a nil handle).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically updated float64 level.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value. No-op on a nil handle.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(floatBits(v))
	}
}

// Add adjusts the gauge by delta. No-op on a nil handle.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, floatBits(bitsFloat(old)+delta)) {
			return
		}
	}
}

// Value returns the current level (zero on a nil handle).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return bitsFloat(g.bits.Load())
}

// Histogram is a fixed-bucket distribution: per-bucket atomic counts plus
// a running sum and total count, sufficient for rate, mean and quantile
// band reporting without per-observation allocation.
type Histogram struct {
	bounds []float64       // ascending upper bounds; len(counts) = len(bounds)+1
	counts []atomic.Uint64 // counts[i] observes v <= bounds[i]; last bucket is +Inf
	sum    atomic.Uint64   // float64 bits, CAS-updated
	count  atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value. No-op on a nil handle.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, floatBits(bitsFloat(old)+v)) {
			return
		}
	}
}

// Start begins a timer that will observe its elapsed seconds into h on
// Stop. On a nil handle the returned timer is inert and Start does not
// read the clock.
func (h *Histogram) Start() Timer {
	if h == nil {
		return Timer{}
	}
	return Timer{h: h, start: time.Now()}
}

// Timer measures one latency observation; the zero Timer is inert.
type Timer struct {
	h     *Histogram
	start time.Time
}

// Stop observes the elapsed time since Start into the histogram and
// returns it; an inert timer returns zero without reading the clock.
func (t Timer) Stop() time.Duration {
	if t.h == nil {
		return 0
	}
	d := time.Since(t.start)
	t.h.Observe(d.Seconds())
	return d
}

// HistogramSnapshot is the exported state of one histogram.
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Sum   float64 `json:"sum"`
	// Bounds are the bucket upper bounds; Counts[i] observed
	// v <= Bounds[i], with one final overflow (+Inf) bucket, so
	// len(Counts) == len(Bounds)+1.
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
}

// Mean returns Sum/Count (zero for an empty histogram).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the p-quantile (0 <= p <= 1) from the bucket
// counts with the same model Prometheus' histogram_quantile uses:
// observations are assumed uniformly distributed inside each bucket,
// the first finite bucket's lower edge is zero (our histograms observe
// non-negative latencies and rates), and a quantile landing in the +Inf
// overflow bucket returns the highest finite bound — the estimator
// cannot see past it. An empty histogram (or one with no finite
// buckets) returns NaN; p outside [0, 1] returns NaN.
//
// The estimate is shared by the Prometheus exposition consumers and the
// obsreport offline analyzer, so both agree on what "p99 shard latency"
// means.
func (s HistogramSnapshot) Quantile(p float64) float64 {
	if math.IsNaN(p) || p < 0 || p > 1 || len(s.Bounds) == 0 {
		return math.NaN()
	}
	var total uint64
	for _, c := range s.Counts {
		total += c
	}
	if total == 0 {
		return math.NaN()
	}
	rank := p * float64(total)
	var cum uint64
	for i, bound := range s.Bounds {
		if i >= len(s.Counts) {
			break
		}
		prev := cum
		cum += s.Counts[i]
		if float64(cum) < rank {
			continue
		}
		lower := 0.0
		if i > 0 {
			lower = s.Bounds[i-1]
		}
		if s.Counts[i] == 0 {
			return bound
		}
		frac := (rank - float64(prev)) / float64(s.Counts[i])
		if frac < 0 {
			frac = 0
		}
		return lower + (bound-lower)*frac
	}
	// Rank falls into the +Inf overflow bucket.
	return s.Bounds[len(s.Bounds)-1]
}

// Snapshot is a point-in-time export of every instrument in a registry.
// Labeled families appear alongside the plain instruments, keyed by
// family name with their child series under canonical label keys; a
// family may share its name with a plain instrument (the unlabeled
// total next to its per-label breakdown).
type Snapshot struct {
	UptimeSeconds float64                      `json:"uptime_seconds"`
	Counters      map[string]uint64            `json:"counters"`
	Gauges        map[string]float64           `json:"gauges"`
	Histograms    map[string]HistogramSnapshot `json:"histograms"`

	CounterVecs   map[string]CounterVecSnapshot   `json:"counter_vecs,omitempty"`
	GaugeVecs     map[string]GaugeVecSnapshot     `json:"gauge_vecs,omitempty"`
	HistogramVecs map[string]HistogramVecSnapshot `json:"histogram_vecs,omitempty"`
}

// Snapshot exports the current value of every instrument. Individual
// reads are atomic; the snapshot as a whole is not a consistent cut
// across instruments (concurrent writers may land between reads), which
// is the usual and sufficient contract for monitoring. A nil registry
// yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		histograms[k] = v
	}
	counterVecs := make(map[string]*CounterVec, len(r.counterVecs))
	for k, v := range r.counterVecs {
		counterVecs[k] = v
	}
	gaugeVecs := make(map[string]*GaugeVec, len(r.gaugeVecs))
	for k, v := range r.gaugeVecs {
		gaugeVecs[k] = v
	}
	histogramVecs := make(map[string]*HistogramVec, len(r.histogramVecs))
	for k, v := range r.histogramVecs {
		histogramVecs[k] = v
	}
	rt := r.runtime
	start := r.start
	r.mu.Unlock()

	s.UptimeSeconds = time.Since(start).Seconds()
	for k, c := range counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range histograms {
		s.Histograms[k] = snapshotHistogram(h)
	}
	if len(counterVecs) > 0 {
		s.CounterVecs = make(map[string]CounterVecSnapshot, len(counterVecs))
		for k, v := range counterVecs {
			s.CounterVecs[k] = v.snapshot()
		}
	}
	if len(gaugeVecs) > 0 {
		s.GaugeVecs = make(map[string]GaugeVecSnapshot, len(gaugeVecs))
		for k, v := range gaugeVecs {
			s.GaugeVecs[k] = v.snapshot()
		}
	}
	if len(histogramVecs) > 0 {
		s.HistogramVecs = make(map[string]HistogramVecSnapshot, len(histogramVecs))
		for k, v := range histogramVecs {
			s.HistogramVecs[k] = v.snapshot()
		}
	}
	// Runtime telemetry is sampled here, at snapshot time, so an idle
	// registry (no scrapes) pays nothing for it.
	rt.collect(&s)
	return s
}

// snapshotHistogram exports one histogram's state.
func snapshotHistogram(h *Histogram) HistogramSnapshot {
	hs := HistogramSnapshot{
		Sum:    bitsFloat(h.sum.Load()),
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
	}
	// Read the total before the buckets: Observe increments the
	// bucket first and the total second, so every observation
	// included in this total has already landed in its bucket and
	// sum(bucket counts) >= count holds under concurrent writers.
	hs.Count = h.count.Load()
	for i := range h.counts {
		hs.Counts[i] = h.counts[i].Load()
	}
	return hs
}

// LatencyBuckets is the default bucket layout for latency histograms:
// exponential from 10µs to ~84s in ×2.5 steps.
var LatencyBuckets = ExpBuckets(10e-6, 2.5, 10)

// RateBuckets is the default bucket layout for throughput histograms
// (items/sec): exponential from 100 to ~95M in ×4 steps.
var RateBuckets = ExpBuckets(100, 4, 10)

// ExpBuckets returns n exponentially spaced bucket bounds starting at
// start and growing by factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }
