package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// rawEvent mirrors the wire shape for schema validation.
type rawEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   *float64       `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  *int64         `json:"pid"`
	TID  *int64         `json:"tid"`
	Args map[string]any `json:"args"`
}

type rawTrace struct {
	TraceEvents     []rawEvent `json:"traceEvents"`
	DisplayTimeUnit string     `json:"displayTimeUnit"`
}

// buildSampleTrace records a realistic hierarchy: run → session →
// episode (cross-goroutine) → oracle_eval → assess → concurrent shards.
func buildSampleTrace(t *testing.T) *Tracer {
	t.Helper()
	tr := New()
	tr.NameLane(1, "env-0")

	run, ctx := tr.StartRoot(context.Background(), SpanRun)
	run.SetAttr("binary", "test")
	sess, sctx := StartSpan(ctx, SpanSession)

	ep, ectx := StartSpanCross(sctx, SpanEpisode)
	ep.SetLane(1)
	eval, evctx := StartSpan(ectx, SpanOracleEval)
	assess, actx := StartSpan(evctx, SpanAssess)
	assess.SetAttr("cipher", "gift64")
	assess.SetAttr("round", 25)

	var wg sync.WaitGroup
	for shard := 0; shard < 4; shard++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			sp, _ := StartSpan(actx, SpanShard)
			sp.SetAttr("shard", shard)
			sp.OwnLane()
			sp.End()
		}(shard)
	}
	wg.Wait()

	assess.End()
	eval.End()
	ep.End()
	sess.End()
	run.End()
	return tr
}

// TestChromeTraceSchema validates the exported document against the
// trace-event format rules Perfetto's JSON importer enforces: a
// traceEvents array of objects that each carry name/ph/ts/pid/tid,
// phases limited to the ones we emit ("M" metadata, "X" complete),
// non-negative microsecond timestamps and durations, unique span IDs,
// parent references to recorded spans, and children contained in their
// parent's time range.
func TestChromeTraceSchema(t *testing.T) {
	tr := buildSampleTrace(t)
	var buf bytes.Buffer
	if err := tr.Export(&buf); err != nil {
		t.Fatal(err)
	}

	var doc rawTrace
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		t.Fatalf("document is not schema-clean JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}

	type spanTime struct{ start, end float64 }
	spans := map[uint64]spanTime{}
	var xEvents []rawEvent
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" {
			t.Fatalf("event %d: empty name", i)
		}
		if ev.PID == nil || ev.TID == nil || ev.TS == nil {
			t.Fatalf("event %d (%s): missing pid/tid/ts", i, ev.Name)
		}
		switch ev.Ph {
		case "M":
			if ev.Name != "process_name" && ev.Name != "thread_name" {
				t.Errorf("event %d: unexpected metadata %q", i, ev.Name)
			}
			if _, ok := ev.Args["name"].(string); !ok {
				t.Errorf("event %d: metadata without args.name", i)
			}
		case "X":
			if *ev.TS < 0 || ev.Dur < 0 {
				t.Errorf("event %d (%s): negative ts/dur (%v, %v)", i, ev.Name, *ev.TS, ev.Dur)
			}
			id, ok := asUint(ev.Args["span_id"])
			if !ok {
				t.Fatalf("event %d (%s): missing span_id", i, ev.Name)
			}
			if _, dup := spans[id]; dup {
				t.Fatalf("duplicate span_id %d", id)
			}
			spans[id] = spanTime{*ev.TS, *ev.TS + ev.Dur}
			xEvents = append(xEvents, ev)
		default:
			t.Errorf("event %d: unexpected phase %q", i, ev.Ph)
		}
	}

	// Parent references must resolve, and children must be contained in
	// their parent's interval (completion order writes children first,
	// so all spans are registered before this pass).
	for _, ev := range xEvents {
		pid, ok := asUint(ev.Args["parent_id"])
		if !ok {
			continue // root
		}
		parent, exists := spans[pid]
		if !exists {
			t.Fatalf("span %s references unknown parent %d", ev.Name, pid)
		}
		id, _ := asUint(ev.Args["span_id"])
		child := spans[id]
		const slack = 1.0 // µs float rounding
		if child.start < parent.start-slack || child.end > parent.end+slack {
			t.Errorf("span %s [%v,%v] escapes parent [%v,%v]",
				ev.Name, child.start, child.end, parent.start, parent.end)
		}
	}

	// Slices sharing a lane must not overlap (Perfetto mis-nests them
	// otherwise). Concurrent shard spans moved to own lanes guarantee it.
	byLane := map[int64][]spanTime{}
	for _, ev := range xEvents {
		id, _ := asUint(ev.Args["span_id"])
		byLane[*ev.TID] = append(byLane[*ev.TID], spans[id])
	}
	for lane, ts := range byLane {
		for i := 0; i < len(ts); i++ {
			for j := i + 1; j < len(ts); j++ {
				a, b := ts[i], ts[j]
				nested := (a.start <= b.start && b.end <= a.end) || (b.start <= a.start && a.end <= b.end)
				disjoint := a.end <= b.start || b.end <= a.start
				if !nested && !disjoint {
					t.Errorf("lane %d: partially overlapping slices [%v,%v] and [%v,%v]",
						lane, a.start, a.end, b.start, b.end)
				}
			}
		}
	}
}

func asUint(v any) (uint64, bool) {
	f, ok := v.(float64)
	if !ok || f < 0 {
		return 0, false
	}
	return uint64(f), true
}

// TestNilTracerIsZeroCost: the disabled state never allocates spans and
// every method no-ops.
func TestNilTracerIsZeroCost(t *testing.T) {
	var tr *Tracer
	sp, ctx := tr.StartRoot(context.Background(), SpanRun)
	if sp != nil {
		t.Fatal("nil tracer produced a span")
	}
	if ctx != context.Background() {
		t.Error("nil tracer changed the context")
	}
	child, cctx := StartSpan(ctx, SpanAssess)
	if child != nil || cctx != ctx {
		t.Error("span started from a span-free context")
	}
	cross, _ := StartSpanCross(ctx, SpanEpisode)
	if cross != nil {
		t.Error("cross span started from a span-free context")
	}
	// All nil-span methods must be safe.
	sp.SetAttr("k", 1)
	sp.SetLane(3)
	sp.OwnLane()
	sp.End()
	tr.NameLane(1, "x")
	if tr.Dropped() != 0 {
		t.Error("nil Dropped != 0")
	}
	if err := tr.Export(&bytes.Buffer{}); err != nil {
		t.Errorf("nil Export: %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
}

// TestOpenEmptyPathDisables: Open("") is the disabled state, not an
// error, so flag plumbing needs no branch.
func TestOpenEmptyPathDisables(t *testing.T) {
	tr, err := Open("")
	if err != nil || tr != nil {
		t.Fatalf("Open(\"\") = %v, %v; want nil, nil", tr, err)
	}
}

// TestOpenWritesFileOnClose: the file-backed tracer persists its
// document at Close, idempotently.
func TestOpenWritesFileOnClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	tr, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	sp, _ := tr.StartRoot(context.Background(), SpanRun)
	sp.End()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc rawTrace
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Name == SpanRun {
			found = true
		}
	}
	if !found {
		t.Error("run span missing from written trace")
	}
}

// TestSpanBufferCap: spans past the cap are dropped and counted, and
// Export surfaces the truncation as an error.
func TestSpanBufferCap(t *testing.T) {
	tr := New()
	tr.max = 2
	_, ctx := tr.StartRoot(context.Background(), SpanRun)
	for i := 0; i < 4; i++ {
		sp, _ := StartSpan(ctx, SpanShard)
		sp.End()
	}
	if got := tr.Dropped(); got != 2 {
		t.Errorf("Dropped = %d, want 2", got)
	}
	if err := tr.Export(&bytes.Buffer{}); err == nil {
		t.Error("Export of a truncated trace returned nil error")
	}
}

// TestEndIdempotent: double End records exactly one event.
func TestEndIdempotent(t *testing.T) {
	tr := New()
	sp, _ := tr.StartRoot(context.Background(), SpanRun)
	sp.End()
	sp.End()
	tr.mu.Lock()
	n := len(tr.events)
	tr.mu.Unlock()
	if n != 1 {
		t.Errorf("events = %d, want 1", n)
	}
}
